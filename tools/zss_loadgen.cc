// zss_loadgen — multi-client load/churn driver for the live front end.
//
// Spawns N protocol clients (one thread each, mixed UNIX + TCP when
// both endpoints are given) against a running `zss_serve --live
// --socket/--tcp` instance, drives seeded step bursts through several
// connect/disconnect lives per client, and verifies the front end's
// client-visible contract:
//
//   * routing — each client owns a disjoint session range, so an "ok"
//     for a foreign session is a misrouted delivery (hard failure);
//   * no loss — clients that close politely account for every line
//     they sent: ok + err == sent, exactly (a --rude tail of clients
//     drops dead without reading, exercising the EPIPE/drop path; no
//     accounting is possible for them by design — the server-side
//     record/replay digest gate covers their requests instead);
//   * per-session ordering — seq strictly increases within a session.
//
// CI drives 64 mixed clients with churn against a recording server,
// then replays the recording at several shard counts and diffs digest
// tables (.github/workflows/ci.yml, live-smoke).
//
//   zss_serve --live --socket=/tmp/zss.sock --tcp=9777 --record=r.txt &
//   zss_loadgen --socket=/tmp/zss.sock --tcp=9777 --clients=64 \
//               --steps=40 --lives=3 --rude=8 --quit
//
// Exits 0 only if every check passed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/client.h"
#include "serve/request.h"

namespace {

using namespace zss;

struct Args {
  std::string socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  int clients = 64;
  int steps = 40;        // per client, across all lives
  int lives = 3;         // connect/disconnect cycles per client
  int rude = 0;          // clients (from the tail) that drop dead
  int sessions = 4;      // sessions per client (disjoint ranges)
  int vocab = 5;         // token range, must be < server --dx
  std::uint64_t seed = 1;
  bool quit = false;     // send `quit` after the storm
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("socket")) {
      args.socket_path = v;
    } else if (const char* v = value("tcp-host")) {
      args.tcp_host = v;
    } else if (const char* v = value("tcp")) {
      args.tcp_port = std::atoi(v);
    } else if (const char* v = value("clients")) {
      args.clients = std::atoi(v);
    } else if (const char* v = value("steps")) {
      args.steps = std::atoi(v);
    } else if (const char* v = value("lives")) {
      args.lives = std::atoi(v);
    } else if (const char* v = value("rude")) {
      args.rude = std::atoi(v);
    } else if (const char* v = value("sessions")) {
      args.sessions = std::atoi(v);
    } else if (const char* v = value("vocab")) {
      args.vocab = std::atoi(v);
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--quit") {
      args.quit = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args.socket_path.empty() && args.tcp_port < 0) {
    std::fprintf(stderr, "need --socket=PATH and/or --tcp=PORT\n");
    return false;
  }
  if (args.clients < 1 || args.steps < 1 || args.lives < 1 ||
      args.sessions < 1 || args.sessions > 90 || args.vocab < 1 ||
      args.rude < 0 || args.rude > args.clients) {
    std::fprintf(stderr, "invalid flag value\n");
    return false;
  }
  return true;
}

/// Connects (UNIX for even clients, TCP for odd, when both endpoints
/// exist), retrying for a few seconds — CI starts the server in the
/// background and races us to the bind.
bool connect_client(const Args& args, int client, serve::ClientConn& c,
                    std::string* error) {
  const bool use_tcp =
      args.tcp_port >= 0 && (args.socket_path.empty() || client % 2 == 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const bool ok = use_tcp
                        ? c.connect_tcp(args.tcp_host, args.tcp_port, error)
                        : c.connect_unix(args.socket_path, error);
    if (ok) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t oks = 0;
  std::uint64_t errs = 0;
  std::uint64_t misrouted = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t out_of_order = 0;
  bool connect_failed = false;
};

void run_client(const Args& args, int client, Tally& tally) {
  std::mt19937_64 rng(args.seed * 6364136223846793005ULL +
                      static_cast<std::uint64_t>(client));
  const auto base = static_cast<serve::SessionId>(100 * client + 1);
  const bool rude = client >= args.clients - args.rude;
  const int per_life = (args.steps + args.lives - 1) / args.lives;
  std::map<serve::SessionId, std::uint64_t> last_seq;

  int remaining = args.steps;
  for (int life = 0; life < args.lives && remaining > 0; ++life) {
    serve::ClientConn c;
    std::string error;
    if (!connect_client(args, client, c, &error)) {
      std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
      tally.connect_failed = true;
      return;
    }
    std::string line;
    if (!c.read_line(&line, 10000) || line.rfind("hi ", 0) != 0) {
      std::fprintf(stderr, "client %d: bad greeting\n", client);
      tally.connect_failed = true;
      return;
    }

    const int burst = std::min(per_life, remaining);
    remaining -= burst;
    std::string blob;
    for (int i = 0; i < burst; ++i) {
      const serve::SessionId sid =
          base + static_cast<serve::SessionId>(
                     rng() % static_cast<std::uint64_t>(args.sessions));
      blob += "step " + std::to_string(sid) + " " +
              std::to_string(rng() % static_cast<std::uint64_t>(args.vocab)) +
              "\n";
    }
    // Random chunking: frame boundaries land anywhere, including mid
    // connection teardown for the rude tail.
    std::size_t off = 0;
    while (off < blob.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          blob.size() - off, 1 + static_cast<std::size_t>(rng() % 64));
      if (::send(c.fd(), blob.data() + off, chunk, MSG_NOSIGNAL) < 0) break;
      off += chunk;
    }

    if (rude) {
      c.close();  // mid-request, nothing read: the EPIPE/drop path
      continue;
    }

    const bool half_open = rng() % 4 == 0;
    if (half_open) c.shutdown_write();
    std::uint64_t owed = static_cast<std::uint64_t>(burst);
    tally.sent += owed;
    while (owed > 0) {
      if (!c.read_line(&line, 15000)) {
        tally.orphaned += owed;
        break;
      }
      if (line.rfind("ok ", 0) == 0) {
        unsigned long long sid = 0, seq = 0;
        if (std::sscanf(line.c_str(), "ok %llu %llu", &sid, &seq) == 2) {
          if (sid < base ||
              sid >= base + static_cast<unsigned long long>(args.sessions)) {
            ++tally.misrouted;
          } else {
            auto [it, fresh] = last_seq.try_emplace(sid, seq);
            if (!fresh) {
              if (seq <= it->second) ++tally.out_of_order;
              it->second = seq;
            }
          }
        }
        ++tally.oks;
        --owed;
      } else if (line.rfind("err ", 0) == 0) {
        ++tally.errs;
        --owed;
      }
    }
    c.close();
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(
        stderr,
        "usage: zss_loadgen (--socket=PATH | --tcp=PORT [--tcp-host=H])\n"
        "                   [--clients=N] [--steps=N] [--lives=N]\n"
        "                   [--rude=N] [--sessions=N] [--vocab=N]\n"
        "                   [--seed=S] [--quit]\n");
    return 2;
  }

  std::vector<Tally> tallies(static_cast<std::size_t>(args.clients));
  std::vector<std::thread> threads;
  for (int k = 0; k < args.clients; ++k) {
    threads.emplace_back(
        [&, k] { run_client(args, k, tallies[static_cast<std::size_t>(k)]); });
  }
  for (auto& t : threads) t.join();

  Tally total;
  bool connect_failed = false;
  for (const Tally& t : tallies) {
    total.sent += t.sent;
    total.oks += t.oks;
    total.errs += t.errs;
    total.misrouted += t.misrouted;
    total.orphaned += t.orphaned;
    total.out_of_order += t.out_of_order;
    connect_failed |= t.connect_failed;
  }

  bool quit_ok = true;
  if (args.quit) {
    // One last connection asks the server to shut down; the final line
    // it reads must be the bye.
    serve::ClientConn c;
    std::string error, line, last;
    if (!connect_client(args, 0, c, &error) || !c.read_line(&line, 10000) ||
        !c.send_line("quit")) {
      std::fprintf(stderr, "quit connection failed: %s\n", error.c_str());
      quit_ok = false;
    } else {
      while (c.read_line(&line, 15000)) last = line;
      quit_ok = c.eof() && last.rfind("bye ", 0) == 0;
      if (!quit_ok) {
        std::fprintf(stderr, "no bye on quit (last line: %s)\n", last.c_str());
      }
    }
  }

  std::printf("zss_loadgen: clients=%d sent=%llu ok=%llu err=%llu "
              "misrouted=%llu orphaned=%llu out_of_order=%llu\n",
              args.clients, static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.oks),
              static_cast<unsigned long long>(total.errs),
              static_cast<unsigned long long>(total.misrouted),
              static_cast<unsigned long long>(total.orphaned),
              static_cast<unsigned long long>(total.out_of_order));

  const bool books_balance = total.oks + total.errs == total.sent;
  if (!books_balance) {
    std::fprintf(stderr, "zss_loadgen: ok+err != sent — responses lost\n");
  }
  if (total.misrouted > 0 || total.orphaned > 0 || total.out_of_order > 0 ||
      connect_failed || !books_balance || !quit_ok) {
    return 1;
  }
  return 0;
}
