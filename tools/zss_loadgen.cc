// zss_loadgen — multi-client load/churn driver for the live front end.
//
// Spawns N protocol clients (one thread each, mixed UNIX + TCP when
// both endpoints are given) against a running `zss_serve --live
// --socket/--tcp` instance, drives seeded step bursts through several
// connect/disconnect lives per client, and verifies the front end's
// client-visible contract:
//
//   * routing — each client owns a disjoint session range, so an "ok"
//     for a foreign session is a misrouted delivery (hard failure);
//   * no loss — clients that close politely account for every line
//     they sent: ok + err == sent, exactly (a --rude tail of clients
//     drops dead without reading, exercising the EPIPE/drop path; no
//     accounting is possible for them by design — the server-side
//     record/replay digest gate covers their requests instead);
//   * per-session ordering — seq strictly increases within a session.
//
// --resume switches to the crash-tolerant driver: deterministic
// per-session token plans, reconnect with bounded exponential backoff
// (serve::ResumingClient), and `sync`-anchored idempotent re-drive of
// uncommitted suffixes, so a `kill -9` of the server mid-storm plus a
// restart with --durability=journal still ends with every session at
// its planned length and no committed step lost (CI's chaos job).
//
// CI drives 64 mixed clients with churn against a recording server,
// then replays the recording at several shard counts and diffs digest
// tables (.github/workflows/ci.yml, live-smoke).
//
//   zss_serve --live --socket=/tmp/zss.sock --tcp=9777 --record=r.txt &
//   zss_loadgen --socket=/tmp/zss.sock --tcp=9777 --clients=64 \
//               --steps=40 --lives=3 --rude=8 --quit
//
// Exits 0 only if every check passed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/client.h"
#include "serve/request.h"

namespace {

using namespace zss;

struct Args {
  std::string socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  int clients = 64;
  int steps = 40;        // per client, across all lives
  int lives = 3;         // connect/disconnect cycles per client
  int rude = 0;          // clients (from the tail) that drop dead
  int sessions = 4;      // sessions per client (disjoint ranges)
  int vocab = 5;         // token range, must be < server --dx
  std::uint64_t seed = 1;
  bool quit = false;     // send `quit` after the storm
  // --resume: crash-tolerant mode. Each client drives deterministic
  // per-session token streams and survives server restarts by
  // reconnecting with bounded exponential backoff, asking `sync` where
  // each session's committed prefix ends, and re-driving only the
  // uncommitted suffix (idempotent resume). Exit 0 means every session
  // reached its planned length and no committed step was ever lost.
  bool resume = false;
  int chunk = 16;        // resume mode: steps pipelined per sync round
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("socket")) {
      args.socket_path = v;
    } else if (const char* v = value("tcp-host")) {
      args.tcp_host = v;
    } else if (const char* v = value("tcp")) {
      args.tcp_port = std::atoi(v);
    } else if (const char* v = value("clients")) {
      args.clients = std::atoi(v);
    } else if (const char* v = value("steps")) {
      args.steps = std::atoi(v);
    } else if (const char* v = value("lives")) {
      args.lives = std::atoi(v);
    } else if (const char* v = value("rude")) {
      args.rude = std::atoi(v);
    } else if (const char* v = value("sessions")) {
      args.sessions = std::atoi(v);
    } else if (const char* v = value("vocab")) {
      args.vocab = std::atoi(v);
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("chunk")) {
      args.chunk = std::atoi(v);
    } else if (a == "--resume") {
      args.resume = true;
    } else if (a == "--quit") {
      args.quit = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (args.socket_path.empty() && args.tcp_port < 0) {
    std::fprintf(stderr, "need --socket=PATH and/or --tcp=PORT\n");
    return false;
  }
  if (args.clients < 1 || args.steps < 1 || args.lives < 1 ||
      args.sessions < 1 || args.sessions > 90 || args.vocab < 1 ||
      args.rude < 0 || args.rude > args.clients || args.chunk < 1) {
    std::fprintf(stderr, "invalid flag value\n");
    return false;
  }
  if (args.resume && args.rude > 0) {
    std::fprintf(stderr, "--resume and --rude are mutually exclusive\n");
    return false;
  }
  return true;
}

/// Connects (UNIX for even clients, TCP for odd, when both endpoints
/// exist), retrying for a few seconds — CI starts the server in the
/// background and races us to the bind.
bool connect_client(const Args& args, int client, serve::ClientConn& c,
                    std::string* error) {
  const bool use_tcp =
      args.tcp_port >= 0 && (args.socket_path.empty() || client % 2 == 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const bool ok = use_tcp
                        ? c.connect_tcp(args.tcp_host, args.tcp_port, error)
                        : c.connect_unix(args.socket_path, error);
    if (ok) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t oks = 0;
  std::uint64_t errs = 0;
  std::uint64_t misrouted = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t out_of_order = 0;
  bool connect_failed = false;
};

void run_client(const Args& args, int client, Tally& tally) {
  std::mt19937_64 rng(args.seed * 6364136223846793005ULL +
                      static_cast<std::uint64_t>(client));
  const auto base = static_cast<serve::SessionId>(100 * client + 1);
  const bool rude = client >= args.clients - args.rude;
  const int per_life = (args.steps + args.lives - 1) / args.lives;
  std::map<serve::SessionId, std::uint64_t> last_seq;

  int remaining = args.steps;
  for (int life = 0; life < args.lives && remaining > 0; ++life) {
    serve::ClientConn c;
    std::string error;
    if (!connect_client(args, client, c, &error)) {
      std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
      tally.connect_failed = true;
      return;
    }
    std::string line;
    if (!c.read_line(&line, 10000) || line.rfind("hi ", 0) != 0) {
      std::fprintf(stderr, "client %d: bad greeting\n", client);
      tally.connect_failed = true;
      return;
    }

    const int burst = std::min(per_life, remaining);
    remaining -= burst;
    std::string blob;
    for (int i = 0; i < burst; ++i) {
      const serve::SessionId sid =
          base + static_cast<serve::SessionId>(
                     rng() % static_cast<std::uint64_t>(args.sessions));
      blob += "step " + std::to_string(sid) + " " +
              std::to_string(rng() % static_cast<std::uint64_t>(args.vocab)) +
              "\n";
    }
    // Random chunking: frame boundaries land anywhere, including mid
    // connection teardown for the rude tail.
    std::size_t off = 0;
    while (off < blob.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          blob.size() - off, 1 + static_cast<std::size_t>(rng() % 64));
      if (::send(c.fd(), blob.data() + off, chunk, MSG_NOSIGNAL) < 0) break;
      off += chunk;
    }

    if (rude) {
      c.close();  // mid-request, nothing read: the EPIPE/drop path
      continue;
    }

    const bool half_open = rng() % 4 == 0;
    if (half_open) c.shutdown_write();
    std::uint64_t owed = static_cast<std::uint64_t>(burst);
    tally.sent += owed;
    while (owed > 0) {
      if (!c.read_line(&line, 15000)) {
        tally.orphaned += owed;
        break;
      }
      if (line.rfind("ok ", 0) == 0) {
        unsigned long long sid = 0, seq = 0;
        if (std::sscanf(line.c_str(), "ok %llu %llu", &sid, &seq) == 2) {
          if (sid < base ||
              sid >= base + static_cast<unsigned long long>(args.sessions)) {
            ++tally.misrouted;
          } else {
            auto [it, fresh] = last_seq.try_emplace(sid, seq);
            if (!fresh) {
              if (seq <= it->second) ++tally.out_of_order;
              it->second = seq;
            }
          }
        }
        ++tally.oks;
        --owed;
      } else if (line.rfind("err ", 0) == 0) {
        ++tally.errs;
        --owed;
      }
    }
    c.close();
  }
}

struct ResumeTally {
  std::uint64_t acked = 0;        // "ok" lines credited to this client
  std::uint64_t redriven = 0;     // steps sent more than once (suffix replay)
  std::uint64_t reconnects = 0;
  std::uint64_t err_retries = 0;  // chunks re-synced after an err reply
  std::uint64_t lost_commits = 0; // sync went backwards — durability broken
  std::uint64_t misrouted = 0;
  bool failed = false;
};

/// Crash-tolerant driver for one client: deterministic per-session
/// token plans, sync-then-drive chunks, reconnect with backoff on any
/// failure. The server's `pos` reply is the only source of truth for
/// progress — the client never assumes an unacked send was applied, so
/// a kill -9 at any point (even mid-chunk) re-drives exactly the
/// uncommitted suffix and the final digest table matches an
/// uninterrupted run.
void run_resume_client(const Args& args, int client, ResumeTally& tally) {
  const auto base = static_cast<serve::SessionId>(100 * client + 1);
  const int sessions = args.sessions;

  // Deterministic plans: session s of client k always gets the same
  // token stream, so any two runs (interrupted or not) drive identical
  // per-session inputs.
  std::vector<std::vector<int>> plan(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    const int n = args.steps / sessions + (s < args.steps % sessions ? 1 : 0);
    std::mt19937_64 rng(args.seed * 6364136223846793005ULL +
                        static_cast<std::uint64_t>(client) * 1000003ULL +
                        static_cast<std::uint64_t>(s));
    auto& tokens = plan[static_cast<std::size_t>(s)];
    tokens.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      tokens.push_back(
          static_cast<int>(rng() % static_cast<std::uint64_t>(args.vocab)));
    }
  }

  serve::ResumeEndpoint ep;
  const bool use_tcp =
      args.tcp_port >= 0 && (args.socket_path.empty() || client % 2 == 1);
  if (use_tcp) {
    ep.tcp_host = args.tcp_host;
    ep.tcp_port = args.tcp_port;
  } else {
    ep.unix_path = args.socket_path;
  }
  serve::ResumingClient rc(ep);
  std::string error;
  if (!rc.connect(&error)) {
    std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
    tally.failed = true;
    return;
  }

  std::vector<std::uint64_t> high(static_cast<std::size_t>(sessions), 0);
  std::vector<std::uint64_t> sent_high(static_cast<std::size_t>(sessions), 0);
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (int s = 0; s < sessions; ++s) {
      const auto sid = base + static_cast<serve::SessionId>(s);
      const auto& tokens = plan[static_cast<std::size_t>(s)];
      serve::SyncedPos pos;
      if (!rc.sync(sid, &pos, 15000, &error)) {
        if (!rc.connect(&error)) {
          std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
          tally.failed = true;
          return;
        }
        ++tally.reconnects;
        all_done = false;
        continue;
      }
      if (pos.steps < high[static_cast<std::size_t>(s)]) {
        // The server once answered `pos` (or "ok") past this point:
        // those steps were committed. Seeing them gone after a restart
        // is exactly the data loss the journal exists to prevent.
        std::fprintf(stderr,
                     "client %d session %llu: committed steps lost "
                     "(had %llu, sync says %llu)\n",
                     client, (unsigned long long)sid,
                     (unsigned long long)high[static_cast<std::size_t>(s)],
                     (unsigned long long)pos.steps);
        ++tally.lost_commits;
        tally.failed = true;
        return;
      }
      high[static_cast<std::size_t>(s)] = pos.steps;
      if (pos.steps > tokens.size()) {
        std::fprintf(stderr, "client %d session %llu: server ahead of plan\n",
                     client, (unsigned long long)sid);
        tally.failed = true;
        return;
      }
      if (pos.steps == tokens.size()) continue;  // session complete
      all_done = false;

      // Drive the next chunk of the uncommitted suffix, pipelined.
      const std::size_t from = pos.steps;
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(args.chunk), tokens.size() - from);
      bool send_ok = true;
      for (std::size_t i = 0; i < n && send_ok; ++i) {
        auto& sh = sent_high[static_cast<std::size_t>(s)];
        if (from + i < sh) {
          ++tally.redriven;
        } else {
          sh = from + i + 1;
        }
        send_ok = rc.send_line("step " + std::to_string(sid) + " " +
                               std::to_string(tokens[from + i]));
      }
      std::uint64_t got = 0;
      bool resync = false;
      std::string line;
      while (send_ok && got < n) {
        if (!rc.read_line(&line, 15000)) {
          resync = true;
          break;
        }
        if (line.rfind("ok ", 0) == 0) {
          unsigned long long ok_sid = 0, seq = 0;
          if (std::sscanf(line.c_str(), "ok %llu %llu", &ok_sid, &seq) == 2 &&
              ok_sid != sid) {
            ++tally.misrouted;  // only this session has steps in flight
            tally.failed = true;
            return;
          }
          ++got;
          ++tally.acked;
        } else if (line.rfind("err ", 0) == 0) {
          // timeout / unavailable: the step was dropped before touching
          // state — resync and re-drive. Brief pause so a quarantined
          // shard has time to come back.
          ++tally.err_retries;
          resync = true;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          break;
        }
        // pos lines from an earlier timed-out sync: skip.
      }
      if (!send_ok || (resync && !rc.conn().connected())) {
        if (!rc.connect(&error)) {
          std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
          tally.failed = true;
          return;
        }
        ++tally.reconnects;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(
        stderr,
        "usage: zss_loadgen (--socket=PATH | --tcp=PORT [--tcp-host=H])\n"
        "                   [--clients=N] [--steps=N] [--lives=N]\n"
        "                   [--rude=N] [--sessions=N] [--vocab=N]\n"
        "                   [--seed=S] [--quit] [--resume] [--chunk=N]\n");
    return 2;
  }

  if (args.resume) {
    std::vector<ResumeTally> tallies(static_cast<std::size_t>(args.clients));
    std::vector<std::thread> threads;
    for (int k = 0; k < args.clients; ++k) {
      threads.emplace_back([&, k] {
        run_resume_client(args, k, tallies[static_cast<std::size_t>(k)]);
      });
    }
    for (auto& t : threads) t.join();

    ResumeTally total;
    bool failed = false;
    for (const ResumeTally& t : tallies) {
      total.acked += t.acked;
      total.redriven += t.redriven;
      total.reconnects += t.reconnects;
      total.err_retries += t.err_retries;
      total.lost_commits += t.lost_commits;
      total.misrouted += t.misrouted;
      failed |= t.failed;
    }

    bool quit_ok = true;
    if (args.quit) {
      serve::ResumeEndpoint ep;
      if (args.tcp_port >= 0 && args.socket_path.empty()) {
        ep.tcp_host = args.tcp_host;
        ep.tcp_port = args.tcp_port;
      } else {
        ep.unix_path = args.socket_path;
      }
      serve::ResumingClient rc(ep);
      std::string error, line, last;
      if (!rc.connect(&error) || !rc.send_line("quit")) {
        std::fprintf(stderr, "quit connection failed: %s\n", error.c_str());
        quit_ok = false;
      } else {
        while (rc.read_line(&line, 15000)) last = line;
        quit_ok = rc.conn().eof() && last.rfind("bye ", 0) == 0;
        if (!quit_ok) {
          std::fprintf(stderr, "no bye on quit (last line: %s)\n",
                       last.c_str());
        }
      }
    }

    std::printf(
        "zss_loadgen: resume clients=%d acked=%llu redriven=%llu "
        "reconnects=%llu err_retries=%llu lost_commits=%llu misrouted=%llu\n",
        args.clients, (unsigned long long)total.acked,
        (unsigned long long)total.redriven,
        (unsigned long long)total.reconnects,
        (unsigned long long)total.err_retries,
        (unsigned long long)total.lost_commits,
        (unsigned long long)total.misrouted);
    if (failed || total.lost_commits > 0 || total.misrouted > 0 || !quit_ok) {
      std::fprintf(stderr, "zss_loadgen: resume run FAILED\n");
      return 1;
    }
    return 0;
  }

  std::vector<Tally> tallies(static_cast<std::size_t>(args.clients));
  std::vector<std::thread> threads;
  for (int k = 0; k < args.clients; ++k) {
    threads.emplace_back(
        [&, k] { run_client(args, k, tallies[static_cast<std::size_t>(k)]); });
  }
  for (auto& t : threads) t.join();

  Tally total;
  bool connect_failed = false;
  for (const Tally& t : tallies) {
    total.sent += t.sent;
    total.oks += t.oks;
    total.errs += t.errs;
    total.misrouted += t.misrouted;
    total.orphaned += t.orphaned;
    total.out_of_order += t.out_of_order;
    connect_failed |= t.connect_failed;
  }

  bool quit_ok = true;
  if (args.quit) {
    // One last connection asks the server to shut down; the final line
    // it reads must be the bye.
    serve::ClientConn c;
    std::string error, line, last;
    if (!connect_client(args, 0, c, &error) || !c.read_line(&line, 10000) ||
        !c.send_line("quit")) {
      std::fprintf(stderr, "quit connection failed: %s\n", error.c_str());
      quit_ok = false;
    } else {
      while (c.read_line(&line, 15000)) last = line;
      quit_ok = c.eof() && last.rfind("bye ", 0) == 0;
      if (!quit_ok) {
        std::fprintf(stderr, "no bye on quit (last line: %s)\n", last.c_str());
      }
    }
  }

  std::printf("zss_loadgen: clients=%d sent=%llu ok=%llu err=%llu "
              "misrouted=%llu orphaned=%llu out_of_order=%llu\n",
              args.clients, static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.oks),
              static_cast<unsigned long long>(total.errs),
              static_cast<unsigned long long>(total.misrouted),
              static_cast<unsigned long long>(total.orphaned),
              static_cast<unsigned long long>(total.out_of_order));

  const bool books_balance = total.oks + total.errs == total.sent;
  if (!books_balance) {
    std::fprintf(stderr, "zss_loadgen: ok+err != sent — responses lost\n");
  }
  if (total.misrouted > 0 || total.orphaned > 0 || total.out_of_order > 0 ||
      connect_failed || !books_balance || !quit_ok) {
    return 1;
  }
  return 0;
}
