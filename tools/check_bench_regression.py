#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against the checked-in reference.

Usage: check_bench_regression.py FRESH_JSON [REFERENCE_JSON]

Dispatches on the artifact's "bench" field:

* bench == "sparse_inference" (reference defaults to
  BENCH_sparse_inference.json):
    - Hard gates (exit 1): every row must be bit_exact (the exactness
      contract is binary); the batched skip path must beat the dense
      baseline where the per-lane kernel exists to win —
      wall_speedup >= 1.0 at batch 8 for every sparsity >= 0.5 (the
      regression that motivated the per-lane path was 0.87x there).
    - Soft warnings: any (sparsity, batch) cell whose wall_speedup
      dropped more than WARN_FRACTION below the reference.
    - The optional "int8" block (the quantized datapath) gets the same
      treatment: every int8 row must be bit_exact — here that means
      bit-identical to the serial integer reference twin, so a false is
      an arithmetic bug, never noise — and if the reference recorded an
      int8 block the fresh artifact must have one too (the quantized
      path silently disappearing from the bench is a regression). Soft
      warnings on int8 wall_speedup drift per cell and on the dense
      int8 GMAC/s throughput (and its ratio over fp32) dropping more
      than WARN_FRACTION below the reference recording.

* bench == "serving" (reference defaults to BENCH_serving.json):
    - Hard gates (exit 1): every tiering row must have
      restore_bit_exact=true and restore_corrupt=0 — a spill/restore
      round trip that loses bits is a correctness bug, not a perf
      regression (docs/store.md); the tiering block must be present.
      Every frontend row (the 1000-connection epoll-mux sweep) must
      have ok=true, misrouted=0 and lost=0 — a cross-connection
      delivery or an unanswered request through the front end is a
      routing bug, never noise — and the frontend block itself must
      be present with at least one row at >= 1000 connections.
      The stacked block (L-layer models through the sequential and the
      wavefront-pipelined flush) must be present and non-empty, and
      every row must have bit_exact=true — a pipelined or resharded
      run whose digests differ from the sequential 1-shard reference
      is a determinism bug in the wavefront, never noise.
      The recovery block (write-ahead journal: kill the pool halfway,
      restart, resume) must be present and non-empty, and every row
      must have recovered_bit_exact=true — a resumed run that does not
      land bit-identical to the uninterrupted oracle is a durability
      bug, never noise.
    - Soft warnings: cold-restore p50 latency more than WARN_FRACTION
      *slower* than the reference recording, warm-rate collapse
      (the tier silently degrading to RAM-only would show up here),
      frontend rps / p50 drifting more than WARN_FRACTION past
      the reference at the same shard count, and the journal-on
      throughput ratio (journal_rps / baseline_rps — the group-commit
      tax) dropping more than WARN_FRACTION below the reference at the
      same sync mode.

Wall-clock on shared CI runners is noisy, so time-based checks
annotate rather than fail; the references at the repo root are the
dev-machine recordings (docs/benchmarks.md).

Run by the native-bench CI job after each bench, and usable locally:
  ./tools/check_bench_regression.py build/BENCH_sparse_inference.json
  ./tools/check_bench_regression.py build/BENCH_serving.json
"""

import json
import sys

WARN_FRACTION = 0.20
HARD_GATE_BATCH = 8
HARD_GATE_MIN_SPARSITY = 0.5

DEFAULT_REFERENCE = {
    "sparse_inference": "BENCH_sparse_inference.json",
    "serving": "BENCH_serving.json",
}


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}")
        sys.exit(2)
    if data.get("bench") not in DEFAULT_REFERENCE:
        print(f"error: {path} is not a recognized BENCH_*.json artifact")
        sys.exit(2)
    return data


def cells(data):
    return {(r["sparsity"], r["batch"]): r for r in data["results"]}


def check_sparse_inference(fresh, ref, failures, warnings):
    for (sparsity, batch), row in sorted(cells(fresh).items()):
        if not row.get("bit_exact", False):
            failures.append(
                f"bit_exact=false at sparsity {sparsity} batch {batch}"
            )
        if batch == HARD_GATE_BATCH and sparsity >= HARD_GATE_MIN_SPARSITY:
            if row["wall_speedup"] < 1.0:
                failures.append(
                    f"wall_speedup {row['wall_speedup']:.3f} < 1.0 at "
                    f"sparsity {sparsity} batch {batch} — the batched skip "
                    f"path lost to the dense baseline again"
                )

    ref_cells = cells(ref)
    for key, row in sorted(cells(fresh).items()):
        ref_row = ref_cells.get(key)
        if ref_row is None:
            warnings.append(f"cell {key} missing from reference")
            continue
        floor = ref_row["wall_speedup"] * (1.0 - WARN_FRACTION)
        if row["wall_speedup"] < floor:
            warnings.append(
                f"wall_speedup at sparsity {key[0]} batch {key[1]}: "
                f"{row['wall_speedup']:.3f} vs reference "
                f"{ref_row['wall_speedup']:.3f} "
                f"(-{(1 - row['wall_speedup'] / ref_row['wall_speedup']) * 100:.0f}%)"
            )
    return len(cells(fresh)) + check_int8(fresh, ref, failures, warnings)


def check_int8(fresh, ref, failures, warnings):
    """The quantized block of a sparse_inference artifact (if any)."""
    fresh_int8 = fresh.get("int8")
    ref_int8 = ref.get("int8")
    if fresh_int8 is None:
        if ref_int8 is not None:
            failures.append(
                "int8 block missing — the reference records the quantized "
                "datapath but the fresh bench did not run it"
            )
        return 0

    for (sparsity, batch), row in sorted(cells(fresh_int8).items()):
        if not row.get("bit_exact", False):
            failures.append(
                f"int8 bit_exact=false at sparsity {sparsity} batch {batch} "
                f"— the quantized path diverged from its integer reference "
                f"twin; this is an arithmetic bug, not noise"
            )

    if ref_int8 is None:
        warnings.append("reference has no int8 block; skipping int8 drift")
        return len(cells(fresh_int8))

    ref_cells = cells(ref_int8)
    for key, row in sorted(cells(fresh_int8).items()):
        ref_row = ref_cells.get(key)
        if ref_row is None:
            warnings.append(f"int8 cell {key} missing from reference")
            continue
        floor = ref_row["wall_speedup"] * (1.0 - WARN_FRACTION)
        if row["wall_speedup"] < floor:
            warnings.append(
                f"int8 wall_speedup at sparsity {key[0]} batch {key[1]}: "
                f"{row['wall_speedup']:.3f} vs reference "
                f"{ref_row['wall_speedup']:.3f} "
                f"(-{(1 - row['wall_speedup'] / ref_row['wall_speedup']) * 100:.0f}%)"
            )
    for field in ("dense_int8_gmacs", "dense_int8_vs_fp32"):
        fresh_v = fresh_int8.get(field)
        ref_v = ref_int8.get(field)
        if fresh_v is None or ref_v is None:
            continue
        if fresh_v < ref_v * (1.0 - WARN_FRACTION):
            warnings.append(
                f"int8 {field}: {fresh_v:.3f} vs reference {ref_v:.3f} "
                f"(-{(1 - fresh_v / ref_v) * 100:.0f}%) — the quantized "
                f"dense throughput edge is eroding"
            )
    return len(cells(fresh_int8))


def check_serving(fresh, ref, failures, warnings):
    tiering = fresh.get("tiering", [])
    if not tiering:
        failures.append(
            "tiering block missing or empty — the spill tier was not "
            "exercised (bench/bench_serving.cc writes one row per "
            "encoding flavour)"
        )
    ref_tiering = {r.get("encoded"): r for r in ref.get("tiering", [])}
    for row in tiering:
        flavour = "encoded" if row.get("encoded") else "dense"
        if not row.get("restore_bit_exact", False):
            failures.append(
                f"restore_bit_exact=false ({flavour}) — a spill/restore "
                f"round trip lost bits; the tier's core invariant is broken"
            )
        if row.get("restore_corrupt", 0) != 0:
            failures.append(
                f"restore_corrupt={row['restore_corrupt']} ({flavour}) on a "
                f"clean run — records corrupted without injected faults"
            )
        ref_row = ref_tiering.get(row.get("encoded"))
        if ref_row is None:
            warnings.append(f"tiering flavour '{flavour}' missing from reference")
            continue
        ceiling = ref_row["cold_restore_p50_us"] * (1.0 + WARN_FRACTION)
        if row["cold_restore_p50_us"] > ceiling:
            warnings.append(
                f"cold_restore_p50_us ({flavour}): "
                f"{row['cold_restore_p50_us']:.2f} vs reference "
                f"{ref_row['cold_restore_p50_us']:.2f} "
                f"(+{(row['cold_restore_p50_us'] / ref_row['cold_restore_p50_us'] - 1) * 100:.0f}%)"
            )
        floor = ref_row["warm_rate"] * (1.0 - WARN_FRACTION)
        if row["warm_rate"] < floor:
            warnings.append(
                f"warm_rate ({flavour}): {row['warm_rate']:.3f} vs reference "
                f"{ref_row['warm_rate']:.3f} — restores stopped happening; "
                f"is the tier degrading to RAM-only?"
            )
    rows = len(tiering)

    stacked = fresh.get("stacked", [])
    if not stacked:
        failures.append(
            "stacked block missing or empty — the L-layer serving path "
            "(sequential + wavefront-pipelined flush) was not exercised "
            "(bench/bench_serving.cc writes one row per layers x shards "
            "x schedule)"
        )
    ref_stacked = {
        (r.get("layers"), r.get("shards"), r.get("pipeline")): r
        for r in ref.get("stacked", [])
    }
    for row in stacked:
        key = (row.get("layers"), row.get("shards"), row.get("pipeline"))
        label = (
            f"layers={key[0]} shards={key[1]} "
            f"pipeline={'on' if key[2] else 'off'}"
        )
        if not row.get("bit_exact", False):
            failures.append(
                f"stacked bit_exact=false ({label}) — the run's digests "
                f"diverged from the sequential 1-shard reference; the "
                f"wavefront broke determinism"
            )
        ref_row = ref_stacked.get(key)
        if ref_row is None:
            warnings.append(f"stacked row ({label}) missing from reference")
            continue
        floor = ref_row["wall_rps"] * (1.0 - WARN_FRACTION)
        if row["wall_rps"] < floor:
            warnings.append(
                f"stacked wall_rps ({label}): {row['wall_rps']:.1f} vs "
                f"reference {ref_row['wall_rps']:.1f} "
                f"(-{(1 - row['wall_rps'] / ref_row['wall_rps']) * 100:.0f}%)"
            )
    rows += len(stacked)

    recovery = fresh.get("recovery", [])
    if not recovery:
        failures.append(
            "recovery block missing or empty — the write-ahead journal's "
            "kill/restart/resume path was not exercised "
            "(bench/bench_serving.cc writes one row per journal-sync mode)"
        )
    ref_recovery = {r.get("journal_sync"): r for r in ref.get("recovery", [])}
    for row in recovery:
        label = f"journal_sync={row.get('journal_sync')}"
        if not row.get("recovered_bit_exact", False):
            failures.append(
                f"recovered_bit_exact=false ({label}) — after a mid-run "
                f"kill, restart + resume did not reproduce the "
                f"uninterrupted run's digests; committed work was lost or "
                f"mutated (docs/serving.md 'Crash recovery')"
            )
        if row.get("recovered_sessions", 0) == 0:
            failures.append(
                f"recovered_sessions=0 ({label}) — the restart recovered "
                f"nothing; the journal was never written or never replayed"
            )
        ref_row = ref_recovery.get(row.get("journal_sync"))
        if ref_row is None:
            warnings.append(f"recovery row ({label}) missing from reference")
            continue
        floor = ref_row["journal_ratio"] * (1.0 - WARN_FRACTION)
        if row["journal_ratio"] < floor:
            warnings.append(
                f"journal_ratio ({label}): {row['journal_ratio']:.3f} vs "
                f"reference {ref_row['journal_ratio']:.3f} "
                f"(-{(1 - row['journal_ratio'] / ref_row['journal_ratio']) * 100:.0f}%)"
                f" — the journal's group-commit tax is growing"
            )
    rows += len(recovery)

    frontend = fresh.get("frontend", [])
    if not frontend:
        failures.append(
            "frontend block missing or empty — the epoll connection front "
            "end was not exercised (bench/bench_serving.cc drives 1000+ "
            "concurrent sockets through it)"
        )
    elif not any(r.get("connections", 0) >= 1000 for r in frontend):
        failures.append(
            "no frontend row reaches 1000 concurrent connections — the "
            "bench ran below the acceptance floor"
        )
    ref_frontend = {r.get("shards"): r for r in ref.get("frontend", [])}
    for row in frontend:
        label = f"shards={row.get('shards')} conns={row.get('connections')}"
        if not row.get("ok", False):
            failures.append(
                f"frontend ok=false ({label}) — setup or connect failed; "
                f"the sweep never ran"
            )
        if row.get("misrouted", 0) != 0:
            failures.append(
                f"frontend misrouted={row['misrouted']} ({label}) — a "
                f"response reached a connection that never asked for it; "
                f"connection-id routing is broken"
            )
        if row.get("lost", 0) != 0:
            failures.append(
                f"frontend lost={row['lost']} ({label}) — requests went "
                f"unanswered before the deadline"
            )
        ref_row = ref_frontend.get(row.get("shards"))
        if ref_row is None:
            warnings.append(f"frontend row ({label}) missing from reference")
            continue
        floor = ref_row["rps"] * (1.0 - WARN_FRACTION)
        if row["rps"] < floor:
            warnings.append(
                f"frontend rps ({label}): {row['rps']:.1f} vs reference "
                f"{ref_row['rps']:.1f} "
                f"(-{(1 - row['rps'] / ref_row['rps']) * 100:.0f}%)"
            )
        ceiling = ref_row["p50_us"] * (1.0 + WARN_FRACTION)
        if row["p50_us"] > ceiling:
            warnings.append(
                f"frontend p50_us ({label}): {row['p50_us']:.2f} vs "
                f"reference {ref_row['p50_us']:.2f} "
                f"(+{(row['p50_us'] / ref_row['p50_us'] - 1) * 100:.0f}%)"
            )
    return rows + len(frontend)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    fresh = load(fresh_path)
    kind = fresh["bench"]
    ref_path = argv[2] if len(argv) > 2 else DEFAULT_REFERENCE[kind]
    ref = load(ref_path)
    if ref.get("bench") != kind:
        print(
            f"error: bench kind mismatch: {fresh_path} is '{kind}' but "
            f"{ref_path} is '{ref.get('bench')}'"
        )
        return 2

    failures = []
    warnings = []
    if fresh.get("kernel_backend") != ref.get("kernel_backend"):
        print(
            f"note: backends differ (fresh={fresh.get('kernel_backend')}, "
            f"reference={ref.get('kernel_backend')}); speedup comparison "
            f"is still meaningful (both are ratios on one machine) but "
            f"expect larger drift"
        )
    if kind == "sparse_inference":
        checked = check_sparse_inference(fresh, ref, failures, warnings)
        unit = "cells"
    else:
        checked = check_serving(fresh, ref, failures, warnings)
        unit = "tiering+stacked+recovery+frontend rows"

    for w in warnings:
        print(f"warning: {w}")
    for f_ in failures:
        print(f"FAIL: {f_}")
    if failures:
        return 1
    print(
        f"bench regression check passed ({kind}): {checked} {unit}, "
        f"{len(warnings)} warning(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
