#!/usr/bin/env python3
"""Gate BENCH_sparse_inference.json against the checked-in reference.

Usage: check_bench_regression.py FRESH_JSON [REFERENCE_JSON]

Two kinds of checks, mirroring how the numbers are used:

* Hard gates (exit 1):
    - every row must be bit_exact (the exactness contract is binary);
    - the batched skip path must actually beat the dense baseline where
      the per-lane kernel exists to win: wall_speedup >= 1.0 at batch 8
      for every sparsity >= 0.5 (the regression that motivated the
      per-lane path was 0.87x exactly there).
* Soft warnings (printed, exit stays 0): any (sparsity, batch) cell
  whose wall_speedup dropped more than WARN_FRACTION below the
  reference recording. Wall-clock on shared CI runners is noisy, so
  these annotate rather than fail; the reference at the repo root is
  the dev-machine recording (docs/benchmarks.md).

Run by the native-bench CI job after bench_sparse_vs_dense, and usable
locally: ./tools/check_bench_regression.py build/BENCH_sparse_inference.json
"""

import json
import sys

WARN_FRACTION = 0.20
HARD_GATE_BATCH = 8
HARD_GATE_MIN_SPARSITY = 0.5


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}")
        sys.exit(2)
    if data.get("bench") != "sparse_inference" or "results" not in data:
        print(f"error: {path} is not a BENCH_sparse_inference.json artifact")
        sys.exit(2)
    return data


def cells(data):
    return {(r["sparsity"], r["batch"]): r for r in data["results"]}


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    ref_path = argv[2] if len(argv) > 2 else "BENCH_sparse_inference.json"
    fresh = load(fresh_path)
    ref = load(ref_path)

    failures = []
    warnings = []

    for (sparsity, batch), row in sorted(cells(fresh).items()):
        if not row.get("bit_exact", False):
            failures.append(
                f"bit_exact=false at sparsity {sparsity} batch {batch}"
            )
        if batch == HARD_GATE_BATCH and sparsity >= HARD_GATE_MIN_SPARSITY:
            if row["wall_speedup"] < 1.0:
                failures.append(
                    f"wall_speedup {row['wall_speedup']:.3f} < 1.0 at "
                    f"sparsity {sparsity} batch {batch} — the batched skip "
                    f"path lost to the dense baseline again"
                )

    ref_cells = cells(ref)
    if fresh.get("kernel_backend") != ref.get("kernel_backend"):
        print(
            f"note: backends differ (fresh={fresh.get('kernel_backend')}, "
            f"reference={ref.get('kernel_backend')}); speedup comparison "
            f"is still meaningful (both are ratios on one machine) but "
            f"expect larger drift"
        )
    for key, row in sorted(cells(fresh).items()):
        ref_row = ref_cells.get(key)
        if ref_row is None:
            warnings.append(f"cell {key} missing from reference")
            continue
        floor = ref_row["wall_speedup"] * (1.0 - WARN_FRACTION)
        if row["wall_speedup"] < floor:
            warnings.append(
                f"wall_speedup at sparsity {key[0]} batch {key[1]}: "
                f"{row['wall_speedup']:.3f} vs reference "
                f"{ref_row['wall_speedup']:.3f} "
                f"(-{(1 - row['wall_speedup'] / ref_row['wall_speedup']) * 100:.0f}%)"
            )

    for w in warnings:
        print(f"warning: {w}")
    for f_ in failures:
        print(f"FAIL: {f_}")
    if failures:
        return 1
    print(
        f"bench regression check passed: {len(cells(fresh))} cells, "
        f"{len(warnings)} warning(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
