// zss_sim — command-line front end for the accelerator model.
//
// Evaluate any LSTM workload shape on any accelerator configuration
// without writing code:
//
//   zss_sim --dh=1000 --dx=50 --one-hot --batch=8 --sparsity=0.81
//   zss_sim --task=word --batch=16 --sparsity=0.41 --gbps=102.4
//   zss_sim --task=mnist --dense
//
// Prints cycles per timestep (with the phase breakdown), GOPS, GOPS/W,
// PE utilization and DRAM traffic.
#include <cstdio>
#include <string>

#include "accel/energy.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "num/rng.h"

namespace {

using namespace zss;

struct Args {
  std::string task;  // "", "char", "word", "mnist"
  num::Index dh = 1000;
  num::Index dx = 50;
  bool one_hot = true;
  num::Index batch = 1;
  double sparsity = -1.0;  // <0 = dense
  num::Index steps = 20;
  double gbps = 51.2;
  num::Index tiles = 4;
  num::Index pes = 48;
  bool component_energy = false;
  std::uint64_t seed = 1;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("task")) {
      args.task = v;
    } else if (const char* v = value("dh")) {
      args.dh = std::atol(v);
    } else if (const char* v = value("dx")) {
      args.dx = std::atol(v);
    } else if (a == "--one-hot") {
      args.one_hot = true;
    } else if (a == "--dense-input") {
      args.one_hot = false;
    } else if (const char* v = value("batch")) {
      args.batch = std::atol(v);
    } else if (const char* v = value("sparsity")) {
      args.sparsity = std::atof(v);
    } else if (a == "--dense") {
      args.sparsity = -1.0;
    } else if (const char* v = value("steps")) {
      args.steps = std::atol(v);
    } else if (const char* v = value("gbps")) {
      args.gbps = std::atof(v);
    } else if (const char* v = value("tiles")) {
      args.tiles = std::atol(v);
    } else if (const char* v = value("pes")) {
      args.pes = std::atol(v);
    } else if (a == "--component") {
      args.component_energy = true;
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::puts(
      "zss_sim: cycle-level zero-state-skipping LSTM accelerator model\n"
      "  --task=char|word|mnist   paper workload presets, or:\n"
      "  --dh=N --dx=N            custom dimensions\n"
      "  --one-hot|--dense-input  how x_t arrives (default one-hot)\n"
      "  --batch=N                lanes (<= scratch entries, default 1)\n"
      "  --sparsity=S|--dense     intersected state sparsity in [0,1]\n"
      "  --steps=N                timesteps to simulate (default 20)\n"
      "  --gbps=G                 DRAM bandwidth (default 51.2)\n"
      "  --tiles=N --pes=N        PE array (default 4 x 48)\n"
      "  --component              activity-based energy model\n"
      "  --seed=N                 mask RNG seed");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 1;
  }
  if (args.task == "char") {
    args.dh = 1000;
    args.dx = 50;
    args.one_hot = true;
  } else if (args.task == "word") {
    args.dh = 300;
    args.dx = 300;
    args.one_hot = false;
  } else if (args.task == "mnist") {
    args.dh = 100;
    args.dx = 1;
    args.one_hot = false;
  } else if (!args.task.empty()) {
    std::fprintf(stderr, "unknown task '%s'\n", args.task.c_str());
    return 1;
  }

  accel::AcceleratorConfig cfg;
  cfg.dram_gbps = args.gbps;
  cfg.tiles = args.tiles;
  cfg.pes_per_tile = args.pes;
  cfg.validate();

  const accel::WorkloadShape shape{
      args.dh, args.dx,
      args.one_hot ? accel::InputMode::kOneHot : accel::InputMode::kDense,
      args.batch};

  accel::Scheduler sched(cfg);
  accel::EnergyConfig ecfg;
  if (args.component_energy) ecfg.mode = accel::EnergyMode::kComponent;
  accel::EnergyModel energy(ecfg, cfg);
  num::Rng rng(args.seed);

  accel::RunTotals totals;
  accel::ScheduleStats last;
  double util_sum = 0.0;
  for (num::Index t = 0; t < args.steps; ++t) {
    if (args.sparsity < 0.0) {
      last = sched.run_timestep_dense(shape);
    } else {
      const auto mask =
          accel::mask_from_intersected_sparsity(shape, args.sparsity, rng);
      last = sched.run_timestep(shape, mask);
    }
    util_sum += last.pe_utilization();
    totals.add(last, shape);
  }

  std::printf("workload: d_h=%lld d_x=%lld %s batch=%lld %s\n",
              static_cast<long long>(args.dh),
              static_cast<long long>(args.dx),
              args.one_hot ? "one-hot" : "dense-input",
              static_cast<long long>(args.batch),
              args.sparsity < 0.0
                  ? "(dense state)"
                  : ("(sparsity " + std::to_string(args.sparsity) + ")")
                        .c_str());
  std::printf("accelerator: %lldx%lld PEs, %.1f Gbps (%lld weights/cycle), "
              "peak %.1f GOPS\n\n",
              static_cast<long long>(cfg.tiles),
              static_cast<long long>(cfg.pes_per_tile), cfg.dram_gbps,
              static_cast<long long>(cfg.weights_per_cycle()),
              cfg.peak_gops());

  std::printf("cycles/timestep: %lld (matvec h %lld, matvec x %lld, "
              "x-overlap %lld, elementwise %lld, encode %lld, fill %lld)\n",
              static_cast<long long>(last.cycles.total()),
              static_cast<long long>(last.cycles.matvec_state),
              static_cast<long long>(last.cycles.matvec_input),
              static_cast<long long>(last.cycles.input_overlap),
              static_cast<long long>(last.cycles.elementwise),
              static_cast<long long>(last.cycles.encode),
              static_cast<long long>(last.cycles.pipeline_fill));
  std::printf("throughput:      %.2f GOPS (equivalent)\n", totals.gops(cfg));
  std::printf("efficiency:      %.1f GOPS/W at %.1f mW\n",
              energy.gops_per_watt(totals),
              energy.average_power_w(totals) * 1000.0);
  std::printf("PE utilization:  %.1f%% (matvec phases)\n",
              util_sum / static_cast<double>(args.steps) * 100.0);
  std::printf("observed skip:   %.1f%% of state positions\n",
              totals.observed_sparsity() * 100.0);
  std::printf("DRAM traffic:    %.2f MB weights + %.3f MB states over %lld "
              "steps\n",
              static_cast<double>(totals.weight_bytes) / 1e6,
              static_cast<double>(totals.state_bytes) / 1e6,
              static_cast<long long>(totals.timesteps));
  return 0;
}
