#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/.

Scans the repo's front-door documentation (README.md, docs/*.md, and any
README.md under src/) for markdown links and image refs whose target is
a relative path, and verifies each target exists. External links
(http/https/mailto) and pure in-page anchors (#...) are skipped; a
"path#anchor" target is checked for the path part only.

Usage: check_doc_links.py [repo_root]     (exit 1 on any dead link)
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").rglob("*.md"))
    yield from sorted((root / "src").rglob("README.md"))


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    dead = []
    checked = 0
    for doc in doc_files(root):
        if not doc.is_file():
            continue
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                checked += 1
                if not (doc.parent / path).exists():
                    dead.append(f"{doc.relative_to(root)}:{lineno}: {target}")
    if dead:
        print(f"dead relative links ({len(dead)}):")
        for d in dead:
            print(f"  {d}")
        return 1
    print(f"checked {checked} relative links, all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
