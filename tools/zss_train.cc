// zss_train — train a pruned-state LSTM from the command line and save
// the parameters for later benching.
//
//   zss_train --task=char --sparsity=0.9 --epochs=3 --out=model.zssm
//   zss_train --task=char --layers=2 --hidden=32 --threshold=0.05
//             --out=tiny.zssm          (v2 serving checkpoint)
//   zss_train --task=word --sparsity=0.93 --hidden=48
//   zss_train --task=mnist --threshold=0.03 --epochs=15
//
// char/word use the target-sparsity pruner (controlled x-axis); mnist
// uses a fixed empirical threshold, matching the paper's protocol.
//
// --layers=N (char only) trains the stacked model and saves the v2
// serving checkpoint (core/model_io.h): architecture header, per-layer
// exported thresholds (StatePruner::effective_threshold calibrated on
// the test stream, so a --sparsity run serves with the deterministic
// fixed pruner), the default int8 quantization grid, canonical
// parameter names, CRC trailer. zss_serve --model=FILE serves it.
#include <cstdio>
#include <string>

#include "core/zss.h"

namespace {

using namespace zss;

struct Args {
  std::string task = "char";
  double sparsity = 0.0;
  double threshold = 0.0;
  num::Index hidden = 0;  // 0 = per-task default
  num::Index layers = 0;  // >0: stacked char model + v2 checkpoint
  int epochs = 3;
  std::string out;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("task")) {
      args.task = v;
    } else if (const char* v = value("sparsity")) {
      args.sparsity = std::atof(v);
    } else if (const char* v = value("threshold")) {
      args.threshold = std::atof(v);
    } else if (const char* v = value("hidden")) {
      args.hidden = std::atol(v);
    } else if (const char* v = value("layers")) {
      args.layers = std::atol(v);
    } else if (const char* v = value("epochs")) {
      args.epochs = std::atoi(v);
    } else if (const char* v = value("out")) {
      args.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: zss_train --task=char|word|mnist "
                   "[--sparsity=S | --threshold=T] [--hidden=N] "
                   "[--layers=N] [--epochs=N] [--out=FILE]\n"
                   "       (--layers trains the stacked char model and "
                   "saves a v2 serving checkpoint)\n");
      return false;
    }
  }
  if (args.layers > 0 && args.task != "char") {
    std::fprintf(stderr, "--layers only applies to --task=char\n");
    return false;
  }
  return true;
}

core::PrunerConfig pruner_from(const Args& args) {
  if (args.threshold > 0.0) {
    return core::PrunerConfig::fixed(static_cast<float>(args.threshold));
  }
  if (args.sparsity > 0.0) return core::PrunerConfig::target(args.sparsity);
  return core::PrunerConfig::none();
}

int train_lm(const Args& args, bool word_task) {
  core::LmConfig cfg;
  cfg.pruner = pruner_from(args);

  std::vector<num::Index> train;
  std::vector<num::Index> test;
  if (word_task) {
    data::WordCorpusConfig dcfg;
    dcfg.vocab_size = 1000;
    dcfg.train_tokens = 22000;
    dcfg.valid_tokens = 2000;
    dcfg.test_tokens = 2500;
    const auto corpus = data::WordCorpus::generate(dcfg);
    train = corpus.train();
    test = corpus.test();
    cfg.vocab = corpus.vocab_size();
    cfg.embed_dim = 48;
    cfg.hidden = args.hidden > 0 ? args.hidden : 48;
    cfg.dropout = 0.5;
  } else {
    data::CharCorpusConfig dcfg;
    dcfg.train_chars = 30000;
    dcfg.valid_chars = 3000;
    dcfg.test_chars = 3000;
    const auto corpus = data::CharCorpus::generate(dcfg);
    train = corpus.train();
    test = corpus.test();
    cfg.vocab = data::CharCorpus::kVocab;
    cfg.hidden = args.hidden > 0 ? args.hidden : 64;
  }

  core::PrunedLstmLm model(cfg);
  std::unique_ptr<nn::Optimizer> opt;
  if (word_task) {
    opt = std::make_unique<nn::Sgd>(1.0f);
  } else {
    opt = std::make_unique<nn::Adam>(2e-3f);
  }
  data::LmBatcher batcher(train, 8, word_task ? 35 : 25);
  for (int e = 0; e < args.epochs; ++e) {
    double nll = 0.0;
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      nll = model.train_window(batcher.window(w), *opt, 5.0f);
    }
    if (word_task) static_cast<nn::Sgd*>(opt.get())->decay(1.2f);
    std::printf("epoch %d: train NLL %.4f\n", e, nll);
  }
  const auto eval = model.evaluate(test, 4, word_task ? 35 : 25);
  std::printf("test: %s %.4f, state sparsity %.1f%%\n",
              word_task ? "PPW" : "BPC", word_task ? eval.ppw : eval.bpc,
              eval.state_sparsity * 100.0);
  if (!args.out.empty()) {
    auto params = model.parameters();
    if (!core::save_parameters(args.out, params)) {
      std::fprintf(stderr, "failed to write %s\n", args.out.c_str());
      return 1;
    }
    std::printf("saved parameters to %s\n", args.out.c_str());
  }
  return 0;
}

/// Stacked char LM + v2 serving checkpoint (--layers=N).
int train_stacked_char(const Args& args) {
  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 30000;
  dcfg.valid_chars = 3000;
  dcfg.test_chars = 3000;
  const auto corpus = data::CharCorpus::generate(dcfg);
  const std::vector<num::Index> train = corpus.train();
  const std::vector<num::Index> test = corpus.test();

  core::StackedLmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.layers = args.layers;
  cfg.hidden = args.hidden > 0 ? args.hidden : 64;
  cfg.pruner = pruner_from(args);
  core::StackedPrunedLstmLm model(cfg);

  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(train, 8, 25);
  for (int e = 0; e < args.epochs; ++e) {
    double nll = 0.0;
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      nll = model.train_window(batcher.window(w), adam, 5.0f);
    }
    std::printf("epoch %d: train NLL %.4f\n", e, nll);
  }
  const auto eval = model.evaluate(test, 4, 25);
  std::printf("test: BPC %.4f, per-layer state sparsity:", eval.bpc);
  for (const double s : eval.layer_sparsity) std::printf(" %.1f%%", s * 100.0);
  std::printf("\n");

  if (args.out.empty()) return 0;

  // Export the trained pruning behavior as one fixed threshold per
  // layer — serving rejects data-dependent pruners, so a target-
  // sparsity run is frozen at its calibrated effective T here.
  const std::vector<float> thresholds =
      model.calibrate_thresholds(test, 4, 100);
  std::printf("calibrated thresholds:");
  for (const float t : thresholds) std::printf(" %.6f", t);
  std::printf("\n");

  core::ModelSpec spec;
  spec.layers = static_cast<std::uint32_t>(cfg.layers);
  spec.hidden = static_cast<std::uint32_t>(cfg.hidden);
  spec.input_dim = static_cast<std::uint32_t>(cfg.vocab);  // one-hot
  spec.vocab = static_cast<std::uint32_t>(cfg.vocab);
  spec.embed_dim = 0;
  // Always record the int8 grid: the serving default calibration
  // (core::QuantConfig) covers the char model's dynamic range, and a
  // checkpoint without a grid can never be served --quant.
  spec.has_quant_grid = 1;
  spec.quant_pre_clip = core::QuantConfig::int8().pre_clip;
  spec.quant_c_clip =
      static_cast<std::uint32_t>(core::QuantConfig::int8().c_clip);
  spec.thresholds = thresholds;

  // Rename onto the canonical checkpoint names (save_model verifies
  // them; the module-internal names differ).
  auto params = model.parameters();
  const auto expected = core::expected_parameters(spec);
  if (params.size() != expected.size()) {
    std::fprintf(stderr, "parameter count %zu != canonical %zu\n",
                 params.size(), expected.size());
    return 1;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->name = expected[i].name;
  }
  std::string error;
  if (!core::save_model(args.out, spec, params, &error)) {
    std::fprintf(stderr, "failed to write %s: %s\n", args.out.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("saved v2 checkpoint to %s (serve with zss_serve "
              "--model=%s)\n",
              args.out.c_str(), args.out.c_str());
  return 0;
}

int train_mnist(const Args& args) {
  data::GlyphConfig dcfg;
  dcfg.side = 10;
  dcfg.train_count = 700;
  dcfg.test_count = 200;
  dcfg.noise_stddev = 0.02;
  dcfg.jitter_fraction = 0.05;
  const auto images = data::GlyphImages::generate(dcfg);

  core::ClassifierConfig cfg;
  cfg.hidden = args.hidden > 0 ? args.hidden : 48;
  cfg.pruner = pruner_from(args);
  core::PrunedLstmClassifier model(cfg);
  nn::Adam adam(1e-3f);
  data::ImageBatcher batcher(images.train_images(), images.train_labels(),
                             20);
  num::Rng rng(17);
  for (int e = 0; e < args.epochs; ++e) {
    batcher.shuffle(rng);
    double nll = 0.0;
    for (num::Index b = 0; b < batcher.num_batches(); ++b) {
      nll = model.train_batch(batcher.batch(b), adam, 5.0f);
    }
    std::printf("epoch %d: train NLL %.4f\n", e, nll);
  }
  const auto eval = model.evaluate(images.test_images(), images.test_labels());
  std::printf("test: MER %.2f%%, state sparsity %.1f%%\n",
              eval.error_rate_percent, eval.state_sparsity * 100.0);
  if (!args.out.empty()) {
    auto params = model.parameters();
    if (!core::save_parameters(args.out, params)) {
      std::fprintf(stderr, "failed to write %s\n", args.out.c_str());
      return 1;
    }
    std::printf("saved parameters to %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;
  if (args.task == "char" && args.layers > 0) return train_stacked_char(args);
  if (args.task == "char") return train_lm(args, false);
  if (args.task == "word") return train_lm(args, true);
  if (args.task == "mnist") return train_mnist(args);
  std::fprintf(stderr, "unknown task '%s'\n", args.task.c_str());
  return 1;
}
