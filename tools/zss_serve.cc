// zss_serve — trace-replay and live-serving front end for src/serve/.
//
// Two serving modes over the same pool:
//
//   * Replay (--trace=FILE): replays a request trace under the
//     deterministic virtual clock and prints per-session output
//     digests. Because per-session outputs are bit-identical at any
//     shard count and any max-batch (docs/serving.md), running the
//     same trace with different --shards must print identical digest
//     tables — CI diffs exactly that.
//   * Live (--live): persistent per-shard worker threads serve a
//     line-oriented streaming protocol (serve/protocol.h) on
//     stdin/stdout, or on a UNIX socket with --socket=PATH. With
//     --record=FILE every accepted request is written back out as a
//     trace, and replaying that file reproduces the live run's digest
//     table bit-for-bit — the live loop's determinism contract, and
//     what CI's live-smoke step diffs.
//
//   zss_serve --trace=data/traces/serving_200.txt --shards=4
//   zss_serve --live --shards=4 --record=run.txt --digests=live.txt
//   zss_serve --live --socket=/tmp/zss.sock --ttl-us=60000000
//   zss_serve --emit-trace=200 --sessions=16 --gap-us=150 > trace.txt
//
// The model is a seeded randomly-initialized cell (this is a serving
// harness, not an accuracy demo); --threshold sets the fixed pruning
// threshold the sessions' stored states are pruned with. --ttl-us and
// --max-sessions bound the per-shard session stores in either mode
// (give the replay the same values to reproduce a recorded live run).
#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "serve/protocol.h"
#include "serve/trace.h"
#include "serve/worker.h"
#include "store/lockfile.h"

namespace {

using namespace zss;

struct Args {
  std::string trace;
  std::string digests_path;
  std::string socket_path;
  std::string record_path;
  std::string spill_dir;
  bool spill_encoded = false;
  num::Index emit_trace = 0;  // >0: generate instead of serve
  bool live = false;
  num::Index shards = 1;
  num::Index max_batch = 8;
  std::int64_t max_wait_us = 200;
  std::int64_t ttl_us = -1;
  num::Index max_sessions = 0;
  num::Index max_queue = 0;
  num::Index dh = 256;
  num::Index dx = 32;
  num::Index sessions = 16;
  std::int64_t gap_us = 150;
  float threshold = 0.05f;  // ~60-80% observed sparsity on the seeded cell
  std::uint64_t seed = 1;
  bool dump = false;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("trace")) {
      args.trace = v;
    } else if (const char* v = value("digests")) {
      args.digests_path = v;
    } else if (const char* v = value("socket")) {
      args.socket_path = v;
    } else if (const char* v = value("record")) {
      args.record_path = v;
    } else if (const char* v = value("spill-dir")) {
      args.spill_dir = v;
    } else if (a == "--spill-encoded") {
      args.spill_encoded = true;
    } else if (const char* v = value("emit-trace")) {
      args.emit_trace = std::atol(v);
    } else if (a == "--live") {
      args.live = true;
    } else if (const char* v = value("shards")) {
      args.shards = std::atol(v);
    } else if (const char* v = value("max-batch")) {
      args.max_batch = std::atol(v);
    } else if (const char* v = value("max-wait-us")) {
      args.max_wait_us = std::atol(v);
    } else if (const char* v = value("ttl-us")) {
      args.ttl_us = std::atoll(v);
    } else if (const char* v = value("max-sessions")) {
      args.max_sessions = std::atol(v);
    } else if (const char* v = value("max-queue")) {
      args.max_queue = std::atol(v);
    } else if (const char* v = value("dh")) {
      args.dh = std::atol(v);
    } else if (const char* v = value("dx")) {
      args.dx = std::atol(v);
    } else if (const char* v = value("sessions")) {
      args.sessions = std::atol(v);
    } else if (const char* v = value("gap-us")) {
      args.gap_us = std::atol(v);
    } else if (const char* v = value("threshold")) {
      args.threshold = static_cast<float>(std::atof(v));
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--dump") {
      args.dump = true;
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  // Report bad values as usage errors here; the library layers treat
  // them as contract violations and abort.
  if (args.shards < 1 || args.max_batch < 1 || args.max_wait_us < 0 ||
      args.dh < 1 ||
      args.dx < 1 || args.sessions < 1 || args.gap_us < 0 ||
      args.threshold < 0.0f || args.max_sessions < 0 || args.max_queue < 0) {
    std::fprintf(stderr,
                 "invalid flag value (need shards/max-batch/dh/dx/sessions "
                 ">= 1, max-wait-us/gap-us/max-sessions/max-queue >= 0, "
                 "threshold >= 0)\n");
    return false;
  }
  if (args.max_sessions > 0 && args.max_sessions <= args.max_batch) {
    std::fprintf(stderr, "--max-sessions must exceed --max-batch (a whole "
                         "batch is pinned while it is served)\n");
    return false;
  }
  // Reject flag combinations that would otherwise be silently ignored
  // (a script passing --live --trace=... would block on stdin forever;
  // --trace with --record would exit success without writing the file).
  const int modes = (args.live ? 1 : 0) + (!args.trace.empty() ? 1 : 0) +
                    (args.emit_trace > 0 ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "--live, --trace and --emit-trace are mutually exclusive\n");
    return false;
  }
  if (!args.live && (!args.socket_path.empty() || !args.record_path.empty() ||
                     args.max_queue > 0)) {
    std::fprintf(stderr,
                 "--socket/--record/--max-queue only apply to --live\n");
    return false;
  }
  // The spill tier serves the session stores, so it applies to both
  // serving modes (a replay of a recorded spill run needs the same
  // tier to reproduce it) — but never to trace generation.
  if (args.spill_encoded && args.spill_dir.empty()) {
    std::fprintf(stderr, "--spill-encoded requires --spill-dir\n");
    return false;
  }
  if (!args.spill_dir.empty() && args.emit_trace > 0) {
    std::fprintf(stderr, "--spill-dir does not apply to --emit-trace\n");
    return false;
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: zss_serve --trace=FILE [--shards=N] [--max-batch=B]\n"
      "                 [--max-wait-us=U] [--dh=D] [--dx=D]\n"
      "                 [--threshold=T] [--seed=S] [--ttl-us=T]\n"
      "                 [--max-sessions=N] [--dump] [--digests=FILE]\n"
      "                 [--spill-dir=DIR] [--spill-encoded]\n"
      "   or: zss_serve --live [same model/policy flags] [--socket=PATH]\n"
      "                 [--record=FILE] [--max-queue=N]   (protocol: see\n"
      "                 docs/serving.md \"Live mode\"; stdin/stdout default)\n"
      "   or: zss_serve --emit-trace=N [--sessions=S] [--vocab via --dx]\n"
      "                 [--gap-us=G] [--seed=S]   (writes trace to stdout)\n");
}

struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = serve::kFnvOffset;
};

using DigestTable = std::map<serve::SessionId, SessionDigest>;

/// Folds one response into its session's rolling digest and returns
/// the row digest — computed exactly once, so the live mode can share
/// it with the protocol "ok" line instead of hashing the row twice.
std::uint64_t fold_response(DigestTable& table, const serve::Response& r) {
  const std::uint64_t row = serve::digest_row(r.h);
  SessionDigest& d = table[r.session];
  d.digest = serve::fnv1a(d.digest, &row, sizeof row);
  ++d.steps;
  return row;
}

/// Prints the table in the one format both modes share, so
/// `diff live_digests replay_digests` is the determinism gate.
/// `cap_active`: the LRU cap is per shard, so with --max-sessions set
/// the cross-shard-count half of the claim does not hold (the
/// record/replay half always does) — don't invite a false bug report.
void print_digests(const DigestTable& table, const std::string& path,
                   bool cap_active) {
  if (cap_active) {
    std::printf("\nper-session digests (bit-identical for any --max-batch "
                "and vs record/replay at equal --shards; --max-sessions is "
                "per shard):\n");
  } else {
    std::printf("\nper-session digests (bit-identical for any --shards / "
                "--max-batch):\n");
  }
  std::FILE* df = nullptr;
  if (!path.empty()) {
    df = std::fopen(path.c_str(), "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }
  for (const auto& [id, d] : table) {  // std::map: sorted by id
    std::printf("session %" PRIu64 " steps %" PRIu64 " digest %016" PRIx64 "\n",
                id, d.steps, d.digest);
    if (df != nullptr) {
      std::fprintf(df, "session %" PRIu64 " steps %" PRIu64
                       " digest %016" PRIx64 "\n",
                   id, d.steps, d.digest);
    }
  }
  if (df != nullptr) {
    std::fclose(df);
    std::printf("wrote %s\n", path.c_str());
  }
}

serve::PoolConfig pool_config(const Args& args) {
  serve::PoolConfig config;
  config.shards = args.shards;
  config.policy.max_batch = args.max_batch;
  config.policy.max_wait_us = args.max_wait_us;
  config.session_ttl.ttl_us = args.ttl_us;
  config.session_ttl.max_sessions = args.max_sessions;
  config.spill.dir = args.spill_dir;
  config.spill.encoded = args.spill_encoded;
  return config;
}

/// Creates --spill-dir if needed and takes its exclusive ownership
/// lock. Two instances appending into the same segment files would
/// destroy the valid-prefix invariant recovery depends on, so a held
/// lock is a hard startup refusal, not a warning (docs/store.md). The
/// lock must outlive the pool — keep the DirLock in the caller's scope.
bool acquire_spill_lock(const Args& args, store::DirLock& lock) {
  if (args.spill_dir.empty()) return true;
  if (::mkdir(args.spill_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "zss_serve: cannot create spill dir %s: %s\n",
                 args.spill_dir.c_str(), std::strerror(errno));
    return false;
  }
  if (!lock.acquire(args.spill_dir)) {
    std::fprintf(stderr, "zss_serve: refusing to start: %s\n",
                 lock.error().c_str());
    return false;
  }
  return true;
}

int run_replay(const Args& args) {
  std::vector<serve::TraceEvent> events;
  std::string error;
  if (!serve::load_trace_file(args.trace, events, &error)) {
    std::fprintf(stderr, "zss_serve: %s\n", error.c_str());
    return 1;
  }

  store::DirLock spill_lock;
  if (!acquire_spill_lock(args, spill_lock)) return 1;

  num::Rng rng(args.seed);
  nn::LstmCell cell(args.dx, args.dh, rng);
  core::StatePruner pruner(core::PrunerConfig::fixed(args.threshold));
  serve::EnginePool pool(cell, pruner, pool_config(args));

  // Rolling per-session FNV-1a over each response's 8-byte row digest
  // (the digest printed on live-mode "ok" lines), in seq order — the
  // serving layer's observable output stream.
  DigestTable digests;
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    fold_response(digests, r);
    if (args.dump) {
      std::printf("seq %" PRIu64 " session %" PRIu64 " done_us %lld batch %lld\n",
                  r.seq, r.session, static_cast<long long>(r.done_us),
                  static_cast<long long>(r.batch));
    }
  };

  const serve::ReplayResult result = serve::replay(pool, events, sink);

  num::Index batches = 0;
  num::Index kept = 0, positions = 0;
  double mean_batch_num = 0.0;
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    batches += pool.shard(s).stats().batches;
    mean_batch_num += static_cast<double>(pool.shard(s).stats().requests);
    kept += pool.shard(s).engine().stats().kept_positions;
    positions += pool.shard(s).engine().stats().positions;
  }
  const double obs_sparsity =
      positions == 0 ? 0.0
                     : 1.0 - static_cast<double>(kept) /
                                 static_cast<double>(positions);

  std::printf("zss_serve: kernel_backend=%s dh=%lld dx=%lld threshold=%.3f\n",
              num::simd::active_backend().name,
              static_cast<long long>(args.dh), static_cast<long long>(args.dx),
              static_cast<double>(args.threshold));
  std::printf(
      "replayed %lld requests -> %lld responses in %lld batches "
      "(mean batch %.2f) over %lld shards, virtual end %lld us\n",
      static_cast<long long>(result.requests),
      static_cast<long long>(result.responses),
      static_cast<long long>(batches),
      batches == 0 ? 0.0 : mean_batch_num / static_cast<double>(batches),
      static_cast<long long>(pool.num_shards()),
      static_cast<long long>(result.end_us));
  std::printf("observed intersected sparsity %.4f across %lld sessions\n",
              obs_sparsity, static_cast<long long>(digests.size()));

  if (!args.spill_dir.empty()) {
    std::uint64_t spilled = 0, restored = 0, corrupt = 0;
    num::Index active = 0;
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      const serve::SessionStore& ss = pool.shard(s).sessions();
      spilled += ss.spilled();
      restored += ss.restored();
      corrupt += ss.restore_corrupt();
      if (ss.spill_active()) ++active;
    }
    std::printf("spill tier: spilled %" PRIu64 " restored %" PRIu64
                " corrupt %" PRIu64 " active_shards %lld/%lld\n",
                spilled, restored, corrupt, static_cast<long long>(active),
                static_cast<long long>(pool.num_shards()));
  }

  print_digests(digests, args.digests_path,
                args.max_sessions > 0 && args.spill_dir.empty());

  if (result.responses != result.requests) {
    std::fprintf(stderr, "zss_serve: %lld requests but %lld responses\n",
                 static_cast<long long>(result.requests),
                 static_cast<long long>(result.responses));
    return 1;
  }
  return 0;
}

/// Serializes all protocol output onto one dedicated writer thread.
/// Shard workers and the ingest loop only ever enqueue under a short
/// lock — nobody blocks on a slow reader while holding a lock the
/// serving loop needs. A pipelining client that stops reading degrades
/// to queued output; it can never deadlock the server (the failure mode
/// of writing to a full pipe inside the response sink).
class OutputWriter {
 public:
  explicit OutputWriter(std::FILE* f) : f_(f) {
    thread_ = std::thread([this] { run(); });
  }

  /// Any exit path (including a future early return or an exception)
  /// must join the writer, not std::terminate on a joinable thread.
  ~OutputWriter() { finish(); }

  void push(std::string line) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(line));
    }
    cv_.notify_one();
  }

  /// Drains everything queued, then joins. Idempotent; call after the
  /// last push.
  void finish() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
      const bool done = done_;
      std::swap(queue_, taking_);
      lock.unlock();
      for (const std::string& line : taking_) {
        std::fprintf(f_, "%s\n", line.c_str());
      }
      if (!taking_.empty()) std::fflush(f_);
      taking_.clear();
      if (done) return;
      lock.lock();
    }
  }

  std::FILE* f_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> queue_, taking_;
  bool done_ = false;
  std::thread thread_;
};

/// Opens the UNIX socket, accepts one client, returns its fd (or -1).
int accept_unix_client(const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("zss_serve: socket");
    return -1;
  }
  // Reclaim a stale socket from a previous run, but refuse to delete
  // anything else living at the path (a pasted-wrong --socket= must
  // not destroy a regular file).
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::fprintf(stderr,
                   "zss_serve: refusing to replace non-socket file: %s\n",
                   path.c_str());
      ::close(listener);
      return -1;
    }
    ::unlink(path.c_str());
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "zss_serve: socket path too long: %s\n", path.c_str());
    ::close(listener);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    std::perror("zss_serve: bind/listen");
    ::close(listener);
    return -1;
  }
  std::fprintf(stderr, "zss_serve: listening on %s\n", path.c_str());
  const int client = ::accept(listener, nullptr, nullptr);
  if (client < 0) std::perror("zss_serve: accept");
  ::close(listener);
  ::unlink(path.c_str());
  return client;
}

int run_live(const Args& args) {
  // A client that disconnects mid-run must not kill the server: with
  // SIGPIPE ignored the pending writes fail with EPIPE, getline() then
  // sees EOF on the closed connection, and shutdown drains normally.
  std::signal(SIGPIPE, SIG_IGN);

  store::DirLock spill_lock;
  if (!acquire_spill_lock(args, spill_lock)) return 1;

  num::Rng rng(args.seed);
  nn::LstmCell cell(args.dx, args.dh, rng);
  core::StatePruner pruner(core::PrunerConfig::fixed(args.threshold));
  serve::EnginePool pool(cell, pruner, pool_config(args));

  // Input/output streams: stdin/stdout, or one accepted socket client.
  std::FILE* fin = stdin;
  std::FILE* fout = stdout;
  int client_fd = -1;
  if (!args.socket_path.empty()) {
    client_fd = accept_unix_client(args.socket_path);
    if (client_fd < 0) return 1;
    fin = ::fdopen(client_fd, "r");
    fout = ::fdopen(::dup(client_fd), "w");
    if (fin == nullptr || fout == nullptr) {
      std::perror("zss_serve: fdopen");
      return 1;
    }
  }

  // The sink runs on every shard worker thread. Sessions are
  // shard-pinned, so one digest table per shard folds lock-free (each
  // worker only ever touches its own) and the tables merge
  // collision-free after shutdown; the actual write happens on the
  // writer thread. Per-session output ordering is preserved because a
  // session's responses all come from its one shard worker.
  OutputWriter out(fout);
  std::vector<DigestTable> shard_digests(
      static_cast<std::size_t>(pool.num_shards()));
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    DigestTable& table =
        shard_digests[static_cast<std::size_t>(pool.shard_of(r.session))];
    const std::uint64_t row = fold_response(table, r);
    out.push(serve::format_response(r, row));
  };

  serve::LiveConfig live;
  live.max_queue = args.max_queue;
  live.record = !args.record_path.empty();
  serve::LiveServer server(pool, sink, live);

  std::fprintf(stderr,
               "zss_serve: live, kernel_backend=%s shards=%lld max_batch=%lld "
               "max_wait_us=%lld ttl_us=%lld max_sessions=%lld\n",
               num::simd::active_backend().name,
               static_cast<long long>(args.shards),
               static_cast<long long>(args.max_batch),
               static_cast<long long>(args.max_wait_us),
               static_cast<long long>(args.ttl_us),
               static_cast<long long>(args.max_sessions));

  char* line = nullptr;
  std::size_t cap = 0;
  ssize_t len;
  while ((len = ::getline(&line, &cap, fin)) >= 0) {
    std::string_view sv(line, static_cast<std::size_t>(len));
    // Strip the framing newline: parse errors echo the offending line
    // back, and an embedded '\n' would split the err response in two.
    while (!sv.empty() && (sv.back() == '\n' || sv.back() == '\r')) {
      sv.remove_suffix(1);
    }
    serve::CommandLine cmd;
    std::string error;
    const serve::ParseStatus st = serve::parse_command(sv, cmd, &error);
    if (st == serve::ParseStatus::kBlank) continue;
    if (st == serve::ParseStatus::kError) {
      out.push(serve::format_error(error));
      continue;
    }
    if (cmd.op == serve::CommandLine::Op::kQuit) break;
    if (cmd.op == serve::CommandLine::Op::kFlush) {
      server.flush_all();
      continue;
    }
    if (cmd.op == serve::CommandLine::Op::kStats) {
      // Runs on the ingest thread while shard workers serve: every
      // session-store counter read here is a relaxed atomic written
      // only by its owning shard thread (serve/session.h).
      serve::StatsSnapshot snap;
      snap.submitted = server.submitted();
      snap.responses = server.responded();
      snap.shed = server.shed();
      snap.now_us = server.now_us();
      snap.shards = pool.num_shards();
      for (num::Index s = 0; s < pool.num_shards(); ++s) {
        const serve::SessionStore& ss = pool.shard(s).sessions();
        snap.created += ss.created();
        snap.ttl_resets += ss.ttl_resets();
        snap.evicted += ss.evicted();
        snap.spilled += ss.spilled();
        snap.restored += ss.restored();
        snap.restore_corrupt += ss.restore_corrupt();
        if (ss.spill_active()) ++snap.spill_active;
      }
      out.push(serve::format_stats(snap));
      continue;
    }
    if (!server.submit(cmd.session, cmd.token).has_value()) {
      out.push(serve::format_error("overloaded, request shed"));
    }
  }
  std::free(line);

  server.shutdown();
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "bye submitted=%" PRIu64 " responses=%" PRIu64,
                  server.submitted(), server.responded());
    out.push(buf);
  }
  out.finish();
  if (fin != stdin) std::fclose(fin);
  if (fout != stdout) std::fclose(fout);

  // Workers are joined: merge the per-shard tables (disjoint by
  // shard-pinning) into the one table both modes print.
  DigestTable digests;
  for (const DigestTable& t : shard_digests) {
    digests.insert(t.begin(), t.end());
  }

  if (!args.record_path.empty()) {
    std::ofstream rec(args.record_path);
    if (!rec) {
      std::fprintf(stderr, "cannot write %s\n", args.record_path.c_str());
      return 1;
    }
    serve::write_trace(rec, server.recorded_trace());
    std::printf("recorded %zu requests to %s (replay with --trace= and the "
                "same model/ttl flags)\n",
                server.recorded_trace().size(), args.record_path.c_str());
  }

  print_digests(digests, args.digests_path,
                args.max_sessions > 0 && args.spill_dir.empty());

  if (server.responded() != server.submitted()) {
    std::fprintf(stderr, "zss_serve: %" PRIu64 " submitted but %" PRIu64
                         " responses\n",
                 server.submitted(), server.responded());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }

  if (args.emit_trace > 0) {
    num::Rng rng(args.seed);
    const auto events = serve::synthetic_trace(args.emit_trace, args.sessions,
                                               args.dx, args.gap_us, rng);
    serve::write_trace(std::cout, events);
    return 0;
  }

  if (args.live) return run_live(args);

  if (args.trace.empty()) {
    usage();
    return 2;
  }
  return run_replay(args);
}
