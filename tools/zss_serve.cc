// zss_serve — trace-replay front end for the serving subsystem.
//
// Replays a request trace (serve/trace.h text format) through a
// batched, sharded EnginePool under a deterministic virtual clock, and
// prints per-session output digests. Because per-session outputs are
// bit-identical at any shard count and any max-batch (the determinism
// guarantee of docs/serving.md), running the same trace with different
// --shards must print identical digest tables — CI diffs exactly that.
//
//   zss_serve --trace=data/traces/serving_200.txt --shards=4
//   zss_serve --trace=t.txt --shards=1 --digests=digests_1.txt
//   zss_serve --emit-trace=200 --sessions=16 --gap-us=150 > trace.txt
//
// The model is a seeded randomly-initialized cell (this is a serving
// harness, not an accuracy demo); --threshold sets the fixed pruning
// threshold the sessions' stored states are pruned with.
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "serve/trace.h"

namespace {

using namespace zss;

struct Args {
  std::string trace;
  std::string digests_path;
  num::Index emit_trace = 0;  // >0: generate instead of serve
  num::Index shards = 1;
  num::Index max_batch = 8;
  std::int64_t max_wait_us = 200;
  double max_kept = 1.0;
  num::Index dh = 256;
  num::Index dx = 32;
  num::Index sessions = 16;
  std::int64_t gap_us = 150;
  float threshold = 0.05f;  // ~60-80% observed sparsity on the seeded cell
  std::uint64_t seed = 1;
  bool dump = false;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("trace")) {
      args.trace = v;
    } else if (const char* v = value("digests")) {
      args.digests_path = v;
    } else if (const char* v = value("emit-trace")) {
      args.emit_trace = std::atol(v);
    } else if (const char* v = value("shards")) {
      args.shards = std::atol(v);
    } else if (const char* v = value("max-batch")) {
      args.max_batch = std::atol(v);
    } else if (const char* v = value("max-wait-us")) {
      args.max_wait_us = std::atol(v);
    } else if (const char* v = value("max-kept")) {
      args.max_kept = std::atof(v);
    } else if (const char* v = value("dh")) {
      args.dh = std::atol(v);
    } else if (const char* v = value("dx")) {
      args.dx = std::atol(v);
    } else if (const char* v = value("sessions")) {
      args.sessions = std::atol(v);
    } else if (const char* v = value("gap-us")) {
      args.gap_us = std::atol(v);
    } else if (const char* v = value("threshold")) {
      args.threshold = static_cast<float>(std::atof(v));
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--dump") {
      args.dump = true;
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  // Report bad values as usage errors here; the library layers treat
  // them as contract violations and abort.
  if (args.shards < 1 || args.max_batch < 1 || args.max_wait_us < 0 ||
      args.max_kept <= 0.0 || args.max_kept > 1.0 || args.dh < 1 ||
      args.dx < 1 || args.sessions < 1 || args.gap_us < 0 ||
      args.threshold < 0.0f) {
    std::fprintf(stderr,
                 "invalid flag value (need shards/max-batch/dh/dx/sessions "
                 ">= 1, max-wait-us/gap-us >= 0, 0 < max-kept <= 1, "
                 "threshold >= 0)\n");
    return false;
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: zss_serve --trace=FILE [--shards=N] [--max-batch=B]\n"
      "                 [--max-wait-us=U] [--max-kept=F] [--dh=D] [--dx=D]\n"
      "                 [--threshold=T] [--seed=S] [--dump]\n"
      "                 [--digests=FILE]\n"
      "   or: zss_serve --emit-trace=N [--sessions=S] [--vocab via --dx]\n"
      "                 [--gap-us=G] [--seed=S]   (writes trace to stdout)\n");
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = kFnvOffset;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }

  if (args.emit_trace > 0) {
    num::Rng rng(args.seed);
    const auto events = serve::synthetic_trace(args.emit_trace, args.sessions,
                                               args.dx, args.gap_us, rng);
    serve::write_trace(std::cout, events);
    return 0;
  }

  if (args.trace.empty()) {
    usage();
    return 2;
  }
  std::vector<serve::TraceEvent> events;
  std::string error;
  if (!serve::load_trace_file(args.trace, events, &error)) {
    std::fprintf(stderr, "zss_serve: %s\n", error.c_str());
    return 1;
  }

  num::Rng rng(args.seed);
  nn::LstmCell cell(args.dx, args.dh, rng);
  core::StatePruner pruner(core::PrunerConfig::fixed(args.threshold));
  serve::PoolConfig config;
  config.shards = args.shards;
  config.policy.max_batch = args.max_batch;
  config.policy.max_wait_us = args.max_wait_us;
  config.policy.max_kept_fraction = args.max_kept;
  serve::EnginePool pool(cell, pruner, config);

  // Rolling per-session FNV-1a over every response's hidden bytes, in
  // seq order — the serving layer's observable output stream.
  std::map<serve::SessionId, SessionDigest> digests;
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    SessionDigest& d = digests[r.session];
    d.digest = fnv1a(d.digest, r.h.data(), r.h.size_bytes());
    ++d.steps;
    if (args.dump) {
      std::printf("seq %" PRIu64 " session %" PRIu64 " done_us %lld batch %lld\n",
                  r.seq, r.session, static_cast<long long>(r.done_us),
                  static_cast<long long>(r.batch));
    }
  };

  const serve::ReplayResult result = serve::replay(pool, events, sink);

  num::Index batches = 0;
  num::Index kept = 0, positions = 0;
  double mean_batch_num = 0.0;
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    batches += pool.shard(s).stats().batches;
    mean_batch_num += static_cast<double>(pool.shard(s).stats().requests);
    kept += pool.shard(s).engine().stats().kept_positions;
    positions += pool.shard(s).engine().stats().positions;
  }
  const double obs_sparsity =
      positions == 0 ? 0.0
                     : 1.0 - static_cast<double>(kept) /
                                 static_cast<double>(positions);

  std::printf("zss_serve: kernel_backend=%s dh=%lld dx=%lld threshold=%.3f\n",
              num::simd::active_backend().name,
              static_cast<long long>(args.dh), static_cast<long long>(args.dx),
              static_cast<double>(args.threshold));
  std::printf(
      "replayed %lld requests -> %lld responses in %lld batches "
      "(mean batch %.2f) over %lld shards, virtual end %lld us\n",
      static_cast<long long>(result.requests),
      static_cast<long long>(result.responses),
      static_cast<long long>(batches),
      batches == 0 ? 0.0 : mean_batch_num / static_cast<double>(batches),
      static_cast<long long>(pool.num_shards()),
      static_cast<long long>(result.end_us));
  std::printf("observed intersected sparsity %.4f across %lld sessions\n",
              obs_sparsity, static_cast<long long>(digests.size()));

  std::printf("\nper-session digests (bit-identical for any --shards / "
              "--max-batch):\n");
  std::FILE* df = nullptr;
  if (!args.digests_path.empty()) {
    df = std::fopen(args.digests_path.c_str(), "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.digests_path.c_str());
      return 1;
    }
  }
  for (const auto& [id, d] : digests) {  // std::map: sorted by id
    std::printf("session %" PRIu64 " steps %" PRIu64 " digest %016" PRIx64 "\n",
                id, d.steps, d.digest);
    if (df != nullptr) {
      std::fprintf(df, "session %" PRIu64 " steps %" PRIu64
                       " digest %016" PRIx64 "\n",
                   id, d.steps, d.digest);
    }
  }
  if (df != nullptr) {
    std::fclose(df);
    std::printf("wrote %s\n", args.digests_path.c_str());
  }

  if (result.responses != result.requests) {
    std::fprintf(stderr, "zss_serve: %lld requests but %lld responses\n",
                 static_cast<long long>(result.requests),
                 static_cast<long long>(result.responses));
    return 1;
  }
  return 0;
}
