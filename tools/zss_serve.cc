// zss_serve — trace-replay and live-serving front end for src/serve/.
//
// Two serving modes over the same pool:
//
//   * Replay (--trace=FILE): replays a request trace under the
//     deterministic virtual clock and prints per-session output
//     digests. Because per-session outputs are bit-identical at any
//     shard count and any max-batch (docs/serving.md), running the
//     same trace with different --shards must print identical digest
//     tables — CI diffs exactly that.
//   * Live (--live): persistent per-shard worker threads serve a
//     line-oriented streaming protocol (serve/protocol.h) on
//     stdin/stdout, or — with --socket=PATH and/or --tcp=PORT — on the
//     epoll-multiplexed connection front end (serve/frontend.h), which
//     accepts any number of concurrent UNIX and TCP clients and routes
//     each response back to exactly the connection that issued its
//     request. With --record=FILE every accepted request is written
//     back out as a trace, and replaying that file reproduces the live
//     run's digest table bit-for-bit — the live loop's determinism
//     contract, and what CI's live-smoke step diffs (under multi-client
//     churn since the front end landed).
//
//   zss_serve --trace=data/traces/serving_200.txt --shards=4
//   zss_serve --live --shards=4 --record=run.txt --digests=live.txt
//   zss_serve --live --socket=/tmp/zss.sock --tcp=9777 --max-queue=64
//   zss_serve --emit-trace=200 --sessions=16 --gap-us=150 > trace.txt
//
// The model is a seeded randomly-initialized cell by default (synthetic
// load), or — with --model=FILE — a trained v2 checkpoint written by
// zss_train: the architecture header decides layers/dh/input mapping,
// the per-layer exported thresholds build the fixed pruners, and
// --quant serves the int8 datapath on the grid the trainer recorded
// (a checkpoint without a recorded grid refuses --quant). --pipeline
// enables the layer wavefront on multi-layer models (serve/shard.h);
// --threads sets num::parallel_for workers. --ttl-us and
// --max-sessions bound the per-shard session stores in either mode
// (give the replay the same values to reproduce a recorded live run).
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "core/model_io.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/parallel.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "serve/frontend.h"
#include "serve/protocol.h"
#include "serve/supervisor.h"
#include "serve/trace.h"
#include "serve/worker.h"
#include "store/lockfile.h"

namespace {

using namespace zss;

struct Args {
  std::string trace;
  std::string digests_path;
  std::string socket_path;
  int tcp_port = -1;  // >= 0: TCP listener (0 = kernel-chosen ephemeral)
  std::string record_path;
  std::string spill_dir;
  bool spill_encoded = false;
  // Durability ladder (docs/serving.md): "" = default (spill when
  // --spill-dir is given, off otherwise), or explicit off/spill/journal.
  std::string durability;
  std::string journal_sync = "batch";  // batch | none
  std::uint64_t journal_checkpoint_bytes = std::uint64_t{4} << 20;
  std::int64_t deadline_us = 0;     // live: per-request serve deadline
  std::int64_t worker_stall_ms = 0;  // live: watchdog threshold, 0 = off
  num::Index emit_trace = 0;  // >0: generate instead of serve
  bool live = false;
  num::Index shards = 1;
  num::Index max_batch = 8;
  std::int64_t max_wait_us = 200;
  std::int64_t ttl_us = -1;
  num::Index max_sessions = 0;
  num::Index max_queue = 0;
  num::Index dh = 256;
  num::Index dx = 32;
  num::Index sessions = 16;
  std::int64_t gap_us = 150;
  float threshold = 0.05f;  // ~60-80% observed sparsity on the seeded cell
  std::uint64_t seed = 1;
  bool dump = false;
  bool quant = false;  // int8 engine datapath (core::QuantConfig::int8())
  std::string model;   // v2 checkpoint path; empty = seeded random cell
  bool pipeline = false;  // layer wavefront on multi-layer models
  int threads = 1;        // num::parallel_for workers
  // Explicit-flag tracking: the checkpoint header decides these, so
  // passing them alongside --model is a conflict, not a preference.
  bool dh_set = false, dx_set = false, threshold_set = false;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value("trace")) {
      args.trace = v;
    } else if (const char* v = value("digests")) {
      args.digests_path = v;
    } else if (const char* v = value("socket")) {
      args.socket_path = v;
    } else if (const char* v = value("tcp")) {
      args.tcp_port = static_cast<int>(std::atol(v));
    } else if (const char* v = value("record")) {
      args.record_path = v;
    } else if (const char* v = value("spill-dir")) {
      args.spill_dir = v;
    } else if (a == "--spill-encoded") {
      args.spill_encoded = true;
    } else if (const char* v = value("durability")) {
      args.durability = v;
    } else if (const char* v = value("journal-sync")) {
      args.journal_sync = v;
    } else if (const char* v = value("journal-checkpoint-bytes")) {
      args.journal_checkpoint_bytes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("deadline-us")) {
      args.deadline_us = std::atoll(v);
    } else if (const char* v = value("worker-stall-ms")) {
      args.worker_stall_ms = std::atoll(v);
    } else if (const char* v = value("emit-trace")) {
      args.emit_trace = std::atol(v);
    } else if (a == "--live") {
      args.live = true;
    } else if (const char* v = value("shards")) {
      args.shards = std::atol(v);
    } else if (const char* v = value("max-batch")) {
      args.max_batch = std::atol(v);
    } else if (const char* v = value("max-wait-us")) {
      args.max_wait_us = std::atol(v);
    } else if (const char* v = value("ttl-us")) {
      args.ttl_us = std::atoll(v);
    } else if (const char* v = value("max-sessions")) {
      args.max_sessions = std::atol(v);
    } else if (const char* v = value("max-queue")) {
      args.max_queue = std::atol(v);
    } else if (const char* v = value("dh")) {
      args.dh = std::atol(v);
      args.dh_set = true;
    } else if (const char* v = value("dx")) {
      args.dx = std::atol(v);
      args.dx_set = true;
    } else if (const char* v = value("sessions")) {
      args.sessions = std::atol(v);
    } else if (const char* v = value("gap-us")) {
      args.gap_us = std::atol(v);
    } else if (const char* v = value("threshold")) {
      args.threshold = static_cast<float>(std::atof(v));
      args.threshold_set = true;
    } else if (const char* v = value("seed")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("model")) {
      args.model = v;
    } else if (a == "--pipeline") {
      args.pipeline = true;
    } else if (const char* v = value("threads")) {
      args.threads = static_cast<int>(std::atol(v));
    } else if (a == "--dump") {
      args.dump = true;
    } else if (a == "--quant") {
      args.quant = true;
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  // Report bad values as usage errors here; the library layers treat
  // them as contract violations and abort.
  if (args.shards < 1 || args.max_batch < 1 || args.max_wait_us < 0 ||
      args.dh < 1 ||
      args.dx < 1 || args.sessions < 1 || args.gap_us < 0 ||
      args.threshold < 0.0f || args.max_sessions < 0 || args.max_queue < 0) {
    std::fprintf(stderr,
                 "invalid flag value (need shards/max-batch/dh/dx/sessions "
                 ">= 1, max-wait-us/gap-us/max-sessions/max-queue >= 0, "
                 "threshold >= 0)\n");
    return false;
  }
  if (args.tcp_port > 65535) {
    std::fprintf(stderr, "--tcp port out of range: %d\n", args.tcp_port);
    return false;
  }
  if (args.threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return false;
  }
  if (args.max_sessions > 0 && args.max_sessions <= args.max_batch) {
    std::fprintf(stderr, "--max-sessions must exceed --max-batch (a whole "
                         "batch is pinned while it is served)\n");
    return false;
  }
  // The checkpoint header is the single source of truth for the model
  // architecture and the trained thresholds — conflicting flags are
  // rejected rather than silently overridden (this is a bugfix-grade
  // rule: an ignored --threshold would change digests without warning).
  if (!args.model.empty() &&
      (args.dh_set || args.dx_set || args.threshold_set)) {
    std::fprintf(stderr, "--dh/--dx/--threshold conflict with --model "
                         "(the checkpoint header decides them)\n");
    return false;
  }
  if (!args.model.empty() && args.emit_trace > 0) {
    std::fprintf(stderr, "--model does not apply to --emit-trace\n");
    return false;
  }
  if (args.pipeline && args.model.empty()) {
    std::fprintf(stderr, "--pipeline requires --model (the random cell is "
                         "single-layer; the wavefront needs layers > 1)\n");
    return false;
  }
  // Reject flag combinations that would otherwise be silently ignored
  // (a script passing --live --trace=... would block on stdin forever;
  // --trace with --record would exit success without writing the file).
  const int modes = (args.live ? 1 : 0) + (!args.trace.empty() ? 1 : 0) +
                    (args.emit_trace > 0 ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "--live, --trace and --emit-trace are mutually exclusive\n");
    return false;
  }
  if (!args.live && (!args.socket_path.empty() || args.tcp_port >= 0 ||
                     !args.record_path.empty() || args.max_queue > 0)) {
    std::fprintf(stderr,
                 "--socket/--tcp/--record/--max-queue only apply to --live\n");
    return false;
  }
  // The spill tier serves the session stores, so it applies to both
  // serving modes (a replay of a recorded spill run needs the same
  // tier to reproduce it) — but never to trace generation.
  if (args.spill_encoded && args.spill_dir.empty()) {
    std::fprintf(stderr, "--spill-encoded requires --spill-dir\n");
    return false;
  }
  if (!args.spill_dir.empty() && args.emit_trace > 0) {
    std::fprintf(stderr, "--spill-dir does not apply to --emit-trace\n");
    return false;
  }
  // Resolve the durability ladder: default follows --spill-dir, an
  // explicit rung must be consistent with it.
  if (args.durability.empty()) {
    args.durability = args.spill_dir.empty() ? "off" : "spill";
  }
  if (args.durability != "off" && args.durability != "spill" &&
      args.durability != "journal") {
    std::fprintf(stderr, "--durability must be off, spill or journal\n");
    return false;
  }
  if (args.durability != "off" && args.spill_dir.empty()) {
    std::fprintf(stderr, "--durability=%s requires --spill-dir\n",
                 args.durability.c_str());
    return false;
  }
  if (args.durability == "off" && !args.spill_dir.empty()) {
    std::fprintf(stderr, "--durability=off conflicts with --spill-dir "
                         "(drop one)\n");
    return false;
  }
  if (args.journal_sync != "batch" && args.journal_sync != "none") {
    std::fprintf(stderr, "--journal-sync must be batch or none\n");
    return false;
  }
  if (args.journal_checkpoint_bytes < 1024) {
    std::fprintf(stderr, "--journal-checkpoint-bytes must be >= 1024\n");
    return false;
  }
  if (args.deadline_us < 0 || args.worker_stall_ms < 0) {
    std::fprintf(stderr, "--deadline-us/--worker-stall-ms must be >= 0\n");
    return false;
  }
  if (!args.live && (args.deadline_us > 0 || args.worker_stall_ms > 0)) {
    std::fprintf(stderr, "--deadline-us/--worker-stall-ms only apply to "
                         "--live (replay re-serves exactly the recorded "
                         "requests)\n");
    return false;
  }
  // A worker sleeping toward its max-wait deadline legitimately
  // freezes its heartbeat with work queued (serve/supervisor.h); a
  // stall bound inside that window would shoot healthy workers.
  if (args.worker_stall_ms > 0 &&
      args.worker_stall_ms * 1000 <= args.max_wait_us) {
    std::fprintf(stderr, "--worker-stall-ms must exceed --max-wait-us "
                         "(%lld us) — below it every max-wait sleep looks "
                         "like a hang\n",
                 static_cast<long long>(args.max_wait_us));
    return false;
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: zss_serve --trace=FILE [--shards=N] [--max-batch=B]\n"
      "                 [--max-wait-us=U] [--dh=D] [--dx=D]\n"
      "                 [--threshold=T] [--seed=S] [--ttl-us=T]\n"
      "                 [--max-sessions=N] [--dump] [--digests=FILE]\n"
      "                 [--spill-dir=DIR] [--spill-encoded] [--quant]\n"
      "                 [--model=FILE] [--pipeline] [--threads=N]\n"
      "                 (--quant serves the int8 engine datapath; digests\n"
      "                 stay shard/batch-invariant — docs/exactness.md)\n"
      "                 (--model serves a trained v2 checkpoint from\n"
      "                 zss_train; layers/dh/thresholds come from its\n"
      "                 header — docs/serving.md \"Serving trained models\")\n"
      "                 (--durability=off|spill|journal selects the crash\n"
      "                 ladder; journal write-ahead-logs every committed\n"
      "                 session transition and recovers it on restart —\n"
      "                 docs/store.md. --journal-sync=batch|none,\n"
      "                 --journal-checkpoint-bytes=N tune it)\n"
      "   or: zss_serve --live [same model/policy flags] [--socket=PATH]\n"
      "                 [--tcp=PORT] [--record=FILE] [--max-queue=N]\n"
      "                 [--deadline-us=U] [--worker-stall-ms=M]\n"
      "                 (--deadline-us answers `err timeout` past the\n"
      "                 deadline; --worker-stall-ms arms the shard watchdog\n"
      "                 that restarts wedged workers from the journal)\n"
      "                 (stdin/stdout by default; --socket/--tcp start the\n"
      "                 multiplexed front end serving any number of\n"
      "                 concurrent clients — docs/serving.md; --tcp=0 picks\n"
      "                 an ephemeral port, printed on stderr)\n"
      "   or: zss_serve --emit-trace=N [--sessions=S] [--vocab via --dx]\n"
      "                 [--gap-us=G] [--seed=S]   (writes trace to stdout)\n");
}

/// Prints the table in the one format all modes share, so
/// `diff live_digests replay_digests` is the determinism gate.
/// `cap_active`: the LRU cap is per shard, so with --max-sessions set
/// the cross-shard-count half of the claim does not hold (the
/// record/replay half always does) — don't invite a false bug report.
void print_digests(const serve::DigestTable& table, const std::string& path,
                   bool cap_active) {
  if (cap_active) {
    std::printf("\nper-session digests (bit-identical for any --max-batch "
                "and vs record/replay at equal --shards; --max-sessions is "
                "per shard):\n");
  } else {
    std::printf("\nper-session digests (bit-identical for any --shards / "
                "--max-batch):\n");
  }
  std::FILE* df = nullptr;
  if (!path.empty()) {
    df = std::fopen(path.c_str(), "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }
  for (const auto& [id, d] : table) {  // std::map: sorted by id
    std::printf("session %" PRIu64 " steps %" PRIu64 " digest %016" PRIx64 "\n",
                id, d.steps, d.digest);
    if (df != nullptr) {
      std::fprintf(df, "session %" PRIu64 " steps %" PRIu64
                       " digest %016" PRIx64 "\n",
                   id, d.steps, d.digest);
    }
  }
  if (df != nullptr) {
    std::fclose(df);
    std::printf("wrote %s\n", path.c_str());
  }
}

/// Everything the pool borrows, under one lifetime: either the seeded
/// random cell (synthetic load) or a materialized v2 checkpoint, plus
/// the per-layer fixed pruners and the pointer lists ServeModel views.
struct ServingAssets {
  // Random path.
  std::unique_ptr<nn::LstmCell> cell;
  // Checkpoint path.
  core::LoadedModel loaded;
  // Shared. Deque: growing never moves an element a pointer views.
  std::deque<core::StatePruner> pruners;
  std::vector<const nn::LstmCell*> cells;
  std::vector<const core::StatePruner*> pruner_ptrs;
  serve::ServeModel model;
  core::QuantConfig quant;
};

/// Builds the served model from the flags. Fails closed on every
/// checkpoint/flag disagreement — a silently coerced architecture
/// would serve wrong numbers without a diagnostic.
bool build_model(const Args& args, ServingAssets& out) {
  if (args.quant) out.quant = core::QuantConfig::int8();
  if (args.model.empty()) {
    num::Rng rng(args.seed);
    out.cell = std::make_unique<nn::LstmCell>(args.dx, args.dh, rng);
    out.cells.push_back(out.cell.get());
    out.pruners.emplace_back(core::PrunerConfig::fixed(args.threshold));
    out.pruner_ptrs.push_back(&out.pruners.back());
    out.model.cells = out.cells;
    out.model.pruners = out.pruner_ptrs;
    return true;
  }
  std::string error;
  if (!core::load_model(args.model, out.loaded, &error)) {
    std::fprintf(stderr, "zss_serve: cannot serve --model=%s: %s\n",
                 args.model.c_str(), error.c_str());
    return false;
  }
  const core::ModelSpec& spec = out.loaded.spec;
  if (args.quant) {
    if (spec.has_quant_grid == 0) {
      std::fprintf(stderr,
                   "zss_serve: --quant refused: %s records no quantization "
                   "grid (re-save the checkpoint with zss_train, which "
                   "always records one, or serve without --quant)\n",
                   args.model.c_str());
      return false;
    }
    out.quant.pre_clip = spec.quant_pre_clip;
    out.quant.c_clip = static_cast<int>(spec.quant_c_clip);
  }
  for (const auto& c : out.loaded.cells) out.cells.push_back(c.get());
  for (const float t : spec.thresholds) {
    out.pruners.emplace_back(core::PrunerConfig::fixed(t));
  }
  for (const auto& p : out.pruners) out.pruner_ptrs.push_back(&p);
  out.model.cells = out.cells;
  out.model.pruners = out.pruner_ptrs;
  out.model.embedding = out.loaded.embedding.get();
  out.model.name = args.model;
  out.model.vocab = static_cast<num::Index>(spec.vocab);
  // The shard enforces this with an abort; turn it into a usage error
  // while we still can (pipelining pins up to layers batches at once).
  const num::Index pin_span =
      (args.pipeline ? static_cast<num::Index>(spec.layers) : 1) *
      args.max_batch;
  if (args.max_sessions > 0 && args.max_sessions <= pin_span) {
    std::fprintf(stderr,
                 "zss_serve: --max-sessions must exceed %lld "
                 "(layers x max-batch pinned in flight with --pipeline)\n",
                 static_cast<long long>(pin_span));
    return false;
  }
  return true;
}

serve::PoolConfig pool_config(const Args& args, const ServingAssets& assets) {
  serve::PoolConfig config;
  config.shards = args.shards;
  config.policy.max_batch = args.max_batch;
  config.policy.max_wait_us = args.max_wait_us;
  config.session_ttl.ttl_us = args.ttl_us;
  config.session_ttl.max_sessions = args.max_sessions;
  config.spill.dir = args.spill_dir;
  config.spill.encoded = args.spill_encoded;
  config.spill.journal = args.durability == "journal";
  config.spill.journal_sync = args.journal_sync == "none"
                                  ? store::JournalSync::kNone
                                  : store::JournalSync::kBatch;
  config.spill.journal_checkpoint_bytes = args.journal_checkpoint_bytes;
  config.quant = assets.quant;
  config.pipeline = args.pipeline;
  return config;
}

/// Creates --spill-dir if needed and takes its exclusive ownership
/// lock. Two instances appending into the same segment files would
/// destroy the valid-prefix invariant recovery depends on, so a held
/// lock is a hard startup refusal, not a warning (docs/store.md). The
/// lock must outlive the pool — keep the DirLock in the caller's scope.
bool acquire_spill_lock(const Args& args, store::DirLock& lock) {
  if (args.spill_dir.empty()) return true;
  if (::mkdir(args.spill_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "zss_serve: cannot create spill dir %s: %s\n",
                 args.spill_dir.c_str(), std::strerror(errno));
    return false;
  }
  if (!lock.acquire(args.spill_dir)) {
    std::fprintf(stderr, "zss_serve: refusing to start: %s\n",
                 lock.error().c_str());
    return false;
  }
  if (lock.took_over_stale()) {
    // flock dies with its holder, so a pre-existing-but-free LOCK means
    // the previous owner exited without cleaning up (most likely a
    // crash). That is the expected, recoverable case — say so instead
    // of letting the operator wonder whether the tier is safe to use.
    std::fprintf(stderr,
                 "zss_serve: %s/LOCK was left by a previous instance "
                 "(pid %ld, no longer running); taking ownership. Leftover "
                 ".tmp files will be removed and, with "
                 "--durability=journal, committed sessions restored "
                 "automatically.\n",
                 args.spill_dir.c_str(), lock.previous_pid());
  }
  return true;
}

/// A journal that refuses to open (its checkpoint/header is CRC-valid
/// but carries a different state_width — i.e. the spill dir belongs to
/// a different model) must stop the server: silently serving undurably
/// over history we refused to destroy would be worse than either
/// honoring or rebuilding it. The Journal's diagnostic says how to
/// resolve it (move the dir or fix the model flags).
bool check_durable_tier(const Args& args, serve::EnginePool& pool) {
  if (args.durability != "journal") return true;
  for (num::Index i = 0; i < pool.num_shards(); ++i) {
    const store::Journal* j = pool.journal(i);
    if (j != nullptr && !j->open_error().empty()) {
      std::fprintf(stderr, "zss_serve: %s\n", j->open_error().c_str());
      return false;
    }
  }
  return true;
}

/// Startup line for the durable tier: what was recovered, what debris
/// was cleaned. Printed after pool construction in every mode.
void report_recovery(const Args& args, const serve::EnginePool& pool) {
  if (args.durability != "journal") return;
  std::fprintf(stderr,
               "zss_serve: journal recovery: %" PRIu64 " sessions restored "
               "across %lld shards (max arrival %lld us, %" PRIu64
               " orphaned tmp files removed)\n",
               pool.recovered_sessions(),
               static_cast<long long>(pool.num_shards()),
               static_cast<long long>(pool.recovered_max_arrival_us()),
               pool.orphans_removed());
}

int run_replay(const Args& args) {
  std::vector<serve::TraceEvent> events;
  std::string error;
  if (!serve::load_trace_file(args.trace, events, &error)) {
    std::fprintf(stderr, "zss_serve: %s\n", error.c_str());
    return 1;
  }

  store::DirLock spill_lock;
  if (!acquire_spill_lock(args, spill_lock)) return 1;

  num::set_num_threads(args.threads);
  ServingAssets assets;
  if (!build_model(args, assets)) return 1;
  serve::EnginePool pool(assets.model, pool_config(args, assets));
  if (!check_durable_tier(args, pool)) return 1;
  report_recovery(args, pool);

  // The authoritative per-session digest table now lives in the
  // session stores (folded by commit_step on the serving path, durable
  // under the journal, reconstructed by recovery) — the sink only
  // serves --dump.
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    if (args.dump) {
      std::printf("seq %" PRIu64 " session %" PRIu64 " done_us %lld batch %lld\n",
                  r.seq, r.session, static_cast<long long>(r.done_us),
                  static_cast<long long>(r.batch));
    }
  };

  const serve::ReplayResult result = serve::replay(pool, events, sink);
  const serve::DigestTable digests = pool.merged_digests();

  num::Index batches = 0;
  num::Index kept = 0, positions = 0;
  double mean_batch_num = 0.0;
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    batches += pool.shard(s).stats().batches;
    mean_batch_num += static_cast<double>(pool.shard(s).stats().requests);
    kept += pool.shard(s).engine().stats().kept_positions;
    positions += pool.shard(s).engine().stats().positions;
  }
  const double obs_sparsity =
      positions == 0 ? 0.0
                     : 1.0 - static_cast<double>(kept) /
                                 static_cast<double>(positions);

  const serve::ModelInfo& mi = pool.model_info();
  std::printf("zss_serve: kernel_backend=%s model=%s layers=%lld dh=%lld "
              "vocab=%lld quant=%s pipeline=%s threads=%d\n",
              num::simd::active_backend().name, mi.name.c_str(),
              static_cast<long long>(mi.layers),
              static_cast<long long>(mi.dh),
              static_cast<long long>(mi.vocab), mi.quant ? "int8" : "off",
              args.pipeline ? "on" : "off", args.threads);
  std::printf(
      "replayed %lld requests -> %lld responses in %lld batches "
      "(mean batch %.2f) over %lld shards, virtual end %lld us\n",
      static_cast<long long>(result.requests),
      static_cast<long long>(result.responses),
      static_cast<long long>(batches),
      batches == 0 ? 0.0 : mean_batch_num / static_cast<double>(batches),
      static_cast<long long>(pool.num_shards()),
      static_cast<long long>(result.end_us));
  std::printf("observed intersected sparsity %.4f across %lld sessions\n",
              obs_sparsity, static_cast<long long>(digests.size()));

  if (!args.spill_dir.empty()) {
    std::uint64_t spilled = 0, restored = 0, corrupt = 0;
    num::Index active = 0;
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      const serve::SessionStore& ss = pool.shard(s).sessions();
      spilled += ss.spilled();
      restored += ss.restored();
      corrupt += ss.restore_corrupt();
      if (ss.spill_active()) ++active;
    }
    std::printf("spill tier: spilled %" PRIu64 " restored %" PRIu64
                " corrupt %" PRIu64 " active_shards %lld/%lld\n",
                spilled, restored, corrupt, static_cast<long long>(active),
                static_cast<long long>(pool.num_shards()));
  }

  print_digests(digests, args.digests_path,
                args.max_sessions > 0 && args.spill_dir.empty());

  if (result.responses != result.requests) {
    std::fprintf(stderr, "zss_serve: %lld requests but %lld responses\n",
                 static_cast<long long>(result.requests),
                 static_cast<long long>(result.responses));
    return 1;
  }
  return 0;
}

/// Serializes all protocol output onto one dedicated writer thread.
/// Shard workers and the ingest loop only ever enqueue under a short
/// lock — nobody blocks on a slow reader while holding a lock the
/// serving loop needs. A pipelining client that stops reading degrades
/// to queued output; it can never deadlock the server (the failure mode
/// of writing to a full pipe inside the response sink).
class OutputWriter {
 public:
  explicit OutputWriter(std::FILE* f) : f_(f) {
    thread_ = std::thread([this] { run(); });
  }

  /// Any exit path (including a future early return or an exception)
  /// must join the writer, not std::terminate on a joinable thread.
  ~OutputWriter() { finish(); }

  void push(std::string line) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(line));
    }
    cv_.notify_one();
  }

  /// Drains everything queued, then joins. Idempotent; call after the
  /// last push.
  void finish() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
      const bool done = done_;
      std::swap(queue_, taking_);
      lock.unlock();
      for (const std::string& line : taking_) {
        std::fprintf(f_, "%s\n", line.c_str());
      }
      if (!taking_.empty()) std::fflush(f_);
      taking_.clear();
      if (done) return;
      lock.lock();
    }
  }

  std::FILE* f_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> queue_, taking_;
  bool done_ = false;
  std::thread thread_;
};

/// Writes the recorded trace (shared by stdin mode and the front end).
bool write_recording(const serve::LiveServer& server, const std::string& path) {
  std::ofstream rec(path);
  if (!rec) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  serve::write_trace(rec, server.recorded_trace());
  std::printf("recorded %zu requests to %s (replay with --trace= and the "
              "same model/ttl flags)\n",
              server.recorded_trace().size(), path.c_str());
  return true;
}

/// Exit bookkeeping shared by stdin mode and the front end: recording,
/// digest table, and the submitted==responses invariant.
int finish_live(const serve::LiveServer& server,
                const serve::DigestTable& digests, const Args& args) {
  if (!args.record_path.empty() &&
      !write_recording(server, args.record_path)) {
    return 1;
  }
  print_digests(digests, args.digests_path,
                args.max_sessions > 0 && args.spill_dir.empty());
  if (server.restarts() > 0) {
    std::fprintf(stderr,
                 "zss_serve: %" PRIu64 " worker restart(s); %" PRIu64
                 " accepted request(s) abandoned mid-restart (clients "
                 "re-drive them via sync/pos)\n",
                 server.restarts(), server.abandoned());
  }
  // The live ledger: every accepted request was either answered (ok or
  // err timeout) or lost to a worker restart — nothing silently
  // vanishes, nothing is answered twice.
  if (server.responded() + server.abandoned() != server.submitted()) {
    std::fprintf(stderr, "zss_serve: %" PRIu64 " submitted but %" PRIu64
                         " responses + %" PRIu64 " abandoned\n",
                 server.submitted(), server.responded(), server.abandoned());
    return 1;
  }
  return 0;
}

/// SIGINT/SIGTERM land here while the front end runs: Frontend::stop()
/// is async-signal-safe (atomic store + eventfd write), so a ^C drains
/// in-flight requests, sends every client its `bye`, and exits cleanly
/// — the recorded trace and digest table stay intact.
std::atomic<serve::Frontend*> g_frontend{nullptr};

void on_signal(int) {
  if (serve::Frontend* f = g_frontend.load()) f->stop();
}

/// Multiplexed live mode: --socket and/or --tcp. Any number of
/// concurrent clients; the event loop owns all connection state
/// (serve/frontend.h) and --max-queue becomes the fair per-connection
/// in-flight cap.
int run_frontend(const Args& args, serve::EnginePool& pool) {
  serve::FrontendConfig fc;
  fc.unix_path = args.socket_path;
  fc.tcp_port = args.tcp_port;
  fc.max_queue = args.max_queue;
  serve::LiveConfig live;
  live.record = !args.record_path.empty();
  live.deadline_us = args.deadline_us;
  serve::Frontend frontend(pool, fc, live);
  std::string error;
  if (!frontend.start(&error)) {
    std::fprintf(stderr, "zss_serve: %s\n", error.c_str());
    return 1;
  }
  serve::SupervisorConfig sup_cfg;
  sup_cfg.stall_ms = args.worker_stall_ms;
  serve::Supervisor supervisor(frontend.server(), sup_cfg);
  supervisor.start();  // no-op unless --worker-stall-ms > 0
  g_frontend.store(&frontend);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::fprintf(stderr,
               "zss_serve: frontend live, kernel_backend=%s shards=%lld "
               "max_batch=%lld max_wait_us=%lld max_queue=%lld\n",
               num::simd::active_backend().name,
               static_cast<long long>(args.shards),
               static_cast<long long>(args.max_batch),
               static_cast<long long>(args.max_wait_us),
               static_cast<long long>(args.max_queue));
  if (!args.socket_path.empty()) {
    std::fprintf(stderr, "zss_serve: listening on %s\n",
                 args.socket_path.c_str());
  }
  if (args.tcp_port >= 0) {
    // Scripts passing --tcp=0 read the resolved port off this line.
    std::fprintf(stderr, "zss_serve: listening on tcp port %d\n",
                 frontend.tcp_port());
  }

  frontend.join();
  supervisor.stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_frontend.store(nullptr);

  const serve::FrontendStats& fs = frontend.stats();
  std::fprintf(stderr,
               "zss_serve: frontend accepted=%" PRIu64 " disconnected=%" PRIu64
               " shed=%" PRIu64 " dropped_responses=%" PRIu64
               " oversize_lines=%" PRIu64 " read_pauses=%" PRIu64
               " discarded_partial=%" PRIu64 "\n",
               fs.accepted, fs.disconnected, fs.shed, fs.dropped_responses,
               fs.oversize_lines, fs.read_pauses, fs.discarded_partial);
  return finish_live(frontend.server(), frontend.digests(), args);
}

int run_live(const Args& args) {
  store::DirLock spill_lock;
  if (!acquire_spill_lock(args, spill_lock)) return 1;

  num::set_num_threads(args.threads);
  ServingAssets assets;
  if (!build_model(args, assets)) return 1;
  serve::EnginePool pool(assets.model, pool_config(args, assets));
  if (!check_durable_tier(args, pool)) return 1;
  report_recovery(args, pool);

  if (!args.socket_path.empty() || args.tcp_port >= 0) {
    return run_frontend(args, pool);
  }

  // stdin/stdout mode: one anonymous client on the standard streams
  // (no connection ids — submit leaves Request::client 0).
  //
  // The sink runs on every shard worker thread. Digest folding already
  // happened on the shard (SessionStore::commit_step — the
  // authoritative, journal-durable table); the sink only formats the
  // line, and the actual write happens on the writer thread.
  // Per-session output ordering is preserved because a session's
  // responses all come from its one shard worker.
  OutputWriter out(stdout);
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    out.push(r.timed_out ? serve::format_error("timeout")
                         : serve::format_response(r, r.row_digest));
  };

  serve::LiveConfig live;
  live.max_queue = args.max_queue;
  live.record = !args.record_path.empty();
  live.deadline_us = args.deadline_us;
  serve::LiveServer server(pool, sink, live);
  serve::SupervisorConfig sup_cfg;
  sup_cfg.stall_ms = args.worker_stall_ms;
  serve::Supervisor supervisor(server, sup_cfg);
  supervisor.start();  // no-op unless --worker-stall-ms > 0

  std::fprintf(stderr,
               "zss_serve: live, kernel_backend=%s shards=%lld max_batch=%lld "
               "max_wait_us=%lld ttl_us=%lld max_sessions=%lld\n",
               num::simd::active_backend().name,
               static_cast<long long>(args.shards),
               static_cast<long long>(args.max_batch),
               static_cast<long long>(args.max_wait_us),
               static_cast<long long>(args.ttl_us),
               static_cast<long long>(args.max_sessions));

  char* line = nullptr;
  std::size_t cap = 0;
  ssize_t len;
  while ((len = ::getline(&line, &cap, stdin)) >= 0) {
    std::string_view sv(line, static_cast<std::size_t>(len));
    // Strip the framing newline: parse errors echo the offending line
    // back, and an embedded '\n' would split the err response in two.
    while (!sv.empty() && (sv.back() == '\n' || sv.back() == '\r')) {
      sv.remove_suffix(1);
    }
    serve::CommandLine cmd;
    std::string error;
    const serve::ParseStatus st = serve::parse_command(sv, cmd, &error);
    if (st == serve::ParseStatus::kBlank) continue;
    if (st == serve::ParseStatus::kError) {
      out.push(serve::format_error(error));
      continue;
    }
    if (cmd.op == serve::CommandLine::Op::kQuit) break;
    if (cmd.op == serve::CommandLine::Op::kFlush) {
      server.flush_all();
      continue;
    }
    if (cmd.op == serve::CommandLine::Op::kStats) {
      out.push(serve::format_stats(serve::snapshot_stats(server, pool)));
      continue;
    }
    if (cmd.op == serve::CommandLine::Op::kSync) {
      serve::SessionDigest d;
      server.with_stable_topology([&] {
        d = pool.shard(pool.shard_of(cmd.session))
                .sessions()
                .digest_of(cmd.session);
      });
      out.push(serve::format_pos(cmd.session, d));
      continue;
    }
    serve::SubmitStatus status = serve::SubmitStatus::kOk;
    if (!server.submit(cmd.session, cmd.token, 0, &status).has_value()) {
      out.push(serve::format_error(
          status == serve::SubmitStatus::kUnavailable
              ? "unavailable, shard restarting"
              : "overloaded, request shed"));
    }
  }
  std::free(line);

  supervisor.stop();
  server.shutdown();
  out.push(serve::format_bye(server.submitted(), server.responded()));
  out.finish();

  return finish_live(server, pool.merged_digests(), args);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }

  if (args.emit_trace > 0) {
    num::Rng rng(args.seed);
    const auto events = serve::synthetic_trace(args.emit_trace, args.sessions,
                                               args.dx, args.gap_us, rng);
    serve::write_trace(std::cout, events);
    return 0;
  }

  if (args.live) return run_live(args);

  if (args.trace.empty()) {
    usage();
    return 2;
  }
  return run_replay(args);
}
