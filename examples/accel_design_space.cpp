// Design-space exploration with the accelerator model — no training
// required. Sweeps batch size and state sparsity at the paper's network
// dimensions and prints the achieved GOPS and GOPS/W grid, showing where
// the zero-state-skipping design wins and where batching erodes it.
//
// Usage: accel_design_space [--task=char|word|mnist]
#include <cstdio>
#include <string>

#include "accel/energy.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"

using namespace zss;

int main(int argc, char** argv) {
  std::string task = "char";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--task=", 0) == 0) task = arg.substr(7);
  }

  const accel::AcceleratorConfig cfg;
  const accel::Scheduler sched(cfg);
  const accel::EnergyModel energy(accel::EnergyConfig{}, cfg);
  num::Rng rng(21);

  auto shape_for = [&](num::Index batch) {
    if (task == "word") return accel::WorkloadShape::ptb_word(batch);
    if (task == "mnist") return accel::WorkloadShape::mnist(batch);
    return accel::WorkloadShape::ptb_char(batch);
  };

  std::printf("design space for task '%s' (d_h=%lld, d_x=%lld, %s input)\n",
              task.c_str(), static_cast<long long>(shape_for(1).hidden),
              static_cast<long long>(shape_for(1).input),
              shape_for(1).input_mode == accel::InputMode::kOneHot
                  ? "one-hot"
                  : "dense");
  std::printf("accelerator: %lld PEs, %.1f Gbps, peak %.1f GOPS, 83 mW\n\n",
              static_cast<long long>(cfg.total_pes()), cfg.dram_gbps,
              cfg.peak_gops());

  std::printf("GOPS (rows: batch, cols: intersected state sparsity)\n");
  std::printf("%6s", "batch");
  const double sparsities[] = {0.0, 0.5, 0.8, 0.9, 0.95, 0.97};
  for (double s : sparsities) std::printf(" %8.0f%%", s * 100.0);
  std::printf("\n");

  for (num::Index batch : {1, 2, 4, 8, 16}) {
    const auto shape = shape_for(batch);
    std::printf("%6lld", static_cast<long long>(batch));
    for (double s : sparsities) {
      accel::RunTotals totals;
      for (int t = 0; t < 10; ++t) {
        const auto mask =
            accel::mask_from_intersected_sparsity(shape, s, rng);
        totals.add(sched.run_timestep(shape, mask), shape);
      }
      std::printf(" %9.1f", totals.gops(cfg));
    }
    std::printf("\n");
  }

  std::printf("\nGOPS/W at the same points (constant 83 mW):\n");
  std::printf("%6s", "batch");
  for (double s : sparsities) std::printf(" %8.0f%%", s * 100.0);
  std::printf("\n");
  for (num::Index batch : {1, 8, 16}) {
    const auto shape = shape_for(batch);
    std::printf("%6lld", static_cast<long long>(batch));
    for (double s : sparsities) {
      accel::RunTotals totals;
      for (int t = 0; t < 10; ++t) {
        const auto mask =
            accel::mask_from_intersected_sparsity(shape, s, rng);
        totals.add(sched.run_timestep(shape, mask), shape);
      }
      std::printf(" %9.1f", energy.gops_per_watt(totals));
    }
    std::printf("\n");
  }

  std::printf(
      "\nreading: moving right (more sparsity) multiplies throughput in\n"
      "the bandwidth-bound regime; moving down (more batch) trades the\n"
      "skip opportunity for utilization — the tension of Figs. 7-9.\n");
  return 0;
}
