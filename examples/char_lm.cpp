// Character-level language modeling with a pruned-state LSTM — the
// paper's first workload (§II-B.1), end to end:
//   - train at a chosen sparsity degree (default: the 97% sweet spot)
//   - compare BPC against a dense twin
//   - sample text from the pruned model
//   - save / reload the parameters
//
// Usage: char_lm [--sparsity=0.97] [--hidden=96] [--epochs=3]
#include <cstdio>
#include <string>

#include "core/zss.h"

using namespace zss;

namespace {

double parse_flag(int argc, char** argv, const std::string& name,
                  double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

core::PrunedLstmLm train(const data::CharCorpus& corpus, double sparsity,
                         num::Index hidden, int epochs) {
  core::LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = hidden;
  if (sparsity > 0.0) cfg.pruner = core::PrunerConfig::target(sparsity);
  core::PrunedLstmLm model(cfg);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int e = 0; e < epochs; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
    const auto eval = model.evaluate(corpus.valid(), 4, 25);
    std::printf("  [sparsity %.0f%%] epoch %d: valid BPC %.3f\n",
                sparsity * 100.0, e, eval.bpc);
  }
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const double sparsity = parse_flag(argc, argv, "sparsity", 0.97);
  const auto hidden =
      static_cast<num::Index>(parse_flag(argc, argv, "hidden", 96));
  const int epochs = static_cast<int>(parse_flag(argc, argv, "epochs", 3));

  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 40000;
  dcfg.valid_chars = 4000;
  dcfg.test_chars = 4000;
  const auto corpus = data::CharCorpus::generate(dcfg);

  std::printf("== dense baseline ==\n");
  auto dense = train(corpus, 0.0, hidden, epochs);
  std::printf("== pruned model ==\n");
  auto pruned = train(corpus, sparsity, hidden, epochs);

  const auto dense_eval = dense.evaluate(corpus.test(), 4, 25);
  const auto pruned_eval = pruned.evaluate(corpus.test(), 4, 25);
  std::printf("\ntest BPC:  dense %.3f   pruned(%.0f%%) %.3f   delta %+.3f\n",
              dense_eval.bpc, sparsity * 100.0, pruned_eval.bpc,
              pruned_eval.bpc - dense_eval.bpc);
  std::printf("pruned model state sparsity at inference: %.1f%%\n",
              pruned_eval.state_sparsity * 100.0);

  // Sample text from the pruned model: the recurrence works even though
  // ~all of the state is zeroed at each step.
  num::Rng rng(123);
  const std::vector<num::Index> prefix(corpus.test().begin(),
                                       corpus.test().begin() + 8);
  const auto sampled = pruned.sample(prefix, 120, /*greedy=*/false, rng);
  std::printf("\nsample from the pruned model:\n---\n%s\n---\n",
              corpus.to_text(sampled).c_str());

  // Round-trip the parameters through the binary format.
  const std::string path = "/tmp/char_lm_pruned.zssm";
  auto params = pruned.parameters();
  if (core::save_parameters(path, params)) {
    core::LmConfig cfg;
    cfg.vocab = data::CharCorpus::kVocab;
    cfg.hidden = hidden;
    cfg.pruner = core::PrunerConfig::target(sparsity);
    core::PrunedLstmLm reloaded(cfg);
    auto reloaded_params = reloaded.parameters();
    if (core::load_parameters(path, reloaded_params)) {
      const auto eval = reloaded.evaluate(corpus.test(), 4, 25);
      std::printf("\nreloaded from %s: test BPC %.3f (matches %.3f)\n",
                  path.c_str(), eval.bpc, pruned_eval.bpc);
    }
  }
  return 0;
}
