// Live char-LM sampling over the serving stack — a trained checkpoint
// end to end: model_io load -> per-layer fixed pruners -> EnginePool ->
// LiveServer workers -> greedy decoding off Response.dense_h with the
// checkpoint's own classifier, then a record->replay digest check that
// proves the interactive run reproduces bit-for-bit through the
// virtual-clock path.
//
// Usage: serve_char_lm [--model=data/models/tiny_char_lm.zssm]
//                      [--steps=120] [--pipeline]
//
// The trained model is the tiny 2-layer checkpoint zss_train writes
// (docs/serving.md "Serving trained models"); the sample is only as
// good as a 30k-char synthetic corpus allows, but the text is readably
// word-shaped — the point is the serving path, not the perplexity.
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/zss.h"
#include "serve/model.h"
#include "serve/protocol.h"
#include "serve/trace.h"
#include "serve/worker.h"

using namespace zss;

namespace {

std::string parse_str(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

bool parse_bool(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      parse_str(argc, argv, "model", "data/models/tiny_char_lm.zssm");
  const auto steps = static_cast<num::Index>(
      std::atol(parse_str(argc, argv, "steps", "120").c_str()));
  const bool pipeline = parse_bool(argc, argv, "pipeline");

  core::LoadedModel loaded;
  std::string error;
  if (!core::load_model(path, loaded, &error)) {
    std::fprintf(stderr, "serve_char_lm: %s\n", error.c_str());
    std::fprintf(stderr, "train one with: zss_train --task=char --layers=2 "
                         "--hidden=32 --sparsity=0.6 --out=%s\n",
                 path.c_str());
    return 1;
  }
  const core::ModelSpec& spec = loaded.spec;
  std::printf("loaded %s: layers=%u dh=%u vocab=%u thresholds:", path.c_str(),
              spec.layers, spec.hidden, spec.vocab);
  for (const float t : spec.thresholds) std::printf(" %.4f", t);
  std::printf("\n");

  // The serving view: borrowed cells, one fixed pruner per layer at the
  // checkpoint's exported threshold (exactly what zss_serve builds).
  std::vector<const nn::LstmCell*> cells;
  for (const auto& c : loaded.cells) cells.push_back(c.get());
  std::vector<core::StatePruner> pruners;
  pruners.reserve(spec.thresholds.size());
  std::vector<const core::StatePruner*> pruner_ptrs;
  for (const float t : spec.thresholds) {
    pruners.emplace_back(core::PrunerConfig::fixed(t));
  }
  for (const auto& p : pruners) pruner_ptrs.push_back(&p);
  serve::ServeModel model;
  model.cells = cells;
  model.pruners = pruner_ptrs;
  model.embedding = loaded.embedding.get();
  model.name = path;
  model.vocab = static_cast<num::Index>(spec.vocab);

  serve::PoolConfig pc;
  pc.pipeline = pipeline;
  serve::EnginePool pool(model, pc);

  // Greedy decoding is a submit -> serve -> argmax -> submit loop: the
  // sink copies the dense top-layer h (the span dies with the sink
  // call), the main thread runs the checkpoint's classifier on it.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<float> dense;
  bool ready = false;
  serve::DigestTable live_digests;
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    serve::fold_response(live_digests, r);
    dense.assign(r.dense_h.begin(), r.dense_h.end());
    ready = true;
    cv.notify_one();
  };

  serve::LiveConfig lc;
  lc.record = true;
  serve::LiveServer server(pool, sink, lc);

  // symbol() needs a corpus instance; the id->char table is fixed.
  const auto corpus = data::CharCorpus::generate({});
  num::Matrix logits;
  num::Matrix h_row(1, static_cast<num::Index>(spec.hidden));
  const serve::SessionId session = 1;
  num::Index token = 26;  // corpus symbol table: ' ' (a word boundary)

  std::printf("greedy sample (%lld chars, %s schedule):\n",
              static_cast<long long>(steps),
              pipeline ? "pipelined" : "sequential");
  std::string text;
  for (num::Index i = 0; i < steps; ++i) {
    if (!server.submit(session, token).has_value()) break;
    server.flush_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
    ready = false;
    std::copy(dense.begin(), dense.end(), h_row.row(0).begin());
    loaded.classifier->forward(h_row, logits);
    num::Index best = 0;
    for (num::Index v = 1; v < logits.cols(); ++v) {
      if (logits(0, v) > logits(0, best)) best = v;
    }
    token = best;
    text += corpus.symbol(token);
  }
  std::printf("%s\n", text.c_str());

  server.shutdown();

  // Determinism receipt: replay the recorded live run through a fresh
  // pool and compare the per-session digest tables bit-for-bit.
  serve::EnginePool replay_pool(model, pc);
  serve::DigestTable replay_digests;
  const serve::ResponseSink replay_sink = [&](const serve::Response& r) {
    serve::fold_response(replay_digests, r);
  };
  serve::replay(replay_pool, server.recorded_trace(), replay_sink);
  if (replay_digests != live_digests) {
    std::fprintf(stderr, "record->replay digest MISMATCH\n");
    return 1;
  }
  std::printf("record->replay digests match (%zu sessions, %lld steps)\n",
              live_digests.size(), static_cast<long long>(steps));
  return 0;
}
