// Stacked pruned-state LSTM — the extension beyond the paper's
// single-layer models. Each layer's recurrence consumes its own pruned
// state, so the accelerator's skip logic applies per layer; this example
// trains a 2-layer char model at 85% per-layer sparsity and reports the
// per-layer sparsity the hardware would exploit.
//
// Usage: stacked_char_lm [--layers=2] [--sparsity=0.85] [--epochs=2]
#include <cstdio>
#include <string>

#include "core/zss.h"

using namespace zss;

namespace {

double parse_flag(int argc, char** argv, const std::string& name,
                  double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto layers =
      static_cast<num::Index>(parse_flag(argc, argv, "layers", 2));
  const double sparsity = parse_flag(argc, argv, "sparsity", 0.85);
  const int epochs = static_cast<int>(parse_flag(argc, argv, "epochs", 2));

  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 24000;
  dcfg.valid_chars = 3000;
  dcfg.test_chars = 3000;
  dcfg.lexicon_words = 120;
  dcfg.successor_prob = 0.85;
  const auto corpus = data::CharCorpus::generate(dcfg);

  core::StackedLmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.layers = layers;
  cfg.hidden = 48;
  cfg.inter_layer_dropout = 0.2;
  cfg.pruner = core::PrunerConfig::target(sparsity);
  core::StackedPrunedLstmLm model(cfg);

  std::printf("training a %lld-layer LSTM (d_h=%lld) with %.0f%% per-layer "
              "state pruning...\n",
              static_cast<long long>(layers),
              static_cast<long long>(cfg.hidden), sparsity * 100.0);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int e = 0; e < epochs; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
    const auto eval = model.evaluate(corpus.valid(), 4, 25);
    std::printf("  epoch %d: valid BPC %.3f\n", e, eval.bpc);
  }

  const auto eval = model.evaluate(corpus.test(), 4, 25);
  std::printf("\ntest BPC %.3f; per-layer stored-state sparsity:\n",
              eval.bpc);
  for (std::size_t l = 0; l < eval.layer_sparsity.size(); ++l) {
    std::printf("  layer %zu: %.1f%% pruned\n", l,
                eval.layer_sparsity[l] * 100.0);
  }

  // Batch-intersected sparsity per layer — what the accelerator can
  // actually skip at batch 8 (the Fig. 7 effect, per layer).
  std::vector<sparse::SparsityMeter> meters(
      static_cast<std::size_t>(layers));
  model.collect_states(corpus.test(), 8, 100, meters);
  std::printf("\nbatch-8 intersected sparsity (skippable positions):\n");
  for (std::size_t l = 0; l < meters.size(); ++l) {
    std::printf("  layer %zu: %.1f%%\n", l,
                meters[l].mean_sparsity() * 100.0);
  }
  return 0;
}
