// Quickstart: the whole pipeline in one page.
//
//  1. Train a small character LSTM with hidden-state pruning (the paper's
//     Eq. 4-6): 90% of the state is zeroed in the forward pass while the
//     dense state keeps learning underneath.
//  2. Run skip-aware inference and count the recurrent work that the
//     zero states let us avoid.
//  3. Replay the same model on the cycle-level accelerator model and
//     compare sparse vs dense cycles.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "accel/lstm_accelerator.h"
#include "core/zss.h"
#include "num/stats.h"

using namespace zss;

int main() {
  // ---- 1. Data and model ----
  data::CharCorpusConfig corpus_cfg;
  corpus_cfg.train_chars = 20000;
  corpus_cfg.valid_chars = 2000;
  corpus_cfg.test_chars = 2000;
  const auto corpus = data::CharCorpus::generate(corpus_cfg);

  core::LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = 64;
  cfg.pruner = core::PrunerConfig::target(0.9);  // prune 90% of the state
  core::PrunedLstmLm model(cfg);

  std::printf("training a %lld-unit LSTM with 90%% state pruning...\n",
              static_cast<long long>(cfg.hidden));
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int epoch = 0; epoch < 2; ++epoch) {
    double nll = 0.0;
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      nll = model.train_window(batcher.window(w), adam, 5.0f);
    }
    const auto eval = model.evaluate(corpus.valid(), 4, 25);
    std::printf("  epoch %d: train NLL %.3f, valid BPC %.3f, "
                "state sparsity %.1f%%\n",
                epoch, nll, eval.bpc, eval.state_sparsity * 100.0);
  }

  // ---- 2. Skip-aware software inference ----
  const core::StatePruner pruner(cfg.pruner);
  core::SparseLstmEngine engine(model.cell(), pruner);
  num::Matrix h(1, cfg.hidden, 0.0f);
  num::Matrix c(1, cfg.hidden, 0.0f);
  num::Matrix x(1, cfg.vocab, 0.0f);
  for (num::Index t = 0; t < 200; ++t) {
    x.fill(0.0f);
    x(0, corpus.test()[static_cast<std::size_t>(t)]) = 1.0f;
    engine.step(x, h, c);
  }
  std::printf("\nsoftware engine over 200 steps:\n"
              "  observed batch sparsity: %.1f%%\n"
              "  recurrent MACs avoided: %.1f%% (%.1fx matvec speedup)\n",
              engine.stats().observed_sparsity() * 100.0,
              100.0 * (1.0 - static_cast<double>(
                                 engine.stats().state_macs_effectual) /
                                 static_cast<double>(
                                     engine.stats().state_macs_total)),
              engine.stats().state_speedup());

  // ---- 3. Cycle-level accelerator ----
  // Export the model's empirical fixed threshold: the 90% magnitude
  // quantile of the pre-prune states observed under pruned dynamics.
  sparse::SparsityMeter meter;
  std::vector<num::Matrix> dense_states;
  (void)model.collect_states(corpus.valid(), 1, 80, meter, nullptr,
                             &dense_states);
  std::vector<float> all_values;
  for (const auto& s : dense_states) {
    all_values.insert(all_values.end(), s.flat().begin(), s.flat().end());
  }
  accel::LstmAcceleratorOptions opt;
  opt.prune_threshold = num::quantile_abs(all_values, 0.9);
  opt.input_mode = accel::InputMode::kOneHot;
  accel::LstmAccelerator sparse_hw(accel::AcceleratorConfig{}, opt,
                                   model.cell());
  accel::LstmAccelerator dense_hw(accel::AcceleratorConfig{}, opt,
                                  model.cell());
  sparse_hw.reset(1);
  dense_hw.reset(1);
  for (num::Index t = 0; t < 100; ++t) {
    x.fill(0.0f);
    x(0, corpus.test()[static_cast<std::size_t>(t)]) = 1.0f;
    sparse_hw.step(x);
    dense_hw.step_dense(x);
  }
  std::printf("\naccelerator model over 100 timesteps:\n"
              "  dense:  %lld cycles\n"
              "  sparse: %lld cycles  ->  %.2fx speedup\n"
              "  int8 datapath fidelity (cosine vs float): %.4f\n",
              static_cast<long long>(dense_hw.totals().cycles),
              static_cast<long long>(sparse_hw.totals().cycles),
              static_cast<double>(dense_hw.totals().cycles) /
                  static_cast<double>(sparse_hw.totals().cycles),
              sparse_hw.fidelity_cosine());
  return 0;
}
