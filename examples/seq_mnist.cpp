// Sequential image classification with a pruned-state LSTM — the paper's
// third workload (§II-B.3). Pixels stream one per timestep in scanline
// order; the classifier reads the final hidden state. The example trains
// with 80% state pruning, shows a glyph, and replays the scanline on the
// cycle-level accelerator.
//
// Usage: seq_mnist [--sparsity=0.8] [--epochs=6]
#include <cstdio>
#include <string>

#include "accel/lstm_accelerator.h"
#include "core/zss.h"

using namespace zss;

namespace {

double parse_flag(int argc, char** argv, const std::string& name,
                  double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const double sparsity = parse_flag(argc, argv, "sparsity", 0.8);
  const int epochs = static_cast<int>(parse_flag(argc, argv, "epochs", 6));

  data::GlyphConfig dcfg;
  dcfg.side = 12;
  dcfg.train_count = 800;
  dcfg.test_count = 200;
  const auto images = data::GlyphImages::generate(dcfg);

  std::printf("a training glyph (class %lld):\n%s\n",
              static_cast<long long>(images.train_labels()[0]),
              images.render(images.train_images().row(0)).c_str());

  core::ClassifierConfig cfg;
  cfg.hidden = 48;
  cfg.pruner = core::PrunerConfig::target(sparsity);
  core::PrunedLstmClassifier model(cfg);
  nn::Adam adam(1e-3f);
  data::ImageBatcher batcher(images.train_images(), images.train_labels(),
                             20);
  num::Rng rng(9);
  std::printf("training %d epochs with %.0f%% state pruning over %lld "
              "timesteps per image...\n",
              epochs, sparsity * 100.0,
              static_cast<long long>(images.pixels()));
  for (int e = 0; e < epochs; ++e) {
    batcher.shuffle(rng);
    for (num::Index b = 0; b < batcher.num_batches(); ++b) {
      (void)model.train_batch(batcher.batch(b), adam, 5.0f);
    }
    const auto eval = model.evaluate(images.test_images(),
                                     images.test_labels());
    std::printf("  epoch %d: test MER %.2f%%, state sparsity %.1f%%\n", e,
                eval.error_rate_percent, eval.state_sparsity * 100.0);
  }

  // Replay one image's scanline on the accelerator (dense input mode:
  // each timestep feeds a single real-valued pixel, d_x = 1).
  accel::LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.05f;
  opt.input_mode = accel::InputMode::kDense;
  accel::LstmAccelerator sparse_hw(accel::AcceleratorConfig{}, opt,
                                   model.cell());
  accel::LstmAccelerator dense_hw(accel::AcceleratorConfig{}, opt,
                                  model.cell());
  sparse_hw.reset(1);
  dense_hw.reset(1);
  num::Matrix x(1, 1);
  for (num::Index t = 0; t < images.pixels(); ++t) {
    x(0, 0) = images.test_images()(0, t);
    sparse_hw.step(x);
    dense_hw.step_dense(x);
  }
  std::printf("\naccelerator replay of one %lldx%lld image:\n"
              "  dense  %lld cycles, sparse %lld cycles -> %.2fx\n"
              "  observed state sparsity on-chip: %.1f%%\n",
              static_cast<long long>(dcfg.side),
              static_cast<long long>(dcfg.side),
              static_cast<long long>(dense_hw.totals().cycles),
              static_cast<long long>(sparse_hw.totals().cycles),
              static_cast<double>(dense_hw.totals().cycles) /
                  static_cast<double>(sparse_hw.totals().cycles),
              sparse_hw.totals().observed_sparsity() * 100.0);
  return 0;
}
