// The int8 exactness contract at the engine level (docs/exactness.md
// "int8"): the quantized step(), the quantized step_dense() and the
// independent naive QuantizedLstmReference twin must produce
// bit-identical h/c trajectories — at every batch size, on every
// registered-and-available backend. Integer products are exact and i32
// accumulation wraps mod 2^32 (associative), so no summation schedule
// can legally change a single bit; any mismatch is a real datapath bug,
// never "quantization noise".
#include "core/quantized_reference.h"
#include "core/sparse_inference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/rng.h"
#include "num/simd/backend.h"

namespace zss::core {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

Matrix random_matrix(Index rows, Index cols, Rng& rng, double scale = 0.5) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-scale, scale));
  return m;
}

class QuantizedInferenceTest : public ::testing::Test {
 protected:
  QuantizedInferenceTest() : rng_(42), cell_(6, 24, rng_) {}
  void TearDown() override { num::simd::set_backend_for_testing(nullptr); }

  Rng rng_;
  nn::LstmCell cell_;
};

TEST_F(QuantizedInferenceTest, QuantStepEqualsDenseAndTwinOnEveryBackend) {
  const Index dh = cell_.hidden_dim();
  const Index dx = cell_.input_dim();
  StatePruner pruner(PrunerConfig::fixed(0.08f));
  for (const num::simd::KernelBackend* backend :
       num::simd::available_backends()) {
    num::simd::set_backend_for_testing(backend);
    for (Index batch : {Index{1}, Index{2}, Index{8}, Index{32}}) {
      SCOPED_TRACE(std::string(backend->name) + " batch " +
                   std::to_string(batch));
      SparseLstmEngine sparse(cell_, pruner, {}, QuantConfig::int8());
      SparseLstmEngine dense(cell_, pruner, {}, QuantConfig::int8());
      QuantizedLstmReference twin(cell_, pruner);
      ASSERT_TRUE(sparse.quantized());
      Rng step_rng(1000 + static_cast<std::uint64_t>(batch));
      Matrix h_s(batch, dh, 0.0f), c_s(batch, dh, 0.0f);
      Matrix h_d(batch, dh, 0.0f), c_d(batch, dh, 0.0f);
      Matrix h_t(batch, dh, 0.0f), c_t(batch, dh, 0.0f);
      for (int t = 0; t < 12; ++t) {
        const Matrix x = random_matrix(batch, dx, step_rng);
        sparse.step(x, h_s, c_s);
        dense.step_dense(x, h_d, c_d);
        twin.step(x, h_t, c_t);
        ASSERT_EQ(h_s, h_d) << "step " << t;
        ASSERT_EQ(c_s, c_d) << "step " << t;
        ASSERT_EQ(h_s, h_t) << "step " << t;
        ASSERT_EQ(c_s, c_t) << "step " << t;
      }
      // The sparse engine really skipped: with pruning on, effectual
      // state MACs must undercut the dense count at every batch size.
      EXPECT_LT(sparse.stats().state_macs_effectual,
                sparse.stats().state_macs_total);
      EXPECT_EQ(dense.stats().state_macs_effectual,
                dense.stats().state_macs_total);
    }
  }
}

TEST_F(QuantizedInferenceTest, StatesRoundTripTheInt8Grid) {
  // Every h/c the quantized engine stores is float(q) * kStateScale for
  // an integer q (|q| <= 127 for h, |q| <= 127 * c_clip for c), so the
  // next step's re-quantization (round(v / kStateScale)) recovers q
  // exactly — the round trip the skip path's zero pattern rides on.
  StatePruner pruner(PrunerConfig::fixed(0.08f));
  SparseLstmEngine engine(cell_, pruner, {}, QuantConfig::int8());
  const QuantConfig& cfg = engine.quant_config();
  const float grid = nn::PackedLstmWeightsI8::kStateScale;
  Matrix h(4, cell_.hidden_dim(), 0.0f);
  Matrix c(4, cell_.hidden_dim(), 0.0f);
  for (int t = 0; t < 8; ++t) {
    const Matrix x = random_matrix(4, cell_.input_dim(), rng_);
    engine.step(x, h, c);
  }
  for (float v : h.flat()) {
    const float q = std::nearbyint(v / grid);
    EXPECT_LE(std::fabs(q), 127.0f);
    EXPECT_EQ(v, static_cast<float>(q) * grid);
  }
  for (float v : c.flat()) {
    const float q = std::nearbyint(v / grid);
    EXPECT_LE(std::fabs(q), 127.0f * static_cast<float>(cfg.c_clip));
    EXPECT_EQ(v, static_cast<float>(q) * grid);
  }
}

TEST_F(QuantizedInferenceTest, QuantizedAccessorsAndSharedScale) {
  StatePruner pruner(PrunerConfig::fixed(0.08f));
  SparseLstmEngine fp32(cell_, pruner);
  EXPECT_FALSE(fp32.quantized());
  EXPECT_EQ(fp32.packed_weights_i8(), nullptr);

  SparseLstmEngine q(cell_, pruner, {}, QuantConfig::int8());
  EXPECT_TRUE(q.quantized());
  ASSERT_NE(q.packed_weights_i8(), nullptr);
  // The twin re-derives the shared Wx/Wh scale independently; both
  // must land on the identical float.
  QuantizedLstmReference twin(cell_, pruner);
  EXPECT_EQ(q.packed_weights_i8()->weight_scale.scale, twin.weight_scale());
}

TEST_F(QuantizedInferenceTest, BatchCompositionDoesNotChangeALane) {
  // Serving determinism at the engine level: a lane stepped alone must
  // match the same lane stepped inside a batch of strangers — all
  // quantization scales are fixed at construction, so nothing
  // batch-dependent can enter the datapath.
  const Index dh = cell_.hidden_dim();
  const Index dx = cell_.input_dim();
  StatePruner pruner(PrunerConfig::fixed(0.08f));
  SparseLstmEngine solo(cell_, pruner, {}, QuantConfig::int8());
  SparseLstmEngine batched(cell_, pruner, {}, QuantConfig::int8());

  Matrix h1(1, dh, 0.0f), c1(1, dh, 0.0f);
  Matrix hb(5, dh, 0.0f), cb(5, dh, 0.0f);
  for (Index r = 0; r < 5; ++r) {
    for (Index j = 0; j < dh; ++j) {
      if (r > 0) {
        hb(r, j) = static_cast<float>(rng_.uniform(-1.0, 1.0));
        cb(r, j) = static_cast<float>(rng_.uniform(-1.0, 1.0));
      }
    }
  }
  for (int t = 0; t < 10; ++t) {
    const Matrix x1 = random_matrix(1, dx, rng_);
    Matrix xb = random_matrix(5, dx, rng_);
    for (Index j = 0; j < dx; ++j) xb(0, j) = x1(0, j);
    solo.step(x1, h1, c1);
    batched.step(xb, hb, cb);
    for (Index j = 0; j < dh; ++j) {
      ASSERT_EQ(h1(0, j), hb(0, j)) << "step " << t << " j " << j;
      ASSERT_EQ(c1(0, j), cb(0, j)) << "step " << t << " j " << j;
    }
  }
}

}  // namespace
}  // namespace zss::core
