#include "core/sparse_inference.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "num/parallel.h"
#include "num/rng.h"

// Global operator new instrumented for the zero-allocation contract:
// counting every allocation in the binary lets the test assert that a
// warmed-up step() performs none at all, not just none via Workspace.
namespace {
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace zss::core {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

Matrix random_matrix(Index rows, Index cols, Rng& rng, double scale = 0.5) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-scale, scale));
  return m;
}

class SparseInferenceTest : public ::testing::Test {
 protected:
  SparseInferenceTest() : rng_(42), cell_(4, 12, rng_) {}

  Rng rng_;
  nn::LstmCell cell_;
};

TEST_F(SparseInferenceTest, SparseStepMatchesDenseStepExactly) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine sparse(cell_, pruner);
  SparseLstmEngine dense(cell_, pruner);

  Matrix h_s(2, 12, 0.0f);
  Matrix c_s(2, 12, 0.0f);
  Matrix h_d(2, 12, 0.0f);
  Matrix c_d(2, 12, 0.0f);
  for (int t = 0; t < 20; ++t) {
    const Matrix x = random_matrix(2, 4, rng_);
    sparse.step(x, h_s, c_s);
    dense.step_dense(x, h_d, c_d);
    // Bit-exact: skipped terms are IEEE identities and the accumulation
    // order of surviving terms matches.
    EXPECT_EQ(h_s, h_d) << "step " << t;
    EXPECT_EQ(c_s, c_d) << "step " << t;
  }
}

TEST_F(SparseInferenceTest, BatchedPerLanePathMatchesDenseExactly) {
  // The B > 1 per-lane CSR path (num::sparse_accum_rows_multi) must be
  // bit-identical to the dense baseline at every batch size, exactly
  // like the B == 1 offset-encoded path: a lane's chain accumulates its
  // own kept positions in ascending order, and the dense chain differs
  // from it only by exact-zero terms (IEEE identities).
  for (const num::Index batch : {num::Index{2}, num::Index{8},
                                 num::Index{32}}) {
    StatePruner pruner(PrunerConfig::target(0.6));
    SparseLstmEngine sparse(cell_, pruner);
    SparseLstmEngine dense(cell_, pruner);
    Matrix h_s(batch, 12, 0.0f), c_s(batch, 12, 0.0f);
    Matrix h_d(batch, 12, 0.0f), c_d(batch, 12, 0.0f);
    for (int t = 0; t < 12; ++t) {
      const Matrix x = random_matrix(batch, 4, rng_);
      sparse.step(x, h_s, c_s);
      dense.step_dense(x, h_d, c_d);
      ASSERT_EQ(h_s, h_d) << "batch " << batch << " step " << t;
      ASSERT_EQ(c_s, c_d) << "batch " << batch << " step " << t;
    }
  }
}

TEST_F(SparseInferenceTest, PerLaneStatsTrackLaneSparsityNotIntersection) {
  // At batch 4 with ~50% per-lane sparsity, the union (intersection
  // skip) keeps ~1 - 0.5^4 ~= 94% of positions, but the per-lane path
  // only performs each lane's own work (~50%): the stats must report
  // both quantities separately, and the effectual MACs must follow the
  // per-lane count, not batch * union.
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(4, 12, 0.0f), c(4, 12, 0.0f);
  for (int t = 0; t < 30; ++t) {
    const Matrix x = random_matrix(4, 4, rng_);
    engine.step(x, h, c);
  }
  const auto& stats = engine.stats();
  ASSERT_GT(stats.lane_positions, 0);
  EXPECT_EQ(stats.lane_positions, stats.positions * 4);
  // Per-lane observed sparsity tracks the pruner's target...
  EXPECT_NEAR(stats.observed_lane_sparsity(), 0.5, 0.1);
  // ...while the union sparsity collapses toward zero (Fig. 7).
  EXPECT_LT(stats.observed_sparsity(), 0.25);
  // Effectual MACs are the per-lane work, exactly.
  EXPECT_EQ(stats.state_macs_effectual, stats.lane_kept_positions * 4 * 12);
  EXPECT_LT(stats.state_macs_effectual,
            stats.kept_positions * 4 * 4 * 12);  // < batch * union work
  // The per-step snapshot carries the same split.
  const StepStats& last = engine.last_step_stats();
  EXPECT_EQ(last.batch, 4);
  EXPECT_LE(last.kept_positions, last.lane_kept_positions);
  EXPECT_NEAR(last.observed_lane_sparsity(), 0.5, 0.15);
}

TEST_F(SparseInferenceTest, StatsCountSkippedWork) {
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);  // first step: h starts all-zero -> max skipping
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.steps, 1);
  EXPECT_EQ(stats.state_macs_effectual, 0);  // zero state: all skipped
  EXPECT_EQ(stats.state_macs_total, 12 * 48);
  EXPECT_EQ(stats.input_macs, 4 * 48);
  EXPECT_DOUBLE_EQ(stats.observed_sparsity(), 1.0);

  engine.step(x, h, c);  // now the state is ~50% sparse
  EXPECT_EQ(engine.stats().steps, 2);
  EXPECT_GT(engine.stats().state_macs_effectual, 0);
  EXPECT_LT(engine.stats().state_macs_effectual,
            engine.stats().state_macs_total);
}

TEST_F(SparseInferenceTest, SpeedupTracksSparsity) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  for (int t = 0; t < 50; ++t) {
    const Matrix x = random_matrix(1, 4, rng_);
    engine.step(x, h, c);
  }
  // 75% target sparsity at batch 1: state matvec speedup ~= 4x.
  EXPECT_NEAR(engine.stats().state_speedup(), 4.0, 1.0);
}

TEST_F(SparseInferenceTest, BatchIntersectionLimitsSkipping) {
  // With a batch, only positions zero in ALL lanes are skipped, so the
  // effectual fraction must exceed the per-lane density.
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(4, 12, 0.0f);
  Matrix c(4, 12, 0.0f);
  for (int t = 0; t < 30; ++t) {
    const Matrix x = random_matrix(4, 4, rng_);
    engine.step(x, h, c);
  }
  // Kept fraction >= per-element density (0.5); typically much more.
  const double kept = 1.0 - engine.stats().observed_sparsity();
  EXPECT_GE(kept, 0.45);
}

TEST_F(SparseInferenceTest, DenseEngineNeverSkips) {
  StatePruner pruner(PrunerConfig::none());
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);   // all-zero initial state still skips...
  engine.step(x, h, c);   // ...but a dense state afterwards must not
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.kept_positions, 0 + 12);
  EXPECT_DOUBLE_EQ(stats.observed_sparsity(), 0.5);
}

TEST_F(SparseInferenceTest, ResetStatsClears) {
  StatePruner pruner(PrunerConfig::none());
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().steps, 0);
  EXPECT_EQ(engine.stats().state_macs_total, 0);
}

TEST_F(SparseInferenceTest, SpeedupReportsDenseTotalWhenAllSkipped) {
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  EXPECT_DOUBLE_EQ(engine.stats().state_speedup(), 0.0);  // no steps yet

  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);  // all-zero state: every state MAC was skipped
  const auto& stats = engine.stats();
  ASSERT_EQ(stats.state_macs_effectual, 0);
  ASSERT_GT(stats.state_macs_total, 0);
  // Everything was skipped, so the speedup bound is the whole dense
  // cost — reporting 0.0 here would read as "no speedup at all".
  EXPECT_DOUBLE_EQ(stats.state_speedup(),
                   static_cast<double>(stats.state_macs_total));
}

TEST_F(SparseInferenceTest, StepIsAllocationFreeOnceWarm) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(2, 12, 0.0f);
  Matrix c(2, 12, 0.0f);
  const Matrix x = random_matrix(2, 4, rng_);
  for (int t = 0; t < 3; ++t) engine.step(x, h, c);  // warm-up

  const std::size_t ws_warm = engine.workspace().allocation_count();
  const std::size_t heap_warm = g_alloc_count;
  for (int t = 0; t < 20; ++t) engine.step(x, h, c);
  EXPECT_EQ(engine.workspace().allocation_count(), ws_warm);
  EXPECT_EQ(g_alloc_count, heap_warm);
}

TEST_F(SparseInferenceTest, StepDenseIsAllocationFreeOnceWarm) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  for (int t = 0; t < 3; ++t) engine.step_dense(x, h, c);

  const std::size_t heap_warm = g_alloc_count;
  for (int t = 0; t < 20; ++t) engine.step_dense(x, h, c);
  EXPECT_EQ(g_alloc_count, heap_warm);
}

TEST_F(SparseInferenceTest, ReserveMakesTheFirstStepAllocationFree) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine engine(cell_, pruner);
  engine.reserve(4);
  Matrix h(4, 12, 0.0f);
  Matrix c(4, 12, 0.0f);
  const Matrix x = random_matrix(4, 4, rng_);
  Matrix h2(2, 12, 0.0f), c2(2, 12, 0.0f);
  const Matrix x2 = random_matrix(2, 4, rng_);

  const std::size_t ws_warm = engine.workspace().allocation_count();
  const std::size_t heap_warm = g_alloc_count;
  engine.step(x, h, c);  // very first step — reserve() already warmed it
  EXPECT_EQ(engine.workspace().allocation_count(), ws_warm);
  EXPECT_EQ(g_alloc_count, heap_warm);

  // Any batch size at or below the reservation reuses the same buffers.
  engine.step(x2, h2, c2);
  EXPECT_EQ(engine.workspace().allocation_count(), ws_warm);
  EXPECT_EQ(g_alloc_count, heap_warm);
}

TEST_F(SparseInferenceTest, LastStepStatsSnapshotNeverAccumulates) {
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(2, 12, 0.0f);
  Matrix c(2, 12, 0.0f);
  const Matrix x = random_matrix(2, 4, rng_);

  engine.step(x, h, c);  // all-zero state: everything skipped
  EXPECT_EQ(engine.last_step_stats().batch, 2);
  EXPECT_EQ(engine.last_step_stats().positions, 12);
  EXPECT_EQ(engine.last_step_stats().kept_positions, 0);
  EXPECT_DOUBLE_EQ(engine.last_step_stats().observed_sparsity(), 1.0);
  EXPECT_NEAR(engine.last_step_stats().lane_sparsity, 0.5, 0.15);

  engine.step(x, h, c);  // ~50% sparse state now
  const StepStats snap = engine.last_step_stats();
  EXPECT_EQ(snap.batch, 2);
  EXPECT_GT(snap.kept_positions, 0);
  EXPECT_EQ(snap.positions, 12);  // a snapshot, not a running sum

  // reset_stats() clears the cumulative counters but not the snapshot.
  engine.reset_stats();
  EXPECT_EQ(engine.stats().steps, 0);
  EXPECT_EQ(engine.last_step_stats().batch, 2);
  EXPECT_EQ(engine.last_step_stats().kept_positions, snap.kept_positions);
}

TEST_F(SparseInferenceTest, ContractHoldsWithThreadingEnabled) {
  // parallel_for partitions rows without reordering any accumulation, so
  // the sparse/dense bit-exactness contract must survive thread counts.
  // Batch 8 matters: the kernels partition over the batch/row dimension,
  // and kParallelGrain-sized chunks only split for >= 2*grain rows — a
  // smaller batch would silently run the single-threaded path.
  static_assert(8 >= 2 * num::kParallelGrain);
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine sparse(cell_, pruner);
  SparseLstmEngine dense(cell_, pruner);
  Matrix h_s(8, 12, 0.0f), c_s(8, 12, 0.0f);
  Matrix h_d(8, 12, 0.0f), c_d(8, 12, 0.0f);
  num::set_num_threads(2);
  for (int t = 0; t < 10; ++t) {
    const Matrix x = random_matrix(8, 4, rng_);
    sparse.step(x, h_s, c_s);
    dense.step_dense(x, h_d, c_d);
    EXPECT_EQ(h_s, h_d) << "step " << t;
    EXPECT_EQ(c_s, c_d) << "step " << t;
  }
  num::set_num_threads(1);
}

TEST_F(SparseInferenceTest, PackedWeightsExposedAndTransposed) {
  StatePruner pruner(PrunerConfig::none());
  SparseLstmEngine engine(cell_, pruner);
  const auto& packed = engine.packed_weights();
  ASSERT_EQ(packed.wht.rows(), 12);
  ASSERT_EQ(packed.wht.cols(), 48);
  for (num::Index j = 0; j < 12; ++j) {
    for (num::Index k = 0; k < 48; ++k) {
      EXPECT_EQ(packed.wht(j, k), cell_.wh().value(k, j));
    }
  }
}

TEST_F(SparseInferenceTest, StoredStateIsPruned) {
  StatePruner pruner(PrunerConfig::target(0.9));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  for (int t = 0; t < 5; ++t) {
    const Matrix x = random_matrix(1, 4, rng_);
    engine.step(x, h, c);
  }
  Index zeros = 0;
  for (float v : h.flat()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GE(zeros, 10);  // ~90% of 12
}

}  // namespace
}  // namespace zss::core
