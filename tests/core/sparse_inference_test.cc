#include "core/sparse_inference.h"

#include <gtest/gtest.h>

#include "num/rng.h"

namespace zss::core {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

Matrix random_matrix(Index rows, Index cols, Rng& rng, double scale = 0.5) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-scale, scale));
  return m;
}

class SparseInferenceTest : public ::testing::Test {
 protected:
  SparseInferenceTest() : rng_(42), cell_(4, 12, rng_) {}

  Rng rng_;
  nn::LstmCell cell_;
};

TEST_F(SparseInferenceTest, SparseStepMatchesDenseStepExactly) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine sparse(cell_, pruner);
  SparseLstmEngine dense(cell_, pruner);

  Matrix h_s(2, 12, 0.0f);
  Matrix c_s(2, 12, 0.0f);
  Matrix h_d(2, 12, 0.0f);
  Matrix c_d(2, 12, 0.0f);
  for (int t = 0; t < 20; ++t) {
    const Matrix x = random_matrix(2, 4, rng_);
    sparse.step(x, h_s, c_s);
    dense.step_dense(x, h_d, c_d);
    // Bit-exact: skipped terms are IEEE identities and the accumulation
    // order of surviving terms matches.
    EXPECT_EQ(h_s, h_d) << "step " << t;
    EXPECT_EQ(c_s, c_d) << "step " << t;
  }
}

TEST_F(SparseInferenceTest, StatsCountSkippedWork) {
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);  // first step: h starts all-zero -> max skipping
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.steps, 1);
  EXPECT_EQ(stats.state_macs_effectual, 0);  // zero state: all skipped
  EXPECT_EQ(stats.state_macs_total, 12 * 48);
  EXPECT_EQ(stats.input_macs, 4 * 48);
  EXPECT_DOUBLE_EQ(stats.observed_sparsity(), 1.0);

  engine.step(x, h, c);  // now the state is ~50% sparse
  EXPECT_EQ(engine.stats().steps, 2);
  EXPECT_GT(engine.stats().state_macs_effectual, 0);
  EXPECT_LT(engine.stats().state_macs_effectual,
            engine.stats().state_macs_total);
}

TEST_F(SparseInferenceTest, SpeedupTracksSparsity) {
  StatePruner pruner(PrunerConfig::target(0.75));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  for (int t = 0; t < 50; ++t) {
    const Matrix x = random_matrix(1, 4, rng_);
    engine.step(x, h, c);
  }
  // 75% target sparsity at batch 1: state matvec speedup ~= 4x.
  EXPECT_NEAR(engine.stats().state_speedup(), 4.0, 1.0);
}

TEST_F(SparseInferenceTest, BatchIntersectionLimitsSkipping) {
  // With a batch, only positions zero in ALL lanes are skipped, so the
  // effectual fraction must exceed the per-lane density.
  StatePruner pruner(PrunerConfig::target(0.5));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(4, 12, 0.0f);
  Matrix c(4, 12, 0.0f);
  for (int t = 0; t < 30; ++t) {
    const Matrix x = random_matrix(4, 4, rng_);
    engine.step(x, h, c);
  }
  // Kept fraction >= per-element density (0.5); typically much more.
  const double kept = 1.0 - engine.stats().observed_sparsity();
  EXPECT_GE(kept, 0.45);
}

TEST_F(SparseInferenceTest, DenseEngineNeverSkips) {
  StatePruner pruner(PrunerConfig::none());
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);   // all-zero initial state still skips...
  engine.step(x, h, c);   // ...but a dense state afterwards must not
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.kept_positions, 0 + 12);
  EXPECT_DOUBLE_EQ(stats.observed_sparsity(), 0.5);
}

TEST_F(SparseInferenceTest, ResetStatsClears) {
  StatePruner pruner(PrunerConfig::none());
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  const Matrix x = random_matrix(1, 4, rng_);
  engine.step(x, h, c);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().steps, 0);
  EXPECT_EQ(engine.stats().state_macs_total, 0);
}

TEST_F(SparseInferenceTest, StoredStateIsPruned) {
  StatePruner pruner(PrunerConfig::target(0.9));
  SparseLstmEngine engine(cell_, pruner);
  Matrix h(1, 12, 0.0f);
  Matrix c(1, 12, 0.0f);
  for (int t = 0; t < 5; ++t) {
    const Matrix x = random_matrix(1, 4, rng_);
    engine.step(x, h, c);
  }
  Index zeros = 0;
  for (float v : h.flat()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GE(zeros, 10);  // ~90% of 12
}

}  // namespace
}  // namespace zss::core
