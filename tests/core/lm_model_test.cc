#include "core/lm_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/char_corpus.h"

namespace zss::core {
namespace {

using num::Index;

data::CharCorpus tiny_corpus() {
  data::CharCorpusConfig cfg;
  cfg.train_chars = 12000;
  cfg.valid_chars = 1500;
  cfg.test_chars = 1500;
  return data::CharCorpus::generate(cfg);
}

LmConfig tiny_config() {
  LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = 32;
  return cfg;
}

TEST(LmModelTest, InitialLossNearUniform) {
  const auto corpus = tiny_corpus();
  PrunedLstmLm model(tiny_config());
  const auto eval = model.evaluate(corpus.test(), 4, 16);
  // Untrained model should be close to log(50) nats per char.
  EXPECT_NEAR(eval.mean_nll, std::log(50.0), 0.7);
  EXPECT_NEAR(eval.bpc, std::log2(50.0), 1.0);
}

TEST(LmModelTest, TrainingReducesLoss) {
  const auto corpus = tiny_corpus();
  PrunedLstmLm model(tiny_config());
  nn::Adam adam(2e-3f);

  const auto before = model.evaluate(corpus.valid(), 4, 16);
  data::LmBatcher batcher(corpus.train(), 8, 20);
  double train_nll = 0.0;
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      train_nll = model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const auto after = model.evaluate(corpus.valid(), 4, 16);
  EXPECT_LT(after.mean_nll, before.mean_nll - 0.3);
  EXPECT_LT(train_nll, before.mean_nll);
}

TEST(LmModelTest, PrunedTrainingRunsAndReportsSparsity) {
  const auto corpus = tiny_corpus();
  auto cfg = tiny_config();
  cfg.pruner = PrunerConfig::target(0.8);
  PrunedLstmLm model(cfg);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 20);
  for (Index w = 0; w < std::min<Index>(batcher.num_windows(), 20); ++w) {
    (void)model.train_window(batcher.window(w), adam, 5.0f);
  }
  const auto eval = model.evaluate(corpus.valid(), 4, 16);
  EXPECT_NEAR(eval.state_sparsity, 0.8, 0.03);
}

TEST(LmModelTest, EmbeddingVariantTrains) {
  const auto corpus = tiny_corpus();
  LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.embed_dim = 16;
  cfg.hidden = 24;
  cfg.dropout = 0.3;
  PrunedLstmLm model(cfg);
  nn::Sgd sgd(0.5f);
  data::LmBatcher batcher(corpus.train(), 8, 16);
  const auto before = model.evaluate(corpus.valid(), 4, 16);
  for (Index w = 0; w < std::min<Index>(batcher.num_windows(), 60); ++w) {
    (void)model.train_window(batcher.window(w), sgd, 5.0f);
  }
  const auto after = model.evaluate(corpus.valid(), 4, 16);
  EXPECT_LT(after.mean_nll, before.mean_nll);
}

TEST(LmModelTest, SetPrunerSweepsOnSameWeights) {
  const auto corpus = tiny_corpus();
  PrunedLstmLm model(tiny_config());
  const auto dense = model.evaluate(corpus.test(), 4, 16);
  model.set_pruner(PrunerConfig::target(0.99));
  const auto pruned = model.evaluate(corpus.test(), 4, 16);
  EXPECT_GT(pruned.state_sparsity, 0.95);
  // An untrained-with-pruning model at 99% sparsity should behave
  // differently from dense (the recurrence is effectively cut).
  EXPECT_NE(dense.mean_nll, pruned.mean_nll);
  model.set_pruner(PrunerConfig::none());
  const auto back = model.evaluate(corpus.test(), 4, 16);
  EXPECT_NEAR(back.mean_nll, dense.mean_nll, 1e-9);
}

TEST(LmModelTest, CollectStatesMeasuresPrunedSparsity) {
  const auto corpus = tiny_corpus();
  auto cfg = tiny_config();
  cfg.pruner = PrunerConfig::target(0.9);
  PrunedLstmLm model(cfg);
  sparse::SparsityMeter meter;
  std::vector<num::Matrix> states;
  (void)model.collect_states(corpus.test(), 4, 50, meter, &states);
  EXPECT_EQ(meter.timesteps(), 50);
  EXPECT_EQ(states.size(), 50u);
  EXPECT_EQ(states[0].rows(), 4);
  EXPECT_EQ(states[0].cols(), cfg.hidden);
  // Element sparsity ~= 90%; batch-intersected is lower.
  EXPECT_NEAR(meter.mean_element_sparsity(), 0.9, 0.05);
  EXPECT_LE(meter.mean_sparsity(), meter.mean_element_sparsity() + 1e-12);
}

TEST(LmModelTest, SampleProducesRequestedLength) {
  PrunedLstmLm model(tiny_config());
  num::Rng rng(3);
  const std::vector<Index> prefix = {0, 1, 2};
  const auto tokens = model.sample(prefix, 20, /*greedy=*/false, rng);
  EXPECT_EQ(tokens.size(), 23u);
  for (auto t : tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 50);
  }
}

TEST(LmModelTest, GreedySamplingIsDeterministic) {
  PrunedLstmLm model(tiny_config());
  num::Rng rng_a(1);
  num::Rng rng_b(2);  // greedy ignores the rng
  const std::vector<Index> prefix = {5};
  const auto a = model.sample(prefix, 10, /*greedy=*/true, rng_a);
  const auto b = model.sample(prefix, 10, /*greedy=*/true, rng_b);
  EXPECT_EQ(a, b);
}

TEST(LmModelTest, SameSeedSameModel) {
  const auto corpus = tiny_corpus();
  PrunedLstmLm a(tiny_config());
  PrunedLstmLm b(tiny_config());
  const auto ea = a.evaluate(corpus.test(), 2, 8);
  const auto eb = b.evaluate(corpus.test(), 2, 8);
  EXPECT_DOUBLE_EQ(ea.mean_nll, eb.mean_nll);
}

}  // namespace
}  // namespace zss::core
