#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "num/rng.h"
#include "store/crc32c.h"

namespace zss::core {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void randomize(nn::Parameter& p, std::uint64_t seed) {
  num::Rng rng(seed);
  for (float& v : p.value.flat()) v = static_cast<float>(rng.normal());
}

TEST(ModelIoTest, RoundTripPreservesValues) {
  nn::Parameter a("a", 3, 4);
  nn::Parameter b("b", 1, 7);
  randomize(a, 1);
  randomize(b, 2);
  const std::vector<nn::Parameter*> params = {&a, &b};
  const std::string path = temp_path("roundtrip.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter a2("a", 3, 4);
  nn::Parameter b2("b", 1, 7);
  const std::vector<nn::Parameter*> loaded = {&a2, &b2};
  ASSERT_TRUE(load_parameters(path, loaded));
  EXPECT_EQ(a2.value, a.value);
  EXPECT_EQ(b2.value, b.value);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ShapeMismatchRejected) {
  nn::Parameter a("a", 2, 2);
  randomize(a, 3);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("shape.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter wrong("a", 2, 3);
  const std::vector<nn::Parameter*> loaded = {&wrong};
  EXPECT_FALSE(load_parameters(path, loaded));
  std::remove(path.c_str());
}

TEST(ModelIoTest, CountMismatchRejected) {
  nn::Parameter a("a", 2, 2);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("count.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter b("b", 2, 2);
  const std::vector<nn::Parameter*> loaded = {&a, &b};
  EXPECT_FALSE(load_parameters(path, loaded));
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileRejected) {
  nn::Parameter a("a", 1, 1);
  const std::vector<nn::Parameter*> params = {&a};
  EXPECT_FALSE(load_parameters(temp_path("does_not_exist.zssm"), params));
}

TEST(ModelIoTest, CorruptMagicRejected) {
  const std::string path = temp_path("corrupt.zssm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE", f);
  std::fclose(f);
  nn::Parameter a("a", 1, 1);
  const std::vector<nn::Parameter*> params = {&a};
  EXPECT_FALSE(load_parameters(path, params));
  std::remove(path.c_str());
}

TEST(ModelIoTest, TruncatedFileRejected) {
  nn::Parameter a("a", 8, 8);
  randomize(a, 4);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("trunc.zssm");
  ASSERT_TRUE(save_parameters(path, params));
  // Truncate the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), 40), 0);
  EXPECT_FALSE(load_parameters(path, params));
  std::remove(path.c_str());
}

// --- v1 hardening -----------------------------------------------------

TEST(ModelIoTest, V1NameMismatchRejected) {
  nn::Parameter a("weights.wx", 2, 2);
  randomize(a, 5);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("v1name.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter other("weights.wh", 2, 2);
  const std::vector<nn::Parameter*> loaded = {&other};
  std::string error;
  EXPECT_FALSE(load_parameters(path, loaded, &error));
  EXPECT_NE(error.find("weights.wx"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ModelIoTest, V1TrailingGarbageRejected) {
  nn::Parameter a("a", 2, 2);
  randomize(a, 6);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("v1tail.zssm");
  ASSERT_TRUE(save_parameters(path, params));
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "junk";
  }
  std::string error;
  EXPECT_FALSE(load_parameters(path, params, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  std::remove(path.c_str());
}

// --- v2 serving checkpoints -------------------------------------------

/// A small but fully populated spec (embedding + 2 layers + grid).
ModelSpec tiny_spec() {
  ModelSpec spec;
  spec.layers = 2;
  spec.hidden = 4;
  spec.vocab = 6;
  spec.embed_dim = 3;
  spec.input_dim = 3;
  spec.has_quant_grid = 1;
  spec.quant_pre_clip = 8.0f;
  spec.quant_c_clip = 8;
  spec.thresholds = {0.05f, 0.07f};
  return spec;
}

/// Canonical parameters for a spec, randomized.
struct CanonParams {
  std::vector<nn::Parameter> storage;
  std::vector<nn::Parameter*> ptrs;

  explicit CanonParams(const ModelSpec& spec) {
    const auto expected = expected_parameters(spec);
    storage.reserve(expected.size());
    std::uint64_t seed = 11;
    for (const ExpectedParam& e : expected) {
      storage.emplace_back(e.name, e.rows, e.cols);
      randomize(storage.back(), seed++);
    }
    for (auto& p : storage) ptrs.push_back(&p);
  }
};

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(f),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes the CRC32C trailer after a deliberate header forgery, so
/// the loader's *semantic* checks are what reject the file (not the
/// checksum masking every other test).
void fix_crc(std::vector<unsigned char>& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const std::uint32_t crc =
      store::crc32c(0, bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
}

std::string save_tiny(const char* name, const ModelSpec& spec) {
  CanonParams params(spec);
  const std::string path = temp_path(name);
  std::string error;
  EXPECT_TRUE(save_model(path, spec, params.ptrs, &error)) << error;
  return path;
}

TEST(ModelV2Test, RoundTripRebuildsModules) {
  const ModelSpec spec = tiny_spec();
  CanonParams params(spec);
  const std::string path = temp_path("v2rt.zssm");
  std::string error;
  ASSERT_TRUE(save_model(path, spec, params.ptrs, &error)) << error;

  LoadedModel out;
  ASSERT_TRUE(load_model(path, out, &error)) << error;
  EXPECT_EQ(out.spec.layers, spec.layers);
  EXPECT_EQ(out.spec.hidden, spec.hidden);
  EXPECT_EQ(out.spec.vocab, spec.vocab);
  EXPECT_EQ(out.spec.embed_dim, spec.embed_dim);
  EXPECT_EQ(out.spec.has_quant_grid, 1u);
  EXPECT_EQ(out.spec.quant_pre_clip, 8.0f);
  EXPECT_EQ(out.spec.quant_c_clip, 8u);
  ASSERT_EQ(out.spec.thresholds.size(), 2u);
  EXPECT_EQ(out.spec.thresholds[0], 0.05f);
  EXPECT_EQ(out.spec.thresholds[1], 0.07f);

  ASSERT_EQ(out.cells.size(), 2u);
  ASSERT_NE(out.embedding, nullptr);
  ASSERT_NE(out.classifier, nullptr);
  // Binding order: embed, per-layer {wx, wh, b}, classifier {w, b}.
  EXPECT_EQ(out.embedding->table().value, params.storage[0].value);
  EXPECT_EQ(out.cells[0]->parameters()[0]->value, params.storage[1].value);
  EXPECT_EQ(out.cells[0]->parameters()[1]->value, params.storage[2].value);
  EXPECT_EQ(out.cells[0]->parameters()[2]->value, params.storage[3].value);
  EXPECT_EQ(out.cells[1]->parameters()[0]->value, params.storage[4].value);
  EXPECT_EQ(out.classifier->weight().value, params.storage[7].value);
  EXPECT_EQ(out.classifier->bias().value, params.storage[8].value);
  // Layer dims follow the spec: layer 0 eats embed_dim, layer 1 hidden.
  EXPECT_EQ(out.cells[0]->input_dim(), 3);
  EXPECT_EQ(out.cells[1]->input_dim(), 4);
  std::remove(path.c_str());
}

TEST(ModelV2Test, OneHotSpecHasNoEmbedding) {
  ModelSpec spec = tiny_spec();
  spec.embed_dim = 0;
  spec.input_dim = spec.vocab;
  const std::string path = save_tiny("v2onehot.zssm", spec);
  LoadedModel out;
  std::string error;
  ASSERT_TRUE(load_model(path, out, &error)) << error;
  EXPECT_EQ(out.embedding, nullptr);
  EXPECT_EQ(out.cells[0]->input_dim(), 6);
  std::remove(path.c_str());
}

TEST(ModelV2Test, EveryPrefixTruncationRejected) {
  const std::string path = save_tiny("v2trunc.zssm", tiny_spec());
  const std::vector<unsigned char> whole = read_file(path);
  ASSERT_GT(whole.size(), 64u);
  const std::string cut = temp_path("v2cut.zssm");
  for (std::size_t n = 0; n < whole.size(); ++n) {
    write_file(cut, {whole.begin(), whole.begin() + n});
    LoadedModel out;
    std::string error;
    EXPECT_FALSE(load_model(cut, out, &error)) << "prefix " << n;
    EXPECT_FALSE(error.empty()) << "prefix " << n;
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(ModelV2Test, TrailingGarbageRejected) {
  const std::string path = save_tiny("v2tail.zssm", tiny_spec());
  std::vector<unsigned char> bytes = read_file(path);
  bytes.push_back(0x00);
  write_file(path, bytes);
  LoadedModel out;
  std::string error;
  EXPECT_FALSE(load_model(path, out, &error));
  EXPECT_NE(error.find("truncated or trailing"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ModelV2Test, BitRotAnywhereRejected) {
  // Flip one bit at a sweep of positions across the whole file — every
  // single one must be caught (header checks, binding checks or the
  // CRC trailer; nothing may load silently wrong).
  const std::string path = save_tiny("v2rot.zssm", tiny_spec());
  const std::vector<unsigned char> whole = read_file(path);
  const std::string rot = temp_path("v2rotten.zssm");
  for (std::size_t pos = 0; pos < whole.size(); pos += 7) {
    std::vector<unsigned char> bytes = whole;
    bytes[pos] ^= 0x10;
    write_file(rot, bytes);
    LoadedModel out;
    std::string error;
    EXPECT_FALSE(load_model(rot, out, &error)) << "flip at " << pos;
  }
  std::remove(path.c_str());
  std::remove(rot.c_str());
}

TEST(ModelV2Test, ForgedHeaderDimsRejected) {
  // Forge individual header fields and *repair the CRC*, so rejection
  // comes from the semantic validation / exact-size accounting, never
  // from a checksum coincidence. Field offsets: magic(4) version(4)
  // layers(4) hidden(4) input_dim(4) vocab(4) embed_dim(4) grid(4)
  // pre_clip(4) c_clip(4).
  const std::string path = save_tiny("v2forge.zssm", tiny_spec());
  const std::vector<unsigned char> whole = read_file(path);
  const std::string forged = temp_path("v2forged.zssm");
  struct Forgery {
    std::size_t offset;
    std::uint32_t value;
    const char* what;
  };
  const Forgery forgeries[] = {
      {8, 0, "layers = 0"},
      {8, 9, "layers > kMaxLayers"},
      {8, 3, "layers changed (size now wrong)"},
      {12, 0, "hidden = 0"},
      {12, 1u << 20, "hidden absurd"},
      {16, 9999, "input_dim disagrees with embed_dim"},
      {20, 1, "vocab < 2"},
      {20, (1u << 20) + 1, "vocab absurd"},
      {24, 8192, "embed_dim absurd"},
      {32, 0x7fc00000u, "pre_clip = NaN with grid on"},
      {36, 0, "c_clip = 0 with grid on"},
  };
  for (const Forgery& f : forgeries) {
    std::vector<unsigned char> bytes = whole;
    std::memcpy(bytes.data() + f.offset, &f.value, 4);
    fix_crc(bytes);
    write_file(forged, bytes);
    LoadedModel out;
    std::string error;
    EXPECT_FALSE(load_model(forged, out, &error)) << f.what;
    EXPECT_FALSE(error.empty()) << f.what;
  }
  std::remove(path.c_str());
  std::remove(forged.c_str());
}

TEST(ModelV2Test, ForgedParamNameRejected) {
  // Corrupt one byte of a stored parameter name and repair the CRC:
  // binding is by name, so the loader must refuse.
  const std::string path = save_tiny("v2pname.zssm", tiny_spec());
  std::vector<unsigned char> bytes = read_file(path);
  // First param record sits after magic+version+fixed spec+thresholds+
  // param count: 4+4+32+8+4 = 52; its name ("embed.table") starts at
  // 52+4 (after the record's own name-length field).
  ASSERT_EQ(std::memcmp(bytes.data() + 56, "embed.table", 11), 0);
  bytes[56] = 'X';
  fix_crc(bytes);
  write_file(path, bytes);
  LoadedModel out;
  std::string error;
  EXPECT_FALSE(load_model(path, out, &error));
  EXPECT_NE(error.find("embed.table"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ModelV2Test, CrossVersionLoadsRejectedWithPointers) {
  // A v1 dump fed to load_model and a v2 checkpoint fed to
  // load_parameters must both fail with errors that say what to do.
  nn::Parameter a("a", 2, 2);
  randomize(a, 9);
  const std::vector<nn::Parameter*> v1params = {&a};
  const std::string v1path = temp_path("crossv1.zssm");
  ASSERT_TRUE(save_parameters(v1path, v1params));
  LoadedModel out;
  std::string error;
  EXPECT_FALSE(load_model(v1path, out, &error));
  EXPECT_NE(error.find("zss_train"), std::string::npos) << error;

  const std::string v2path = save_tiny("crossv2.zssm", tiny_spec());
  EXPECT_FALSE(load_parameters(v2path, v1params, &error));
  EXPECT_FALSE(error.empty());
  std::remove(v1path.c_str());
  std::remove(v2path.c_str());
}

TEST(ModelV2Test, SaveRefusesNonCanonicalParams) {
  const ModelSpec spec = tiny_spec();
  CanonParams params(spec);
  std::string error;
  // Wrong name.
  params.storage[1].name = "layer0.lstm.BOGUS";
  EXPECT_FALSE(
      save_model(temp_path("badname.zssm"), spec, params.ptrs, &error));
  EXPECT_NE(error.find("layer0.lstm.wx"), std::string::npos) << error;
  // Wrong count.
  CanonParams good(spec);
  std::vector<nn::Parameter*> short_list(good.ptrs.begin(),
                                         good.ptrs.end() - 1);
  EXPECT_FALSE(
      save_model(temp_path("badcount.zssm"), spec, short_list, &error));
  // Invalid spec (thresholds size != layers).
  ModelSpec bad = spec;
  bad.thresholds.pop_back();
  EXPECT_FALSE(
      save_model(temp_path("badspec.zssm"), bad, good.ptrs, &error));
}

TEST(ModelV2Test, ExpectedParametersMatchSpecShape) {
  const auto with_embed = expected_parameters(tiny_spec());
  ASSERT_EQ(with_embed.size(), 9u);  // embed + 2*3 + classifier w/b
  EXPECT_EQ(with_embed[0].name, "embed.table");
  EXPECT_EQ(with_embed[0].rows, 6);
  EXPECT_EQ(with_embed[0].cols, 3);
  EXPECT_EQ(with_embed[1].name, "layer0.lstm.wx");
  EXPECT_EQ(with_embed[1].rows, 16);  // 4 * hidden
  EXPECT_EQ(with_embed[1].cols, 3);   // embed_dim feeds layer 0
  EXPECT_EQ(with_embed[4].name, "layer1.lstm.wx");
  EXPECT_EQ(with_embed[4].cols, 4);   // hidden feeds layer 1
  EXPECT_EQ(with_embed[7].name, "classifier.w");
  EXPECT_EQ(with_embed[8].name, "classifier.b");

  ModelSpec onehot = tiny_spec();
  onehot.embed_dim = 0;
  onehot.input_dim = onehot.vocab;
  const auto no_embed = expected_parameters(onehot);
  ASSERT_EQ(no_embed.size(), 8u);
  EXPECT_EQ(no_embed[0].name, "layer0.lstm.wx");
  EXPECT_EQ(no_embed[0].cols, 6);  // one-hot vocab feeds layer 0
}

}  // namespace
}  // namespace zss::core
