#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "num/rng.h"

namespace zss::core {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void randomize(nn::Parameter& p, std::uint64_t seed) {
  num::Rng rng(seed);
  for (float& v : p.value.flat()) v = static_cast<float>(rng.normal());
}

TEST(ModelIoTest, RoundTripPreservesValues) {
  nn::Parameter a("a", 3, 4);
  nn::Parameter b("b", 1, 7);
  randomize(a, 1);
  randomize(b, 2);
  const std::vector<nn::Parameter*> params = {&a, &b};
  const std::string path = temp_path("roundtrip.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter a2("a", 3, 4);
  nn::Parameter b2("b", 1, 7);
  const std::vector<nn::Parameter*> loaded = {&a2, &b2};
  ASSERT_TRUE(load_parameters(path, loaded));
  EXPECT_EQ(a2.value, a.value);
  EXPECT_EQ(b2.value, b.value);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ShapeMismatchRejected) {
  nn::Parameter a("a", 2, 2);
  randomize(a, 3);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("shape.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter wrong("a", 2, 3);
  const std::vector<nn::Parameter*> loaded = {&wrong};
  EXPECT_FALSE(load_parameters(path, loaded));
  std::remove(path.c_str());
}

TEST(ModelIoTest, CountMismatchRejected) {
  nn::Parameter a("a", 2, 2);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("count.zssm");
  ASSERT_TRUE(save_parameters(path, params));

  nn::Parameter b("b", 2, 2);
  const std::vector<nn::Parameter*> loaded = {&a, &b};
  EXPECT_FALSE(load_parameters(path, loaded));
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileRejected) {
  nn::Parameter a("a", 1, 1);
  const std::vector<nn::Parameter*> params = {&a};
  EXPECT_FALSE(load_parameters(temp_path("does_not_exist.zssm"), params));
}

TEST(ModelIoTest, CorruptMagicRejected) {
  const std::string path = temp_path("corrupt.zssm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE", f);
  std::fclose(f);
  nn::Parameter a("a", 1, 1);
  const std::vector<nn::Parameter*> params = {&a};
  EXPECT_FALSE(load_parameters(path, params));
  std::remove(path.c_str());
}

TEST(ModelIoTest, TruncatedFileRejected) {
  nn::Parameter a("a", 8, 8);
  randomize(a, 4);
  const std::vector<nn::Parameter*> params = {&a};
  const std::string path = temp_path("trunc.zssm");
  ASSERT_TRUE(save_parameters(path, params));
  // Truncate the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), 40), 0);
  EXPECT_FALSE(load_parameters(path, params));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zss::core
