#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/stacked_engine.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"

// The stacked engine's contract: one L-layer step is bit-for-bit L
// independent single-layer SparseLstmEngine steps chained through the
// dense-h tap — the trainer's wiring (core/stacked_lstm.cc: recurrence
// consumes the pruned stored state, the NEXT layer consumes the dense
// h). The oracle here builds that chain by hand from separate
// single-layer engines and demands bitwise equality on every stored
// state and on the dense top tap, across batch sizes, step counts,
// fp32 and int8, and (via the CI backend sweep) every kernel backend.
namespace zss::core {
namespace {

constexpr num::Index kDx = 7;
constexpr num::Index kDh = 24;

class StackedEngineTest : public ::testing::TestWithParam<num::Index> {
 protected:
  StackedEngineTest() : rng_(314159) {}

  /// L cells (layer 0: dx -> dh, deeper: dh -> dh) + per-layer pruners
  /// with distinct thresholds, so a layer-order bug cannot cancel out.
  void build(num::Index layers, QuantConfig quant = {}) {
    cells_.clear();
    pruners_.clear();
    cell_ptrs_.clear();
    pruner_ptrs_.clear();
    for (num::Index l = 0; l < layers; ++l) {
      cells_.emplace_back(l == 0 ? kDx : kDh, kDh, rng_);
      pruners_.emplace_back(
          PrunerConfig::fixed(0.04f + 0.03f * static_cast<float>(l)));
    }
    for (const auto& c : cells_) cell_ptrs_.push_back(&c);
    for (const auto& p : pruners_) pruner_ptrs_.push_back(&p);
    quant_ = quant;
  }

  num::Matrix random_input(num::Index batch) {
    num::Matrix x(batch, kDx);
    for (num::Index r = 0; r < batch; ++r) {
      for (num::Index c = 0; c < kDx; ++c) {
        x(r, c) = static_cast<float>(rng_.normal()) * 0.5f;
      }
    }
    return x;
  }

  /// Runs `steps` stacked steps and, in lockstep, the hand-built chain
  /// of single-layer engines; asserts bit equality after every step.
  void check_against_chain(num::Index layers, num::Index batch,
                           num::Index steps) {
    StackedEngine stacked(cell_ptrs_, pruner_ptrs_, {}, quant_);
    stacked.reserve(batch);
    std::deque<SparseLstmEngine> chain;
    for (num::Index l = 0; l < layers; ++l) {
      chain.emplace_back(*cell_ptrs_[static_cast<std::size_t>(l)],
                         *pruner_ptrs_[static_cast<std::size_t>(l)],
                         sparse::EncoderConfig{}, quant_);
      chain.back().reserve(batch);
    }

    std::vector<num::Matrix> h_s(static_cast<std::size_t>(layers)),
        c_s(static_cast<std::size_t>(layers)),
        h_o(static_cast<std::size_t>(layers)),
        c_o(static_cast<std::size_t>(layers));
    for (num::Index l = 0; l < layers; ++l) {
      h_s[static_cast<std::size_t>(l)].resize(batch, kDh, 0.0f);
      c_s[static_cast<std::size_t>(l)].resize(batch, kDh, 0.0f);
      h_o[static_cast<std::size_t>(l)].resize(batch, kDh, 0.0f);
      c_o[static_cast<std::size_t>(l)].resize(batch, kDh, 0.0f);
    }

    num::Matrix dense_s, ff_a, ff_b;
    for (num::Index t = 0; t < steps; ++t) {
      const num::Matrix x = random_input(batch);
      stacked.step(x, h_s, c_s, &dense_s);

      // Oracle: manual dense-feed through separate engines.
      const num::Matrix* input = &x;
      for (num::Index l = 0; l < layers; ++l) {
        num::Matrix& out = (l % 2 == 0) ? ff_a : ff_b;
        chain[static_cast<std::size_t>(l)].step(
            *input, h_o[static_cast<std::size_t>(l)],
            c_o[static_cast<std::size_t>(l)], &out);
        input = &out;
      }
      const num::Matrix& dense_o = (layers % 2 == 1) ? ff_a : ff_b;

      for (num::Index l = 0; l < layers; ++l) {
        EXPECT_EQ(h_s[static_cast<std::size_t>(l)],
                  h_o[static_cast<std::size_t>(l)])
            << "stored h, layer " << l << " step " << t;
        EXPECT_EQ(c_s[static_cast<std::size_t>(l)],
                  c_o[static_cast<std::size_t>(l)])
            << "stored c, layer " << l << " step " << t;
      }
      EXPECT_EQ(dense_s, dense_o) << "dense top tap, step " << t;
    }
  }

  num::Rng rng_;
  std::deque<nn::LstmCell> cells_;
  std::deque<StatePruner> pruners_;
  std::vector<const nn::LstmCell*> cell_ptrs_;
  std::vector<const StatePruner*> pruner_ptrs_;
  QuantConfig quant_;
};

TEST_P(StackedEngineTest, MatchesSingleLayerChainBitwiseFp32) {
  const num::Index batch = GetParam();
  for (const num::Index layers : {1, 2, 3}) {
    build(layers);
    check_against_chain(layers, batch, /*steps=*/12);
  }
}

TEST_P(StackedEngineTest, MatchesSingleLayerChainBitwiseInt8) {
  const num::Index batch = GetParam();
  for (const num::Index layers : {1, 2, 3}) {
    build(layers, QuantConfig::int8());
    check_against_chain(layers, batch, /*steps=*/12);
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, StackedEngineTest,
                         ::testing::Values<num::Index>(1, 2, 8));

TEST(StackedEngineContract, StepDenseMatchesStepBitwise) {
  num::Rng rng(777);
  std::deque<nn::LstmCell> cells;
  cells.emplace_back(kDx, kDh, rng);
  cells.emplace_back(kDh, kDh, rng);
  std::deque<StatePruner> pruners;
  pruners.emplace_back(PrunerConfig::fixed(0.05f));
  pruners.emplace_back(PrunerConfig::fixed(0.08f));
  std::vector<const nn::LstmCell*> cp{&cells[0], &cells[1]};
  std::vector<const StatePruner*> pp{&pruners[0], &pruners[1]};
  StackedEngine sparse_e(cp, pp), dense_e(cp, pp);

  std::vector<num::Matrix> hs(2), cs(2), hd(2), cd(2);
  for (int l = 0; l < 2; ++l) {
    hs[l].resize(2, kDh, 0.0f);
    cs[l].resize(2, kDh, 0.0f);
    hd[l].resize(2, kDh, 0.0f);
    cd[l].resize(2, kDh, 0.0f);
  }
  num::Matrix x(2, kDx), top_s, top_d;
  for (int t = 0; t < 8; ++t) {
    for (num::Index r = 0; r < 2; ++r) {
      for (num::Index c = 0; c < kDx; ++c) {
        x(r, c) = static_cast<float>(rng.normal());
      }
    }
    sparse_e.step(x, hs, cs, &top_s);
    dense_e.step_dense(x, hd, cd, &top_d);
    for (int l = 0; l < 2; ++l) {
      EXPECT_EQ(hs[l], hd[l]) << "layer " << l;
      EXPECT_EQ(cs[l], cd[l]) << "layer " << l;
    }
    EXPECT_EQ(top_s, top_d);
  }
}

TEST(StackedEngineContract, StatsSumLayersAndCountStackedSteps) {
  num::Rng rng(31);
  std::deque<nn::LstmCell> cells;
  cells.emplace_back(kDx, kDh, rng);
  cells.emplace_back(kDh, kDh, rng);
  std::deque<StatePruner> pruners;
  pruners.emplace_back(PrunerConfig::fixed(0.05f));
  pruners.emplace_back(PrunerConfig::fixed(0.05f));
  std::vector<const nn::LstmCell*> cp{&cells[0], &cells[1]};
  std::vector<const StatePruner*> pp{&pruners[0], &pruners[1]};
  StackedEngine engine(cp, pp);

  std::vector<num::Matrix> h(2), c(2);
  for (int l = 0; l < 2; ++l) {
    h[l].resize(1, kDh, 0.0f);
    c[l].resize(1, kDh, 0.0f);
  }
  num::Matrix x(1, kDx, 0.0f);
  x(0, 0) = 1.0f;
  for (int t = 0; t < 5; ++t) engine.step(x, h, c);

  const InferenceStats s = engine.stats();
  // One stacked step counts once, but positions accumulate per layer.
  EXPECT_EQ(s.steps, 5);
  EXPECT_EQ(s.positions, 2 * 5 * kDh);
  EXPECT_EQ(engine.layer_engine(0).stats().steps, 5);
  EXPECT_EQ(engine.layer_engine(1).stats().steps, 5);

  engine.reset_stats();
  EXPECT_EQ(engine.stats().steps, 0);
  EXPECT_EQ(engine.stats().positions, 0);
}

TEST(StackedEngineContract, NoAllocationsAfterReserve) {
  num::Rng rng(47);
  std::deque<nn::LstmCell> cells;
  cells.emplace_back(kDx, kDh, rng);
  cells.emplace_back(kDh, kDh, rng);
  cells.emplace_back(kDh, kDh, rng);
  std::deque<StatePruner> pruners;
  for (int l = 0; l < 3; ++l) pruners.emplace_back(PrunerConfig::fixed(0.05f));
  std::vector<const nn::LstmCell*> cp{&cells[0], &cells[1], &cells[2]};
  std::vector<const StatePruner*> pp{&pruners[0], &pruners[1], &pruners[2]};
  StackedEngine engine(cp, pp);
  engine.reserve(4);

  std::vector<num::Matrix> h(3), c(3);
  for (int l = 0; l < 3; ++l) {
    h[l].resize(4, kDh, 0.0f);
    c[l].resize(4, kDh, 0.0f);
  }
  num::Matrix x(4, kDx, 0.0f), top;
  engine.step(x, h, c, &top);  // warm-up settles lazy LUT/scratch
  const auto warm = engine.workspace().allocation_count();
  for (int t = 0; t < 10; ++t) engine.step(x, h, c, &top);
  EXPECT_EQ(engine.workspace().allocation_count(), warm)
      << "steady-state stacked steps must not allocate";
}

}  // namespace
}  // namespace zss::core
