#include "core/sweet_spot.h"

#include <gtest/gtest.h>

#include <vector>

namespace zss::core {
namespace {

TEST(SweetSpotTest, EmptyInputNotFound) {
  const std::vector<SweepPoint> points;
  EXPECT_FALSE(find_sweet_spot(points).found);
}

TEST(SweetSpotTest, FlatCurvePicksHighestSparsity) {
  const std::vector<SweepPoint> points = {
      {0.0, 1.50}, {0.5, 1.50}, {0.9, 1.50}, {0.97, 1.50}};
  const auto spot = find_sweet_spot(points);
  ASSERT_TRUE(spot.found);
  EXPECT_DOUBLE_EQ(spot.sparsity, 0.97);
}

TEST(SweetSpotTest, CliffExcludesDegradedPoints) {
  // The paper's characteristic shape: flat then sharply worse.
  const std::vector<SweepPoint> points = {
      {0.0, 1.50}, {0.8, 1.49}, {0.9, 1.48}, {0.97, 1.50}, {0.99, 1.80}};
  const auto spot = find_sweet_spot(points, 0.02);
  ASSERT_TRUE(spot.found);
  EXPECT_DOUBLE_EQ(spot.sparsity, 0.97);
}

TEST(SweetSpotTest, RegularizationBumpStillQualifies) {
  // Pruned points better than dense (the paper observes this) qualify.
  const std::vector<SweepPoint> points = {{0.0, 2.0}, {0.9, 1.9}};
  const auto spot = find_sweet_spot(points, 0.0);
  ASSERT_TRUE(spot.found);
  EXPECT_DOUBLE_EQ(spot.sparsity, 0.9);
  EXPECT_DOUBLE_EQ(spot.metric, 1.9);
}

TEST(SweetSpotTest, ToleranceWidensBudget) {
  const std::vector<SweepPoint> points = {{0.0, 1.0}, {0.95, 1.05}};
  EXPECT_DOUBLE_EQ(find_sweet_spot(points, 0.0).sparsity, 0.0);
  EXPECT_DOUBLE_EQ(find_sweet_spot(points, 0.10).sparsity, 0.95);
}

TEST(SweetSpotTest, BaselineIsLowestSparsityPoint) {
  // Order in the vector must not matter.
  const std::vector<SweepPoint> points = {
      {0.9, 1.2}, {0.0, 1.0}, {0.5, 1.01}};
  const auto spot = find_sweet_spot(points, 0.02);
  ASSERT_TRUE(spot.found);
  EXPECT_DOUBLE_EQ(spot.sparsity, 0.5);
}

TEST(SweetSpotTest, DenseOnlyReturnsDense) {
  const std::vector<SweepPoint> points = {{0.0, 3.3}};
  const auto spot = find_sweet_spot(points);
  ASSERT_TRUE(spot.found);
  EXPECT_DOUBLE_EQ(spot.sparsity, 0.0);
}

TEST(SweetSpotDeathTest, NegativeToleranceAborts) {
  const std::vector<SweepPoint> points = {{0.0, 1.0}};
  EXPECT_DEATH((void)find_sweet_spot(points, -0.1), "precondition");
}

}  // namespace
}  // namespace zss::core
