#include "core/stacked_lstm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/char_corpus.h"
#include "nn/optimizer.h"

namespace zss::core {
namespace {

using num::Index;

data::CharCorpus tiny_corpus() {
  data::CharCorpusConfig cfg;
  cfg.train_chars = 12000;
  cfg.valid_chars = 1500;
  cfg.test_chars = 1500;
  return data::CharCorpus::generate(cfg);
}

StackedLmConfig two_layer_config() {
  StackedLmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.layers = 2;
  cfg.hidden = 24;
  return cfg;
}

TEST(StackedLstmTest, ParameterCountScalesWithLayers) {
  auto cfg = two_layer_config();
  StackedPrunedLstmLm two(cfg);
  cfg.layers = 3;
  StackedPrunedLstmLm three(cfg);
  // Each extra layer adds 3 parameters (wx, wh, b).
  EXPECT_EQ(two.parameters().size() + 3, three.parameters().size());
}

TEST(StackedLstmTest, InitialLossNearUniform) {
  const auto corpus = tiny_corpus();
  StackedPrunedLstmLm model(two_layer_config());
  const auto eval = model.evaluate(corpus.test(), 4, 16);
  EXPECT_NEAR(eval.mean_nll, std::log(50.0), 0.7);
  ASSERT_EQ(eval.layer_sparsity.size(), 2u);
}

TEST(StackedLstmTest, TrainingReducesLoss) {
  const auto corpus = tiny_corpus();
  StackedPrunedLstmLm model(two_layer_config());
  nn::Adam adam(2e-3f);
  const auto before = model.evaluate(corpus.valid(), 4, 16);
  data::LmBatcher batcher(corpus.train(), 8, 20);
  for (int e = 0; e < 2; ++e) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const auto after = model.evaluate(corpus.valid(), 4, 16);
  EXPECT_LT(after.mean_nll, before.mean_nll - 0.2);
}

TEST(StackedLstmTest, PrunedTrainingTracksPerLayerSparsity) {
  const auto corpus = tiny_corpus();
  auto cfg = two_layer_config();
  cfg.pruner = PrunerConfig::target(0.7);
  StackedPrunedLstmLm model(cfg);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 20);
  for (Index w = 0; w < 25; ++w) {
    (void)model.train_window(batcher.window(w), adam, 5.0f);
  }
  const auto eval = model.evaluate(corpus.valid(), 4, 16);
  ASSERT_EQ(eval.layer_sparsity.size(), 2u);
  EXPECT_NEAR(eval.layer_sparsity[0], 0.7, 0.05);
  EXPECT_NEAR(eval.layer_sparsity[1], 0.7, 0.05);
}

TEST(StackedLstmTest, InterLayerDropoutTrains) {
  const auto corpus = tiny_corpus();
  auto cfg = two_layer_config();
  cfg.inter_layer_dropout = 0.3;
  StackedPrunedLstmLm model(cfg);
  nn::Adam adam(2e-3f);
  const auto before = model.evaluate(corpus.valid(), 4, 16);
  data::LmBatcher batcher(corpus.train(), 8, 20);
  for (Index w = 0; w < batcher.num_windows(); ++w) {
    (void)model.train_window(batcher.window(w), adam, 5.0f);
  }
  const auto after = model.evaluate(corpus.valid(), 4, 16);
  EXPECT_LT(after.mean_nll, before.mean_nll);
}

TEST(StackedLstmTest, SingleLayerBehavesLikeBaseModelShape) {
  auto cfg = two_layer_config();
  cfg.layers = 1;
  StackedPrunedLstmLm model(cfg);
  EXPECT_EQ(model.parameters().size(), 5u);  // wx, wh, b, classifier W+b
  const auto corpus = tiny_corpus();
  const auto eval = model.evaluate(corpus.test(), 2, 8);
  EXPECT_GT(eval.bpc, 0.0);
}

TEST(StackedLstmTest, CollectStatesPerLayerMeters) {
  const auto corpus = tiny_corpus();
  auto cfg = two_layer_config();
  cfg.pruner = PrunerConfig::target(0.8);
  StackedPrunedLstmLm model(cfg);
  std::vector<sparse::SparsityMeter> meters(2);
  model.collect_states(corpus.test(), 4, 40, meters);
  for (const auto& meter : meters) {
    EXPECT_EQ(meter.timesteps(), 40);
    EXPECT_NEAR(meter.mean_element_sparsity(), 0.8, 0.06);
  }
}

TEST(StackedLstmDeathTest, BadLayerCountAborts) {
  auto cfg = two_layer_config();
  cfg.layers = 0;
  EXPECT_DEATH(StackedPrunedLstmLm{cfg}, "precondition");
  cfg.layers = 20;
  EXPECT_DEATH(StackedPrunedLstmLm{cfg}, "precondition");
}

}  // namespace
}  // namespace zss::core
