#include "core/classifier_model.h"

#include <gtest/gtest.h>

#include "data/glyph_images.h"

namespace zss::core {
namespace {

using num::Index;

data::GlyphImages easy_images() {
  data::GlyphConfig cfg;
  cfg.side = 10;
  cfg.train_count = 300;
  cfg.test_count = 100;
  cfg.noise_stddev = 0.02;
  cfg.jitter_fraction = 0.05;
  return data::GlyphImages::generate(cfg);
}

ClassifierConfig small_config() {
  ClassifierConfig cfg;
  cfg.hidden = 24;
  return cfg;
}

TEST(ClassifierTest, UntrainedIsAtChance) {
  const auto data = easy_images();
  PrunedLstmClassifier model(small_config());
  const auto eval = model.evaluate(data.test_images(), data.test_labels());
  // 10 classes: chance is 90% error. Allow generous slack.
  EXPECT_GT(eval.error_rate_percent, 70.0);
}

TEST(ClassifierTest, TrainingImprovesAccuracy) {
  const auto data = easy_images();
  PrunedLstmClassifier model(small_config());
  nn::Adam adam(3e-3f);
  data::ImageBatcher batcher(data.train_images(), data.train_labels(), 25);
  num::Rng rng(1);
  double nll = 0.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    batcher.shuffle(rng);
    for (Index b = 0; b < batcher.num_batches(); ++b) {
      nll = model.train_batch(batcher.batch(b), adam, 5.0f);
    }
  }
  (void)nll;
  const auto eval = model.evaluate(data.test_images(), data.test_labels());
  EXPECT_LT(eval.error_rate_percent, 55.0);  // far better than 90% chance
}

TEST(ClassifierTest, PrunedEvaluationReportsSparsity) {
  const auto data = easy_images();
  auto cfg = small_config();
  cfg.pruner = PrunerConfig::target(0.8);
  PrunedLstmClassifier model(cfg);
  const auto eval = model.evaluate(data.test_images(), data.test_labels());
  EXPECT_NEAR(eval.state_sparsity, 0.8, 0.05);
}

TEST(ClassifierTest, CollectStatesShapes) {
  const auto data = easy_images();
  auto cfg = small_config();
  cfg.pruner = PrunerConfig::target(0.7);
  PrunedLstmClassifier model(cfg);
  sparse::SparsityMeter meter;
  std::vector<num::Matrix> states;
  num::Matrix eight_rows(8, data.pixels());
  for (Index i = 0; i < 8; ++i) {
    auto dst = eight_rows.row(i);
    auto src = data.test_images().row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  model.collect_states(eight_rows, meter, &states);
  EXPECT_EQ(meter.timesteps(), data.pixels());
  EXPECT_EQ(states.size(), static_cast<std::size_t>(data.pixels()));
  EXPECT_EQ(states[0].rows(), 8);
  EXPECT_EQ(states[0].cols(), cfg.hidden);
}

TEST(ClassifierTest, SetPrunerChangesSparsity) {
  const auto data = easy_images();
  PrunedLstmClassifier model(small_config());
  auto eval = model.evaluate(data.test_images(), data.test_labels());
  EXPECT_LT(eval.state_sparsity, 0.1);
  model.set_pruner(PrunerConfig::target(0.9));
  eval = model.evaluate(data.test_images(), data.test_labels());
  EXPECT_NEAR(eval.state_sparsity, 0.9, 0.05);
}

TEST(ClassifierTest, DeterministicConstruction) {
  const auto data = easy_images();
  PrunedLstmClassifier a(small_config());
  PrunedLstmClassifier b(small_config());
  const auto ea = a.evaluate(data.test_images(), data.test_labels());
  const auto eb = b.evaluate(data.test_images(), data.test_labels());
  EXPECT_DOUBLE_EQ(ea.mean_nll, eb.mean_nll);
}

}  // namespace
}  // namespace zss::core
