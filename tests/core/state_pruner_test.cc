#include "core/state_pruner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/rng.h"
#include "num/stats.h"

namespace zss::core {
namespace {

using num::Index;
using num::Matrix;

Matrix random_state(Index rows, Index cols, std::uint64_t seed) {
  num::Rng rng(seed);
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal(0.0, 0.3));
  return m;
}

TEST(StatePrunerTest, NoneModeIsIdentity) {
  StatePruner pruner(PrunerConfig::none());
  EXPECT_FALSE(pruner.enabled());
  const Matrix h = random_state(2, 8, 1);
  Matrix out;
  EXPECT_DOUBLE_EQ(pruner.prune(h, out), 0.0);
  EXPECT_EQ(out, h);
}

TEST(StatePrunerTest, FixedThresholdZeroesSmallMagnitudes) {
  StatePruner pruner(PrunerConfig::fixed(0.5f));
  Matrix h(1, 4);
  h(0, 0) = 0.4f;
  h(0, 1) = -0.6f;
  h(0, 2) = 0.5f;   // |h| == T is KEPT (Eq. 5: pruned only when |h| < T)
  h(0, 3) = -0.1f;
  Matrix out;
  const double sparsity = pruner.prune(h, out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 1), -0.6f);
  EXPECT_FLOAT_EQ(out(0, 2), 0.5f);
  EXPECT_FLOAT_EQ(out(0, 3), 0.0f);
  EXPECT_DOUBLE_EQ(sparsity, 0.5);
}

TEST(StatePrunerTest, InplaceMatchesCopyingVariant) {
  StatePruner pruner(PrunerConfig::fixed(0.2f));
  Matrix h = random_state(3, 16, 2);
  Matrix copy_result;
  pruner.prune(h, copy_result);
  Matrix inplace = h;
  pruner.prune_inplace(inplace);
  EXPECT_EQ(inplace, copy_result);
}

TEST(StatePrunerTest, ZeroThresholdKeepsEverything) {
  StatePruner pruner(PrunerConfig::fixed(0.0f));
  const Matrix h = random_state(1, 32, 3);
  Matrix out;
  EXPECT_DOUBLE_EQ(pruner.prune(h, out), 0.0);
  EXPECT_EQ(out, h);
}

TEST(StatePrunerTest, TargetSparsityZeroIsIdentity) {
  StatePruner pruner(PrunerConfig::target(0.0));
  const Matrix h = random_state(1, 32, 4);
  Matrix out;
  EXPECT_DOUBLE_EQ(pruner.prune(h, out), 0.0);
  EXPECT_EQ(out, h);
}

TEST(StatePrunerTest, TargetSparsityOneZeroesEverything) {
  StatePruner pruner(PrunerConfig::target(1.0));
  const Matrix h = random_state(1, 32, 5);
  Matrix out;
  const double s = pruner.prune(h, out);
  EXPECT_GT(s, 0.96);  // the max-|h| element sits exactly at the quantile
  for (Index j = 0; j < 32; ++j) {
    if (out(0, j) != 0.0f) {
      // At most the single largest-magnitude element may survive.
      EXPECT_FLOAT_EQ(std::fabs(out(0, j)),
                      num::quantile_abs(h.flat(), 1.0));
    }
  }
}

TEST(StatePrunerTest, SurvivorsKeepTheirValues) {
  StatePruner pruner(PrunerConfig::target(0.5));
  const Matrix h = random_state(2, 64, 6);
  Matrix out;
  pruner.prune(h, out);
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 64; ++c) {
      EXPECT_TRUE(out(r, c) == 0.0f || out(r, c) == h(r, c));
    }
  }
}

TEST(StatePrunerTest, EffectiveThresholdMatchesMode) {
  const Matrix h = random_state(1, 100, 7);
  StatePruner fixed(PrunerConfig::fixed(0.123f));
  EXPECT_FLOAT_EQ(fixed.effective_threshold(h), 0.123f);
  StatePruner none(PrunerConfig::none());
  EXPECT_FLOAT_EQ(none.effective_threshold(h), 0.0f);
  StatePruner target(PrunerConfig::target(0.9));
  const float t = target.effective_threshold(h);
  EXPECT_NEAR(num::below_threshold_fraction(h.flat(), t), 0.9, 0.02);
}

// Sweep: requested sparsity is achieved within tolerance for normal data.
class TargetSparsityTest : public ::testing::TestWithParam<double> {};

TEST_P(TargetSparsityTest, AchievesRequestedDegree) {
  const double target = GetParam();
  StatePruner pruner(PrunerConfig::target(target));
  const Matrix h = random_state(8, 512, 8);
  Matrix out;
  const double achieved = pruner.prune(h, out);
  EXPECT_NEAR(achieved, target, 0.01);
  EXPECT_NEAR(num::zero_fraction(out.flat()), target, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Degrees, TargetSparsityTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8, 0.9,
                                           0.95, 0.97, 0.99));

TEST(StatePrunerDeathTest, NegativeThresholdAborts) {
  EXPECT_DEATH(StatePruner(PrunerConfig::fixed(-1.0f)), "precondition");
}

TEST(StatePrunerDeathTest, SparsityOutOfRangeAborts) {
  EXPECT_DEATH(StatePruner(PrunerConfig::target(1.5)), "precondition");
}

}  // namespace
}  // namespace zss::core
