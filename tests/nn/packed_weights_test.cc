#include "nn/packed_weights.h"

#include <gtest/gtest.h>

#include "num/rng.h"

namespace zss::nn {
namespace {

TEST(PackedLstmWeightsTest, PackTransposesBothMatricesExactly) {
  num::Rng rng(11);
  LstmCell cell(5, 7, rng);
  const auto packed = PackedLstmWeights::pack(cell);
  EXPECT_EQ(packed.dx, 5);
  EXPECT_EQ(packed.dh, 7);
  ASSERT_EQ(packed.wht.rows(), 7);
  ASSERT_EQ(packed.wht.cols(), 28);
  ASSERT_EQ(packed.wxt.rows(), 5);
  ASSERT_EQ(packed.wxt.cols(), 28);
  // Row j of the packed layout is column j of the gate-major matrix:
  // position j's f/i/o/g weights, contiguous.
  for (num::Index j = 0; j < 7; ++j) {
    for (num::Index k = 0; k < 28; ++k) {
      EXPECT_EQ(packed.wht(j, k), cell.wh().value(k, j));
    }
  }
  for (num::Index j = 0; j < 5; ++j) {
    for (num::Index k = 0; k < 28; ++k) {
      EXPECT_EQ(packed.wxt(j, k), cell.wx().value(k, j));
    }
  }
}

TEST(PackedLstmWeightsTest, BiasIsCopiedVerbatim) {
  num::Rng rng(12);
  LstmCell cell(3, 4, rng);
  const auto packed = PackedLstmWeights::pack(cell);
  const auto b = cell.bias().value.flat();
  ASSERT_EQ(packed.bias.size(), static_cast<num::Index>(b.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(packed.bias[static_cast<num::Index>(i)], b[i]);
  }
}

TEST(PackedLstmWeightsTest, PackIsASnapshotNotAView) {
  num::Rng rng(13);
  LstmCell cell(2, 3, rng);
  auto packed = PackedLstmWeights::pack(cell);
  const float before = packed.wht(0, 0);
  cell.wh().value(0, 0) = before + 42.0f;
  EXPECT_EQ(packed.wht(0, 0), before);
}

}  // namespace
}  // namespace zss::nn
