#include "nn/lstm_cell.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/kernels.h"
#include "num/rng.h"

namespace zss::nn {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

Matrix random_matrix(Index rows, Index cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  return m;
}

TEST(LstmCellTest, OutputShapesAndRanges) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  const Matrix x = random_matrix(2, 3, rng);
  const Matrix h(2, 5, 0.0f);
  const Matrix c(2, 5, 0.0f);
  const auto out = cell.forward(x, h, c, nullptr);
  EXPECT_EQ(out.h.rows(), 2);
  EXPECT_EQ(out.h.cols(), 5);
  // h = o * tanh(c) is bounded in (-1, 1).
  for (float v : out.h.flat()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(LstmCellTest, ZeroInputZeroStateGivesBoundedCell) {
  Rng rng(2);
  LstmCell cell(4, 6, rng);
  const Matrix x(1, 4, 0.0f);
  const Matrix h(1, 6, 0.0f);
  const Matrix c(1, 6, 0.0f);
  const auto out = cell.forward(x, h, c, nullptr);
  // c = i * g with i in (0,1), g in (-1,1): magnitude < 1.
  for (float v : out.c.flat()) EXPECT_LT(std::fabs(v), 1.0f);
}

TEST(LstmCellTest, ForgetGateCarriesCellState) {
  Rng rng(3);
  LstmCell cell(2, 4, rng, /*forget_bias=*/30.0f);  // f ~= 1
  // Zero the other weights' influence by zero input/hidden.
  const Matrix x(1, 2, 0.0f);
  const Matrix h(1, 4, 0.0f);
  Matrix c(1, 4);
  for (Index j = 0; j < 4; ++j) c(0, j) = 0.3f * static_cast<float>(j + 1);
  const auto out = cell.forward(x, h, c, nullptr);
  // With f ~ 1 and i*g small, c_t tracks c_{t-1} (i*g bounded by i).
  for (Index j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.c(0, j), c(0, j), 0.6f);
    EXPECT_GT(out.c(0, j), 0.0f);
  }
}

TEST(LstmCellTest, BatchRowsAreIndependent) {
  Rng rng(4);
  LstmCell cell(3, 5, rng);
  const Matrix x = random_matrix(2, 3, rng);
  const Matrix h = random_matrix(2, 5, rng, 0.5);
  const Matrix c = random_matrix(2, 5, rng, 0.5);
  const auto both = cell.forward(x, h, c, nullptr);

  // Run each row separately; results must match the batched run.
  for (Index b = 0; b < 2; ++b) {
    Matrix xb(1, 3);
    Matrix hb(1, 5);
    Matrix cb(1, 5);
    for (Index j = 0; j < 3; ++j) xb(0, j) = x(b, j);
    for (Index j = 0; j < 5; ++j) {
      hb(0, j) = h(b, j);
      cb(0, j) = c(b, j);
    }
    const auto single = cell.forward(xb, hb, cb, nullptr);
    for (Index j = 0; j < 5; ++j) {
      EXPECT_NEAR(single.h(0, j), both.h(b, j), 1e-6f);
      EXPECT_NEAR(single.c(0, j), both.c(b, j), 1e-6f);
    }
  }
}

TEST(LstmCellTest, CacheHoldsForwardActivations) {
  Rng rng(5);
  LstmCell cell(2, 3, rng);
  const Matrix x = random_matrix(1, 2, rng);
  const Matrix h = random_matrix(1, 3, rng, 0.5);
  const Matrix c = random_matrix(1, 3, rng, 0.5);
  LstmStepCache cache;
  const auto out = cell.forward(x, h, c, &cache);
  EXPECT_EQ(cache.x, x);
  EXPECT_EQ(cache.h_prev, h);
  EXPECT_EQ(cache.c_prev, c);
  EXPECT_EQ(cache.c, out.c);
  EXPECT_EQ(cache.gates.cols(), 12);
}

// Finite-difference gradient check over every parameter and input. The
// scalar loss is sum(h) + 0.5 * sum(c) so both outputs get gradient.
class LstmGradCheck : public ::testing::Test {
 protected:
  static constexpr Index kDx = 3;
  static constexpr Index kDh = 4;
  static constexpr Index kBatch = 2;

  LstmGradCheck() : rng_(99), cell_(kDx, kDh, rng_) {
    x_ = random_matrix(kBatch, kDx, rng_);
    h_ = random_matrix(kBatch, kDh, rng_, 0.5);
    c_ = random_matrix(kBatch, kDh, rng_, 0.5);
  }

  double loss() const {
    const auto out = cell_.forward(x_, h_, c_, nullptr);
    double l = 0.0;
    for (float v : out.h.flat()) l += v;
    for (float v : out.c.flat()) l += 0.5 * v;
    return l;
  }

  /// Analytic gradients via backward with dh = 1, dc = 0.5.
  LstmStepGrads analytic() {
    for (auto* p : cell_.parameters()) p->zero_grad();
    LstmStepCache cache;
    (void)cell_.forward(x_, h_, c_, &cache);
    const Matrix dh(kBatch, kDh, 1.0f);
    const Matrix dc(kBatch, kDh, 0.5f);
    return cell_.backward(cache, dh, dc);
  }

  void check_matrix_grad(Matrix& target, const Matrix& grad,
                         double tol = 2e-2) {
    const float eps = 1e-3f;
    for (Index r = 0; r < target.rows(); ++r) {
      for (Index col = 0; col < target.cols(); ++col) {
        const float saved = target(r, col);
        target(r, col) = saved + eps;
        const double up = loss();
        target(r, col) = saved - eps;
        const double down = loss();
        target(r, col) = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(grad(r, col), numeric, tol)
            << "element (" << r << ", " << col << ")";
      }
    }
  }

  Rng rng_;
  LstmCell cell_;
  Matrix x_, h_, c_;
};

TEST_F(LstmGradCheck, InputGradient) {
  auto grads = analytic();
  check_matrix_grad(x_, grads.dx);
}

TEST_F(LstmGradCheck, HiddenGradient) {
  auto grads = analytic();
  check_matrix_grad(h_, grads.dh_prev);
}

TEST_F(LstmGradCheck, CellGradient) {
  auto grads = analytic();
  check_matrix_grad(c_, grads.dc_prev);
}

TEST_F(LstmGradCheck, WxGradient) {
  (void)analytic();
  check_matrix_grad(cell_.wx().value, cell_.wx().grad);
}

TEST_F(LstmGradCheck, WhGradient) {
  (void)analytic();
  check_matrix_grad(cell_.wh().value, cell_.wh().grad);
}

TEST_F(LstmGradCheck, BiasGradient) {
  (void)analytic();
  check_matrix_grad(cell_.bias().value, cell_.bias().grad);
}

TEST(LstmCellTest, BackwardAccumulatesAcrossCalls) {
  Rng rng(7);
  LstmCell cell(2, 3, rng);
  const Matrix x = random_matrix(1, 2, rng);
  const Matrix h(1, 3, 0.1f);
  const Matrix c(1, 3, 0.1f);
  LstmStepCache cache;
  (void)cell.forward(x, h, c, &cache);
  const Matrix dh(1, 3, 1.0f);
  const Matrix dc(1, 3, 0.0f);
  for (auto* p : cell.parameters()) p->zero_grad();
  (void)cell.backward(cache, dh, dc);
  const Matrix once = cell.wh().grad;
  (void)cell.backward(cache, dh, dc);
  for (Index i = 0; i < once.rows(); ++i) {
    for (Index j = 0; j < once.cols(); ++j) {
      EXPECT_NEAR(cell.wh().grad(i, j), 2.0f * once(i, j), 1e-6f);
    }
  }
}

TEST(LstmCellTest, ParametersListIsStable) {
  Rng rng(8);
  LstmCell cell(2, 3, rng);
  const auto params = cell.parameters();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0]->name, "lstm.wx");
  EXPECT_EQ(params[1]->name, "lstm.wh");
  EXPECT_EQ(params[2]->name, "lstm.b");
}

TEST(LstmCellDeathTest, ShapeMismatchAborts) {
  Rng rng(9);
  LstmCell cell(2, 3, rng);
  const Matrix x(1, 5);  // wrong input dim
  const Matrix h(1, 3, 0.0f);
  const Matrix c(1, 3, 0.0f);
  EXPECT_DEATH((void)cell.forward(x, h, c, nullptr), "precondition");
}

}  // namespace
}  // namespace zss::nn
