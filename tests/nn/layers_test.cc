#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "num/rng.h"

namespace zss::nn {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

// ---------- Linear ----------

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().value(0, 0) = 1.0f;
  layer.weight().value(0, 1) = 2.0f;
  layer.weight().value(1, 0) = -1.0f;
  layer.weight().value(1, 1) = 0.0f;
  layer.weight().value(2, 0) = 0.5f;
  layer.weight().value(2, 1) = 0.5f;
  layer.bias().value.fill(0.0f);
  layer.bias().value(0, 2) = 1.0f;

  Matrix x(1, 2);
  x(0, 0) = 2.0f;
  x(0, 1) = 4.0f;
  Matrix y;
  layer.forward(x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(y(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 4.0f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Matrix x(2, 3);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1, 1));

  auto loss = [&]() {
    Matrix y;
    layer.forward(x, y);
    double l = 0.0;
    for (float v : y.flat()) l += v * v;  // quadratic so gradient varies
    return l;
  };

  // Analytic: dL/dy = 2y.
  Matrix y;
  layer.forward(x, y);
  Matrix dy(y.rows(), y.cols());
  for (Index i = 0; i < y.size(); ++i) {
    dy.flat()[static_cast<std::size_t>(i)] =
        2.0f * y.flat()[static_cast<std::size_t>(i)];
  }
  for (auto* p : layer.parameters()) p->zero_grad();
  Matrix dx;
  layer.backward(x, dy, dx);

  const float eps = 1e-3f;
  auto check = [&](Matrix& target, const Matrix& grad) {
    for (Index r = 0; r < target.rows(); ++r) {
      for (Index c = 0; c < target.cols(); ++c) {
        const float saved = target(r, c);
        target(r, c) = saved + eps;
        const double up = loss();
        target(r, c) = saved - eps;
        const double down = loss();
        target(r, c) = saved;
        EXPECT_NEAR(grad(r, c), (up - down) / (2.0 * eps), 5e-2);
      }
    }
  };
  check(layer.weight().value, layer.weight().grad);
  check(layer.bias().value, layer.bias().grad);
  check(x, dx);
}

TEST(LinearDeathTest, WrongInputDimAborts) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Matrix x(1, 4);
  Matrix y;
  EXPECT_DEATH(layer.forward(x, y), "precondition");
}

// ---------- Embedding ----------

TEST(EmbeddingTest, GatherRows) {
  Rng rng(4);
  Embedding emb(5, 3, rng);
  const std::vector<Index> ids = {2, 2, 4};
  Matrix out;
  emb.forward(ids, out);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 3);
  for (Index j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(out(0, j), emb.table().value(2, j));
    EXPECT_FLOAT_EQ(out(1, j), emb.table().value(2, j));
    EXPECT_FLOAT_EQ(out(2, j), emb.table().value(4, j));
  }
}

TEST(EmbeddingTest, BackwardScatterAddsDuplicates) {
  Rng rng(5);
  Embedding emb(4, 2, rng);
  emb.table().zero_grad();
  const std::vector<Index> ids = {1, 1, 3};
  Matrix dout(3, 2, 1.0f);
  emb.backward(ids, dout);
  EXPECT_FLOAT_EQ(emb.table().grad(1, 0), 2.0f);  // two hits on row 1
  EXPECT_FLOAT_EQ(emb.table().grad(3, 0), 1.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(0, 0), 0.0f);
}

TEST(EmbeddingDeathTest, IdOutOfRangeAborts) {
  Rng rng(6);
  Embedding emb(4, 2, rng);
  const std::vector<Index> ids = {4};
  Matrix out;
  EXPECT_DEATH(emb.forward(ids, out), "precondition");
}

// ---------- Dropout ----------

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout drop(0.5);
  Rng rng(7);
  Matrix x(4, 4, 2.0f);
  const Matrix original = x;
  drop.forward(x, /*training=*/false, rng);
  EXPECT_EQ(x, original);
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Dropout drop(0.0);
  Rng rng(8);
  Matrix x(4, 4, 2.0f);
  const Matrix original = x;
  drop.forward(x, /*training=*/true, rng);
  EXPECT_EQ(x, original);
}

TEST(DropoutTest, DropFractionAndInvertedScaling) {
  Dropout drop(0.5);
  Rng rng(9);
  Matrix x(100, 100, 1.0f);
  drop.forward(x, /*training=*/true, rng);
  Index zeros = 0;
  for (float v : x.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // kept values scaled by 1/(1-p)
    }
  }
  const double frac = static_cast<double>(zeros) / 10000.0;
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(DropoutTest, BackwardAppliesSameMask) {
  Dropout drop(0.5);
  Rng rng(10);
  Matrix x(8, 8, 1.0f);
  drop.forward(x, /*training=*/true, rng);
  Matrix dx(8, 8, 1.0f);
  drop.backward(dx);
  // Gradient mask must match the forward mask exactly.
  for (Index i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(dx.flat()[static_cast<std::size_t>(i)],
                    x.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(DropoutDeathTest, FullDropRateRejected) {
  EXPECT_DEATH(Dropout(1.0), "precondition");
}

// ---------- Init ----------

TEST(InitTest, XavierBounds) {
  Rng rng(11);
  Matrix w(64, 32);
  xavier_uniform(w, 32, 64, rng);
  const float limit = std::sqrt(6.0f / (32 + 64));
  for (float v : w.flat()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(InitTest, LstmBiasForgetBlock) {
  Matrix b(1, 12);
  lstm_bias_init(b, 3, 1.0f);
  for (Index j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(b(0, j), 1.0f);
  for (Index j = 3; j < 12; ++j) EXPECT_FLOAT_EQ(b(0, j), 0.0f);
}

}  // namespace
}  // namespace zss::nn
