#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zss::nn {
namespace {

using num::Index;

TEST(ClipTest, BelowMaxIsUntouched) {
  Parameter p("p", 1, 2);
  p.grad(0, 0) = 0.3f;
  p.grad(0, 1) = 0.4f;  // norm 0.5
  std::vector<Parameter*> params = {&p};
  const float norm = clip_grad_norm(params, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.3f);
}

TEST(ClipTest, AboveMaxIsScaledToMax) {
  Parameter p("p", 1, 2);
  p.grad(0, 0) = 3.0f;
  p.grad(0, 1) = 4.0f;  // norm 5
  std::vector<Parameter*> params = {&p};
  const float norm = clip_grad_norm(params, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  const float clipped = std::sqrt(p.grad(0, 0) * p.grad(0, 0) +
                                  p.grad(0, 1) * p.grad(0, 1));
  EXPECT_NEAR(clipped, 1.0f, 1e-6f);
}

TEST(ClipTest, GlobalNormSpansParameters) {
  Parameter a("a", 1, 1);
  Parameter b("b", 1, 1);
  a.grad(0, 0) = 3.0f;
  b.grad(0, 0) = 4.0f;
  std::vector<Parameter*> params = {&a, &b};
  clip_grad_norm(params, 2.5f);  // global norm 5 -> scale 0.5
  EXPECT_NEAR(a.grad(0, 0), 1.5f, 1e-6f);
  EXPECT_NEAR(b.grad(0, 0), 2.0f, 1e-6f);
}

TEST(SgdTest, SingleStep) {
  Parameter p("p", 1, 1);
  p.value(0, 0) = 1.0f;
  p.grad(0, 0) = 0.5f;
  Sgd sgd(0.1f);
  std::vector<Parameter*> params = {&p};
  sgd.step(params);
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.95f);
}

TEST(SgdTest, DecayDividesLearningRate) {
  Sgd sgd(1.2f);
  sgd.decay(1.2f);
  EXPECT_NEAR(sgd.learning_rate(), 1.0f, 1e-6f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2.
  Parameter p("w", 1, 1);
  p.value(0, 0) = -5.0f;
  Sgd sgd(0.1f);
  std::vector<Parameter*> params = {&p};
  for (int i = 0; i < 200; ++i) {
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 3.0f);
    sgd.step(params);
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  Parameter p("w", 1, 2);
  p.value(0, 0) = 4.0f;
  p.value(0, 1) = -7.0f;
  Adam adam(0.1f);
  std::vector<Parameter*> params = {&p};
  for (int i = 0; i < 500; ++i) {
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 1.0f);
    p.grad(0, 1) = 0.02f * (p.value(0, 1) + 2.0f);  // ill-conditioned axis
    adam.step(params);
  }
  EXPECT_NEAR(p.value(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(p.value(0, 1), -2.0f, 0.2f);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter p("w", 1, 1);
  p.value(0, 0) = 0.0f;
  p.grad(0, 0) = 123.0f;
  Adam adam(0.01f);
  std::vector<Parameter*> params = {&p};
  adam.step(params);
  EXPECT_NEAR(p.value(0, 0), -0.01f, 1e-4f);
}

TEST(AdamTest, SetLearningRate) {
  Adam adam(0.01f);
  adam.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.5f);
}

TEST(AdamDeathTest, ChangingParameterSetAborts) {
  Parameter a("a", 1, 1);
  Parameter b("b", 2, 2);
  Adam adam(0.01f);
  std::vector<Parameter*> first = {&a};
  adam.step(first);
  std::vector<Parameter*> second = {&a, &b};
  EXPECT_DEATH(adam.step(second), "precondition");
}

TEST(OptimizerDeathTest, BadHyperparamsAbort) {
  EXPECT_DEATH(Sgd(0.0f), "precondition");
  EXPECT_DEATH(Adam(-0.1f), "precondition");
  Parameter p("p", 1, 1);
  std::vector<Parameter*> params = {&p};
  EXPECT_DEATH(clip_grad_norm(params, 0.0f), "precondition");
}

}  // namespace
}  // namespace zss::nn
