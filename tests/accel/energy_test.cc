#include "accel/energy.h"

#include <gtest/gtest.h>

#include "accel/scheduler.h"

namespace zss::accel {
namespace {

RunTotals run_dense(const WorkloadShape& shape, num::Index steps) {
  Scheduler sched{AcceleratorConfig{}};
  RunTotals totals;
  for (num::Index t = 0; t < steps; ++t) {
    totals.add(sched.run_timestep_dense(shape), shape);
  }
  return totals;
}

TEST(EnergyTest, CalibratedConstantPowerIs83mW) {
  const AcceleratorConfig accel;
  EnergyModel model(EnergyConfig{}, accel);
  const auto totals = run_dense(WorkloadShape::ptb_char(8), 10);
  EXPECT_NEAR(model.average_power_w(totals), 0.083, 1e-9);
}

TEST(EnergyTest, PeakEfficiencyMatchesPaper) {
  // 76.8 GOPS at 83 mW = 925.3 GOPS/W (§III-C).
  const AcceleratorConfig accel;
  EnergyModel model(EnergyConfig{}, accel);
  RunTotals totals;
  totals.cycles = 1000;
  totals.equivalent_ops = accel.peak_gops() * 1e9 *
                          (1000.0 / accel.clock_hz);
  EXPECT_NEAR(model.gops_per_watt(totals), 925.3, 0.5);
}

TEST(EnergyTest, EfficiencyProportionalToGops) {
  // In constant-power mode Fig. 9 is Fig. 8 divided by 0.083.
  const AcceleratorConfig accel;
  EnergyModel model(EnergyConfig{}, accel);
  const auto totals = run_dense(WorkloadShape::ptb_word(8), 5);
  EXPECT_NEAR(model.gops_per_watt(totals), totals.gops(accel) / 0.083,
              1e-6);
}

TEST(EnergyTest, ComponentModeAccountsActivity) {
  const AcceleratorConfig accel;
  EnergyConfig ecfg;
  ecfg.mode = EnergyMode::kComponent;
  EnergyModel model(ecfg, accel);
  const auto totals = run_dense(WorkloadShape::ptb_char(8), 5);
  const auto e = model.energy(totals);
  EXPECT_GT(e.mac_j, 0.0);
  EXPECT_GT(e.sram_j, 0.0);
  EXPECT_GT(e.onchip_j, 0.0);
  EXPECT_GT(e.leakage_j, 0.0);
  EXPECT_EQ(e.dram_j, 0.0);  // chip-only by default
  EXPECT_NEAR(e.total_j(), e.mac_j + e.sram_j + e.onchip_j + e.leakage_j,
              1e-15);
}

TEST(EnergyTest, ComponentModeNearCalibratedAtSteadyState) {
  // The component constants were fitted so dense batch-8 lands near the
  // synthesis estimate; keep them within 2x to catch constant drift.
  const AcceleratorConfig accel;
  EnergyConfig ecfg;
  ecfg.mode = EnergyMode::kComponent;
  EnergyModel model(ecfg, accel);
  const auto totals = run_dense(WorkloadShape::ptb_char(8), 10);
  const double p = model.average_power_w(totals);
  EXPECT_GT(p, 0.083 / 2.0);
  EXPECT_LT(p, 0.083 * 2.0);
}

TEST(EnergyTest, DramEnergyOptIn) {
  const AcceleratorConfig accel;
  EnergyConfig ecfg;
  ecfg.mode = EnergyMode::kComponent;
  ecfg.include_dram = true;
  EnergyModel with_dram(ecfg, accel);
  ecfg.include_dram = false;
  EnergyModel without(ecfg, accel);
  const auto totals = run_dense(WorkloadShape::ptb_char(1), 3);
  EXPECT_GT(with_dram.energy(totals).total_j(),
            without.energy(totals).total_j());
}

TEST(EnergyTest, SparseRunUsesLessEnergyPerTimestep) {
  // Same work, fewer cycles -> less energy at constant power.
  const AcceleratorConfig accel;
  EnergyModel model(EnergyConfig{}, accel);
  Scheduler sched(accel);
  const auto shape = WorkloadShape::ptb_char(1);
  RunTotals dense;
  dense.add(sched.run_timestep_dense(shape), shape);
  RunTotals sparse;
  const std::vector<bool> mask(
      static_cast<std::size_t>(shape.hidden), false);
  sparse.add(sched.run_timestep(shape, mask), shape);
  EXPECT_LT(model.energy(sparse).total_j(),
            model.energy(dense).total_j() / 10.0);
}

TEST(EnergyTest, EmptyRunIsZero) {
  EnergyModel model(EnergyConfig{}, AcceleratorConfig{});
  const RunTotals totals;
  EXPECT_EQ(model.average_power_w(totals), 0.0);
  EXPECT_EQ(model.gops_per_watt(totals), 0.0);
}

TEST(EnergyDeathTest, BadConstantsAbort) {
  EnergyConfig ecfg;
  ecfg.constant_power_w = 0.0;
  EXPECT_DEATH(EnergyModel(ecfg, AcceleratorConfig{}), "precondition");
}

TEST(RunTotalsTest, ObservedSparsityAggregates) {
  Scheduler sched{AcceleratorConfig{}};
  const auto shape = WorkloadShape::ptb_char(1);
  RunTotals totals;
  totals.add(sched.run_timestep_dense(shape), shape);
  const std::vector<bool> empty_mask(
      static_cast<std::size_t>(shape.hidden), false);
  totals.add(sched.run_timestep(shape, empty_mask), shape);
  EXPECT_DOUBLE_EQ(totals.observed_sparsity(), 0.5);
  EXPECT_EQ(totals.timesteps, 2);
}

}  // namespace
}  // namespace zss::accel
