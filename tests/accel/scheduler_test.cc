#include "accel/scheduler.h"

#include <gtest/gtest.h>

#include "accel/synthetic.h"
#include "num/rng.h"

namespace zss::accel {
namespace {

using num::Index;

TEST(SchedulerTest, MatvecSkipsOnlyAllZeroPositions) {
  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  // 4 positions, batch 2: position 0 fully zero, 1 mixed, 2 dense, 3 zero.
  const std::vector<bool> mask = {false, false, true, false,
                                  true,  true,  false, false};
  const auto stats = sched.matvec(/*rows=*/4000, mask, /*batch=*/2);
  EXPECT_EQ(stats.positions_total, 4);
  EXPECT_EQ(stats.positions_kept, 2);
  EXPECT_EQ(stats.cycles, 2 * 167);
  EXPECT_EQ(stats.weights_streamed, 2 * 4000);
  EXPECT_EQ(stats.macs_issued, 2 * 4000 * 2);     // both lanes always MAC
  EXPECT_EQ(stats.macs_effectual, 4000 * 3);      // 1 + 2 non-zero lanes
}

TEST(SchedulerTest, MatvecAllZeroCostsNothing) {
  Scheduler sched{AcceleratorConfig{}};
  const std::vector<bool> mask(100, false);
  const auto stats = sched.matvec(400, mask, 1);
  EXPECT_EQ(stats.cycles, 0);
  EXPECT_EQ(stats.macs_issued, 0);
  EXPECT_EQ(stats.weights_streamed, 0);
}

TEST(SchedulerTest, TimestepTotalsMatchTimingModel) {
  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  TimingModel model(cfg);
  num::Rng rng(1);
  for (const auto& shape :
       {WorkloadShape::ptb_char(8), WorkloadShape::ptb_word(4),
        WorkloadShape::mnist(16)}) {
    const auto mask = mask_from_intersected_sparsity(shape, 0.7, rng);
    const auto sched_stats = sched.run_timestep(shape, mask);
    // Count kept positions exactly as the scheduler saw them.
    const auto kept = sched_stats.positions_kept;
    const auto model_cycles = model.timestep(shape, kept);
    EXPECT_EQ(sched_stats.cycles.total(), model_cycles.total())
        << "hidden=" << shape.hidden << " batch=" << shape.batch;
    EXPECT_EQ(sched_stats.cycles.matvec_state, model_cycles.matvec_state);
    EXPECT_EQ(sched_stats.cycles.elementwise, model_cycles.elementwise);
  }
}

TEST(SchedulerTest, DenseTimestepMatchesTimingModelDense) {
  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  TimingModel model(cfg);
  for (const auto& shape :
       {WorkloadShape::ptb_char(1), WorkloadShape::ptb_word(16)}) {
    EXPECT_EQ(sched.run_timestep_dense(shape).cycles.total(),
              model.timestep_dense(shape).total());
  }
}

TEST(SchedulerTest, UtilizationLowAtBatch1HighAtBatch8) {
  Scheduler sched{AcceleratorConfig{}};
  const auto dense1 = sched.run_timestep_dense(WorkloadShape::ptb_char(1));
  const auto dense8 = sched.run_timestep_dense(WorkloadShape::ptb_char(8));
  // Batch 1 is DRAM-bound: 24 of 192 PEs busy -> 12.5% utilization.
  EXPECT_NEAR(dense1.pe_utilization(), 0.125, 0.01);
  EXPECT_GT(dense8.pe_utilization(), 0.95);
}

TEST(SchedulerTest, WeightTrafficShrinksWithSkipping) {
  Scheduler sched{AcceleratorConfig{}};
  num::Rng rng(2);
  const auto shape = WorkloadShape::ptb_char(1);
  const auto mask = mask_from_intersected_sparsity(shape, 0.97, rng);
  const auto sparse = sched.run_timestep(shape, mask);
  const auto dense = sched.run_timestep_dense(shape);
  EXPECT_LT(sparse.weights_streamed, dense.weights_streamed / 20);
}

TEST(SchedulerTest, DenseInputPositionsNeverSkipped) {
  Scheduler sched{AcceleratorConfig{}};
  const auto shape = WorkloadShape::ptb_word(1);
  // Fully-zero state: only the input matvec and overheads remain.
  const std::vector<bool> mask(static_cast<std::size_t>(shape.hidden),
                               false);
  const auto stats = sched.run_timestep(shape, mask);
  EXPECT_EQ(stats.cycles.matvec_state, 0);
  EXPECT_EQ(stats.cycles.matvec_input, 300 * 50);
}

TEST(SchedulerTest, MatvecCyclesPerPositionMatchesTimingModel) {
  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  TimingModel model(cfg);
  for (Index batch : {1, 2, 4, 8, 12, 16}) {
    const auto shape = WorkloadShape::ptb_char(batch);
    EXPECT_EQ(sched.cycles_per_position(4 * shape.hidden, batch),
              model.cycles_per_position(shape));
  }
}

TEST(SchedulerDeathTest, MaskSizeMismatchAborts) {
  Scheduler sched{AcceleratorConfig{}};
  const std::vector<bool> mask(10, true);
  EXPECT_DEATH((void)sched.run_timestep(WorkloadShape::ptb_char(1), mask),
               "precondition");
}

TEST(SchedulerDeathTest, BatchBeyondScratchAborts) {
  Scheduler sched{AcceleratorConfig{}};
  const std::vector<bool> mask(32, true);
  EXPECT_DEATH((void)sched.matvec(100, mask, 32), "precondition");
}

}  // namespace
}  // namespace zss::accel
