#include "accel/lstm_accelerator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/rng.h"

namespace zss::accel {
namespace {

using num::Index;
using num::Matrix;
using num::Rng;

Matrix random_input(Index rows, Index cols, Rng& rng) {
  Matrix x(rows, cols);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

class LstmAcceleratorTest : public ::testing::Test {
 protected:
  LstmAcceleratorTest() : rng_(11), cell_(8, 32, rng_) {
    // Shrink the recurrent weights a little so quantized preacts stay
    // inside the LUT range (trained nets satisfy this naturally).
    for (float& v : cell_.wh().value.flat()) v *= 0.5f;
  }

  Rng rng_;
  nn::LstmCell cell_;
};

TEST_F(LstmAcceleratorTest, FidelityAgainstFloatReference) {
  LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.05f;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(2);
  for (int t = 0; t < 30; ++t) {
    accel.step(random_input(2, 8, rng_));
  }
  EXPECT_GT(accel.fidelity_cosine(), 0.95);
}

TEST_F(LstmAcceleratorTest, HiddenStateBoundedAndPruned) {
  LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.2f;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(1);
  for (int t = 0; t < 10; ++t) accel.step(random_input(1, 8, rng_));
  const Matrix h = accel.hidden_state();
  for (float v : h.flat()) {
    EXPECT_LE(std::fabs(v), 1.0f);
    // Every stored value is 0 or at least the prune threshold (up to
    // one quantization step of slack).
    if (v != 0.0f) EXPECT_GE(std::fabs(v), 0.2f - 1.5f / 127.0f);
  }
}

TEST_F(LstmAcceleratorTest, SparseRunsFasterThanDense) {
  LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.3f;  // aggressive pruning
  LstmAccelerator sparse(AcceleratorConfig{}, opt, cell_);
  LstmAccelerator dense(AcceleratorConfig{}, opt, cell_);
  sparse.reset(1);
  dense.reset(1);
  for (int t = 0; t < 20; ++t) {
    const Matrix x = random_input(1, 8, rng_);
    sparse.step(x);
    dense.step_dense(x);
  }
  EXPECT_LT(sparse.totals().cycles, dense.totals().cycles);
  // Equivalent ops are identical: speedup shows up as higher GOPS.
  EXPECT_DOUBLE_EQ(sparse.totals().equivalent_ops,
                   dense.totals().equivalent_ops);
}

TEST_F(LstmAcceleratorTest, SparseAndDenseTimingSameFunctionalResult) {
  LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.1f;
  LstmAccelerator a(AcceleratorConfig{}, opt, cell_);
  LstmAccelerator b(AcceleratorConfig{}, opt, cell_);
  a.reset(2);
  b.reset(2);
  for (int t = 0; t < 15; ++t) {
    const Matrix x = random_input(2, 8, rng_);
    a.step(x);        // sparse timing
    b.step_dense(x);  // dense timing, same datapath & pruning
  }
  EXPECT_EQ(a.hidden_state(), b.hidden_state());
  EXPECT_EQ(a.cell_state(), b.cell_state());
}

TEST_F(LstmAcceleratorTest, TotalsAccumulateAcrossSteps) {
  LstmAcceleratorOptions opt;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(1);
  accel.step(random_input(1, 8, rng_));
  const auto after_one = accel.totals().cycles;
  accel.step(random_input(1, 8, rng_));
  EXPECT_GT(accel.totals().cycles, after_one);
  EXPECT_EQ(accel.totals().timesteps, 2);
  accel.reset_totals();
  EXPECT_EQ(accel.totals().timesteps, 0);
}

TEST_F(LstmAcceleratorTest, NarrowAccumulatorsSaturateWideOnesDoNot) {
  LstmAcceleratorOptions narrow;
  narrow.track_reference = false;
  AcceleratorConfig cfg;
  cfg.scratch_bits = 8;  // much too narrow for a 32-long dot product
  cfg.accum_pre_shift = 0;
  LstmAccelerator accel_narrow(cfg, narrow, cell_);
  accel_narrow.reset(1);
  for (int t = 0; t < 5; ++t) accel_narrow.step(random_input(1, 8, rng_));
  EXPECT_GT(accel_narrow.saturation_events(), 0);

  LstmAcceleratorOptions ideal;
  ideal.ideal_accumulators = true;
  ideal.track_reference = false;
  LstmAccelerator accel_ideal(AcceleratorConfig{}, ideal, cell_);
  accel_ideal.reset(1);
  for (int t = 0; t < 5; ++t) accel_ideal.step(random_input(1, 8, rng_));
  EXPECT_EQ(accel_ideal.saturation_events(), 0);
}

TEST_F(LstmAcceleratorTest, TwelveBitScratchCloseToIdeal) {
  // The paper's 12-bit partials with pre-shift 6 should track the ideal
  // int32 datapath closely on realistic magnitudes.
  LstmAcceleratorOptions opt12;
  opt12.prune_threshold = 0.05f;
  LstmAccelerator accel12(AcceleratorConfig{}, opt12, cell_);
  LstmAcceleratorOptions opt_ideal = opt12;
  opt_ideal.ideal_accumulators = true;
  LstmAccelerator accel_ideal(AcceleratorConfig{}, opt_ideal, cell_);
  accel12.reset(1);
  accel_ideal.reset(1);
  for (int t = 0; t < 20; ++t) {
    const Matrix x = random_input(1, 8, rng_);
    accel12.step(x);
    accel_ideal.step(x);
  }
  const Matrix h12 = accel12.hidden_state();
  const Matrix hid = accel_ideal.hidden_state();
  double diff = 0.0;
  for (Index i = 0; i < h12.size(); ++i) {
    diff += std::fabs(h12.flat()[static_cast<std::size_t>(i)] -
                      hid.flat()[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(diff / static_cast<double>(h12.size()), 0.08);
}

TEST_F(LstmAcceleratorTest, ZeroStateFirstStepSkipsEverything) {
  LstmAcceleratorOptions opt;
  opt.prune_threshold = 0.1f;
  opt.input_mode = InputMode::kDense;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(1);
  accel.step(random_input(1, 8, rng_));
  // h starts all-zero: the whole state matvec is skipped.
  EXPECT_EQ(accel.totals().positions_kept, 0);
  EXPECT_EQ(accel.totals().positions_total, 32);
}

TEST_F(LstmAcceleratorTest, ShapeReflectsConfiguration) {
  LstmAcceleratorOptions opt;
  opt.input_mode = InputMode::kOneHot;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(4);
  const auto shape = accel.shape();
  EXPECT_EQ(shape.hidden, 32);
  EXPECT_EQ(shape.input, 8);
  EXPECT_EQ(shape.batch, 4);
  EXPECT_EQ(shape.input_mode, InputMode::kOneHot);
}

TEST_F(LstmAcceleratorTest, DensePruneThresholdZeroKeepsState) {
  LstmAcceleratorOptions opt;  // threshold 0: dense model
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  accel.reset(1);
  accel.step(random_input(1, 8, rng_));
  accel.step(random_input(1, 8, rng_));
  // Step 1 sees the all-zero initial state (0 kept); step 2 sees a dense
  // state, so most of its 32 positions are kept (a few codes can still
  // quantize to exactly zero).
  const auto& totals = accel.totals();
  EXPECT_EQ(totals.positions_total, 64);
  EXPECT_GT(totals.positions_kept, 24);
  EXPECT_LE(totals.positions_kept, 32);
}

TEST_F(LstmAcceleratorTest, BatchBeyondScratchAborts) {
  LstmAcceleratorOptions opt;
  LstmAccelerator accel(AcceleratorConfig{}, opt, cell_);
  EXPECT_DEATH(accel.reset(17), "precondition");
}

}  // namespace
}  // namespace zss::accel
