#include "accel/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zss::accel {
namespace {

TEST(SyntheticTest, IntersectedSparsityHitsTarget) {
  num::Rng rng(1);
  const auto shape = WorkloadShape::ptb_char(8);
  const auto mask = mask_from_intersected_sparsity(shape, 0.81, rng);
  EXPECT_EQ(mask.size(), static_cast<std::size_t>(1000 * 8));
  EXPECT_NEAR(intersected_sparsity(shape, mask), 0.81, 0.04);
}

TEST(SyntheticTest, ExtremesAreExact) {
  num::Rng rng(2);
  const auto shape = WorkloadShape::mnist(4);
  const auto zero = mask_from_intersected_sparsity(shape, 1.0, rng);
  EXPECT_DOUBLE_EQ(intersected_sparsity(shape, zero), 1.0);
  const auto dense = mask_from_intersected_sparsity(shape, 0.0, rng);
  EXPECT_DOUBLE_EQ(intersected_sparsity(shape, dense), 0.0);
}

TEST(SyntheticTest, KeptPositionsHaveAtLeastOneNonZeroLane) {
  num::Rng rng(3);
  const auto shape = WorkloadShape::ptb_word(16);
  const auto mask = mask_from_intersected_sparsity(shape, 0.5, rng);
  for (num::Index j = 0; j < shape.hidden; ++j) {
    bool any = false;
    num::Index lanes = 0;
    for (num::Index b = 0; b < shape.batch; ++b) {
      if (mask[static_cast<std::size_t>(j * shape.batch + b)]) {
        any = true;
        ++lanes;
      }
    }
    // Either fully zero (skippable) or at least one non-zero lane.
    EXPECT_TRUE(!any || lanes >= 1);
  }
}

TEST(SyntheticTest, ElementSparsityDecaysWithBatch) {
  // The Fig. 7 effect: iid element sparsity p gives intersected p^B.
  num::Rng rng(4);
  const double p = 0.9;
  for (num::Index batch : {1, 8, 16}) {
    WorkloadShape shape{2000, 50, InputMode::kOneHot, batch};
    const auto mask = mask_from_element_sparsity(shape, p, rng);
    const double expected = std::pow(p, static_cast<double>(batch));
    EXPECT_NEAR(intersected_sparsity(shape, mask), expected,
                0.03 + expected * 0.1)
        << "batch " << batch;
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  const auto shape = WorkloadShape::mnist(8);
  num::Rng a(7);
  num::Rng b(7);
  EXPECT_EQ(mask_from_intersected_sparsity(shape, 0.5, a),
            mask_from_intersected_sparsity(shape, 0.5, b));
}

TEST(SyntheticDeathTest, BadSparsityAborts) {
  num::Rng rng(5);
  const auto shape = WorkloadShape::mnist(1);
  EXPECT_DEATH((void)mask_from_intersected_sparsity(shape, 1.5, rng),
               "precondition");
  EXPECT_DEATH((void)mask_from_element_sparsity(shape, -0.1, rng),
               "precondition");
}

}  // namespace
}  // namespace zss::accel
