#include "accel/timing_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zss::accel {
namespace {

using num::Index;

TEST(ConfigTest, PaperDerivedQuantities) {
  const AcceleratorConfig cfg;
  cfg.validate();
  EXPECT_EQ(cfg.total_pes(), 192);
  EXPECT_DOUBLE_EQ(cfg.peak_gops(), 76.8);  // §III-C peak performance
  EXPECT_DOUBLE_EQ(cfg.bytes_per_cycle(), 32.0);
  EXPECT_EQ(cfg.weights_per_cycle(), 24);  // "24 8-bit weights ..."
  EXPECT_EQ(cfg.input_bytes_per_cycle(), 1);  // "... and a single input"
}

TEST(ConfigDeathTest, InvalidConfigAborts) {
  AcceleratorConfig cfg;
  cfg.tiles = 0;
  EXPECT_DEATH(cfg.validate(), "precondition");
  cfg = AcceleratorConfig{};
  cfg.weight_bits = 16;
  EXPECT_DEATH(cfg.validate(), "precondition");
}

TEST(WorkloadTest, EquivalentOpsFollowPaperConvention) {
  // Char: only the Wh part counts (one-hot input is a table lookup):
  // 2 * 1000 * 4000 = 8 Mops.
  EXPECT_DOUBLE_EQ(WorkloadShape::ptb_char(1).equivalent_ops(), 8e6);
  // Word: both matvecs count: 2*(300+300)*1200 = 1.44 Mops.
  EXPECT_DOUBLE_EQ(WorkloadShape::ptb_word(1).equivalent_ops(), 1.44e6);
  // MNIST: 2*(100+1)*400 = 80.8 kops.
  EXPECT_DOUBLE_EQ(WorkloadShape::mnist(1).equivalent_ops(), 80800.0);
  // Batch scales linearly.
  EXPECT_DOUBLE_EQ(WorkloadShape::ptb_char(8).equivalent_ops(), 64e6);
}

class TimingModelTest : public ::testing::Test {
 protected:
  TimingModel model_{AcceleratorConfig{}};
};

TEST_F(TimingModelTest, PerPositionCostRegimes) {
  // Char (d_h=1000, column 4000): DRAM-bound until batch > 8.
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::ptb_char(1)), 167);
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::ptb_char(8)), 167);
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::ptb_char(16)), 334);
  // Word (column 1200).
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::ptb_word(1)), 50);
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::ptb_word(16)), 100);
  // MNIST (column 400).
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::mnist(1)), 17);
  EXPECT_EQ(model_.cycles_per_position(WorkloadShape::mnist(16)), 34);
}

TEST_F(TimingModelTest, CharDenseBatch1CycleBreakdown) {
  const auto c = model_.timestep_dense(WorkloadShape::ptb_char(1));
  EXPECT_EQ(c.matvec_state, 1000 * 167);
  EXPECT_EQ(c.matvec_input, 0);        // one-hot
  EXPECT_EQ(c.input_overlap, 0);       // 4000 bytes fit under 167k cycles
  EXPECT_EQ(c.elementwise, 3 * 21);    // ceil(1000/48) = 21 per stage
  EXPECT_EQ(c.encode, 21);
  EXPECT_EQ(c.pipeline_fill, 0);
}

TEST_F(TimingModelTest, DenseBatch1IsBandwidthBoundAt9p6Gops) {
  // The paper's 9.6 GOPS dense-batch-1 figure for all three tasks.
  for (const auto& shape :
       {WorkloadShape::ptb_char(1), WorkloadShape::ptb_word(1)}) {
    const auto cycles = model_.timestep_dense(shape).total();
    EXPECT_NEAR(model_.gops(shape, cycles), 9.6, 0.05);
  }
  // MNIST pays relatively more element-wise/rounding overhead (d_h=100).
  const auto shape = WorkloadShape::mnist(1);
  const auto cycles = model_.timestep_dense(shape).total();
  EXPECT_NEAR(model_.gops(shape, cycles), 9.6, 0.4);
}

TEST_F(TimingModelTest, DenseBatch8SaturatesNearPeak) {
  // Fig. 8: 76.4 / 76.2 / 74.3 GOPS at batch 8.
  const auto char8 = WorkloadShape::ptb_char(8);
  EXPECT_NEAR(model_.gops(char8, model_.timestep_dense(char8).total()),
              76.4, 0.5);
  const auto word8 = WorkloadShape::ptb_word(8);
  EXPECT_NEAR(model_.gops(word8, model_.timestep_dense(word8).total()),
              76.2, 0.5);
  const auto mnist8 = WorkloadShape::mnist(8);
  EXPECT_NEAR(model_.gops(mnist8, model_.timestep_dense(mnist8).total()),
              74.3, 2.5);
}

TEST_F(TimingModelTest, DenseBatch16MatchesBatch8Throughput) {
  // Compute-bound regime: twice the cycles, twice the work.
  const auto shape8 = WorkloadShape::ptb_char(8);
  const auto shape16 = WorkloadShape::ptb_char(16);
  const double g8 = model_.gops(shape8, model_.timestep_dense(shape8).total());
  const double g16 =
      model_.gops(shape16, model_.timestep_dense(shape16).total());
  EXPECT_NEAR(g8, g16, 0.1);
}

struct SparsePoint {
  WorkloadShape shape;
  double sparsity;    // Fig. 7 batch-intersected sweet-spot sparsity
  double paper_gops;  // Fig. 8 bar
};

class PaperFig8Test : public ::testing::TestWithParam<SparsePoint> {};

TEST_P(PaperFig8Test, SparseGopsWithinFivePercentOfPaper) {
  const auto& p = GetParam();
  TimingModel model{AcceleratorConfig{}};
  const auto kept = static_cast<Index>(
      std::round((1.0 - p.sparsity) * static_cast<double>(p.shape.hidden)));
  const auto cycles = model.timestep(p.shape, kept).total();
  const double gops = model.gops(p.shape, cycles);
  EXPECT_NEAR(gops, p.paper_gops, p.paper_gops * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Fig8, PaperFig8Test,
    ::testing::Values(
        // PTB-Char sparse: 314.7 / 395.5 / 223.9 at sparsity 97/81/66%.
        SparsePoint{WorkloadShape::ptb_char(1), 0.97, 314.7},
        SparsePoint{WorkloadShape::ptb_char(8), 0.81, 395.5},
        SparsePoint{WorkloadShape::ptb_char(16), 0.66, 223.9},
        // PTB-Word sparse: 17.9 / 110.8 / 95.6 at sparsity 93/63/41%.
        SparsePoint{WorkloadShape::ptb_word(1), 0.93, 17.9},
        SparsePoint{WorkloadShape::ptb_word(8), 0.63, 110.8},
        SparsePoint{WorkloadShape::ptb_word(16), 0.41, 95.6},
        // MNIST sparse: 50.5 / 154.3 / 124.9 at sparsity 83/55/43%.
        SparsePoint{WorkloadShape::mnist(1), 0.83, 50.5},
        SparsePoint{WorkloadShape::mnist(8), 0.55, 154.3},
        SparsePoint{WorkloadShape::mnist(16), 0.43, 124.9}));

TEST_F(TimingModelTest, FullSkipStillPaysElementwiseOverhead) {
  const auto shape = WorkloadShape::ptb_char(1);
  const auto c = model_.timestep(shape, 0);
  EXPECT_EQ(c.matvec_state, 0);
  EXPECT_GT(c.total(), 0);
  // The one-hot column now has no matvec to hide under.
  EXPECT_EQ(c.input_overlap, 4000);
}

TEST_F(TimingModelTest, GopsIsMonotoneInSkipping) {
  // Word shape: dense input, so no one-hot channel floor — every kept
  // position removed strictly reduces cycles.
  const auto shape = WorkloadShape::ptb_word(8);
  double last = 0.0;
  for (Index kept : {300, 250, 180, 120, 60, 20, 5}) {
    const double g = model_.gops(shape, model_.timestep(shape, kept).total());
    EXPECT_GT(g, last);
    last = g;
  }
}

TEST_F(TimingModelTest, OneHotChannelFloorsExtremeSkipping) {
  // For char at batch 8, beyond ~95% skipping the one-hot column fetch
  // (4 d_h * batch bytes on the 1 B/cycle channel) becomes the bottleneck
  // and cycles plateau — an effect the paper's batch-8 sweet spot (81%)
  // stays comfortably clear of.
  const auto shape = WorkloadShape::ptb_char(8);
  const auto at50 = model_.timestep(shape, 50);
  const auto at10 = model_.timestep(shape, 10);
  EXPECT_GT(at10.input_overlap, at50.input_overlap);
  // Total cycles are identical once the channel floor binds: matvec plus
  // overlap always covers the 32000-byte column fetch.
  EXPECT_EQ(at50.total(), at10.total());
  EXPECT_EQ(at50.matvec_state + at50.input_overlap,
            at10.matvec_state + at10.input_overlap);
}

TEST_F(TimingModelTest, WiderDramShiftsComputeBound) {
  AcceleratorConfig wide;
  wide.dram_gbps = 102.4;  // 2x paper bandwidth -> 48 weights/cycle
  TimingModel model(wide);
  EXPECT_EQ(wide.weights_per_cycle(), 48);
  // Char batch 8: compute ceil(4000*8/192)=167 now exceeds DRAM's 84.
  EXPECT_EQ(model.cycles_per_position(WorkloadShape::ptb_char(8)), 167);
  // Batch 1 halves.
  EXPECT_EQ(model.cycles_per_position(WorkloadShape::ptb_char(1)), 84);
}

TEST_F(TimingModelTest, BatchBeyondScratchAborts) {
  const WorkloadShape shape{100, 1, InputMode::kDense, 17};
  EXPECT_DEATH((void)model_.timestep_dense(shape), "precondition");
}

}  // namespace
}  // namespace zss::accel
