// Integration test of the paper's core claim (Section II): a model
// trained with state pruning retains accuracy close to its dense twin
// while storing a mostly-zero hidden state.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/lm_model.h"
#include "core/sweet_spot.h"
#include "data/char_corpus.h"

namespace zss::core {
namespace {

using num::Index;

struct Trained {
  double valid_nll;
  double sparsity;
};

Trained train_char_lm_uncached(double target_sparsity) {
  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 24000;
  dcfg.valid_chars = 3000;
  dcfg.test_chars = 3000;
  const auto corpus = data::CharCorpus::generate(dcfg);

  LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = 48;
  if (target_sparsity > 0.0) {
    cfg.pruner = PrunerConfig::target(target_sparsity);
  }
  PrunedLstmLm model(cfg);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const auto eval = model.evaluate(corpus.valid(), 4, 25);
  return {eval.mean_nll, eval.state_sparsity};
}

/// Several tests look at the same sparsity points; train each once.
Trained train_char_lm(double target_sparsity) {
  static std::map<double, Trained>* cache = new std::map<double, Trained>();
  const auto it = cache->find(target_sparsity);
  if (it != cache->end()) return it->second;
  const Trained t = train_char_lm_uncached(target_sparsity);
  (*cache)[target_sparsity] = t;
  return t;
}

TEST(TrainSparsityTest, PrunedModelMatchesDenseAccuracy) {
  const Trained dense = train_char_lm(0.0);
  const Trained pruned = train_char_lm(0.8);

  // The dense model must have learned something (uniform = log 50 = 3.9).
  EXPECT_LT(dense.valid_nll, 3.0);
  // The pruned model really is sparse.
  EXPECT_NEAR(pruned.sparsity, 0.8, 0.03);
  // Core claim: pruning while training costs little accuracy. The paper
  // reports no degradation at the sweet spot after full convergence; at
  // this deliberately tiny budget we bound the gap at 25% NLL.
  EXPECT_LT(pruned.valid_nll, dense.valid_nll * 1.25);
}

TEST(TrainSparsityTest, LearnedPruningBeatsPostHocPruning) {
  // What Section II actually contributes: *training* with the pruned
  // state is what makes 80% sparsity cheap. Zeroing 80% of a dense
  // model's state at inference time — without the training loop seeing
  // the prune — must be clearly worse.
  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 24000;
  dcfg.valid_chars = 3000;
  dcfg.test_chars = 3000;
  const auto corpus = data::CharCorpus::generate(dcfg);

  LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = 48;
  PrunedLstmLm dense_model(cfg);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)dense_model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  dense_model.set_pruner(PrunerConfig::target(0.8));
  const auto posthoc = dense_model.evaluate(corpus.valid(), 4, 25);

  const Trained learned = train_char_lm(0.8);
  EXPECT_LT(learned.valid_nll, posthoc.mean_nll);
}

TEST(TrainSparsityTest, ExtremePruningDegrades) {
  // The other side of the sweet-spot curve: pruning ~everything must
  // hurt, otherwise the recurrence contributes nothing and the sweep
  // figures would be meaningless.
  const Trained dense = train_char_lm(0.0);
  const Trained crippled = train_char_lm(0.995);
  EXPECT_GT(crippled.valid_nll, dense.valid_nll);
}

TEST(TrainSparsityTest, SweetSpotSearchOnMeasuredCurve) {
  // Assemble a miniature Fig. 2 and verify the sweet-spot logic on it.
  const Trained dense = train_char_lm(0.0);
  const Trained mid = train_char_lm(0.5);
  const Trained high = train_char_lm(0.8);
  const Trained extreme = train_char_lm(0.995);

  const std::vector<SweepPoint> curve = {
      {0.0, dense.valid_nll},
      {0.5, mid.valid_nll},
      {0.8, high.valid_nll},
      {0.995, extreme.valid_nll},
  };
  const auto spot = find_sweet_spot(curve, 0.15);
  ASSERT_TRUE(spot.found);
  EXPECT_GE(spot.sparsity, 0.5);   // substantial pruning is free
  EXPECT_LT(spot.sparsity, 0.995);  // total pruning is not
}

}  // namespace
}  // namespace zss::core
