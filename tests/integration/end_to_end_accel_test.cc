// End-to-end path: train a pruned char-LM, export its effective
// threshold, run real one-hot inputs through the cycle-level accelerator
// and check the measured speedup and fidelity — the complete workflow
// behind Figs. 7-9 (at laptop scale).
#include <gtest/gtest.h>

#include <cmath>

#include "accel/lstm_accelerator.h"
#include "core/lm_model.h"
#include "data/char_corpus.h"
#include "num/stats.h"

namespace zss {
namespace {

using num::Index;
using num::Matrix;

struct TrainedModel {
  core::LmConfig cfg;
  std::unique_ptr<core::PrunedLstmLm> model;
  float fixed_threshold = 0.0f;
  data::CharCorpus corpus;
};

TrainedModel train_pruned_model() {
  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 16000;
  dcfg.valid_chars = 2000;
  dcfg.test_chars = 2000;

  TrainedModel out{{}, nullptr, 0.0f, data::CharCorpus::generate(dcfg)};
  out.cfg.vocab = data::CharCorpus::kVocab;
  out.cfg.hidden = 96;
  out.cfg.pruner = core::PrunerConfig::target(0.85);
  out.model = std::make_unique<core::PrunedLstmLm>(out.cfg);

  // Phase 1: warm up with the adaptive (target-sparsity) pruner to find
  // the magnitude scale the paper's empirical T would be chosen at.
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(out.corpus.train(), 8, 20);
  for (Index w = 0; w < batcher.num_windows(); ++w) {
    (void)out.model->train_window(batcher.window(w), adam, 5.0f);
  }

  // Export the fixed threshold from the *pre-prune* states observed
  // under pruned dynamics (dense-dynamics states would misestimate it).
  sparse::SparsityMeter meter;
  std::vector<Matrix> dense_states;
  (void)out.model->collect_states(out.corpus.valid(), 1, 60, meter, nullptr,
                                  &dense_states);
  std::vector<float> all;
  for (const auto& s : dense_states) {
    all.insert(all.end(), s.flat().begin(), s.flat().end());
  }
  out.fixed_threshold = num::quantile_abs(all, 0.85);

  // Phase 2: the paper trains with a constant empirical T — fine-tune
  // with the exported fixed threshold so the dynamics adapt to it.
  out.model->set_pruner(core::PrunerConfig::fixed(out.fixed_threshold));
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)out.model->train_window(batcher.window(w), adam, 5.0f);
    }
  }
  return out;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { trained_ = new TrainedModel(train_pruned_model()); }
  static void TearDownTestSuite() {
    delete trained_;
    trained_ = nullptr;
  }

  static TrainedModel* trained_;
};

TrainedModel* EndToEndTest::trained_ = nullptr;

Matrix one_hot_batch(std::span<const Index> tokens, Index vocab) {
  Matrix x(static_cast<Index>(tokens.size()), vocab, 0.0f);
  for (Index b = 0; b < x.rows(); ++b) {
    x(b, tokens[static_cast<std::size_t>(b)]) = 1.0f;
  }
  return x;
}

TEST_F(EndToEndTest, FixedThresholdKeepsHighSparsityAndAccuracy) {
  auto& t = *trained_;
  const auto eval = t.model->evaluate(t.corpus.test(), 4, 20);
  // A constant T cannot pin sparsity exactly (the paper calls it
  // empirical). On this highly predictable synthetic corpus the model
  // legitimately pushes past the paper's 97% char sweet spot; what must
  // hold is (a) heavy sparsity and (b) the model still predicting far
  // better than the uniform bound of ln(50) = 3.91 nats.
  EXPECT_GT(eval.state_sparsity, 0.6);
  EXPECT_LE(eval.state_sparsity, 1.0);
  EXPECT_LT(eval.mean_nll, 3.3);
}

TEST_F(EndToEndTest, AcceleratorSpeedupTracksSparsity) {
  auto& t = *trained_;
  accel::LstmAcceleratorOptions opt;
  opt.prune_threshold = t.fixed_threshold;
  opt.input_mode = accel::InputMode::kOneHot;
  accel::LstmAccelerator sparse(accel::AcceleratorConfig{}, opt,
                                t.model->cell());
  accel::LstmAccelerator dense(accel::AcceleratorConfig{}, opt,
                               t.model->cell());
  sparse.reset(1);
  dense.reset(1);

  const auto& stream = t.corpus.test();
  for (Index i = 0; i < 80; ++i) {
    const Index token = stream[static_cast<std::size_t>(i)];
    const Matrix x = one_hot_batch({&token, 1}, t.cfg.vocab);
    sparse.step(x);
    dense.step_dense(x);
  }

  const double sparsity = sparse.totals().observed_sparsity();
  EXPECT_GT(sparsity, 0.6);  // quantized + thresholded state is sparse

  const double speedup =
      static_cast<double>(dense.totals().cycles) /
      static_cast<double>(sparse.totals().cycles);
  // Speedup must be substantial and bounded by the skip fraction.
  EXPECT_GT(speedup, 2.0);
  EXPECT_LE(speedup, 1.0 / (1.0 - sparsity) + 1.0);
}

TEST_F(EndToEndTest, AcceleratorStaysFaithfulToFloatModel) {
  auto& t = *trained_;
  accel::LstmAcceleratorOptions opt;
  opt.prune_threshold = t.fixed_threshold;
  opt.input_mode = accel::InputMode::kOneHot;
  accel::LstmAccelerator accel(accel::AcceleratorConfig{}, opt,
                               t.model->cell());
  accel.reset(1);
  const auto& stream = t.corpus.test();
  for (Index i = 0; i < 50; ++i) {
    const Index token = stream[static_cast<std::size_t>(i)];
    accel.step(one_hot_batch({&token, 1}, t.cfg.vocab));
  }
  EXPECT_GT(accel.fidelity_cosine(), 0.90);
  EXPECT_EQ(accel.saturation_events(), 0);  // 12-bit scratch suffices
}

TEST_F(EndToEndTest, BatchingDegradesIntersectedSparsity) {
  // Fig. 7's effect measured end to end on the trained model.
  auto& t = *trained_;
  sparse::SparsityMeter b1;
  sparse::SparsityMeter b8;
  (void)t.model->collect_states(t.corpus.test(), 1, 60, b1);
  (void)t.model->collect_states(t.corpus.test(), 8, 60, b8);
  EXPECT_GT(b1.mean_sparsity(), b8.mean_sparsity());
}

}  // namespace
}  // namespace zss
