// Reproduces the worked example of Fig. 5: a 4x6 weight matrix times a
// 6-element input vector with one zero element, on 4 PEs.
//  (a) unlimited bandwidth, batch 1: one cycle per position, zero skipped.
//  (b) bandwidth of 2 weights + 1 input per cycle: 12 cycles dense,
//      2 cycles per kept position when skipping.
//  (c) batch 2 fills the pipeline (utilization back to 100%), one fill
//      cycle (the figure's CC #13).
//  (d) skipping is legal only where BOTH batches are zero.
#include <gtest/gtest.h>

#include "accel/scheduler.h"

namespace zss::accel {
namespace {

using num::Index;

AcceleratorConfig fig5_config(double gbps) {
  AcceleratorConfig cfg;
  cfg.tiles = 1;
  cfg.pes_per_tile = 4;
  cfg.dram_gbps = gbps;  // 4.8 Gbps @200 MHz = 3 B/cycle -> 2 weights
  return cfg;
}

// Fig. 5 input vector: h0, h1, h2, h3, 0, h5 (position 4 is zero).
std::vector<bool> fig5_mask_batch1() {
  return {true, true, true, true, false, true};
}

TEST(Fig5Test, PartAUnlimitedBandwidth) {
  const auto cfg = fig5_config(12.8);  // 8 B/cycle -> 6 weights/cycle
  ASSERT_GE(cfg.weights_per_cycle(), 4);
  Scheduler sched(cfg);
  const auto stats = sched.matvec(4, fig5_mask_batch1(), 1);
  // One cycle per kept position; the zero position is skipped.
  EXPECT_EQ(stats.cycles, 5);
  EXPECT_EQ(stats.positions_kept, 5);
  EXPECT_EQ(stats.macs_issued, 5 * 4);
}

TEST(Fig5Test, PartBLimitedBandwidthDoublesLatency) {
  const auto cfg = fig5_config(4.8);
  ASSERT_EQ(cfg.weights_per_cycle(), 2);
  Scheduler sched(cfg);
  // Dense: 6 positions x ceil(4/2) = 12 cycles (the figure's CC #1-12).
  const std::vector<bool> dense(6, true);
  EXPECT_EQ(sched.matvec(4, dense, 1).cycles, 12);
  // With skipping: 5 kept positions -> 10 cycles.
  EXPECT_EQ(sched.matvec(4, fig5_mask_batch1(), 1).cycles, 10);
  // Utilization at batch 1 is 50%: 2 of 4 PEs fed per cycle.
  const auto stats = sched.matvec(4, dense, 1);
  EXPECT_EQ(stats.macs_issued, 24);          // 6 positions x 4 PEs x 1 lane
  EXPECT_EQ(stats.cycles * 4, 48);           // PE-cycles available
}

TEST(Fig5Test, PartCBatch2RestoresUtilization) {
  const auto cfg = fig5_config(4.8);
  Scheduler sched(cfg);
  // Batch 2, both lanes dense: still 2 cycles per position (weight
  // stream limited), but every PE-cycle now performs a MAC.
  const std::vector<bool> dense(12, true);
  const auto stats = sched.matvec(4, dense, 2);
  EXPECT_EQ(stats.cycles, 12);
  EXPECT_EQ(stats.macs_issued, 48);  // 6 x 4 x 2 = full utilization
  // The figure counts one extra fill cycle (CC #13): pipeline depth
  // batch-1, charged once per timestep by run_timestep.
  const Index fill = 2 - 1;
  EXPECT_EQ(stats.cycles + fill, 13);
}

TEST(Fig5Test, PartDSkipOnlyWhenAllBatchesZero) {
  const auto cfg = fig5_config(4.8);
  Scheduler sched(cfg);
  // lane 0 zero at {1, 4}; lane 1 zero at {3, 4}. Only position 4 is
  // zero in both lanes -> 5 kept positions.
  std::vector<bool> mask(12, true);
  mask[1 * 2 + 0] = false;
  mask[3 * 2 + 1] = false;
  mask[4 * 2 + 0] = false;
  mask[4 * 2 + 1] = false;
  const auto stats = sched.matvec(4, mask, 2);
  EXPECT_EQ(stats.positions_kept, 5);
  EXPECT_EQ(stats.cycles, 10);
  // Kept positions issue MACs for both lanes (weights are shared), but
  // the zero-valued lanes do no useful work.
  EXPECT_EQ(stats.macs_issued, 5 * 4 * 2);
  EXPECT_EQ(stats.macs_effectual, (3 * 2 + 1 + 1) * 4);
}

TEST(Fig5Test, SingleBatchZeroRequiresAllLanesRule) {
  // The same masks at batch 1 skip independently — showing what the
  // batch-2 intersection costs (Fig. 7's sparsity degradation).
  const auto cfg = fig5_config(4.8);
  Scheduler sched(cfg);
  const std::vector<bool> lane0 = {true, false, true, true, false, true};
  const std::vector<bool> lane1 = {true, true, true, false, false, true};
  const auto s0 = sched.matvec(4, lane0, 1);
  const auto s1 = sched.matvec(4, lane1, 1);
  // Independently: 4 + 4 kept positions = 16 cycles of work...
  EXPECT_EQ(s0.cycles + s1.cycles, 16);
  // ...but batched they need 5 shared positions = 10 cycles, i.e. the
  // batch runs faster in wall-clock but skips less than the sum.
  std::vector<bool> merged(12);
  for (Index j = 0; j < 6; ++j) {
    merged[static_cast<std::size_t>(j * 2 + 0)] =
        lane0[static_cast<std::size_t>(j)];
    merged[static_cast<std::size_t>(j * 2 + 1)] =
        lane1[static_cast<std::size_t>(j)];
  }
  EXPECT_EQ(sched.matvec(4, merged, 2).cycles, 10);
}

}  // namespace
}  // namespace zss::accel
