#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "core/stacked_engine.h"
#include "nn/embedding.h"
#include "nn/lstm_cell.h"
#include "num/parallel.h"
#include "num/rng.h"
#include "serve/pool.h"
#include "serve/trace.h"

// Multi-layer serving determinism: an L-layer model served through the
// pool must be bit-identical to a batch-of-one StackedEngine oracle —
// at any shard count, any max_batch, with the layer-pipelined wavefront
// on or off, at any parallel_for thread count, with or without an
// embedding input mapping, and under TTL/cap churn (the wavefront's
// hazard fences). The wavefront only runs inside EngineShard::flush(),
// so these tests drive pool.flush directly (replay settles through
// process_ready and never pipelines — serve/trace.cc).
namespace zss::serve {
namespace {

constexpr num::Index kDx = 6;
constexpr num::Index kDh = 16;

using OutputLog = std::map<SessionId, std::vector<std::vector<float>>>;

/// Restores the global parallel_for worker count on scope exit.
struct ThreadGuard {
  explicit ThreadGuard(int n) { num::set_num_threads(n); }
  ~ThreadGuard() { num::set_num_threads(1); }
};

class StackedShardTest : public ::testing::Test {
 protected:
  StackedShardTest() : rng_(161803) {
    trace_ = synthetic_trace(/*requests=*/180, /*sessions=*/7, /*vocab=*/kDx,
                             /*mean_gap_us=*/40, rng_);
    // Back-to-back same-session arrivals: under pipelining this queues
    // one session into two consecutive flights (the pinned-count path).
    for (int k = 0; k < 4; ++k) {
      TraceEvent e;
      e.arrival_us = trace_.back().arrival_us;
      e.session = 2;
      e.token = static_cast<num::Index>(k) % kDx;
      trace_.push_back(e);
    }
  }

  void build(num::Index layers) {
    cells_.clear();
    pruners_.clear();
    cell_ptrs_.clear();
    pruner_ptrs_.clear();
    num::Rng rng(42);  // model weights fixed across build() calls
    for (num::Index l = 0; l < layers; ++l) {
      cells_.emplace_back(l == 0 ? kDx : kDh, kDh, rng);
      pruners_.emplace_back(core::PrunerConfig::fixed(
          0.05f + 0.02f * static_cast<float>(l)));
    }
    for (const auto& c : cells_) cell_ptrs_.push_back(&c);
    for (const auto& p : pruners_) pruner_ptrs_.push_back(&p);
  }

  ServeModel model() const {
    ServeModel m;
    m.cells = cell_ptrs_;
    m.pruners = pruner_ptrs_;
    return m;
  }

  /// Ground truth: per-session StackedEngine, batch of one, trace
  /// order. Logs stored top-layer h (what Response.h views) and the
  /// dense top tap (what Response.dense_h views).
  void oracle(num::Index layers, OutputLog& stored, OutputLog& dense) {
    core::StackedEngine engine(cell_ptrs_, pruner_ptrs_);
    struct State {
      std::vector<num::Matrix> h, c;
    };
    std::map<SessionId, State> states;
    num::Matrix x(1, kDx), top;
    for (const TraceEvent& e : trace_) {
      auto [it, fresh] = states.try_emplace(e.session);
      if (fresh) {
        it->second.h.resize(static_cast<std::size_t>(layers));
        it->second.c.resize(static_cast<std::size_t>(layers));
        for (num::Index l = 0; l < layers; ++l) {
          it->second.h[static_cast<std::size_t>(l)].resize(1, kDh, 0.0f);
          it->second.c[static_cast<std::size_t>(l)].resize(1, kDh, 0.0f);
        }
      }
      x.fill(0.0f);
      x(0, e.token % kDx) = 1.0f;
      engine.step(x, it->second.h, it->second.c, &top);
      const auto h_row = it->second.h.back().row(0);
      stored[e.session].emplace_back(h_row.begin(), h_row.end());
      const auto d_row = top.row(0);
      dense[e.session].emplace_back(d_row.begin(), d_row.end());
    }
  }

  /// Enqueues the whole trace and flushes once — the path that runs
  /// the wavefront when `pipeline` is set.
  void run_flush(num::Index shards, num::Index max_batch, bool pipeline,
                 OutputLog& stored, OutputLog& dense,
                 SessionTtl ttl = {}) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = max_batch;
    config.session_ttl = ttl;
    config.pipeline = pipeline;
    EnginePool pool(model(), config);
    std::uint64_t seq = 0;
    for (const TraceEvent& e : trace_) {
      Request r;
      r.session = e.session;
      r.token = e.token;
      r.arrival_us = e.arrival_us;
      r.seq = seq++;
      pool.enqueue(r);
    }
    const ResponseSink sink = [&](const Response& r) {
      stored[r.session].emplace_back(r.h.begin(), r.h.end());
      dense[r.session].emplace_back(r.dense_h.begin(), r.dense_h.end());
    };
    const std::int64_t end_us = trace_.back().arrival_us + 1;
    num::Index served = 0;
    for (num::Index s = 0; s < shards; ++s) {
      served += pool.shard(s).flush(end_us, sink);
    }
    EXPECT_EQ(served, static_cast<num::Index>(trace_.size()));
  }

  num::Rng rng_;
  std::deque<nn::LstmCell> cells_;
  std::deque<core::StatePruner> pruners_;
  std::vector<const nn::LstmCell*> cell_ptrs_;
  std::vector<const core::StatePruner*> pruner_ptrs_;
  std::vector<TraceEvent> trace_;
};

TEST_F(StackedShardTest, LayerSweepPipelineOnOffMatchesOracleBitwise) {
  for (const num::Index layers : {1, 2, 3}) {
    build(layers);
    OutputLog want_stored, want_dense;
    oracle(layers, want_stored, want_dense);
    for (const bool pipeline : {false, true}) {
      for (const num::Index shards : {1, 2}) {
        OutputLog stored, dense;
        run_flush(shards, /*max_batch=*/8, pipeline, stored, dense);
        EXPECT_EQ(stored, want_stored)
            << "layers " << layers << " pipeline " << pipeline << " shards "
            << shards;
        EXPECT_EQ(dense, want_dense)
            << "dense tap: layers " << layers << " pipeline " << pipeline
            << " shards " << shards;
      }
    }
  }
}

TEST_F(StackedShardTest, WavefrontWithWorkerThreadsMatchesSequential) {
  // The actual overlap: 3 layers, up to 3 flights ticking concurrently
  // on parallel_for workers. Values must not move.
  build(3);
  OutputLog want_stored, want_dense;
  run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/false, want_stored,
            want_dense);
  for (const int threads : {2, 4}) {
    ThreadGuard guard(threads);
    OutputLog stored, dense;
    run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/true, stored,
              dense);
    EXPECT_EQ(stored, want_stored) << "threads " << threads;
    EXPECT_EQ(dense, want_dense) << "threads " << threads;
  }
}

TEST_F(StackedShardTest, WavefrontBatchSizeSweepBitwiseIdentical) {
  build(2);
  OutputLog want_stored, want_dense;
  oracle(2, want_stored, want_dense);
  for (const num::Index max_batch : {1, 2, 3, 8}) {
    OutputLog stored, dense;
    run_flush(/*shards=*/1, max_batch, /*pipeline=*/true, stored, dense);
    EXPECT_EQ(stored, want_stored) << "max_batch " << max_batch;
  }
}

TEST_F(StackedShardTest, PipelineUnderTtlChurnMatchesSequential) {
  // Lazy TTL resets force the wavefront's admission fence (an admit
  // that would reset a pinned session must drain first). The fence is
  // allowed to change batch boundaries, never values.
  build(2);
  SessionTtl ttl;
  ttl.ttl_us = 900;  // several resets over the ~7200us trace
  OutputLog want_stored, want_dense;
  run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/false, want_stored,
            want_dense, ttl);
  ThreadGuard guard(3);
  OutputLog stored, dense;
  run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/true, stored, dense,
            ttl);
  EXPECT_EQ(stored, want_stored);
  EXPECT_EQ(dense, want_dense);
}

TEST_F(StackedShardTest, PipelineUnderSessionCapMatchesSequential) {
  // A capped store under pipelining: eviction may never hit a pinned
  // lane (max_sessions > layers * max_batch is construction-enforced).
  build(2);
  SessionTtl ttl;
  ttl.ttl_us = 1500;
  ttl.max_sessions = 9;  // > 2 layers * 4 max_batch
  OutputLog want_stored, want_dense;
  run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/false, want_stored,
            want_dense, ttl);
  ThreadGuard guard(2);
  OutputLog stored, dense;
  run_flush(/*shards=*/1, /*max_batch=*/4, /*pipeline=*/true, stored, dense,
            ttl);
  EXPECT_EQ(stored, want_stored);
}

TEST_F(StackedShardTest, QuantStackedShardSweepBitwiseIdentical) {
  build(2);
  auto run_quant = [&](num::Index shards, bool pipeline) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = 8;
    config.quant = core::QuantConfig::int8();
    config.pipeline = pipeline;
    EnginePool pool(model(), config);
    std::uint64_t seq = 0;
    for (const TraceEvent& e : trace_) {
      Request r;
      r.session = e.session;
      r.token = e.token;
      r.arrival_us = e.arrival_us;
      r.seq = seq++;
      pool.enqueue(r);
    }
    OutputLog log;
    const ResponseSink sink = [&](const Response& r) {
      log[r.session].emplace_back(r.h.begin(), r.h.end());
    };
    for (num::Index s = 0; s < shards; ++s) {
      pool.shard(s).flush(trace_.back().arrival_us + 1, sink);
    }
    return log;
  };
  const OutputLog want = run_quant(1, false);
  EXPECT_EQ(run_quant(2, false), want);
  EXPECT_EQ(run_quant(1, true), want);
  EXPECT_EQ(run_quant(2, true), want);
}

TEST_F(StackedShardTest, EmbeddingInputMapsTokensToRows) {
  // The embedding path: tokens index rows instead of one-hot columns.
  // Served output must equal a hand-stepped oracle fed embedding rows.
  build(2);
  num::Rng erng(5);
  nn::Embedding embed(/*vocab=*/kDx * 3, /*dim=*/kDx, erng);
  ServeModel m = model();
  m.embedding = &embed;
  m.vocab = embed.vocab();

  PoolConfig config;
  config.policy.max_batch = 4;
  EnginePool pool(m, config);
  EXPECT_EQ(pool.model_info().vocab, embed.vocab());

  std::uint64_t seq = 0;
  for (const TraceEvent& e : trace_) {
    Request r;
    r.session = e.session;
    r.token = e.token;
    r.arrival_us = e.arrival_us;
    r.seq = seq++;
    pool.enqueue(r);
  }
  OutputLog stored;
  const ResponseSink sink = [&](const Response& r) {
    stored[r.session].emplace_back(r.h.begin(), r.h.end());
  };
  pool.shard(0).flush(trace_.back().arrival_us + 1, sink);

  core::StackedEngine engine(cell_ptrs_, pruner_ptrs_);
  struct State {
    std::vector<num::Matrix> h, c;
  };
  std::map<SessionId, State> states;
  OutputLog want;
  num::Matrix x;
  std::vector<num::Index> id(1);
  for (const TraceEvent& e : trace_) {
    auto [it, fresh] = states.try_emplace(e.session);
    if (fresh) {
      it->second.h.resize(2);
      it->second.c.resize(2);
      for (int l = 0; l < 2; ++l) {
        it->second.h[l].resize(1, kDh, 0.0f);
        it->second.c[l].resize(1, kDh, 0.0f);
      }
    }
    id[0] = e.token % embed.vocab();
    embed.forward(id, x);
    engine.step(x, it->second.h, it->second.c);
    const auto row = it->second.h.back().row(0);
    want[e.session].emplace_back(row.begin(), row.end());
  }
  EXPECT_EQ(stored, want);
}

TEST_F(StackedShardTest, PipelineActuallyOverlapped) {
  // Guard against the wavefront silently degrading to sequential: with
  // pipelining on, the shard must report pipeline() and serve the
  // trace (the overlap itself is proven by the bit-identity tests
  // above running at threads > 1; here we pin the mode wiring).
  build(3);
  PoolConfig config;
  config.pipeline = true;
  EnginePool pool(model(), config);
  EXPECT_TRUE(pool.shard(0).pipeline());
  EXPECT_EQ(pool.model_info().layers, 3);

  build(1);  // single layer: pipelining must quietly turn itself off
  PoolConfig single;
  single.pipeline = true;
  EnginePool spool(model(), single);
  EXPECT_FALSE(spool.shard(0).pipeline());
}

}  // namespace
}  // namespace zss::serve
