#include "serve/supervisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/pool.h"
#include "serve/worker.h"
#include "store/io.h"

// The watchdog half of crash recovery (docs/serving.md "Crash recovery
// & degradation ladder"): per-worker heartbeats, wedge detection, the
// quarantine → abandon → journal-rebuild → resume cycle, and the
// request ledger that accounts for every accepted request across a
// restart (submitted == responded + abandoned). Plus the per-request
// deadline: a request the server cannot serve in time is answered
// `err timeout` without touching any session state.
namespace zss::serve {
namespace {

num::Index token_at(SessionId sid, std::uint64_t i, num::Index vocab) {
  return static_cast<num::Index>(
      num::splitmix64_mix(sid * 1000003ULL + i) %
      static_cast<std::uint64_t>(vocab));
}

bool wait_until(const std::function<bool()>& done,
                std::chrono::seconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest()
      : rng_(314159),
        cell_(/*input_dim=*/5, /*hidden_dim=*/12, rng_),
        pruner_(core::PrunerConfig::fixed(0.08f)) {}

  PoolConfig journaled_config(num::Index shards, store::Env& env,
                              const std::string& dir) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = 8;
    config.policy.max_wait_us = 100;
    config.spill.dir = dir;
    config.spill.env = &env;
    config.spill.journal = true;
    return config;
  }

  num::Rng rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
};

TEST_F(SupervisorTest, DeadlineAnswersTimeoutWithoutTouchingState) {
  PoolConfig config;
  config.shards = 1;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 100;
  EnginePool pool(cell_, pruner_, config);

  std::atomic<int> timed_out{0}, served{0};
  const ResponseSink sink = [&](const Response& r) {
    if (r.timed_out) {
      EXPECT_TRUE(r.h.empty()) << "a timed-out response must carry no state";
      EXPECT_EQ(r.row_digest, 0u);
      timed_out.fetch_add(1);
    } else {
      served.fetch_add(1);
    }
  };
  LiveConfig live;
  live.deadline_us = 2'000;
  LiveServer server(pool, sink, live);

  // Park the worker at its pre-serve checkpoint, queue work, and let
  // real time pass the deadline before releasing it.
  server.worker(0).wedge_for_testing();
  constexpr int kLate = 12;
  for (int i = 0; i < kLate; ++i) {
    ASSERT_TRUE(server.submit(7, 0).has_value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.worker(0).release_wedge();
  ASSERT_TRUE(wait_until(
      [&] { return timed_out.load() + served.load() >= kLate; }));
  server.shutdown();

  EXPECT_EQ(timed_out.load(), kLate)
      << "every request waited 10x its deadline — all must time out";
  EXPECT_EQ(pool.shard(0).timeouts(), static_cast<std::uint64_t>(kLate));
  // No state was touched: the session does not exist and nothing was
  // folded into the digest table.
  EXPECT_TRUE(pool.merged_digests().empty());
  EXPECT_EQ(pool.shard(0).sessions().find(7), nullptr);
  // The ledger still balances: a timeout answer is a response.
  EXPECT_EQ(server.submitted(), static_cast<std::uint64_t>(kLate));
  EXPECT_EQ(server.responded(), static_cast<std::uint64_t>(kLate));
}

TEST_F(SupervisorTest, IdleAndHealthyWorkersAreNeverRestarted) {
  PoolConfig config;
  config.shards = 2;
  config.policy.max_batch = 4;
  config.policy.max_wait_us = 100;
  EnginePool pool(cell_, pruner_, config);
  std::atomic<int> served{0};
  LiveServer server(pool, [&](const Response&) { served.fetch_add(1); });

  // The stall window is deliberately generous: this test pins the
  // no-false-positive side, and a loaded CI machine can starve even a
  // healthy worker for tens of milliseconds.
  SupervisorConfig sup;
  sup.stall_ms = 1000;
  sup.poll_ms = 20;
  Supervisor supervisor(server, sup);
  supervisor.start();

  // Idle past a full stall window: an idle worker's frozen heartbeat
  // must not look like a wedge (inflight == 0 gates the check).
  std::this_thread::sleep_for(std::chrono::milliseconds(1300));
  // Then a burst of healthy traffic, served well inside the window.
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    if (server
            .submit(static_cast<SessionId>(i % 6 + 1),
                    token_at(static_cast<SessionId>(i % 6 + 1),
                             static_cast<std::uint64_t>(i),
                             cell_.input_dim()))
            .has_value()) {
      ++accepted;
    }
  }
  ASSERT_TRUE(wait_until([&] { return served.load() >= accepted; }));
  // Linger another window drained-but-idle: stale heartbeat again,
  // inflight back to zero, still not a wedge.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  supervisor.stop();
  server.shutdown();

  EXPECT_EQ(accepted, 200) << "healthy shards must never refuse a submit";
  EXPECT_EQ(server.restarts(), 0u) << "false-positive wedge detection";
  EXPECT_EQ(supervisor.restarts_triggered(), 0u);
  EXPECT_EQ(server.submitted(), server.responded());
}

TEST_F(SupervisorTest, WedgedWorkerIsRestartedAndSurvivorsLoseNothing) {
  store::MemEnv env;
  EnginePool pool(cell_, pruner_, journaled_config(2, env, "sup"));

  // One session per shard, chosen by the pool's own hash.
  SessionId wedged_sid = 0, healthy_sid = 0;
  for (SessionId sid = 1; wedged_sid == 0 || healthy_sid == 0; ++sid) {
    if (pool.shard_of(sid) == 0 && wedged_sid == 0) wedged_sid = sid;
    if (pool.shard_of(sid) == 1 && healthy_sid == 0) healthy_sid = sid;
  }

  std::mutex mu;
  std::map<SessionId, std::uint64_t> ok_steps;
  const ResponseSink sink = [&](const Response& r) {
    if (r.timed_out) return;
    std::lock_guard<std::mutex> lock(mu);
    ++ok_steps[r.session];
  };
  LiveServer server(pool, sink);

  // Phase 1: both sessions serve normally; these steps are committed
  // to the journals.
  constexpr std::uint64_t kBefore = 6;
  for (std::uint64_t i = 0; i < kBefore; ++i) {
    ASSERT_TRUE(server
                    .submit(wedged_sid,
                            token_at(wedged_sid, i, cell_.input_dim()))
                    .has_value());
    ASSERT_TRUE(server
                    .submit(healthy_sid,
                            token_at(healthy_sid, i, cell_.input_dim()))
                    .has_value());
  }
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lock(mu);
    return ok_steps[wedged_sid] == kBefore && ok_steps[healthy_sid] == kBefore;
  }));

  // Phase 2: shard 0's worker wedges with work queued. The watchdog
  // must notice the stalled heartbeat, abandon it, rebuild the shard
  // from its journal and mount a fresh worker — while shard 1 keeps
  // serving uninterrupted.
  server.worker(0).wedge_for_testing();
  constexpr std::uint64_t kAbandonedSubmits = 4;
  for (std::uint64_t i = 0; i < kAbandonedSubmits; ++i) {
    ASSERT_TRUE(server
                    .submit(wedged_sid,
                            token_at(wedged_sid, kBefore + i,
                                     cell_.input_dim()))
                    .has_value());
  }

  SupervisorConfig sup;
  sup.stall_ms = 40;
  sup.poll_ms = 5;
  Supervisor supervisor(server, sup);
  supervisor.start();

  std::atomic<bool> stop_traffic{false};
  std::uint64_t healthy_sent = kBefore;
  std::thread traffic([&] {
    while (!stop_traffic.load()) {
      SubmitStatus status;
      if (server.submit(healthy_sid,
                        token_at(healthy_sid, healthy_sent,
                                 cell_.input_dim()),
                        0, &status)
              .has_value()) {
        ++healthy_sent;
      } else {
        EXPECT_NE(status, SubmitStatus::kUnavailable)
            << "the healthy shard must never be quarantined";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  ASSERT_TRUE(wait_until([&] { return server.restarts() >= 1; }))
      << "watchdog never caught the wedged worker";
  stop_traffic.store(true);
  traffic.join();
  ASSERT_TRUE(wait_until([&] { return server.quarantined() == 0; }));

  // Phase 3: the resume protocol. The restarted shard recovered the
  // committed prefix (kBefore steps); the client re-drives everything
  // after it, exactly as `sync`/`pos` instructs a real client.
  const std::uint64_t committed =
      pool.shard(0).sessions().digest_of(wedged_sid).steps;
  EXPECT_EQ(committed, kBefore)
      << "journal recovery must hand back every committed step";
  constexpr std::uint64_t kTotal = kBefore + kAbandonedSubmits;
  for (std::uint64_t i = committed; i < kTotal; ++i) {
    SubmitStatus status = SubmitStatus::kOk;
    while (!server
                .submit(wedged_sid, token_at(wedged_sid, i, cell_.input_dim()),
                        0, &status)
                .has_value()) {
      ASSERT_NE(status, SubmitStatus::kStopped);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(wait_until([&] {
    return pool.shard(0).sessions().digest_of(wedged_sid).steps == kTotal;
  }));

  supervisor.stop();
  server.shutdown();

  // The ledger: every accepted request was answered or accounted as
  // abandoned — nothing lost, nothing duplicated.
  EXPECT_EQ(server.submitted(), server.responded() + server.abandoned());
  EXPECT_GE(server.restarts(), 1u);
  EXPECT_GE(server.abandoned(), 1u)
      << "the wedged worker held queued work that must be accounted";
  {
    std::lock_guard<std::mutex> lock(mu);
    // Zero loss on the survivor: every healthy-shard submission that
    // was accepted got exactly one non-timeout response.
    EXPECT_EQ(ok_steps[healthy_sid], healthy_sent);
    // And the restarted session's digest position is exactly kTotal —
    // the re-driven suffix continued the recurrence, no duplicates.
    EXPECT_EQ(pool.shard(0).sessions().digest_of(wedged_sid).steps, kTotal);
  }

  // The recovered state is the TRUE continuation: an uninterrupted
  // oracle over the same token stream lands on the same digest.
  PoolConfig oracle_config;
  oracle_config.shards = 1;
  oracle_config.policy.max_batch = 8;
  oracle_config.policy.max_wait_us = 0;
  EnginePool oracle(cell_, pruner_, oracle_config);
  std::uint64_t oracle_served = 0;
  const ResponseSink oracle_sink = [&](const Response&) { ++oracle_served; };
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    Request r;
    r.session = wedged_sid;
    r.token = token_at(wedged_sid, i, cell_.input_dim());
    r.arrival_us = static_cast<std::int64_t>(i);
    r.seq = i;
    oracle.enqueue(r);
    oracle.flush(r.arrival_us, oracle_sink);
  }
  const SessionDigest want = oracle.shard(0).sessions().digest_of(wedged_sid);
  const SessionDigest got = pool.shard(0).sessions().digest_of(wedged_sid);
  EXPECT_EQ(want.steps, got.steps);
  EXPECT_EQ(want.digest, got.digest)
      << "restart + resume diverged from the uninterrupted recurrence";
}

TEST_F(SupervisorTest, WorkerWedgedInsideSinkIsFencedNotDoubleCounted) {
  // The nastier wedge: not parked at the cooperative checkpoint but
  // stuck INSIDE a response delivery, past the journal commit. The
  // abandon grace times out, the shard is rebuilt, and when the sink
  // finally unblocks the old thread must deliver only the response it
  // already held — everything after it hits the abandonment fence and
  // is accounted abandoned, never delivered twice and never counted
  // both responded and abandoned.
  store::MemEnv env;
  EnginePool pool(cell_, pruner_, journaled_config(1, env, "fence"));

  const SessionId a = 1, b = 2, c = 3;
  std::atomic<bool> block{false};
  std::atomic<bool> entered{false};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;

  std::mutex mu;
  std::map<SessionId, std::uint64_t> ok_count;
  std::vector<std::uint64_t> seqs;
  const ResponseSink sink = [&](const Response& r) {
    if (r.timed_out) return;
    if (block.load() && r.session == a) {
      entered.store(true);
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    std::lock_guard<std::mutex> lock(mu);
    ++ok_count[r.session];
    seqs.push_back(r.seq);
  };
  LiveServer server(pool, sink);

  // Phase 1: a committed prefix for all three sessions.
  constexpr std::uint64_t kBefore = 3;
  for (std::uint64_t i = 0; i < kBefore; ++i) {
    for (SessionId sid : {a, b, c}) {
      ASSERT_TRUE(
          server.submit(sid, token_at(sid, i, cell_.input_dim())).has_value());
    }
  }
  ASSERT_TRUE(wait_until([&] { return server.responded() >= 3 * kBefore; }));

  // Phase 2: park the worker so one batch accumulates all three
  // sessions, then let it serve — the batch commits to the journal,
  // and the FIRST delivery (session a; lane order is enqueue order)
  // blocks inside the sink. That thread is now wedged mid-delivery
  // holding one response, with b's and c's still undelivered.
  ShardWorker* old_worker = &server.worker(0);
  block.store(true);
  server.worker(0).wedge_for_testing();
  for (SessionId sid : {a, b, c}) {
    ASSERT_TRUE(
        server.submit(sid, token_at(sid, kBefore, cell_.input_dim()))
            .has_value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.worker(0).release_wedge();
  ASSERT_TRUE(wait_until([&] { return entered.load(); }));

  // Restart while the thread is stuck: abandon() must time out (the
  // grace is 200ms, the sink is blocked indefinitely) and the ledger
  // fold must be DEFERRED — the blocked response may yet land.
  server.restart_shard(0);
  EXPECT_EQ(server.restarts(), 1u);
  EXPECT_EQ(server.abandoned(), 0u)
      << "a wedged worker's inflight folded early double-counts the "
         "response still stuck in its sink";
  // The batch committed before delivery, so the rebuilt shard holds
  // every session at kBefore + 1.
  for (SessionId sid : {a, b, c}) {
    EXPECT_EQ(pool.shard(0).sessions().digest_of(sid).steps, kBefore + 1);
  }

  // Unblock. The old thread delivers the one response it held, the
  // fence suppresses b's and c's, and the thread exits cooperatively.
  block.store(false);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(wait_until([&] { return old_worker->exited(); }));

  // Phase 3: clients resume from the committed position (kBefore + 1)
  // and drive every session to kTotal on the fresh worker.
  constexpr std::uint64_t kTotal = kBefore + 3;
  for (std::uint64_t i = kBefore + 1; i < kTotal; ++i) {
    for (SessionId sid : {a, b, c}) {
      SubmitStatus status = SubmitStatus::kOk;
      while (!server.submit(sid, token_at(sid, i, cell_.input_dim()), 0,
                            &status)
                  .has_value()) {
        ASSERT_NE(status, SubmitStatus::kStopped);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  ASSERT_TRUE(wait_until([&] {
    for (SessionId sid : {a, b, c}) {
      if (pool.shard(0).sessions().digest_of(sid).steps != kTotal) return false;
    }
    return true;
  }));
  server.shutdown();

  // Exactly the two suppressed responses are abandoned, and the ledger
  // balances to the request.
  EXPECT_EQ(server.abandoned(), 2u);
  EXPECT_EQ(server.submitted(), server.responded() + server.abandoned());
  {
    std::lock_guard<std::mutex> lock(mu);
    // Per-session response counts: a's blocked delivery landed (late,
    // once); b and c each lost exactly the suppressed one.
    EXPECT_EQ(ok_count[a], kTotal);
    EXPECT_EQ(ok_count[b], kTotal - 1);
    EXPECT_EQ(ok_count[c], kTotal - 1);
    // No seq was ever answered twice.
    std::vector<std::uint64_t> sorted = seqs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate response seq — the fence failed";
  }

  // The recovered + resumed state is the true continuation.
  PoolConfig oracle_config;
  oracle_config.shards = 1;
  oracle_config.policy.max_batch = 8;
  oracle_config.policy.max_wait_us = 0;
  EnginePool oracle(cell_, pruner_, oracle_config);
  const ResponseSink oracle_sink = [](const Response&) {};
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    for (SessionId sid : {a, b, c}) {
      Request r;
      r.session = sid;
      r.token = token_at(sid, i, cell_.input_dim());
      r.arrival_us = static_cast<std::int64_t>(i);
      r.seq = i;
      oracle.enqueue(r);
    }
    oracle.flush(static_cast<std::int64_t>(i), oracle_sink);
  }
  for (SessionId sid : {a, b, c}) {
    const SessionDigest want = oracle.shard(0).sessions().digest_of(sid);
    const SessionDigest got = pool.shard(0).sessions().digest_of(sid);
    EXPECT_EQ(want.steps, got.steps);
    EXPECT_EQ(want.digest, got.digest)
        << "session " << sid << " diverged across the fenced restart";
  }
}

TEST_F(SupervisorTest, SlowSinkDeepBacklogIsBusyNotWedged) {
  // A healthy worker grinding a backlog through a slow sink can spend
  // far longer than the stall window inside ONE settle pass. The
  // heartbeat advances per response, so the watchdog must read it as
  // busy, never wedged — a false restart would abandon live work.
  PoolConfig config;
  config.shards = 1;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 100;
  EnginePool pool(cell_, pruner_, config);

  std::atomic<int> served{0};
  const ResponseSink sink = [&](const Response& r) {
    if (r.timed_out) return;
    // Slow consumer: 2ms per response. 60 responses ≈ 120ms of serving
    // inside one settle chain — three full stall windows.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    served.fetch_add(1);
  };
  LiveServer server(pool, sink);

  SupervisorConfig sup;
  sup.stall_ms = 40;
  sup.poll_ms = 5;
  Supervisor supervisor(server, sup);
  supervisor.start();

  // Park the worker so the whole load lands in one wakeup: 6 sessions
  // x 10 steps, same-session conflicts forcing ~10 chained batches.
  constexpr int kSessions = 6;
  constexpr std::uint64_t kSteps = 10;
  server.worker(0).wedge_for_testing();
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    for (int s = 1; s <= kSessions; ++s) {
      ASSERT_TRUE(server
                      .submit(static_cast<SessionId>(s),
                              token_at(static_cast<SessionId>(s), i,
                                       cell_.input_dim()))
                      .has_value());
    }
  }
  server.worker(0).release_wedge();
  const int want = kSessions * static_cast<int>(kSteps);
  ASSERT_TRUE(wait_until([&] { return served.load() >= want; }));

  supervisor.stop();
  server.shutdown();

  EXPECT_EQ(server.restarts(), 0u)
      << "busy-not-wedged: a slow sink must not trigger a restart";
  EXPECT_EQ(supervisor.restarts_triggered(), 0u);
  EXPECT_EQ(server.abandoned(), 0u);
  EXPECT_EQ(server.submitted(), server.responded());
}

TEST_F(SupervisorTest, RestartShardDirectlyIsIdempotentAndKeepsServing) {
  store::MemEnv env;
  EnginePool pool(cell_, pruner_, journaled_config(2, env, "direct"));
  std::atomic<int> served{0};
  LiveServer server(pool,
                    [&](const Response& r) {
                      if (!r.timed_out) served.fetch_add(1);
                    });

  SessionId sid0 = 1;
  while (pool.shard_of(sid0) != 0) ++sid0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        server.submit(sid0, token_at(sid0, i, cell_.input_dim())).has_value());
  }
  ASSERT_TRUE(wait_until([&] { return served.load() >= 5; }));

  server.restart_shard(0);
  EXPECT_EQ(server.restarts(), 1u);
  EXPECT_EQ(server.quarantined(), 0);
  EXPECT_EQ(pool.shard(0).sessions().digest_of(sid0).steps, 5u);

  // The replacement worker serves new work for the same session,
  // continuing from the recovered state.
  for (std::uint64_t i = 5; i < 8; ++i) {
    ASSERT_TRUE(
        server.submit(sid0, token_at(sid0, i, cell_.input_dim())).has_value());
  }
  ASSERT_TRUE(wait_until([&] {
    return pool.shard(0).sessions().digest_of(sid0).steps == 8;
  }));
  server.shutdown();
  EXPECT_EQ(server.submitted(), server.responded() + server.abandoned());

  // After shutdown, restart_shard is a refusal, not a crash.
  server.restart_shard(0);
  EXPECT_EQ(server.restarts(), 1u);
}

}  // namespace
}  // namespace zss::serve
