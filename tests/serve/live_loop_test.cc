#include "serve/worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/session.h"

// The real-time serving loop: persistent per-shard workers fed by
// multi-producer submission, graceful shutdown with in-flight work,
// and the SessionStore TTL/LRU eviction rules. None of the value
// assertions depend on timing — wake jitter moves batch boundaries,
// and the determinism guarantee makes boundaries value-neutral — so
// these tests run the real clock and still expect bitwise equality.
namespace zss::serve {
namespace {

using OutputLog = std::map<SessionId, std::vector<std::vector<float>>>;

/// Deterministic per-session token stream, shared by live runs and the
/// oracle so both see the same per-session request order.
num::Index token_at(SessionId session, std::uint64_t i, num::Index vocab) {
  return static_cast<num::Index>(
      num::splitmix64_mix(session * 1000003ULL + i) %
      static_cast<std::uint64_t>(vocab));
}

/// Spin-waits (with sleeps) until `done` or the deadline; returns done.
bool wait_until(const std::function<bool()>& done,
                std::chrono::seconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class LiveLoopTest : public ::testing::Test {
 protected:
  LiveLoopTest()
      : rng_(314159),
        cell_(/*input_dim=*/5, /*hidden_dim=*/16, rng_),
        pruner_(core::PrunerConfig::fixed(0.08f)) {}

  /// Ground truth for independent sessions: each session stepped alone
  /// from zero state through its own token stream.
  OutputLog oracle(const std::map<SessionId, std::uint64_t>& steps_per) {
    core::SparseLstmEngine engine(cell_, pruner_);
    OutputLog log;
    num::Matrix x(1, cell_.input_dim());
    for (const auto& [sid, steps] : steps_per) {
      num::Matrix h(1, cell_.hidden_dim(), 0.0f);
      num::Matrix c(1, cell_.hidden_dim(), 0.0f);
      for (std::uint64_t i = 0; i < steps; ++i) {
        x.fill(0.0f);
        x(0, token_at(sid, i, cell_.input_dim())) = 1.0f;
        engine.step(x, h, c);
        auto row = h.row(0);
        log[sid].emplace_back(row.begin(), row.end());
      }
    }
    return log;
  }

  num::Rng rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
};

TEST_F(LiveLoopTest, MultiProducerSubmissionMatchesOracleBitwise) {
  PoolConfig config;
  config.shards = 4;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 100;
  EnginePool pool(cell_, pruner_, config);

  std::mutex mu;
  OutputLog log;
  std::map<SessionId, std::uint64_t> last_seq;
  const ResponseSink sink = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, fresh] = last_seq.try_emplace(r.session, r.seq);
    if (!fresh) {
      EXPECT_GT(r.seq, it->second)
          << "session " << r.session << " served out of order";
      it->second = r.seq;
    }
    log[r.session].emplace_back(r.h.begin(), r.h.end());
  };

  LiveServer server(pool, sink);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerSession = 40;
  constexpr int kSessionsPerProducer = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Disjoint session sets; within a producer, session order is
      // interleaved so shards see mixed traffic.
      for (std::uint64_t i = 0; i < kPerSession; ++i) {
        for (int k = 0; k < kSessionsPerProducer; ++k) {
          const auto sid =
              static_cast<SessionId>(p * kSessionsPerProducer + k + 1);
          EXPECT_TRUE(
              server.submit(sid, token_at(sid, i, cell_.input_dim()))
                  .has_value());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.shutdown();

  const std::uint64_t expected =
      kProducers * kSessionsPerProducer * kPerSession;
  EXPECT_EQ(server.submitted(), expected);
  EXPECT_EQ(server.responded(), expected) << "lost or duplicated work";

  std::map<SessionId, std::uint64_t> steps_per;
  for (int s = 1; s <= kProducers * kSessionsPerProducer; ++s) {
    steps_per[static_cast<SessionId>(s)] = kPerSession;
  }
  EXPECT_EQ(log, oracle(steps_per))
      << "live outputs must be bitwise equal to each session served alone";
}

TEST_F(LiveLoopTest, GracefulShutdownDrainsInflightRequests) {
  PoolConfig config;
  config.shards = 2;
  config.policy.max_batch = 8;
  // An hour of max-wait: nothing would ever be served on a deadline,
  // so every undelivered response below must come from the shutdown
  // drain itself.
  config.policy.max_wait_us = 3'600'000'000LL;
  EnginePool pool(cell_, pruner_, config);

  std::atomic<int> responses{0};
  const ResponseSink sink = [&](const Response&) {
    responses.fetch_add(1, std::memory_order_relaxed);
  };
  LiveServer server(pool, sink);
  constexpr int kRequests = 300;
  for (int i = 0; i < kRequests; ++i) {
    // Many requests per session: same-session conflicts force small
    // batches, so plenty of work is still queued at shutdown.
    ASSERT_TRUE(server
                    .submit(static_cast<SessionId>(i % 5 + 1),
                            static_cast<num::Index>(i) % cell_.input_dim())
                    .has_value());
  }
  server.shutdown();
  EXPECT_EQ(responses.load(), kRequests)
      << "shutdown must drain every accepted request";
  EXPECT_EQ(server.responded(), static_cast<std::uint64_t>(kRequests));

  // After shutdown, submissions are refused — not silently dropped.
  EXPECT_FALSE(server.submit(1, 0).has_value());
}

TEST_F(LiveLoopTest, RecordedLiveRunReplaysBitIdentically) {
  PoolConfig config;
  config.shards = 4;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 50;
  EnginePool pool(cell_, pruner_, config);

  std::mutex mu;
  OutputLog live_log;
  const ResponseSink sink = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    live_log[r.session].emplace_back(r.h.begin(), r.h.end());
  };
  LiveConfig live;
  live.record = true;
  LiveServer server(pool, sink, live);

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 60; ++i) {
        const auto sid = static_cast<SessionId>(p * 4 + i % 4 + 1);
        server.submit(sid, token_at(sid, i, cell_.input_dim()));
        if (i % 16 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.shutdown();

  const std::vector<TraceEvent>& recorded = server.recorded_trace();
  ASSERT_EQ(recorded.size(), server.submitted());
  for (std::size_t i = 1; i < recorded.size(); ++i) {
    ASSERT_GE(recorded[i].arrival_us, recorded[i - 1].arrival_us)
        << "recorded stamps must be monotone (a valid trace)";
  }

  // The recorded run replayed through the virtual-clock path — fresh
  // pool, different shard count even — must reproduce the live values
  // bit for bit.
  PoolConfig replay_config = config;
  replay_config.shards = 2;
  EnginePool replay_pool(cell_, pruner_, replay_config);
  OutputLog replay_log;
  const ResponseSink replay_sink = [&](const Response& r) {
    replay_log[r.session].emplace_back(r.h.begin(), r.h.end());
  };
  replay(replay_pool, recorded, replay_sink);
  EXPECT_EQ(live_log, replay_log);
}

TEST_F(LiveLoopTest, FlushAllServesWithoutWaitingForDeadlines) {
  PoolConfig config;
  config.shards = 2;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 3'600'000'000LL;  // deadlines never fire
  EnginePool pool(cell_, pruner_, config);

  std::atomic<int> responses{0};
  const ResponseSink sink = [&](const Response&) {
    responses.fetch_add(1, std::memory_order_relaxed);
  };
  LiveServer server(pool, sink);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        server.submit(static_cast<SessionId>(i + 1), 0).has_value());
  }
  server.flush_all();
  EXPECT_TRUE(wait_until([&] { return responses.load() >= 3; }))
      << "flush_all must serve queued work without a deadline";
  server.shutdown();
}

TEST_F(LiveLoopTest, BackpressureShedsInsteadOfQueueingUnboundedly) {
  PoolConfig config;
  config.shards = 1;
  // No batch is ever due: the conflict-free prefix cannot reach 64 and
  // the deadline never fires, so the worker parks and the queue can
  // only grow — which makes the shed count below deterministic.
  config.policy.max_batch = 64;
  config.policy.max_wait_us = 3'600'000'000LL;
  EnginePool pool(cell_, pruner_, config);

  std::atomic<int> responses{0};
  const ResponseSink sink = [&](const Response&) {
    responses.fetch_add(1, std::memory_order_relaxed);
  };
  LiveConfig live;
  live.max_queue = 8;
  LiveServer server(pool, sink, live);

  std::uint64_t accepted = 0, shed = 0;
  for (int i = 0; i < 40; ++i) {
    if (server.submit(static_cast<SessionId>(i + 1), 0).has_value()) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 8u) << "exactly max_queue requests fit";
  EXPECT_EQ(shed, 32u);
  EXPECT_EQ(server.submitted(), accepted);
  EXPECT_EQ(server.shed(), shed);
  server.shutdown();
  EXPECT_EQ(server.responded(), accepted)
      << "every accepted request is still served exactly once";
}

// ---------------------------------------------------------------------
// SessionStore TTL / LRU eviction unit tests.

TEST(SessionStoreTtlTest, LazyTtlRestartsFromZeroStateOnGap) {
  SessionTtl ttl;
  ttl.ttl_us = 100;
  SessionStore store(/*hidden_dim=*/4, ttl);

  Session& s = store.get_or_create(7, /*arrival_us=*/0);
  s.h[0](0, 0) = 3.5f;
  s.c[0](0, 1) = -1.25f;
  s.steps = 5;

  // A gap of exactly ttl_us is NOT expiry (strictly-greater rule).
  Session& same = store.get_or_create(7, /*arrival_us=*/100);
  EXPECT_EQ(&same, &s);
  EXPECT_EQ(same.generation, 0u);
  EXPECT_EQ(same.h[0](0, 0), 3.5f) << "state must survive within the TTL";

  // One microsecond past the TTL: fresh conversation, same id.
  Session& reset = store.get_or_create(7, /*arrival_us=*/201);
  EXPECT_EQ(reset.generation, 1u);
  EXPECT_EQ(reset.steps, 0u);
  EXPECT_EQ(reset.h[0](0, 0), 0.0f);
  EXPECT_EQ(reset.c[0](0, 1), 0.0f);
  EXPECT_EQ(store.ttl_resets(), 1u);
  EXPECT_EQ(store.size(), 1) << "a TTL reset reuses the storage";
}

TEST(SessionStoreTtlTest, SweepFreesExactlyWhatLazyResetWouldRestart) {
  SessionTtl ttl;
  ttl.ttl_us = 100;
  SessionStore store(/*hidden_dim=*/4, ttl);
  store.get_or_create(1, 0);
  store.get_or_create(2, 50);
  store.get_or_create(3, 400);

  // At newest arrival 400: sessions 1 and 2 have gaps > 100, session 3
  // does not. Sweeping must free exactly the former.
  EXPECT_EQ(store.sweep_expired(400), 2);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
  ASSERT_NE(store.find(3), nullptr);
  EXPECT_EQ(store.size(), 1);

  // Value neutrality: the swept session re-registers with the same
  // zero state the lazy rule would have reset it to.
  Session& back = store.get_or_create(1, 450);
  EXPECT_EQ(back.h[0](0, 0), 0.0f);
  EXPECT_EQ(back.steps, 0u);
}

TEST(SessionStoreTtlTest, LruCapEvictsLeastRecentlyArrived) {
  SessionTtl ttl;
  ttl.max_sessions = 3;
  SessionStore store(/*hidden_dim=*/4, ttl);
  store.get_or_create(1, 0);
  store.get_or_create(2, 10);
  store.get_or_create(3, 20);
  store.get_or_create(1, 30);  // touch: 2 is now the LRU

  store.get_or_create(4, 40);  // at cap: must evict 2
  EXPECT_EQ(store.size(), 3);
  EXPECT_EQ(store.find(2), nullptr);
  EXPECT_NE(store.find(1), nullptr);
  EXPECT_NE(store.find(3), nullptr);
  EXPECT_NE(store.find(4), nullptr);
  EXPECT_EQ(store.evicted(), 1u);

  // The evicted session re-registers with fresh zero state.
  Session& back = store.get_or_create(2, 50);
  EXPECT_EQ(back.h[0](0, 0), 0.0f);
  EXPECT_EQ(store.find(3), nullptr) << "3 was the LRU this time";
}

TEST(SessionStoreTtlTest, PinnedSessionsAreNeverEvictedOrSwept) {
  SessionTtl ttl;
  ttl.ttl_us = 100;
  ttl.max_sessions = 2;
  SessionStore store(/*hidden_dim=*/4, ttl);
  Session& pinned = store.get_or_create(1, 0);
  pinned.pinned = true;
  store.get_or_create(2, 10);

  // Cap eviction must pass over the pinned LRU tail and take the next.
  store.get_or_create(3, 20);
  EXPECT_NE(store.find(1), nullptr) << "pinned session evicted at cap";
  EXPECT_EQ(store.find(2), nullptr);

  // The sweep must pass over it too, however expired it looks.
  EXPECT_EQ(store.sweep_expired(10'000), 1) << "only session 3 is sweepable";
  EXPECT_NE(store.find(1), nullptr) << "pinned session swept";

  pinned.pinned = false;
  EXPECT_EQ(store.sweep_expired(10'000), 1);
  EXPECT_EQ(store.find(1), nullptr);
}

TEST_F(LiveLoopTest, ShardServesFullBatchWhileEvictingAtCap) {
  // A shard at its session cap serving a full batch of brand-new
  // sessions: every lane creation evicts an old idle session, and no
  // lane of the in-flight batch is ever the victim.
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 0;
  SessionTtl ttl;
  ttl.max_sessions = 5;
  EngineShard shard(cell_, pruner_, policy, {}, ttl);

  std::uint64_t seq = 0;
  num::Index responses = 0;
  const ResponseSink sink = [&](const Response& r) {
    EXPECT_FALSE(r.h.empty());
    ++responses;
  };
  // Fill the store with 5 old sessions (ids 10..14).
  for (SessionId s = 10; s < 15; ++s) {
    Request r;
    r.session = s;
    r.token = 0;
    r.arrival_us = 0;
    r.seq = seq++;
    shard.enqueue(r);
  }
  shard.flush(0, sink);
  ASSERT_EQ(shard.sessions().size(), 5);

  // One full batch of 4 new sessions: 4 evictions, 4 creations, all
  // lanes served, store still at cap.
  for (SessionId s = 20; s < 24; ++s) {
    Request r;
    r.session = s;
    r.token = 1;
    r.arrival_us = 10;
    r.seq = seq++;
    shard.enqueue(r);
  }
  shard.flush(10, sink);
  EXPECT_EQ(responses, 9);
  EXPECT_EQ(shard.sessions().size(), 5);
  EXPECT_EQ(shard.sessions().evicted(), 4u);
  for (SessionId s = 20; s < 24; ++s) {
    EXPECT_NE(shard.sessions().find(s), nullptr)
        << "an in-flight lane was evicted by a later lane's creation";
  }
}

TEST_F(LiveLoopTest, LruEvictionIsIndependentOfBatchGrouping) {
  // The determinism contract's hardest case: a batch that contains a
  // new session (forcing an LRU eviction at the cap) AND the LRU-tail
  // session itself. Live serving and virtual-clock replay may group
  // these two requests differently (batch boundaries are never part of
  // the contract), so the eviction outcome must be identical whether
  // they share a batch or not — i.e. the tail is evicted and restarts
  // from zero exactly as a serial, request-at-a-time processor would
  // decide, never rescued by happening to share a batch with its
  // evictor. Outputs, generations and eviction counts must all match.
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 0;
  SessionTtl ttl;
  ttl.max_sessions = 5;

  struct Outcome {
    std::map<SessionId, std::vector<std::vector<float>>> rows;
    std::uint64_t evicted = 0;
    std::uint64_t tail_generation = 0;
    std::uint64_t tail_steps = 0;
  };
  // `split`: serve the [new 99, tail 10] pair as two batches instead
  // of one (what a replay with different wake timing can produce).
  const auto run = [&](bool split) {
    EngineShard shard(cell_, pruner_, policy, {}, ttl);
    Outcome out;
    const ResponseSink sink = [&](const Response& r) {
      auto row = r.h;
      out.rows[r.session].emplace_back(row.begin(), row.end());
    };
    std::uint64_t seq = 0;
    const auto push = [&](SessionId s, std::int64_t at) {
      Request r;
      r.session = s;
      r.token = 1;
      r.arrival_us = at;
      r.seq = seq++;
      shard.enqueue(r);
    };
    // Sessions 10..14, served [10,11,12,13] then [14]: LRU order is
    // 14 (front) .. 10 (tail), store exactly at the cap.
    for (SessionId s = 10; s < 15; ++s) push(s, 0);
    shard.flush(0, sink);
    // New session 99 then the tail 10 itself.
    push(99, 10);
    if (split) shard.flush(10, sink);
    push(10, 11);
    shard.flush(11, sink);
    out.evicted = shard.sessions().evicted();
    const Session* tail = shard.sessions().find(10);
    if (tail != nullptr) {
      out.tail_generation = tail->generation;
      out.tail_steps = tail->steps;
    }
    return out;
  };

  const Outcome one_batch = run(/*split=*/false);
  const Outcome two_batches = run(/*split=*/true);
  EXPECT_EQ(one_batch.rows, two_batches.rows)
      << "eviction outcome depends on batch grouping — live and replay "
         "would diverge";
  EXPECT_EQ(one_batch.evicted, two_batches.evicted);
  EXPECT_EQ(one_batch.tail_generation, two_batches.tail_generation);
  EXPECT_EQ(one_batch.tail_steps, two_batches.tail_steps);
  // And the serial semantics itself: 99's creation evicted the tail
  // (10), whose own later request restarted it from zero state — a
  // re-creation at the cap that evicted the next tail (11) in turn.
  EXPECT_EQ(two_batches.evicted, 2u);
  EXPECT_EQ(two_batches.tail_steps, 1u);
  EXPECT_EQ(two_batches.tail_generation, 0u);
}

TEST_F(LiveLoopTest, ShardTtlResetMatchesFreshSessionBitwise) {
  // Served through a shard, an expired session's continuation must be
  // bitwise identical to a brand-new session fed the same tokens.
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 0;
  SessionTtl ttl;
  ttl.ttl_us = 1000;

  auto run = [&](SessionId sid, std::int64_t t0,
                 EngineShard& shard) -> std::vector<float> {
    std::vector<float> last;
    const ResponseSink sink = [&](const Response& r) {
      last.assign(r.h.begin(), r.h.end());
    };
    for (int i = 0; i < 3; ++i) {
      Request r;
      r.session = sid;
      r.token = i;
      r.arrival_us = t0 + i;
      r.seq = static_cast<std::uint64_t>(t0 + i);
      shard.enqueue(r);
      shard.flush(r.arrival_us, sink);
    }
    return last;
  };

  EngineShard shard(cell_, pruner_, policy, {}, ttl);
  const std::vector<float> first = run(1, 0, shard);
  // Same session returns 5000us later: past the TTL, so it restarts —
  // and must match a fresh session served the same tokens exactly.
  const std::vector<float> after_gap = run(1, 5000, shard);
  EngineShard fresh_shard(cell_, pruner_, policy, {}, ttl);
  const std::vector<float> fresh = run(9, 0, fresh_shard);
  EXPECT_EQ(after_gap, fresh);
  EXPECT_EQ(after_gap, first) << "same tokens from zero state";
  EXPECT_EQ(shard.sessions().find(1)->generation, 1u);
}

}  // namespace
}  // namespace zss::serve
