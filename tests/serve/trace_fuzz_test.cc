#include "serve/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/protocol.h"
#include "store/io.h"
#include "../store/faulty_env.h"

// Randomized hardening of the serving determinism guarantee and the
// trace parser:
//   * ~50 seeded random traces (varying session counts, lengths and
//     interleavings), each replayed across shard counts {1,2,4},
//     max_batch {1,4,8} and sequential-vs-parallel drain — per-session
//     digests must be identical everywhere.
//   * Byte-level mutations of valid trace text fed through
//     serve::parse_trace / load_trace_file — every mutation must either
//     parse to a sane event list or be cleanly rejected with an error
//     message; crashing or silently mis-parsing is the failure mode
//     this fuzzer exists to catch.
// ZSS_SOAK=1 scales both fuzzers up (the ctest `soak` label).
namespace zss::serve {
namespace {

bool soak() { return std::getenv("ZSS_SOAK") != nullptr; }

struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = kFnvOffset;
};
using DigestTable = std::map<SessionId, SessionDigest>;

void fold(DigestTable& table, const Response& r) {
  SessionDigest& d = table[r.session];
  d.digest = fnv1a(d.digest, r.h.data(), r.h.size_bytes());
  ++d.steps;
}

/// One deterministic replay of `events`; `parallel` drains via one
/// thread per shard instead of the virtual clock (closed loop).
DigestTable run(const nn::LstmCell& cell, const core::StatePruner& pruner,
                const std::vector<TraceEvent>& events, num::Index shards,
                num::Index max_batch, bool parallel,
                SessionTtl ttl = {}) {
  PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 120;
  config.session_ttl = ttl;
  EnginePool pool(cell, pruner, config);
  if (!parallel) {
    DigestTable table;
    const ResponseSink sink = [&](const Response& r) { fold(table, r); };
    replay(pool, events, sink);
    return table;
  }
  std::uint64_t seq = 0;
  for (const TraceEvent& e : events) {
    Request r;
    r.session = e.session;
    r.token = e.token;
    r.arrival_us = e.arrival_us;
    r.seq = seq++;
    pool.enqueue(r);
  }
  // One digest table per shard thread; sessions are shard-pinned, so
  // merging after the join is collision-free.
  std::vector<DigestTable> tables(static_cast<std::size_t>(shards));
  std::vector<ResponseSink> sinks;
  for (num::Index s = 0; s < shards; ++s) {
    DigestTable& table = tables[static_cast<std::size_t>(s)];
    sinks.emplace_back([&table](const Response& r) { fold(table, r); });
  }
  const std::int64_t end =
      events.empty() ? 0 : events.back().arrival_us + 1'000'000;
  pool.drain_parallel(end, sinks);
  DigestTable merged;
  for (const DigestTable& t : tables) {
    for (const auto& [sid, d] : t) {
      EXPECT_EQ(merged.count(sid), 0u) << "session split across shards";
      merged[sid] = d;
    }
  }
  return merged;
}

TEST(TraceFuzzTest, DigestsIdenticalAcrossShardsBatchesAndDrainModes) {
  const int kTraces = soak() ? 200 : 50;
  num::Rng model_rng(20260729);
  const nn::LstmCell cell(/*input_dim=*/5, /*hidden_dim=*/12, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));

  for (int t = 0; t < kTraces; ++t) {
    num::Rng rng(static_cast<std::uint64_t>(t) * 7919 + 1);
    const auto sessions = static_cast<num::Index>(1 + rng.below(12));
    const auto requests = static_cast<num::Index>(20 + rng.below(100));
    const auto gap = static_cast<std::int64_t>(rng.below(250));
    auto events = synthetic_trace(requests, sessions, cell.input_dim(),
                                  gap, rng);
    // Inject bursts of back-to-back same-session arrivals so conflict
    // splits and re-queue ordering run on most traces.
    if (!events.empty() && t % 2 == 0) {
      for (int k = 0; k < 3; ++k) {
        TraceEvent e = events.back();
        e.token = static_cast<num::Index>(k) % cell.input_dim();
        events.push_back(e);
      }
    }

    const DigestTable reference =
        run(cell, pruner, events, /*shards=*/1, /*max_batch=*/1,
            /*parallel=*/false);
    ASSERT_EQ(reference.size(),
              static_cast<std::size_t>(
                  [&] {
                    std::map<SessionId, int> ids;
                    for (const auto& e : events) ids[e.session] = 1;
                    return ids.size();
                  }()))
        << "trace " << t;

    for (const num::Index shards : {num::Index{1}, num::Index{2},
                                    num::Index{4}}) {
      for (const num::Index mb :
           {num::Index{1}, num::Index{4}, num::Index{8}}) {
        const DigestTable got = run(cell, pruner, events, shards, mb,
                                    /*parallel=*/false);
        ASSERT_EQ(got.size(), reference.size()) << "trace " << t;
        for (const auto& [sid, d] : reference) {
          const auto it = got.find(sid);
          ASSERT_NE(it, got.end()) << "trace " << t << " session " << sid;
          EXPECT_EQ(it->second.digest, d.digest)
              << "trace " << t << " shards=" << shards << " mb=" << mb
              << " session " << sid;
          EXPECT_EQ(it->second.steps, d.steps);
        }
      }
    }

    // Sequential vs parallel drain at 4 shards (same grouping freedom,
    // different thread count — must not change one bit).
    const DigestTable par = run(cell, pruner, events, /*shards=*/4,
                                /*max_batch=*/8, /*parallel=*/true);
    // Grouping differs between the virtual-clock replay and the closed
    // loop, so compare parallel against its own sequential flush shape:
    // both are pure flushes of the same per-shard FIFO.
    PoolConfig config;
    config.shards = 4;
    config.policy.max_batch = 8;
    EnginePool pool(cell, pruner, config);
    std::uint64_t seqno = 0;
    for (const TraceEvent& e : events) {
      Request r;
      r.session = e.session;
      r.token = e.token;
      r.arrival_us = e.arrival_us;
      r.seq = seqno++;
      pool.enqueue(r);
    }
    DigestTable seq_flush;
    const ResponseSink sink = [&](const Response& r) { fold(seq_flush, r); };
    pool.flush(0, sink);
    EXPECT_EQ(par.size(), seq_flush.size()) << "trace " << t;
    for (const auto& [sid, d] : seq_flush) {
      ASSERT_TRUE(par.count(sid)) << "trace " << t;
      EXPECT_EQ(par.at(sid).digest, d.digest)
          << "trace " << t << " parallel-vs-sequential drain, session "
          << sid;
    }
    // And values are the batching-independent ones.
    for (const auto& [sid, d] : reference) {
      EXPECT_EQ(seq_flush.at(sid).digest, d.digest) << "trace " << t;
    }
  }
}

TEST(TraceFuzzTest, TtlResetsAreShardCountIndependent) {
  // Lazy TTL is decided per session from its own arrival gaps, so it
  // must be exactly as shard-count-invariant as the base guarantee.
  // (The LRU cap is per shard and deliberately not part of this claim —
  // docs/serving.md "Live mode".)
  const int kTraces = soak() ? 40 : 10;
  num::Rng model_rng(5551212);
  const nn::LstmCell cell(/*input_dim=*/4, /*hidden_dim=*/10, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));
  SessionTtl ttl;
  ttl.ttl_us = 400;  // of the order of the synthetic gaps: resets happen

  for (int t = 0; t < kTraces; ++t) {
    num::Rng rng(static_cast<std::uint64_t>(t) * 104729 + 3);
    const auto events = synthetic_trace(
        /*requests=*/static_cast<num::Index>(30 + rng.below(60)),
        /*sessions=*/static_cast<num::Index>(1 + rng.below(6)),
        cell.input_dim(), /*mean_gap_us=*/200, rng);
    const DigestTable one = run(cell, pruner, events, 1, 8, false, ttl);
    const DigestTable four = run(cell, pruner, events, 4, 8, false, ttl);
    ASSERT_EQ(one.size(), four.size()) << "trace " << t;
    for (const auto& [sid, d] : one) {
      EXPECT_EQ(four.at(sid).digest, d.digest)
          << "trace " << t << " session " << sid;
    }
    // The no-TTL digests must differ on at least some traces, or the
    // TTL never fired and this test is vacuous; checked in aggregate.
  }
}

TEST(TraceFuzzTest, EvictionIsBatchGroupingIndependent) {
  // With the LRU cap AND the TTL both active, per-session digests must
  // be identical at a fixed shard count regardless of max_batch and of
  // sequential-vs-parallel drain: batch grouping (and therefore sweep
  // timing) differs between live serving and virtual-clock replay, so
  // any grouping-dependence in the cap's count or victim choice is a
  // record/replay determinism break. (Shard count is pinned per
  // comparison — the cap is per shard and deliberately not
  // shard-count-invariant.)
  const int kTraces = soak() ? 40 : 12;
  num::Rng model_rng(909090);
  const nn::LstmCell cell(/*input_dim=*/4, /*hidden_dim=*/10, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));
  SessionTtl ttl;
  ttl.ttl_us = 400;       // fires against the ~200us synthetic gaps
  ttl.max_sessions = 9;   // must exceed the largest max_batch below

  std::uint64_t evictions = 0;
  for (int t = 0; t < kTraces; ++t) {
    num::Rng rng(static_cast<std::uint64_t>(t) * 52361 + 17);
    const auto events = synthetic_trace(
        /*requests=*/static_cast<num::Index>(80 + rng.below(120)),
        /*sessions=*/static_cast<num::Index>(12 + rng.below(8)),
        cell.input_dim(), /*mean_gap_us=*/200, rng);
    for (const num::Index shards : {num::Index{1}, num::Index{2}}) {
      const DigestTable reference =
          run(cell, pruner, events, shards, /*max_batch=*/1,
              /*parallel=*/false, ttl);
      for (const num::Index mb : {num::Index{4}, num::Index{8}}) {
        const DigestTable got =
            run(cell, pruner, events, shards, mb, /*parallel=*/false, ttl);
        ASSERT_EQ(got.size(), reference.size()) << "trace " << t;
        for (const auto& [sid, d] : reference) {
          EXPECT_EQ(got.at(sid).digest, d.digest)
              << "trace " << t << " shards=" << shards << " mb=" << mb
              << " session " << sid
              << ": eviction depends on batch grouping";
        }
      }
      const DigestTable par = run(cell, pruner, events, shards,
                                  /*max_batch=*/8, /*parallel=*/true, ttl);
      for (const auto& [sid, d] : reference) {
        EXPECT_EQ(par.at(sid).digest, d.digest)
            << "trace " << t << " shards=" << shards
            << " parallel drain, session " << sid;
      }
    }
    // Vacuity guard: the knobs must actually exercise the cap.
    PoolConfig config;
    config.shards = 1;
    config.policy.max_batch = 8;
    config.session_ttl = ttl;
    EnginePool pool(cell, pruner, config);
    const ResponseSink sink = [](const Response&) {};
    replay(pool, events, sink);
    evictions += pool.shard(0).sessions().evicted();
  }
  EXPECT_GT(evictions, 0u) << "cap knobs too loose: the grouping "
                              "invariance above never exercised an "
                              "eviction";
}

TEST(TraceFuzzTest, TtlActuallyFiresInTheFuzzTraces) {
  // Companion vacuity check for the test above: with the same knobs,
  // at least one trace must actually reset a session.
  num::Rng model_rng(5551212);
  const nn::LstmCell cell(4, 10, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));
  SessionTtl ttl;
  ttl.ttl_us = 400;
  std::uint64_t resets = 0;
  for (int t = 0; t < 10; ++t) {
    num::Rng rng(static_cast<std::uint64_t>(t) * 104729 + 3);
    const auto events = synthetic_trace(
        static_cast<num::Index>(30 + rng.below(60)),
        static_cast<num::Index>(1 + rng.below(6)), cell.input_dim(), 200,
        rng);
    PoolConfig config;
    config.shards = 2;
    config.session_ttl = ttl;
    EnginePool pool(cell, pruner, config);
    const ResponseSink sink = [](const Response&) {};
    replay(pool, events, sink);
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      resets += pool.shard(s).sessions().ttl_resets();
    }
  }
  EXPECT_GT(resets, 0u) << "TTL knobs too loose: the invariance test "
                           "above never exercised a reset";
}

TEST(TraceFuzzTest, SpillTierFaultSeedsNeverCrashOrLoseResponses) {
  // Seeded random traces served through a capped pool whose spill tier
  // runs on a misbehaving medium: random sync failures armed at open,
  // random bit rot injected into the segment files mid-trace. Whatever
  // the tier does under that abuse — restore, degrade to RAM-only,
  // fall back to fresh state on a bad CRC — serving must answer every
  // request and never crash; that is the graceful-degradation contract
  // (docs/store.md). Output values under injected corruption are
  // legitimately NOT oracle-identical; the no-fault identity is pinned
  // by spill_tiering_test.cc.
  const int kSeeds = soak() ? 60 : 15;
  num::Rng model_rng(77007);
  const nn::LstmCell cell(/*input_dim=*/4, /*hidden_dim=*/10, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));

  std::uint64_t corrupt_total = 0, degraded_shards = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    num::Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 11);
    auto events = synthetic_trace(
        /*requests=*/static_cast<num::Index>(120 + rng.below(120)),
        /*sessions=*/static_cast<num::Index>(14 + rng.below(10)),
        cell.input_dim(), /*mean_gap_us=*/150, rng);

    store::MemEnv mem;
    store::FaultInjectingEnv fenv(mem);
    fenv.on_open = [&](const std::string&, store::FaultyFile& f) {
      if (rng.bernoulli(0.3)) {
        f.fail_syncs(static_cast<int>(1 + rng.below(4)));
      }
    };

    PoolConfig config;
    config.shards = 2;
    config.policy.max_batch = 4;
    config.session_ttl.ttl_us = rng.bernoulli(0.5) ? 600 : -1;
    config.session_ttl.max_sessions = 6;
    config.spill.dir = "fz";
    config.spill.env = &fenv;
    config.spill.encoded = rng.bernoulli(0.5);
    EnginePool pool(cell, pruner, config);

    std::uint64_t responses = 0;
    const ResponseSink sink = [&](const Response&) { ++responses; };

    // First half, then bit rot in whatever the tier has written so
    // far, then the rest — restores after the flip hit damaged bytes.
    const std::size_t half = events.size() / 2;
    std::vector<TraceEvent> first(events.begin(),
                                  events.begin() +
                                      static_cast<std::ptrdiff_t>(half));
    std::vector<TraceEvent> second(events.begin() +
                                       static_cast<std::ptrdiff_t>(half),
                                   events.end());
    replay(pool, first, sink);
    for (const char* name : {"fz/shard_0.seg", "fz/shard_1.seg"}) {
      std::vector<std::uint8_t>* bytes = mem.bytes(name);
      if (bytes == nullptr || bytes->size() <= 20) continue;
      // Several flips past the 16-byte file header: live restores
      // re-verify each record's CRC, so any flip under a record that
      // is later restored must surface as kCorrupt, never bad bits.
      for (int k = 0; k < 8; ++k) {
        const auto off = static_cast<std::size_t>(
            16 + rng.below(static_cast<num::Index>(bytes->size() - 16)));
        (*bytes)[off] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
    }
    replay(pool, second, sink);

    EXPECT_EQ(responses, events.size()) << "seed " << seed;
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      corrupt_total += pool.shard(s).sessions().restore_corrupt();
      if (!pool.shard(s).sessions().spill_active()) ++degraded_shards;
    }
  }
  // Vacuity guards: across the seed set, the corruption path and the
  // write-error degradation path must both actually have fired.
  EXPECT_GT(corrupt_total, 0u) << "bit rot never hit a live restore";
  EXPECT_GT(degraded_shards, 0u) << "sync faults never degraded a shard";
}

// ---------------------------------------------------------------------
// Parser fuzz: mutated trace bytes must parse sanely or fail cleanly.

std::string valid_trace_text(num::Rng& rng) {
  const auto events = synthetic_trace(
      /*requests=*/static_cast<num::Index>(5 + rng.below(20)),
      /*sessions=*/4, /*vocab=*/9, /*mean_gap_us=*/100, rng);
  std::ostringstream out;
  write_trace(out, events);
  return out.str();
}

void check_parse_is_sane(const std::string& text) {
  std::istringstream in(text);
  std::vector<TraceEvent> events;
  std::string error;
  const bool ok = parse_trace(in, events, &error);
  if (!ok) {
    EXPECT_FALSE(error.empty()) << "rejection must say why";
    return;
  }
  // Accepted: the invariants replay depends on must actually hold.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].arrival_us, 0);
    EXPECT_GE(events[i].token, 0);
    if (i > 0) {
      EXPECT_GE(events[i].arrival_us, events[i - 1].arrival_us)
          << "parser accepted an unsorted trace";
    }
  }
}

TEST(TraceFuzzTest, MutatedTraceBytesNeverCrashTheParser) {
  const int kMutations = soak() ? 5000 : 600;
  num::Rng rng(0xfeedface);
  const std::string pool_chars = "0123456789 \t-#ex.\nq";
  for (int m = 0; m < kMutations; ++m) {
    std::string text = valid_trace_text(rng);
    // 1-4 random byte-level edits: truncate, insert, overwrite, or
    // delete a newline (the classic merged-events corruption).
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.below(static_cast<num::Index>(text.size())));
      switch (rng.below(4)) {
        case 0:
          text.resize(pos);  // truncate mid-anything
          break;
        case 1:
          text.insert(pos, 1,
                      pool_chars[static_cast<std::size_t>(rng.below(
                          static_cast<num::Index>(pool_chars.size())))]);
          break;
        case 2:
          text[pos] = pool_chars[static_cast<std::size_t>(rng.below(
              static_cast<num::Index>(pool_chars.size())))];
          break;
        default:
          if (const auto nl = text.find('\n', pos); nl != std::string::npos) {
            text.erase(nl, 1);
          }
          break;
      }
    }
    check_parse_is_sane(text);
  }
}

TEST(TraceFuzzTest, MalformedCorpusIsRejectedWithReasons) {
  const char* kBad[] = {
      "100 1",                                   // missing field
      "100 1 2 3",                               // trailing field
      "abc 1 2",                                 // non-numeric arrival
      "100 xyz 2",                               // non-numeric session
      "100 1 -3",                                // negative token
      "-100 1 2",                                // negative arrival
      "100 -7 2",                                // negative session (would
                                                 // wrap mod 2^64 via >>)
      "100 +7 2",                                // signed session
      "+100 7 2",                                // signed arrival
      "100 7 +2",                                // signed token
      "100 18446744073709551616 2",              // session overflow (2^64)
      "100 1 2\n50 1 2",                         // unsorted
      "1200 7 42 1300 8 5",                      // merged events
      "99999999999999999999999999999999 1 2",    // arrival overflow
      "100 1 99999999999999999999999999999999",  // token overflow
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    std::vector<TraceEvent> events;
    std::string error;
    EXPECT_FALSE(parse_trace(in, events, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // load_trace_file: a missing file is an error message, not a crash.
  std::vector<TraceEvent> events;
  std::string error;
  EXPECT_FALSE(load_trace_file("/nonexistent/zss_trace.txt", events, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace zss::serve
