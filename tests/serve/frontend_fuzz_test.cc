#include "serve/frontend.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/client.h"
#include "serve/trace.h"

// Seeded connect/disconnect storms against the epoll front end: clients
// arriving over UNIX and TCP, pipelining bursts with frames split at
// random byte offsets, reconnecting mid-stream, half-closing, and
// dropping dead without reading what they are owed. Two oracles:
//
//  * Routing/loss, client-side: every client owns a disjoint session
//    range, so any "ok" for a foreign session is a misrouted delivery;
//    clients that close politely (clean and half-open) account for
//    every line they sent — ok + err == sent, exactly. (Rude droppers
//    get no such promise: once a response write hits their dead socket
//    the connection is dropped and its unread input discarded.)
//
//  * Values, server-side: the recorded trace of the whole storm must
//    replay — virtual clock, fresh pool — to the exact digest table
//    the live run folded, at shard counts {1, 2, 4}. Whatever chaos
//    the connection layer absorbed, the computation is untouched.
//
// ZSS_SOAK=1 scales the storm up (the ctest `soak` label).
namespace zss::serve {
namespace {

bool soak() { return std::getenv("ZSS_SOAK") != nullptr; }

struct ClientTally {
  std::uint64_t sent = 0;      // step lines written (polite modes only)
  std::uint64_t oks = 0;       // responses received
  std::uint64_t errs = 0;      // sheds received
  std::uint64_t misrouted = 0; // oks for sessions this client never owned
  std::uint64_t orphaned = 0;  // polite client: sent - (oks + errs)
};

/// Writes `blob` in random-length chunks (1..40 bytes) so frame
/// boundaries land at arbitrary offsets, with occasional yields to let
/// the server observe genuinely partial lines.
void send_chopped(int fd, const std::string& blob, std::mt19937_64& rng) {
  std::size_t off = 0;
  while (off < blob.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        blob.size() - off, 1 + static_cast<std::size_t>(rng() % 40));
    if (::send(fd, blob.data() + off, chunk, MSG_NOSIGNAL) < 0) return;
    off += chunk;
    if (rng() % 4 == 0) std::this_thread::yield();
  }
}

class FrontendFuzzTest : public ::testing::Test {
 protected:
  FrontendFuzzTest()
      : rng_(161803),
        cell_(/*input_dim=*/5, /*hidden_dim=*/16, rng_),
        pruner_(core::PrunerConfig::fixed(0.08f)) {}

  num::Rng rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
};

/// One storm: `clients` threads × `lives` connections each, against a
/// frontend with `shards` shards and per-connection cap `max_queue`.
/// Returns via gtest assertions.
void run_storm(nn::LstmCell& cell, core::StatePruner& pruner,
               std::uint64_t seed, num::Index shards, num::Index max_queue,
               int clients, int lives, int max_burst) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " shards=" + std::to_string(shards) +
               " max_queue=" + std::to_string(max_queue));

  PoolConfig pc;
  pc.shards = shards;
  pc.policy.max_batch = 8;
  pc.policy.max_wait_us = 200;
  EnginePool pool(cell, pruner, pc);

  FrontendConfig fc;
  fc.unix_path = "/tmp/zss_frontend_fuzz_" + std::to_string(::getpid()) + "_" +
                 std::to_string(seed) + ".sock";
  fc.tcp_port = 0;
  fc.max_queue = max_queue;
  LiveConfig live;
  live.record = true;
  Frontend frontend(pool, fc, live);
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 7919 + static_cast<std::uint64_t>(t));
      ClientTally& tally = tallies[static_cast<std::size_t>(t)];
      // Disjoint ownership: sessions [base, base+7] belong to thread t
      // alone, across all of its reconnects.
      const SessionId base = static_cast<SessionId>(100 * t + 1);

      for (int life = 0; life < lives; ++life) {
        ClientConn c;
        std::string err;
        const bool ok = (rng() % 2 == 0)
                            ? c.connect_unix(fc.unix_path, &err)
                            : c.connect_tcp("127.0.0.1", frontend.tcp_port(),
                                            &err);
        if (!ok) {
          ADD_FAILURE() << "connect: " << err;
          return;
        }
        std::string line;
        if (!c.read_line(&line, 10000)) {
          ADD_FAILURE() << "no greeting";
          return;
        }

        // mode 0: clean (read everything owed, close)
        // mode 1: half-open (shutdown write, drain to EOF, close)
        // mode 2: rude (drop dead mid-request, no accounting)
        const int mode = static_cast<int>(rng() % 3);
        const int burst = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(max_burst));
        std::string blob;
        for (int i = 0; i < burst; ++i) {
          const SessionId sid = base + static_cast<SessionId>(rng() % 8);
          blob += "step " + std::to_string(sid) + " " +
                  std::to_string(rng() % 5) + "\n";
          if (rng() % 16 == 0) blob += "flush\n";
        }
        send_chopped(c.fd(), blob, rng);
        if (mode != 2) tally.sent += static_cast<std::uint64_t>(burst);

        auto consume = [&](const std::string& l) {
          if (l.rfind("ok ", 0) == 0) {
            unsigned long long sid = 0;
            if (std::sscanf(l.c_str(), "ok %llu", &sid) == 1 &&
                (sid < base || sid >= base + 8)) {
              ++tally.misrouted;
            }
            ++tally.oks;
          } else if (l.rfind("err ", 0) == 0) {
            ++tally.errs;
          }
        };

        if (mode == 2) {
          // Rude: maybe skim a few lines, then vanish.
          const int skim = static_cast<int>(rng() % 3);
          for (int i = 0; i < skim && c.read_line(&line, 100); ++i) {
            if (line.rfind("ok ", 0) == 0) {
              unsigned long long sid = 0;
              if (std::sscanf(line.c_str(), "ok %llu", &sid) == 1 &&
                  (sid < base || sid >= base + 8)) {
                ++tally.misrouted;
              }
            }
          }
          c.close();
          continue;
        }

        if (mode == 1) {
          c.shutdown_write();
          // Owed responses must all arrive before the server closes
          // the half-open stream.
          while (c.read_line(&line, 10000)) consume(line);
          if (!c.eof()) {
            ADD_FAILURE() << "half-open drain timed out";
            return;
          }
          c.close();
          continue;
        }

        // Clean: read until every sent line is answered (ok or err).
        std::uint64_t owed = static_cast<std::uint64_t>(burst);
        while (owed > 0) {
          if (!c.read_line(&line, 10000)) {
            tally.orphaned += owed;
            break;
          }
          if (line.rfind("ok ", 0) == 0 || line.rfind("err ", 0) == 0) --owed;
          consume(line);
        }
        c.close();
      }
    });
  }
  for (auto& th : threads) th.join();
  frontend.stop();
  frontend.join();

  std::uint64_t sent = 0, oks = 0, errs = 0;
  for (int t = 0; t < clients; ++t) {
    const ClientTally& tally = tallies[static_cast<std::size_t>(t)];
    EXPECT_EQ(tally.misrouted, 0u)
        << "client " << t << " received another client's response";
    EXPECT_EQ(tally.orphaned, 0u)
        << "client " << t << " closed politely but was owed responses";
    sent += tally.sent;
    oks += tally.oks;
    errs += tally.errs;
  }
  // Polite clients' global books balance too (their own per-connection
  // loops already proved the per-client version).
  EXPECT_EQ(oks + errs, sent) << "responses lost or duplicated";

  // Server-side truth: the storm's recording replays to the identical
  // digest table at every shard count — connection chaos never reaches
  // the computation.
  const DigestTable live_digests = frontend.digests();
  EXPECT_GT(live_digests.size(), 0u);
  for (const num::Index replay_shards : {num::Index{1}, num::Index{2},
                                         num::Index{4}}) {
    PoolConfig rpc;
    rpc.shards = replay_shards;
    rpc.policy.max_batch = 8;
    rpc.policy.max_wait_us = 200;
    EnginePool replay_pool(cell, pruner, rpc);
    DigestTable replayed;
    const ResponseSink sink = [&](const Response& r) {
      fold_response(replayed, r);
    };
    replay(replay_pool, frontend.server().recorded_trace(), sink);
    EXPECT_EQ(live_digests, replayed)
        << "live multiplexed run vs replay at " << replay_shards << " shards";
  }
  ::unlink(fc.unix_path.c_str());
}

TEST_F(FrontendFuzzTest, ChurnStormsReplayIdenticallyAcrossShardCounts) {
  const int kRounds = soak() ? 12 : 4;
  const int kClients = soak() ? 12 : 6;
  const int kLives = soak() ? 8 : 4;
  const int kMaxBurst = soak() ? 40 : 20;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = 0xfe2d0000u + static_cast<std::uint64_t>(round);
    const num::Index shards = (round % 3 == 0) ? 1 : (round % 3 == 1) ? 2 : 4;
    const num::Index max_queue = (round % 2 == 0) ? 0 : 3;
    run_storm(cell_, pruner_, seed, shards, max_queue, kClients, kLives,
              kMaxBurst);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Same storm, but the server is torn down by stop() (the SIGINT path)
// while clients are still mid-burst: everything accepted before the
// cutoff must still drain, replay, and balance — a shutdown race must
// never corrupt the recording.
TEST_F(FrontendFuzzTest, StopDuringStormKeepsRecordingReplayable) {
  const int kRounds = soak() ? 8 : 3;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = 0xab700000u + static_cast<std::uint64_t>(round);
    PoolConfig pc;
    pc.shards = 2;
    pc.policy.max_batch = 8;
    pc.policy.max_wait_us = 200;
    EnginePool pool(cell_, pruner_, pc);
    FrontendConfig fc;
    fc.unix_path = "/tmp/zss_frontend_fuzz_stop_" +
                   std::to_string(::getpid()) + "_" + std::to_string(round) +
                   ".sock";
    LiveConfig live;
    live.record = true;
    Frontend frontend(pool, fc, live);
    std::string error;
    ASSERT_TRUE(frontend.start(&error)) << error;

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
        for (int life = 0; life < 50; ++life) {
          ClientConn c;
          if (!c.connect_unix(fc.unix_path)) return;  // listener gone: done
          std::string blob, line;
          if (!c.read_line(&line, 2000)) return;
          for (int i = 0; i < 8; ++i) {
            blob += "step " + std::to_string(200 + t) + " " +
                    std::to_string(rng() % 5) + "\n";
          }
          send_chopped(c.fd(), blob, rng);
          // Read whatever comes until the server says bye or hangs up.
          while (c.read_line(&line, 2000)) {
            if (line.rfind("bye ", 0) == 0) return;
          }
          if (c.eof()) continue;  // dropped during shutdown: reconnect
        }
      });
    }
    // Cut the storm off mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    frontend.stop();
    frontend.join();
    for (auto& th : threads) th.join();

    ASSERT_EQ(frontend.server().responded(), frontend.server().submitted());
    DigestTable replayed;
    EnginePool replay_pool(cell_, pruner_, pc);
    const ResponseSink sink = [&](const Response& r) {
      fold_response(replayed, r);
    };
    replay(replay_pool, frontend.server().recorded_trace(), sink);
    EXPECT_EQ(frontend.digests(), replayed) << "round " << round;
    ::unlink(fc.unix_path.c_str());
  }
}

}  // namespace
}  // namespace zss::serve
