#include "serve/frontend.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/client.h"
#include "serve/trace.h"

// The epoll front end's correctness obligations, each pinned by a
// deterministic test: responses route only to their issuing
// connection, frame boundaries may fall anywhere (split at every byte
// offset), a stalled reader never stalls anyone else, shedding is
// per-client and fair, half-open connections drain what they are
// owed, socket files are reclaimed/refused/unlinked correctly, fd and
// SIGPIPE hygiene survive churn, and `quit` says bye to everyone.
// The seeded churn storms live in frontend_fuzz_test.cc.
namespace zss::serve {
namespace {

/// Spin-waits (with sleeps) until `done` or the deadline; returns done.
bool wait_until(const std::function<bool()>& done,
                std::chrono::seconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Open descriptors of this process (for the fd-leak regression).
int open_fds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n - 3;  // ".", "..", and the opendir fd itself
}

struct OkLine {
  SessionId session = 0;
  std::uint64_t seq = 0;
};

/// Parses an "ok <session> <seq> <batch> <digest>" line.
bool parse_ok(const std::string& line, OkLine& out) {
  unsigned long long session = 0, seq = 0, batch = 0;
  char digest[32];
  if (std::sscanf(line.c_str(), "ok %llu %llu %llu %31s", &session, &seq,
                  &batch, digest) != 4) {
    return false;
  }
  out.session = session;
  out.seq = seq;
  return true;
}

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : rng_(271828),
        cell_(/*input_dim=*/5, /*hidden_dim=*/16, rng_),
        pruner_(core::PrunerConfig::fixed(0.08f)) {}

  ~FrontendTest() override { ::unlink(sock_path_.c_str()); }

  PoolConfig pool_config(num::Index shards = 2,
                         std::int64_t max_wait_us = 200) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = 8;
    config.policy.max_wait_us = max_wait_us;
    return config;
  }

  /// Per-test-unique socket path (tests run in one process; a counter
  /// keeps paths distinct across tests and fixture reuses).
  std::string unique_sock() {
    static int counter = 0;
    sock_path_ = "/tmp/zss_frontend_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(++counter) + ".sock";
    return sock_path_;
  }

  /// Connects over UNIX and consumes the "hi <conn>" greeting.
  ClientConn connect_greet(const std::string& path) {
    ClientConn c;
    std::string error;
    EXPECT_TRUE(c.connect_unix(path, &error)) << error;
    std::string line;
    EXPECT_TRUE(c.read_line(&line, 5000));
    EXPECT_EQ(line.rfind("hi ", 0), 0u) << line;
    return c;
  }

  num::Rng rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
  std::string sock_path_;
};

// Four concurrent clients (two UNIX, two TCP) with disjoint sessions:
// every response must arrive at exactly the connection that issued its
// request, and the recorded trace must replay to the identical digest
// table — the front end changed who receives lines, not what is
// computed.
TEST_F(FrontendTest, RoutesResponsesToIssuingConnectionOnly) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  fc.tcp_port = 0;  // ephemeral
  LiveConfig live;
  live.record = true;
  Frontend frontend(pool, fc, live);
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::vector<std::vector<OkLine>> got(kClients);
  std::vector<std::thread> threads;
  for (int k = 0; k < kClients; ++k) {
    threads.emplace_back([&, k] {
      ClientConn c;
      std::string err;
      const bool ok = (k % 2 == 0)
                          ? c.connect_unix(fc.unix_path, &err)
                          : c.connect_tcp("127.0.0.1", frontend.tcp_port(), &err);
      ASSERT_TRUE(ok) << err;
      std::string line;
      ASSERT_TRUE(c.read_line(&line, 5000));
      // Sessions 10k+1 .. 10k+3, pipelined without reading in between.
      for (int i = 0; i < kPerClient; ++i) {
        const SessionId sid = static_cast<SessionId>(10 * k + 1 + i % 3);
        ASSERT_TRUE(c.send_line("step " + std::to_string(sid) + " " +
                                std::to_string(i % 5)));
      }
      while (got[static_cast<std::size_t>(k)].size() <
             static_cast<std::size_t>(kPerClient)) {
        ASSERT_TRUE(c.read_line(&line, 5000)) << "timed out waiting for ok";
        OkLine okl;
        ASSERT_TRUE(parse_ok(line, okl)) << line;
        got[static_cast<std::size_t>(k)].push_back(okl);
      }
    });
  }
  for (auto& t : threads) t.join();
  frontend.stop();
  frontend.join();

  for (int k = 0; k < kClients; ++k) {
    std::uint64_t last_seq_per[3] = {0, 0, 0};
    bool seen[3] = {false, false, false};
    for (const OkLine& okl : got[static_cast<std::size_t>(k)]) {
      // Routing: a response for a session this client never opened is
      // a cross-connection delivery.
      ASSERT_GE(okl.session, static_cast<SessionId>(10 * k + 1));
      ASSERT_LE(okl.session, static_cast<SessionId>(10 * k + 3));
      const auto slot = static_cast<std::size_t>(okl.session - 1 -
                                                 static_cast<SessionId>(10 * k));
      if (seen[slot]) {
        EXPECT_GT(okl.seq, last_seq_per[slot]) << "out of order";
      }
      seen[slot] = true;
      last_seq_per[slot] = okl.seq;
    }
  }
  EXPECT_EQ(frontend.server().submitted(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(frontend.stats().dropped_responses, 0u);

  // Record/replay: the live multiplexed run and a fresh replay of its
  // recording (different shard count, even) print one digest table.
  EnginePool replay_pool(cell_, pruner_, pool_config(/*shards=*/4));
  DigestTable replayed;
  const ResponseSink sink = [&](const Response& r) {
    fold_response(replayed, r);
  };
  replay(replay_pool, frontend.server().recorded_trace(), sink);
  EXPECT_EQ(frontend.digests(), replayed);
}

// A frame boundary may fall at any byte: split a pipelined multi-line
// request at every offset, delivered in two raw writes, and expect the
// same responses every time. Also drips the whole blob one byte at a
// time.
TEST_F(FrontendTest, FrameBoundarySplitAtEveryByteOffset) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  const std::string blob = "step 11 1\nstep 12 2\r\nflush\n";
  auto expect_two_oks = [&](ClientConn& c) {
    bool saw11 = false, saw12 = false;
    for (int i = 0; i < 2; ++i) {
      std::string line;
      ASSERT_TRUE(c.read_line(&line, 5000));
      OkLine okl;
      ASSERT_TRUE(parse_ok(line, okl)) << line;
      saw11 |= okl.session == 11;
      saw12 |= okl.session == 12;
    }
    EXPECT_TRUE(saw11 && saw12);
  };

  for (std::size_t split = 1; split < blob.size(); ++split) {
    ClientConn c = connect_greet(fc.unix_path);
    ASSERT_EQ(::send(c.fd(), blob.data(), split, MSG_NOSIGNAL),
              static_cast<ssize_t>(split));
    // Let the server read (and act on) the partial frame first.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(::send(c.fd(), blob.data() + split, blob.size() - split,
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(blob.size() - split));
    expect_two_oks(c);
  }
  {
    ClientConn c = connect_greet(fc.unix_path);
    for (const char ch : blob) {
      ASSERT_EQ(::send(c.fd(), &ch, 1, MSG_NOSIGNAL), 1);
    }
    expect_two_oks(c);
  }

  frontend.stop();
  frontend.join();
}

// One connection that stops reading accumulates output in its own
// queue (and past max_write_buffer stops being read — backpressure),
// but a second connection keeps doing prompt round trips throughout.
// When the stalled reader finally drains, it gets everything it is
// owed.
TEST_F(FrontendTest, SlowReaderDoesNotStallOtherConnections) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  fc.max_write_buffer = 512;  // tiny: backpressure engages immediately
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  constexpr int kStalledSteps = 200;
  ClientConn stalled = connect_greet(fc.unix_path);
  for (int i = 0; i < kStalledSteps; ++i) {
    ASSERT_TRUE(stalled.send_line("step 77 " + std::to_string(i % 5)));
  }
  // Do NOT read `stalled` yet: its responses pile up server-side.

  ClientConn live = connect_greet(fc.unix_path);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(live.send_line("step 88 " + std::to_string(i % 5)));
    std::string line;
    ASSERT_TRUE(live.read_line(&line, 5000))
        << "round trip " << i << " stalled behind the slow reader";
    OkLine okl;
    ASSERT_TRUE(parse_ok(line, okl)) << line;
    EXPECT_EQ(okl.session, 88u);
  }

  int oks = 0;
  std::string line;
  while (oks < kStalledSteps) {
    ASSERT_TRUE(stalled.read_line(&line, 5000)) << "owed response missing";
    OkLine okl;
    ASSERT_TRUE(parse_ok(line, okl)) << line;
    EXPECT_EQ(okl.session, 77u);
    ++oks;
  }

  frontend.stop();
  frontend.join();
  EXPECT_EQ(frontend.server().submitted(),
            static_cast<std::uint64_t>(kStalledSteps + 20));
  EXPECT_GE(frontend.stats().read_pauses, 1u)
      << "tiny max_write_buffer never engaged backpressure";
}

// Per-connection shedding is fair: a client at its in-flight cap sheds
// deterministically (huge max-wait defers all serving to the explicit
// flush, so in-flight counts are exact), and an idle client's request
// is untouched by its neighbor's overload.
TEST_F(FrontendTest, PerConnectionSheddingIsFairAndDeterministic) {
  EnginePool pool(cell_, pruner_,
                  pool_config(/*shards=*/2, /*max_wait_us=*/3'600'000'000LL));
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  fc.max_queue = 2;
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  ClientConn a = connect_greet(fc.unix_path);
  ClientConn b = connect_greet(fc.unix_path);

  // A pipelines 5 steps in one write: 2 accepted (cap), 3 shed — and
  // the 3 err lines arrive before any ok (nothing serves pre-flush).
  std::string blob;
  for (int i = 0; i < 5; ++i) {
    blob += "step 5 " + std::to_string(i % 5) + "\n";
  }
  ASSERT_EQ(::send(a.fd(), blob.data(), blob.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(blob.size()));
  for (int i = 0; i < 3; ++i) {
    std::string line;
    ASSERT_TRUE(a.read_line(&line, 5000));
    EXPECT_EQ(line.rfind("err ", 0), 0u) << line;
  }

  // B is under its own cap: accepted, no shed.
  ASSERT_TRUE(b.send_line("step 6 0"));
  ASSERT_TRUE(b.send_line("flush"));

  std::string line;
  ASSERT_TRUE(b.read_line(&line, 5000));
  OkLine okl;
  ASSERT_TRUE(parse_ok(line, okl)) << line;
  EXPECT_EQ(okl.session, 6u);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(a.read_line(&line, 5000));
    ASSERT_TRUE(parse_ok(line, okl)) << line;
    EXPECT_EQ(okl.session, 5u);
  }

  frontend.stop();
  frontend.join();
  EXPECT_EQ(frontend.stats().shed, 3u);
  EXPECT_EQ(frontend.server().submitted(), 3u);
}

// A half-closed connection (client shutdown(SHUT_WR), still reading)
// is owed its in-flight responses: the front end must hold the
// connection open until they are delivered, then close it.
TEST_F(FrontendTest, HalfOpenConnectionDrainsOwedResponses) {
  EnginePool pool(cell_, pruner_,
                  pool_config(/*shards=*/2, /*max_wait_us=*/3'600'000'000LL));
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  ClientConn half = connect_greet(fc.unix_path);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(half.send_line("step 21 " + std::to_string(i)));
  }
  half.shutdown_write();  // EOF at the server; 3 responses still owed

  // A second client triggers serving; the half-open one must still get
  // its responses.
  ClientConn other = connect_greet(fc.unix_path);
  ASSERT_TRUE(other.send_line("flush"));

  for (int i = 0; i < 3; ++i) {
    std::string line;
    ASSERT_TRUE(half.read_line(&line, 5000)) << "owed response " << i;
    OkLine okl;
    ASSERT_TRUE(parse_ok(line, okl)) << line;
    EXPECT_EQ(okl.session, 21u);
  }
  // Nothing more owed: the server closes the drained half-open stream.
  std::string line;
  EXPECT_FALSE(half.read_line(&line, 5000));
  EXPECT_TRUE(half.eof());

  frontend.stop();
  frontend.join();
  EXPECT_EQ(frontend.stats().dropped_responses, 0u);
}

// A stale socket file (previous run died without unlinking) is
// reclaimed; the path is unlinked again on graceful stop.
TEST_F(FrontendTest, StaleSocketReclaimedAndUnlinkedOnStop) {
  const std::string path = unique_sock();
  {
    // Manufacture the stale file: bind and abandon without unlinking.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);
  }
  struct stat st{};
  ASSERT_EQ(::lstat(path.c_str(), &st), 0) << "stale socket not set up";

  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = path;
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << "stale socket not reclaimed: "
                                      << error;
  ClientConn c = connect_greet(path);  // proves the new listener is live
  c.close();
  frontend.stop();
  frontend.join();
  EXPECT_NE(::lstat(path.c_str(), &st), 0)
      << "socket file leaked after graceful stop";
}

// A non-socket file at the path is a startup refusal, never deleted.
TEST_F(FrontendTest, RefusesToReplaceNonSocketFile) {
  const std::string path = unique_sock();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("precious\n", f);
    std::fclose(f);
  }
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = path;
  Frontend frontend(pool, fc, {});
  std::string error;
  EXPECT_FALSE(frontend.start(&error));
  EXPECT_NE(error.find("non-socket"), std::string::npos) << error;
  struct stat st{};
  ASSERT_EQ(::lstat(path.c_str(), &st), 0) << "file was deleted";
  EXPECT_TRUE(S_ISREG(st.st_mode));
}

// Connection churn — clean closes, abrupt closes, shed requests,
// mid-request drops — leaks no file descriptors.
TEST_F(FrontendTest, ConnectionChurnLeaksNoFds) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  fc.max_queue = 2;
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  const int baseline = open_fds();
  ASSERT_GT(baseline, 0);

  for (int round = 0; round < 50; ++round) {
    ClientConn c = connect_greet(fc.unix_path);
    switch (round % 4) {
      case 0:  // clean: request, read, close
        ASSERT_TRUE(c.send_line("step 31 1"));
        {
          std::string line;
          ASSERT_TRUE(c.read_line(&line, 5000));
        }
        break;
      case 1:  // drop with a request in flight (response owed to a corpse)
        ASSERT_TRUE(c.send_line("step 32 1"));
        break;
      case 2:  // over the cap, then drop without reading the errs
        for (int i = 0; i < 5; ++i) {
          ASSERT_TRUE(c.send_line("step 33 1"));
        }
        break;
      case 3:  // connect and vanish without a word
        break;
    }
    c.close();
  }

  // The event loop reaps closed connections asynchronously.
  EXPECT_TRUE(wait_until([&] { return open_fds() <= baseline; }))
      << "fd count " << open_fds() << " never returned to " << baseline;

  frontend.stop();
  frontend.join();
  EXPECT_EQ(frontend.stats().accepted, 50u);
  EXPECT_EQ(frontend.stats().disconnected, 50u);
}

// Writing a response to a connection whose reader already vanished
// must not raise SIGPIPE even with the default disposition (the front
// end sends with MSG_NOSIGNAL per connection; it cannot rely on the
// host process ignoring the signal).
TEST_F(FrontendTest, NoSigpipeWithDefaultDisposition) {
  struct sigaction old{};
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ASSERT_EQ(::sigaction(SIGPIPE, &dfl, &old), 0);

  {
    EnginePool pool(cell_, pruner_, pool_config());
    FrontendConfig fc;
    fc.unix_path = unique_sock();
    Frontend frontend(pool, fc, {});
    std::string error;
    ASSERT_TRUE(frontend.start(&error)) << error;

    for (int round = 0; round < 10; ++round) {
      ClientConn c = connect_greet(fc.unix_path);
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(c.send_line("step 41 " + std::to_string(i % 5)));
      }
      c.close();  // responses land on a dead peer → EPIPE, not SIGPIPE
    }
    EXPECT_TRUE(wait_until([&] {
      return frontend.server().responded() == frontend.server().submitted();
    }));
    frontend.stop();
    frontend.join();
    // Surviving to this line IS the assertion (SIG_DFL would have
    // killed the process). No exact count: once a response write hits
    // the dead peer (EPIPE) the connection is dropped and its unread
    // pipelined lines are legitimately discarded.
    EXPECT_GT(frontend.server().submitted(), 0u);
    EXPECT_LE(frontend.server().submitted(), 80u);
  }

  ASSERT_EQ(::sigaction(SIGPIPE, &old, nullptr), 0);
}

// A `quit` from any client drains every in-flight request and sends
// every connected client a final `bye` before closing its stream.
TEST_F(FrontendTest, QuitBroadcastsByeToEveryClient) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  ClientConn a = connect_greet(fc.unix_path);
  ClientConn b = connect_greet(fc.unix_path);
  ClientConn c = connect_greet(fc.unix_path);
  ASSERT_TRUE(a.send_line("step 51 1"));
  ASSERT_TRUE(b.send_line("step 52 2"));
  ASSERT_TRUE(c.send_line("quit"));

  auto last_line_is_bye = [](ClientConn& conn) {
    std::string line, last;
    while (conn.read_line(&line, 5000)) last = line;
    EXPECT_TRUE(conn.eof());
    EXPECT_EQ(last.rfind("bye ", 0), 0u) << "last line: " << last;
  };
  last_line_is_bye(a);
  last_line_is_bye(b);
  last_line_is_bye(c);

  frontend.join();
  EXPECT_EQ(frontend.server().responded(), 2u);
  EXPECT_EQ(frontend.stats().dropped_responses, 0u);
}

// A line longer than max_line without a newline is a protocol
// violation: err, drain, close — and the neighbor connection keeps
// being served.
TEST_F(FrontendTest, OversizeLineRejectedWithoutCollateralDamage) {
  EnginePool pool(cell_, pruner_, pool_config());
  FrontendConfig fc;
  fc.unix_path = unique_sock();
  fc.max_line = 64;
  Frontend frontend(pool, fc, {});
  std::string error;
  ASSERT_TRUE(frontend.start(&error)) << error;

  ClientConn bad = connect_greet(fc.unix_path);
  ClientConn good = connect_greet(fc.unix_path);

  const std::string noise(200, 'x');  // no newline anywhere
  ASSERT_EQ(::send(bad.fd(), noise.data(), noise.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(noise.size()));
  std::string line;
  ASSERT_TRUE(bad.read_line(&line, 5000));
  EXPECT_EQ(line.rfind("err ", 0), 0u) << line;
  EXPECT_FALSE(bad.read_line(&line, 5000));
  EXPECT_TRUE(bad.eof());

  ASSERT_TRUE(good.send_line("step 61 1"));
  ASSERT_TRUE(good.read_line(&line, 5000));
  OkLine okl;
  ASSERT_TRUE(parse_ok(line, okl)) << line;
  EXPECT_EQ(okl.session, 61u);

  frontend.stop();
  frontend.join();
  EXPECT_EQ(frontend.stats().oversize_lines, 1u);
}

}  // namespace
}  // namespace zss::serve
