#include "serve/pool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/protocol.h"
#include "serve/trace.h"
#include "../store/faulty_env.h"

// The tiering tier's serving-level contract (docs/store.md): with a
// spill store attached, the LRU cap is *invisible* — capped serving
// produces digests bit-identical to uncapped serving at any shard
// count and batch size (evict → spill → restore is an exact fp32
// round-trip, and a past-TTL disk record takes the same reset
// transition a resident session would). Plus the degradation paths:
// corrupt records fall back to fresh zero state, write failures
// degrade a shard to RAM-only serving — never an abort, never a hang.
// The churn test scales to a million distinct sessions with ZSS_SOAK=1.
namespace zss::serve {
namespace {

bool soak() { return std::getenv("ZSS_SOAK") != nullptr; }

struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = kFnvOffset;
};
using DigestTable = std::map<SessionId, SessionDigest>;

void fold(DigestTable& table, const Response& r) {
  SessionDigest& d = table[r.session];
  d.digest = fnv1a(d.digest, r.h.data(), r.h.size_bytes());
  ++d.steps;
}

struct RunStats {
  DigestTable digests;
  std::uint64_t ttl_resets = 0;
  std::uint64_t evicted = 0;
  std::uint64_t spilled = 0;
  std::uint64_t restored = 0;
  std::uint64_t restore_corrupt = 0;
};

/// One deterministic replay; a non-null `env` attaches a spill tier in
/// that filesystem (each run gets its own namespace via `dir`).
RunStats run(const nn::LstmCell& cell, const core::StatePruner& pruner,
             const std::vector<TraceEvent>& events, num::Index shards,
             num::Index max_batch, SessionTtl ttl, store::Env* env = nullptr,
             const std::string& dir = "tier", bool encoded = false) {
  PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 120;
  config.session_ttl = ttl;
  if (env != nullptr) {
    config.spill.dir = dir;
    config.spill.env = env;
    config.spill.encoded = encoded;
  }
  EnginePool pool(cell, pruner, config);
  RunStats out;
  const ResponseSink sink = [&](const Response& r) { fold(out.digests, r); };
  replay(pool, events, sink);
  for (num::Index s = 0; s < shards; ++s) {
    const SessionStore& ss = pool.shard(s).sessions();
    out.ttl_resets += ss.ttl_resets();
    out.evicted += ss.evicted();
    out.spilled += ss.spilled();
    out.restored += ss.restored();
    out.restore_corrupt += ss.restore_corrupt();
  }
  return out;
}

void expect_tables_equal(const DigestTable& a, const DigestTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [sid, d] : a) {
    const auto it = b.find(sid);
    ASSERT_NE(it, b.end()) << "session " << sid << " missing";
    EXPECT_EQ(d.steps, it->second.steps) << "session " << sid;
    EXPECT_EQ(d.digest, it->second.digest) << "session " << sid;
  }
}

TEST(SpillTieringTest, CappedWithSpillMatchesUncappedOracle) {
  num::Rng model_rng(20260808);
  const nn::LstmCell cell(/*input_dim=*/5, /*hidden_dim=*/12, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));
  num::Rng rng(99);
  const auto events =
      synthetic_trace(/*requests=*/700, /*sessions=*/40, cell.input_dim(),
                      /*gap_us=*/60, rng);

  // The oracle: nothing ever evicted.
  const RunStats oracle =
      run(cell, pruner, events, /*shards=*/1, /*max_batch=*/4, SessionTtl{});

  int variant = 0;
  for (const num::Index shards : {num::Index{1}, num::Index{2}, num::Index{4}}) {
    for (const bool encoded : {false, true}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " encoded=" + std::to_string(encoded));
      store::MemEnv env;
      SessionTtl capped;
      capped.max_sessions = 6;  // 40 sessions over <= 6-per-shard: churn
      const RunStats tiered =
          run(cell, pruner, events, shards, /*max_batch=*/4, capped, &env,
              "t" + std::to_string(variant++), encoded);
      expect_tables_equal(oracle.digests, tiered.digests);
      EXPECT_GT(tiered.spilled, 0u) << "cap never engaged: test is vacuous";
      EXPECT_GT(tiered.restored, 0u);
      EXPECT_EQ(tiered.restore_corrupt, 0u);
      EXPECT_EQ(tiered.ttl_resets, oracle.ttl_resets);
    }
  }
}

TEST(SpillTieringTest, PastTtlDiskRecordsTakeTheResidentResetTransition) {
  num::Rng model_rng(20260809);
  const nn::LstmCell cell(/*input_dim=*/5, /*hidden_dim=*/10, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.07f));
  num::Rng rng(7);
  // Gaps straddle the TTL so some sessions return expired (reset) and
  // some within it (restore) — both transitions must match a resident
  // session's exactly.
  auto events = synthetic_trace(500, 24, cell.input_dim(), /*gap_us=*/300,
                                rng);
  SessionTtl ttl;
  ttl.ttl_us = 2500;

  const RunStats oracle = run(cell, pruner, events, 1, 4, ttl);
  SessionTtl capped = ttl;
  capped.max_sessions = 5;
  for (const num::Index shards : {num::Index{1}, num::Index{3}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    store::MemEnv env;
    const RunStats tiered =
        run(cell, pruner, events, shards, 4, capped, &env,
            "ttl" + std::to_string(shards));
    expect_tables_equal(oracle.digests, tiered.digests);
    // ttl_resets itself is not grouping-invariant (the oracle's sweep
    // turns some lazy resets into plain re-creations — value-neutral
    // for outputs, which is what the digest equality above pins), but
    // both transitions must actually have run for this to mean much.
    EXPECT_GT(tiered.ttl_resets, 0u);
    EXPECT_GT(tiered.restored, 0u);
    EXPECT_GT(tiered.spilled, 0u);
  }
}

TEST(SpillTieringTest, MillionDistinctSessionChurnMatchesOracle) {
  // Every session visits, is forced out by the cap, and revisits: the
  // whole population round-trips through the spill tier. Default size
  // keeps the suite fast; ZSS_SOAK=1 runs the full million.
  const num::Index kSessions = soak() ? 1'000'000 : 20'000;
  num::Rng model_rng(20260810);
  const nn::LstmCell cell(/*input_dim=*/4, /*hidden_dim=*/8, model_rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.08f));

  std::vector<TraceEvent> events;
  events.reserve(static_cast<std::size_t>(kSessions) * 2);
  for (int pass = 0; pass < 2; ++pass) {
    for (num::Index i = 0; i < kSessions; ++i) {
      TraceEvent e;
      e.session = static_cast<SessionId>(i + 1);
      e.token = (i + pass) % cell.input_dim();
      e.arrival_us =
          static_cast<std::int64_t>(pass) * kSessions * 2 + i * 2;
      events.push_back(e);
    }
  }

  const RunStats oracle =
      run(cell, pruner, events, /*shards=*/2, /*max_batch=*/8, SessionTtl{});
  SessionTtl capped;
  capped.max_sessions = 32;
  store::MemEnv env;
  const RunStats tiered = run(cell, pruner, events, /*shards=*/2,
                              /*max_batch=*/8, capped, &env, "churn",
                              /*encoded=*/true);
  expect_tables_equal(oracle.digests, tiered.digests);
  // Nearly the entire population must have tiered out and back for
  // this test to mean anything.
  EXPECT_GE(tiered.spilled, static_cast<std::uint64_t>(kSessions) / 2);
  EXPECT_GE(tiered.restored, static_cast<std::uint64_t>(kSessions) / 2);
  EXPECT_EQ(tiered.restore_corrupt, 0u);
}

TEST(SpillTieringTest, RestoredSessionKeepsBitsStepsAndGeneration) {
  store::MemEnv env;
  store::StoreConfig cfg;
  cfg.path = "seg";
  store::SegmentStore spill(env, cfg, /*hidden_dim=*/6);
  SessionTtl ttl;
  ttl.max_sessions = 2;
  SessionStore store(6, ttl);
  store.set_spill(&spill);

  Session& s1 = store.get_or_create(1, 10);
  for (num::Index j = 0; j < 6; ++j) s1.h[0](0, j) = 0.5f + static_cast<float>(j);
  s1.c[0](0, 3) = -7.25f;
  s1.steps = 41;
  s1.generation = 2;
  std::vector<float> h_bits(s1.h[0].data(), s1.h[0].data() + 6);

  store.get_or_create(2, 20);
  store.get_or_create(3, 30);  // cap: evicts session 1 into the tier
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_EQ(store.spilled(), 1u);
  EXPECT_EQ(store.find(1), nullptr);

  Session& back = store.get_or_create(1, 40);  // evicts another, restores 1
  EXPECT_EQ(store.restored(), 1u);
  EXPECT_EQ(back.steps, 41u);
  EXPECT_EQ(back.generation, 2u);
  EXPECT_EQ(std::memcmp(back.h[0].data(), h_bits.data(), 6 * sizeof(float)), 0);
  EXPECT_EQ(back.c[0](0, 3), -7.25f);
  // Not a creation: the client's conversation continued.
  EXPECT_EQ(store.created(), 3u);
}

TEST(SpillTieringTest, CorruptRecordFallsBackToFreshSession) {
  store::MemEnv env;
  store::StoreConfig cfg;
  cfg.path = "seg";
  store::SegmentStore spill(env, cfg, 6);
  SessionTtl ttl;
  ttl.max_sessions = 2;
  SessionStore store(6, ttl);
  store.set_spill(&spill);

  Session& s1 = store.get_or_create(1, 10);
  s1.h[0](0, 0) = 3.5f;
  s1.steps = 9;
  store.get_or_create(2, 20);
  store.get_or_create(3, 30);  // spills session 1
  ASSERT_EQ(store.spilled(), 1u);

  env.bytes("seg")->back() ^= 0x10;  // bit rot under the committed record

  Session& back = store.get_or_create(1, 40);
  EXPECT_EQ(store.restore_corrupt(), 1u);
  EXPECT_EQ(back.steps, 0u) << "corrupt restore must yield a fresh session";
  EXPECT_EQ(back.generation, 0u);
  for (num::Index j = 0; j < 6; ++j) EXPECT_EQ(back.h[0](0, j), 0.0f);
  EXPECT_EQ(store.created(), 4u) << "fresh state is a creation";
}

TEST(SpillTieringTest, WriteFailureDegradesToRamOnlyServing) {
  store::MemEnv mem;
  store::FaultInjectingEnv env(mem);
  store::StoreConfig cfg;
  cfg.path = "seg";
  store::SegmentStore spill(env, cfg, 6);
  SessionTtl ttl;
  ttl.max_sessions = 2;
  SessionStore store(6, ttl);
  store.set_spill(&spill);
  ASSERT_TRUE(store.spill_active());

  env.last_opened()->fail_syncs(100);  // the medium goes bad for good
  store.get_or_create(1, 10);
  store.get_or_create(2, 20);
  store.get_or_create(3, 30);  // eviction's spill fails; store degrades
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_EQ(store.spilled(), 0u);
  EXPECT_FALSE(store.spill_active());

  // Serving continues RAM-only with pre-spill forget semantics.
  Session& back = store.get_or_create(1, 40);
  EXPECT_EQ(back.steps, 0u);
  EXPECT_EQ(store.created(), 4u);
  store.get_or_create(4, 50);  // further evictions don't touch the store
  EXPECT_EQ(spill.write_errors(), 3u);
}

}  // namespace
}  // namespace zss::serve
