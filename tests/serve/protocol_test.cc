#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "num/matrix.h"

// The live protocol's grammar is tiny on purpose; these tests pin down
// the whole surface — every verb, the blank/comment rule, and the
// strict rejection of anything else (same philosophy as the trace
// parser: never guess at a corrupted line).
namespace zss::serve {
namespace {

CommandLine parse_ok(const std::string& line) {
  CommandLine cmd;
  std::string error;
  EXPECT_EQ(parse_command(line, cmd, &error), ParseStatus::kCommand)
      << line << ": " << error;
  return cmd;
}

void expect_error(const std::string& line) {
  CommandLine cmd;
  std::string error;
  EXPECT_EQ(parse_command(line, cmd, &error), ParseStatus::kError) << line;
  EXPECT_FALSE(error.empty()) << "rejection must say why: " << line;
}

TEST(ProtocolTest, ParsesEveryVerb) {
  const CommandLine step = parse_ok("step 42 7");
  EXPECT_EQ(step.op, CommandLine::Op::kStep);
  EXPECT_EQ(step.session, 42u);
  EXPECT_EQ(step.token, 7);

  EXPECT_EQ(parse_ok("flush").op, CommandLine::Op::kFlush);
  EXPECT_EQ(parse_ok("stats").op, CommandLine::Op::kStats);
  EXPECT_EQ(parse_ok("quit").op, CommandLine::Op::kQuit);
  // Leading whitespace and trailing newline are transport artifacts.
  EXPECT_EQ(parse_ok("  step 1 0\n").op, CommandLine::Op::kStep);
}

TEST(ProtocolTest, BlanksAndCommentsAreIgnored) {
  CommandLine cmd;
  EXPECT_EQ(parse_command("", cmd, nullptr), ParseStatus::kBlank);
  EXPECT_EQ(parse_command("   \t", cmd, nullptr), ParseStatus::kBlank);
  EXPECT_EQ(parse_command("\r\n", cmd, nullptr), ParseStatus::kBlank);
  EXPECT_EQ(parse_command("# step 1 2", cmd, nullptr), ParseStatus::kBlank);
  EXPECT_EQ(parse_command("  # indented", cmd, nullptr), ParseStatus::kBlank);
}

TEST(ProtocolTest, MalformedLinesAreRejectedNotGuessed) {
  expect_error("step");           // missing both fields
  expect_error("step 5");         // missing token
  expect_error("step 5 7 9");     // trailing field (merged lines)
  expect_error("step five 7");    // non-numeric session
  expect_error("step 5 -1");      // negative token
  expect_error("flush now");      // verb takes no arguments
  expect_error("stats 1");
  expect_error("quit quit");
  expect_error("speak 5 7");      // unknown verb
  expect_error("step 5 99999999999999999999999999");  // token overflow
  // A negative or signed session must be rejected, not wrapped modulo
  // 2^64 into a phantom session (strtoull semantics of stream >>).
  expect_error("step -7 42");
  expect_error("step +7 42");
  expect_error("step 18446744073709551616 0");  // session overflow (2^64)
  expect_error("step 0x10 0");                  // digits only, no hex
}

TEST(ProtocolTest, ResponseFormatIsStableAndDigestMatchesRow) {
  num::Matrix h(1, 4);
  h(0, 0) = 1.0f;
  h(0, 1) = -2.5f;
  h(0, 2) = 0.0f;
  h(0, 3) = 3.25f;

  Response r;
  r.session = 9;
  r.seq = 123;
  r.batch = 4;
  r.h = h.row(0);

  const std::string line = format_response(r);
  char expect[96];
  std::snprintf(expect, sizeof(expect), "ok 9 123 4 %016llx",
                static_cast<unsigned long long>(digest_row(h.row(0))));
  EXPECT_EQ(line, expect);

  // The digest is the FNV-1a of the row bytes — one bit of state flips
  // it (this is what makes `diff` a determinism gate).
  const std::uint64_t before = digest_row(h.row(0));
  h(0, 2) = 1e-30f;
  EXPECT_NE(digest_row(h.row(0)), before);
}

TEST(ProtocolTest, FormatErrorPrefixesErr) {
  EXPECT_EQ(format_error("overloaded, request shed"),
            "err overloaded, request shed");
}

TEST(ProtocolTest, FnvPrimitiveIsTheSharedReference) {
  // Pinned values so the digest scheme can't drift silently between
  // the replay driver, the live protocol and the docs.
  EXPECT_EQ(fnv1a(kFnvOffset, "", 0), kFnvOffset);
  const unsigned char bytes[] = {0x61};  // "a"
  EXPECT_EQ(fnv1a(kFnvOffset, bytes, 1), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace zss::serve
