#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/pool.h"
#include "serve/trace.h"

// The serving determinism guarantee: a session's output stream depends
// only on its own request stream — never on shard count, batch size, or
// which batch-mates the batcher grouped it with. With the per-lane skip
// path a lane accumulates exactly its own kept positions whatever the
// batch around it, and the bit-exactness contract (docs/exactness.md)
// pins every chain's rounding. These tests replay one trace through
// every pool shape and demand bitwise-equal per-session outputs against
// a batch-of-one oracle.
namespace zss::serve {
namespace {

using OutputLog = std::map<SessionId, std::vector<std::vector<float>>>;

class ShardDeterminismTest : public ::testing::Test {
 protected:
  ShardDeterminismTest()
      : rng_(271828),
        cell_(/*input_dim=*/5, /*hidden_dim=*/16, rng_),
        pruner_(core::PrunerConfig::fixed(0.08f)) {
    trace_ = synthetic_trace(/*requests=*/150, /*sessions=*/6, /*vocab=*/5,
                             /*mean_gap_us=*/50, rng_);
    // Force back-to-back same-session arrivals so the conflict path
    // (a session queued twice before its first token is served) runs.
    for (int k = 0; k < 3; ++k) {
      TraceEvent e;
      e.arrival_us = trace_.back().arrival_us;
      e.session = 3;
      e.token = static_cast<num::Index>(k) % 5;
      trace_.push_back(e);
    }
  }

  /// Ground truth: each session stepped alone, batch of one, in its
  /// trace order — no batching, no sharding, no intersection.
  OutputLog oracle() {
    core::SparseLstmEngine engine(cell_, pruner_);
    std::map<SessionId, std::pair<num::Matrix, num::Matrix>> states;
    OutputLog log;
    num::Matrix x(1, cell_.input_dim());
    for (const TraceEvent& e : trace_) {
      auto [it, fresh] = states.try_emplace(e.session);
      if (fresh) {
        it->second.first.resize(1, cell_.hidden_dim(), 0.0f);
        it->second.second.resize(1, cell_.hidden_dim(), 0.0f);
      }
      x.fill(0.0f);
      x(0, e.token % cell_.input_dim()) = 1.0f;
      engine.step(x, it->second.first, it->second.second);
      auto row = it->second.first.row(0);
      log[e.session].emplace_back(row.begin(), row.end());
    }
    return log;
  }

  OutputLog run_pool(num::Index shards, num::Index max_batch) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = max_batch;
    config.policy.max_wait_us = 200;
    EnginePool pool(cell_, pruner_, config);
    OutputLog log;
    std::map<SessionId, std::uint64_t> last_seq;
    const ResponseSink sink = [&](const Response& r) {
      // Per-session responses must arrive in request order.
      auto [it, fresh] = last_seq.try_emplace(r.session, r.seq);
      if (!fresh) {
        EXPECT_GT(r.seq, it->second) << "session " << r.session;
        it->second = r.seq;
      }
      log[r.session].emplace_back(r.h.begin(), r.h.end());
    };
    const ReplayResult result = replay(pool, trace_, sink);
    EXPECT_EQ(result.responses, result.requests) << "lost or duplicated work";
    return log;
  }

  num::Rng rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
  std::vector<TraceEvent> trace_;
};

TEST_F(ShardDeterminismTest, SingleShardBatchedMatchesOracleBitwise) {
  EXPECT_EQ(run_pool(/*shards=*/1, /*max_batch=*/8), oracle());
}

TEST_F(ShardDeterminismTest, FourShardsMatchOneShardBitwise) {
  const OutputLog one = run_pool(/*shards=*/1, /*max_batch=*/8);
  const OutputLog four = run_pool(/*shards=*/4, /*max_batch=*/8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, oracle());
}

TEST_F(ShardDeterminismTest, BatchSizeOneMatchesBatchedBitwise) {
  EXPECT_EQ(run_pool(/*shards=*/4, /*max_batch=*/1),
            run_pool(/*shards=*/4, /*max_batch=*/8));
}

TEST_F(ShardDeterminismTest, BatchingActuallyHappened) {
  // Guard against the suite passing vacuously with batches of one.
  PoolConfig config;
  config.shards = 1;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 200;
  EnginePool pool(cell_, pruner_, config);
  const ResponseSink sink = [](const Response&) {};
  replay(pool, trace_, sink);
  EXPECT_GT(pool.shard(0).stats().mean_batch(), 1.5);
}

TEST_F(ShardDeterminismTest, MaxBatchSweepBitwiseIdentical) {
  // Batch size is a cost policy: every max_batch (and therefore every
  // mix of the engine's B == 1 offset-encoded path and B > 1 per-lane
  // CSR path) must produce the same bits as the batch-of-one oracle.
  const OutputLog want = oracle();
  for (const num::Index max_batch : {2, 3, 5, 8}) {
    PoolConfig config;
    config.shards = 2;
    config.policy.max_batch = max_batch;
    config.policy.max_wait_us = 200;
    EnginePool pool(cell_, pruner_, config);
    OutputLog log;
    const ResponseSink sink = [&](const Response& r) {
      log[r.session].emplace_back(r.h.begin(), r.h.end());
    };
    replay(pool, trace_, sink);
    EXPECT_EQ(log, want) << "max_batch " << max_batch;
  }
}

TEST_F(ShardDeterminismTest, MaxWaitDeadlineFiresBetweenArrivals) {
  // A request whose max-wait expires in a gap between arrivals must be
  // served at its deadline — not held until (and batched with) the
  // next arrival, which a live server honoring the policy would never
  // do.
  std::vector<TraceEvent> gap_trace;
  gap_trace.push_back(TraceEvent{0, 1, 0});
  gap_trace.push_back(TraceEvent{10000, 2, 1});
  PoolConfig config;
  config.shards = 1;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 200;
  EnginePool pool(cell_, pruner_, config);
  std::vector<std::pair<std::uint64_t, std::int64_t>> done;  // (seq, done_us)
  const ResponseSink sink = [&](const Response& r) {
    done.emplace_back(r.seq, r.done_us);
    EXPECT_EQ(r.batch, 1) << "the straggler must not join the later arrival";
  };
  replay(pool, gap_trace, sink);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].second, 200) << "served at its own deadline";
  EXPECT_EQ(done[1].second, 10200);
}

TEST_F(ShardDeterminismTest, ParallelDrainMatchesSequentialFlush) {
  // Closed loop: everything queued up front, then drained — once on
  // one thread, once with one thread per shard. Shards share nothing,
  // so the outputs must be bitwise identical.
  auto enqueue_all = [&](EnginePool& pool) {
    std::uint64_t seq = 0;
    for (const TraceEvent& e : trace_) {
      Request r;
      r.session = e.session;
      r.token = e.token;
      r.arrival_us = 0;
      r.seq = seq++;
      pool.enqueue(r);
    }
  };
  PoolConfig config;
  config.shards = 4;
  config.policy.max_batch = 8;

  EnginePool sequential(cell_, pruner_, config);
  enqueue_all(sequential);
  OutputLog seq_log;
  const ResponseSink seq_sink = [&](const Response& r) {
    seq_log[r.session].emplace_back(r.h.begin(), r.h.end());
  };
  sequential.flush(0, seq_sink);

  EnginePool parallel(cell_, pruner_, config);
  enqueue_all(parallel);
  OutputLog par_logs[4];
  std::vector<ResponseSink> sinks;
  for (int s = 0; s < 4; ++s) {
    sinks.emplace_back([&par_logs, s](const Response& r) {
      par_logs[s][r.session].emplace_back(r.h.begin(), r.h.end());
    });
  }
  parallel.drain_parallel(0, sinks);
  OutputLog par_log;
  for (auto& shard_log : par_logs) {
    for (auto& [sid, outs] : shard_log) par_log[sid] = std::move(outs);
  }

  EXPECT_EQ(seq_log, par_log);
}

// --- quantized shards -------------------------------------------------
// The int8 datapath keeps the full determinism guarantee: every
// quantization scale is fixed when the engine is constructed, so batch
// mates and shard assignment cannot leak into a session's outputs
// (docs/exactness.md "int8"). Same trace, quantized everywhere, swept
// over shard counts against a quantized batch-of-one oracle.

class QuantShardDeterminismTest : public ShardDeterminismTest {
 protected:
  OutputLog quant_oracle() {
    core::SparseLstmEngine engine(cell_, pruner_, {},
                                  core::QuantConfig::int8());
    std::map<SessionId, std::pair<num::Matrix, num::Matrix>> states;
    OutputLog log;
    num::Matrix x(1, cell_.input_dim());
    for (const TraceEvent& e : trace_) {
      auto [it, fresh] = states.try_emplace(e.session);
      if (fresh) {
        it->second.first.resize(1, cell_.hidden_dim(), 0.0f);
        it->second.second.resize(1, cell_.hidden_dim(), 0.0f);
      }
      x.fill(0.0f);
      x(0, e.token % cell_.input_dim()) = 1.0f;
      engine.step(x, it->second.first, it->second.second);
      auto row = it->second.first.row(0);
      log[e.session].emplace_back(row.begin(), row.end());
    }
    return log;
  }

  OutputLog run_quant_pool(num::Index shards, num::Index max_batch) {
    PoolConfig config;
    config.shards = shards;
    config.policy.max_batch = max_batch;
    config.policy.max_wait_us = 200;
    config.quant = core::QuantConfig::int8();
    EnginePool pool(cell_, pruner_, config);
    for (num::Index s = 0; s < shards; ++s) {
      EXPECT_TRUE(pool.shard(s).engine().quantized());
    }
    OutputLog log;
    const ResponseSink sink = [&](const Response& r) {
      log[r.session].emplace_back(r.h.begin(), r.h.end());
    };
    const ReplayResult result = replay(pool, trace_, sink);
    EXPECT_EQ(result.responses, result.requests) << "lost or duplicated work";
    return log;
  }
};

TEST_F(QuantShardDeterminismTest, ShardSweepMatchesQuantOracleBitwise) {
  const OutputLog want = quant_oracle();
  for (const num::Index shards : {1, 2, 4}) {
    EXPECT_EQ(run_quant_pool(shards, /*max_batch=*/8), want)
        << "shards " << shards;
  }
}

TEST_F(QuantShardDeterminismTest, QuantBatchSizeSweepBitwiseIdentical) {
  const OutputLog want = quant_oracle();
  for (const num::Index max_batch : {1, 3, 8}) {
    EXPECT_EQ(run_quant_pool(/*shards=*/2, max_batch), want)
        << "max_batch " << max_batch;
  }
}

TEST_F(QuantShardDeterminismTest, QuantOutputsDifferFromFp32) {
  // Guard against the quant flag silently not reaching the engine: the
  // int8 datapath must NOT reproduce the fp32 bits on this cell.
  EXPECT_NE(quant_oracle(), oracle());
}

}  // namespace
}  // namespace zss::serve
