#include "serve/worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/protocol.h"

// Slow soak coverage of the live loop — registered under the ctest
// `soak` label, which the default run excludes (enable with
// -DZSS_ENABLE_SOAK=ON; the TSan CI job does). These runs are sized to
// surface races and lifecycle bugs under ThreadSanitizer, not to add
// value assertions beyond the fast suite's.
namespace zss::serve {
namespace {

num::Index token_at(SessionId session, std::uint64_t i, num::Index vocab) {
  return static_cast<num::Index>(
      num::splitmix64_mix(session * 1000003ULL + i) %
      static_cast<std::uint64_t>(vocab));
}

TEST(ServingSoakTest, LiveStressWithTtlEvictionAndControlTraffic) {
  num::Rng rng(424242);
  const nn::LstmCell cell(/*input_dim=*/6, /*hidden_dim=*/16, rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.08f));
  PoolConfig config;
  config.shards = 4;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 100;
  config.session_ttl.ttl_us = 2000;     // evictions happen mid-stress
  config.session_ttl.max_sessions = 16; // per shard, > max_batch
  EnginePool pool(cell, pruner, config);

  std::mutex mu;
  std::map<SessionId, std::uint64_t> last_seq;
  std::atomic<std::uint64_t> out_of_order{0};
  const ResponseSink sink = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, fresh] = last_seq.try_emplace(r.session, r.seq);
    if (!fresh) {
      if (r.seq <= it->second) out_of_order.fetch_add(1);
      it->second = r.seq;
    }
  };
  LiveServer server(pool, sink);

  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 4000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      num::Rng prng(static_cast<std::uint64_t>(p) + 1);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // 64 shared sessions across all producers: same-session
        // conflicts, TTL resets and LRU churn all run concurrently.
        const auto sid = static_cast<SessionId>(prng.below(64) + 1);
        server.submit(sid, token_at(sid, i, cell.input_dim()));
        if (i % 512 == 0) server.flush_all();
        if (i % 1024 == 0) {
          (void)server.responded();  // the `stats` verb's read path
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.shutdown();

  EXPECT_EQ(server.responded(), server.submitted());
  EXPECT_EQ(server.submitted(), kProducers * kPerProducer);
  EXPECT_EQ(out_of_order.load(), 0u) << "per-session order violated";

  std::uint64_t resets = 0, evicted = 0;
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    resets += pool.shard(s).sessions().ttl_resets();
    evicted += pool.shard(s).sessions().evicted();
    EXPECT_LE(pool.shard(s).sessions().size(), 16)
        << "LRU cap exceeded on shard " << s;
  }
  // With 64 sessions hashed over 4 shards capped at 16 each and a
  // 2 ms TTL under multi-second load, eviction machinery must have
  // actually run for this soak to mean anything.
  EXPECT_GT(resets + evicted, 0u) << "soak never exercised eviction";
}

TEST(ServingSoakTest, LongRecordedRunReplaysBitIdentically) {
  num::Rng rng(9090);
  const nn::LstmCell cell(/*input_dim=*/5, /*hidden_dim=*/16, rng);
  const core::StatePruner pruner(core::PrunerConfig::fixed(0.08f));
  PoolConfig config;
  config.shards = 4;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 50;
  config.session_ttl.ttl_us = 1500;
  EnginePool pool(cell, pruner, config);

  struct Digest {
    std::uint64_t d = kFnvOffset;
    std::uint64_t n = 0;
  };
  std::mutex mu;
  std::map<SessionId, Digest> live;
  const ResponseSink sink = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    Digest& dg = live[r.session];
    dg.d = fnv1a(dg.d, r.h.data(), r.h.size_bytes());
    ++dg.n;
  };
  LiveConfig lc;
  lc.record = true;
  LiveServer server(pool, sink, lc);

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      num::Rng prng(static_cast<std::uint64_t>(p) * 31 + 7);
      for (std::uint64_t i = 0; i < 2500; ++i) {
        const auto sid = static_cast<SessionId>(prng.below(24) + 1);
        server.submit(sid, token_at(sid, i, cell.input_dim()));
        if (i % 100 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.shutdown();

  PoolConfig replay_config = config;
  replay_config.shards = 2;  // the guarantee is shard-count independent
  EnginePool replay_pool(cell, pruner, replay_config);
  std::map<SessionId, Digest> replayed;
  const ResponseSink rsink = [&](const Response& r) {
    Digest& dg = replayed[r.session];
    dg.d = fnv1a(dg.d, r.h.data(), r.h.size_bytes());
    ++dg.n;
  };
  replay(replay_pool, server.recorded_trace(), rsink);

  ASSERT_EQ(live.size(), replayed.size());
  for (const auto& [sid, dg] : live) {
    ASSERT_TRUE(replayed.count(sid)) << sid;
    EXPECT_EQ(replayed.at(sid).d, dg.d) << "session " << sid;
    EXPECT_EQ(replayed.at(sid).n, dg.n);
  }
}

}  // namespace
}  // namespace zss::serve
