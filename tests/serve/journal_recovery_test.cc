#include "serve/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/protocol.h"

// Serving-level crash recovery (docs/serving.md "Crash recovery"): a
// journaled pool killed at ANY byte offset of any shard's journal and
// restarted must end bit-exactly where an uninterrupted run ends, once
// resuming clients re-drive the uncommitted suffixes — the kill-
// anywhere oracle. The fuzz sweeps shard counts {1,2,4}, group-commit
// modes, checkpoint cadences and torn-tail offsets; every variant must
// converge to the same digest table as the one-shard, never-crashed
// oracle. TTL stays disabled throughout: a TTL decision depends on
// arrival gaps, which legitimately differ between an interrupted
// stream and its resumed re-drive, so durability is specified (and
// tested) for the TTL-off configuration.
namespace zss::serve {
namespace {

constexpr num::Index kVocab = 5;
constexpr SessionId kSessions = 6;
constexpr std::uint64_t kSteps = 24;

num::Index token_at(SessionId sid, std::uint64_t i) {
  return static_cast<num::Index>(num::splitmix64_mix(sid * 1000003ULL + i) %
                                 static_cast<std::uint64_t>(kVocab));
}

/// Drives requests through a pool with hand-stamped monotone arrivals
/// (the replay-style virtual clock — no threads, so a "kill" is simply
/// abandoning the pool between batch boundaries).
struct Driver {
  EnginePool& pool;
  std::int64_t now;
  std::uint64_t seq = 0;
  std::uint64_t served = 0;
  ResponseSink sink;

  explicit Driver(EnginePool& p, std::int64_t start_us = 0)
      : pool(p), now(start_us) {
    sink = [this](const Response&) { ++served; };
  }

  void step(SessionId sid, std::uint64_t i) {
    Request r;
    r.session = sid;
    r.token = token_at(sid, i);
    r.arrival_us = now += 7;
    r.seq = seq++;
    pool.enqueue(r);
  }

  void settle() { pool.flush(now, sink); }
};

PoolConfig base_config(num::Index shards) {
  PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = 4;
  config.policy.max_wait_us = 50;
  return config;
}

class JournalRecoveryTest : public ::testing::Test {
 protected:
  JournalRecoveryTest()
      : model_rng_(20260808),
        cell_(/*input_dim=*/kVocab, /*hidden_dim=*/12, model_rng_),
        pruner_(core::PrunerConfig::fixed(0.07f)) {}

  /// The uninterrupted oracle: one shard, no durability, every step.
  DigestTable oracle() {
    EnginePool pool(cell_, pruner_, base_config(1));
    Driver d(pool);
    for (std::uint64_t i = 0; i < kSteps; ++i) {
      for (SessionId sid = 1; sid <= kSessions; ++sid) d.step(sid, i);
      d.settle();
    }
    return pool.merged_digests();
  }

  num::Rng model_rng_;
  nn::LstmCell cell_;
  core::StatePruner pruner_;
};

void expect_tables_equal(const DigestTable& want, const DigestTable& got,
                         const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (const auto& [sid, d] : want) {
    const auto it = got.find(sid);
    ASSERT_NE(it, got.end()) << what << ": session " << sid << " missing";
    EXPECT_EQ(d.steps, it->second.steps) << what << ": session " << sid;
    EXPECT_EQ(d.digest, it->second.digest) << what << ": session " << sid;
  }
}

TEST_F(JournalRecoveryTest, KillAtAnyJournalOffsetThenResumeMatchesOracle) {
  const DigestTable want = oracle();
  num::Rng fuzz(0xC0FFEE);
  int torn_cuts = 0;

  int variant = 0;
  for (const num::Index shards :
       {num::Index{1}, num::Index{2}, num::Index{4}}) {
    for (const std::uint64_t ckpt_bytes : {std::uint64_t{1} << 20,
                                           std::uint64_t{2048}}) {
      for (int round = 0; round < 4; ++round) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " ckpt=" + std::to_string(ckpt_bytes) +
                     " round=" + std::to_string(round));
        store::MemEnv env;
        const std::string dir = "d" + std::to_string(variant++);
        PoolConfig config = base_config(shards);
        config.spill.dir = dir;
        config.spill.env = &env;
        config.spill.journal = true;
        config.spill.journal_sync = round % 2 == 0
                                        ? store::JournalSync::kBatch
                                        : store::JournalSync::kNone;
        config.spill.journal_checkpoint_bytes = ckpt_bytes;

        // Phase 1: serve a prefix of the workload, then die. The kill
        // lands between batch boundaries (the pool is simply dropped —
        // nothing is flushed or closed, exactly like SIGKILL)...
        const std::uint64_t crash_after = 2 + fuzz() % (kSteps - 2);
        {
          auto pool = std::make_unique<EnginePool>(cell_, pruner_, config);
          Driver d(*pool);
          for (std::uint64_t i = 0; i < crash_after; ++i) {
            for (SessionId sid = 1; sid <= kSessions; ++sid) d.step(sid, i);
            d.settle();
          }
          pool.reset();  // SIGKILL
        }
        // ...and then the torn tail: each shard's journal file is cut
        // at an arbitrary byte offset, as if the final writes never
        // fully reached the platter.
        for (num::Index s = 0; s < shards; ++s) {
          auto* bytes =
              env.bytes(dir + "/shard_" + std::to_string(s) + ".jnl");
          ASSERT_NE(bytes, nullptr);
          const std::uint64_t cut = fuzz() % (bytes->size() + 1);
          if (cut < bytes->size()) ++torn_cuts;
          bytes->resize(cut);
        }

        // Phase 2: restart over the same filesystem. Recovery must
        // yield a committed prefix — never invented work...
        EnginePool pool(cell_, pruner_, config);
        const DigestTable recovered = pool.merged_digests();
        for (const auto& [sid, d] : recovered) {
          const auto it = want.find(sid);
          ASSERT_NE(it, want.end()) << "recovered unknown session " << sid;
          EXPECT_LE(d.steps, it->second.steps);
        }
        // ...then resuming clients re-drive exactly the uncommitted
        // suffix of every session (what `sync`/`pos` gives a real
        // client) and the final table matches the uninterrupted run
        // bit for bit.
        Driver d(pool, pool.recovered_max_arrival_us() + 1);
        for (std::uint64_t i = 0; i < kSteps; ++i) {
          for (SessionId sid = 1; sid <= kSessions; ++sid) {
            const auto it = recovered.find(sid);
            const std::uint64_t committed =
                it == recovered.end() ? 0 : it->second.steps;
            if (i >= committed) d.step(sid, i);
          }
          d.settle();
        }
        expect_tables_equal(want, pool.merged_digests(), "after resume");
      }
    }
  }
  EXPECT_GT(torn_cuts, 0) << "fuzz never produced a torn tail — vacuous";
}

TEST_F(JournalRecoveryTest, CappedTieringPlusJournalRecoversThroughSpill) {
  // The full durability ladder at once: LRU cap spills sessions to the
  // segment tier while the journal logs the transitions. A crash +
  // restart + resume must still match the uncapped, uncrashed oracle —
  // evict/restore and create/update records composing correctly.
  const DigestTable want = oracle();

  store::MemEnv env;
  // One shard so all six sessions contend for a five-slot cap (the cap
  // is per shard; splitting six sessions across shards would never
  // trip it) — cap > max_batch so a whole batch still fits.
  PoolConfig config = base_config(1);
  config.session_ttl.max_sessions = 5;
  config.spill.dir = "capped";
  config.spill.env = &env;
  config.spill.journal = true;

  {
    auto pool = std::make_unique<EnginePool>(cell_, pruner_, config);
    Driver d(*pool);
    for (std::uint64_t i = 0; i < kSteps / 2; ++i) {
      for (SessionId sid = 1; sid <= kSessions; ++sid) d.step(sid, i);
      d.settle();
    }
    pool.reset();  // SIGKILL at a batch boundary
  }

  EnginePool pool(cell_, pruner_, config);
  const DigestTable recovered = pool.merged_digests();
  Driver d(pool, pool.recovered_max_arrival_us() + 1);
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    for (SessionId sid = 1; sid <= kSessions; ++sid) {
      const auto it = recovered.find(sid);
      const std::uint64_t committed =
          it == recovered.end() ? 0 : it->second.steps;
      if (i >= committed) d.step(sid, i);
    }
    d.settle();
  }
  expect_tables_equal(want, pool.merged_digests(), "capped resume");

  std::uint64_t spilled = 0;
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    spilled += pool.shard(s).sessions().spilled();
  }
  EXPECT_GT(spilled, 0u) << "cap never engaged — the ladder went untested";
}

TEST_F(JournalRecoveryTest, RebuildShardRecoversExactlyItsOwnSessions) {
  // The supervisor's repair primitive, exercised without threads: after
  // serving, rebuild one shard in place and expect its journal to hand
  // back exactly the sessions and digests the shard had committed,
  // while the other shard's slot is untouched.
  store::MemEnv env;
  PoolConfig config = base_config(2);
  config.spill.dir = "rb";
  config.spill.env = &env;
  config.spill.journal = true;

  EnginePool pool(cell_, pruner_, config);
  Driver d(pool);
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    for (SessionId sid = 1; sid <= kSessions; ++sid) d.step(sid, i);
    d.settle();
  }
  const DigestTable before = pool.merged_digests();

  pool.rebuild_shard(0);
  pool.rebuild_shard(1);
  expect_tables_equal(before, pool.merged_digests(), "after rebuild");

  // The rebuilt shards keep serving and the recurrence continues from
  // the recovered state, not from zero.
  const DigestTable want = [&] {
    EnginePool fresh(cell_, pruner_, base_config(1));
    Driver fd(fresh);
    for (std::uint64_t i = 0; i < kSteps + 4; ++i) {
      for (SessionId sid = 1; sid <= kSessions; ++sid) fd.step(sid, i);
      fd.settle();
    }
    return fresh.merged_digests();
  }();
  Driver d2(pool, pool.recovered_max_arrival_us() + 1);
  d2.seq = d.seq;
  for (std::uint64_t i = kSteps; i < kSteps + 4; ++i) {
    for (SessionId sid = 1; sid <= kSessions; ++sid) d2.step(sid, i);
    d2.settle();
  }
  expect_tables_equal(want, pool.merged_digests(), "served after rebuild");
}

}  // namespace
}  // namespace zss::serve
