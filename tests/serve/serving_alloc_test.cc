#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "serve/shard.h"

// Global operator new instrumented exactly like
// tests/core/sparse_inference_test.cc: counting every allocation in the
// binary lets the test hold the *whole shard hot loop* — batcher ring,
// session lookups, staging gather/scatter, engine step, response
// delivery — to the zero-allocation-once-warm contract.
namespace {
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace zss::serve {
namespace {

TEST(ServingAllocTest, ShardHotLoopIsAllocationFreeOnceWarm) {
  num::Rng rng(7);
  nn::LstmCell cell(/*input_dim=*/6, /*hidden_dim=*/24, rng);
  core::StatePruner pruner(core::PrunerConfig::fixed(0.08f));
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 100;
  EngineShard shard(cell, pruner, policy);

  num::Index responses = 0;
  const ResponseSink sink = [&responses](const Response& r) {
    responses += r.h.empty() ? 0 : 1;  // touch the payload, keep nothing
  };

  const num::Index kSessions = 6;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  auto run_round = [&](num::Index round) {
    // Four distinct sessions per round, rotating through all six so
    // every session exists and both the batched path (B=4) and the
    // max-wait path run.
    for (num::Index k = 0; k < 4; ++k) {
      Request r;
      r.session = static_cast<SessionId>((round + k) % kSessions) + 1;
      r.token = (round + k) % cell.input_dim();
      r.arrival_us = now;
      r.seq = seq++;
      shard.enqueue(r);
    }
    while (shard.process_ready(now, sink) > 0) {
    }
    now += 150;
    // Leave stragglers to the timeout sometimes: serve a lone request
    // through the batch-of-one fast path.
    if (round % 3 == 0) {
      Request r;
      r.session = static_cast<SessionId>(round % kSessions) + 1;
      r.token = 0;
      r.arrival_us = now;
      r.seq = seq++;
      shard.enqueue(r);
      now += policy.max_wait_us;
      while (shard.process_ready(now, sink) > 0) {
      }
    }
  };

  for (num::Index round = 0; round < 8; ++round) run_round(round);  // warm up
  shard.flush(now, sink);
  ASSERT_GT(responses, 0);

  const std::size_t heap_warm = g_alloc_count;
  const std::size_t ws_warm = shard.engine().workspace().allocation_count();
  for (num::Index round = 0; round < 50; ++round) run_round(round);
  shard.flush(now, sink);
  EXPECT_EQ(g_alloc_count, heap_warm)
      << "the serving hot loop allocated after warm-up";
  EXPECT_EQ(shard.engine().workspace().allocation_count(), ws_warm);
  EXPECT_EQ(shard.pending(), 0);
}

TEST(ServingAllocTest, EpochStatsResetIsDocumentedAndWorks) {
  // The InferenceStats-accumulates-forever pitfall: a shard's
  // reset_stats() must clear both its own counters and the engine's
  // cumulative stats, so per-epoch measurements never bleed together.
  num::Rng rng(11);
  nn::LstmCell cell(4, 12, rng);
  core::StatePruner pruner(core::PrunerConfig::fixed(0.05f));
  BatchPolicy policy;
  policy.max_batch = 2;
  EngineShard shard(cell, pruner, policy);
  const ResponseSink sink = [](const Response&) {};

  for (int i = 0; i < 4; ++i) {
    Request r;
    r.session = static_cast<SessionId>(i % 2) + 1;
    r.token = i % 4;
    r.seq = static_cast<std::uint64_t>(i);
    shard.enqueue(r);
  }
  shard.flush(0, sink);
  ASSERT_GT(shard.stats().requests, 0);
  ASSERT_GT(shard.engine().stats().steps, 0);

  shard.reset_stats();
  EXPECT_EQ(shard.stats().requests, 0);
  EXPECT_EQ(shard.stats().batches, 0);
  EXPECT_EQ(shard.engine().stats().steps, 0)
      << "engine epoch must reset with the shard";
  // The per-step snapshot intentionally survives: it describes the last
  // step, not an epoch.
  EXPECT_GT(shard.engine().last_step_stats().batch, 0);
}

}  // namespace
}  // namespace zss::serve
