#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <vector>

// The batcher is clock-free: `now_us` is always passed in, so these
// tests drive it with a fake clock (plain integers) and assert batch
// boundaries exactly.
namespace zss::serve {
namespace {

Request req(SessionId session, std::int64_t arrival_us,
            std::uint64_t seq = 0) {
  Request r;
  r.session = session;
  r.token = 0;
  r.arrival_us = arrival_us;
  r.seq = seq;
  return r;
}

TEST(RequestBatcherTest, CoalescesUpToMaxBatchImmediately) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 1000;
  RequestBatcher b(policy);

  for (SessionId s = 1; s <= 3; ++s) b.enqueue(req(s, /*arrival=*/0));
  EXPECT_FALSE(b.ready(0)) << "3 < max_batch and nothing waited long enough";

  b.enqueue(req(4, 0));
  EXPECT_TRUE(b.ready(0)) << "a full batch serves immediately";

  std::vector<Request> out;
  EXPECT_EQ(b.pop_batch(out), 4);
  EXPECT_EQ(b.pending(), 0);
  // FIFO order preserved.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].session, static_cast<SessionId>(i + 1));
  }
}

TEST(RequestBatcherTest, MaxWaitTimeoutServesPartialBatch) {
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_us = 200;
  RequestBatcher b(policy);

  b.enqueue(req(1, 100));
  b.enqueue(req(2, 150));
  EXPECT_FALSE(b.ready(100));
  EXPECT_FALSE(b.ready(299)) << "oldest has waited 199us < 200us";
  EXPECT_TRUE(b.ready(300)) << "oldest hit its max-wait deadline";

  std::vector<Request> out;
  EXPECT_EQ(b.pop_batch(out), 2);
}

TEST(RequestBatcherTest, SameSessionNeverSharesABatch) {
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_us = 1000;
  RequestBatcher b(policy);

  // Session 7's second token must see the state its first produced, so
  // the batch stops at the duplicate — and serves immediately, since
  // waiting cannot unblock it.
  b.enqueue(req(1, 0, 0));
  b.enqueue(req(7, 0, 1));
  b.enqueue(req(7, 0, 2));
  b.enqueue(req(2, 0, 3));
  EXPECT_TRUE(b.ready(0));

  std::vector<Request> out;
  EXPECT_EQ(b.pop_batch(out), 2);
  EXPECT_EQ(out[0].session, 1u);
  EXPECT_EQ(out[1].session, 7u);
  // The remainder — 7's second token, then session 2 — has no internal
  // conflict anymore, so it coalesces normally instead of rushing out.
  EXPECT_FALSE(b.ready(0));
  EXPECT_TRUE(b.ready(1000)) << "max-wait still bounds the remainder";
  EXPECT_EQ(b.pop_batch(out), 2);
  EXPECT_EQ(out[0].session, 7u);
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(out[1].session, 2u);
}

// The batch-intersection cap (max_kept_fraction + lane-sparsity EWMA
// feedback) was retired when the engine gained the per-lane batched
// skip path: effectual work now scales with each lane's own sparsity,
// so there is no intersected-kept fraction left to budget. The batcher
// closes batches on max_batch / max_wait / session conflicts only.

// --- Wraparound / max-wait edge regressions (PR 4 audit) -------------
// The audit walked every head_/count_ transition: growth triggered
// exactly at capacity, pop landing head_ exactly on the wrap point,
// a direct reserve() while the ring is wrapped, and the max-wait
// comparison at its exact boundary. Each case below pins one of them.

TEST(RequestBatcherTest, BatchClosingExactlyAtRingCapacity) {
  // The ring starts at capacity 64; filling it exactly (count_ ==
  // ring size) and popping everything in one batch leaves head_ on
  // the wrap point — the next enqueue/pop cycle must still be FIFO
  // and must not have grown the ring.
  BatchPolicy policy;
  policy.max_batch = 64;
  policy.max_wait_us = 0;
  RequestBatcher b(policy);

  for (std::uint64_t i = 0; i < 64; ++i) {
    b.enqueue(req(/*session=*/100 + i, 0, i));
  }
  EXPECT_EQ(b.pending(), 64);
  EXPECT_TRUE(b.ready(0)) << "a full batch at exact capacity is due";
  std::vector<Request> out;
  EXPECT_EQ(b.pop_batch(out), 64);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(out[i].seq, i);

  // head_ is now 64 % 64 == 0 again; a second lap must behave as the
  // first (this is the "closed exactly at capacity" wrap edge).
  for (std::uint64_t i = 0; i < 64; ++i) {
    b.enqueue(req(/*session=*/200 + i, 0, 64 + i));
  }
  EXPECT_EQ(b.pop_batch(out), 64);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(out[i].seq, 64 + i);
}

TEST(RequestBatcherTest, GrowthTriggeredWithWrappedHeadPreservesFifo) {
  // Park head_ mid-ring, fill to exact capacity so the *next* enqueue
  // grows a wrapped ring: the relocation must preserve FIFO order.
  BatchPolicy policy;
  policy.max_batch = 16;
  policy.max_wait_us = 0;
  RequestBatcher b(policy);

  std::uint64_t next = 0;
  std::vector<Request> out;
  for (std::uint64_t i = 0; i < 16; ++i) b.enqueue(req(1000 + next, 0, next)), ++next;
  EXPECT_EQ(b.pop_batch(out), 16);  // head_ = 16, ring wrapped region live
  for (std::uint64_t i = 0; i < 64; ++i) b.enqueue(req(1000 + next, 0, next)), ++next;
  EXPECT_EQ(b.pending(), 64) << "exactly at capacity";
  b.enqueue(req(1000 + next, 0, next));  // forces the grow-while-wrapped copy
  ++next;

  std::uint64_t expect = 16;
  while (b.pop_batch(out) > 0) {
    for (const Request& r : out) EXPECT_EQ(r.seq, expect++) << "FIFO broken";
  }
  EXPECT_EQ(expect, next) << "every request survived the relocation";
}

TEST(RequestBatcherTest, ExplicitReserveWhileWrappedPreservesFifo) {
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_us = 0;
  RequestBatcher b(policy);

  std::uint64_t next = 0;
  std::vector<Request> out;
  for (int i = 0; i < 60; ++i) b.enqueue(req(1000 + next, 0, next)), ++next;
  EXPECT_EQ(b.pop_batch(out), 8);  // head_ = 8
  for (int i = 0; i < 10; ++i) b.enqueue(req(1000 + next, 0, next)), ++next;  // wraps

  b.reserve(256);  // linearizes the wrapped contents into a fresh ring
  std::uint64_t expect = 8;
  while (b.pop_batch(out) > 0) {
    for (const Request& r : out) EXPECT_EQ(r.seq, expect++);
  }
  EXPECT_EQ(expect, next);

  // Shrinking reserve() is documented as a no-op, never data loss.
  b.enqueue(req(1, 0, next));
  b.reserve(1);
  EXPECT_EQ(b.pending(), 1);
  EXPECT_EQ(b.pop_batch(out), 1);
  EXPECT_EQ(out[0].seq, next);
}

TEST(RequestBatcherTest, ConflictRequeueOrderingSurvivesWrap) {
  // A conflict-split batch leaves the duplicate at the head; when that
  // happens repeatedly across the wrap point, the remainder must stay
  // in exact arrival order (this is the re-queue ordering the
  // per-session guarantee leans on).
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_us = 0;
  RequestBatcher b(policy);

  std::uint64_t next = 0;
  std::vector<Request> out;
  std::vector<std::uint64_t> served;
  for (int round = 0; round < 100; ++round) {
    // Pattern per round: A B B A — two conflicts per pop cycle.
    const SessionId a = 1, bb = 2;
    b.enqueue(req(a, 0, next++));
    b.enqueue(req(bb, 0, next++));
    b.enqueue(req(bb, 0, next++));
    b.enqueue(req(a, 0, next++));
    while (b.pending() > 2 || (round == 99 && b.pending() > 0)) {
      const num::Index n = b.pop_batch(out);
      ASSERT_GE(n, 1);
      for (const Request& r : out) served.push_back(r.seq);
    }
  }
  while (b.pop_batch(out) > 0) {
    for (const Request& r : out) served.push_back(r.seq);
  }
  ASSERT_EQ(served.size(), static_cast<std::size_t>(next));
  for (std::uint64_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i], i) << "global FIFO broke at a conflict re-queue";
  }
}

TEST(RequestBatcherTest, MaxWaitBoundaryIsExact) {
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_us = 100;
  RequestBatcher b(policy);
  b.enqueue(req(1, /*arrival=*/50));
  EXPECT_FALSE(b.ready(149)) << "one microsecond early";
  EXPECT_TRUE(b.ready(150)) << "exactly at the deadline";

  // max_wait_us = 0: every arrived request is immediately due, even a
  // batch of one with room to grow.
  BatchPolicy eager;
  eager.max_batch = 8;
  eager.max_wait_us = 0;
  RequestBatcher e(eager);
  e.enqueue(req(1, 1000));
  EXPECT_TRUE(e.ready(1000)) << "zero max-wait serves at its own arrival";
}

TEST(RequestBatcherTest, RingSurvivesGrowthAndWrapAround) {
  BatchPolicy policy;
  policy.max_batch = 3;
  policy.max_wait_us = 0;  // everything is always due
  RequestBatcher b(policy);

  // Interleave enqueue/pop far past the initial ring capacity so the
  // head wraps and the ring grows while partially full.
  std::vector<Request> out;
  std::uint64_t next = 0, expect = 0;
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 5; ++k) {
      b.enqueue(req(/*session=*/1000 + next, 0, next));
      ++next;
    }
    const num::Index n = b.pop_batch(out);
    ASSERT_GE(n, 1);
    for (num::Index i = 0; i < n; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)].seq, expect++) << "FIFO broken";
    }
  }
  while (b.pop_batch(out) > 0) {
    for (const Request& r : out) EXPECT_EQ(r.seq, expect++);
  }
  EXPECT_EQ(expect, next) << "every request served exactly once";
}

}  // namespace
}  // namespace zss::serve
