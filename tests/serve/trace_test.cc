#include "serve/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace zss::serve {
namespace {

TEST(TraceTest, ParsesCommentsBlanksAndFields) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0 11 18\n"
      "  # indented comment\n"
      "260 1 24\n");
  std::vector<TraceEvent> events;
  std::string error;
  ASSERT_TRUE(parse_trace(in, events, &error)) << error;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arrival_us, 0);
  EXPECT_EQ(events[0].session, 11u);
  EXPECT_EQ(events[0].token, 18);
  EXPECT_EQ(events[1].arrival_us, 260);
}

TEST(TraceTest, RejectsUnsortedMalformedAndTrailingTokens) {
  std::string error;
  std::vector<TraceEvent> events;

  std::istringstream unsorted("100 1 2\n50 2 3\n");
  EXPECT_FALSE(parse_trace(unsorted, events, &error));
  EXPECT_NE(error.find("not sorted"), std::string::npos) << error;

  std::istringstream short_line("100 1\n");
  EXPECT_FALSE(parse_trace(short_line, events, &error));

  std::istringstream negative("-5 1 2\n");
  EXPECT_FALSE(parse_trace(negative, events, &error));

  // A lost newline merges two events; silently dropping the tail would
  // later read as a determinism failure, so it must be a parse error.
  std::istringstream merged("1200 7 42 1300 8 5\n");
  EXPECT_FALSE(parse_trace(merged, events, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
}

TEST(TraceTest, WriteParseRoundTrip) {
  num::Rng rng(5);
  const auto events = synthetic_trace(/*requests=*/40, /*sessions=*/5,
                                      /*vocab=*/9, /*mean_gap_us=*/100, rng);
  std::stringstream io;
  write_trace(io, events);
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(parse_trace(io, parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].arrival_us, events[i].arrival_us);
    EXPECT_EQ(parsed[i].session, events[i].session);
    EXPECT_EQ(parsed[i].token, events[i].token);
  }
}

}  // namespace
}  // namespace zss::serve
