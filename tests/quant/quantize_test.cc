#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "num/kernels.h"
#include "num/rng.h"

namespace zss::quant {
namespace {

TEST(QuantizeTest, ChooseScaleMapsMaxTo127) {
  const std::vector<float> x = {0.5f, -2.54f, 1.0f};
  const QuantParams p = choose_scale(x);
  EXPECT_FLOAT_EQ(p.scale, 2.54f / 127.0f);
  EXPECT_EQ(quantize_one(-2.54f, p), -127);
}

TEST(QuantizeTest, ZeroVectorGetsUnitScale) {
  const std::vector<float> x(4, 0.0f);
  const QuantParams p = choose_scale(x);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(QuantizeTest, RoundToNearest) {
  const QuantParams p{1.0f};
  EXPECT_EQ(quantize_one(1.4f, p), 1);
  EXPECT_EQ(quantize_one(1.6f, p), 2);
  EXPECT_EQ(quantize_one(-1.6f, p), -2);
  EXPECT_EQ(quantize_one(0.0f, p), 0);
}

TEST(QuantizeTest, ClampsToSymmetricRange) {
  const QuantParams p{0.01f};
  EXPECT_EQ(quantize_one(100.0f, p), 127);
  EXPECT_EQ(quantize_one(-100.0f, p), -127);  // -128 never produced
}

TEST(QuantizeTest, DequantizeInverse) {
  const QuantParams p{0.5f};
  EXPECT_FLOAT_EQ(dequantize_one(4, p), 2.0f);
  EXPECT_FLOAT_EQ(dequantize_one(-3, p), -1.5f);
}

TEST(QuantizeTest, RoundTripExactForCodePoints) {
  const QuantParams p{0.03f};
  for (int code = -127; code <= 127; ++code) {
    const float x = static_cast<float>(code) * p.scale;
    EXPECT_EQ(quantize_one(x, p), code);
  }
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfStep) {
  num::Rng rng(3);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantParams p = choose_scale(x);
  for (float v : x) {
    const float r = dequantize_one(quantize_one(v, p), p);
    EXPECT_LE(std::fabs(v - r), p.scale * 0.5f + 1e-7f);
  }
}

TEST(QuantizeTest, VectorQuantizeMatchesScalar) {
  const std::vector<float> x = {0.1f, -0.9f, 0.55f};
  const QuantParams p = choose_scale(x);
  std::vector<std::int8_t> q(3);
  quantize(x, p, q);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q[i], quantize_one(x[i], p));
}

TEST(QuantizeTest, MatrixQuantize) {
  num::Matrix w(2, 2);
  w(0, 0) = 1.0f;
  w(0, 1) = -1.0f;
  w(1, 0) = 0.5f;
  w(1, 1) = 0.0f;
  num::MatrixI8 q;
  const QuantParams p = quantize_matrix(w, q);
  EXPECT_EQ(q(0, 0), 127);
  EXPECT_EQ(q(0, 1), -127);
  EXPECT_EQ(q(1, 1), 0);
  EXPECT_FLOAT_EQ(p.scale, 1.0f / 127.0f);
}

TEST(QuantizeTest, QgemvTracksFloatGemv) {
  num::Rng rng(7);
  num::Matrix w(16, 32);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  num::MatrixI8 wq;
  const QuantParams wp = quantize_matrix(w, wq);
  const QuantParams xp = choose_scale(x);
  std::vector<std::int8_t> xq(32);
  quantize(x, xp, xq);

  std::vector<float> y_ref(16);
  num::gemv(w, x, y_ref);
  std::vector<float> y_q(16);
  qgemv(wq, wp, xq, xp, y_q);

  // Error per output <= sum of per-element quantization noise; use a
  // loose statistical bound.
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(y_q[i], y_ref[i], 0.15f);
  }
}

TEST(QuantizeTest, RoundtripMseSmall) {
  num::Rng rng(8);
  std::vector<float> x(500);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  const QuantParams p = choose_scale(x);
  const double mse = roundtrip_mse(x, p);
  // Uniform quantization noise ~ step^2 / 12.
  const double step = p.scale;
  EXPECT_LT(mse, step * step / 12.0 * 3.0);
  EXPECT_GT(mse, 0.0);
}

TEST(QuantizeDeathTest, NonPositiveScaleAborts) {
  EXPECT_DEATH((void)quantize_one(1.0f, QuantParams{0.0f}), "precondition");
}

// Quantized zero stays exactly zero — the property the skip logic needs.
TEST(QuantizeTest, ZeroMapsToZeroCode) {
  const QuantParams p{0.0123f};
  EXPECT_EQ(quantize_one(0.0f, p), 0);
  EXPECT_EQ(quantize_one(-0.0f, p), 0);
  EXPECT_FLOAT_EQ(dequantize_one(0, p), 0.0f);
}

// Negating the input negates the code exactly — the reason the range is
// the symmetric [-127, 127] with -128 unused (quantize.h), and what the
// sign-magnitude skip logic of the accelerator assumes.
TEST(QuantizeTest, NegationSymmetryProperty) {
  num::Rng rng(314);
  const QuantParams p{0.031f};
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-6.0, 6.0));
    EXPECT_EQ(quantize_one(-x, p),
              static_cast<std::int8_t>(-quantize_one(x, p)))
        << x;
  }
}

// quantize(dequantize(quantize(x))) == quantize(x): one round trip
// reaches the grid, a second changes nothing. The engine's quantized
// step leans on exactly this — h is written back as dequantized codes
// and re-quantized next step without drift.
TEST(QuantizeTest, RoundTripIsIdempotentProperty) {
  num::Rng rng(2718);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(64);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-3.0, 3.0));
    const QuantParams p = choose_scale(x);
    std::vector<std::int8_t> q1(x.size());
    quantize(x, p, q1);
    std::vector<float> back(x.size());
    dequantize(q1, p, back);
    std::vector<std::int8_t> q2(x.size());
    quantize(back, p, q2);
    EXPECT_EQ(q1, q2);
  }
}

// With the scale chosen by choose_scale (no clipping anywhere in
// range), every element round-trips within half a quantization step.
TEST(QuantizeTest, ChosenScaleRoundTripErrorBoundProperty) {
  num::Rng rng(999);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(128);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-5.0, 5.0));
    const QuantParams p = choose_scale(x);
    for (float v : x) {
      const float back = dequantize_one(quantize_one(v, p), p);
      EXPECT_LE(std::fabs(back - v), 0.5f * p.scale + 1e-6f) << v;
    }
  }
}

}  // namespace
}  // namespace zss::quant
