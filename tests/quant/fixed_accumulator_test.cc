#include "quant/fixed_accumulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "num/rng.h"

namespace zss::quant {
namespace {

TEST(FixedAccumulatorTest, DefaultsMatchScratchSpec) {
  FixedAccumulator acc;  // the paper's 12-bit scratch word
  EXPECT_EQ(acc.bits(), 12);
  EXPECT_EQ(acc.max_raw(), 2047);
  EXPECT_EQ(acc.min_raw(), -2048);
}

TEST(FixedAccumulatorTest, ZeroShiftIsExact) {
  FixedAccumulator acc(16, 0);
  acc.add_product(100);
  acc.add_product(-37);
  EXPECT_EQ(acc.value(), 63);
  EXPECT_FALSE(acc.saturated());
}

TEST(FixedAccumulatorTest, PreShiftRoundsToNearest) {
  FixedAccumulator acc(16, 4);  // products divided by 16
  acc.add_product(24);          // (24+8)>>4 = 2
  EXPECT_EQ(acc.raw(), 2);
  acc.reset();
  acc.add_product(23);  // (23+8)>>4 = 1
  EXPECT_EQ(acc.raw(), 1);
}

TEST(FixedAccumulatorTest, ZeroProductLeavesStateUnchanged) {
  // Skipped (zero) products must be exact identities in the datapath.
  FixedAccumulator acc(12, 6);
  acc.add_product(640);
  const auto before = acc.raw();
  acc.add_product(0);
  EXPECT_EQ(acc.raw(), before);
}

TEST(FixedAccumulatorTest, SaturatesHigh) {
  FixedAccumulator acc(8, 0);  // range [-128, 127]
  for (int i = 0; i < 100; ++i) acc.add_product(10);
  EXPECT_EQ(acc.raw(), 127);
  EXPECT_TRUE(acc.saturated());
}

TEST(FixedAccumulatorTest, SaturatesLow) {
  FixedAccumulator acc(8, 0);
  for (int i = 0; i < 100; ++i) acc.add_product(-10);
  EXPECT_EQ(acc.raw(), -128);
  EXPECT_TRUE(acc.saturated());
}

TEST(FixedAccumulatorTest, ResetClearsValueAndFlag) {
  FixedAccumulator acc(8, 0);
  for (int i = 0; i < 100; ++i) acc.add_product(127);
  ASSERT_TRUE(acc.saturated());
  acc.reset();
  EXPECT_EQ(acc.raw(), 0);
  EXPECT_FALSE(acc.saturated());
}

TEST(FixedAccumulatorTest, ValueRescalesByShift) {
  FixedAccumulator acc(12, 6);
  acc.add_product(64);  // (64+32)>>6 = 1
  EXPECT_EQ(acc.raw(), 1);
  EXPECT_EQ(acc.value(), 64);
}

TEST(FixedAccumulatorTest, AddRawBypassesShift) {
  FixedAccumulator acc(12, 6);
  acc.add_raw(5);
  EXPECT_EQ(acc.raw(), 5);
}

TEST(FixedAccumulatorDeathTest, BadWidthAborts) {
  EXPECT_DEATH(FixedAccumulator(1, 0), "precondition");
  EXPECT_DEATH(FixedAccumulator(40, 0), "precondition");
  EXPECT_DEATH(FixedAccumulator(12, 20), "precondition");
}

// Property: for random int8 dot products that fit the representable
// range, the 12-bit/shift-6 accumulator tracks the true sum within the
// accumulated rounding error bound (n/2 quanta of 2^shift).
class AccumulatorFidelityTest : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorFidelityTest, TracksTrueSumWithinRoundingBound) {
  const int n = GetParam();
  num::Rng rng(static_cast<std::uint64_t>(n));
  FixedAccumulator acc(12, 6);
  std::int64_t exact = 0;
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::int32_t>(rng.below(255)) - 127;
    const auto b = static_cast<std::int32_t>(rng.below(255)) - 127;
    acc.add_product(a * b);
    exact += a * b;
  }
  if (!acc.saturated()) {
    const double bound = static_cast<double>(n) / 2.0 * 64.0 + 64.0;
    EXPECT_NEAR(static_cast<double>(acc.value()),
                static_cast<double>(exact), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, AccumulatorFidelityTest,
                         ::testing::Values(1, 4, 16, 64, 100, 256));

// --- overflow regression cases ---------------------------------------
// The scratch word saturates (it never wraps) — the opposite of the
// software int8 path's i32 accumulator, which wraps mod 2^32 by design
// (num::madd_i8). These regressions pin both halves of that boundary:
// the hardware model must clamp sticky, and the clamp must be at the
// exact word limits.

TEST(FixedAccumulatorTest, LongMaxProductRunClampsAtWordMaxNotWrap) {
  FixedAccumulator acc(12, 6);  // word max 2047
  for (int i = 0; i < 10000; ++i) acc.add_product(127 * 127);
  EXPECT_TRUE(acc.saturated());
  EXPECT_EQ(acc.raw(), 2047);  // pinned, not wrapped negative
}

TEST(FixedAccumulatorTest, LongMinProductRunClampsAtWordMinNotWrap) {
  FixedAccumulator acc(12, 6);
  for (int i = 0; i < 10000; ++i) acc.add_product(-127 * 127);
  EXPECT_TRUE(acc.saturated());
  EXPECT_EQ(acc.raw(), -2048);
}

TEST(FixedAccumulatorTest, SaturationFlagIsStickyButValueRecovers) {
  FixedAccumulator acc(12, 0);
  acc.add_raw(2047);
  acc.add_raw(1);  // clamps high
  EXPECT_TRUE(acc.saturated());
  EXPECT_EQ(acc.raw(), 2047);
  acc.add_raw(-100);  // arithmetic continues from the clamp
  EXPECT_EQ(acc.raw(), 1947);
  EXPECT_TRUE(acc.saturated()) << "flag must stay set for the epoch";
  acc.reset();
  EXPECT_FALSE(acc.saturated());
  EXPECT_EQ(acc.raw(), 0);
}

TEST(FixedAccumulatorTest, AddRawAtInt32EdgeDoesNotOverflowInternally) {
  // add_raw widens to i64 before clamping; feeding values near the
  // int32 edge must clamp cleanly instead of tripping signed overflow
  // (regression for the sanitizer jobs).
  FixedAccumulator acc(30, 0);  // widest allowed word
  const std::int32_t word_max = (std::int32_t{1} << 29) - 1;
  acc.add_raw(word_max);
  acc.add_raw(std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(acc.saturated());
  EXPECT_EQ(acc.raw(), word_max);
  acc.add_raw(std::numeric_limits<std::int32_t>::min());
  // word_max + INT32_MIN undershoots the word range: clamps at word min.
  EXPECT_EQ(acc.raw(), -(std::int32_t{1} << 29));
}

}  // namespace
}  // namespace zss::quant
