#include "quant/lut_nonlinear.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zss::quant {
namespace {

QuantParams preact_scale() { return QuantParams{8.0f / 127.0f}; }

TEST(LutTest, SigmoidRangeIsNonNegative) {
  NonlinearLut lut(Nonlinearity::kSigmoid, preact_scale());
  for (int code = -128; code <= 127; ++code) {
    const auto out = lut.apply(static_cast<std::int8_t>(code));
    EXPECT_GE(out, 0);
    EXPECT_LE(out, 127);
  }
}

TEST(LutTest, TanhRangeSymmetric) {
  NonlinearLut lut(Nonlinearity::kTanh, preact_scale());
  EXPECT_EQ(lut.apply(0), 0);
  for (int code = -127; code <= 127; ++code) {
    const auto pos = lut.apply(static_cast<std::int8_t>(code));
    const auto neg = lut.apply(static_cast<std::int8_t>(-code));
    EXPECT_EQ(pos, -neg);  // odd function survives quantization
  }
}

TEST(LutTest, SigmoidMidpoint) {
  NonlinearLut lut(Nonlinearity::kSigmoid, preact_scale());
  // sigmoid(0) = 0.5 -> code 64 (0.504) at 1/127 output scale.
  EXPECT_EQ(lut.apply(0), 64);
}

TEST(LutTest, MonotoneNonDecreasing) {
  for (auto kind : {Nonlinearity::kSigmoid, Nonlinearity::kTanh}) {
    NonlinearLut lut(kind, preact_scale());
    for (int code = -127; code < 127; ++code) {
      EXPECT_LE(lut.apply(static_cast<std::int8_t>(code)),
                lut.apply(static_cast<std::int8_t>(code + 1)));
    }
  }
}

TEST(LutTest, SaturatesAtExtremes) {
  NonlinearLut sig(Nonlinearity::kSigmoid, preact_scale());
  EXPECT_EQ(sig.apply(127), 127);   // sigmoid(8) ~ 0.99966
  EXPECT_EQ(sig.apply(-127), 0);    // sigmoid(-8)
  NonlinearLut th(Nonlinearity::kTanh, preact_scale());
  EXPECT_EQ(th.apply(127), 127);
  EXPECT_EQ(th.apply(-127), -127);
}

TEST(LutTest, MaxAbsErrorSmall) {
  NonlinearLut sig(Nonlinearity::kSigmoid, preact_scale());
  NonlinearLut th(Nonlinearity::kTanh, preact_scale());
  // Half an output LSB plus the input-grid effect; generous bound.
  EXPECT_LT(sig.max_abs_error(), 0.02f);
  EXPECT_LT(th.max_abs_error(), 0.04f);
}

TEST(LutTest, IdentityKindClampsLinearly) {
  NonlinearLut lut(Nonlinearity::kIdentity, QuantParams{1.0f / 127.0f});
  // in scale == out scale -> codes map to themselves (up to clamp).
  EXPECT_EQ(lut.apply(13), 13);
  EXPECT_EQ(lut.apply(-90), -90);
}

TEST(LutTest, VectorApplyMatchesScalar) {
  NonlinearLut lut(Nonlinearity::kTanh, preact_scale());
  const std::vector<std::int8_t> in = {-127, -5, 0, 5, 127};
  std::vector<std::int8_t> out(in.size());
  lut.apply(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], lut.apply(in[i]));
  }
}

TEST(LutTest, ToFloatUsesOutputScale) {
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(127), 1.0f);
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(-127), -1.0f);
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(0), 0.0f);
}

// End-to-end error of quantize-then-LUT for inputs BETWEEN grid points:
// a very coarse input grid misses tanh's steep region near the origin,
// while the accelerator's +-8 clip keeps the step small enough that only
// rounding noise remains.
TEST(LutTest, CoarseInputGridLosesAccuracyBetweenGridPoints) {
  auto pipeline_error = [](float clip) {
    const QuantParams in{clip / 127.0f};
    NonlinearLut lut(Nonlinearity::kTanh, in);
    float worst = 0.0f;
    for (float x = -1.0f; x <= 1.0f; x += 1e-3f) {
      const float approx = NonlinearLut::to_float(lut.apply(quantize_one(x, in)));
      worst = std::max(worst, std::fabs(approx - std::tanh(x)));
    }
    return worst;
  };
  EXPECT_GT(pipeline_error(64.0f), 0.1f);   // grid step 0.5 near origin
  EXPECT_LT(pipeline_error(8.0f), 0.04f);   // the accelerator's setting
}

}  // namespace
}  // namespace zss::quant
