#include "quant/lut_nonlinear.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zss::quant {
namespace {

QuantParams preact_scale() { return QuantParams{8.0f / 127.0f}; }

TEST(LutTest, SigmoidRangeIsNonNegative) {
  NonlinearLut lut(Nonlinearity::kSigmoid, preact_scale());
  for (int code = -128; code <= 127; ++code) {
    const auto out = lut.apply(static_cast<std::int8_t>(code));
    EXPECT_GE(out, 0);
    EXPECT_LE(out, 127);
  }
}

TEST(LutTest, TanhRangeSymmetric) {
  NonlinearLut lut(Nonlinearity::kTanh, preact_scale());
  EXPECT_EQ(lut.apply(0), 0);
  for (int code = -127; code <= 127; ++code) {
    const auto pos = lut.apply(static_cast<std::int8_t>(code));
    const auto neg = lut.apply(static_cast<std::int8_t>(-code));
    EXPECT_EQ(pos, -neg);  // odd function survives quantization
  }
}

TEST(LutTest, SigmoidMidpoint) {
  NonlinearLut lut(Nonlinearity::kSigmoid, preact_scale());
  // sigmoid(0) = 0.5 -> code 64 (0.504) at 1/127 output scale.
  EXPECT_EQ(lut.apply(0), 64);
}

TEST(LutTest, MonotoneNonDecreasing) {
  for (auto kind : {Nonlinearity::kSigmoid, Nonlinearity::kTanh}) {
    NonlinearLut lut(kind, preact_scale());
    for (int code = -127; code < 127; ++code) {
      EXPECT_LE(lut.apply(static_cast<std::int8_t>(code)),
                lut.apply(static_cast<std::int8_t>(code + 1)));
    }
  }
}

TEST(LutTest, SaturatesAtExtremes) {
  NonlinearLut sig(Nonlinearity::kSigmoid, preact_scale());
  EXPECT_EQ(sig.apply(127), 127);   // sigmoid(8) ~ 0.99966
  EXPECT_EQ(sig.apply(-127), 0);    // sigmoid(-8)
  NonlinearLut th(Nonlinearity::kTanh, preact_scale());
  EXPECT_EQ(th.apply(127), 127);
  EXPECT_EQ(th.apply(-127), -127);
}

TEST(LutTest, MaxAbsErrorSmall) {
  NonlinearLut sig(Nonlinearity::kSigmoid, preact_scale());
  NonlinearLut th(Nonlinearity::kTanh, preact_scale());
  // Half an output LSB plus the input-grid effect; generous bound.
  EXPECT_LT(sig.max_abs_error(), 0.02f);
  EXPECT_LT(th.max_abs_error(), 0.04f);
}

TEST(LutTest, IdentityKindClampsLinearly) {
  NonlinearLut lut(Nonlinearity::kIdentity, QuantParams{1.0f / 127.0f});
  // in scale == out scale -> codes map to themselves (up to clamp).
  EXPECT_EQ(lut.apply(13), 13);
  EXPECT_EQ(lut.apply(-90), -90);
}

TEST(LutTest, VectorApplyMatchesScalar) {
  NonlinearLut lut(Nonlinearity::kTanh, preact_scale());
  const std::vector<std::int8_t> in = {-127, -5, 0, 5, 127};
  std::vector<std::int8_t> out(in.size());
  lut.apply(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], lut.apply(in[i]));
  }
}

TEST(LutTest, ToFloatUsesOutputScale) {
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(127), 1.0f);
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(-127), -1.0f);
  EXPECT_FLOAT_EQ(NonlinearLut::to_float(0), 0.0f);
}

// End-to-end error of quantize-then-LUT for inputs BETWEEN grid points:
// a very coarse input grid misses tanh's steep region near the origin,
// while the accelerator's +-8 clip keeps the step small enough that only
// rounding noise remains.
TEST(LutTest, CoarseInputGridLosesAccuracyBetweenGridPoints) {
  auto pipeline_error = [](float clip) {
    const QuantParams in{clip / 127.0f};
    NonlinearLut lut(Nonlinearity::kTanh, in);
    float worst = 0.0f;
    for (float x = -1.0f; x <= 1.0f; x += 1e-3f) {
      const float approx = NonlinearLut::to_float(lut.apply(quantize_one(x, in)));
      worst = std::max(worst, std::fabs(approx - std::tanh(x)));
    }
    return worst;
  };
  EXPECT_GT(pipeline_error(64.0f), 0.1f);   // grid step 0.5 near origin
  EXPECT_LT(pipeline_error(8.0f), 0.04f);   // the accelerator's setting
}

// The grids the quantized engine actually builds (core::QuantConfig:
// pre-activation grid 8/127, cell grid 8/127): endpoints must pin to
// the saturated codes, so clipping the i32 pre-activation at ±127
// before the LUT loses nothing the nonlinearity hadn't already lost.
TEST(LutTest, EnginePreGridEndpointsPinToSaturation) {
  const QuantParams pre{8.0f / 127.0f};
  NonlinearLut sig(Nonlinearity::kSigmoid, pre);
  NonlinearLut tanh_lut(Nonlinearity::kTanh, pre);
  // sigmoid(±8) = 0.99966 / 0.00033 -> codes 127 / 0.
  EXPECT_EQ(sig.apply(127), 127);
  EXPECT_EQ(sig.apply(-127), 0);
  // tanh(±8) = ±0.99999977 -> codes ±127.
  EXPECT_EQ(tanh_lut.apply(127), 127);
  EXPECT_EQ(tanh_lut.apply(-127), -127);
  // And zero maps to the exact fixed points: tanh(0) = 0, sigmoid(0)
  // rounds 63.5 to the even code 64.
  EXPECT_EQ(tanh_lut.apply(0), 0);
  EXPECT_EQ(sig.apply(0), 64);
}

// Odd symmetry of the tanh table over the symmetric code range: the
// engine's integer cell update relies on negation staying exact through
// the activations (matching the quantizer's negation symmetry).
TEST(LutTest, TanhTableIsOddOverSymmetricRange) {
  for (float clip : {1.0f, 4.0f, 8.0f}) {
    NonlinearLut lut(Nonlinearity::kTanh, QuantParams{clip / 127.0f});
    for (int code = -127; code <= 127; ++code) {
      EXPECT_EQ(lut.apply(static_cast<std::int8_t>(-code)),
                static_cast<std::int8_t>(-lut.apply(
                    static_cast<std::int8_t>(code))))
          << "clip " << clip << " code " << code;
    }
  }
}

// Monotonicity across EVERY adjacent code pair of the engine grids —
// the existing MonotoneNonDecreasing covers one grid; the engine's
// correctness argument needs it on the grids it instantiates.
TEST(LutTest, EngineGridsMonotoneOverFullRange) {
  for (float scale : {8.0f / 127.0f, 1.0f / 127.0f}) {
    for (Nonlinearity kind : {Nonlinearity::kSigmoid, Nonlinearity::kTanh}) {
      NonlinearLut lut(kind, QuantParams{scale});
      for (int code = -127; code < 127; ++code) {
        EXPECT_LE(lut.apply(static_cast<std::int8_t>(code)),
                  lut.apply(static_cast<std::int8_t>(code + 1)))
            << "scale " << scale << " code " << code;
      }
    }
  }
}

}  // namespace
}  // namespace zss::quant
