#include "store/journal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "store/io.h"
#include "faulty_env.h"

// The write-ahead journal's crash matrix (docs/store.md "Session
// journal"). The valid-prefix invariant is tested exhaustively: the
// journal file is truncated at EVERY byte offset and recovery must
// come back with exactly the committed record prefix and a truncated
// tail — no crash window is special-cased. Plus the surrounding
// failure modes: bit rot at every region of a record, fsync failures
// degrading to undurable serving, torn checkpoint writes, a crash
// between the checkpoint rename and the journal truncate (the
// watermark window), and orphaned .tmp cleanup.
namespace zss::store {
namespace {

constexpr num::Index kWidth = 4;
constexpr std::uint64_t kFileHeader = 16;
constexpr std::uint64_t kRecHeader = 72;
constexpr std::uint64_t kUpdateSize = kRecHeader + 2 * kWidth * sizeof(float);

struct Rec {
  JournalRecordKind kind;
  std::uint64_t id;
  std::uint64_t gen;
  std::uint64_t steps;
  std::int64_t arrival;
  std::uint64_t dsteps;
  std::uint64_t digest;
  std::vector<float> h;
  std::vector<float> c;
};

/// A deterministic mixed-kind record sequence (payload and no-payload
/// records interleave so prefix boundaries land at varying offsets).
std::vector<Rec> make_records(int n) {
  std::vector<Rec> recs;
  for (int i = 0; i < n; ++i) {
    Rec r;
    r.id = static_cast<std::uint64_t>(100 + i % 3);
    r.gen = static_cast<std::uint64_t>(i % 2);
    r.steps = static_cast<std::uint64_t>(i);
    r.arrival = 1000 * i;
    r.dsteps = static_cast<std::uint64_t>(i);
    r.digest = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    if (i % 3 == 2) {
      r.kind = JournalRecordKind::kCreate;
    } else {
      r.kind = JournalRecordKind::kUpdate;
      for (num::Index j = 0; j < kWidth; ++j) {
        r.h.push_back(0.25f * static_cast<float>(i + j));
        r.c.push_back(-0.5f * static_cast<float>(i) + static_cast<float>(j));
      }
    }
    recs.push_back(std::move(r));
  }
  return recs;
}

std::uint64_t size_of(const Rec& r) {
  return r.kind == JournalRecordKind::kUpdate ? kUpdateSize : kRecHeader;
}

void append_all(Journal& j, const std::vector<Rec>& recs) {
  for (const Rec& r : recs) {
    ASSERT_TRUE(j.append(r.kind, r.id, r.gen, r.steps, r.arrival, r.dsteps,
                         r.digest, r.h.empty() ? nullptr : r.h.data(),
                         r.c.empty() ? nullptr : r.c.data()));
    ASSERT_TRUE(j.commit());
  }
}

void expect_prefix(Journal& j, const std::vector<Rec>& recs,
                   std::size_t expect_n) {
  std::size_t i = 0;
  j.replay([&](const JournalRecord& r) {
    ASSERT_LT(i, expect_n) << "replayed past the valid prefix";
    const Rec& want = recs[i];
    EXPECT_EQ(r.kind, want.kind) << "record " << i;
    EXPECT_EQ(r.lsn, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.id, want.id);
    EXPECT_EQ(r.generation, want.gen);
    EXPECT_EQ(r.steps, want.steps);
    EXPECT_EQ(r.arrival_us, want.arrival);
    EXPECT_EQ(r.digest_steps, want.dsteps);
    EXPECT_EQ(r.digest, want.digest);
    if (want.kind == JournalRecordKind::kUpdate) {
      ASSERT_NE(r.h, nullptr);
      ASSERT_NE(r.c, nullptr);
      EXPECT_EQ(std::memcmp(r.h, want.h.data(), kWidth * sizeof(float)), 0)
          << "h payload bits differ at record " << i;
      EXPECT_EQ(std::memcmp(r.c, want.c.data(), kWidth * sizeof(float)), 0)
          << "c payload bits differ at record " << i;
    } else {
      EXPECT_EQ(r.h, nullptr);
    }
    ++i;
  });
  EXPECT_EQ(i, expect_n) << "valid prefix shorter than committed";
}

TEST(JournalTest, AppendCommitReopenReplaysEverythingBitExact) {
  MemEnv env;
  const auto recs = make_records(12);
  {
    Journal j(env, {.path = "j"}, kWidth);
    ASSERT_TRUE(j.ok());
    append_all(j, recs);
    EXPECT_EQ(j.appended(), recs.size());
  }
  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.recovered_records(), recs.size());
  EXPECT_EQ(j.truncated_tail_bytes(), 0u);
  EXPECT_EQ(j.recovered_max_arrival_us(), recs.back().arrival);
  expect_prefix(j, recs, recs.size());
}

// The tentpole matrix: crash at EVERY byte offset of the journal file.
// For each offset L, the file is cut to L bytes (what a torn write /
// power cut leaves) and recovery must yield exactly the record prefix
// that fits entirely within L, truncate the rest, and leave the
// journal writable.
TEST(JournalTest, KillAtEveryByteOffsetRecoversTheValidPrefix) {
  MemEnv golden_env;
  const auto recs = make_records(10);
  {
    Journal j(golden_env, {.path = "j"}, kWidth);
    append_all(j, recs);
  }
  const std::vector<std::uint8_t> full = *golden_env.bytes("j");

  // Prefix-sum record boundaries.
  std::vector<std::uint64_t> ends;  // file offset where record i ends
  std::uint64_t off = kFileHeader;
  for (const Rec& r : recs) {
    off += size_of(r);
    ends.push_back(off);
  }
  ASSERT_EQ(off, full.size()) << "layout drifted from the documented format";

  for (std::uint64_t cut = 0; cut <= full.size(); ++cut) {
    MemEnv env;
    {
      auto f = env.open("j", true);
      ASSERT_EQ(f->write_at(0, full.data(), cut), cut);
    }
    Journal j(env, {.path = "j"}, kWidth);
    ASSERT_TRUE(j.ok()) << "cut=" << cut;

    std::size_t expect_n = 0;
    while (expect_n < ends.size() && ends[expect_n] <= cut) ++expect_n;
    if (cut < kFileHeader) {
      // Crash inside the very first header write: an empty journal,
      // rewritten fresh.
      EXPECT_EQ(j.recovered_records(), 0u) << "cut=" << cut;
      EXPECT_EQ(j.file_bytes(), kFileHeader);
      expect_n = 0;
    } else {
      EXPECT_EQ(j.recovered_records(), expect_n) << "cut=" << cut;
      const std::uint64_t prefix_end =
          expect_n == 0 ? kFileHeader : ends[expect_n - 1];
      EXPECT_EQ(j.file_bytes(), prefix_end) << "cut=" << cut;
      EXPECT_EQ(j.truncated_tail_bytes(), cut - prefix_end) << "cut=" << cut;
    }
    {
      SCOPED_TRACE("cut=" + std::to_string(cut));
      expect_prefix(j, recs, expect_n);
    }

    // The recovered journal must still be writable, with LSNs
    // continuing past everything it has ever seen (never reused).
    ASSERT_TRUE(j.enabled());
    const Rec& extra = recs[0];
    ASSERT_TRUE(j.append(extra.kind, 999, 0, 1, 99'000, 1, 42,
                         extra.h.empty() ? nullptr : extra.h.data(),
                         extra.c.empty() ? nullptr : extra.c.data()));
    ASSERT_TRUE(j.commit());
  }
}

// Bit rot at every byte of one record: CRC catches it, the record and
// everything after it (valid-PREFIX semantics) are discarded, earlier
// records survive.
TEST(JournalTest, BitRotAtEveryByteOfARecordCutsThePrefixThere) {
  MemEnv golden_env;
  const auto recs = make_records(6);
  {
    Journal j(golden_env, {.path = "j"}, kWidth);
    append_all(j, recs);
  }
  const std::vector<std::uint8_t> full = *golden_env.bytes("j");

  // Rot every byte of record 3 (an update record with payload).
  std::uint64_t rec_start = kFileHeader;
  for (int i = 0; i < 3; ++i) rec_start += size_of(recs[i]);
  const std::uint64_t rec_end = rec_start + size_of(recs[3]);
  for (std::uint64_t off = rec_start; off < rec_end; ++off) {
    MemEnv env;
    {
      auto f = env.open("j", true);
      ASSERT_EQ(f->write_at(0, full.data(), full.size()), full.size());
    }
    (*env.bytes("j"))[off] ^= 0x40;
    Journal j(env, {.path = "j"}, kWidth);
    ASSERT_TRUE(j.ok());
    // Corruption in the LSN field can masquerade as a skippable or
    // larger LSN but never passes the CRC; whatever the field hit, the
    // prefix must stop at or before record 3 and include records 0..2.
    EXPECT_EQ(j.recovered_records(), 3u) << "rotten byte at " << off;
    {
      SCOPED_TRACE("rot at " + std::to_string(off));
      expect_prefix(j, recs, 3);
    }
  }

  // Rot in the FILE header with committed records behind it: starting
  // fresh would silently orphan all of them, so the journal refuses to
  // open and leaves the file byte-for-byte untouched for forensics.
  for (std::uint64_t off = 0; off < kFileHeader; ++off) {
    MemEnv env;
    {
      auto f = env.open("j", true);
      ASSERT_EQ(f->write_at(0, full.data(), full.size()), full.size());
    }
    std::vector<std::uint8_t> rotten = full;
    rotten[off] ^= 0x01;
    (*env.bytes("j"))[off] ^= 0x01;
    Journal j(env, {.path = "j"}, kWidth);
    EXPECT_FALSE(j.ok()) << "header rot at " << off;
    EXPECT_FALSE(j.open_error().empty()) << "header rot at " << off;
    EXPECT_EQ(*env.bytes("j"), rotten) << "file mutated at rot " << off;
  }

  // The same rot on a record-free journal (header only) is a torn
  // first write, not lost history: recovery starts fresh.
  for (std::uint64_t off = 0; off < kFileHeader; ++off) {
    MemEnv env;
    {
      auto f = env.open("j", true);
      ASSERT_EQ(f->write_at(0, full.data(), kFileHeader), kFileHeader);
    }
    (*env.bytes("j"))[off] ^= 0x01;
    Journal j(env, {.path = "j"}, kWidth);
    ASSERT_TRUE(j.ok()) << "header rot at " << off;
    EXPECT_EQ(j.recovered_records(), 0u);
    EXPECT_EQ(j.file_bytes(), kFileHeader);
  }
}

TEST(JournalTest, FsyncFailureDisablesJournalButKeepsCommittedPrefix) {
  MemEnv base;
  FaultInjectingEnv env(base);
  const auto recs = make_records(5);
  FaultyFile* jf = nullptr;
  env.on_open = [&](const std::string& name, FaultyFile& f) {
    if (name == "j") jf = &f;
  };
  {
    Journal j(env, {.path = "j", .max_write_attempts = 3}, kWidth);
    ASSERT_TRUE(j.ok());
    // Three committed records...
    for (int i = 0; i < 3; ++i) {
      const Rec& r = recs[static_cast<std::size_t>(i)];
      ASSERT_TRUE(j.append(r.kind, r.id, r.gen, r.steps, r.arrival, r.dsteps,
                           r.digest, r.h.empty() ? nullptr : r.h.data(),
                           r.c.empty() ? nullptr : r.c.data()));
      ASSERT_TRUE(j.commit());
    }
    // ...then the disk stops syncing: bounded retries, then degrade.
    ASSERT_NE(jf, nullptr);
    jf->fail_syncs(100);
    const Rec& r = recs[3];
    ASSERT_TRUE(j.append(r.kind, r.id, r.gen, r.steps, r.arrival, r.dsteps,
                         r.digest, r.h.empty() ? nullptr : r.h.data(),
                         r.c.empty() ? nullptr : r.c.data()));
    EXPECT_FALSE(j.commit()) << "a failed group commit must be reported";
    EXPECT_FALSE(j.enabled()) << "write-error policy must disable, not loop";
    EXPECT_GE(j.write_errors(), 3u);
    // Disabled journal refuses further work — undurable, not wedged.
    EXPECT_FALSE(j.append(r.kind, r.id, r.gen, r.steps, r.arrival, r.dsteps,
                          r.digest, r.h.empty() ? nullptr : r.h.data(),
                          r.c.empty() ? nullptr : r.c.data()));
  }
  // The three committed records survive; the unsynced fourth may too
  // (MemEnv kept its bytes) — recovery accepts any valid prefix, which
  // is allowed to exceed the committed prefix, never to fall short.
  Journal j(base, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_GE(j.recovered_records(), 3u);
}

TEST(JournalTest, TornAppendWriteDegradesAndLeavesRecoverableFile) {
  MemEnv base;
  FaultInjectingEnv env(base);
  FaultyFile* jf = nullptr;
  env.on_open = [&](const std::string& name, FaultyFile& f) {
    if (name == "j") jf = &f;
  };
  const auto recs = make_records(4);
  {
    Journal j(env, {.path = "j", .max_write_attempts = 2}, kWidth);
    append_all(j, recs);
    // The disk dies mid-record: the write tears, retries fail outright.
    jf->fail_after_written_bytes(jf->written_bytes() + 10);
    const Rec& r = recs[0];
    EXPECT_FALSE(j.append(r.kind, 7, 0, 1, 50'000, 1, 1,
                          r.h.empty() ? nullptr : r.h.data(),
                          r.c.empty() ? nullptr : r.c.data()));
    EXPECT_FALSE(j.enabled());
    EXPECT_GE(j.write_errors(), 2u);
  }
  Journal j(base, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.recovered_records(), recs.size())
      << "the torn suffix must not cost any committed record";
  expect_prefix(j, recs, recs.size());
}

TEST(JournalTest, CheckpointTruncatesAndWatermarkSkipsCoveredRecords) {
  MemEnv env;
  const auto recs = make_records(8);
  std::vector<CheckpointSession> sessions(1);
  sessions[0].id = 100;
  sessions[0].generation = 1;
  sessions[0].steps = 7;
  sessions[0].arrival_us = 7'000;
  sessions[0].h.assign(kWidth, 1.5f);
  sessions[0].c.assign(kWidth, -2.5f);
  std::vector<CheckpointDigest> digests(2);
  digests[0] = {100, 7, 0xabcdef01ULL};
  digests[1] = {101, 3, 0x12345678ULL};

  {
    Journal j(env, {.path = "j", .checkpoint_bytes = 64}, kWidth);
    append_all(j, recs);
    EXPECT_TRUE(j.wants_checkpoint());
    ASSERT_TRUE(j.checkpoint(sessions, digests));
    EXPECT_EQ(j.file_bytes(), kFileHeader) << "journal must truncate";
    EXPECT_FALSE(j.wants_checkpoint());
    // Two post-checkpoint records.
    const Rec& r = recs[0];
    ASSERT_TRUE(j.append(JournalRecordKind::kUpdate, 100, 1, 8, 8'000, 8, 9,
                         r.h.data(), r.c.data()));
    ASSERT_TRUE(j.append(JournalRecordKind::kErase, 101, 0, 3, 9'000, 3, 0));
    ASSERT_TRUE(j.commit());
  }

  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j.checkpoint_sessions().size(), 1u);
  const CheckpointSession& s = j.checkpoint_sessions()[0];
  EXPECT_EQ(s.id, 100u);
  EXPECT_EQ(s.generation, 1u);
  EXPECT_EQ(s.steps, 7u);
  EXPECT_EQ(s.arrival_us, 7'000);
  EXPECT_EQ(std::memcmp(s.h.data(), sessions[0].h.data(),
                        kWidth * sizeof(float)),
            0);
  ASSERT_EQ(j.checkpoint_digests().size(), 2u);
  EXPECT_EQ(j.checkpoint_digests()[1].id, 101u);
  EXPECT_EQ(j.checkpoint_digests()[1].digest, 0x12345678ULL);
  // Only the two post-watermark records replay; LSNs continue.
  EXPECT_EQ(j.recovered_records(), 2u);
  std::vector<std::uint64_t> lsns;
  j.replay([&](const JournalRecord& r) { lsns.push_back(r.lsn); });
  ASSERT_EQ(lsns.size(), 2u);
  EXPECT_EQ(lsns[0], recs.size() + 1);
  EXPECT_EQ(lsns[1], recs.size() + 2);
}

// The mid-compaction crash window the watermark exists for: the
// checkpoint rename committed, but the process died before the journal
// truncate. The stale journal suffix is entirely covered by the
// checkpoint and must be skipped, not double-applied.
TEST(JournalTest, CrashBetweenCheckpointRenameAndTruncateIsHarmless) {
  MemEnv env;
  const auto recs = make_records(6);
  std::vector<CheckpointSession> sessions;
  std::vector<CheckpointDigest> digests(1);
  digests[0] = {100, 6, 0xfeedULL};
  std::vector<std::uint8_t> pre_truncate_journal;
  {
    Journal j(env, {.path = "j", .checkpoint_bytes = 64}, kWidth);
    append_all(j, recs);
    pre_truncate_journal = *env.bytes("j");
    ASSERT_TRUE(j.checkpoint(sessions, digests));
  }
  // Resurrect the pre-truncate journal beside the committed checkpoint
  // — byte-exactly the crash-between state.
  *env.bytes("j") = pre_truncate_journal;

  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.recovered_records(), 0u)
      << "covered records replayed — absolute state double-applied";
  ASSERT_EQ(j.checkpoint_digests().size(), 1u);
  EXPECT_EQ(j.checkpoint_digests()[0].digest, 0xfeedULL);
  std::size_t replayed = 0;
  j.replay([&](const JournalRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
  // New appends continue past every LSN the stale suffix used.
  ASSERT_TRUE(j.append(JournalRecordKind::kErase, 1, 0, 0, 10'000, 0, 0));
  ASSERT_TRUE(j.commit());
  Journal j2(env, {.path = "j"}, kWidth);
  std::vector<std::uint64_t> lsns;
  j2.replay([&](const JournalRecord& r) { lsns.push_back(r.lsn); });
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_GT(lsns[0], recs.size());
}

TEST(JournalTest, TornCheckpointWriteKeepsJournalAuthoritative) {
  MemEnv base;
  FaultInjectingEnv env(base);
  env.on_open = [&](const std::string& name, FaultyFile& f) {
    if (name == "j.ckpt.tmp") f.fail_after_written_bytes(8);
  };
  const auto recs = make_records(5);
  Journal j(env, {.path = "j", .checkpoint_bytes = 64}, kWidth);
  append_all(j, recs);
  const std::uint64_t bytes_before = j.file_bytes();
  EXPECT_FALSE(j.checkpoint({}, {})) << "a torn checkpoint must not commit";
  EXPECT_TRUE(j.enabled()) << "a failed checkpoint is not a journal failure";
  EXPECT_EQ(j.file_bytes(), bytes_before) << "journal must stay untruncated";
  EXPECT_FALSE(base.exists("j.ckpt")) << "no partial checkpoint visible";

  // Everything still recovers from the journal alone.
  Journal j2(base, {.path = "j"}, kWidth);
  EXPECT_EQ(j2.recovered_records(), recs.size());
}

TEST(JournalTest, CorruptCheckpointIsDiscardedWholeNeverPartiallyApplied) {
  MemEnv env;
  const auto recs = make_records(6);
  std::vector<CheckpointDigest> digests(1);
  digests[0] = {100, 6, 0xfeedULL};
  {
    Journal j(env, {.path = "j", .checkpoint_bytes = 64}, kWidth);
    append_all(j, recs);
    ASSERT_TRUE(j.checkpoint({}, digests));
    ASSERT_TRUE(j.append(JournalRecordKind::kErase, 1, 0, 0, 10'000, 0, 0));
    ASSERT_TRUE(j.commit());
  }
  // One lazy bit flips in the checkpoint body.
  (*env.bytes("j.ckpt"))[20] ^= 0x80;

  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok()) << "corrupt checkpoint must degrade, never abort";
  EXPECT_EQ(j.checkpoint_corrupt(), 1u);
  EXPECT_TRUE(j.checkpoint_sessions().empty());
  EXPECT_TRUE(j.checkpoint_digests().empty());
  // With the watermark gone, the journal suffix replays on its own.
  EXPECT_EQ(j.recovered_records(), 1u);
}

TEST(JournalTest, OrphanedTmpFilesAreRemovedAndCounted) {
  MemEnv env;
  for (const char* name : {"j.tmp", "j.ckpt.tmp"}) {
    auto f = env.open(name, true);
    const char junk[] = "half-written checkpoint debris";
    ASSERT_EQ(f->write_at(0, junk, sizeof junk), sizeof junk);
  }
  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.orphans_removed(), 2u);
  EXPECT_FALSE(env.exists("j.tmp"));
  EXPECT_FALSE(env.exists("j.ckpt.tmp"));
}

TEST(JournalTest, WidthMismatchRefusesToOpenAndPreservesTheFile) {
  MemEnv env;
  const auto recs = make_records(4);
  {
    Journal j(env, {.path = "j"}, kWidth);
    append_all(j, recs);
  }
  const std::vector<std::uint8_t> before = *env.bytes("j");

  // A journal written at width 4 opened at width 8 is the same spill
  // dir under a different model — a configuration error, not
  // corruption. Truncating (the old behavior) would silently destroy
  // committed history; the journal must refuse and explain instead.
  {
    Journal j(env, {.path = "j"}, 2 * kWidth);
    EXPECT_FALSE(j.ok());
    EXPECT_FALSE(j.open_error().empty());
    EXPECT_NE(j.open_error().find("state_width"), std::string::npos);
    EXPECT_EQ(j.recovered_records(), 0u);
  }
  EXPECT_EQ(*env.bytes("j"), before) << "refused open must not mutate";

  // Reopened at the right width, every committed record is still there.
  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j.open_error().empty());
  EXPECT_EQ(j.recovered_records(), recs.size());
  expect_prefix(j, recs, recs.size());
}

TEST(JournalTest, CheckpointWidthMismatchAlsoRefusesToOpen) {
  MemEnv env;
  const auto recs = make_records(6);
  {
    Journal j(env, {.path = "j", .checkpoint_bytes = 1}, kWidth);
    append_all(j, recs);
    // Force a checkpoint so the durable history lives in j.ckpt.
    std::vector<CheckpointSession> sessions;
    CheckpointSession s;
    s.id = 7;
    s.h.assign(static_cast<std::size_t>(kWidth), 1.0f);
    s.c.assign(static_cast<std::size_t>(kWidth), 2.0f);
    sessions.push_back(std::move(s));
    ASSERT_TRUE(j.checkpoint(sessions, {}));
  }
  const std::vector<std::uint8_t> ckpt_before = *env.bytes("j.ckpt");

  // The checkpoint is CRC-valid, just the wrong shape: discarding it as
  // "corrupt" (and truncating on the next checkpoint) would erase the
  // committed population, so the open refuses outright.
  {
    Journal j(env, {.path = "j"}, 2 * kWidth);
    EXPECT_FALSE(j.ok());
    EXPECT_FALSE(j.open_error().empty());
    EXPECT_EQ(j.checkpoint_corrupt(), 0u)
        << "a healthy foreign checkpoint is not corruption";
  }
  EXPECT_EQ(*env.bytes("j.ckpt"), ckpt_before);

  // Right width: the checkpoint population is intact.
  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j.checkpoint_sessions().size(), 1u);
  EXPECT_EQ(j.checkpoint_sessions()[0].id, 7u);
}

TEST(JournalTest, PoisonedJournalRefusesEveryWriteAndLeavesTheFileAlone) {
  MemEnv env;
  const auto recs = make_records(4);
  Journal j(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(j.ok());
  append_all(j, recs);
  const std::vector<std::uint8_t> before = *env.bytes("j");

  // poison() is the rebuild fence (serve/pool.cc::rebuild_shard): after
  // it returns, this handle must never write again — a replacement
  // journal has reopened the same path and owns the tail.
  j.poison();
  EXPECT_TRUE(j.poisoned());
  EXPECT_FALSE(j.enabled());
  const Rec& r = recs[0];
  EXPECT_FALSE(j.append(r.kind, r.id, r.gen, r.steps, r.arrival, r.dsteps,
                        r.digest, r.h.empty() ? nullptr : r.h.data(),
                        r.c.empty() ? nullptr : r.c.data()));
  EXPECT_FALSE(j.commit());
  EXPECT_FALSE(j.checkpoint({}, {}));
  EXPECT_EQ(*env.bytes("j"), before) << "poisoned handle wrote";
  EXPECT_FALSE(env.exists("j.ckpt"));
  EXPECT_FALSE(env.exists("j.ckpt.tmp"));

  // The fenced file is untouched, so a successor (or the next boot)
  // recovers everything that was committed before the fence.
  Journal fresh(env, {.path = "j"}, kWidth);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.recovered_records(), recs.size());
}

}  // namespace
}  // namespace zss::store
