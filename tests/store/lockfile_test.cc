#include "store/lockfile.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

// DirLock is the "one owner per spill directory" guard and the first
// rung of crash recovery: a LOCK file left behind by a dead process
// must not block restart (flock dies with its owner), but the takeover
// must be REPORTED so startup can print an actionable "recovering
// after crash of pid N" message instead of a mystifying stale file.
// flock semantics need a real filesystem, so these tests run against a
// mkdtemp scratch directory rather than MemEnv.
namespace zss::store {
namespace {

class LockfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/zss_lock_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::remove((dir_ + "/LOCK").c_str());
    rmdir(dir_.c_str());
  }

  std::string dir_;
};

TEST_F(LockfileTest, FreshDirectoryAcquiresWithoutTakeover) {
  DirLock lock;
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  EXPECT_TRUE(lock.held());
  EXPECT_FALSE(lock.took_over_stale());
}

TEST_F(LockfileTest, SecondOwnerIsRefusedWhileLockIsHeld) {
  DirLock first;
  ASSERT_TRUE(first.acquire(dir_)) << first.error();

  DirLock second;
  EXPECT_FALSE(second.acquire(dir_));
  EXPECT_FALSE(second.held());
  EXPECT_FALSE(second.error().empty())
      << "refusal must say why, not fail silently";
}

TEST_F(LockfileTest, StaleLockFromDeadOwnerIsTakenOverAndReported) {
  // A crashed owner leaves the LOCK file but the kernel released its
  // flock. Simulate by acquiring and releasing (release keeps the file
  // — unlinking would race a concurrent acquirer).
  {
    DirLock crashed;
    ASSERT_TRUE(crashed.acquire(dir_)) << crashed.error();
  }
  std::ifstream still_there(dir_ + "/LOCK");
  ASSERT_TRUE(still_there.good()) << "LOCK file must survive release";

  DirLock lock;
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  EXPECT_TRUE(lock.took_over_stale())
      << "takeover of a dead owner's lock must be surfaced";
  // The dead owner was this very process, and it recorded its pid.
  EXPECT_EQ(lock.previous_pid(), static_cast<long>(getpid()));
}

TEST_F(LockfileTest, ForeignStaleLockReportsTheRecordedPid) {
  {
    std::ofstream f(dir_ + "/LOCK");
    f << "987654\n";
  }
  DirLock lock;
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  EXPECT_TRUE(lock.took_over_stale());
  EXPECT_EQ(lock.previous_pid(), 987654L);
}

TEST_F(LockfileTest, UnreadablePidInStaleLockIsNotFatal) {
  {
    std::ofstream f(dir_ + "/LOCK");
    f << "not-a-pid";
  }
  DirLock lock;
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  EXPECT_TRUE(lock.took_over_stale());
  EXPECT_EQ(lock.previous_pid(), -1L);
}

TEST_F(LockfileTest, MissingDirectoryFailsWithError) {
  DirLock lock;
  EXPECT_FALSE(lock.acquire(dir_ + "/does/not/exist"));
  EXPECT_FALSE(lock.held());
  EXPECT_FALSE(lock.error().empty());
}

TEST_F(LockfileTest, ReleaseThenReacquireBySameObjectWorks) {
  DirLock lock;
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  lock.release();
  EXPECT_FALSE(lock.held());
  ASSERT_TRUE(lock.acquire(dir_)) << lock.error();
  EXPECT_TRUE(lock.held());
}

}  // namespace
}  // namespace zss::store
