#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "num/matrix.h"
#include "num/rng.h"
#include "store/io.h"
#include "store/segment_store.h"
#include "faulty_env.h"

// The crash-point recovery matrix (docs/store.md "Recovery
// invariants"): a segment file cut off at ANY byte offset of an
// in-flight append must reopen to exactly the committed prefix —
// every committed record restored bit-for-bit, the torn tail
// truncated, and the store appendable again. Plus the other injected
// failures a real disk produces: fsync errors (write-error policy),
// bit rot inside the file (valid-prefix truncation on reopen, corrupt
// counter on live restore), and crashes at every stage of compaction.
namespace zss::store {
namespace {

constexpr num::Index kDh = 8;

using State = std::pair<num::Matrix, num::Matrix>;

State make_state(std::uint64_t seed, double zero_frac = 0.5) {
  num::Rng rng(seed);
  State s;
  s.first.resize(1, kDh);
  s.second.resize(1, kDh);
  for (num::Index j = 0; j < kDh; ++j) {
    s.first(0, j) = rng.uniform() < zero_frac
                        ? 0.0f
                        : static_cast<float>(rng.normal() * 0.41);
    s.second(0, j) = static_cast<float>(rng.normal() * 1.3);
  }
  return s;
}

void expect_bits_equal(const num::Matrix& a, const num::Matrix& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
}

StoreConfig config(bool encoded = false) {
  StoreConfig cfg;
  cfg.path = "seg";
  cfg.encoded = encoded;
  return cfg;
}

RecordMeta meta_of(std::uint64_t id) {
  return {/*generation=*/id, /*steps=*/id * 10,
          /*arrival_us=*/static_cast<std::int64_t>(id * 100)};
}

/// Runs the byte-offset matrix for one payload flavour: K committed
/// records, then record K+1's append crashes after exactly N bytes,
/// for every N from 0 through the full record.
void run_crash_point_matrix(bool encoded) {
  constexpr std::uint64_t kCommitted = 3;
  std::vector<State> states;
  for (std::uint64_t id = 1; id <= kCommitted + 1; ++id) {
    // Mix sparsities so the encoded flavour exercises both encoded
    // payloads and the dense fallback within one file.
    states.push_back(make_state(id * 977, id % 2 == 0 ? 0.8 : 0.1));
  }

  // Reference image: the file bytes with all K+1 records committed,
  // and the boundary after the K-th.
  MemEnv ref_env;
  std::vector<std::uint8_t> full;
  std::uint64_t prefix_len = 0;
  {
    SegmentStore store(ref_env, config(encoded), kDh);
    for (std::uint64_t id = 1; id <= kCommitted + 1; ++id) {
      ASSERT_TRUE(store.spill(id, meta_of(id), states[id - 1].first,
                              states[id - 1].second));
      if (id == kCommitted) prefix_len = store.file_bytes();
    }
    full = *ref_env.bytes("seg");
  }
  ASSERT_GT(prefix_len, 0u);
  ASSERT_GT(full.size(), prefix_len);
  const std::uint64_t record_len = full.size() - prefix_len;

  for (std::uint64_t n = 0; n <= record_len; ++n) {
    SCOPED_TRACE("encoded=" + std::to_string(encoded) +
                 " crash_at_byte=" + std::to_string(n));
    MemEnv env;
    { env.open("seg", /*truncate_existing=*/true); }
    *env.bytes("seg") = std::vector<std::uint8_t>(
        full.begin(), full.begin() + static_cast<std::ptrdiff_t>(prefix_len + n));

    SegmentStore store(env, config(encoded), kDh);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.spilling_enabled());
    const bool tail_complete = n == record_len;
    // A fully-present record is recovered even though it was never
    // acked ("may vanish or arrive", io.h); anything less is torn and
    // must be cut.
    EXPECT_EQ(store.recovered_records(), kCommitted + (tail_complete ? 1 : 0));
    EXPECT_EQ(store.truncated_tail_bytes(), tail_complete ? 0 : n);
    EXPECT_EQ(store.file_bytes(), tail_complete ? full.size() : prefix_len);

    // Nothing committed is lost: every acked record restores exactly.
    for (std::uint64_t id = 1; id <= kCommitted; ++id) {
      num::Matrix h, c;
      RecordMeta m;
      ASSERT_EQ(store.restore_into(id, &m, h, c), RestoreResult::kOk);
      expect_bits_equal(states[id - 1].first, h);
      expect_bits_equal(states[id - 1].second, c);
      EXPECT_EQ(m.steps, meta_of(id).steps);
    }

    // The store is live again: appending over the truncated tail works.
    const State fresh = make_state(31337, 0.4);
    ASSERT_TRUE(store.spill(99, meta_of(99), fresh.first, fresh.second));
    num::Matrix h, c;
    ASSERT_EQ(store.restore_into(99, nullptr, h, c), RestoreResult::kOk);
    expect_bits_equal(fresh.first, h);
  }
}

TEST(FaultInjectionTest, CrashAtEveryByteOffsetRecoversCommittedPrefix) {
  run_crash_point_matrix(/*encoded=*/false);
}

TEST(FaultInjectionTest, CrashMatrixHoldsForEncodedPayloads) {
  run_crash_point_matrix(/*encoded=*/true);
}

TEST(FaultInjectionTest, CrashInsideFileHeaderStartsFresh) {
  // Reference 16-byte header from a fresh store.
  MemEnv ref_env;
  { SegmentStore store(ref_env, config(), kDh); }
  const std::vector<std::uint8_t> header = *ref_env.bytes("seg");
  ASSERT_EQ(header.size(), 16u);

  for (std::size_t n = 0; n <= header.size(); ++n) {
    SCOPED_TRACE("header_bytes_present=" + std::to_string(n));
    MemEnv env;
    { env.open("seg", /*truncate_existing=*/true); }
    *env.bytes("seg") = std::vector<std::uint8_t>(header.begin(),
                                                  header.begin() +
                                                      static_cast<std::ptrdiff_t>(n));
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.recovered_records(), 0u);
    const State s = make_state(n + 1);
    ASSERT_TRUE(store.spill(1, {}, s.first, s.second));
    num::Matrix h, c;
    ASSERT_EQ(store.restore_into(1, nullptr, h, c), RestoreResult::kOk);
    expect_bits_equal(s.first, h);
  }
}

TEST(FaultInjectionTest, FsyncFailureDisablesSpillingAndPreservesPrefix) {
  MemEnv mem;
  FaultInjectingEnv env(mem);
  SegmentStore store(env, config(), kDh);
  const State a = make_state(1), b = make_state(2);
  ASSERT_TRUE(store.spill(1, meta_of(1), a.first, a.second));

  // Every retry's sync fails: the record is never committed, the store
  // degrades, and its best-effort truncate removes the unacked bytes.
  env.last_opened()->fail_syncs(3);
  EXPECT_FALSE(store.spill(2, meta_of(2), b.first, b.second));
  EXPECT_FALSE(store.spilling_enabled());
  EXPECT_EQ(store.write_errors(), 3u);

  // Reopening sees exactly the committed prefix.
  SegmentStore reopened(mem, config(), kDh);
  EXPECT_EQ(reopened.recovered_records(), 1u);
  num::Matrix h, c;
  ASSERT_EQ(reopened.restore_into(1, nullptr, h, c), RestoreResult::kOk);
  expect_bits_equal(a.first, h);
  EXPECT_EQ(reopened.restore_into(2, nullptr, h, c), RestoreResult::kMissing);
}

TEST(FaultInjectionTest, BitRotMidFileTruncatesToValidPrefixOnReopen) {
  MemEnv env;
  std::uint64_t first_len = 0;
  const State a = make_state(1), b = make_state(2), c3 = make_state(3);
  {
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.spill(1, meta_of(1), a.first, a.second));
    first_len = store.file_bytes();
    ASSERT_TRUE(store.spill(2, meta_of(2), b.first, b.second));
    ASSERT_TRUE(store.spill(3, meta_of(3), c3.first, c3.second));
  }
  std::vector<std::uint8_t>* bytes = env.bytes("seg");
  const std::uint64_t fsize = bytes->size();
  (*bytes)[first_len + 20] ^= 0x01;  // one flipped bit inside record 2

  // The scan cannot trust anything past the first bad CRC (a record
  // boundary after corrupt bytes is itself unreliable): conservative
  // truncation to the last provably-valid prefix.
  SegmentStore store(env, config(), kDh);
  EXPECT_EQ(store.recovered_records(), 1u);
  EXPECT_EQ(store.truncated_tail_bytes(), fsize - first_len);
  num::Matrix h, c;
  ASSERT_EQ(store.restore_into(1, nullptr, h, c), RestoreResult::kOk);
  expect_bits_equal(a.first, h);
  EXPECT_EQ(store.restore_into(2, nullptr, h, c), RestoreResult::kMissing);
}

TEST(FaultInjectionTest, CompactionCrashLeavesOldFileAuthoritative) {
  MemEnv mem;
  FaultInjectingEnv env(mem);
  std::vector<State> states;
  SegmentStore store(env, config(), kDh);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    states.push_back(make_state(id * 13));
    ASSERT_TRUE(store.spill(id, meta_of(id), states.back().first,
                            states.back().second));
  }
  store.erase(4);

  // Crash the compaction at several stages: during the tmp header
  // write, mid-record copy, and at the final sync.
  for (const std::uint64_t tmp_write_limit : {0ull, 10ull, 60ull, 200ull}) {
    env.on_open = [&](const std::string& name, FaultyFile& f) {
      if (name == "seg.tmp") f.fail_after_written_bytes(tmp_write_limit);
    };
    EXPECT_FALSE(store.compact());
    EXPECT_EQ(store.compactions(), 0u);
  }
  env.on_open = [](const std::string& name, FaultyFile& f) {
    if (name == "seg.tmp") f.fail_syncs(1);
  };
  EXPECT_FALSE(store.compact());
  env.on_open = nullptr;

  // Old file untouched by the failed attempts: everything live reads.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    num::Matrix h, c;
    ASSERT_EQ(store.restore_into(id, nullptr, h, c), RestoreResult::kOk);
    expect_bits_equal(states[id - 1].first, h);
    // Put it back so the next stage still has records to compact.
    ASSERT_TRUE(store.spill(id, meta_of(id), states[id - 1].first,
                            states[id - 1].second));
  }

  // With the faults cleared the same compaction commits, and the
  // store's post-rename handle serves and appends correctly.
  ASSERT_TRUE(store.compact());
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_EQ(store.live_records(), 3u);
  EXPECT_EQ(store.dead_bytes(), 0u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    num::Matrix h, c;
    ASSERT_EQ(store.restore_into(id, nullptr, h, c), RestoreResult::kOk);
    expect_bits_equal(states[id - 1].first, h);
  }
}

TEST(FaultInjectionTest, CrashBetweenTmpSyncAndRenameIsRecoveredOnOpen) {
  // Simulated directly on the byte level: a complete, synced seg.tmp
  // exists but the rename never happened. The base file must win and
  // the leftover must be deleted.
  MemEnv env;
  const State a = make_state(5);
  {
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.spill(1, meta_of(1), a.first, a.second));
  }
  {
    auto tmp = env.open("seg.tmp", /*truncate_existing=*/true);
    const std::vector<std::uint8_t>& base = *env.bytes("seg");
    ASSERT_EQ(tmp->write_at(0, base.data(), base.size()), base.size());
    ASSERT_TRUE(tmp->sync());
  }
  SegmentStore store(env, config(), kDh);
  EXPECT_FALSE(env.exists("seg.tmp"));
  EXPECT_EQ(store.recovered_records(), 1u);
  num::Matrix h, c;
  ASSERT_EQ(store.restore_into(1, nullptr, h, c), RestoreResult::kOk);
  expect_bits_equal(a.first, h);
}

TEST(FaultInjectionTest, TransientFailureWithinRetryBudgetCommitsCleanly) {
  // One failed attempt followed by a good one must behave exactly like
  // a clean append: the retry rewrites from the same tail offset, the
  // record commits, and nothing of the failed attempt is visible.
  MemEnv mem;
  FaultInjectingEnv env(mem);
  SegmentStore store(env, config(), kDh);
  const State a = make_state(7);
  ASSERT_TRUE(store.spill(1, meta_of(1), a.first, a.second));

  env.last_opened()->fail_syncs(1);  // attempt 1 tears at the barrier
  const State b = make_state(8);
  ASSERT_TRUE(store.spill(2, meta_of(2), b.first, b.second));
  EXPECT_EQ(store.write_errors(), 1u);
  EXPECT_TRUE(store.spilling_enabled());

  SegmentStore reopened(mem, config(), kDh);
  EXPECT_EQ(reopened.recovered_records(), 2u);
  num::Matrix h, c;
  ASSERT_EQ(reopened.restore_into(2, nullptr, h, c), RestoreResult::kOk);
  expect_bits_equal(b.first, h);
}

}  // namespace
}  // namespace zss::store
