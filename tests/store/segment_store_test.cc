#include "store/segment_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "num/matrix.h"
#include "num/rng.h"
#include "store/io.h"
#include "faulty_env.h"

// Functional coverage of the durable spill tier (docs/store.md): exact
// fp32 round-trips (dense and offset-encoded, including the -0.0 dense
// fallback), latest-record-wins reopen recovery, erase/consume
// semantics, compaction (threshold-driven and TTL-expiring) and the
// write-error degradation policy. The byte-offset crash matrix lives
// in fault_injection_test.cc.
namespace zss::store {
namespace {

constexpr num::Index kDh = 24;

/// Deterministic state with the shapes the tier must preserve exactly:
/// pruned-style zeros in h, full-precision c, and odd-rounded values
/// whose bits would change under any lossy re-encode.
void fill_state(std::uint64_t seed, double zero_frac, num::Matrix& h,
                num::Matrix& c) {
  num::Rng rng(seed);
  h.resize(1, kDh);
  c.resize(1, kDh);
  for (num::Index j = 0; j < kDh; ++j) {
    h(0, j) = rng.uniform() < zero_frac
                  ? 0.0f
                  : static_cast<float>(rng.normal() * 0.37);
    c(0, j) = static_cast<float>(rng.normal() * 1.1);
  }
}

void expect_bits_equal(const num::Matrix& a, const num::Matrix& b) {
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
}

StoreConfig config(bool encoded = false) {
  StoreConfig cfg;
  cfg.path = "seg";
  cfg.encoded = encoded;
  return cfg;
}

TEST(SegmentStoreTest, DenseRoundTripIsBitExact) {
  MemEnv env;
  SegmentStore store(env, config(), kDh);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.spilling_enabled());

  num::Matrix h, c;
  fill_state(1, 0.7, h, c);
  const RecordMeta meta{/*generation=*/3, /*steps=*/41, /*arrival_us=*/900};
  ASSERT_TRUE(store.spill(7, meta, h, c));
  EXPECT_EQ(store.live_records(), 1u);
  ASSERT_NE(store.find(7), nullptr);
  EXPECT_EQ(store.find(7)->steps, 41u);

  num::Matrix h2, c2;
  RecordMeta got;
  ASSERT_EQ(store.restore_into(7, &got, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  expect_bits_equal(c, c2);
  EXPECT_EQ(got.generation, 3u);
  EXPECT_EQ(got.steps, 41u);
  EXPECT_EQ(got.arrival_us, 900);

  // Consumed: the RAM copy is authoritative again.
  EXPECT_EQ(store.find(7), nullptr);
  EXPECT_EQ(store.restore_into(7, nullptr, h2, c2), RestoreResult::kMissing);
  EXPECT_EQ(store.spilled(), 1u);
  EXPECT_EQ(store.restored(), 1u);
}

TEST(SegmentStoreTest, EncodedRoundTripShrinksAndStaysBitExact) {
  MemEnv env;
  SegmentStore sparse_store(env, config(/*encoded=*/true), kDh);
  num::Matrix h, c;
  fill_state(2, 0.85, h, c);  // very sparse h: encoding must shrink
  ASSERT_TRUE(sparse_store.spill(1, {}, h, c));
  EXPECT_EQ(sparse_store.spill_fallback_dense(), 0u);

  MemEnv dense_env;
  SegmentStore dense_store(dense_env, config(/*encoded=*/false), kDh);
  ASSERT_TRUE(dense_store.spill(1, {}, h, c));
  EXPECT_LT(sparse_store.file_bytes(), dense_store.file_bytes());

  num::Matrix h2, c2;
  ASSERT_EQ(sparse_store.restore_into(1, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  expect_bits_equal(c, c2);
}

TEST(SegmentStoreTest, NegativeZeroForcesDenseFallbackAndKeepsItsSign) {
  MemEnv env;
  SegmentStore store(env, config(/*encoded=*/true), kDh);
  num::Matrix h, c;
  fill_state(3, 0.8, h, c);
  h(0, 5) = -0.0f;  // the offset encoding would restore this as +0.0f
  ASSERT_TRUE(store.spill(9, {}, h, c));
  EXPECT_EQ(store.spill_fallback_dense(), 1u);

  num::Matrix h2, c2;
  ASSERT_EQ(store.restore_into(9, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  EXPECT_TRUE(std::signbit(h2(0, 5)));
  EXPECT_EQ(h2(0, 5), 0.0f);
}

TEST(SegmentStoreTest, DenseStatesFallBackWhenEncodingWouldNotShrink) {
  MemEnv env;
  SegmentStore store(env, config(/*encoded=*/true), kDh);
  num::Matrix h, c;
  fill_state(4, 0.0, h, c);  // no zeros: encoded form would be larger
  ASSERT_TRUE(store.spill(2, {}, h, c));
  EXPECT_EQ(store.spill_fallback_dense(), 1u);
  num::Matrix h2, c2;
  ASSERT_EQ(store.restore_into(2, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  expect_bits_equal(c, c2);
}

TEST(SegmentStoreTest, ReopenRecoversLatestRecordPerSession) {
  MemEnv env;
  num::Matrix h_old, c_old, h_new, c_new;
  fill_state(5, 0.6, h_old, c_old);
  fill_state(6, 0.6, h_new, c_new);
  {
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.spill(11, {/*generation=*/0, /*steps=*/1, 100}, h_old,
                            c_old));
    ASSERT_TRUE(store.spill(12, {/*generation=*/0, /*steps=*/2, 110}, h_old,
                            c_old));
    // Supersede 11: the later record must win after reopen.
    ASSERT_TRUE(store.spill(11, {/*generation=*/1, /*steps=*/9, 200}, h_new,
                            c_new));
    EXPECT_GT(store.dead_bytes(), 0u);
  }
  SegmentStore reopened(env, config(), kDh);
  EXPECT_EQ(reopened.recovered_records(), 3u);
  EXPECT_EQ(reopened.live_records(), 2u);
  EXPECT_GT(reopened.dead_bytes(), 0u);

  num::Matrix h2, c2;
  RecordMeta meta;
  ASSERT_EQ(reopened.restore_into(11, &meta, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h_new, h2);
  EXPECT_EQ(meta.generation, 1u);
  EXPECT_EQ(meta.steps, 9u);
  ASSERT_EQ(reopened.restore_into(12, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h_old, h2);
}

TEST(SegmentStoreTest, MismatchedHiddenDimStartsFresh) {
  MemEnv env;
  num::Matrix h, c;
  fill_state(7, 0.5, h, c);
  {
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.spill(1, {}, h, c));
  }
  // A store of a different width cannot serve these payloads; it must
  // start a fresh segment, not misinterpret them.
  SegmentStore other(env, config(), kDh + 8);
  EXPECT_TRUE(other.ok());
  EXPECT_EQ(other.recovered_records(), 0u);
  EXPECT_EQ(other.live_records(), 0u);
}

TEST(SegmentStoreTest, EraseDropsWithoutReading) {
  MemEnv env;
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(8, 0.5, h, c);
  ASSERT_TRUE(store.spill(5, {}, h, c));
  store.erase(5);
  EXPECT_EQ(store.find(5), nullptr);
  EXPECT_GT(store.dead_bytes(), 0u);
  store.erase(5);  // idempotent
}

TEST(SegmentStoreTest, ExplicitCompactionDropsDeadAndExpired) {
  MemEnv env;
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(9, 0.5, h, c);
  ASSERT_TRUE(store.spill(1, {/*generation=*/0, /*steps=*/1, /*arrival=*/10},
                          h, c));
  ASSERT_TRUE(store.spill(2, {/*generation=*/0, /*steps=*/1, /*arrival=*/500},
                          h, c));
  ASSERT_TRUE(store.spill(3, {/*generation=*/0, /*steps=*/1, /*arrival=*/900},
                          h, c));
  store.erase(3);
  const std::uint64_t before = store.file_bytes();

  // Drop the erased record and everything that arrived before t=100.
  ASSERT_TRUE(store.compact(/*expire_before_us=*/100));
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_LT(store.file_bytes(), before);
  EXPECT_EQ(store.dead_bytes(), 0u);
  EXPECT_EQ(store.live_records(), 1u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_EQ(store.find(3), nullptr);

  num::Matrix h2, c2;
  ASSERT_EQ(store.restore_into(2, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);

  // The store still appends fine on the post-compaction handle.
  ASSERT_TRUE(store.spill(4, {}, h, c));
  ASSERT_EQ(store.restore_into(4, nullptr, h2, c2), RestoreResult::kOk);
}

TEST(SegmentStoreTest, ThresholdCompactionTriggersUnderChurn) {
  MemEnv env;
  StoreConfig cfg = config();
  cfg.compact_min_bytes = 1024;  // small file, compaction must engage
  SegmentStore store(env, cfg, kDh);
  num::Matrix h, c;
  for (int i = 0; i < 200; ++i) {
    fill_state(static_cast<std::uint64_t>(100 + i), 0.5, h, c);
    // One session rewritten over and over: almost everything is dead.
    ASSERT_TRUE(store.spill(1, {0, static_cast<std::uint64_t>(i), 0}, h, c));
  }
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_EQ(store.live_records(), 1u);
  num::Matrix h2, c2;
  RecordMeta meta;
  ASSERT_EQ(store.restore_into(1, &meta, h2, c2), RestoreResult::kOk);
  EXPECT_EQ(meta.steps, 199u);  // the final write
  expect_bits_equal(h, h2);
  expect_bits_equal(c, c2);
}

TEST(SegmentStoreTest, WriteErrorPolicyRetriesThenDegradesToRamOnly) {
  MemEnv mem;
  FaultInjectingEnv env(mem);
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(10, 0.5, h, c);
  ASSERT_TRUE(store.spill(1, {}, h, c));

  // Every further write tears at the current tail: all attempts fail.
  env.last_opened()->fail_after_written_bytes(
      env.last_opened()->written_bytes());
  num::Matrix h3, c3;
  fill_state(11, 0.5, h3, c3);
  EXPECT_FALSE(store.spill(2, {}, h3, c3));
  EXPECT_EQ(store.write_errors(), 3u);  // cfg default max_write_attempts
  EXPECT_FALSE(store.spilling_enabled());
  EXPECT_TRUE(store.ok());  // still readable, just not writable

  // Committed records survive the degradation and still restore.
  num::Matrix h2, c2;
  ASSERT_EQ(store.restore_into(1, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  // Further spills are refused outright, without burning retries.
  EXPECT_FALSE(store.spill(3, {}, h3, c3));
  EXPECT_EQ(store.write_errors(), 3u);
}

TEST(SegmentStoreTest, CorruptRecordDegradesToMissingNotAbort) {
  MemEnv env;
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(12, 0.5, h, c);
  ASSERT_TRUE(store.spill(1, {}, h, c));

  // Bit rot in the payload, after the record was committed and indexed.
  std::vector<std::uint8_t>* bytes = env.bytes("seg");
  ASSERT_NE(bytes, nullptr);
  bytes->back() ^= 0x40;

  num::Matrix h2(1, kDh, 123.0f), c2(1, kDh, 123.0f);
  ASSERT_EQ(store.restore_into(1, nullptr, h2, c2), RestoreResult::kCorrupt);
  EXPECT_EQ(store.restore_corrupt(), 1u);
  EXPECT_EQ(h2(0, 0), 123.0f) << "corrupt restore must not touch outputs";
  // Dropped: the next lookup is a plain miss.
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_EQ(store.restore_into(1, nullptr, h2, c2), RestoreResult::kMissing);
}

TEST(SegmentStoreTest, ShortReadOnRestoreCountsAsCorrupt) {
  MemEnv mem;
  FaultInjectingEnv env(mem);
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(13, 0.5, h, c);
  ASSERT_TRUE(store.spill(1, {}, h, c));
  env.last_opened()->short_next_read(10);
  num::Matrix h2, c2;
  EXPECT_EQ(store.restore_into(1, nullptr, h2, c2), RestoreResult::kCorrupt);
  EXPECT_EQ(store.restore_corrupt(), 1u);
}

TEST(SegmentStoreTest, LeftoverCompactionTmpIsDeletedOnOpen) {
  MemEnv env;
  {
    auto tmp = env.open("seg.tmp", /*truncate_existing=*/true);
    const char junk[] = "incomplete compaction";
    tmp->write_at(0, junk, sizeof junk);
  }
  num::Matrix h, c;
  fill_state(14, 0.5, h, c);
  {
    SegmentStore store(env, config(), kDh);
    ASSERT_TRUE(store.spill(1, {}, h, c));
  }
  EXPECT_FALSE(env.exists("seg.tmp"));
}

TEST(SegmentStoreTest, PoisonedStoreRefusesWritesAndLeavesTheFileAlone) {
  MemEnv env;
  SegmentStore store(env, config(), kDh);
  num::Matrix h, c;
  fill_state(15, 0.5, h, c);
  ASSERT_TRUE(store.spill(1, {}, h, c));
  const std::vector<std::uint8_t> before = *env.bytes("seg");

  // The rebuild fence (serve/pool.cc::rebuild_shard): after poison()
  // this handle must never append or compact — the replacement store
  // has reopened the same path and owns it.
  store.poison();
  EXPECT_TRUE(store.poisoned());
  EXPECT_FALSE(store.spilling_enabled());
  EXPECT_FALSE(store.spill(2, {}, h, c));
  EXPECT_FALSE(store.compact());
  EXPECT_EQ(*env.bytes("seg"), before) << "poisoned handle wrote";
  EXPECT_FALSE(env.exists("seg.tmp"));

  // Reads are unaffected (they touch only this handle's own view), and
  // a successor recovers the committed record.
  num::Matrix h2, c2;
  EXPECT_EQ(store.restore_into(1, nullptr, h2, c2), RestoreResult::kOk);
  expect_bits_equal(h, h2);
  SegmentStore fresh(env, config(), kDh);
  EXPECT_EQ(fresh.live_records(), 1u);
}

}  // namespace
}  // namespace zss::store
