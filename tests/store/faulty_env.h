// Test-only Env wrapper that hands every opened file to the test
// wrapped in a store::FaultyFile, so a script can arm torn writes,
// sync failures, short reads or bit rot on exactly the file (and the
// exact open — the store reopens its base file after compaction) it
// means to break. Shared by the store test suites; not a test itself.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "store/io.h"

namespace zss::store {

class FaultInjectingEnv final : public Env {
 public:
  explicit FaultInjectingEnv(Env& inner) : inner_(inner) {}

  /// Called for every successful open with the wrapping FaultyFile —
  /// arm triggers here. The pointer is owned by the store; it dangles
  /// once the store closes or replaces the file.
  std::function<void(const std::string&, FaultyFile&)> on_open;

  std::unique_ptr<File> open(const std::string& name,
                             bool truncate_existing) override {
    auto inner = inner_.open(name, truncate_existing);
    if (inner == nullptr) return nullptr;
    auto wrapped = std::make_unique<FaultyFile>(std::move(inner));
    last_opened_ = wrapped.get();
    if (on_open) on_open(name, *wrapped);
    return wrapped;
  }

  bool exists(const std::string& name) override { return inner_.exists(name); }
  bool rename(const std::string& from, const std::string& to) override {
    return inner_.rename(from, to);
  }
  bool remove(const std::string& name) override {
    return inner_.remove(name);
  }

  /// The most recently opened file's wrapper (same lifetime caveat).
  FaultyFile* last_opened() { return last_opened_; }

 private:
  Env& inner_;
  FaultyFile* last_opened_ = nullptr;
};

}  // namespace zss::store
