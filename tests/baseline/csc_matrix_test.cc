#include "baseline/csc_matrix.h"

#include <gtest/gtest.h>

#include "num/kernels.h"
#include "num/rng.h"

namespace zss::baseline {
namespace {

num::Matrix sparse_random(num::Index rows, num::Index cols, double density,
                          std::uint64_t seed) {
  num::Rng rng(seed);
  num::Matrix m(rows, cols, 0.0f);
  for (float& v : m.flat()) {
    if (rng.bernoulli(density)) v = static_cast<float>(rng.normal());
  }
  return m;
}

TEST(CscMatrixTest, RoundTripExact) {
  const auto dense = sparse_random(40, 30, 0.1, 1);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  EXPECT_EQ(csc.decompress(), dense);
}

TEST(CscMatrixTest, EmptyMatrixHasNoEntries) {
  const num::Matrix dense(16, 16, 0.0f);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  EXPECT_EQ(csc.total_entries(), 0);
  EXPECT_EQ(csc.decompress(), dense);
}

TEST(CscMatrixTest, DenseMatrixStoresEverything) {
  const auto dense = sparse_random(8, 8, 1.0, 2);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  EXPECT_EQ(csc.total_entries(), 64);
  EXPECT_EQ(csc.padding_entries(), 0);
}

TEST(CscMatrixTest, NarrowIndexForcesPadding) {
  CscConfig cfg;
  cfg.index_bits = 2;  // max run 3
  num::Matrix dense(12, 1, 0.0f);
  dense(11, 0) = 5.0f;  // run of 11 zeros: needs 2 padding entries
  const auto csc = CscMatrix::compress(dense, cfg);
  EXPECT_EQ(csc.total_entries(), 3);
  EXPECT_EQ(csc.padding_entries(), 2);
  EXPECT_EQ(csc.decompress(), dense);
}

TEST(CscMatrixTest, OffsetsRespectIndexWidth) {
  CscConfig cfg;
  cfg.index_bits = 4;
  const auto dense = sparse_random(200, 5, 0.02, 3);
  const auto csc = CscMatrix::compress(dense, cfg);
  for (num::Index c = 0; c < csc.cols(); ++c) {
    for (auto off : csc.column_offsets(c)) {
      EXPECT_LE(off, cfg.max_run());
    }
  }
  EXPECT_EQ(csc.decompress(), dense);
}

TEST(CscMatrixTest, MatvecMatchesDense) {
  const auto dense = sparse_random(24, 32, 0.15, 4);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  num::Rng rng(5);
  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y_ref(24);
  num::gemv(dense, x, y_ref);
  std::vector<float> y_csc(24, 0.0f);
  csc.matvec_accum(x, y_csc);
  for (int i = 0; i < 24; ++i) EXPECT_NEAR(y_csc[i], y_ref[i], 1e-5f);
}

TEST(CscMatrixTest, MatvecSkipsZeroInputs) {
  // Functional check of EIE-style input skipping: zero inputs add
  // nothing, so the result equals the dense product.
  const auto dense = sparse_random(16, 16, 0.3, 6);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  std::vector<float> x(16, 0.0f);
  x[3] = 1.0f;
  x[9] = -2.0f;
  std::vector<float> y_ref(16);
  num::gemv(dense, x, y_ref);
  std::vector<float> y_csc(16, 0.0f);
  csc.matvec_accum(x, y_csc);
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(y_csc[i], y_ref[i], 1e-5f);
}

TEST(CscMatrixTest, StorageAccountsEntriesAndPointers) {
  CscConfig cfg;
  cfg.index_bits = 4;
  const auto dense = sparse_random(64, 10, 0.1, 7);
  const auto csc = CscMatrix::compress(dense, cfg);
  // 12 bits per entry + 2 bytes per column pointer.
  const num::Index expected =
      (csc.total_entries() * 12 + 7) / 8 + 2 * 10;
  EXPECT_EQ(csc.storage_bytes(cfg), expected);
}

// Property sweep: round trip across densities and index widths.
class CscRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(CscRoundTripTest, RoundTrip) {
  const auto [density, bits] = GetParam();
  CscConfig cfg;
  cfg.index_bits = bits;
  const auto dense = sparse_random(128, 64, density, 11);
  const auto csc = CscMatrix::compress(dense, cfg);
  EXPECT_EQ(csc.decompress(), dense);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CscRoundTripTest,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.1, 0.5, 1.0),
                       ::testing::Values(2, 4, 8)));

}  // namespace
}  // namespace zss::baseline
