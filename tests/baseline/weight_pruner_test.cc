#include "baseline/weight_pruner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/rng.h"

namespace zss::baseline {
namespace {

nn::Parameter random_param(num::Index rows, num::Index cols,
                           std::uint64_t seed) {
  nn::Parameter p("w", rows, cols);
  num::Rng rng(seed);
  for (float& v : p.value.flat()) v = static_cast<float>(rng.normal());
  return p;
}

TEST(WeightPrunerTest, ZeroSparsityKeepsEverything) {
  auto p = random_param(8, 8, 1);
  const auto original = p.value;
  const auto mask = prune_by_magnitude(p, 0.0);
  EXPECT_EQ(p.value, original);
  EXPECT_EQ(mask.zeros(), 0);
  EXPECT_DOUBLE_EQ(mask.sparsity(), 0.0);
}

TEST(WeightPrunerTest, PrunesRequestedFraction) {
  auto p = random_param(32, 32, 2);
  const auto mask = prune_by_magnitude(p, 0.9);
  EXPECT_NEAR(mask.sparsity(), 0.9, 0.01);
  EXPECT_NEAR(weight_sparsity(p), 0.9, 0.01);
}

TEST(WeightPrunerTest, SmallestMagnitudesGoFirst) {
  nn::Parameter p("w", 1, 4);
  p.value(0, 0) = 0.1f;
  p.value(0, 1) = -2.0f;
  p.value(0, 2) = 0.05f;
  p.value(0, 3) = 1.0f;
  prune_by_magnitude(p, 0.5);
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p.value(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(p.value(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(p.value(0, 3), 1.0f);
}

TEST(WeightPrunerTest, MaskSurvivesRetrainingUpdates) {
  auto p = random_param(16, 16, 3);
  const auto mask = prune_by_magnitude(p, 0.8);
  // Simulate an optimizer writing into every element.
  for (float& v : p.value.flat()) v += 0.5f;
  apply_mask(p, mask);
  EXPECT_NEAR(weight_sparsity(p), 0.8, 0.01);
  // Unmasked elements keep the update.
  auto keep = mask.keep.flat();
  auto values = p.value.flat();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (keep[i] == 1) EXPECT_NE(values[i], 0.0f);
  }
}

TEST(WeightPrunerTest, ApplyMaskZeroesGradientsToo) {
  auto p = random_param(8, 8, 4);
  const auto mask = prune_by_magnitude(p, 0.5);
  p.grad.fill(1.0f);
  apply_mask(p, mask);
  auto keep = mask.keep.flat();
  auto grads = p.grad.flat();
  for (std::size_t i = 0; i < grads.size(); ++i) {
    EXPECT_FLOAT_EQ(grads[i], keep[i] == 0 ? 0.0f : 1.0f);
  }
}

TEST(WeightPrunerTest, FullSparsityZeroesAlmostAll) {
  auto p = random_param(16, 16, 5);
  prune_by_magnitude(p, 1.0);
  // Strict |w| < quantile(1.0) keeps only max-magnitude ties.
  EXPECT_GE(weight_sparsity(p), 1.0 - 2.0 / 256.0);
}

TEST(WeightPrunerDeathTest, BadSparsityAborts) {
  auto p = random_param(4, 4, 6);
  EXPECT_DEATH((void)prune_by_magnitude(p, 1.5), "precondition");
}

}  // namespace
}  // namespace zss::baseline
