#include "baseline/weight_pruned_lm.h"

#include <gtest/gtest.h>

#include "baseline/csc_matrix.h"
#include "data/char_corpus.h"

namespace zss::baseline {
namespace {

using num::Index;

data::CharCorpus tiny_corpus() {
  data::CharCorpusConfig cfg;
  cfg.train_chars = 12000;
  cfg.valid_chars = 1500;
  cfg.test_chars = 1500;
  return data::CharCorpus::generate(cfg);
}

core::LmConfig tiny_config() {
  core::LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = 32;
  return cfg;
}

TEST(WeightPrunedLmTest, PruneReachesRequestedSparsity) {
  WeightPrunedLm model(tiny_config());
  model.prune_weights(0.9);
  EXPECT_NEAR(model.recurrent_weight_sparsity(), 0.9, 0.01);
  EXPECT_NEAR(model.input_weight_sparsity(), 0.9, 0.01);
  EXPECT_TRUE(model.pruned());
}

TEST(WeightPrunedLmTest, RetrainingKeepsWeightsPruned) {
  const auto corpus = tiny_corpus();
  WeightPrunedLm model(tiny_config());
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 16);
  // Brief dense training, then prune, then retrain with the mask.
  for (Index w = 0; w < 20; ++w) {
    (void)model.train_window(batcher.window(w), adam, 5.0f);
  }
  model.prune_weights(0.8);
  for (Index w = 0; w < 20; ++w) {
    (void)model.train_window(batcher.window(w), adam, 5.0f);
  }
  EXPECT_NEAR(model.recurrent_weight_sparsity(), 0.8, 0.01);
}

TEST(WeightPrunedLmTest, RetrainingRecoversAccuracy) {
  const auto corpus = tiny_corpus();
  WeightPrunedLm model(tiny_config());
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 16);
  for (int e = 0; e < 2; ++e) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const double dense_nll = model.evaluate(corpus.valid(), 4, 16).mean_nll;

  model.prune_weights(0.7);
  const double hurt_nll = model.evaluate(corpus.valid(), 4, 16).mean_nll;
  for (int e = 0; e < 2; ++e) {
    for (Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const double retrained_nll = model.evaluate(corpus.valid(), 4, 16).mean_nll;
  // Pruning hurts; retraining with the mask recovers most of it.
  EXPECT_GT(hurt_nll, dense_nll);
  EXPECT_LT(retrained_nll, hurt_nll);
  EXPECT_LT(retrained_nll, dense_nll * 1.25);
}

TEST(WeightPrunedLmTest, CompressesToCscForTheEseModel) {
  WeightPrunedLm model(tiny_config());
  model.prune_weights(0.9);
  const auto csc =
      CscMatrix::compress(model.cell().wh().value, CscConfig{});
  // ~10% of 128x32 entries survive (plus occasional padding).
  EXPECT_LT(csc.total_entries(), 128 * 32 / 5);
  EXPECT_EQ(csc.decompress(), model.cell().wh().value);
}

TEST(WeightPrunedLmDeathTest, StatePrunerConfigRejected) {
  auto cfg = tiny_config();
  cfg.pruner = core::PrunerConfig::target(0.5);
  EXPECT_DEATH(WeightPrunedLm{cfg}, "precondition");
}

}  // namespace
}  // namespace zss::baseline
