#include "baseline/ese_timing.h"

#include <gtest/gtest.h>

#include "num/rng.h"

namespace zss::baseline {
namespace {

num::Matrix sparse_random(num::Index rows, num::Index cols, double density,
                          std::uint64_t seed) {
  num::Rng rng(seed);
  num::Matrix m(rows, cols, 0.0f);
  for (float& v : m.flat()) {
    if (rng.bernoulli(density)) v = static_cast<float>(rng.normal());
  }
  return m;
}

TEST(EseTimingTest, PerfectlyBalancedColumnHasNoWaste) {
  // One non-zero per PE slice in the single column.
  EseConfig cfg;
  cfg.pes = 4;
  num::Matrix dense(8, 1, 0.0f);
  dense(0, 0) = 1.0f;  // PE 0
  dense(1, 0) = 1.0f;  // PE 1
  dense(2, 0) = 1.0f;  // PE 2
  dense(3, 0) = 1.0f;  // PE 3
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  const auto result = EseTimingModel(cfg).matvec(csc);
  EXPECT_EQ(result.cycles, 1);
  EXPECT_EQ(result.ideal_cycles, 1);
  EXPECT_DOUBLE_EQ(result.imbalance_waste(), 0.0);
}

TEST(EseTimingTest, SkewedColumnStallsOnWorstPe) {
  // All four non-zeros land on PE 0 (rows 0, 4, 8, 12 with 4 PEs).
  EseConfig cfg;
  cfg.pes = 4;
  num::Matrix dense(16, 1, 0.0f);
  dense(0, 0) = 1.0f;
  dense(4, 0) = 1.0f;
  dense(8, 0) = 1.0f;
  dense(12, 0) = 1.0f;
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  const auto result = EseTimingModel(cfg).matvec(csc);
  EXPECT_EQ(result.cycles, 4);       // PE 0 serializes
  EXPECT_EQ(result.ideal_cycles, 1);  // balanced would take 1
  EXPECT_DOUBLE_EQ(result.imbalance_waste(), 0.75);
}

TEST(EseTimingTest, BalancedModeIsCbsrLowerBound) {
  EseConfig ese;
  ese.pes = 8;
  EseConfig cbsr = ese;
  cbsr.balanced = true;
  const auto dense = sparse_random(256, 64, 0.1, 1);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  const auto ese_result = EseTimingModel(ese).matvec(csc);
  const auto cbsr_result = EseTimingModel(cbsr).matvec(csc);
  EXPECT_EQ(cbsr_result.cycles, cbsr_result.ideal_cycles);
  EXPECT_GE(ese_result.cycles, cbsr_result.cycles);
}

TEST(EseTimingTest, CbsrGainBoundsPaperReportedImprovement) {
  // The paper quotes CBSR as 25-30% faster than ESE at the system
  // level. The raw matvec load imbalance modeled here upper-bounds that
  // (other pipeline stages dilute it), so the matvec-only gain must be
  // at least 25% and stay within a small constant factor of it.
  EseConfig ese;
  ese.pes = 32;
  EseConfig cbsr = ese;
  cbsr.balanced = true;
  const auto dense = sparse_random(1200, 300, 0.1, 2);
  const auto csc = CscMatrix::compress(dense, CscConfig{});
  const auto t_ese = EseTimingModel(ese).matvec(csc);
  const auto t_cbsr = EseTimingModel(cbsr).matvec(csc);
  const double gain = static_cast<double>(t_ese.cycles) /
                      static_cast<double>(t_cbsr.cycles);
  EXPECT_GT(gain, 1.25);
  EXPECT_LT(gain, 2.5);
}

TEST(EseTimingTest, EquivalentGopsUsesDenseOps) {
  EseConfig cfg;
  const EseTimingModel model(cfg);
  // 1000 cycles at 200 MHz = 5 us for a 100x100 dense-equivalent matvec
  // (20k ops) -> 4 GOPS.
  EXPECT_NEAR(model.equivalent_gops(100, 100, 1000), 4.0, 1e-9);
}

TEST(EseTimingTest, DenserMatrixTakesLonger) {
  EseConfig cfg;
  const EseTimingModel model(cfg);
  const auto sparse = CscMatrix::compress(sparse_random(128, 128, 0.05, 3),
                                          CscConfig{});
  const auto dense = CscMatrix::compress(sparse_random(128, 128, 0.5, 3),
                                         CscConfig{});
  EXPECT_LT(model.matvec(sparse).cycles, model.matvec(dense).cycles);
}

TEST(EseTimingDeathTest, BadConfigAborts) {
  EseConfig cfg;
  cfg.pes = 0;
  EXPECT_DEATH(EseTimingModel{cfg}, "precondition");
}

}  // namespace
}  // namespace zss::baseline
