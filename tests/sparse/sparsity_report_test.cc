#include "sparse/sparsity_report.h"

#include <gtest/gtest.h>

namespace zss::sparse {
namespace {

using num::Matrix;

TEST(SparsityMeterTest, EmptyMeterIsZero) {
  SparsityMeter meter;
  EXPECT_EQ(meter.timesteps(), 0);
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.0);
}

TEST(SparsityMeterTest, SingleObservation) {
  SparsityMeter meter;
  Matrix state(1, 4, 0.0f);
  state(0, 0) = 1.0f;
  meter.observe(state);
  EXPECT_EQ(meter.timesteps(), 1);
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.75);
  EXPECT_DOUBLE_EQ(meter.mean_element_sparsity(), 0.75);
}

TEST(SparsityMeterTest, BatchIntersectionVsElementwise) {
  SparsityMeter meter;
  Matrix state(2, 4, 0.0f);
  state(0, 0) = 1.0f;  // position 0: lane 1 zero
  state(1, 1) = 1.0f;  // position 1: lane 0 zero
  meter.observe(state);
  // Columns 2, 3 all-zero -> 0.5 intersected; 6 of 8 elements zero.
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.5);
  EXPECT_DOUBLE_EQ(meter.mean_element_sparsity(), 0.75);
}

TEST(SparsityMeterTest, AveragesAcrossSteps) {
  SparsityMeter meter;
  Matrix all_zero(1, 4, 0.0f);
  Matrix all_dense(1, 4, 1.0f);
  meter.observe(all_zero);
  meter.observe(all_dense);
  EXPECT_EQ(meter.timesteps(), 2);
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.5);
}

TEST(SparsityMeterTest, ObserveCounts) {
  SparsityMeter meter;
  meter.observe_counts(90, 100);
  meter.observe_counts(80, 100);
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.85);
  // No element-wise data: falls back to intersected value.
  EXPECT_DOUBLE_EQ(meter.mean_element_sparsity(), 0.85);
}

TEST(SparsityMeterTest, ResetClears) {
  SparsityMeter meter;
  meter.observe_counts(50, 100);
  meter.reset();
  EXPECT_EQ(meter.timesteps(), 0);
  EXPECT_DOUBLE_EQ(meter.mean_sparsity(), 0.0);
}

TEST(SparsityMeterDeathTest, BadCountsAbort) {
  SparsityMeter meter;
  EXPECT_DEATH(meter.observe_counts(5, 0), "precondition");
  EXPECT_DEATH(meter.observe_counts(11, 10), "precondition");
}

}  // namespace
}  // namespace zss::sparse
