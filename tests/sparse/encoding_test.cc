#include "sparse/encoding.h"

#include <gtest/gtest.h>

#include <vector>

#include "num/rng.h"

namespace zss::sparse {
namespace {

using num::Index;
using num::Matrix;

Matrix from_values(std::initializer_list<float> values) {
  Matrix m(1, static_cast<Index>(values.size()));
  Index j = 0;
  for (float v : values) m(0, j++) = v;
  return m;
}

TEST(EncodingTest, SimpleRunLengths) {
  const Matrix v = from_values({0, 0, 3.0f, 0, 5.0f, 0});
  const auto enc = encode(v, EncoderConfig{});
  ASSERT_EQ(enc.kept_positions(), 2);
  EXPECT_EQ(enc.entries[0].offset, 2);  // two zeros before 3.0
  EXPECT_EQ(enc.entries[1].offset, 1);  // one zero between 3.0 and 5.0
  EXPECT_FLOAT_EQ(enc.values[0], 3.0f);
  EXPECT_FLOAT_EQ(enc.values[1], 5.0f);
  EXPECT_EQ(enc.dense_size, 6);
}

TEST(EncodingTest, DenseVectorHasZeroOffsets) {
  const Matrix v = from_values({1, 2, 3});
  const auto enc = encode(v, EncoderConfig{});
  ASSERT_EQ(enc.kept_positions(), 3);
  for (const auto& e : enc.entries) EXPECT_EQ(e.offset, 0);
}

TEST(EncodingTest, AllZeroVectorHasNoEntries) {
  const Matrix v(1, 8, 0.0f);
  const auto enc = encode(v, EncoderConfig{});
  EXPECT_EQ(enc.kept_positions(), 0);
  const auto dec = decode(enc);
  EXPECT_EQ(dec, v);
}

TEST(EncodingTest, TrailingZerosRestoredByDecoder) {
  const Matrix v = from_values({1.0f, 0, 0, 0, 0});
  const auto enc = encode(v, EncoderConfig{});
  EXPECT_EQ(enc.kept_positions(), 1);
  EXPECT_EQ(decode(enc), v);
}

TEST(EncodingTest, RoundTripExact) {
  const Matrix v = from_values({0, -1.5f, 0, 0, 2.0f, 0.25f, 0, 0});
  EXPECT_EQ(decode(encode(v, EncoderConfig{})), v);
}

TEST(EncodingTest, CounterOverflowEmitsPadding) {
  EncoderConfig cfg;
  cfg.offset_bits = 2;  // max run 3
  Matrix v(1, 10, 0.0f);
  v(0, 9) = 7.0f;  // run of 9 zeros: 3-pad, 3-pad, offset 1 (9 = 3+1+3+1+1)
  const auto enc = encode(v, cfg);
  ASSERT_EQ(enc.kept_positions(), 3);
  EXPECT_EQ(enc.entries[0].offset, 3);
  EXPECT_FLOAT_EQ(enc.values[0], 0.0f);  // padding entry carries zero
  EXPECT_EQ(enc.entries[1].offset, 3);
  EXPECT_FLOAT_EQ(enc.values[1], 0.0f);
  EXPECT_EQ(enc.entries[2].offset, 1);
  EXPECT_FLOAT_EQ(enc.values[2], 7.0f);
  EXPECT_EQ(decode(enc), v);
}

TEST(EncodingTest, OffsetsNeverExceedCounterWidth) {
  EncoderConfig cfg;
  cfg.offset_bits = 3;
  num::Rng rng(11);
  Matrix v(1, 300, 0.0f);
  for (Index j = 0; j < 300; ++j) {
    if (rng.bernoulli(0.05)) v(0, j) = static_cast<float>(rng.normal());
  }
  const auto enc = encode(v, cfg);
  for (const auto& e : enc.entries) {
    EXPECT_LE(e.offset, cfg.max_offset());
    EXPECT_GE(e.offset, 0);
  }
  EXPECT_EQ(decode(enc), v);
}

TEST(EncodingTest, BatchIntersectionRule) {
  // Position skippable only when zero in EVERY lane (Fig. 5(d)).
  Matrix state(2, 4, 0.0f);
  state(0, 1) = 1.0f;  // lane 0 non-zero at position 1
  state(1, 2) = 2.0f;  // lane 1 non-zero at position 2
  const auto zero = all_zero_columns(state);
  EXPECT_TRUE(zero[0]);
  EXPECT_FALSE(zero[1]);
  EXPECT_FALSE(zero[2]);
  EXPECT_TRUE(zero[3]);

  const auto enc = encode(state, EncoderConfig{});
  EXPECT_EQ(enc.kept_positions(), 2);
  EXPECT_EQ(enc.batch, 2);
  // Kept position 1 stores both lanes' values (1.0 and 0.0).
  EXPECT_FLOAT_EQ(enc.values[0], 1.0f);
  EXPECT_FLOAT_EQ(enc.values[1], 0.0f);
  EXPECT_EQ(decode(enc), state);
}

TEST(EncodingTest, BatchSparsityDegree) {
  Matrix state(2, 4, 0.0f);
  state(0, 1) = 1.0f;
  state(1, 2) = 2.0f;
  EXPECT_DOUBLE_EQ(batch_sparsity_degree(state), 0.5);
  Matrix dense(1, 4, 1.0f);
  EXPECT_DOUBLE_EQ(batch_sparsity_degree(dense), 0.0);
  Matrix zeros(3, 4, 0.0f);
  EXPECT_DOUBLE_EQ(batch_sparsity_degree(zeros), 1.0);
}

TEST(EncodingTest, StorageBytesAccounting) {
  EncoderConfig cfg;  // 8-bit offsets
  Matrix state(4, 16, 0.0f);
  state(0, 3) = 1.0f;
  state(2, 9) = 1.0f;
  const auto enc = encode(state, cfg);
  ASSERT_EQ(enc.kept_positions(), 2);
  // float values: 2 positions * 4 lanes * 4 bytes + 2 offsets * 1 byte.
  EXPECT_EQ(enc.storage_bytes(cfg), 2 * 4 * 4 + 2);
}

TEST(EncodingTest, Int8Specialization) {
  num::MatrixI8 state(1, 5, 0);
  state(0, 2) = -7;
  const auto enc = encode(state, EncoderConfig{});
  ASSERT_EQ(enc.kept_positions(), 1);
  EXPECT_EQ(enc.entries[0].offset, 2);
  EXPECT_EQ(enc.values[0], -7);
  EXPECT_EQ(decode(enc), state);
}

TEST(EncodingTest, SpanOverloadMatchesMatrix) {
  const std::vector<float> v = {0.0f, 1.0f, 0.0f, 2.0f};
  const auto enc = encode<float>(v, EncoderConfig{});
  EXPECT_EQ(enc.batch, 1);
  EXPECT_EQ(enc.kept_positions(), 2);
  const auto dec = decode(enc);
  for (Index j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(dec(0, j), v[static_cast<std::size_t>(j)]);
  }
}

// Property sweep: round trip is exact across densities and batch sizes.
class EncodingRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(EncodingRoundTripTest, RoundTripAcrossDensities) {
  const auto [density, batch, offset_bits] = GetParam();
  num::Rng rng(17);
  EncoderConfig cfg;
  cfg.offset_bits = offset_bits;
  Matrix state(batch, 257, 0.0f);
  for (float& v : state.flat()) {
    if (rng.bernoulli(density)) v = static_cast<float>(rng.normal());
  }
  const auto enc = encode(state, cfg);
  EXPECT_EQ(decode(enc), state);
  // Kept positions never fewer than demanded by the non-zero columns.
  Index nonzero_cols = 0;
  for (bool z : all_zero_columns(state)) {
    if (!z) ++nonzero_cols;
  }
  EXPECT_GE(enc.kept_positions(), nonzero_cols);
}

TEST(EncodingTest, EncodeIntoMatchesEncodeAndReusesCapacity) {
  num::Rng rng(23);
  EncoderConfig cfg;
  Matrix state(4, 129, 0.0f);
  for (float& v : state.flat()) {
    if (rng.bernoulli(0.2)) v = static_cast<float>(rng.normal());
  }
  const auto fresh = encode(state, cfg);

  EncodedState<float> reused;
  reused.reserve(state.cols(), state.rows());
  encode_into(state, cfg, reused);
  EXPECT_EQ(reused.entries, fresh.entries);
  EXPECT_EQ(reused.values, fresh.values);
  EXPECT_EQ(reused.batch, fresh.batch);
  EXPECT_EQ(reused.dense_size, fresh.dense_size);

  // Re-encoding a different state into the same object must not grow the
  // reserved stores (every entry consumes a position, so dense_size
  // bounds them) — the allocation-free step() path depends on this.
  const auto entry_cap = reused.entries.capacity();
  const auto value_cap = reused.values.capacity();
  for (int round = 0; round < 5; ++round) {
    for (float& v : state.flat()) {
      v = rng.bernoulli(0.5) ? static_cast<float>(rng.normal()) : 0.0f;
    }
    encode_into(state, cfg, reused);
    EXPECT_EQ(decode(reused), state);
    EXPECT_EQ(reused.entries.capacity(), entry_cap);
    EXPECT_EQ(reused.values.capacity(), value_cap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, EncodingRoundTripTest,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.03, 0.2, 0.5, 1.0),
                       ::testing::Values(1, 8, 16),
                       ::testing::Values(2, 4, 8)));

// --- per-lane CSR encoding (LaneEncodedState) -------------------------

TEST(LaneEncodingTest, PerLaneListsAreExactAndAscending) {
  Matrix state(3, 6, 0.0f);
  // lane 0: positions 1, 4; lane 1: empty; lane 2: all positions.
  state(0, 1) = 2.0f;
  state(0, 4) = -3.0f;
  for (Index j = 0; j < 6; ++j) state(2, j) = static_cast<float>(j + 1);

  LaneEncodedState<float> enc;
  encode_lanes_into(state, enc);
  ASSERT_EQ(enc.batch, 3);
  ASSERT_EQ(enc.dense_size, 6);
  EXPECT_EQ(enc.kept_in_lane(0), 2);
  EXPECT_EQ(enc.kept_in_lane(1), 0);
  EXPECT_EQ(enc.kept_in_lane(2), 6);
  EXPECT_EQ(enc.total_kept(), 8);
  // Union: every position is non-zero in some lane (lane 2 is full).
  EXPECT_EQ(enc.union_kept(), 6);
  EXPECT_EQ(enc.positions[0], 1);
  EXPECT_EQ(enc.positions[1], 4);
  EXPECT_EQ(enc.values[0], 2.0f);
  EXPECT_EQ(enc.values[1], -3.0f);
  for (Index b = 0; b < 3; ++b) {
    for (Index e = enc.row_start[static_cast<std::size_t>(b)] + 1;
         e < enc.row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      EXPECT_LT(enc.positions[static_cast<std::size_t>(e - 1)],
                enc.positions[static_cast<std::size_t>(e)])
          << "per-lane positions must ascend (the chain-order contract)";
    }
  }
  EXPECT_EQ(decode_lanes(enc), state);
}

TEST(LaneEncodingTest, UnionMatchesIntersectionEncoder) {
  // union_kept must equal what the batch-intersecting offset encoder
  // keeps (with a counter wide enough to need no padding entries).
  num::Rng rng(31);
  Matrix state(6, 200, 0.0f);
  for (float& v : state.flat()) {
    if (rng.bernoulli(0.3)) v = static_cast<float>(rng.normal());
  }
  LaneEncodedState<float> lanes;
  encode_lanes_into(state, lanes);
  EncoderConfig wide;
  wide.offset_bits = 16;
  EXPECT_EQ(lanes.union_kept(), encode(state, wide).kept_positions());
  // Per-lane sparsity is the plain element-zero fraction.
  Index zeros = 0;
  for (float v : state.flat()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_DOUBLE_EQ(lanes.lane_sparsity(),
                   static_cast<double>(zeros) /
                       static_cast<double>(state.size()));
}

TEST(LaneEncodingTest, RoundTripAcrossDensitiesAndBatches) {
  num::Rng rng(47);
  for (const double density : {0.0, 0.05, 0.5, 1.0}) {
    for (const Index batch : {Index{1}, Index{7}, Index{40}}) {
      Matrix state(batch, 63, 0.0f);
      for (float& v : state.flat()) {
        if (rng.bernoulli(density)) v = static_cast<float>(rng.normal());
      }
      LaneEncodedState<float> enc;
      encode_lanes_into(state, enc);
      EXPECT_EQ(decode_lanes(enc), state) << density << " " << batch;
    }
  }
}

TEST(LaneEncodingTest, EncodeLanesIntoReusesCapacity) {
  num::Rng rng(53);
  Matrix state(8, 100, 0.0f);
  LaneEncodedState<float> enc;
  enc.reserve(state.cols(), state.rows());
  const auto pos_cap = enc.positions.capacity();
  const auto val_cap = enc.values.capacity();
  const auto row_cap = enc.row_start.capacity();
  for (int round = 0; round < 5; ++round) {
    for (float& v : state.flat()) {
      v = rng.bernoulli(0.5) ? static_cast<float>(rng.normal()) : 0.0f;
    }
    encode_lanes_into(state, enc);
    EXPECT_EQ(decode_lanes(enc), state);
    EXPECT_EQ(enc.positions.capacity(), pos_cap);
    EXPECT_EQ(enc.values.capacity(), val_cap);
    EXPECT_EQ(enc.row_start.capacity(), row_cap);
  }
}

}  // namespace
}  // namespace zss::sparse
