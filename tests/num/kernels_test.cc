#include "num/kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/rng.h"

namespace zss::num {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

TEST(KernelsTest, GemvMatchesManual) {
  Matrix w(2, 3);
  w(0, 0) = 1;
  w(0, 1) = 2;
  w(0, 2) = 3;
  w(1, 0) = -1;
  w(1, 1) = 0;
  w(1, 2) = 4;
  const std::vector<float> x = {1.0f, 0.5f, -1.0f};
  std::vector<float> y(2);
  gemv(w, x, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f + 1.0f - 3.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f + 0.0f - 4.0f);
}

TEST(KernelsTest, GemvAccumAddsOnTop) {
  Matrix w(1, 2, 1.0f);
  const std::vector<float> x = {2.0f, 3.0f};
  std::vector<float> y = {10.0f};
  gemv_accum(w, x, y);
  EXPECT_FLOAT_EQ(y[0], 15.0f);
}

TEST(KernelsTest, AxpyColAccumulatesOneColumn) {
  Rng rng(1);
  Matrix w = random_matrix(5, 4, rng);
  std::vector<float> y(5, 0.0f);
  axpy_col(w, 2, 2.0f, y);
  for (Index i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y[i], 2.0f * w(i, 2));
}

TEST(KernelsTest, GemvEqualsSumOfColumns) {
  // The accelerator's input-stationary dataflow accumulates one column
  // per input element; the result must equal the row-major gemv.
  Rng rng(2);
  Matrix w = random_matrix(6, 5, rng);
  std::vector<float> x(5);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y_gemv(6);
  gemv(w, x, y_gemv);
  std::vector<float> y_cols(6, 0.0f);
  for (Index j = 0; j < 5; ++j) {
    axpy_col(w, j, x[static_cast<std::size_t>(j)], y_cols);
  }
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(y_gemv[i], y_cols[i], 1e-5f);
}

TEST(KernelsTest, GemmIdentity) {
  Rng rng(3);
  Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4, 0.0f);
  for (Index i = 0; i < 4; ++i) eye(i, i) = 1.0f;
  Matrix c;
  gemm(a, eye, c);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(c(i, j), a(i, j));
  }
}

TEST(KernelsTest, GemmMatchesNaive) {
  Rng rng(4);
  Matrix a = random_matrix(3, 5, rng);
  Matrix b = random_matrix(5, 2, rng);
  Matrix c;
  gemm(a, b, c);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 2; ++j) {
      float acc = 0.0f;
      for (Index k = 0; k < 5; ++k) acc += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), acc, 1e-5f);
    }
  }
}

TEST(KernelsTest, GemmAtBAccumMatchesExplicitTranspose) {
  Rng rng(5);
  Matrix a = random_matrix(6, 3, rng);
  Matrix b = random_matrix(6, 4, rng);
  Matrix c(3, 4, 1.0f);  // non-zero start: accumulate semantics
  gemm_at_b_accum(a, b, c);
  Matrix at(3, 6);
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  Matrix expected;
  gemm(at, b, expected);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), expected(i, j) + 1.0f, 1e-5f);
    }
  }
}

TEST(KernelsTest, GemmABtMatchesExplicitTranspose) {
  Rng rng(6);
  Matrix a = random_matrix(3, 5, rng);
  Matrix b = random_matrix(4, 5, rng);
  Matrix c;
  gemm_a_bt(a, b, c);
  Matrix bt(5, 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  }
  Matrix expected;
  gemm(a, bt, expected);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_NEAR(c(i, j), expected(i, j), 1e-5f);
  }
}

TEST(KernelsTest, DotAndNorm) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 4.0f - 10.0f + 18.0f);
  EXPECT_FLOAT_EQ(squared_norm(a), 14.0f);
}

TEST(KernelsTest, AxpyAndScale) {
  const std::vector<float> x = {1.0f, 2.0f};
  std::vector<float> y = {10.0f, 20.0f};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[1], 21.0f);
  scale(y, 2.0f);
  EXPECT_FLOAT_EQ(y[0], 21.0f);
  EXPECT_FLOAT_EQ(y[1], 42.0f);
}

TEST(KernelsTest, HadamardVariants) {
  const std::vector<float> a = {1.0f, -2.0f, 3.0f};
  const std::vector<float> b = {2.0f, 2.0f, -1.0f};
  std::vector<float> out(3);
  hadamard(a, b, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], -4.0f);
  EXPECT_FLOAT_EQ(out[2], -3.0f);
  hadamard_accum(a, b, out);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(KernelsTest, AddBiasRows) {
  Matrix y(2, 3, 1.0f);
  const std::vector<float> b = {0.5f, 1.5f, -1.0f};
  add_bias_rows(y, b);
  for (Index r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(y(r, 0), 1.5f);
    EXPECT_FLOAT_EQ(y(r, 1), 2.5f);
    EXPECT_FLOAT_EQ(y(r, 2), 0.0f);
  }
}

TEST(KernelsDeathTest, ShapeMismatchAborts) {
  Matrix w(2, 3);
  std::vector<float> x(2);  // wrong: needs 3
  std::vector<float> y(2);
  EXPECT_DEATH(gemv(w, x, y), "precondition");
}

// Property sweep: column-accumulation equals gemv across shapes.
class KernelShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(KernelShapeTest, ColumnDecompositionConsistent) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 1000 + cols));
  Matrix w = random_matrix(rows, cols, rng);
  std::vector<float> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  std::vector<float> y1(static_cast<std::size_t>(rows));
  gemv(w, x, y1);
  std::vector<float> y2(static_cast<std::size_t>(rows), 0.0f);
  for (Index j = 0; j < cols; ++j) {
    axpy_col(w, j, x[static_cast<std::size_t>(j)], y2);
  }
  for (Index i = 0; i < rows; ++i) {
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)],
                y2[static_cast<std::size_t>(i)], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 17},
                                           std::pair{16, 16},
                                           std::pair{48, 7},
                                           std::pair{33, 65},
                                           std::pair{128, 100}));

}  // namespace
}  // namespace zss::num
