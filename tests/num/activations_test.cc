#include "num/activations.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace zss::num {
namespace {

TEST(ActivationsTest, SigmoidKnownValues) {
  EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(sigmoid(2.0f), 0.880797f, 1e-5f);
  EXPECT_NEAR(sigmoid(-2.0f), 0.119203f, 1e-5f);
}

TEST(ActivationsTest, SigmoidSaturates) {
  EXPECT_NEAR(sigmoid(40.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(sigmoid(-40.0f), 0.0f, 1e-6f);
}

TEST(ActivationsTest, SigmoidDerivativeFromOutput) {
  const float y = sigmoid(0.7f);
  const float eps = 1e-3f;
  const float numeric = (sigmoid(0.7f + eps) - sigmoid(0.7f - eps)) / (2 * eps);
  EXPECT_NEAR(dsigmoid_from_y(y), numeric, 1e-4f);
}

TEST(ActivationsTest, TanhDerivativeFromOutput) {
  const float y = tanh_act(-0.4f);
  const float eps = 1e-3f;
  const float numeric =
      (tanh_act(-0.4f + eps) - tanh_act(-0.4f - eps)) / (2 * eps);
  EXPECT_NEAR(dtanh_from_y(y), numeric, 1e-4f);
}

TEST(ActivationsTest, SoftmaxSumsToOne) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  softmax(v);
  float sum = 0.0f;
  for (float x : v) {
    EXPECT_GT(x, 0.0f);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(v[3], v[0]);  // monotone in logits
}

TEST(ActivationsTest, SoftmaxStableForLargeLogits) {
  std::vector<float> v = {1000.0f, 1001.0f};
  softmax(v);
  EXPECT_FALSE(std::isnan(v[0]));
  EXPECT_NEAR(v[0] + v[1], 1.0f, 1e-6f);
  EXPECT_NEAR(v[1] / v[0], std::exp(1.0f), 1e-3f);
}

TEST(ActivationsTest, SoftmaxUniformForEqualLogits) {
  std::vector<float> v(5, 3.0f);
  softmax(v);
  for (float x : v) EXPECT_NEAR(x, 0.2f, 1e-6f);
}

TEST(ActivationsTest, LogSoftmaxMatchesLogOfSoftmax) {
  std::vector<float> logits = {0.5f, -1.0f, 2.0f};
  std::vector<float> lsm(3);
  log_softmax(logits, lsm);
  std::vector<float> sm = logits;
  softmax(sm);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-5f);
}

TEST(ActivationsTest, LogSoftmaxMayAlias) {
  std::vector<float> v = {1.0f, 2.0f};
  std::vector<float> expected(2);
  log_softmax(v, expected);
  log_softmax(v, v);  // aliased
  EXPECT_FLOAT_EQ(v[0], expected[0]);
  EXPECT_FLOAT_EQ(v[1], expected[1]);
}

TEST(ActivationsTest, Argmax) {
  const std::vector<float> v = {0.1f, -5.0f, 7.0f, 7.0f, 2.0f};
  EXPECT_EQ(argmax(v), 2);  // first maximum wins
}

TEST(ActivationsDeathTest, EmptySpansAbort) {
  std::vector<float> empty;
  EXPECT_DEATH(softmax(empty), "precondition");
  EXPECT_DEATH((void)argmax(empty), "precondition");
}

}  // namespace
}  // namespace zss::num
