#include "num/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "num/rng.h"

namespace zss::num {
namespace {

TEST(StatsTest, MeanAndVariance) {
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::vector<float> v;
  EXPECT_EQ(mean(v), 0.0);
  EXPECT_EQ(variance(v), 0.0);
  EXPECT_EQ(zero_fraction(v), 0.0);
}

TEST(StatsTest, ZeroFraction) {
  const std::vector<float> v = {0.0f, 1.0f, 0.0f, -2.0f};
  EXPECT_DOUBLE_EQ(zero_fraction(v), 0.5);
}

TEST(StatsTest, BelowThresholdFraction) {
  const std::vector<float> v = {0.05f, -0.2f, 0.5f, -0.01f};
  EXPECT_DOUBLE_EQ(below_threshold_fraction(v, 0.1f), 0.5);
  EXPECT_DOUBLE_EQ(below_threshold_fraction(v, 10.0f), 1.0);
  EXPECT_DOUBLE_EQ(below_threshold_fraction(v, 0.0f), 0.0);
}

TEST(StatsTest, QuantileAbsExtremes) {
  const std::vector<float> v = {-4.0f, 1.0f, -2.0f, 3.0f};
  EXPECT_FLOAT_EQ(quantile_abs(v, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(quantile_abs(v, 1.0), 4.0f);
}

TEST(StatsTest, QuantileAbsMid) {
  const std::vector<float> v = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f,
                                0.6f, 0.7f, 0.8f, 0.9f, 1.0f};
  // Half the elements lie strictly below the 0.5-quantile magnitude.
  const float q = quantile_abs(v, 0.5);
  EXPECT_FLOAT_EQ(q, 0.6f);
}

TEST(StatsTest, MagnitudeHistogramBucketsEverything) {
  const std::vector<float> v = {0.0f, 0.5f, -1.0f, 0.99f};
  const auto hist = magnitude_histogram(v, 4);
  Index total = 0;
  for (Index c : hist) total += c;
  EXPECT_EQ(total, 4);
  EXPECT_EQ(hist.back(), 2);  // 1.0 and 0.99 in the top bucket
}

TEST(StatsTest, MagnitudeHistogramAllZeros) {
  const std::vector<float> v(8, 0.0f);
  const auto hist = magnitude_histogram(v, 3);
  EXPECT_EQ(hist[0], 8);
  EXPECT_EQ(hist[1], 0);
}

// Pruning-threshold contract: the q-quantile of |v| zeroes ~q of the
// elements when used with a strict |x| < T comparison.
class QuantileSparsityTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSparsityTest, QuantileDeliversRequestedSparsity) {
  const double q = GetParam();
  Rng rng(99);
  std::vector<float> v(5000);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const float t = quantile_abs(v, q) * (1.0f + 1e-6f);
  const double frac = below_threshold_fraction(v, t);
  EXPECT_NEAR(frac, q, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSparsityTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.8, 0.9, 0.97));

TEST(StatsDeathTest, QuantileOfEmptyAborts) {
  const std::vector<float> v;
  EXPECT_DEATH((void)quantile_abs(v, 0.5), "precondition");
}

TEST(StatsDeathTest, BadQuantileAborts) {
  const std::vector<float> v = {1.0f};
  EXPECT_DEATH((void)quantile_abs(v, 1.5), "precondition");
}

}  // namespace
}  // namespace zss::num
