#include "num/workspace.h"

#include <gtest/gtest.h>

namespace zss::num {
namespace {

TEST(WorkspaceTest, ShapesAndFillsSlots) {
  Workspace ws;
  Matrix& a = ws.mat(0, 2, 3, 1.5f);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  for (float v : a.flat()) EXPECT_FLOAT_EQ(v, 1.5f);
  Matrix& b = ws.mat(1, 4, 4);
  for (float v : b.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
  EXPECT_EQ(ws.slots(), 2u);
}

TEST(WorkspaceTest, ReacquisitionIsAllocationFree) {
  Workspace ws;
  ws.mat(0, 8, 16);
  ws.mat(1, 8, 4);
  const std::size_t warm = ws.allocation_count();
  for (int i = 0; i < 10; ++i) {
    Matrix& m = ws.mat(0, 8, 16, 2.0f);
    EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
    ws.mat(1, 8, 4);
  }
  EXPECT_EQ(ws.allocation_count(), warm);
}

TEST(WorkspaceTest, SmallerShapesReuseCapacity) {
  Workspace ws;
  ws.mat(0, 16, 16);
  const std::size_t warm = ws.allocation_count();
  Matrix& m = ws.mat(0, 4, 8);  // smaller: must fit the existing buffer
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 8);
  EXPECT_EQ(ws.allocation_count(), warm);
}

TEST(WorkspaceTest, GrowthIsCounted) {
  Workspace ws;
  ws.mat(0, 2, 2);
  const std::size_t warm = ws.allocation_count();
  ws.mat(0, 64, 64);
  EXPECT_GT(ws.allocation_count(), warm);
}

TEST(WorkspaceTest, EarlierSlotReferencesSurviveNewSlots) {
  Workspace ws;
  Matrix& a = ws.mat(0, 2, 2, 3.0f);
  for (std::size_t s = 1; s < 40; ++s) ws.mat(s, 8, 8);
  // `a` must still be the live slot-0 matrix (deque-backed storage).
  EXPECT_FLOAT_EQ(a(1, 1), 3.0f);
  a(0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(ws.mat(0, 2, 2, 7.0f)(0, 0), 7.0f);
}

}  // namespace
}  // namespace zss::num
