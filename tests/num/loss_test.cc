#include "num/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "num/rng.h"

namespace zss::num {
namespace {

TEST(LossTest, UniformLogitsGiveLogVocab) {
  Matrix logits(2, 4, 0.0f);
  const std::vector<Index> targets = {0, 3};
  const double nll = softmax_xent(logits, targets, nullptr);
  EXPECT_NEAR(nll, std::log(4.0), 1e-6);
}

TEST(LossTest, ConfidentCorrectPredictionHasLowLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 20.0f;
  const std::vector<Index> targets = {1};
  EXPECT_LT(softmax_xent(logits, targets, nullptr), 1e-6);
}

TEST(LossTest, ConfidentWrongPredictionHasHighLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 20.0f;
  const std::vector<Index> targets = {0};
  EXPECT_GT(softmax_xent(logits, targets, nullptr), 10.0);
}

TEST(LossTest, GradientIsSoftmaxMinusOnehotOverRows) {
  Matrix logits(2, 3);
  logits(0, 0) = 0.3f;
  logits(0, 1) = -0.1f;
  logits(0, 2) = 0.8f;
  logits(1, 0) = 1.0f;
  logits(1, 1) = 1.0f;
  logits(1, 2) = 1.0f;
  const std::vector<Index> targets = {2, 0};
  Matrix dlogits;
  softmax_xent(logits, targets, &dlogits);
  // Each gradient row sums to zero (softmax sums to 1, minus one-hot).
  for (Index r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (Index c = 0; c < 3; ++c) sum += dlogits(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
  EXPECT_LT(dlogits(0, 2), 0.0f);  // target entry is negative
  EXPECT_NEAR(dlogits(1, 0), (1.0f / 3.0f - 1.0f) / 2.0f, 1e-5f);
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  Rng rng(5);
  Matrix logits(3, 5);
  for (float& v : logits.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<Index> targets = {4, 0, 2};
  Matrix dlogits;
  const double base = softmax_xent(logits, targets, &dlogits);
  (void)base;
  const float eps = 1e-3f;
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 5; ++c) {
      Matrix plus = logits;
      plus(r, c) += eps;
      Matrix minus = logits;
      minus(r, c) -= eps;
      const double numeric = (softmax_xent(plus, targets, nullptr) -
                              softmax_xent(minus, targets, nullptr)) /
                             (2.0 * eps);
      EXPECT_NEAR(dlogits(r, c), numeric, 2e-3);
    }
  }
}

TEST(LossTest, BpcConversion) {
  EXPECT_NEAR(bpc_from_nll(std::log(2.0)), 1.0, 1e-9);
  EXPECT_NEAR(bpc_from_nll(std::log(50.0)), std::log2(50.0), 1e-9);
}

TEST(LossTest, PpwConversion) {
  EXPECT_NEAR(ppw_from_nll(std::log(90.0)), 90.0, 1e-9);
  EXPECT_NEAR(ppw_from_nll(0.0), 1.0, 1e-12);
}

TEST(LossTest, PpwClampsDivergedModels) {
  EXPECT_LT(ppw_from_nll(1000.0), 1.2e13);  // clamped, finite
}

TEST(LossTest, ErrorRatePercent) {
  Matrix logits(4, 2, 0.0f);
  logits(0, 0) = 1.0f;  // predicts 0
  logits(1, 1) = 1.0f;  // predicts 1
  logits(2, 0) = 1.0f;  // predicts 0
  logits(3, 1) = 1.0f;  // predicts 1
  const std::vector<Index> targets = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(error_rate_percent(logits, targets), 25.0);
}

TEST(LossDeathTest, TargetOutOfRangeAborts) {
  Matrix logits(1, 3, 0.0f);
  const std::vector<Index> targets = {3};
  EXPECT_DEATH(softmax_xent(logits, targets, nullptr), "precondition");
}

TEST(LossDeathTest, RowMismatchAborts) {
  Matrix logits(2, 3, 0.0f);
  const std::vector<Index> targets = {0};
  EXPECT_DEATH(softmax_xent(logits, targets, nullptr), "precondition");
}

}  // namespace
}  // namespace zss::num
