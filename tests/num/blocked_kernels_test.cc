// Equivalence of every available kernel backend against the unblocked
// reference loops, across odd shapes and batch sizes. The suite is
// parameterized over (shape x backend): each case pins one backend via
// simd::set_backend_for_testing and asserts the public num:: kernels
// reproduce num::reference within 0 ULP. That contract — one serial
// ascending-position multiply-accumulate chain per output element, all
// through the same FMA flavour — is what makes step() and step_dense()
// bit-identical; docs/exactness.md derives it and explains what a new
// backend must guarantee.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "num/kernels.h"
#include "num/parallel.h"
#include "num/reference_kernels.h"
#include "num/rng.h"
#include "num/simd/backend.h"

namespace zss::num {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
}

// The LSTM shapes the engine exercises: dh state positions against a
// (4dh x dh) recurrent matrix, B batch lanes.
struct Shape {
  Index dh;
  Index batch;
};

using KernelParam = std::tuple<Shape, const simd::KernelBackend*>;

class BackendKernelTest : public ::testing::TestWithParam<KernelParam> {
 protected:
  void SetUp() override {
    simd::set_backend_for_testing(std::get<1>(GetParam()));
  }
  void TearDown() override { simd::set_backend_for_testing(nullptr); }

  Shape shape() const { return std::get<0>(GetParam()); }
};

std::string param_name(const ::testing::TestParamInfo<KernelParam>& info) {
  const auto& [shape, backend] = info.param;
  return "dh" + std::to_string(shape.dh) + "b" + std::to_string(shape.batch) +
         "_" + backend->name;
}

TEST_P(BackendKernelTest, GemmMatchesReference) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch));
  const Matrix a = random_matrix(batch, dh, rng);
  const Matrix b = random_matrix(dh, 4 * dh, rng);
  Matrix c_backend;
  gemm(a, b, c_backend);
  Matrix c_ref;
  reference::gemm(a, b, c_ref);
  expect_bitwise_equal(c_backend, c_ref);
}

TEST_P(BackendKernelTest, GemmABtMatchesReference) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 1));
  const Matrix a = random_matrix(batch, dh, rng);
  const Matrix b = random_matrix(4 * dh, dh, rng);
  Matrix c_backend;
  gemm_a_bt(a, b, c_backend);
  Matrix c_ref;
  reference::gemm_a_bt(a, b, c_ref);
  expect_bitwise_equal(c_backend, c_ref);
}

TEST_P(BackendKernelTest, GemmAtBAccumMatchesReference) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 2));
  const Matrix a = random_matrix(batch, dh, rng);
  const Matrix b = random_matrix(batch, 4 * dh, rng);
  Matrix c_blocked(dh, 4 * dh, 0.5f);  // non-zero start: accumulate
  Matrix c_ref = c_blocked;
  gemm_at_b_accum(a, b, c_blocked);
  reference::gemm_at_b_accum(a, b, c_ref);
  expect_bitwise_equal(c_blocked, c_ref);
}

TEST_P(BackendKernelTest, GemvMatchesReference) {
  const auto [dh, batch] = shape();
  (void)batch;
  Rng rng(static_cast<std::uint64_t>(dh * 100 + 3));
  const Matrix w = random_matrix(4 * dh, dh, rng);
  std::vector<float> x(static_cast<std::size_t>(dh));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y_backend(static_cast<std::size_t>(4 * dh));
  std::vector<float> y_ref(static_cast<std::size_t>(4 * dh));
  gemv(w, x, y_backend);
  reference::gemv(w, x, y_ref);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_EQ(std::memcmp(&y_backend[i], &y_ref[i], sizeof(float)), 0) << i;
  }
}

TEST_P(BackendKernelTest, SparseAccumRowsMatchesReferenceBitwise) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 4));
  const Matrix packed = random_matrix(dh, 4 * dh, rng);
  // Keep ~40% of positions; values position-major with some zero lanes
  // (a lane kept only because another lane was non-zero).
  std::vector<Index> positions;
  std::vector<float> values;
  for (Index j = 0; j < dh; ++j) {
    if (dh > 1 && !rng.bernoulli(0.4)) continue;
    positions.push_back(j);
    for (Index b = 0; b < batch; ++b) {
      values.push_back(rng.bernoulli(0.25)
                           ? 0.0f
                           : static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
  }
  Matrix out_backend(batch, 4 * dh, 0.125f);
  Matrix out_ref = out_backend;
  sparse_accum_rows(packed, positions, values, out_backend);
  reference::sparse_accum_rows(packed, positions, values, out_ref);
  expect_bitwise_equal(out_backend, out_ref);  // 0 ULP
}

TEST_P(BackendKernelTest, SparseAccumRowsMultiMatchesReferenceBitwise) {
  // Per-lane CSR lists with a ragged mix of patterns across lanes:
  // ~40% kept on most lanes, one empty lane, one full lane, and one
  // single-position lane (when the batch has room for them). Every
  // backend must reproduce the reference lane-sequential accumulation
  // to 0 ULP whatever schedule (grouping, merging, tiling) it uses.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 7));
  const Matrix packed = random_matrix(dh, 4 * dh, rng);
  std::vector<Index> positions;
  std::vector<Index> row_start{0};
  std::vector<float> values;
  for (Index b = 0; b < batch; ++b) {
    if (b == 1) {
      // empty lane: contributes nothing, must not disturb neighbours
    } else if (b == 2) {
      for (Index j = 0; j < dh; ++j) {  // full lane
        positions.push_back(j);
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    } else if (b == 3) {
      positions.push_back(dh - 1);  // single position, at the edge
      values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    } else {
      for (Index j = 0; j < dh; ++j) {
        if (dh > 1 && !rng.bernoulli(0.4)) continue;
        positions.push_back(j);
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    }
    row_start.push_back(static_cast<Index>(positions.size()));
  }
  Matrix out_backend(batch, 4 * dh, 0.125f);  // non-zero start: accumulate
  Matrix out_ref = out_backend;
  sparse_accum_rows_multi(packed, positions, row_start, values, out_backend);
  reference::sparse_accum_rows_multi(packed, positions, row_start, values,
                                     out_ref);
  expect_bitwise_equal(out_backend, out_ref);  // 0 ULP
}

TEST_P(BackendKernelTest, SparseAccumRowsMultiAgreesWithIntersectedKernel) {
  // Feeding every lane the same kept list through the per-lane CSR
  // kernel must give the same bits as the position-major intersected
  // kernel with all-non-zero values: both are the identical per-element
  // ascending chains, just differently scheduled.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 8));
  const Matrix packed = random_matrix(dh, 4 * dh, rng);
  std::vector<Index> shared;
  for (Index j = 0; j < dh; j += 2) shared.push_back(j);
  // Position-major values for the intersected kernel...
  std::vector<float> values_pm;
  for (std::size_t e = 0; e < shared.size(); ++e) {
    for (Index b = 0; b < batch; ++b) {
      values_pm.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
  }
  // ...and the same values laid out lane-major for the CSR kernel.
  std::vector<Index> positions;
  std::vector<Index> row_start{0};
  std::vector<float> values_lm;
  for (Index b = 0; b < batch; ++b) {
    for (std::size_t e = 0; e < shared.size(); ++e) {
      positions.push_back(shared[e]);
      values_lm.push_back(values_pm[e * static_cast<std::size_t>(batch) +
                                   static_cast<std::size_t>(b)]);
    }
    row_start.push_back(static_cast<Index>(positions.size()));
  }
  Matrix out_multi(batch, 4 * dh, 0.0f);
  Matrix out_inter(batch, 4 * dh, 0.0f);
  sparse_accum_rows_multi(packed, positions, row_start, values_lm, out_multi);
  sparse_accum_rows(packed, shared, values_pm, out_inter);
  expect_bitwise_equal(out_multi, out_inter);
}

// Ragged per-lane CSR lists mirroring the multi test's mix: ~40% kept
// on most lanes, one empty lane, one full lane, one single-position
// lane. Shared by the overwrite-flavour tests below.
void ragged_csr(Index dh, Index batch, Rng& rng, std::vector<Index>& positions,
                std::vector<Index>& row_start, std::vector<float>& values) {
  row_start.assign(1, 0);
  for (Index b = 0; b < batch; ++b) {
    if (b == 1) {
      // empty lane: the overwrite kernel must still zero it
    } else if (b == 2) {
      for (Index j = 0; j < dh; ++j) {
        positions.push_back(j);
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    } else if (b == 3) {
      positions.push_back(dh - 1);
      values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    } else {
      for (Index j = 0; j < dh; ++j) {
        if (dh > 1 && !rng.bernoulli(0.4)) continue;
        positions.push_back(j);
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    }
    row_start.push_back(static_cast<Index>(positions.size()));
  }
}

TEST_P(BackendKernelTest, SparseAccumRowsMultiOverwriteMatchesReference) {
  // Outputs are prefilled with NaN garbage: any element the kernel
  // forgets to write poisons the bitwise comparison, so passing proves
  // every element — including whole entry-less lanes — is overwritten.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 9));
  const Matrix packed = random_matrix(dh, 4 * dh, rng);
  std::vector<Index> positions;
  std::vector<Index> row_start;
  std::vector<float> values;
  ragged_csr(dh, batch, rng, positions, row_start, values);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Matrix out_backend(batch, 4 * dh, nan);
  Matrix out_ref(batch, 4 * dh, nan);
  sparse_accum_rows_multi_overwrite(packed, positions, row_start, values,
                                    out_backend);
  reference::sparse_accum_rows_multi_overwrite(packed, positions, row_start,
                                               values, out_ref);
  expect_bitwise_equal(out_backend, out_ref);  // 0 ULP, no NaN survives
}

TEST_P(BackendKernelTest, SparseAccumRowsMultiOverwriteEqualsZeroFillAccum) {
  // The defining identity from kernels.h: overwrite over garbage is
  // bit-identical to zero-filling the output and running the
  // accumulate flavour. This is what lets the engine's batched path
  // drop the per-step pre_h zero fill.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 9));
  const Matrix packed = random_matrix(dh, 4 * dh, rng);
  std::vector<Index> positions;
  std::vector<Index> row_start;
  std::vector<float> values;
  ragged_csr(dh, batch, rng, positions, row_start, values);
  Matrix out_ow(batch, 4 * dh, -7.0e33f);  // garbage prefill
  Matrix out_accum(batch, 4 * dh, 0.0f);   // the zero fill being elided
  sparse_accum_rows_multi_overwrite(packed, positions, row_start, values,
                                    out_ow);
  sparse_accum_rows_multi(packed, positions, row_start, values, out_accum);
  expect_bitwise_equal(out_ow, out_accum);
  // Entry-less lanes must come out as +0.0f bits, not just compare
  // equal (-0.0f == +0.0f would slip through operator==).
  if (batch > 1) {
    for (Index j = 0; j < 4 * dh; ++j) {
      const float z = out_ow(1, j);
      EXPECT_EQ(std::memcmp(&z, &(out_accum(1, j)), sizeof(float)), 0);
      EXPECT_EQ(z, 0.0f);
      EXPECT_FALSE(std::signbit(z)) << j;
    }
  }
}

TEST_P(BackendKernelTest, SparseAccumRowsMatchesColumnGather) {
  // The packed-row accumulation must equal the accelerator's column
  // gather over the original gate-major matrix bit-for-bit.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 5));
  const Matrix wh = random_matrix(4 * dh, dh, rng);
  Matrix packed;
  transpose(wh, packed);
  std::vector<Index> positions;
  std::vector<float> values;
  for (Index j = 0; j < dh; j += 2) {
    positions.push_back(j);
    for (Index b = 0; b < batch; ++b) {
      values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
  }
  Matrix out_packed(batch, 4 * dh, 0.0f);
  sparse_accum_rows(packed, positions, values, out_packed);
  Matrix out_cols(batch, 4 * dh, 0.0f);
  for (std::size_t e = 0; e < positions.size(); ++e) {
    for (Index b = 0; b < batch; ++b) {
      axpy_col(wh, positions[e],
               values[e * static_cast<std::size_t>(batch) +
                      static_cast<std::size_t>(b)],
               out_cols.row(b));
    }
  }
  expect_bitwise_equal(out_packed, out_cols);
}

TEST_P(BackendKernelTest, AxpyMatchesMaddChain) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 6));
  std::vector<float> x(static_cast<std::size_t>(4 * dh * batch));
  std::vector<float> y(x.size());
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y_ref = y;
  const float alpha = 0.75f;
  axpy(alpha, x, y);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    y_ref[i] = madd(alpha, x[i], y_ref[i]);
  }
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_EQ(std::memcmp(&y[i], &y_ref[i], sizeof(float)), 0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapesAllBackends, BackendKernelTest,
    ::testing::Combine(::testing::Values(Shape{1, 1}, Shape{1, 2}, Shape{3, 1},
                                         Shape{3, 5}, Shape{17, 2},
                                         Shape{17, 5}, Shape{17, 40},
                                         Shape{64, 1}, Shape{64, 2},
                                         Shape{64, 5}, Shape{64, 33}),
                       ::testing::ValuesIn(simd::available_backends())),
    param_name);

TEST(ParallelKernelsTest, ThreadedGemmBitIdenticalToSingleThread) {
  Rng rng(77);
  const Matrix a = random_matrix(33, 65, rng);
  const Matrix b = random_matrix(65, 47, rng);
  const Matrix bt_like = random_matrix(47, 65, rng);

  ASSERT_EQ(num_threads(), 1);
  Matrix c1, c1_bt;
  gemm(a, b, c1);
  gemm_a_bt(a, bt_like, c1_bt);

  set_num_threads(4);
  Matrix c4, c4_bt;
  gemm(a, b, c4);
  gemm_a_bt(a, bt_like, c4_bt);
  set_num_threads(1);

  expect_bitwise_equal(c1, c4);
  expect_bitwise_equal(c1_bt, c4_bt);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  set_num_threads(3);
  std::vector<int> hits(100, 0);
  parallel_for(Index{0}, Index{100}, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  set_num_threads(1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TransposeTest, RoundTripsAndMatchesElements) {
  Rng rng(5);
  const Matrix m = random_matrix(33, 17, rng);
  Matrix t;
  transpose(m, t);
  ASSERT_EQ(t.rows(), 17);
  ASSERT_EQ(t.cols(), 33);
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
  Matrix back;
  transpose(t, back);
  expect_bitwise_equal(back, m);
}

}  // namespace
}  // namespace zss::num
