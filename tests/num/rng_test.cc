#include "num/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace zss::num {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / kN, 10.0, 0.02);
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(8);
  std::set<Index> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.split();
  // The child stream should not replicate the parent's next outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(13);
  (void)rng();
}

}  // namespace
}  // namespace zss::num
