// Equivalence of every available backend's int8 kernels against the
// unblocked num::reference int8 twins, across odd shapes and batch
// sizes — the kernel half of the int8 exactness contract
// (docs/exactness.md "int8"). Unlike the fp32 suite the contract here
// is NOT a serial-chain rule: int8 x int8 products are exact in i32 and
// accumulation wraps mod 2^32, so ANY summation order (including the
// horizontal reductions the SIMD kernels use) must land on the same
// bits. The suite therefore compares bitwise, including deliberate
// wraparound cases, and walks the same degenerate lane patterns
// (ragged / empty / full / single-position) as the fp32 suite.
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "num/kernels.h"
#include "num/reference_kernels.h"
#include "num/rng.h"
#include "num/simd/backend.h"

namespace zss::num {
namespace {

MatrixI8 random_i8_matrix(Index rows, Index cols, Rng& rng) {
  MatrixI8 m(rows, cols);
  for (std::int8_t& v : m.flat()) {
    v = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
  }
  return m;
}

std::int8_t random_i8(Rng& rng) {
  return static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
}

void expect_bitwise_equal_i32(const MatrixI32& a, const MatrixI32& b) {
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) *
                            sizeof(std::int32_t)),
            0);
}

struct Shape {
  Index dh;
  Index batch;
};

using KernelParam = std::tuple<Shape, const simd::KernelBackend*>;

class Int8BackendKernelTest : public ::testing::TestWithParam<KernelParam> {
 protected:
  void SetUp() override {
    simd::set_backend_for_testing(std::get<1>(GetParam()));
  }
  void TearDown() override { simd::set_backend_for_testing(nullptr); }

  Shape shape() const { return std::get<0>(GetParam()); }
};

std::string param_name(const ::testing::TestParamInfo<KernelParam>& info) {
  const auto& [shape, backend] = info.param;
  return "dh" + std::to_string(shape.dh) + "b" + std::to_string(shape.batch) +
         "_" + backend->name;
}

TEST_P(Int8BackendKernelTest, GemmABtI8MatchesReferenceBitwise) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch));
  const MatrixI8 a = random_i8_matrix(batch, dh, rng);
  const MatrixI8 b = random_i8_matrix(4 * dh, dh, rng);
  MatrixI32 c_backend;
  gemm_a_bt_i8(a, b, c_backend);
  MatrixI32 c_ref;
  reference::gemm_a_bt_i8(a, b, c_ref);
  expect_bitwise_equal_i32(c_backend, c_ref);
}

TEST_P(Int8BackendKernelTest, GemmABtI8OverwritesStaleOutput) {
  // The gemm slot overwrites; stale garbage in a reused c must not
  // leak through (the engine reuses its i32 staging every step).
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 1));
  const MatrixI8 a = random_i8_matrix(batch, dh, rng);
  const MatrixI8 b = random_i8_matrix(4 * dh, dh, rng);
  MatrixI32 c_backend(batch, 4 * dh, std::numeric_limits<std::int32_t>::min());
  gemm_a_bt_i8(a, b, c_backend);
  MatrixI32 c_ref;
  reference::gemm_a_bt_i8(a, b, c_ref);
  expect_bitwise_equal_i32(c_backend, c_ref);
}

TEST_P(Int8BackendKernelTest, SparseAccumRowsI8MatchesReferenceBitwise) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 4));
  const MatrixI8 packed = random_i8_matrix(dh, 4 * dh, rng);
  // ~40% kept, position-major values with some zero lanes (kept only
  // because another lane was non-zero — the skip-identity case).
  std::vector<Index> positions;
  std::vector<std::int8_t> values;
  for (Index j = 0; j < dh; ++j) {
    if (dh > 1 && !rng.bernoulli(0.4)) continue;
    positions.push_back(j);
    for (Index b = 0; b < batch; ++b) {
      values.push_back(rng.bernoulli(0.25) ? std::int8_t{0} : random_i8(rng));
    }
  }
  MatrixI32 out_backend(batch, 4 * dh, 125);  // non-zero start: accumulate
  MatrixI32 out_ref = out_backend;
  sparse_accum_rows_i8(packed, positions, values, out_backend);
  reference::sparse_accum_rows_i8(packed, positions, values, out_ref);
  expect_bitwise_equal_i32(out_backend, out_ref);
}

TEST_P(Int8BackendKernelTest, SparseAccumRowsMultiI8MatchesReferenceBitwise) {
  // Ragged per-lane CSR mix: ~40% kept on most lanes, one empty lane,
  // one full lane, one single-position lane at the edge.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 7));
  const MatrixI8 packed = random_i8_matrix(dh, 4 * dh, rng);
  std::vector<Index> positions;
  std::vector<Index> row_start{0};
  std::vector<std::int8_t> values;
  for (Index b = 0; b < batch; ++b) {
    if (b == 1) {
      // empty lane: contributes nothing, must not disturb neighbours
    } else if (b == 2) {
      for (Index j = 0; j < dh; ++j) {  // full lane
        positions.push_back(j);
        values.push_back(random_i8(rng));
      }
    } else if (b == 3) {
      positions.push_back(dh - 1);  // single position, at the edge
      values.push_back(random_i8(rng));
    } else {
      for (Index j = 0; j < dh; ++j) {
        if (dh > 1 && !rng.bernoulli(0.4)) continue;
        positions.push_back(j);
        values.push_back(random_i8(rng));
      }
    }
    row_start.push_back(static_cast<Index>(positions.size()));
  }
  MatrixI32 out_backend(batch, 4 * dh, -125);  // non-zero start: accumulate
  MatrixI32 out_ref = out_backend;
  sparse_accum_rows_multi_i8(packed, positions, row_start, values,
                             out_backend);
  reference::sparse_accum_rows_multi_i8(packed, positions, row_start, values,
                                        out_ref);
  expect_bitwise_equal_i32(out_backend, out_ref);
}

TEST_P(Int8BackendKernelTest, SparseFullLaneAgreesWithDenseGemm) {
  // A full-lane CSR accumulation over zero-filled output computes the
  // same sums as the dense gemm row — modular associativity makes the
  // orders interchangeable, so the bits must match across kernels, not
  // just within one.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 9));
  const MatrixI8 packed = random_i8_matrix(dh, 4 * dh, rng);
  const MatrixI8 h = random_i8_matrix(batch, dh, rng);
  // packed is wht-layout (row j = column j of the gate-major matrix);
  // rebuild the gate-major (4dh x dh) view for gemm_a_bt_i8.
  MatrixI8 gate_major(4 * dh, dh);
  for (Index r = 0; r < 4 * dh; ++r) {
    for (Index j = 0; j < dh; ++j) gate_major(r, j) = packed(j, r);
  }
  MatrixI32 dense;
  gemm_a_bt_i8(h, gate_major, dense);

  std::vector<Index> positions;
  std::vector<Index> row_start{0};
  std::vector<std::int8_t> values;
  for (Index b = 0; b < batch; ++b) {
    for (Index j = 0; j < dh; ++j) {
      positions.push_back(j);
      values.push_back(h(b, j));
    }
    row_start.push_back(static_cast<Index>(positions.size()));
  }
  MatrixI32 sparse(batch, 4 * dh, 0);
  sparse_accum_rows_multi_i8(packed, positions, row_start, values, sparse);
  expect_bitwise_equal_i32(sparse, dense);
}

TEST_P(Int8BackendKernelTest, AccumulatorWrapMatchesReference) {
  // i32 overflow edge: start the accumulators next to INT32_MAX /
  // INT32_MIN so the products push them across. Wrap mod 2^32 is the
  // documented behaviour (num::madd_i8), identical on every backend —
  // not UB, not saturation.
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 11));
  const MatrixI8 packed = random_i8_matrix(dh, 4 * dh, rng);
  std::vector<Index> positions;
  std::vector<std::int8_t> values;
  for (Index j = 0; j < dh; ++j) {
    positions.push_back(j);
    for (Index b = 0; b < batch; ++b) {
      // All-max products give the fastest march toward the edge.
      values.push_back(rng.bernoulli(0.5) ? std::int8_t{127}
                                          : std::int8_t{-127});
    }
  }
  MatrixI32 out_backend(batch, 4 * dh, 0);
  for (Index i = 0; i < out_backend.rows(); ++i) {
    for (Index j = 0; j < out_backend.cols(); ++j) {
      out_backend(i, j) = (i + j) % 2 == 0
                              ? std::numeric_limits<std::int32_t>::max() - 3
                              : std::numeric_limits<std::int32_t>::min() + 3;
    }
  }
  MatrixI32 out_ref = out_backend;
  sparse_accum_rows_i8(packed, positions, values, out_backend);
  reference::sparse_accum_rows_i8(packed, positions, values, out_ref);
  expect_bitwise_equal_i32(out_backend, out_ref);

  // Same edge through the per-lane CSR kernel.
  std::vector<Index> csr_positions;
  std::vector<Index> row_start{0};
  std::vector<std::int8_t> csr_values;
  for (Index b = 0; b < batch; ++b) {
    for (std::size_t e = 0; e < positions.size(); ++e) {
      csr_positions.push_back(positions[e]);
      csr_values.push_back(values[e * static_cast<std::size_t>(batch) +
                                 static_cast<std::size_t>(b)]);
    }
    row_start.push_back(static_cast<Index>(csr_positions.size()));
  }
  MatrixI32 multi_backend = out_ref;  // == pre-accumulation fill + one pass
  MatrixI32 multi_ref = out_ref;
  for (Index i = 0; i < multi_backend.rows(); ++i) {
    for (Index j = 0; j < multi_backend.cols(); ++j) {
      multi_backend(i, j) = (i + j) % 2 == 0
                                ? std::numeric_limits<std::int32_t>::max() - 3
                                : std::numeric_limits<std::int32_t>::min() + 3;
      multi_ref(i, j) = multi_backend(i, j);
    }
  }
  sparse_accum_rows_multi_i8(packed, csr_positions, row_start, csr_values,
                             multi_backend);
  reference::sparse_accum_rows_multi_i8(packed, csr_positions, row_start,
                                        csr_values, multi_ref);
  expect_bitwise_equal_i32(multi_backend, multi_ref);
}

TEST_P(Int8BackendKernelTest, EmptyKeptSetLeavesOutputUntouched) {
  const auto [dh, batch] = shape();
  Rng rng(static_cast<std::uint64_t>(dh * 100 + batch + 13));
  const MatrixI8 packed = random_i8_matrix(dh, 4 * dh, rng);
  MatrixI32 out(batch, 4 * dh, 42);
  sparse_accum_rows_i8(packed, {}, {}, out);
  for (std::int32_t v : out.flat()) EXPECT_EQ(v, 42);
  std::vector<Index> row_start(static_cast<std::size_t>(batch) + 1, 0);
  sparse_accum_rows_multi_i8(packed, {}, row_start, {}, out);
  for (std::int32_t v : out.flat()) EXPECT_EQ(v, 42);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapesAllBackends, Int8BackendKernelTest,
    ::testing::Combine(::testing::Values(Shape{1, 1}, Shape{1, 2}, Shape{3, 1},
                                         Shape{3, 5}, Shape{17, 2},
                                         Shape{17, 5}, Shape{17, 40},
                                         Shape{64, 1}, Shape{64, 2},
                                         Shape{64, 5}, Shape{64, 33}),
                       ::testing::ValuesIn(simd::available_backends())),
    param_name);

}  // namespace
}  // namespace zss::num
