#include "num/matrix.h"

#include <gtest/gtest.h>

#include <numeric>

namespace zss::num {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructWithFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (float v : m.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(MatrixTest, RowMajorElementAccess) {
  Matrix m(2, 3);
  std::iota(m.flat().begin(), m.flat().end(), 0.0f);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 2), 2.0f);
  EXPECT_EQ(m(1, 0), 3.0f);
  EXPECT_EQ(m(1, 2), 5.0f);
}

TEST(MatrixTest, RowSpanViewsUnderlyingData) {
  Matrix m(2, 3, 0.0f);
  auto r1 = m.row(1);
  r1[0] = 9.0f;
  EXPECT_EQ(m(1, 0), 9.0f);
  EXPECT_EQ(r1.size(), 3u);
}

TEST(MatrixTest, ResizeDiscardsAndRefills) {
  Matrix m(2, 2, 1.0f);
  m.resize(3, 1, 7.0f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  for (float v : m.flat()) EXPECT_EQ(v, 7.0f);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b(1, 1) = 2.0f;
  EXPECT_FALSE(a == b);
  Matrix c(4, 1, 1.0f);
  EXPECT_FALSE(a == c);  // same data, different shape
}

TEST(MatrixTest, SameShape) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  Matrix c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(MatrixTest, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(-3.0f);
  for (float v : m.flat()) EXPECT_EQ(v, -3.0f);
}

TEST(MatrixTest, Int8Specialization) {
  MatrixI8 m(2, 2, -5);
  EXPECT_EQ(m(1, 1), -5);
  m(0, 1) = 100;
  EXPECT_EQ(m(0, 1), 100);
}

TEST(MatrixDeathTest, OutOfRangeAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH((void)m(2, 0), "precondition");
  EXPECT_DEATH((void)m(0, -1), "precondition");
  EXPECT_DEATH((void)m.row(5), "precondition");
}

TEST(VectorTest, BasicAccess) {
  Vector v(4, 1.5f);
  EXPECT_EQ(v.size(), 4);
  v[2] = 3.0f;
  EXPECT_EQ(v[2], 3.0f);
  EXPECT_EQ(v.span()[2], 3.0f);
}

TEST(VectorTest, Equality) {
  Vector a(3, 1.0f);
  Vector b(3, 1.0f);
  EXPECT_EQ(a, b);
  b[0] = 0.0f;
  EXPECT_FALSE(a == b);
}

TEST(VectorDeathTest, OutOfRangeAborts) {
  Vector v(2);
  EXPECT_DEATH((void)v[2], "precondition");
}

}  // namespace
}  // namespace zss::num
