// Backend registry and runtime-dispatch behaviour: selection priority,
// the ZSS_KERNEL_BACKEND override, fallback-with-warning for unknown or
// unavailable names, and cross-backend agreement of sparse_accum_rows
// on the degenerate kept-row sets (empty / full / singleton) that the
// vector tails and skip branches must get right. The numeric contract
// every backend is held to is docs/exactness.md.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "num/kernels.h"
#include "num/reference_kernels.h"
#include "num/rng.h"
#include "num/simd/backend.h"

namespace zss::num::simd {
namespace {

class BackendDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ZSS_KERNEL_BACKEND");
    set_backend_for_testing(nullptr);  // drop cache; next use re-resolves
  }
};

TEST_F(BackendDispatchTest, RegistryListsAllFourBackendsUniformly) {
  std::vector<std::string> names;
  for (const KernelBackend* b : registered_backends()) {
    names.push_back(b->name);
    ASSERT_NE(b->description, nullptr);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"avx512", "avx2", "neon",
                                             "scalar"}));
}

TEST_F(BackendDispatchTest, ScalarIsAlwaysAvailableAndImplemented) {
  EXPECT_TRUE(kScalarBackend.usable());
  const auto available = available_backends();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.back(), &kScalarBackend);
}

TEST_F(BackendDispatchTest, Avx512IsARegisteredStub) {
  EXPECT_FALSE(kAvx512Backend.implemented());
  EXPECT_FALSE(kAvx512Backend.usable());
}

TEST_F(BackendDispatchTest, AutoSelectionPicksHighestPriorityAvailable) {
  std::string warning;
  const KernelBackend& chosen = resolve_backend(nullptr, &warning);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(&chosen, available_backends().front());
  // Empty string means auto-select too.
  EXPECT_EQ(&resolve_backend("", &warning), &chosen);
}

TEST_F(BackendDispatchTest, ExplicitNameSelectsThatBackend) {
  std::string warning;
  const KernelBackend& chosen = resolve_backend("scalar", &warning);
  EXPECT_EQ(&chosen, &kScalarBackend);
  EXPECT_TRUE(warning.empty());
}

TEST_F(BackendDispatchTest, UnknownNameFallsBackToScalarWithWarning) {
  std::string warning;
  const KernelBackend& chosen = resolve_backend("avx9000", &warning);
  EXPECT_EQ(&chosen, &kScalarBackend);
  EXPECT_NE(warning.find("unknown kernel backend 'avx9000'"),
            std::string::npos)
      << warning;
  EXPECT_NE(warning.find("scalar"), std::string::npos) << warning;
}

TEST_F(BackendDispatchTest, UnavailableNameFallsBackToScalarWithWarning) {
  // avx512 is a registered stub everywhere, so this path is portable.
  std::string warning;
  const KernelBackend& chosen = resolve_backend("avx512", &warning);
  EXPECT_EQ(&chosen, &kScalarBackend);
  EXPECT_NE(warning.find("avx512"), std::string::npos) << warning;
  EXPECT_FALSE(warning.empty());
}

TEST_F(BackendDispatchTest, EnvVarOverridesActiveBackend) {
  setenv("ZSS_KERNEL_BACKEND", "scalar", 1);
  set_backend_for_testing(nullptr);  // force re-resolution from env
  EXPECT_STREQ(active_backend().name, "scalar");
}

TEST_F(BackendDispatchTest, EnvVarWithUnknownNameStillYieldsScalar) {
  setenv("ZSS_KERNEL_BACKEND", "definitely-not-a-backend", 1);
  set_backend_for_testing(nullptr);
  EXPECT_STREQ(active_backend().name, "scalar");
}

// --- int8 slot uniformity and the missing-slot fallback ---------------

TEST_F(BackendDispatchTest, Int8SlotsAreAllOrNothingPerBackend) {
  // A backend either fills all three int8 slots or none: the per-call
  // fallback in num/kernels.cc switches the whole int8 table at once,
  // so a half-filled registration would silently mix schedules (legal
  // bitwise, but a registration bug worth failing loudly on).
  for (const KernelBackend* b : registered_backends()) {
    const bool any = b->gemm_a_bt_i8 != nullptr ||
                     b->sparse_accum_rows_i8 != nullptr ||
                     b->sparse_accum_rows_multi_i8 != nullptr;
    if (any) {
      EXPECT_NE(b->gemm_a_bt_i8, nullptr) << b->name;
      EXPECT_NE(b->sparse_accum_rows_i8, nullptr) << b->name;
      EXPECT_NE(b->sparse_accum_rows_multi_i8, nullptr) << b->name;
      EXPECT_TRUE(b->implemented_i8()) << b->name;
    } else {
      EXPECT_FALSE(b->implemented_i8()) << b->name;
    }
  }
  // Every *implemented* backend in this repo carries the int8 table;
  // only the avx512 stub is allowed to lack it.
  for (const KernelBackend* b : registered_backends()) {
    if (b->implemented()) EXPECT_TRUE(b->implemented_i8()) << b->name;
  }
}

TEST_F(BackendDispatchTest, MissingInt8SlotsFallBackToScalarNotCrash) {
  // Regression: an env-overridden (or future) backend that predates the
  // int8 slots leaves them nullptr. The int8 entry points must degrade
  // to the scalar table per call — never dispatch through a null slot.
  KernelBackend gutted = kScalarBackend;  // available + fp32-complete
  gutted.name = "gutted-no-int8";
  gutted.gemm_a_bt_i8 = nullptr;
  gutted.sparse_accum_rows_i8 = nullptr;
  gutted.sparse_accum_rows_multi_i8 = nullptr;
  ASSERT_TRUE(gutted.implemented());
  ASSERT_FALSE(gutted.implemented_i8());
  set_backend_for_testing(&gutted);

  Rng rng(4242);
  const Index dh = 19;
  const Index batch = 3;
  MatrixI8 a(batch, dh);
  MatrixI8 b(4 * dh, dh);
  for (std::int8_t& v : a.flat()) {
    v = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
  }
  for (std::int8_t& v : b.flat()) {
    v = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
  }
  MatrixI32 got;
  gemm_a_bt_i8(a, b, got);  // must not crash
  MatrixI32 want;
  reference::gemm_a_bt_i8(a, b, want);
  ASSERT_TRUE(got.same_shape(want));
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.size()) *
                            sizeof(std::int32_t)),
            0);

  const std::vector<Index> positions{0, 7, dh - 1};
  std::vector<std::int8_t> values;
  for (std::size_t e = 0; e < positions.size(); ++e) {
    for (Index lane = 0; lane < batch; ++lane) {
      values.push_back(static_cast<std::int8_t>(rng.uniform(-127.0, 128.0)));
    }
  }
  MatrixI32 out(batch, 4 * dh, 0);
  MatrixI32 out_ref(batch, 4 * dh, 0);
  MatrixI8 packed(dh, 4 * dh);
  for (std::int8_t& v : packed.flat()) {
    v = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
  }
  sparse_accum_rows_i8(packed, positions, values, out);
  reference::sparse_accum_rows_i8(packed, positions, values, out_ref);
  EXPECT_EQ(std::memcmp(out.data(), out_ref.data(),
                        static_cast<std::size_t>(out.size()) *
                            sizeof(std::int32_t)),
            0);

  std::vector<Index> csr_positions;
  std::vector<Index> row_start{0};
  std::vector<std::int8_t> csr_values;
  for (Index lane = 0; lane < batch; ++lane) {
    for (Index j = lane; j < dh; j += 2) {
      csr_positions.push_back(j);
      csr_values.push_back(
          static_cast<std::int8_t>(rng.uniform(-127.0, 128.0)));
    }
    row_start.push_back(static_cast<Index>(csr_positions.size()));
  }
  out.fill(0);
  out_ref.fill(0);
  sparse_accum_rows_multi_i8(packed, csr_positions, row_start, csr_values,
                             out);
  reference::sparse_accum_rows_multi_i8(packed, csr_positions, row_start,
                                        csr_values, out_ref);
  EXPECT_EQ(std::memcmp(out.data(), out_ref.data(),
                        static_cast<std::size_t>(out.size()) *
                            sizeof(std::int32_t)),
            0);
}

// --- cross-backend agreement on degenerate kept-row sets --------------

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
}

class SparseAccumKeptSetsTest : public ::testing::Test {
 protected:
  void TearDown() override { set_backend_for_testing(nullptr); }

  // Runs sparse_accum_rows under every available backend and against
  // the reference loops; all results must agree bit for bit.
  void check(std::span<const Index> positions, Index batch) {
    Rng rng(991);
    const Index dh = 37;  // odd on purpose: exercises every vector tail
    const Matrix packed = random_matrix(dh, 4 * dh, rng);
    std::vector<float> values;
    for (std::size_t e = 0; e < positions.size(); ++e) {
      for (Index b = 0; b < batch; ++b) {
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    }
    const Matrix start(batch, 4 * dh, 0.25f);
    Matrix expected = start;
    reference::sparse_accum_rows(packed, positions, values, expected);
    for (const KernelBackend* backend : available_backends()) {
      set_backend_for_testing(backend);
      Matrix out = start;
      sparse_accum_rows(packed, positions, values, out);
      SCOPED_TRACE(backend->name);
      expect_bitwise_equal(out, expected);
    }
  }
};

TEST_F(SparseAccumKeptSetsTest, EmptyKeptSetLeavesOutputUntouched) {
  check({}, 1);
  check({}, 5);
}

TEST_F(SparseAccumKeptSetsTest, SingletonKeptSet) {
  const std::vector<Index> one{17};
  check(one, 1);
  check(one, 5);
}

TEST_F(SparseAccumKeptSetsTest, FullKeptSetEqualsDenseAccumulation) {
  std::vector<Index> all;
  for (Index j = 0; j < 37; ++j) all.push_back(j);
  check(all, 1);
  check(all, 5);
}

}  // namespace
}  // namespace zss::num::simd
