#include "data/char_corpus.h"

#include <gtest/gtest.h>

#include <set>

namespace zss::data {
namespace {

CharCorpusConfig small_config() {
  CharCorpusConfig cfg;
  cfg.train_chars = 20000;
  cfg.valid_chars = 2000;
  cfg.test_chars = 2000;
  return cfg;
}

TEST(CharCorpusTest, SplitSizesMatchConfig) {
  const auto corpus = CharCorpus::generate(small_config());
  EXPECT_EQ(corpus.train().size(), 20000u);
  EXPECT_EQ(corpus.valid().size(), 2000u);
  EXPECT_EQ(corpus.test().size(), 2000u);
}

TEST(CharCorpusTest, SymbolsWithinVocab) {
  const auto corpus = CharCorpus::generate(small_config());
  for (auto id : corpus.train()) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, CharCorpus::kVocab);
  }
}

TEST(CharCorpusTest, DeterministicFromSeed) {
  const auto a = CharCorpus::generate(small_config());
  const auto b = CharCorpus::generate(small_config());
  EXPECT_EQ(a.train(), b.train());
  EXPECT_EQ(a.test(), b.test());
}

TEST(CharCorpusTest, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = CharCorpus::generate(cfg);
  cfg.seed = 999;
  const auto b = CharCorpus::generate(cfg);
  EXPECT_NE(a.train(), b.train());
}

TEST(CharCorpusTest, ContainsWordStructure) {
  const auto corpus = CharCorpus::generate(small_config());
  // Spaces must appear with word-like frequency (between 5% and 40%).
  num::Index spaces = 0;
  for (auto id : corpus.train()) {
    if (corpus.symbol(id) == ' ') ++spaces;
  }
  const double frac =
      static_cast<double>(spaces) / static_cast<double>(corpus.train().size());
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.4);
}

TEST(CharCorpusTest, UsesLimitedAlphabetHeavily) {
  // Letters dominate; rare marks occur rarely or never. This keeps the
  // stream learnable (entropy well below log2(50)).
  const auto corpus = CharCorpus::generate(small_config());
  num::Index letters = 0;
  for (auto id : corpus.train()) {
    if (id < 26) ++letters;
  }
  EXPECT_GT(static_cast<double>(letters) /
                static_cast<double>(corpus.train().size()),
            0.6);
}

TEST(CharCorpusTest, ToTextRendersPrintable) {
  const auto corpus = CharCorpus::generate(small_config());
  const std::vector<num::Index> head(corpus.train().begin(),
                                     corpus.train().begin() + 50);
  const std::string text = corpus.to_text(head);
  EXPECT_EQ(text.size(), 50u);
  for (char c : text) EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c)));
}

TEST(CharCorpusTest, SplitsAreContiguousNotOverlapping) {
  // Valid and test come from disjoint parts of one stream; they should
  // not be identical to the head of train.
  const auto corpus = CharCorpus::generate(small_config());
  const std::vector<num::Index> train_head(corpus.train().begin(),
                                           corpus.train().begin() + 2000);
  EXPECT_NE(train_head, corpus.valid());
}

TEST(CharCorpusDeathTest, BadConfigAborts) {
  CharCorpusConfig cfg = small_config();
  cfg.train_chars = 0;
  EXPECT_DEATH((void)CharCorpus::generate(cfg), "precondition");
}

}  // namespace
}  // namespace zss::data
