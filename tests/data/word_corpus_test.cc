#include "data/word_corpus.h"

#include <gtest/gtest.h>

#include <map>

namespace zss::data {
namespace {

WordCorpusConfig small_config() {
  WordCorpusConfig cfg;
  cfg.vocab_size = 1000;
  cfg.train_tokens = 20000;
  cfg.valid_tokens = 2000;
  cfg.test_tokens = 2000;
  return cfg;
}

TEST(WordCorpusTest, SplitSizes) {
  const auto corpus = WordCorpus::generate(small_config());
  EXPECT_EQ(corpus.train().size(), 20000u);
  EXPECT_EQ(corpus.valid().size(), 2000u);
  EXPECT_EQ(corpus.test().size(), 2000u);
  EXPECT_EQ(corpus.vocab_size(), 1000);
}

TEST(WordCorpusTest, TokensWithinVocab) {
  const auto corpus = WordCorpus::generate(small_config());
  for (auto id : corpus.train()) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, corpus.vocab_size());
  }
}

TEST(WordCorpusTest, Deterministic) {
  const auto a = WordCorpus::generate(small_config());
  const auto b = WordCorpus::generate(small_config());
  EXPECT_EQ(a.train(), b.train());
}

TEST(WordCorpusTest, HeavyTailedUnigram) {
  const auto corpus = WordCorpus::generate(small_config());
  std::map<num::Index, num::Index> counts;
  for (auto id : corpus.train()) ++counts[id];
  // The most frequent word should dwarf the median-frequency word.
  num::Index max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 1000 * 5);  // >> uniform expectation
}

TEST(WordCorpusTest, TopicStructureCreatesLocalCorrelation) {
  // Words of the same topic (id % topics) should co-occur: consecutive
  // tokens share a topic far more often than 1/topics.
  auto cfg = small_config();
  const auto corpus = WordCorpus::generate(cfg);
  num::Index same_topic = 0;
  const auto& t = corpus.train();
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] % cfg.topics == t[i - 1] % cfg.topics) ++same_topic;
  }
  const double frac =
      static_cast<double>(same_topic) / static_cast<double>(t.size() - 1);
  EXPECT_GT(frac, 3.0 / static_cast<double>(cfg.topics));
}

TEST(WordCorpusTest, PaperScaleConfigIsDefault) {
  const WordCorpusConfig cfg;
  EXPECT_EQ(cfg.vocab_size, 10000);  // PTB word vocabulary
}

TEST(WordCorpusDeathTest, BadConfigAborts) {
  WordCorpusConfig cfg = small_config();
  cfg.topics = 1;
  EXPECT_DEATH((void)WordCorpus::generate(cfg), "precondition");
  cfg = small_config();
  cfg.vocab_size = 10;
  EXPECT_DEATH((void)WordCorpus::generate(cfg), "precondition");
}

}  // namespace
}  // namespace zss::data
