#include "data/glyph_images.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace zss::data {
namespace {

GlyphConfig small_config() {
  GlyphConfig cfg;
  cfg.side = 12;
  cfg.train_count = 200;
  cfg.test_count = 50;
  return cfg;
}

TEST(GlyphImagesTest, Shapes) {
  const auto images = GlyphImages::generate(small_config());
  EXPECT_EQ(images.train_images().rows(), 200);
  EXPECT_EQ(images.train_images().cols(), 144);
  EXPECT_EQ(images.train_labels().size(), 200u);
  EXPECT_EQ(images.test_images().rows(), 50);
  EXPECT_EQ(images.pixels(), 144);
}

TEST(GlyphImagesTest, PixelRange) {
  const auto images = GlyphImages::generate(small_config());
  for (float v : images.train_images().flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(GlyphImagesTest, LabelsBalancedRoundRobin) {
  const auto images = GlyphImages::generate(small_config());
  std::vector<num::Index> counts(GlyphImages::kClasses, 0);
  for (auto l : images.train_labels()) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, GlyphImages::kClasses);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (auto c : counts) EXPECT_EQ(c, 20);
}

TEST(GlyphImagesTest, Deterministic) {
  const auto a = GlyphImages::generate(small_config());
  const auto b = GlyphImages::generate(small_config());
  EXPECT_EQ(a.train_images(), b.train_images());
  EXPECT_EQ(a.train_labels(), b.train_labels());
}

TEST(GlyphImagesTest, ClassesAreVisuallyDistinct) {
  // Mean images of different classes should differ substantially.
  auto cfg = small_config();
  cfg.noise_stddev = 0.0;
  cfg.jitter_fraction = 0.0;
  const auto images = GlyphImages::generate(cfg);
  num::Matrix mean(GlyphImages::kClasses, images.pixels(), 0.0f);
  std::vector<num::Index> counts(GlyphImages::kClasses, 0);
  for (num::Index i = 0; i < images.train_images().rows(); ++i) {
    const auto label = images.train_labels()[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(label)];
    auto m = mean.row(label);
    auto im = images.train_images().row(i);
    for (std::size_t p = 0; p < m.size(); ++p) m[p] += im[p];
  }
  for (num::Index c = 0; c < GlyphImages::kClasses; ++c) {
    for (float& v : mean.row(c)) {
      v /= static_cast<float>(counts[static_cast<std::size_t>(c)]);
    }
  }
  for (num::Index a = 0; a < GlyphImages::kClasses; ++a) {
    for (num::Index b = a + 1; b < GlyphImages::kClasses; ++b) {
      float diff = 0.0f;
      for (num::Index p = 0; p < images.pixels(); ++p) {
        diff += std::fabs(mean(a, p) - mean(b, p));
      }
      EXPECT_GT(diff, 1.0f) << "classes " << a << " and " << b;
    }
  }
}

TEST(GlyphImagesTest, NoiseActuallyPerturbs) {
  auto cfg = small_config();
  cfg.noise_stddev = 0.0;
  const auto clean = GlyphImages::generate(cfg);
  cfg.noise_stddev = 0.1;
  const auto noisy = GlyphImages::generate(cfg);
  EXPECT_FALSE(clean.train_images() == noisy.train_images());
}

TEST(GlyphImagesTest, RenderProducesSideLines) {
  const auto images = GlyphImages::generate(small_config());
  const std::string art = images.render(images.train_images().row(0));
  num::Index newlines = 0;
  for (char c : art) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, images.side());
}

TEST(GlyphImagesDeathTest, TooSmallSideAborts) {
  GlyphConfig cfg = small_config();
  cfg.side = 4;
  EXPECT_DEATH((void)GlyphImages::generate(cfg), "precondition");
}

}  // namespace
}  // namespace zss::data
