#include "data/batcher.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace zss::data {
namespace {

std::vector<num::Index> iota_stream(num::Index n) {
  std::vector<num::Index> s(static_cast<std::size_t>(n));
  std::iota(s.begin(), s.end(), 0);
  return s;
}

TEST(LmBatcherTest, WindowShapeAndCount) {
  const auto stream = iota_stream(101);
  LmBatcher batcher(stream, /*batch=*/2, /*seq_len=*/10);
  // Each lane holds 50 tokens, 49 usable as inputs -> 4 windows of 10.
  EXPECT_EQ(batcher.num_windows(), 4);
  const auto w = batcher.window(0);
  EXPECT_EQ(w.inputs.size(), 20u);
  EXPECT_EQ(w.targets.size(), 20u);
  EXPECT_TRUE(w.first);
  EXPECT_FALSE(batcher.window(1).first);
}

TEST(LmBatcherTest, TargetsAreNextTokens) {
  const auto stream = iota_stream(100);
  LmBatcher batcher(stream, 2, 5);
  for (num::Index w = 0; w < batcher.num_windows(); ++w) {
    const auto batch = batcher.window(w);
    for (std::size_t i = 0; i < batch.inputs.size(); ++i) {
      EXPECT_EQ(batch.targets[i], batch.inputs[i] + 1);
    }
  }
}

TEST(LmBatcherTest, LanesAreContiguousChunks) {
  const auto stream = iota_stream(100);
  LmBatcher batcher(stream, 2, 5);
  const auto w0 = batcher.window(0);
  // Lane 0 starts at 0, lane 1 at 50 (stream_size / batch).
  EXPECT_EQ(w0.inputs[0], 0);
  EXPECT_EQ(w0.inputs[1], 50);
  // Time-major layout: step t, lane b at [t * batch + b].
  EXPECT_EQ(w0.inputs[2], 1);
  EXPECT_EQ(w0.inputs[3], 51);
}

TEST(LmBatcherTest, ConsecutiveWindowsContinueLanes) {
  const auto stream = iota_stream(100);
  LmBatcher batcher(stream, 2, 5);
  const auto w0 = batcher.window(0);
  const auto w1 = batcher.window(1);
  // Lane 0 last input of w0 is 4; first of w1 must be 5 (state carry).
  EXPECT_EQ(w0.inputs[4 * 2 + 0], 4);
  EXPECT_EQ(w1.inputs[0], 5);
}

TEST(LmBatcherTest, BatchOfOneUsesWholeStream) {
  const auto stream = iota_stream(21);
  LmBatcher batcher(stream, 1, 4);
  EXPECT_EQ(batcher.num_windows(), 5);
}

TEST(LmBatcherDeathTest, BadWindowIndexAborts) {
  const auto stream = iota_stream(100);
  LmBatcher batcher(stream, 2, 5);
  EXPECT_DEATH((void)batcher.window(99), "precondition");
}

TEST(LmBatcherDeathTest, TooShortStreamAborts) {
  const auto stream = iota_stream(4);
  EXPECT_DEATH(LmBatcher(stream, 2, 10), "precondition");
}

TEST(ImageBatcherTest, BatchShapes) {
  num::Matrix images(10, 9, 0.5f);
  std::vector<num::Index> labels(10, 3);
  ImageBatcher batcher(images, labels, 4);
  EXPECT_EQ(batcher.num_batches(), 2);  // 10 / 4, remainder dropped
  const auto b = batcher.batch(0);
  EXPECT_EQ(b.images.rows(), 4);
  EXPECT_EQ(b.images.cols(), 9);
  EXPECT_EQ(b.labels.size(), 4u);
}

TEST(ImageBatcherTest, UnshuffledOrderIsIdentity) {
  num::Matrix images(6, 2, 0.0f);
  std::vector<num::Index> labels = {0, 1, 2, 3, 4, 5};
  for (num::Index i = 0; i < 6; ++i) images(i, 0) = static_cast<float>(i);
  ImageBatcher batcher(images, labels, 3);
  const auto b0 = batcher.batch(0);
  EXPECT_EQ(b0.labels, (std::vector<num::Index>{0, 1, 2}));
  EXPECT_FLOAT_EQ(b0.images(2, 0), 2.0f);
}

TEST(ImageBatcherTest, ShuffleKeepsImageLabelPairsAligned) {
  num::Matrix images(8, 1, 0.0f);
  std::vector<num::Index> labels(8);
  for (num::Index i = 0; i < 8; ++i) {
    images(i, 0) = static_cast<float>(i);
    labels[static_cast<std::size_t>(i)] = i;
  }
  ImageBatcher batcher(images, labels, 4);
  num::Rng rng(5);
  batcher.shuffle(rng);
  for (num::Index b = 0; b < batcher.num_batches(); ++b) {
    const auto batch = batcher.batch(b);
    for (num::Index i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(batch.images(i, 0),
                      static_cast<float>(batch.labels[static_cast<std::size_t>(i)]));
    }
  }
}

TEST(ImageBatcherTest, ShuffleCoversAllSamples) {
  num::Matrix images(8, 1, 0.0f);
  std::vector<num::Index> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  ImageBatcher batcher(images, labels, 4);
  num::Rng rng(6);
  batcher.shuffle(rng);
  std::set<num::Index> seen;
  for (num::Index b = 0; b < batcher.num_batches(); ++b) {
    for (auto l : batcher.batch(b).labels) seen.insert(l);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ImageBatcherDeathTest, MismatchedLabelsAbort) {
  num::Matrix images(4, 2);
  std::vector<num::Index> labels(3);
  EXPECT_DEATH(ImageBatcher(images, labels, 2), "precondition");
}

}  // namespace
}  // namespace zss::data
