// Cache-aware packed layout of an LstmCell's inference weights.
//
// Training stores Wh and Wx gate-major, (4dh x dh) and (4dh x dx): row
// g*dh+i is output element i of gate g. The skip path of the inference
// engine instead walks *state positions* — for every kept position j it
// needs Wh[:, j], which in the gate-major layout is a stride-dh column
// gather across 4dh rows (one cache line touched per element).
//
// PackedLstmWeights stores the transposed, gate-interleaved layout:
//   wht(j, :) = Wh[:, j]  — position j's f/i/o/g columns as ONE
//                            contiguous 4dh row,
//   wxt(j, :) = Wx[:, j]  — the same for the input path,
// so the sparse accumulate (num::sparse_accum_rows) streams exactly the
// rows it keeps, and the input-path GEMM streams wxt rows for the
// non-zero input elements. Values are copied bit-for-bit, and the
// kernels accumulate positions in the same ascending order as the dense
// path, so packing preserves the engine's bit-exactness contract.
#pragma once

#include <cstdint>

#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "num/types.h"
#include "quant/quantize.h"

namespace zss::nn {

struct PackedLstmWeights {
  num::Index dx = 0;
  num::Index dh = 0;
  num::Matrix wxt;   // (dx x 4dh), row j = Wx[:, j]
  num::Matrix wht;   // (dh x 4dh), row j = Wh[:, j]
  num::Vector bias;  // (4dh), copied so inference never chases Parameters

  /// Snapshots the cell's current weights into the packed layout. Call
  /// again after weights change (packing is a transpose, not a view).
  static PackedLstmWeights pack(const LstmCell& cell);
};

/// Int8 twin of PackedLstmWeights for the engine's quantized step mode
/// (docs/exactness.md "int8", docs/architecture.md).
///
/// One symmetric per-cell weight scale covers Wx AND Wh (the max-|w|
/// scale over both), and the state/input grid is fixed at 1/127
/// (kStateScale) — so the input-path and state-path i32 partial sums
/// land on the SAME accumulator scale, scale/127, and add as plain
/// integers. bias_q is pre-divided onto that accumulator scale, which
/// keeps the whole pre-activation integer until the single requantize
/// into the LUT domain (core/sparse_inference.cc).
///
/// Layouts mirror the fp32 pack: wx/wh gate-major for the dense GEMMs,
/// wht transposed gate-interleaved (row j = Whq[:, j]) for the skip
/// path. Quantize-then-transpose equals transpose-then-quantize
/// elementwise, so both dense and sparse paths multiply identical int8
/// weights — one ingredient of step() == step_dense() bitwise.
struct PackedLstmWeightsI8 {
  /// The fixed state/input quantization grid: real = q / 127 with q in
  /// [-127, 127]. Serving inputs are one-hot (exact on the grid) and
  /// quantized h is written back already on the grid, so re-quantizing
  /// state each step is an exact round trip.
  static constexpr float kStateScale = 1.0f / 127.0f;

  num::Index dx = 0;
  num::Index dh = 0;
  quant::QuantParams weight_scale;  // shared by wx, wh and wht
  num::MatrixI8 wx;        // (4dh x dx) gate-major, input-path gemm_a_bt_i8
  num::MatrixI8 wh;        // (4dh x dh) gate-major, dense-baseline path
  num::MatrixI8 wht;       // (dh x 4dh), row j = Whq[:, j] — skip path
  num::VectorI32 bias_q;   // (4dh) on the accumulator scale, scale/127

  static PackedLstmWeightsI8 pack(const LstmCell& cell);
};

}  // namespace zss::nn
