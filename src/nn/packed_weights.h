// Cache-aware packed layout of an LstmCell's inference weights.
//
// Training stores Wh and Wx gate-major, (4dh x dh) and (4dh x dx): row
// g*dh+i is output element i of gate g. The skip path of the inference
// engine instead walks *state positions* — for every kept position j it
// needs Wh[:, j], which in the gate-major layout is a stride-dh column
// gather across 4dh rows (one cache line touched per element).
//
// PackedLstmWeights stores the transposed, gate-interleaved layout:
//   wht(j, :) = Wh[:, j]  — position j's f/i/o/g columns as ONE
//                            contiguous 4dh row,
//   wxt(j, :) = Wx[:, j]  — the same for the input path,
// so the sparse accumulate (num::sparse_accum_rows) streams exactly the
// rows it keeps, and the input-path GEMM streams wxt rows for the
// non-zero input elements. Values are copied bit-for-bit, and the
// kernels accumulate positions in the same ascending order as the dense
// path, so packing preserves the engine's bit-exactness contract.
#pragma once

#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "num/types.h"

namespace zss::nn {

struct PackedLstmWeights {
  num::Index dx = 0;
  num::Index dh = 0;
  num::Matrix wxt;   // (dx x 4dh), row j = Wx[:, j]
  num::Matrix wht;   // (dh x 4dh), row j = Wh[:, j]
  num::Vector bias;  // (4dh), copied so inference never chases Parameters

  /// Snapshots the cell's current weights into the packed layout. Call
  /// again after weights change (packing is a transpose, not a view).
  static PackedLstmWeights pack(const LstmCell& cell);
};

}  // namespace zss::nn
