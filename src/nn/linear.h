// Fully connected layer: Y = X W^T + b (the "classifier" on top of the
// LSTM in all three tasks).
#pragma once

#include <vector>

#include "nn/parameter.h"
#include "num/rng.h"

namespace zss::nn {

class Linear {
 public:
  Linear(num::Index in_dim, num::Index out_dim, num::Rng& rng);

  num::Index in_dim() const { return w_.value.cols(); }
  num::Index out_dim() const { return w_.value.rows(); }

  void forward(const num::Matrix& x, num::Matrix& y) const;

  /// Accumulates dW, db and returns dX.
  void backward(const num::Matrix& x, const num::Matrix& dy,
                num::Matrix& dx);

  std::vector<Parameter*> parameters() { return {&w_, &b_}; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

 private:
  Parameter w_;  // (out x in)
  Parameter b_;  // (1 x out)
};

}  // namespace zss::nn
