// Trainable parameter: a dense value matrix with a gradient of the same
// shape. Layers expose their parameters as a flat list so optimizers and
// serialization never need to know layer internals.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::nn {

struct Parameter {
  std::string name;
  num::Matrix value;
  num::Matrix grad;

  Parameter() = default;
  Parameter(std::string n, num::Index rows, num::Index cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.fill(0.0f); }

  num::Index numel() const { return value.size(); }
};

/// Zeroes every gradient in the list.
inline void zero_grads(std::span<Parameter* const> params) {
  for (Parameter* p : params) p->zero_grad();
}

/// Total number of scalars across parameters.
inline num::Index total_numel(std::span<Parameter* const> params) {
  num::Index n = 0;
  for (const Parameter* p : params) n += p->numel();
  return n;
}

}  // namespace zss::nn
