// Batched LSTM cell with exact backpropagation through time.
//
// Implements the paper's Eq. (1)-(3) with gate order [f, i, o, g]:
//   [f;i;o;g] = [sigma;sigma;sigma;tanh](Wh h_{t-1} + Wx x_t + b)
//   c_t = f (*) c_{t-1} + i (*) g
//   h_t = o (*) tanh(c_t)
//
// The cell itself is pruning-agnostic: callers pass the (possibly pruned)
// previous hidden state h^p_{t-1} (Eq. 4) and the straight-through
// estimator of Eq. (6) falls out naturally because backward() returns the
// gradient with respect to *that* input, which the trainer routes onto
// the dense state.
#pragma once

#include <vector>

#include "nn/parameter.h"
#include "num/matrix.h"
#include "num/rng.h"
#include "num/types.h"
#include "num/workspace.h"

namespace zss::nn {

/// Activations cached by one forward step, consumed by backward.
struct LstmStepCache {
  num::Matrix x;        // (B x dx) input
  num::Matrix h_prev;   // (B x dh) hidden actually used (pruned or dense)
  num::Matrix c_prev;   // (B x dh)
  num::Matrix gates;    // (B x 4dh) post-activation [f, i, o, g]
  num::Matrix c;        // (B x dh) new cell state
  num::Matrix tanh_c;   // (B x dh)
};

/// Result of one forward step.
struct LstmStepOutput {
  num::Matrix h;  // (B x dh)
  num::Matrix c;  // (B x dh)
};

/// Gradients returned by one backward step.
struct LstmStepGrads {
  num::Matrix dx;       // (B x dx)
  num::Matrix dh_prev;  // (B x dh), w.r.t. the hidden the step consumed
  num::Matrix dc_prev;  // (B x dh)
};

class LstmCell {
 public:
  LstmCell(num::Index input_dim, num::Index hidden_dim, num::Rng& rng,
           float forget_bias = 1.0f);

  num::Index input_dim() const { return dx_; }
  num::Index hidden_dim() const { return dh_; }

  /// One timestep. `h_prev` is whatever state representation the caller
  /// wants the recurrence to see (dense, or pruned per Eq. 4/5).
  ///
  /// Not reentrant: forward() draws scratch from a per-cell workspace,
  /// so concurrent forward() calls on ONE cell need external
  /// synchronization (or one cell instance per thread). Distinct cells
  /// are independent.
  LstmStepOutput forward(const num::Matrix& x, const num::Matrix& h_prev,
                         const num::Matrix& c_prev,
                         LstmStepCache* cache) const;

  /// In-place variant: writes the new state into `h_out` / `c_out`
  /// instead of returning fresh matrices, and draws scratch from the
  /// cell's workspace — zero heap allocations once warm when the outputs
  /// are already shaped (B x dh). `c_out` may alias `c_prev` and `h_out`
  /// may alias `h_prev` (each element is read before it is overwritten);
  /// the outputs must not alias `x` or each other.
  void forward(const num::Matrix& x, const num::Matrix& h_prev,
               const num::Matrix& c_prev, LstmStepCache* cache,
               num::Matrix& h_out, num::Matrix& c_out) const;

  /// Backward through one step. `dh` and `dc` are the gradients flowing
  /// into h_t and c_t; parameter gradients are accumulated in place.
  LstmStepGrads backward(const LstmStepCache& cache, const num::Matrix& dh,
                         const num::Matrix& dc);

  std::vector<Parameter*> parameters();

  Parameter& wx() { return wx_; }
  Parameter& wh() { return wh_; }
  Parameter& bias() { return b_; }
  const Parameter& wx() const { return wx_; }
  const Parameter& wh() const { return wh_; }
  const Parameter& bias() const { return b_; }

 private:
  enum Slot : std::size_t { kPre, kPreH, kTanhC };

  num::Index dx_;
  num::Index dh_;
  Parameter wx_;  // (4dh x dx)
  Parameter wh_;  // (4dh x dh)
  Parameter b_;   // (1 x 4dh)
  // Scratch for the inference-path forward (pre-activations, tanh(c)).
  // Mutable: reusing buffers does not change the cell's observable state.
  mutable num::Workspace ws_;
};

}  // namespace zss::nn
