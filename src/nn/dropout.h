// Inverted dropout, applied to non-recurrent connections only (the paper
// follows Zaremba et al. for the word model: dropout 0.5 between the LSTM
// output and the classifier).
#pragma once

#include "num/matrix.h"
#include "num/rng.h"

namespace zss::nn {

class Dropout {
 public:
  explicit Dropout(double drop_prob) : drop_prob_(drop_prob) {
    ZSS_EXPECTS(drop_prob >= 0.0 && drop_prob < 1.0);
  }

  /// Applies a fresh mask in place during training; identity when
  /// `training` is false or the rate is zero. The mask is retained for
  /// the matching backward call.
  void forward(num::Matrix& x, bool training, num::Rng& rng);

  /// Applies the retained mask to the gradient.
  void backward(num::Matrix& dx) const;

  double rate() const { return drop_prob_; }

 private:
  double drop_prob_;
  num::Matrix mask_;
  bool active_ = false;
};

}  // namespace zss::nn
