#include "nn/dropout.h"

namespace zss::nn {

void Dropout::forward(num::Matrix& x, bool training, num::Rng& rng) {
  active_ = training && drop_prob_ > 0.0;
  if (!active_) return;
  mask_.resize(x.rows(), x.cols());
  const float keep_scale = 1.0f / static_cast<float>(1.0 - drop_prob_);
  auto xm = x.flat();
  auto mm = mask_.flat();
  for (std::size_t i = 0; i < xm.size(); ++i) {
    const float m = rng.bernoulli(drop_prob_) ? 0.0f : keep_scale;
    mm[i] = m;
    xm[i] *= m;
  }
}

void Dropout::backward(num::Matrix& dx) const {
  if (!active_) return;
  ZSS_EXPECTS(dx.same_shape(mask_));
  auto dm = dx.flat();
  auto mm = mask_.flat();
  for (std::size_t i = 0; i < dm.size(); ++i) dm[i] *= mm[i];
}

}  // namespace zss::nn
