// Weight initialization schemes.
#pragma once

#include "num/matrix.h"
#include "num/rng.h"

namespace zss::nn {

/// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(num::Matrix& w, num::Index fan_in, num::Index fan_out,
                    num::Rng& rng);

/// Uniform in [-limit, limit].
void uniform_init(num::Matrix& w, float limit, num::Rng& rng);

/// LSTM-style init: Xavier for all gate blocks plus a positive forget-gate
/// bias (standard practice to let gradients flow early in training).
void lstm_bias_init(num::Matrix& b, num::Index hidden, float forget_bias);

}  // namespace zss::nn
