#include "nn/linear.h"

#include "nn/init.h"
#include "num/kernels.h"

namespace zss::nn {

Linear::Linear(num::Index in_dim, num::Index out_dim, num::Rng& rng)
    : w_("linear.w", out_dim, in_dim), b_("linear.b", 1, out_dim) {
  ZSS_EXPECTS(in_dim > 0 && out_dim > 0);
  xavier_uniform(w_.value, in_dim, out_dim, rng);
  b_.value.fill(0.0f);
}

void Linear::forward(const num::Matrix& x, num::Matrix& y) const {
  ZSS_EXPECTS(x.cols() == in_dim());
  num::gemm_a_bt(x, w_.value, y);
  num::add_bias_rows(y, b_.value.flat());
}

void Linear::backward(const num::Matrix& x, const num::Matrix& dy,
                      num::Matrix& dx) {
  ZSS_EXPECTS(x.cols() == in_dim());
  ZSS_EXPECTS(dy.cols() == out_dim());
  ZSS_EXPECTS(dy.rows() == x.rows());
  num::gemm_at_b_accum(dy, x, w_.grad);
  auto bgrad = b_.grad.flat();
  for (num::Index r = 0; r < dy.rows(); ++r) {
    auto row = dy.row(r);
    for (std::size_t j = 0; j < row.size(); ++j) bgrad[j] += row[j];
  }
  num::gemm(dy, w_.value, dx);
}

}  // namespace zss::nn
