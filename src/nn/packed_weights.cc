#include "nn/packed_weights.h"

#include "num/kernels.h"

namespace zss::nn {

PackedLstmWeights PackedLstmWeights::pack(const LstmCell& cell) {
  PackedLstmWeights p;
  p.dx = cell.input_dim();
  p.dh = cell.hidden_dim();
  num::transpose(cell.wx().value, p.wxt);
  num::transpose(cell.wh().value, p.wht);
  const auto b = cell.bias().value.flat();
  p.bias.resize(static_cast<num::Index>(b.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    p.bias[static_cast<num::Index>(i)] = b[i];
  }
  return p;
}

}  // namespace zss::nn
