#include "nn/packed_weights.h"

#include <cmath>

#include "num/kernels.h"

namespace zss::nn {

PackedLstmWeights PackedLstmWeights::pack(const LstmCell& cell) {
  PackedLstmWeights p;
  p.dx = cell.input_dim();
  p.dh = cell.hidden_dim();
  num::transpose(cell.wx().value, p.wxt);
  num::transpose(cell.wh().value, p.wht);
  const auto b = cell.bias().value.flat();
  p.bias.resize(static_cast<num::Index>(b.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    p.bias[static_cast<num::Index>(i)] = b[i];
  }
  return p;
}

PackedLstmWeightsI8 PackedLstmWeightsI8::pack(const LstmCell& cell) {
  PackedLstmWeightsI8 p;
  p.dx = cell.input_dim();
  p.dh = cell.hidden_dim();
  const num::Matrix& wx_f = cell.wx().value;
  const num::Matrix& wh_f = cell.wh().value;
  // One shared scale over both weight matrices, so the input-path and
  // state-path i32 partials share the accumulator scale scale/127 and
  // add without any rescaling (header comment).
  const quant::QuantParams sx = quant::choose_scale(wx_f.flat());
  const quant::QuantParams sh = quant::choose_scale(wh_f.flat());
  p.weight_scale.scale = sx.scale > sh.scale ? sx.scale : sh.scale;
  p.wx.reshape(wx_f.rows(), wx_f.cols());
  quant::quantize(wx_f.flat(), p.weight_scale, p.wx.flat());
  p.wh.reshape(wh_f.rows(), wh_f.cols());
  quant::quantize(wh_f.flat(), p.weight_scale, p.wh.flat());
  // Transpose the already-quantized Whq so dense and sparse paths
  // multiply identical int8 values.
  p.wht.reshape(p.dh, 4 * p.dh);
  for (num::Index r = 0; r < p.wh.rows(); ++r) {
    for (num::Index j = 0; j < p.wh.cols(); ++j) p.wht(j, r) = p.wh(r, j);
  }
  const auto b = cell.bias().value.flat();
  p.bias_q.resize(static_cast<num::Index>(b.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    // bias on the accumulator scale: q = b / (scale/127). double keeps
    // the division deterministic and exact to well past i32 range.
    const double q = std::nearbyint(static_cast<double>(b[i]) * 127.0 /
                                    static_cast<double>(p.weight_scale.scale));
    p.bias_q[static_cast<num::Index>(i)] = static_cast<std::int32_t>(q);
  }
  return p;
}

}  // namespace zss::nn
