// Optimizers used by the paper's three recipes:
//   - char-LM:  ADAM, lr 2e-3            (§II-B.1)
//   - word-LM:  SGD, lr 1, decay 1.2, gradient-norm clip 5   (§II-B.2)
//   - MNIST:    ADAM, lr 1e-3            (§II-B.3)
#pragma once

#include <span>
#include <vector>

#include "nn/parameter.h"

namespace zss::nn {

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float clip_grad_norm(std::span<Parameter* const> params, float max_norm);

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' current gradients.
  virtual void step(std::span<Parameter* const> params) = 0;

  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) { ZSS_EXPECTS(lr > 0.0f); }

  void step(std::span<Parameter* const> params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

  /// Divides the learning rate by `factor` (the paper's "learning decay
  /// factor of 1.2" schedule for the word model).
  void decay(float factor) {
    ZSS_EXPECTS(factor > 0.0f);
    lr_ /= factor;
  }

 private:
  float lr_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);

  void step(std::span<Parameter* const> params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  struct Moments {
    num::Matrix m;
    num::Matrix v;
  };

  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long step_count_ = 0;
  // Slot i holds moments for the i-th parameter of the step() list; the
  // list must be stable across calls (same layers, same order).
  std::vector<Moments> slots_;
};

}  // namespace zss::nn
