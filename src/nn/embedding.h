// Token embedding layer (used by the word-level model, §II-B.2: "an
// embedding layer of size 300 to reduce the dimension of the input").
#pragma once

#include <span>
#include <vector>

#include "nn/parameter.h"
#include "num/rng.h"

namespace zss::nn {

class Embedding {
 public:
  Embedding(num::Index vocab, num::Index dim, num::Rng& rng);

  num::Index vocab() const { return table_.value.rows(); }
  num::Index dim() const { return table_.value.cols(); }

  /// Gathers rows: out(i, :) = table[ids[i]].
  void forward(std::span<const num::Index> ids, num::Matrix& out) const;

  /// Scatter-adds dout rows into the table gradient.
  void backward(std::span<const num::Index> ids, const num::Matrix& dout);

  std::vector<Parameter*> parameters() { return {&table_}; }
  Parameter& table() { return table_; }
  const Parameter& table() const { return table_; }

 private:
  Parameter table_;  // (vocab x dim)
};

}  // namespace zss::nn
