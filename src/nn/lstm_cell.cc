#include "nn/lstm_cell.h"

#include "nn/init.h"
#include "num/activations.h"
#include "num/kernels.h"

namespace zss::nn {

LstmCell::LstmCell(num::Index input_dim, num::Index hidden_dim, num::Rng& rng,
                   float forget_bias)
    : dx_(input_dim),
      dh_(hidden_dim),
      wx_("lstm.wx", 4 * hidden_dim, input_dim),
      wh_("lstm.wh", 4 * hidden_dim, hidden_dim),
      b_("lstm.b", 1, 4 * hidden_dim) {
  ZSS_EXPECTS(input_dim > 0 && hidden_dim > 0);
  xavier_uniform(wx_.value, input_dim, hidden_dim, rng);
  xavier_uniform(wh_.value, hidden_dim, hidden_dim, rng);
  lstm_bias_init(b_.value, hidden_dim, forget_bias);
}

LstmStepOutput LstmCell::forward(const num::Matrix& x,
                                 const num::Matrix& h_prev,
                                 const num::Matrix& c_prev,
                                 LstmStepCache* cache) const {
  LstmStepOutput out;
  forward(x, h_prev, c_prev, cache, out.h, out.c);
  return out;
}

void LstmCell::forward(const num::Matrix& x, const num::Matrix& h_prev,
                       const num::Matrix& c_prev, LstmStepCache* cache,
                       num::Matrix& h_out, num::Matrix& c_out) const {
  const num::Index batch = x.rows();
  ZSS_EXPECTS(x.cols() == dx_);
  ZSS_EXPECTS(h_prev.rows() == batch && h_prev.cols() == dh_);
  ZSS_EXPECTS(c_prev.rows() == batch && c_prev.cols() == dh_);

  // Pre-activations: (B x 4dh) = x Wx^T + h_prev Wh^T + b. Training
  // (cache set) computes them straight into the cache's gate buffer;
  // inference draws from the workspace.
  num::Matrix& pre =
      cache != nullptr ? cache->gates : ws_.uninit(kPre, batch, 4 * dh_);
  num::gemm_a_bt(x, wx_.value, pre);
  num::Matrix& pre_h = ws_.uninit(kPreH, batch, 4 * dh_);
  num::gemm_a_bt(h_prev, wh_.value, pre_h);
  // pre += pre_h through the backend axpy: fma(1, x, y) rounds exactly
  // like x + y, so this matches the previous elementwise add bit for bit.
  num::axpy(1.0f, pre_h.flat(), pre.flat());
  num::add_bias_rows(pre, b_.value.flat());

  // Activate in place: blocks [f, i, o] -> sigmoid, [g] -> tanh.
  for (num::Index r = 0; r < batch; ++r) {
    auto row = pre.row(r);
    for (num::Index j = 0; j < 3 * dh_; ++j) {
      row[static_cast<std::size_t>(j)] =
          num::sigmoid(row[static_cast<std::size_t>(j)]);
    }
    for (num::Index j = 3 * dh_; j < 4 * dh_; ++j) {
      row[static_cast<std::size_t>(j)] =
          num::tanh_act(row[static_cast<std::size_t>(j)]);
    }
  }

  // Snapshot the step inputs before the elementwise update can overwrite
  // an aliased previous state.
  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = h_prev;
    cache->c_prev = c_prev;
  }

  // Resize only on a shape change: an output that aliases its previous
  // state (the in-place stepping pattern) is already shaped and must not
  // be cleared before the elementwise update reads it.
  if (c_out.rows() != batch || c_out.cols() != dh_) c_out.resize(batch, dh_);
  if (h_out.rows() != batch || h_out.cols() != dh_) h_out.resize(batch, dh_);
  num::Matrix& tanh_c =
      cache != nullptr ? cache->tanh_c : ws_.uninit(kTanhC, batch, dh_);
  if (cache != nullptr) tanh_c.resize(batch, dh_);
  for (num::Index r = 0; r < batch; ++r) {
    auto gates = pre.row(r);
    auto cp = c_prev.row(r);
    auto c = c_out.row(r);
    auto h = h_out.row(r);
    auto tc = tanh_c.row(r);
    for (num::Index j = 0; j < dh_; ++j) {
      const float f = gates[static_cast<std::size_t>(j)];
      const float i = gates[static_cast<std::size_t>(dh_ + j)];
      const float o = gates[static_cast<std::size_t>(2 * dh_ + j)];
      const float g = gates[static_cast<std::size_t>(3 * dh_ + j)];
      const float cj = f * cp[static_cast<std::size_t>(j)] + i * g;
      c[static_cast<std::size_t>(j)] = cj;
      const float t = num::tanh_act(cj);
      tc[static_cast<std::size_t>(j)] = t;
      h[static_cast<std::size_t>(j)] = o * t;
    }
  }

  if (cache != nullptr) cache->c = c_out;
}

LstmStepGrads LstmCell::backward(const LstmStepCache& cache,
                                 const num::Matrix& dh,
                                 const num::Matrix& dc) {
  const num::Index batch = cache.x.rows();
  ZSS_EXPECTS(dh.rows() == batch && dh.cols() == dh_);
  ZSS_EXPECTS(dc.rows() == batch && dc.cols() == dh_);

  // Gradient on pre-activations, packed (B x 4dh) in [f, i, o, g] order.
  num::Matrix dpre(batch, 4 * dh_);
  LstmStepGrads grads;
  grads.dc_prev.resize(batch, dh_);

  for (num::Index r = 0; r < batch; ++r) {
    auto gates = cache.gates.row(r);
    auto cp = cache.c_prev.row(r);
    auto tc = cache.tanh_c.row(r);
    auto dh_row = dh.row(r);
    auto dc_row = dc.row(r);
    auto dpre_row = dpre.row(r);
    auto dcp = grads.dc_prev.row(r);
    for (num::Index j = 0; j < dh_; ++j) {
      const float f = gates[static_cast<std::size_t>(j)];
      const float i = gates[static_cast<std::size_t>(dh_ + j)];
      const float o = gates[static_cast<std::size_t>(2 * dh_ + j)];
      const float g = gates[static_cast<std::size_t>(3 * dh_ + j)];
      const float t = tc[static_cast<std::size_t>(j)];

      // h = o * tanh(c): gradient into o and into c (through tanh),
      // plus the incoming dc from the step after this one.
      const float dhj = dh_row[static_cast<std::size_t>(j)];
      const float dcj = dhj * o * num::dtanh_from_y(t) +
                        dc_row[static_cast<std::size_t>(j)];

      dpre_row[static_cast<std::size_t>(j)] =
          dcj * cp[static_cast<std::size_t>(j)] * num::dsigmoid_from_y(f);
      dpre_row[static_cast<std::size_t>(dh_ + j)] =
          dcj * g * num::dsigmoid_from_y(i);
      dpre_row[static_cast<std::size_t>(2 * dh_ + j)] =
          dhj * t * num::dsigmoid_from_y(o);
      dpre_row[static_cast<std::size_t>(3 * dh_ + j)] =
          dcj * i * num::dtanh_from_y(g);
      dcp[static_cast<std::size_t>(j)] = dcj * f;
    }
  }

  // Parameter gradients: dWx += dpre^T x, dWh += dpre^T h_prev,
  // db += column sums of dpre.
  num::gemm_at_b_accum(dpre, cache.x, wx_.grad);
  num::gemm_at_b_accum(dpre, cache.h_prev, wh_.grad);
  auto bgrad = b_.grad.flat();
  for (num::Index r = 0; r < batch; ++r) {
    auto row = dpre.row(r);
    for (num::Index j = 0; j < 4 * dh_; ++j) {
      bgrad[static_cast<std::size_t>(j)] += row[static_cast<std::size_t>(j)];
    }
  }

  // Input gradients: dx = dpre Wx, dh_prev = dpre Wh.
  num::gemm(dpre, wx_.value, grads.dx);
  num::gemm(dpre, wh_.value, grads.dh_prev);
  return grads;
}

std::vector<Parameter*> LstmCell::parameters() {
  return {&wx_, &wh_, &b_};
}

}  // namespace zss::nn
