#include "nn/optimizer.h"

#include <cmath>

#include "num/kernels.h"

namespace zss::nn {

float clip_grad_norm(std::span<Parameter* const> params, float max_norm) {
  ZSS_EXPECTS(max_norm > 0.0f);
  float sq = 0.0f;
  for (const Parameter* p : params) sq += num::squared_norm(p->grad.flat());
  const float norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float s = max_norm / norm;
    for (Parameter* p : params) num::scale(p->grad.flat(), s);
  }
  return norm;
}

void Sgd::step(std::span<Parameter* const> params) {
  for (Parameter* p : params) {
    num::axpy(-lr_, p->grad.flat(), p->value.flat());
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  ZSS_EXPECTS(lr > 0.0f);
  ZSS_EXPECTS(beta1 >= 0.0f && beta1 < 1.0f);
  ZSS_EXPECTS(beta2 >= 0.0f && beta2 < 1.0f);
}

void Adam::step(std::span<Parameter* const> params) {
  if (slots_.empty()) {
    slots_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      slots_[i].m.resize(params[i]->value.rows(), params[i]->value.cols());
      slots_[i].v.resize(params[i]->value.rows(), params[i]->value.cols());
    }
  }
  ZSS_EXPECTS(slots_.size() == params.size());

  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;

  for (std::size_t i = 0; i < params.size(); ++i) {
    ZSS_EXPECTS(params[i]->value.same_shape(slots_[i].m));
    auto val = params[i]->value.flat();
    auto grad = params[i]->grad.flat();
    auto m = slots_[i].m.flat();
    auto v = slots_[i].v.flat();
    for (std::size_t j = 0; j < val.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      val[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

}  // namespace zss::nn
