#include "nn/init.h"

#include <cmath>

namespace zss::nn {

void xavier_uniform(num::Matrix& w, num::Index fan_in, num::Index fan_out,
                    num::Rng& rng) {
  ZSS_EXPECTS(fan_in > 0 && fan_out > 0);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  uniform_init(w, limit, rng);
}

void uniform_init(num::Matrix& w, float limit, num::Rng& rng) {
  ZSS_EXPECTS(limit >= 0.0f);
  for (float& v : w.flat()) {
    v = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void lstm_bias_init(num::Matrix& b, num::Index hidden, float forget_bias) {
  ZSS_EXPECTS(b.size() == 4 * hidden);
  b.fill(0.0f);
  // Gate order is f, i, o, g (paper Eq. 1): forget block is the first.
  auto flat = b.flat();
  for (num::Index j = 0; j < hidden; ++j) {
    flat[static_cast<std::size_t>(j)] = forget_bias;
  }
}

}  // namespace zss::nn
