#include "nn/embedding.h"

#include <algorithm>

#include "nn/init.h"

namespace zss::nn {

Embedding::Embedding(num::Index vocab, num::Index dim, num::Rng& rng)
    : table_("embedding.table", vocab, dim) {
  ZSS_EXPECTS(vocab > 0 && dim > 0);
  uniform_init(table_.value, 0.1f, rng);
}

void Embedding::forward(std::span<const num::Index> ids,
                        num::Matrix& out) const {
  out.resize(static_cast<num::Index>(ids.size()), dim());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ZSS_EXPECTS(ids[i] >= 0 && ids[i] < vocab());
    auto src = table_.value.row(ids[i]);
    auto dst = out.row(static_cast<num::Index>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void Embedding::backward(std::span<const num::Index> ids,
                         const num::Matrix& dout) {
  ZSS_EXPECTS(dout.rows() == static_cast<num::Index>(ids.size()));
  ZSS_EXPECTS(dout.cols() == dim());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto g = table_.grad.row(ids[i]);
    auto d = dout.row(static_cast<num::Index>(i));
    for (std::size_t j = 0; j < g.size(); ++j) g[j] += d[j];
  }
}

}  // namespace zss::nn
