// Workload shape descriptors shared by the timing model, the scheduler
// and the benches.
#pragma once

#include "num/types.h"

namespace zss::accel {

/// How the input vector x_t reaches the accelerator.
enum class InputMode {
  /// One-hot token (char-LM): Wx x_t is a column lookup whose bytes ride
  /// the spare input channel; it contributes no matvec positions and, per
  /// the paper's op accounting (§II-A), no ops.
  kOneHot,
  /// Dense real-valued input (word-LM embedding, MNIST pixel): every
  /// position of x_t streams its weight column like a state position, but
  /// can never be skipped.
  kDense,
};

struct WorkloadShape {
  num::Index hidden = 1000;  // d_h
  num::Index input = 50;     // d_x
  InputMode input_mode = InputMode::kOneHot;
  num::Index batch = 1;

  /// Dense-equivalent operations of one timestep across the batch,
  /// counting a MAC as two ops and following the paper's convention of
  /// counting only matvec work (one-hot input contributes none).
  double equivalent_ops() const {
    double ops = 2.0 * static_cast<double>(hidden) * 4.0 *
                 static_cast<double>(hidden);
    if (input_mode == InputMode::kDense) {
      ops += 2.0 * static_cast<double>(input) * 4.0 *
             static_cast<double>(hidden);
    }
    return ops * static_cast<double>(batch);
  }

  /// Shapes used in the paper's evaluation (§II-B).
  static WorkloadShape ptb_char(num::Index batch) {
    return {1000, 50, InputMode::kOneHot, batch};
  }
  static WorkloadShape ptb_word(num::Index batch) {
    return {300, 300, InputMode::kDense, batch};
  }
  static WorkloadShape mnist(num::Index batch) {
    return {100, 1, InputMode::kDense, batch};
  }
};

}  // namespace zss::accel
