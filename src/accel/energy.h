// Energy / power model (paper §III-C/D).
//
// Two modes:
//  - kCalibratedConstant (default): the chip draws a constant 83 mW — the
//    value implied by every (GOPS, GOPS/W) pair in Figs. 8-9 and by the
//    stated peak (76.8 GOPS at 925.3 GOPS/W). This mirrors how the paper
//    derived energy: a synthesis-time power estimate applied to measured
//    runtimes. Reproduces Fig. 9 exactly given Fig. 8.
//  - kComponent: activity-based chip energy (MACs, scratch accesses,
//    on-chip movement, leakage) with optional LPDDR4 DRAM energy — used
//    by the ablation benches to show where the constant-power assumption
//    over/under-counts.
#pragma once

#include "accel/config.h"
#include "accel/report.h"

namespace zss::accel {

enum class EnergyMode { kCalibratedConstant, kComponent };

struct EnergyConfig {
  EnergyMode mode = EnergyMode::kCalibratedConstant;

  /// 76.8 GOPS / 925.3 GOPS/W = 83 mW (§III-C).
  double constant_power_w = 0.083;

  // Component constants, 65 nm GP class. Chip-side only by default; the
  // paper's synthesis numbers exclude DRAM device power.
  double mac_pj = 0.4;
  double sram_access_pj = 0.06;
  double onchip_byte_pj = 0.3;   // routers + weight/input registers
  double leakage_w = 0.058;      // leakage + clock tree at 200 MHz
  bool include_dram = false;
  double dram_byte_pj = 32.0;    // LPDDR4 ~4 pJ/bit interface+device
};

struct EnergyBreakdown {
  double mac_j = 0.0;
  double sram_j = 0.0;
  double onchip_j = 0.0;
  double leakage_j = 0.0;
  double dram_j = 0.0;

  double total_j() const {
    return mac_j + sram_j + onchip_j + leakage_j + dram_j;
  }
};

class EnergyModel {
 public:
  EnergyModel(const EnergyConfig& energy, const AcceleratorConfig& accel);

  EnergyBreakdown energy(const RunTotals& totals) const;

  double average_power_w(const RunTotals& totals) const;

  double gops_per_watt(const RunTotals& totals) const;

  const EnergyConfig& config() const { return energy_; }

 private:
  EnergyConfig energy_;
  AcceleratorConfig accel_;
};

}  // namespace zss::accel
