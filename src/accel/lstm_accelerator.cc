#include "accel/lstm_accelerator.h"

#include <cmath>

#include "num/kernels.h"

namespace zss::accel {

LstmAccelerator::LstmAccelerator(const AcceleratorConfig& config,
                                 const LstmAcceleratorOptions& options,
                                 const nn::LstmCell& cell)
    : config_(config),
      options_(options),
      scheduler_(config),
      cell_(&cell),
      sigmoid_lut_(quant::Nonlinearity::kSigmoid,
                   quant::QuantParams{options.preact_clip / 127.0f}),
      tanh_lut_(quant::Nonlinearity::kTanh,
                quant::QuantParams{options.preact_clip / 127.0f}),
      tanh_c_lut_(quant::Nonlinearity::kTanh,
                  quant::QuantParams{options.cell_clip / 127.0f}),
      h_p_{1.0f / 127.0f},
      c_p_{options.cell_clip / 127.0f},
      pre_p_{options.preact_clip / 127.0f},
      input_mode_(options.input_mode) {
  config_.validate();
  ZSS_EXPECTS(options.prune_threshold >= 0.0f);
  ZSS_EXPECTS(options.preact_clip > 0.0f && options.cell_clip > 0.0f);

  wh_p_ = quant::quantize_matrix(cell.wh().value, wh_q_);
  wx_p_ = quant::quantize_matrix(cell.wx().value, wx_q_);
  const auto b = cell.bias().value.flat();
  bias_.assign(b.begin(), b.end());
  reset(1);
}

void LstmAccelerator::reset(num::Index batch) {
  ZSS_EXPECTS(batch >= 1 && batch <= config_.scratch_entries);
  batch_ = batch;
  const num::Index dh = cell_->hidden_dim();
  gate_codes_.assign(static_cast<std::size_t>(4 * dh), 0);
  h_q_.resize(batch, dh, 0);
  c_q_.resize(batch, dh, 0);
  h_ref_.resize(batch, dh, 0.0f);
  c_ref_.resize(batch, dh, 0.0f);
}

WorkloadShape LstmAccelerator::shape() const {
  return {cell_->hidden_dim(), cell_->input_dim(), input_mode_, batch_};
}

void LstmAccelerator::step(const num::Matrix& x) {
  step_impl(x, Mode::kSparse);
}

void LstmAccelerator::step_dense(const num::Matrix& x) {
  step_impl(x, Mode::kDense);
}

void LstmAccelerator::step_impl(const num::Matrix& x, Mode mode) {
  const num::Index B = batch_;
  const num::Index dh = cell_->hidden_dim();
  const num::Index dx = cell_->input_dim();
  ZSS_EXPECTS(x.rows() == B && x.cols() == dx);

  // ---- Timing: skip mask from the stored (pruned) previous state ----
  const WorkloadShape wshape = shape();
  ScheduleStats stats;
  if (mode == Mode::kDense) {
    stats = scheduler_.run_timestep_dense(wshape);
  } else {
    std::vector<bool> lane_nonzero(static_cast<std::size_t>(dh * B));
    for (num::Index j = 0; j < dh; ++j) {
      for (num::Index b = 0; b < B; ++b) {
        lane_nonzero[static_cast<std::size_t>(j * B + b)] =
            h_q_(b, j) != 0;
      }
    }
    stats = scheduler_.run_timestep(wshape, lane_nonzero);
  }
  totals_.add(stats, wshape);

  // ---- Functional int8 datapath ----
  const quant::QuantParams x_p = quant::choose_scale(x.flat());
  num::MatrixI8 x_q(B, dx);
  quant::quantize(x.flat(), x_p, x_q.flat());

  const float h_recombine = wh_p_.scale * h_p_.scale;
  const float x_recombine = wx_p_.scale * x_p.scale;
  const float prune_code_limit =
      options_.prune_threshold / h_p_.scale;  // |code| below this -> 0

  num::MatrixI8 h_new(B, dh);
  num::MatrixI8 c_new(B, dh);
  for (num::Index b = 0; b < B; ++b) {
    for (num::Index i = 0; i < 4 * dh; ++i) {
      // Per-PE partial accumulation in scratch precision.
      quant::FixedAccumulator acc_h(
          options_.ideal_accumulators ? 30 : static_cast<int>(config_.scratch_bits),
          options_.ideal_accumulators ? 0 : config_.accum_pre_shift);
      quant::FixedAccumulator acc_x = acc_h;
      const std::int8_t* wh_row = wh_q_.data() + i * dh;
      const std::int8_t* hrow = h_q_.data() + b * dh;
      for (num::Index j = 0; j < dh; ++j) {
        const std::int32_t prod = static_cast<std::int32_t>(wh_row[j]) *
                                  static_cast<std::int32_t>(hrow[j]);
        if (prod != 0) acc_h.add_product(prod);
      }
      const std::int8_t* wx_row = wx_q_.data() + i * dx;
      const std::int8_t* xrow = x_q.data() + b * dx;
      for (num::Index j = 0; j < dx; ++j) {
        const std::int32_t prod = static_cast<std::int32_t>(wx_row[j]) *
                                  static_cast<std::int32_t>(xrow[j]);
        if (prod != 0) acc_x.add_product(prod);
      }
      if (acc_h.saturated() || acc_x.saturated()) ++saturation_events_;

      const float preact =
          static_cast<float>(acc_h.value()) * h_recombine +
          static_cast<float>(acc_x.value()) * x_recombine +
          bias_[static_cast<std::size_t>(i)];
      // Gate codes buffer layout matches the trainer: [f, i, o, g].
      gate_codes_[static_cast<std::size_t>(i)] =
          quant::quantize_one(preact, pre_p_);
    }

    for (num::Index j = 0; j < dh; ++j) {
      const std::int8_t f_c =
          sigmoid_lut_.apply(gate_codes_[static_cast<std::size_t>(j)]);
      const std::int8_t i_c =
          sigmoid_lut_.apply(gate_codes_[static_cast<std::size_t>(dh + j)]);
      const std::int8_t o_c = sigmoid_lut_.apply(
          gate_codes_[static_cast<std::size_t>(2 * dh + j)]);
      const std::int8_t g_c =
          tanh_lut_.apply(gate_codes_[static_cast<std::size_t>(3 * dh + j)]);

      // c = f*c_prev + i*g, computed on dequantized codes (each product
      // is an exact fixed-point product; the final requantize models the
      // rescale-and-round stage after the Hadamard units).
      const float f = quant::NonlinearLut::to_float(f_c);
      const float i_v = quant::NonlinearLut::to_float(i_c);
      const float o = quant::NonlinearLut::to_float(o_c);
      const float g = quant::NonlinearLut::to_float(g_c);
      const float c_prev = quant::dequantize_one(c_q_(b, j), c_p_);
      const std::int8_t c_code = quant::quantize_one(f * c_prev + i_v * g, c_p_);
      c_new(b, j) = c_code;

      const float tanh_c = quant::NonlinearLut::to_float(tanh_c_lut_.apply(c_code));
      std::int8_t h_code = quant::quantize_one(o * tanh_c, h_p_);
      // The encoder stores the pruned representation (Eq. 5 applied to
      // the quantized state), regardless of sparse/dense timing mode:
      // pruning is a property of the trained model.
      if (options_.prune_threshold > 0.0f &&
          std::fabs(static_cast<float>(h_code)) < prune_code_limit) {
        h_code = 0;
      }
      h_new(b, j) = h_code;
    }
  }
  h_q_ = std::move(h_new);
  c_q_ = std::move(c_new);

  // ---- Float reference (same pruning rule, exact arithmetic) ----
  if (options_.track_reference) {
    auto out = cell_->forward(x, h_ref_, c_ref_, nullptr);
    h_ref_ = std::move(out.h);
    c_ref_ = std::move(out.c);
    if (options_.prune_threshold > 0.0f) {
      for (float& v : h_ref_.flat()) {
        if (std::fabs(v) < options_.prune_threshold) v = 0.0f;
      }
    }
  }
}

num::Matrix LstmAccelerator::hidden_state() const {
  num::Matrix h(batch_, cell_->hidden_dim());
  quant::dequantize(h_q_.flat(), h_p_, h.flat());
  return h;
}

num::Matrix LstmAccelerator::cell_state() const {
  num::Matrix c(batch_, cell_->hidden_dim());
  quant::dequantize(c_q_.flat(), c_p_, c.flat());
  return c;
}

double LstmAccelerator::fidelity_cosine() const {
  const num::Matrix h = hidden_state();
  double cos_sum = 0.0;
  num::Index lanes = 0;
  for (num::Index b = 0; b < batch_; ++b) {
    const float dot = num::dot(h.row(b), h_ref_.row(b));
    const float na = std::sqrt(num::squared_norm(h.row(b)));
    const float nb = std::sqrt(num::squared_norm(h_ref_.row(b)));
    if (na > 0.0f && nb > 0.0f) {
      cos_sum += static_cast<double>(dot / (na * nb));
      ++lanes;
    }
  }
  return lanes == 0 ? 1.0 : cos_sum / static_cast<double>(lanes);
}

}  // namespace zss::accel
