// Run-level counters and the performance report printed by the benches.
#pragma once

#include "accel/config.h"
#include "accel/scheduler.h"
#include "num/types.h"

namespace zss::accel {

/// Counters accumulated over a run of timesteps.
struct RunTotals {
  num::Index timesteps = 0;
  num::Index cycles = 0;
  double equivalent_ops = 0.0;  // dense-equivalent ops (paper convention)
  num::Index macs_issued = 0;
  num::Index macs_effectual = 0;
  num::Index onehot_adds = 0;    // one-hot column accumulator adds
  num::Index weight_bytes = 0;   // weight stream traffic
  num::Index state_bytes = 0;    // x/h/c/offset traffic
  num::Index sram_accesses = 0;  // scratch partial read+write pairs
  num::Index positions_total = 0;
  num::Index positions_kept = 0;

  void add(const ScheduleStats& s, const WorkloadShape& shape) {
    ++timesteps;
    cycles += s.cycles.total();
    equivalent_ops += shape.equivalent_ops();
    macs_issued += s.macs_issued;
    macs_effectual += s.macs_effectual;
    onehot_adds += s.onehot_adds;
    weight_bytes += s.weights_streamed;
    // Per timestep the accelerator reads x and c_{t-1} and writes h_t
    // (kept values + offsets) and c_t.
    const num::Index offset_bytes = s.positions_kept;  // 8-bit counter
    state_bytes += shape.batch * (shape.input + 3 * shape.hidden) +
                   offset_bytes;
    sram_accesses += 2 * s.macs_issued;  // read-modify-write per MAC
    positions_total += s.positions_total;
    positions_kept += s.positions_kept;
  }

  double seconds(const AcceleratorConfig& config) const {
    return static_cast<double>(cycles) / config.clock_hz;
  }

  double gops(const AcceleratorConfig& config) const {
    return cycles == 0 ? 0.0 : equivalent_ops / seconds(config) / 1e9;
  }

  double observed_sparsity() const {
    return positions_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(positions_kept) /
                           static_cast<double>(positions_total);
  }

  double dram_bytes() const {
    return static_cast<double>(weight_bytes + state_bytes);
  }
};

}  // namespace zss::accel
