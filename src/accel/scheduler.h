// Position-level schedule walker — the simulator's "RTL-ish" layer.
//
// Where TimingModel gives closed-form totals, the Scheduler actually
// walks the Fig. 5 dataflow position by position: for each kept position
// it streams weight groups cycle by cycle, advances the batch pipeline,
// and tallies PE-busy counts, giving utilization and a per-phase cycle
// trace. Tests assert that its totals match TimingModel exactly, and the
// toy 6-element example of Fig. 5(a)-(d) is reproduced in
// tests/integration/fig5_dataflow_test and bench/fig5_dataflow.
#pragma once

#include <vector>

#include "accel/config.h"
#include "accel/timing_model.h"
#include "accel/workload.h"
#include "num/types.h"

namespace zss::accel {

/// Counters of one scheduled vector-matrix multiplication, W (rows x
/// positions) times a batch of vectors, with the all-lanes-zero skip rule.
struct MatvecStats {
  num::Index cycles = 0;
  num::Index macs_issued = 0;      // MACs performed (incl. zero-valued
                                   // lanes of kept positions, Fig. 5(d))
  num::Index macs_effectual = 0;   // MACs with a non-zero activation
  num::Index weights_streamed = 0; // weight bytes fetched
  num::Index positions_total = 0;
  num::Index positions_kept = 0;
};

/// Aggregate counters of one scheduled LSTM timestep.
struct ScheduleStats {
  TimestepCycles cycles;
  num::Index mac_slots = 0;        // PE-cycles available during matvec
  num::Index macs_issued = 0;
  num::Index macs_effectual = 0;
  num::Index onehot_adds = 0;      // Wx column adds riding the input
                                   // channel (one-hot mode only)
  num::Index weights_streamed = 0;
  num::Index positions_total = 0;
  num::Index positions_kept = 0;

  double pe_utilization() const {
    return mac_slots == 0 ? 0.0
                          : static_cast<double>(macs_issued) /
                                static_cast<double>(mac_slots);
  }
};

class Scheduler {
 public:
  explicit Scheduler(const AcceleratorConfig& config);

  /// Streaming cost of one position's weight column (`rows` weights,
  /// shared by all lanes): DRAM- or compute-bound, whichever is slower.
  num::Index cycles_per_position(num::Index rows, num::Index batch) const;

  /// Schedules a generic matvec. `lane_nonzero[j * batch + b]` flags a
  /// non-zero activation at position j, lane b; a position is skipped
  /// only when all lanes are zero (Fig. 5(d) rule). `positions` is
  /// inferred from the mask size.
  MatvecStats matvec(num::Index rows, const std::vector<bool>& lane_nonzero,
                     num::Index batch) const;

  /// Schedules one LSTM timestep: state matvec with the given mask, the
  /// input path (dense positions or one-hot channel overlap), the
  /// element-wise phases of Eq. (2)-(3) and the output encoder.
  ScheduleStats run_timestep(const WorkloadShape& shape,
                             const std::vector<bool>& lane_nonzero) const;

  /// Convenience: dense state (nothing skippable).
  ScheduleStats run_timestep_dense(const WorkloadShape& shape) const;

  const AcceleratorConfig& config() const { return config_; }

 private:
  AcceleratorConfig config_;
};

}  // namespace zss::accel
