#include "accel/config.h"

namespace zss::accel {

void AcceleratorConfig::validate() const {
  ZSS_EXPECTS(tiles >= 1);
  ZSS_EXPECTS(pes_per_tile >= 1);
  ZSS_EXPECTS(clock_hz > 0.0);
  ZSS_EXPECTS(dram_gbps > 0.0);
  ZSS_EXPECTS(weight_bits == 8);  // datapath is 8-bit throughout (§III-C)
  ZSS_EXPECTS(act_bits == 8);
  ZSS_EXPECTS(scratch_entries >= 1 && scratch_entries <= 64);
  ZSS_EXPECTS(scratch_bits >= 8 && scratch_bits <= 24);
  ZSS_EXPECTS(accum_pre_shift >= 0 && accum_pre_shift <= 16);
  ZSS_EXPECTS(offset_bits >= 1 && offset_bits <= 16);
  ZSS_EXPECTS(weight_channel_fraction > 0.0 && weight_channel_fraction < 1.0);
}

}  // namespace zss::accel
