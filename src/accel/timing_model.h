// Closed-form cycle model of the zero-state-skipping dataflow (§III-A).
//
// Per timestep, the matvec streams one weight column group per *kept*
// position (a position is kept unless all batch lanes are zero there).
// The cost of one position is
//     max( ceil(4 d_h / weights_per_cycle),        — DRAM-bound
//          ceil(4 d_h * batch / total_PEs) )       — compute-bound
// which reproduces the paper's three regimes: batch 1 is DRAM-bound at
// 12.5% utilization (9.6 GOPS dense), batch 8 saturates the PEs at the
// bandwidth limit (76.4 GOPS) and batch 16 is compute-bound (two scratch
// passes, same GOPS). Dense input positions (word/MNIST) add the same
// per-position cost but are never skipped. The element-wise phase
// (Eq. 2-3 plus the output encoder) adds four pipeline stages of
// ceil(batch * d_h / pes_per_tile) cycles, and the whole pipeline pays a
// (batch - 1)-cycle fill once per timestep.
#pragma once

#include "accel/config.h"
#include "accel/workload.h"
#include "num/types.h"

namespace zss::accel {

/// Cycle breakdown of one timestep.
struct TimestepCycles {
  num::Index matvec_state = 0;   // kept h positions
  num::Index matvec_input = 0;   // dense x positions (0 for one-hot)
  num::Index input_overlap = 0;  // one-hot column bytes that did NOT fit
                                 // under the matvec (residual cycles)
  num::Index elementwise = 0;    // Eq. (2)-(3) Hadamard/tanh stages
  num::Index encode = 0;         // output encoder stage
  num::Index pipeline_fill = 0;

  num::Index total() const {
    return matvec_state + matvec_input + input_overlap + elementwise +
           encode + pipeline_fill;
  }
};

class TimingModel {
 public:
  explicit TimingModel(const AcceleratorConfig& config);

  /// Cycles to stream the weight columns of one position (shared across
  /// batch lanes): DRAM- or compute-bound, whichever is slower.
  num::Index cycles_per_position(const WorkloadShape& shape) const;

  /// Timestep cycles given how many state positions survived the
  /// batch-intersected skip check.
  TimestepCycles timestep(const WorkloadShape& shape,
                          num::Index kept_state_positions) const;

  /// Dense-state timestep (nothing skipped).
  TimestepCycles timestep_dense(const WorkloadShape& shape) const {
    return timestep(shape, shape.hidden);
  }

  /// Equivalent throughput in GOPS for a given per-timestep cycle count.
  double gops(const WorkloadShape& shape, num::Index cycles) const;

  const AcceleratorConfig& config() const { return config_; }

 private:
  AcceleratorConfig config_;
};

}  // namespace zss::accel
