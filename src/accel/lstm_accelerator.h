// Functional + timing model of the zero-state-skipping LSTM accelerator.
//
// Functional: the datapath computes with the hardware's number formats —
// int8 weights/activations, per-PE reduced-precision scratch partials
// (quant::FixedAccumulator, 12-bit by default), LUT sigmoid/tanh units,
// int8 cell/hidden states — so accuracy fidelity of the design can be
// measured against the float model it was trained as.
//
// Timing: each step builds the batch-intersected skip mask from the
// *stored* (pruned, quantized) previous state — exactly the information
// the encoder wrote to DRAM — and hands it to the Scheduler for cycles,
// traffic and utilization.
#pragma once

#include <vector>

#include "accel/config.h"
#include "accel/energy.h"
#include "accel/report.h"
#include "accel/scheduler.h"
#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "quant/fixed_accumulator.h"
#include "quant/lut_nonlinear.h"
#include "quant/quantize.h"

namespace zss::accel {

struct LstmAcceleratorOptions {
  /// Magnitude threshold under which stored state elements are zero (the
  /// trained pruner's effective T). 0 keeps the accelerator dense.
  float prune_threshold = 0.0f;
  /// Pre-activation clip range fed to the LUT units (codes span
  /// [-clip, clip]).
  float preact_clip = 8.0f;
  /// Cell-state quantization range (codes span [-clip, clip]).
  float cell_clip = 4.0f;
  /// Track a float reference model alongside the int8 datapath to report
  /// fidelity (costs one dense float step per step).
  bool track_reference = true;
  /// Use full int32 accumulation instead of the scratch-width model
  /// (ablation switch; the real design stores 12-bit partials).
  bool ideal_accumulators = false;
  /// How x_t reaches the accelerator (affects timing and op accounting;
  /// see InputMode).
  InputMode input_mode = InputMode::kDense;
};

class LstmAccelerator {
 public:
  LstmAccelerator(const AcceleratorConfig& config,
                  const LstmAcceleratorOptions& options,
                  const nn::LstmCell& cell);

  /// Resets h/c to zero for a batch of `batch` lanes (<= scratch_entries).
  void reset(num::Index batch);

  /// One timestep with zero-state skipping. `x` is (batch x d_x) float.
  void step(const num::Matrix& x);

  /// One timestep charged at dense cost (the "dense model" bars of
  /// Figs. 8-9). Functionally identical apart from pruning being off.
  void step_dense(const num::Matrix& x);

  /// Dequantized stored hidden state (what DRAM holds).
  num::Matrix hidden_state() const;
  num::Matrix cell_state() const;

  /// Float reference states (valid when track_reference is on).
  const num::Matrix& reference_hidden() const { return h_ref_; }

  /// Cosine similarity between the int8 datapath's h and the float
  /// reference, averaged over lanes; 1.0 = perfect.
  double fidelity_cosine() const;

  const RunTotals& totals() const { return totals_; }
  void reset_totals() { totals_ = RunTotals{}; }

  num::Index saturation_events() const { return saturation_events_; }

  WorkloadShape shape() const;

  const AcceleratorConfig& config() const { return config_; }

 private:
  enum class Mode { kSparse, kDense };
  void step_impl(const num::Matrix& x, Mode mode);

  AcceleratorConfig config_;
  LstmAcceleratorOptions options_;
  Scheduler scheduler_;
  const nn::LstmCell* cell_;

  // Quantized weights.
  num::MatrixI8 wh_q_;
  quant::QuantParams wh_p_;
  num::MatrixI8 wx_q_;
  quant::QuantParams wx_p_;
  std::vector<float> bias_;

  // LUT units (tiles 1-3: sigmoid, tile 4: tanh; plus the tanh on c).
  quant::NonlinearLut sigmoid_lut_;
  quant::NonlinearLut tanh_lut_;
  quant::NonlinearLut tanh_c_lut_;

  // Quantization scales for states and pre-activations.
  quant::QuantParams h_p_;    // 1/127: h in [-1, 1]
  quant::QuantParams c_p_;    // cell_clip/127
  quant::QuantParams pre_p_;  // preact_clip/127

  num::Index batch_ = 0;
  num::MatrixI8 h_q_;  // stored (pruned) hidden state, (B x dh)
  num::MatrixI8 c_q_;

  num::Matrix h_ref_;
  num::Matrix c_ref_;

  RunTotals totals_;
  num::Index saturation_events_ = 0;

  InputMode input_mode_ = InputMode::kDense;

  // Scratch buffer for one lane's 4*dh pre-activation codes.
  std::vector<std::int8_t> gate_codes_;
};

}  // namespace zss::accel
