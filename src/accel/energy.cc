#include "accel/energy.h"

namespace zss::accel {

EnergyModel::EnergyModel(const EnergyConfig& energy,
                         const AcceleratorConfig& accel)
    : energy_(energy), accel_(accel) {
  ZSS_EXPECTS(energy.constant_power_w > 0.0);
  ZSS_EXPECTS(energy.mac_pj >= 0.0 && energy.sram_access_pj >= 0.0);
  ZSS_EXPECTS(energy.leakage_w >= 0.0 && energy.dram_byte_pj >= 0.0);
  accel_.validate();
}

EnergyBreakdown EnergyModel::energy(const RunTotals& totals) const {
  EnergyBreakdown e;
  const double seconds = totals.seconds(accel_);
  if (energy_.mode == EnergyMode::kCalibratedConstant) {
    // All energy reported as a single constant-power draw; attribute it
    // to leakage_j so total_j() is still meaningful.
    e.leakage_j = energy_.constant_power_w * seconds;
    return e;
  }
  e.mac_j = static_cast<double>(totals.macs_issued + totals.onehot_adds) *
            energy_.mac_pj * 1e-12;
  e.sram_j = static_cast<double>(totals.sram_accesses) *
             energy_.sram_access_pj * 1e-12;
  e.onchip_j = totals.dram_bytes() * energy_.onchip_byte_pj * 1e-12;
  e.leakage_j = energy_.leakage_w * seconds;
  if (energy_.include_dram) {
    e.dram_j = totals.dram_bytes() * energy_.dram_byte_pj * 1e-12;
  }
  return e;
}

double EnergyModel::average_power_w(const RunTotals& totals) const {
  const double seconds = totals.seconds(accel_);
  if (seconds <= 0.0) return 0.0;
  return energy(totals).total_j() / seconds;
}

double EnergyModel::gops_per_watt(const RunTotals& totals) const {
  const double joules = energy(totals).total_j();
  if (joules <= 0.0) return 0.0;
  return totals.equivalent_ops / joules / 1e9;
}

}  // namespace zss::accel
