#include "accel/synthetic.h"

namespace zss::accel {

std::vector<bool> mask_from_intersected_sparsity(const WorkloadShape& shape,
                                                 double intersected_sparsity,
                                                 num::Rng& rng) {
  ZSS_EXPECTS(intersected_sparsity >= 0.0 && intersected_sparsity <= 1.0);
  std::vector<bool> mask(
      static_cast<std::size_t>(shape.hidden * shape.batch), false);
  for (num::Index j = 0; j < shape.hidden; ++j) {
    if (rng.bernoulli(intersected_sparsity)) continue;  // all lanes zero
    // Kept position: at least one lane non-zero; others non-zero with
    // probability 1/2 (the exact split does not affect timing).
    const num::Index guaranteed = rng.below(shape.batch);
    for (num::Index b = 0; b < shape.batch; ++b) {
      if (b == guaranteed || rng.bernoulli(0.5)) {
        mask[static_cast<std::size_t>(j * shape.batch + b)] = true;
      }
    }
  }
  return mask;
}

std::vector<bool> mask_from_element_sparsity(const WorkloadShape& shape,
                                             double element_sparsity,
                                             num::Rng& rng) {
  ZSS_EXPECTS(element_sparsity >= 0.0 && element_sparsity <= 1.0);
  std::vector<bool> mask(
      static_cast<std::size_t>(shape.hidden * shape.batch), false);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = !rng.bernoulli(element_sparsity);
  }
  return mask;
}

double intersected_sparsity(const WorkloadShape& shape,
                            const std::vector<bool>& lane_nonzero) {
  ZSS_EXPECTS(static_cast<num::Index>(lane_nonzero.size()) ==
              shape.hidden * shape.batch);
  num::Index zero_positions = 0;
  for (num::Index j = 0; j < shape.hidden; ++j) {
    bool any = false;
    for (num::Index b = 0; b < shape.batch; ++b) {
      any = any ||
            lane_nonzero[static_cast<std::size_t>(j * shape.batch + b)];
    }
    if (!any) ++zero_positions;
  }
  return static_cast<double>(zero_positions) /
         static_cast<double>(shape.hidden);
}

}  // namespace zss::accel
