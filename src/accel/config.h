// Accelerator configuration (paper §III-B/C).
//
// Defaults mirror the proposed design exactly: 4 tiles x 48 PEs at
// 200 MHz in 65 nm, LPDDR4 at 51.2 Gbps (= 32 bytes/cycle, provisioned
// as 24 8-bit weights + one 8-bit input element per cycle), one
// 16-entry x 12-bit scratch SRAM per PE, and an 8-bit zero-run counter
// in the output encoder. Every field is sweepable for the ablations.
#pragma once

#include "num/types.h"

namespace zss::accel {

struct AcceleratorConfig {
  num::Index tiles = 4;
  num::Index pes_per_tile = 48;
  double clock_hz = 200e6;
  double dram_gbps = 51.2;  // LPDDR4 (Micron datasheet figure used in §III-B)

  num::Index weight_bits = 8;
  num::Index act_bits = 8;

  /// Scratch SRAM per PE: entries = max batch held, width = partial bits.
  num::Index scratch_entries = 16;
  num::Index scratch_bits = 12;
  /// Right-shift applied to each 8x8 product before accumulation into the
  /// scratch word (see quant::FixedAccumulator).
  int accum_pre_shift = 6;

  /// Output encoder zero-run counter width.
  int offset_bits = 8;

  /// Fraction of DRAM bandwidth provisioned for the weight stream; the
  /// remainder carries input elements, offsets and write-back. The paper
  /// provisions 24 of 32 bytes/cycle for weights (= 0.75).
  double weight_channel_fraction = 0.75;

  // ---- Derived quantities ----

  num::Index total_pes() const { return tiles * pes_per_tile; }

  double bytes_per_cycle() const {
    return dram_gbps * 1e9 / 8.0 / clock_hz;
  }

  /// 8-bit weights deliverable per cycle (24 at the paper's settings).
  num::Index weights_per_cycle() const {
    const auto w = static_cast<num::Index>(bytes_per_cycle() *
                                           weight_channel_fraction);
    return w < 1 ? 1 : w;
  }

  /// Input-element bytes per cycle on the non-weight channel (1 at the
  /// paper's settings after control/offset overhead).
  num::Index input_bytes_per_cycle() const {
    const auto b = static_cast<num::Index>(bytes_per_cycle() *
                                           (1.0 - weight_channel_fraction)) /
                   8;
    return b < 1 ? 1 : b;
  }

  /// Peak throughput counting a MAC as two ops: 76.8 GOPS at defaults.
  double peak_gops() const {
    return static_cast<double>(total_pes()) * 2.0 * clock_hz / 1e9;
  }

  /// Aborts via contract checks if inconsistent.
  void validate() const;
};

}  // namespace zss::accel
