#include "accel/scheduler.h"

#include <algorithm>

namespace zss::accel {
namespace {

num::Index ceil_div(num::Index a, num::Index b) {
  ZSS_EXPECTS(b > 0);
  return (a + b - 1) / b;
}

}  // namespace

Scheduler::Scheduler(const AcceleratorConfig& config) : config_(config) {
  config_.validate();
}

num::Index Scheduler::cycles_per_position(num::Index rows,
                                          num::Index batch) const {
  ZSS_EXPECTS(rows > 0 && batch > 0);
  const num::Index dram = ceil_div(rows, config_.weights_per_cycle());
  const num::Index compute = ceil_div(rows * batch, config_.total_pes());
  return std::max(dram, compute);
}

MatvecStats Scheduler::matvec(num::Index rows,
                              const std::vector<bool>& lane_nonzero,
                              num::Index batch) const {
  ZSS_EXPECTS(rows > 0 && batch > 0);
  ZSS_EXPECTS(batch <= config_.scratch_entries);
  ZSS_EXPECTS(lane_nonzero.size() % static_cast<std::size_t>(batch) == 0);
  const auto positions =
      static_cast<num::Index>(lane_nonzero.size()) / batch;

  MatvecStats stats;
  stats.positions_total = positions;
  const num::Index per_pos = cycles_per_position(rows, batch);
  for (num::Index j = 0; j < positions; ++j) {
    num::Index nonzero_lanes = 0;
    for (num::Index b = 0; b < batch; ++b) {
      if (lane_nonzero[static_cast<std::size_t>(j * batch + b)]) {
        ++nonzero_lanes;
      }
    }
    if (nonzero_lanes == 0) continue;  // zero in every lane: skipped

    ++stats.positions_kept;
    stats.cycles += per_pos;
    stats.weights_streamed += rows;  // the column is fetched once
    // Weights are shared across the batch (Fig. 5(d)): every lane's MAC
    // is issued even if that lane's value is zero; only non-zero lanes
    // do useful work.
    stats.macs_issued += rows * batch;
    stats.macs_effectual += rows * nonzero_lanes;
  }
  return stats;
}

ScheduleStats Scheduler::run_timestep(
    const WorkloadShape& shape, const std::vector<bool>& lane_nonzero) const {
  ZSS_EXPECTS(static_cast<num::Index>(lane_nonzero.size()) ==
              shape.hidden * shape.batch);

  ScheduleStats stats;
  const num::Index column = 4 * shape.hidden;

  // ---- State matvec: Wh columns for kept positions ----
  const MatvecStats state = matvec(column, lane_nonzero, shape.batch);
  stats.cycles.matvec_state = state.cycles;
  stats.weights_streamed = state.weights_streamed;
  stats.macs_issued = state.macs_issued;
  stats.macs_effectual = state.macs_effectual;
  stats.positions_total = state.positions_total;
  stats.positions_kept = state.positions_kept;

  // ---- Input path ----
  if (shape.input_mode == InputMode::kDense) {
    const std::vector<bool> dense_mask(
        static_cast<std::size_t>(shape.input * shape.batch), true);
    const MatvecStats input = matvec(column, dense_mask, shape.batch);
    stats.cycles.matvec_input = input.cycles;
    stats.weights_streamed += input.weights_streamed;
    stats.macs_issued += input.macs_issued;
    stats.macs_effectual += input.macs_effectual;
  } else {
    // One-hot: each lane's Wx column (4 d_h bytes) rides the spare input
    // channel during the matvec; only the residual costs extra cycles.
    const num::Index bytes = column * shape.batch;
    const num::Index matvec_cycles =
        stats.cycles.matvec_state + stats.cycles.matvec_input;
    const num::Index needed =
        ceil_div(bytes, config_.input_bytes_per_cycle());
    stats.cycles.input_overlap =
        std::max<num::Index>(0, needed - matvec_cycles);
    stats.onehot_adds += bytes;  // one accumulator add per fetched byte
  }

  stats.mac_slots =
      (stats.cycles.matvec_state + stats.cycles.matvec_input +
       stats.cycles.input_overlap) *
      config_.total_pes();

  // ---- Element-wise phases of Eq. (2)-(3) and the output encoder ----
  const num::Index stage =
      ceil_div(shape.batch * shape.hidden, config_.pes_per_tile);
  stats.cycles.elementwise = 3 * stage;
  stats.cycles.encode = stage;
  stats.cycles.pipeline_fill = shape.batch - 1;
  return stats;
}

ScheduleStats Scheduler::run_timestep_dense(const WorkloadShape& shape) const {
  const std::vector<bool> all_nonzero(
      static_cast<std::size_t>(shape.hidden * shape.batch), true);
  return run_timestep(shape, all_nonzero);
}

}  // namespace zss::accel
