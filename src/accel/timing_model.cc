#include "accel/timing_model.h"

#include <algorithm>

namespace zss::accel {
namespace {

num::Index ceil_div(num::Index a, num::Index b) {
  ZSS_EXPECTS(b > 0);
  return (a + b - 1) / b;
}

}  // namespace

TimingModel::TimingModel(const AcceleratorConfig& config) : config_(config) {
  config_.validate();
}

num::Index TimingModel::cycles_per_position(const WorkloadShape& shape) const {
  const num::Index column = 4 * shape.hidden;  // weights per position
  const num::Index dram = ceil_div(column, config_.weights_per_cycle());
  const num::Index compute = ceil_div(column * shape.batch,
                                      config_.total_pes());
  return std::max(dram, compute);
}

TimestepCycles TimingModel::timestep(const WorkloadShape& shape,
                                     num::Index kept_state_positions) const {
  ZSS_EXPECTS(shape.hidden > 0 && shape.input > 0 && shape.batch > 0);
  ZSS_EXPECTS(shape.batch <= config_.scratch_entries);
  ZSS_EXPECTS(kept_state_positions >= 0 &&
              kept_state_positions <= shape.hidden);

  TimestepCycles c;
  const num::Index per_pos = cycles_per_position(shape);
  c.matvec_state = kept_state_positions * per_pos;

  if (shape.input_mode == InputMode::kDense) {
    c.matvec_input = shape.input * per_pos;
  } else {
    // One-hot: each lane adds one Wx column (4 d_h bytes) to its
    // accumulators. The bytes ride the input channel while the state
    // matvec streams; only the residual that does not fit shows up as
    // extra cycles.
    const num::Index bytes = 4 * shape.hidden * shape.batch;
    const num::Index channel_capacity =
        (c.matvec_state + c.matvec_input) * config_.input_bytes_per_cycle();
    c.input_overlap = std::max<num::Index>(
        0, ceil_div(bytes, config_.input_bytes_per_cycle()) -
               channel_capacity / config_.input_bytes_per_cycle());
  }

  // Eq. (2)-(3): three element-wise stages (tiles 1&2 in parallel, then
  // tile 4's add+tanh, then tile 3's output gate), then the encoder.
  const num::Index stage =
      ceil_div(shape.batch * shape.hidden, config_.pes_per_tile);
  c.elementwise = 3 * stage;
  c.encode = stage;
  c.pipeline_fill = shape.batch - 1;
  return c;
}

double TimingModel::gops(const WorkloadShape& shape,
                         num::Index cycles) const {
  ZSS_EXPECTS(cycles > 0);
  const double seconds = static_cast<double>(cycles) / config_.clock_hz;
  return shape.equivalent_ops() / seconds / 1e9;
}

}  // namespace zss::accel
