// Synthetic state-sparsity streams for timing benches.
//
// The cycle model only needs the batch-intersected zero pattern of the
// stored state, not the values. For paper-dimension runs (d_h = 1000
// etc.) the benches synthesize masks at the sweet-spot sparsities of
// Fig. 7; for trained models the masks come from real states instead.
#pragma once

#include <vector>

#include "accel/workload.h"
#include "num/rng.h"
#include "num/types.h"

namespace zss::accel {

/// Builds a lane_nonzero mask whose *batch-intersected* sparsity is
/// `intersected_sparsity` in expectation: each position is all-zero with
/// that probability; kept positions get 1..batch non-zero lanes.
std::vector<bool> mask_from_intersected_sparsity(const WorkloadShape& shape,
                                                 double intersected_sparsity,
                                                 num::Rng& rng);

/// Builds a mask where every lane element is independently zero with
/// probability `element_sparsity` (so the intersected sparsity decays as
/// element_sparsity^batch — the effect Fig. 7 quantifies).
std::vector<bool> mask_from_element_sparsity(const WorkloadShape& shape,
                                             double element_sparsity,
                                             num::Rng& rng);

/// Measured batch-intersected sparsity of a mask.
double intersected_sparsity(const WorkloadShape& shape,
                            const std::vector<bool>& lane_nonzero);

}  // namespace zss::accel
