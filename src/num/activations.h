// Scalar and vector activation functions plus numerically stable softmax.
#pragma once

#include <cmath>
#include <span>

#include "num/types.h"

namespace zss::num {

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

inline float dsigmoid_from_y(float y) { return y * (1.0f - y); }

inline float tanh_act(float x) { return std::tanh(x); }

inline float dtanh_from_y(float y) { return 1.0f - y * y; }

/// In-place stable softmax over `logits`.
void softmax(std::span<float> logits);

/// Writes log-softmax of `logits` into `out` (may alias `logits`).
void log_softmax(std::span<const float> logits, std::span<float> out);

/// Index of the maximum element. Requires a non-empty span.
Index argmax(std::span<const float> v);

}  // namespace zss::num
