// AVX2+FMA backend. This translation unit is compiled with
// -mavx2 -mfma (set per-file by CMakeLists.txt on x86); whether the
// kernels may run is decided at runtime via cpuid in avx2_available().
//
// Exactness (docs/exactness.md): every output element keeps one serial
// multiply-accumulate chain in ascending position order. SIMD lanes are
// only ever *independent output elements* — _mm256_fmadd_ps rounds each
// lane exactly like the scalar fmaf the reference kernels contract to,
// and there are no horizontal reductions anywhere in this file. Where
// the data layout is row-major on the wrong axis (gemv, gemm_a_bt), an
// 8x8 in-register transpose turns eight contiguous row chunks into
// eight lane-major k-vectors instead of reordering any chain.
//
// The scalar tail code uses std::fmaf directly: this TU is compiled
// with FMA enabled, so fmaf is a single instruction and identical to
// what num::madd does in every FMA-built TU. avx2_available() refuses
// to run if the base translation units were built without FMA
// contraction (madd_is_fused() == false) — mixing fused and unfused
// chains is exactly the asymmetry bug PR 1 fixed.
#include "num/kernels.h"
#include "num/simd/backend.h"
#include "num/simd/multi_schedule.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace zss::num::simd {

namespace {

bool avx2_available() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         madd_is_fused();
}

// In-register 8x8 transpose: r[q] holds row q's elements j..j+7 on
// entry; on exit r[p] holds element j+p of rows 0..7 (lane-major).
inline void transpose8(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  r[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  r[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  r[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  r[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  r[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  r[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  r[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

// y[j] += v * row[j] over [0, n): the shared inner loop of gemm and
// sparse_accum_rows. Each lane is one output column's chain step.
inline void accum_row_avx2(float v, const float* __restrict row,
                           float* __restrict y, Index n) {
  const __m256 vv = _mm256_set1_ps(v);
  Index j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 y0 = _mm256_loadu_ps(y + j);
    __m256 y1 = _mm256_loadu_ps(y + j + 8);
    y0 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j), y0);
    y1 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j + 8), y1);
    _mm256_storeu_ps(y + j, y0);
    _mm256_storeu_ps(y + j + 8, y1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 y0 = _mm256_loadu_ps(y + j);
    y0 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j), y0);
    _mm256_storeu_ps(y + j, y0);
  }
  for (; j < n; ++j) y[j] = std::fmaf(v, row[j], y[j]);
}

void gemm_rows_avx2(const float* __restrict a, const float* __restrict b,
                    float* __restrict c, Index m, Index k, Index n) {
  for (Index i = 0; i < m; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict crow = c + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // same skip semantics as scalar/reference
      accum_row_avx2(av, b + kk * n, crow, n);
    }
  }
}

void sparse_accum_rows_avx2(const float* __restrict packed,
                            const Index* __restrict positions,
                            std::size_t n_positions,
                            const float* __restrict values,
                            float* __restrict out, Index batch, Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const float* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;  // lane kept for another lane's sake
      accum_row_avx2(v, row, out + b * n, n);
    }
  }
}

// One pass over y[jt..je) chaining C kept rows (C is compile-time so the
// FMA sequence unrolls with every broadcast hoisted into a register).
// The chain per output element runs r0..r(C-1) in the order the caller
// filled them — ascending position order — after whatever y already
// holds (or after +0.0f in the Ow overwrite flavour, which skips the y
// load — see multi_schedule.h), so chaining C rows per pass only
// amortizes out-row traffic, it never reorders a chain. Plugged into
// the shared position-major merge schedule of num/simd/multi_schedule.h.
struct Avx2MultiChainPass {
  template <int C, bool Ow>
  __attribute__((always_inline)) static inline void pass(
      float* __restrict y, Index jt, Index je,
      const float* const* __restrict gr, const float* __restrict gv) {
    const float* __restrict r0 = gr[0];
    const float* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const float* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const float* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const float* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const float* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const float* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const float* __restrict r7 = C > 7 ? gr[7] : gr[0];
    const __m256 v0 = _mm256_set1_ps(gv[0]);
    const __m256 v1 = _mm256_set1_ps(C > 1 ? gv[1] : 0.0f);
    const __m256 v2 = _mm256_set1_ps(C > 2 ? gv[2] : 0.0f);
    const __m256 v3 = _mm256_set1_ps(C > 3 ? gv[3] : 0.0f);
    const __m256 v4 = _mm256_set1_ps(C > 4 ? gv[4] : 0.0f);
    const __m256 v5 = _mm256_set1_ps(C > 5 ? gv[5] : 0.0f);
    const __m256 v6 = _mm256_set1_ps(C > 6 ? gv[6] : 0.0f);
    const __m256 v7 = _mm256_set1_ps(C > 7 ? gv[7] : 0.0f);
    Index j = jt;
    for (; j + 8 <= je; j += 8) {
      __m256 a = Ow ? _mm256_setzero_ps() : _mm256_loadu_ps(y + j);
      a = _mm256_fmadd_ps(v0, _mm256_loadu_ps(r0 + j), a);
      if (C > 1) a = _mm256_fmadd_ps(v1, _mm256_loadu_ps(r1 + j), a);
      if (C > 2) a = _mm256_fmadd_ps(v2, _mm256_loadu_ps(r2 + j), a);
      if (C > 3) a = _mm256_fmadd_ps(v3, _mm256_loadu_ps(r3 + j), a);
      if (C > 4) a = _mm256_fmadd_ps(v4, _mm256_loadu_ps(r4 + j), a);
      if (C > 5) a = _mm256_fmadd_ps(v5, _mm256_loadu_ps(r5 + j), a);
      if (C > 6) a = _mm256_fmadd_ps(v6, _mm256_loadu_ps(r6 + j), a);
      if (C > 7) a = _mm256_fmadd_ps(v7, _mm256_loadu_ps(r7 + j), a);
      _mm256_storeu_ps(y + j, a);
    }
    for (; j < je; ++j) {
      float a = Ow ? 0.0f : y[j];
      a = std::fmaf(gv[0], r0[j], a);
      if (C > 1) a = std::fmaf(gv[1], r1[j], a);
      if (C > 2) a = std::fmaf(gv[2], r2[j], a);
      if (C > 3) a = std::fmaf(gv[3], r3[j], a);
      if (C > 4) a = std::fmaf(gv[4], r4[j], a);
      if (C > 5) a = std::fmaf(gv[5], r5[j], a);
      if (C > 6) a = std::fmaf(gv[6], r6[j], a);
      if (C > 7) a = std::fmaf(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_avx2(const float* __restrict packed,
                                  const Index* __restrict positions,
                                  const Index* __restrict row_start,
                                  const float* __restrict values,
                                  float* __restrict out, Index batch,
                                  Index n) {
  // Per-lane CSR accumulate through the shared position-major merge
  // schedule (num/simd/multi_schedule.h — rationale and the measured
  // alternatives live there and in docs/architecture.md); this backend
  // contributes only the AVX2 chain-pass primitive above.
  sparse_accum_rows_multi_schedule<Avx2MultiChainPass>(
      packed, positions, row_start, values, out, batch, n);
}

void sparse_accum_rows_multi_overwrite_avx2(
    const float* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const float* __restrict values,
    float* __restrict out, Index batch, Index n) {
  // Overwrite flavour: out = instead of out += (multi_schedule.h); the
  // caller skips its zero fill of out.
  sparse_accum_rows_multi_schedule<Avx2MultiChainPass, true>(
      packed, positions, row_start, values, out, batch, n);
}

void gemv_avx2(const float* __restrict w, const float* __restrict x,
               float* __restrict y, Index m, Index n) {
  Index i = 0;
  // Eight output rows per pass: transpose eight contiguous row chunks so
  // lane q accumulates y[i+q]'s own chain in ascending j.
  for (; i + 8 <= m; i += 8) {
    __m256 acc = _mm256_setzero_ps();
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 t[8];
      for (int q = 0; q < 8; ++q) {
        t[q] = _mm256_loadu_ps(w + (i + q) * n + j);
      }
      transpose8(t);
      for (int p = 0; p < 8; ++p) {
        acc = _mm256_fmadd_ps(t[p], _mm256_set1_ps(x[j + p]), acc);
      }
    }
    if (j < n) {
      float lanes[8];
      _mm256_storeu_ps(lanes, acc);
      for (int q = 0; q < 8; ++q) {
        const float* __restrict row = w + (i + q) * n;
        float s = lanes[q];
        for (Index jt = j; jt < n; ++jt) s = std::fmaf(row[jt], x[jt], s);
        y[i + q] = s;
      }
    } else {
      _mm256_storeu_ps(y + i, acc);
    }
  }
  for (; i < m; ++i) {
    const float* __restrict row = w + i * n;
    float s = 0.0f;
    for (Index j = 0; j < n; ++j) s = std::fmaf(row[j], x[j], s);
    y[i] = s;
  }
}

void gemm_a_bt_rows_avx2(const float* __restrict a, const float* __restrict b,
                         float* __restrict c, Index m, Index k, Index n) {
  const Index kv = k & ~Index{7};  // vectorized prefix of k
  if (m == 1) {
    // Single-row (gemv-like) fast path: with one row of A there is no
    // batch to amortize the C-parked tile over, and one 8-lane
    // accumulator is a single dependent FMA chain per k-chunk —
    // latency-bound (~4.5 GMAC/s, the ROADMAP small-batch item). Two
    // 8-column tiles per k-chunk double the independent chains, and
    // both accumulators live in registers across every chunk (no C
    // traffic at all until the final store). Chains are unchanged:
    // k-chunks ascend, lanes p ascend within a chunk, the scalar k-tail
    // appends last — each output element is still one serial
    // ascending-k chain.
    Index j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (Index kk = 0; kk < kv; kk += 8) {
        __m256 t[8], u[8];
        for (int q = 0; q < 8; ++q) {
          t[q] = _mm256_loadu_ps(b + (j0 + q) * k + kk);
        }
        for (int q = 0; q < 8; ++q) {
          u[q] = _mm256_loadu_ps(b + (j0 + 8 + q) * k + kk);
        }
        transpose8(t);
        transpose8(u);
        const float* __restrict ap = a + kk;
        for (int p = 0; p < 8; ++p) {
          const __m256 av = _mm256_broadcast_ss(ap + p);
          acc0 = _mm256_fmadd_ps(av, t[p], acc0);
          acc1 = _mm256_fmadd_ps(av, u[p], acc1);
        }
      }
      _mm256_storeu_ps(c + j0, acc0);
      _mm256_storeu_ps(c + j0 + 8, acc1);
      if (kv < k) {  // k tail: continue each element's chain in scalar
        for (int q = 0; q < 16; ++q) {
          const float* __restrict brow = b + (j0 + q) * k;
          float s = c[j0 + q];
          for (Index kt = kv; kt < k; ++kt) {
            s = std::fmaf(a[kt], brow[kt], s);
          }
          c[j0 + q] = s;
        }
      }
    }
    for (; j0 < n; ++j0) {  // column tail: plain ascending-k dot
      const float* __restrict brow = b + j0 * k;
      float s = 0.0f;
      for (Index kk = 0; kk < k; ++kk) s = std::fmaf(a[kk], brow[kk], s);
      c[j0] = s;
    }
    return;
  }
  // Tile 8 rows of B (8 output columns, one ymm lane each). Per 8-wide
  // k-chunk the B chunk is transposed once and reused by *every* row of
  // A, with the partial sums parked in the C tile between chunks: the C
  // tile is m x 8 floats (L1-resident), so the shuffle cost of the
  // transpose amortizes over the whole batch and the inner loop is pure
  // broadcast+FMA. Each output element's chain still runs strictly in
  // ascending k: k-chunks in order, lanes p = 0..7 in order within a
  // chunk, and the scalar k-tail appended last. (At m == 1 the fast
  // path above wins instead — measured 1.4x — because this loop's
  // single accumulator chain is latency-bound with no batch to hide
  // it.)
  Index j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    for (Index i = 0; i < m; ++i) {
      _mm256_storeu_ps(c + i * n + j0, _mm256_setzero_ps());
    }
    for (Index kk = 0; kk < kv; kk += 8) {
      __m256 t[8];
      for (int q = 0; q < 8; ++q) {
        t[q] = _mm256_loadu_ps(b + (j0 + q) * k + kk);
      }
      transpose8(t);
      for (Index i = 0; i < m; ++i) {
        const float* __restrict ap = a + i * k + kk;
        float* __restrict cp = c + i * n + j0;
        __m256 acc = _mm256_loadu_ps(cp);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 0), t[0], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 1), t[1], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 2), t[2], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 3), t[3], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 4), t[4], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 5), t[5], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 6), t[6], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 7), t[7], acc);
        _mm256_storeu_ps(cp, acc);
      }
    }
    if (kv < k) {  // k tail: continue each element's chain in scalar
      for (Index i = 0; i < m; ++i) {
        const float* __restrict arow = a + i * k;
        float* __restrict crow = c + i * n + j0;
        for (int q = 0; q < 8; ++q) {
          const float* __restrict brow = b + (j0 + q) * k;
          float s = crow[q];
          for (Index kt = kv; kt < k; ++kt) {
            s = std::fmaf(arow[kt], brow[kt], s);
          }
          crow[q] = s;
        }
      }
    }
  }
  for (; j0 < n; ++j0) {  // column tail: plain ascending-k dots
    const float* __restrict brow = b + j0 * k;
    for (Index i = 0; i < m; ++i) {
      const float* __restrict arow = a + i * k;
      float s = 0.0f;
      for (Index kk = 0; kk < k; ++kk) s = std::fmaf(arow[kk], brow[kk], s);
      c[i * n + j0] = s;
    }
  }
}

void axpy_avx2(float alpha, const float* __restrict x, float* __restrict y,
               std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

}  // namespace

const KernelBackend kAvx2Backend = {
    "avx2",
    "AVX2+FMA intrinsics; needs cpuid avx2+fma and an FMA-contracted base "
    "build (-march=native or -mfma)",
    avx2_available,
    gemm_rows_avx2,
    gemm_a_bt_rows_avx2,
    gemv_avx2,
    sparse_accum_rows_avx2,
    sparse_accum_rows_multi_avx2,
    sparse_accum_rows_multi_overwrite_avx2,
    axpy_avx2,
};

}  // namespace zss::num::simd

#else  // not an x86 AVX2+FMA build: keep the registry entry as a stub

namespace zss::num::simd {

namespace {
bool never_available() { return false; }
}  // namespace

const KernelBackend kAvx2Backend = {
    "avx2",
    "AVX2+FMA intrinsics; not compiled into this binary (x86 with "
    "-mavx2 -mfma required)",
    never_available,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
};

}  // namespace zss::num::simd

#endif
