// AVX2+FMA backend. This translation unit is compiled with
// -mavx2 -mfma (set per-file by CMakeLists.txt on x86); whether the
// kernels may run is decided at runtime via cpuid in avx2_available().
//
// Exactness (docs/exactness.md): every output element keeps one serial
// multiply-accumulate chain in ascending position order. SIMD lanes are
// only ever *independent output elements* — _mm256_fmadd_ps rounds each
// lane exactly like the scalar fmaf the reference kernels contract to,
// and there are no horizontal reductions anywhere in this file. Where
// the data layout is row-major on the wrong axis (gemv, gemm_a_bt), an
// 8x8 in-register transpose turns eight contiguous row chunks into
// eight lane-major k-vectors instead of reordering any chain.
//
// The scalar tail code uses std::fmaf directly: this TU is compiled
// with FMA enabled, so fmaf is a single instruction and identical to
// what num::madd does in every FMA-built TU. avx2_available() refuses
// to run if the base translation units were built without FMA
// contraction (madd_is_fused() == false) — mixing fused and unfused
// chains is exactly the asymmetry bug PR 1 fixed.
#include "num/kernels.h"
#include "num/simd/backend.h"
#include "num/simd/multi_schedule.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace zss::num::simd {

namespace {

bool avx2_available() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         madd_is_fused();
}

// In-register 8x8 transpose: r[q] holds row q's elements j..j+7 on
// entry; on exit r[p] holds element j+p of rows 0..7 (lane-major).
inline void transpose8(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  r[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  r[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  r[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  r[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  r[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  r[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  r[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

// y[j] += v * row[j] over [0, n): the shared inner loop of gemm and
// sparse_accum_rows. Each lane is one output column's chain step.
inline void accum_row_avx2(float v, const float* __restrict row,
                           float* __restrict y, Index n) {
  const __m256 vv = _mm256_set1_ps(v);
  Index j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 y0 = _mm256_loadu_ps(y + j);
    __m256 y1 = _mm256_loadu_ps(y + j + 8);
    y0 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j), y0);
    y1 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j + 8), y1);
    _mm256_storeu_ps(y + j, y0);
    _mm256_storeu_ps(y + j + 8, y1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 y0 = _mm256_loadu_ps(y + j);
    y0 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j), y0);
    _mm256_storeu_ps(y + j, y0);
  }
  for (; j < n; ++j) y[j] = std::fmaf(v, row[j], y[j]);
}

void gemm_rows_avx2(const float* __restrict a, const float* __restrict b,
                    float* __restrict c, Index m, Index k, Index n) {
  for (Index i = 0; i < m; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict crow = c + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // same skip semantics as scalar/reference
      accum_row_avx2(av, b + kk * n, crow, n);
    }
  }
}

void sparse_accum_rows_avx2(const float* __restrict packed,
                            const Index* __restrict positions,
                            std::size_t n_positions,
                            const float* __restrict values,
                            float* __restrict out, Index batch, Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const float* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;  // lane kept for another lane's sake
      accum_row_avx2(v, row, out + b * n, n);
    }
  }
}

// One pass over y[jt..je) chaining C kept rows (C is compile-time so the
// FMA sequence unrolls with every broadcast hoisted into a register).
// The chain per output element runs r0..r(C-1) in the order the caller
// filled them — ascending position order — after whatever y already
// holds (or after +0.0f in the Ow overwrite flavour, which skips the y
// load — see multi_schedule.h), so chaining C rows per pass only
// amortizes out-row traffic, it never reorders a chain. Plugged into
// the shared position-major merge schedule of num/simd/multi_schedule.h.
struct Avx2MultiChainPass {
  template <int C, bool Ow>
  __attribute__((always_inline)) static inline void pass(
      float* __restrict y, Index jt, Index je,
      const float* const* __restrict gr, const float* __restrict gv) {
    const float* __restrict r0 = gr[0];
    const float* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const float* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const float* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const float* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const float* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const float* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const float* __restrict r7 = C > 7 ? gr[7] : gr[0];
    const __m256 v0 = _mm256_set1_ps(gv[0]);
    const __m256 v1 = _mm256_set1_ps(C > 1 ? gv[1] : 0.0f);
    const __m256 v2 = _mm256_set1_ps(C > 2 ? gv[2] : 0.0f);
    const __m256 v3 = _mm256_set1_ps(C > 3 ? gv[3] : 0.0f);
    const __m256 v4 = _mm256_set1_ps(C > 4 ? gv[4] : 0.0f);
    const __m256 v5 = _mm256_set1_ps(C > 5 ? gv[5] : 0.0f);
    const __m256 v6 = _mm256_set1_ps(C > 6 ? gv[6] : 0.0f);
    const __m256 v7 = _mm256_set1_ps(C > 7 ? gv[7] : 0.0f);
    Index j = jt;
    for (; j + 8 <= je; j += 8) {
      __m256 a = Ow ? _mm256_setzero_ps() : _mm256_loadu_ps(y + j);
      a = _mm256_fmadd_ps(v0, _mm256_loadu_ps(r0 + j), a);
      if (C > 1) a = _mm256_fmadd_ps(v1, _mm256_loadu_ps(r1 + j), a);
      if (C > 2) a = _mm256_fmadd_ps(v2, _mm256_loadu_ps(r2 + j), a);
      if (C > 3) a = _mm256_fmadd_ps(v3, _mm256_loadu_ps(r3 + j), a);
      if (C > 4) a = _mm256_fmadd_ps(v4, _mm256_loadu_ps(r4 + j), a);
      if (C > 5) a = _mm256_fmadd_ps(v5, _mm256_loadu_ps(r5 + j), a);
      if (C > 6) a = _mm256_fmadd_ps(v6, _mm256_loadu_ps(r6 + j), a);
      if (C > 7) a = _mm256_fmadd_ps(v7, _mm256_loadu_ps(r7 + j), a);
      _mm256_storeu_ps(y + j, a);
    }
    for (; j < je; ++j) {
      float a = Ow ? 0.0f : y[j];
      a = std::fmaf(gv[0], r0[j], a);
      if (C > 1) a = std::fmaf(gv[1], r1[j], a);
      if (C > 2) a = std::fmaf(gv[2], r2[j], a);
      if (C > 3) a = std::fmaf(gv[3], r3[j], a);
      if (C > 4) a = std::fmaf(gv[4], r4[j], a);
      if (C > 5) a = std::fmaf(gv[5], r5[j], a);
      if (C > 6) a = std::fmaf(gv[6], r6[j], a);
      if (C > 7) a = std::fmaf(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_avx2(const float* __restrict packed,
                                  const Index* __restrict positions,
                                  const Index* __restrict row_start,
                                  const float* __restrict values,
                                  float* __restrict out, Index batch,
                                  Index n) {
  // Per-lane CSR accumulate through the shared position-major merge
  // schedule (num/simd/multi_schedule.h — rationale and the measured
  // alternatives live there and in docs/architecture.md); this backend
  // contributes only the AVX2 chain-pass primitive above.
  sparse_accum_rows_multi_schedule<Avx2MultiChainPass>(
      packed, positions, row_start, values, out, batch, n);
}

void sparse_accum_rows_multi_overwrite_avx2(
    const float* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const float* __restrict values,
    float* __restrict out, Index batch, Index n) {
  // Overwrite flavour: out = instead of out += (multi_schedule.h); the
  // caller skips its zero fill of out.
  sparse_accum_rows_multi_schedule<Avx2MultiChainPass, true>(
      packed, positions, row_start, values, out, batch, n);
}

void gemv_avx2(const float* __restrict w, const float* __restrict x,
               float* __restrict y, Index m, Index n) {
  Index i = 0;
  // Eight output rows per pass: transpose eight contiguous row chunks so
  // lane q accumulates y[i+q]'s own chain in ascending j.
  for (; i + 8 <= m; i += 8) {
    __m256 acc = _mm256_setzero_ps();
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 t[8];
      for (int q = 0; q < 8; ++q) {
        t[q] = _mm256_loadu_ps(w + (i + q) * n + j);
      }
      transpose8(t);
      for (int p = 0; p < 8; ++p) {
        acc = _mm256_fmadd_ps(t[p], _mm256_set1_ps(x[j + p]), acc);
      }
    }
    if (j < n) {
      float lanes[8];
      _mm256_storeu_ps(lanes, acc);
      for (int q = 0; q < 8; ++q) {
        const float* __restrict row = w + (i + q) * n;
        float s = lanes[q];
        for (Index jt = j; jt < n; ++jt) s = std::fmaf(row[jt], x[jt], s);
        y[i + q] = s;
      }
    } else {
      _mm256_storeu_ps(y + i, acc);
    }
  }
  for (; i < m; ++i) {
    const float* __restrict row = w + i * n;
    float s = 0.0f;
    for (Index j = 0; j < n; ++j) s = std::fmaf(row[j], x[j], s);
    y[i] = s;
  }
}

void gemm_a_bt_rows_avx2(const float* __restrict a, const float* __restrict b,
                         float* __restrict c, Index m, Index k, Index n) {
  const Index kv = k & ~Index{7};  // vectorized prefix of k
  if (m == 1) {
    // Single-row (gemv-like) fast path: with one row of A there is no
    // batch to amortize the C-parked tile over, and one 8-lane
    // accumulator is a single dependent FMA chain per k-chunk —
    // latency-bound (~4.5 GMAC/s, the ROADMAP small-batch item). Two
    // 8-column tiles per k-chunk double the independent chains, and
    // both accumulators live in registers across every chunk (no C
    // traffic at all until the final store). Chains are unchanged:
    // k-chunks ascend, lanes p ascend within a chunk, the scalar k-tail
    // appends last — each output element is still one serial
    // ascending-k chain.
    Index j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (Index kk = 0; kk < kv; kk += 8) {
        __m256 t[8], u[8];
        for (int q = 0; q < 8; ++q) {
          t[q] = _mm256_loadu_ps(b + (j0 + q) * k + kk);
        }
        for (int q = 0; q < 8; ++q) {
          u[q] = _mm256_loadu_ps(b + (j0 + 8 + q) * k + kk);
        }
        transpose8(t);
        transpose8(u);
        const float* __restrict ap = a + kk;
        for (int p = 0; p < 8; ++p) {
          const __m256 av = _mm256_broadcast_ss(ap + p);
          acc0 = _mm256_fmadd_ps(av, t[p], acc0);
          acc1 = _mm256_fmadd_ps(av, u[p], acc1);
        }
      }
      _mm256_storeu_ps(c + j0, acc0);
      _mm256_storeu_ps(c + j0 + 8, acc1);
      if (kv < k) {  // k tail: continue each element's chain in scalar
        for (int q = 0; q < 16; ++q) {
          const float* __restrict brow = b + (j0 + q) * k;
          float s = c[j0 + q];
          for (Index kt = kv; kt < k; ++kt) {
            s = std::fmaf(a[kt], brow[kt], s);
          }
          c[j0 + q] = s;
        }
      }
    }
    for (; j0 < n; ++j0) {  // column tail: plain ascending-k dot
      const float* __restrict brow = b + j0 * k;
      float s = 0.0f;
      for (Index kk = 0; kk < k; ++kk) s = std::fmaf(a[kk], brow[kk], s);
      c[j0] = s;
    }
    return;
  }
  // Tile 8 rows of B (8 output columns, one ymm lane each). Per 8-wide
  // k-chunk the B chunk is transposed once and reused by *every* row of
  // A, with the partial sums parked in the C tile between chunks: the C
  // tile is m x 8 floats (L1-resident), so the shuffle cost of the
  // transpose amortizes over the whole batch and the inner loop is pure
  // broadcast+FMA. Each output element's chain still runs strictly in
  // ascending k: k-chunks in order, lanes p = 0..7 in order within a
  // chunk, and the scalar k-tail appended last. (At m == 1 the fast
  // path above wins instead — measured 1.4x — because this loop's
  // single accumulator chain is latency-bound with no batch to hide
  // it.)
  Index j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    for (Index i = 0; i < m; ++i) {
      _mm256_storeu_ps(c + i * n + j0, _mm256_setzero_ps());
    }
    for (Index kk = 0; kk < kv; kk += 8) {
      __m256 t[8];
      for (int q = 0; q < 8; ++q) {
        t[q] = _mm256_loadu_ps(b + (j0 + q) * k + kk);
      }
      transpose8(t);
      for (Index i = 0; i < m; ++i) {
        const float* __restrict ap = a + i * k + kk;
        float* __restrict cp = c + i * n + j0;
        __m256 acc = _mm256_loadu_ps(cp);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 0), t[0], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 1), t[1], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 2), t[2], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 3), t[3], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 4), t[4], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 5), t[5], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 6), t[6], acc);
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + 7), t[7], acc);
        _mm256_storeu_ps(cp, acc);
      }
    }
    if (kv < k) {  // k tail: continue each element's chain in scalar
      for (Index i = 0; i < m; ++i) {
        const float* __restrict arow = a + i * k;
        float* __restrict crow = c + i * n + j0;
        for (int q = 0; q < 8; ++q) {
          const float* __restrict brow = b + (j0 + q) * k;
          float s = crow[q];
          for (Index kt = kv; kt < k; ++kt) {
            s = std::fmaf(arow[kt], brow[kt], s);
          }
          crow[q] = s;
        }
      }
    }
  }
  for (; j0 < n; ++j0) {  // column tail: plain ascending-k dots
    const float* __restrict brow = b + j0 * k;
    for (Index i = 0; i < m; ++i) {
      const float* __restrict arow = a + i * k;
      float s = 0.0f;
      for (Index kk = 0; kk < k; ++kk) s = std::fmaf(arow[kk], brow[kk], s);
      c[i * n + j0] = s;
    }
  }
}

void axpy_avx2(float alpha, const float* __restrict x, float* __restrict y,
               std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

// --- int8 kernels ----------------------------------------------------
// The int8 contract is wraparound-i32 exactness (num::madd_i8), and
// wrapping addition is associative — so unlike the fp32 kernels above,
// these are free to reduce horizontally and regroup. The widening
// pipeline is vpmovsxbw (i8 -> i16, exact) + vpmaddwd (s16 x s16 pair
// dot into full i32 — exact here: |a*b| <= 127^2 so a pair sum is at
// most 32258, far inside i32) + vpaddd (the wrap). Deliberately NOT
// vpmaddubsw: its u8 x s8 products pair-add with *16-bit saturation*,
// which silently clamps and would break bit-exactness against the
// reference twin; vpmaddwd at half the byte density is the fastest
// AVX2 sequence that stays exact (true VNNI vpdpbusd lives in the
// avx512 backend's future — ROADMAP).

inline __m256i widen_i8(const std::int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline std::int32_t dot_i8_avx2(const std::int8_t* __restrict a,
                                const std::int8_t* __restrict b, Index k) {
  __m256i acc = _mm256_setzero_si256();
  Index kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    acc = _mm256_add_epi32(acc,
                           _mm256_madd_epi16(widen_i8(a + kk), widen_i8(b + kk)));
  }
  std::int32_t s = hsum_epi32(acc);
  for (; kk < k; ++kk) s = madd_i8(a[kk], b[kk], s);
  return s;
}

void gemm_a_bt_i8_avx2(const std::int8_t* __restrict a,
                       const std::int8_t* __restrict b,
                       std::int32_t* __restrict c, Index m, Index k,
                       Index n) {
  // Tile 2 rows of A x 4 rows of B: eight vpmaddwd accumulators in
  // flight, every widened A chunk reused four times and every widened B
  // chunk twice — 128 MACs per 22 vector ops, which is what buys the
  // >= 2x-over-fp32 dense throughput the bench records.
  const Index kv = k & ~Index{15};
  Index i = 0;
  for (; i + 2 <= m; i += 2) {
    const std::int8_t* __restrict a0 = a + i * k;
    const std::int8_t* __restrict a1 = a0 + k;
    std::int32_t* __restrict c0 = c + i * n;
    std::int32_t* __restrict c1 = c0 + n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* __restrict b0 = b + j * k;
      const std::int8_t* __restrict b1 = b0 + k;
      const std::int8_t* __restrict b2 = b1 + k;
      const std::int8_t* __restrict b3 = b2 + k;
      __m256i s00 = _mm256_setzero_si256();
      __m256i s01 = _mm256_setzero_si256();
      __m256i s02 = _mm256_setzero_si256();
      __m256i s03 = _mm256_setzero_si256();
      __m256i s10 = _mm256_setzero_si256();
      __m256i s11 = _mm256_setzero_si256();
      __m256i s12 = _mm256_setzero_si256();
      __m256i s13 = _mm256_setzero_si256();
      for (Index kk = 0; kk < kv; kk += 16) {
        const __m256i av0 = widen_i8(a0 + kk);
        const __m256i av1 = widen_i8(a1 + kk);
        const __m256i bv0 = widen_i8(b0 + kk);
        const __m256i bv1 = widen_i8(b1 + kk);
        const __m256i bv2 = widen_i8(b2 + kk);
        const __m256i bv3 = widen_i8(b3 + kk);
        s00 = _mm256_add_epi32(s00, _mm256_madd_epi16(av0, bv0));
        s01 = _mm256_add_epi32(s01, _mm256_madd_epi16(av0, bv1));
        s02 = _mm256_add_epi32(s02, _mm256_madd_epi16(av0, bv2));
        s03 = _mm256_add_epi32(s03, _mm256_madd_epi16(av0, bv3));
        s10 = _mm256_add_epi32(s10, _mm256_madd_epi16(av1, bv0));
        s11 = _mm256_add_epi32(s11, _mm256_madd_epi16(av1, bv1));
        s12 = _mm256_add_epi32(s12, _mm256_madd_epi16(av1, bv2));
        s13 = _mm256_add_epi32(s13, _mm256_madd_epi16(av1, bv3));
      }
      std::int32_t r00 = hsum_epi32(s00);
      std::int32_t r01 = hsum_epi32(s01);
      std::int32_t r02 = hsum_epi32(s02);
      std::int32_t r03 = hsum_epi32(s03);
      std::int32_t r10 = hsum_epi32(s10);
      std::int32_t r11 = hsum_epi32(s11);
      std::int32_t r12 = hsum_epi32(s12);
      std::int32_t r13 = hsum_epi32(s13);
      for (Index kt = kv; kt < k; ++kt) {
        r00 = madd_i8(a0[kt], b0[kt], r00);
        r01 = madd_i8(a0[kt], b1[kt], r01);
        r02 = madd_i8(a0[kt], b2[kt], r02);
        r03 = madd_i8(a0[kt], b3[kt], r03);
        r10 = madd_i8(a1[kt], b0[kt], r10);
        r11 = madd_i8(a1[kt], b1[kt], r11);
        r12 = madd_i8(a1[kt], b2[kt], r12);
        r13 = madd_i8(a1[kt], b3[kt], r13);
      }
      c0[j] = r00;
      c0[j + 1] = r01;
      c0[j + 2] = r02;
      c0[j + 3] = r03;
      c1[j] = r10;
      c1[j + 1] = r11;
      c1[j + 2] = r12;
      c1[j + 3] = r13;
    }
    for (; j < n; ++j) {
      const std::int8_t* __restrict brow = b + j * k;
      c0[j] = dot_i8_avx2(a0, brow, k);
      c1[j] = dot_i8_avx2(a1, brow, k);
    }
  }
  for (; i < m; ++i) {
    const std::int8_t* __restrict arow = a + i * k;
    std::int32_t* __restrict crow = c + i * n;
    for (Index j = 0; j < n; ++j) crow[j] = dot_i8_avx2(arow, b + j * k, k);
  }
}

// y[j] += v * row[j] over 16 i32 outputs per step: widen the row chunk,
// vpmullw against the broadcast value (exact — |v * r| <= 127^2 fits
// i16), sign-extend both halves to i32, vpaddd.
inline void accum_row_i8_avx2(std::int8_t v, const std::int8_t* __restrict row,
                              std::int32_t* __restrict y, Index n) {
  const __m256i vv = _mm256_set1_epi16(static_cast<short>(v));
  Index j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i p16 = _mm256_mullo_epi16(widen_i8(row + j), vv);
    const __m256i p0 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p16));
    const __m256i p1 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p16, 1));
    __m256i* yp = reinterpret_cast<__m256i*>(y + j);
    _mm256_storeu_si256(yp, _mm256_add_epi32(_mm256_loadu_si256(yp), p0));
    __m256i* yp1 = reinterpret_cast<__m256i*>(y + j + 8);
    _mm256_storeu_si256(yp1, _mm256_add_epi32(_mm256_loadu_si256(yp1), p1));
  }
  for (; j < n; ++j) y[j] = madd_i8(v, row[j], y[j]);
}

void sparse_accum_rows_i8_avx2(const std::int8_t* __restrict packed,
                               const Index* __restrict positions,
                               std::size_t n_positions,
                               const std::int8_t* __restrict values,
                               std::int32_t* __restrict out, Index batch,
                               Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const std::int8_t* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const std::int8_t v = values[e * static_cast<std::size_t>(batch) +
                                   static_cast<std::size_t>(b)];
      if (v == 0) continue;  // exact identity in integers too
      accum_row_i8_avx2(v, row, out + b * n, n);
    }
  }
}

// One chained contribution of entry (r, v16) to 16 i32 outputs at j.
inline void chain_step_i8(__m256i& a0, __m256i& a1,
                          const std::int8_t* __restrict r, Index j,
                          __m256i v16) {
  const __m256i p16 = _mm256_mullo_epi16(widen_i8(r + j), v16);
  a0 = _mm256_add_epi32(a0,
                        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p16)));
  a1 = _mm256_add_epi32(
      a1, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p16, 1)));
}

// Int8 chain pass for the shared merge schedule (multi_schedule.h): 16
// outputs per step, up to kMultiGroup entries chained per out-row pass.
struct Avx2MultiChainPassI8 {
  template <int C, bool Ow>
  __attribute__((always_inline)) static inline void pass(
      std::int32_t* __restrict y, Index jt, Index je,
      const std::int8_t* const* __restrict gr,
      const std::int8_t* __restrict gv) {
    const std::int8_t* __restrict r0 = gr[0];
    const std::int8_t* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const std::int8_t* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const std::int8_t* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const std::int8_t* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const std::int8_t* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const std::int8_t* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const std::int8_t* __restrict r7 = C > 7 ? gr[7] : gr[0];
    const __m256i v0 = _mm256_set1_epi16(static_cast<short>(gv[0]));
    const __m256i v1 =
        _mm256_set1_epi16(static_cast<short>(C > 1 ? gv[1] : std::int8_t{0}));
    const __m256i v2 =
        _mm256_set1_epi16(static_cast<short>(C > 2 ? gv[2] : std::int8_t{0}));
    const __m256i v3 =
        _mm256_set1_epi16(static_cast<short>(C > 3 ? gv[3] : std::int8_t{0}));
    const __m256i v4 =
        _mm256_set1_epi16(static_cast<short>(C > 4 ? gv[4] : std::int8_t{0}));
    const __m256i v5 =
        _mm256_set1_epi16(static_cast<short>(C > 5 ? gv[5] : std::int8_t{0}));
    const __m256i v6 =
        _mm256_set1_epi16(static_cast<short>(C > 6 ? gv[6] : std::int8_t{0}));
    const __m256i v7 =
        _mm256_set1_epi16(static_cast<short>(C > 7 ? gv[7] : std::int8_t{0}));
    Index j = jt;
    for (; j + 16 <= je; j += 16) {
      __m256i a0 = Ow ? _mm256_setzero_si256()
                      : _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(y + j));
      __m256i a1 = Ow ? _mm256_setzero_si256()
                      : _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(y + j + 8));
      chain_step_i8(a0, a1, r0, j, v0);
      if (C > 1) chain_step_i8(a0, a1, r1, j, v1);
      if (C > 2) chain_step_i8(a0, a1, r2, j, v2);
      if (C > 3) chain_step_i8(a0, a1, r3, j, v3);
      if (C > 4) chain_step_i8(a0, a1, r4, j, v4);
      if (C > 5) chain_step_i8(a0, a1, r5, j, v5);
      if (C > 6) chain_step_i8(a0, a1, r6, j, v6);
      if (C > 7) chain_step_i8(a0, a1, r7, j, v7);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), a0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j + 8), a1);
    }
    for (; j < je; ++j) {
      std::int32_t a = Ow ? 0 : y[j];
      a = madd_i8(gv[0], r0[j], a);
      if (C > 1) a = madd_i8(gv[1], r1[j], a);
      if (C > 2) a = madd_i8(gv[2], r2[j], a);
      if (C > 3) a = madd_i8(gv[3], r3[j], a);
      if (C > 4) a = madd_i8(gv[4], r4[j], a);
      if (C > 5) a = madd_i8(gv[5], r5[j], a);
      if (C > 6) a = madd_i8(gv[6], r6[j], a);
      if (C > 7) a = madd_i8(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_i8_avx2(const std::int8_t* __restrict packed,
                                     const Index* __restrict positions,
                                     const Index* __restrict row_start,
                                     const std::int8_t* __restrict values,
                                     std::int32_t* __restrict out, Index batch,
                                     Index n) {
  sparse_accum_rows_multi_schedule<Avx2MultiChainPassI8, false, std::int8_t,
                                   std::int32_t>(packed, positions, row_start,
                                                 values, out, batch, n);
}

}  // namespace

const KernelBackend kAvx2Backend = {
    "avx2",
    "AVX2+FMA intrinsics; needs cpuid avx2+fma and an FMA-contracted base "
    "build (-march=native or -mfma)",
    avx2_available,
    gemm_rows_avx2,
    gemm_a_bt_rows_avx2,
    gemv_avx2,
    sparse_accum_rows_avx2,
    sparse_accum_rows_multi_avx2,
    sparse_accum_rows_multi_overwrite_avx2,
    axpy_avx2,
    gemm_a_bt_i8_avx2,
    sparse_accum_rows_i8_avx2,
    sparse_accum_rows_multi_i8_avx2,
};

}  // namespace zss::num::simd

#else  // not an x86 AVX2+FMA build: keep the registry entry as a stub

namespace zss::num::simd {

namespace {
bool never_available() { return false; }
}  // namespace

const KernelBackend kAvx2Backend = {
    "avx2",
    "AVX2+FMA intrinsics; not compiled into this binary (x86 with "
    "-mavx2 -mfma required)",
    never_available,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    // int8 slots, stubbed with the rest of the table
    nullptr,
    nullptr,
    nullptr,
};

}  // namespace zss::num::simd

#endif
