// Backend registry and runtime selection. See backend.h for the
// contract and docs/architecture.md for the design.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "num/simd/backend.h"

namespace zss::num::simd {

namespace {

// Priority order: widest ISA first, scalar as the guaranteed fallback.
const KernelBackend* const kRegistry[] = {
    &kAvx512Backend,
    &kAvx2Backend,
    &kNeonBackend,
    &kScalarBackend,
};

std::atomic<const KernelBackend*> g_active{nullptr};

std::string known_names() {
  std::string out;
  for (const KernelBackend* b : kRegistry) {
    if (!out.empty()) out += "|";
    out += b->name;
  }
  return out;
}

}  // namespace

std::span<const KernelBackend* const> registered_backends() {
  return kRegistry;
}

std::vector<const KernelBackend*> available_backends() {
  std::vector<const KernelBackend*> out;
  for (const KernelBackend* b : kRegistry) {
    if (b->usable()) out.push_back(b);
  }
  return out;
}

const KernelBackend& resolve_backend(const char* requested,
                                     std::string* warning) {
  if (requested != nullptr && requested[0] != '\0') {
    for (const KernelBackend* b : kRegistry) {
      if (std::strcmp(b->name, requested) != 0) continue;
      if (b->usable()) return *b;
      if (warning != nullptr) {
        *warning = std::string("kernel backend '") + requested +
                   (b->implemented()
                        ? "' is not available on this CPU/build ("
                        : "' is not implemented (") +
                   b->description + "); falling back to scalar";
      }
      return kScalarBackend;
    }
    if (warning != nullptr) {
      *warning = std::string("unknown kernel backend '") + requested +
                 "' (known: " + known_names() + "); falling back to scalar";
    }
    return kScalarBackend;
  }
  for (const KernelBackend* b : kRegistry) {
    if (b->usable()) return *b;
  }
  return kScalarBackend;  // unreachable: scalar is always usable
}

const KernelBackend& active_backend() {
  const KernelBackend* cached = g_active.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  std::string warning;
  const KernelBackend& chosen =
      resolve_backend(std::getenv("ZSS_KERNEL_BACKEND"), &warning);
  if (!warning.empty()) std::fprintf(stderr, "zss: %s\n", warning.c_str());
  g_active.store(&chosen, std::memory_order_release);
  return chosen;
}

void set_backend_for_testing(const KernelBackend* backend) {
  g_active.store(backend, std::memory_order_release);
}

}  // namespace zss::num::simd
