// Shared schedule of the per-lane batched sparse accumulation
// (sparse_accum_rows_multi), parameterized over a backend's chain-pass
// primitive so the scalar control flow exists exactly once.
//
// The schedule is position-major: the per-lane CSR lists of a block of
// lanes are merge-iterated in ascending position order, up to
// kMultiGroup union positions at a time, and each lane chains its own
// non-zero members of the group into one j-tiled pass over its out
// row. Two effects make this the fastest schedule at serving shapes
// (measured against lane-major streaming and out-register tiling —
// docs/architecture.md): the group's packed rows are streamed once,
// contiguously, and stay L1-hot for every lane that kept them, and one
// out-row load/store carries up to kMultiGroup chained FMAs instead of
// one. Exactness (docs/exactness.md): each output element (b, j) still
// accumulates as one serial chain in ascending position order — groups
// ascend, entries within a group ascend, and lanes never share an
// accumulator — and work stays proportional to the per-lane kept
// counts (a lane contributes FMAs only for its own entries).
//
// `ChainPass` supplies the arithmetic:
//   struct MyChainPass {
//     template <int C>
//     static void pass(float* y, Index jt, Index je,
//                      const float* const* rows, const float* vals);
//   };
// pass<C> must accumulate y[j] += vals[0]*rows[0][j] + ... (C entries,
// in index order, one serial chain per element) over [jt, je).
#pragma once

#include "num/types.h"

namespace zss::num::simd {

// How many lanes one merge pass covers (bounds the schedule's stack
// scratch; backends may not heap-allocate), how many ascending union
// positions are chained into one pass over a lane's out row, and the
// j-tile that keeps a group's working set (up to kMultiGroup row
// chunks plus the out chunk, ~9 KB) L1-resident across every lane of
// the block.
inline constexpr Index kMultiLaneBlock = 32;
inline constexpr Index kMultiGroup = 8;
inline constexpr Index kMultiJTile = 256;

template <typename ChainPass>
inline void sparse_accum_rows_multi_schedule(
    const float* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const float* __restrict values,
    float* __restrict out, Index batch, Index n) {
  for (Index b0 = 0; b0 < batch; b0 += kMultiLaneBlock) {
    const Index nb = batch - b0 < kMultiLaneBlock ? batch - b0
                                                  : kMultiLaneBlock;
    Index cur[kMultiLaneBlock];
    for (Index q = 0; q < nb; ++q) cur[q] = row_start[b0 + q];
    for (;;) {
      const float* grow[kMultiLaneBlock][kMultiGroup];
      float gval[kMultiLaneBlock][kMultiGroup];
      int gcnt[kMultiLaneBlock] = {};
      Index ng = 0;
      while (ng < kMultiGroup) {
        Index mn = -1;
        for (Index q = 0; q < nb; ++q) {
          if (cur[q] >= row_start[b0 + q + 1]) continue;
          const Index p = positions[cur[q]];
          if (mn < 0 || p < mn) mn = p;
        }
        if (mn < 0) break;
        const float* __restrict row = packed + mn * n;
        for (Index q = 0; q < nb; ++q) {
          if (cur[q] < row_start[b0 + q + 1] && positions[cur[q]] == mn) {
            grow[q][gcnt[q]] = row;
            gval[q][gcnt[q]] = values[cur[q]];
            ++gcnt[q];
            ++cur[q];
          }
        }
        ++ng;
      }
      if (ng == 0) break;
      for (Index jt = 0; jt < n; jt += kMultiJTile) {
        const Index je = jt + kMultiJTile < n ? jt + kMultiJTile : n;
        for (Index q = 0; q < nb; ++q) {
          float* __restrict y = out + (b0 + q) * n;
          switch (gcnt[q]) {
            case 0:
              break;
            case 1:
              ChainPass::template pass<1>(y, jt, je, grow[q], gval[q]);
              break;
            case 2:
              ChainPass::template pass<2>(y, jt, je, grow[q], gval[q]);
              break;
            case 3:
              ChainPass::template pass<3>(y, jt, je, grow[q], gval[q]);
              break;
            case 4:
              ChainPass::template pass<4>(y, jt, je, grow[q], gval[q]);
              break;
            case 5:
              ChainPass::template pass<5>(y, jt, je, grow[q], gval[q]);
              break;
            case 6:
              ChainPass::template pass<6>(y, jt, je, grow[q], gval[q]);
              break;
            case 7:
              ChainPass::template pass<7>(y, jt, je, grow[q], gval[q]);
              break;
            default:
              ChainPass::template pass<8>(y, jt, je, grow[q], gval[q]);
              break;
          }
        }
      }
    }
  }
}

}  // namespace zss::num::simd
