// Shared schedule of the per-lane batched sparse accumulation
// (sparse_accum_rows_multi), parameterized over a backend's chain-pass
// primitive so the scalar control flow exists exactly once.
//
// The schedule is position-major: the per-lane CSR lists of a block of
// lanes are merge-iterated in ascending position order, up to
// kMultiGroup union positions at a time, and each lane chains its own
// non-zero members of the group into one j-tiled pass over its out
// row. Two effects make this the fastest schedule at serving shapes
// (measured against lane-major streaming and out-register tiling —
// docs/architecture.md): the group's packed rows are streamed once,
// contiguously, and stay L1-hot for every lane that kept them, and one
// out-row load/store carries up to kMultiGroup chained FMAs instead of
// one. Exactness (docs/exactness.md): each output element (b, j) still
// accumulates as one serial chain in ascending position order — groups
// ascend, entries within a group ascend, and lanes never share an
// accumulator — and work stays proportional to the per-lane kept
// counts (a lane contributes FMAs only for its own entries).
//
// `ChainPass` supplies the arithmetic:
//   struct MyChainPass {
//     template <int C, bool Ow>
//     static void pass(float* y, Index jt, Index je,
//                      const float* const* rows, const float* vals);
//   };
// pass<C, false> must accumulate y[j] += vals[0]*rows[0][j] + ... (C
// entries, in index order, one serial chain per element) over [jt, je).
// pass<C, true> is the overwrite flavour: the chain starts from +0.0f
// instead of y[j] — bit-identical to zero-filling y first, because the
// accumulate flavour's first madd over a zero-filled y is exactly
// madd(vals[0], rows[0][j], +0.0f).
//
// The Overwrite = true schedule computes out = (instead of out +=) so
// the caller can skip the per-step zero fill of the staging matrix
// (256 KB per step at batch 8, dh 1000 — the engine's kPreH): per lane,
// the first merge round that touches the lane runs the overwrite
// flavour across all j-tiles, later rounds accumulate, and lanes no
// round touches (no kept entries) are zero-filled at the end so every
// output element is always written.
#pragma once

#include "num/types.h"

namespace zss::num::simd {

// How many lanes one merge pass covers (bounds the schedule's stack
// scratch; backends may not heap-allocate), how many ascending union
// positions are chained into one pass over a lane's out row, and the
// j-tile that keeps a group's working set (up to kMultiGroup row
// chunks plus the out chunk, ~9 KB) L1-resident across every lane of
// the block.
inline constexpr Index kMultiLaneBlock = 32;
inline constexpr Index kMultiGroup = 8;
inline constexpr Index kMultiJTile = 256;

// The schedule is generic over the value type VT and the accumulator
// type AT so the int8/i32 kernels (VT = int8_t, AT = int32_t) reuse the
// exact same merge control flow as fp32 (VT = AT = float). For integer
// instantiations the "chain" wording above is a stricter guarantee than
// the contract needs — i32 wraparound addition is associative, so any
// grouping would be bit-identical — but sharing the schedule keeps the
// work-proportionality and cache behaviour identical across types.
template <typename ChainPass, bool Ow, typename VT = float,
          typename AT = float>
inline void multi_dispatch_pass(int c, AT* __restrict y, Index jt,
                                Index je, const VT* const* __restrict gr,
                                const VT* __restrict gv) {
  switch (c) {
    case 1:
      ChainPass::template pass<1, Ow>(y, jt, je, gr, gv);
      break;
    case 2:
      ChainPass::template pass<2, Ow>(y, jt, je, gr, gv);
      break;
    case 3:
      ChainPass::template pass<3, Ow>(y, jt, je, gr, gv);
      break;
    case 4:
      ChainPass::template pass<4, Ow>(y, jt, je, gr, gv);
      break;
    case 5:
      ChainPass::template pass<5, Ow>(y, jt, je, gr, gv);
      break;
    case 6:
      ChainPass::template pass<6, Ow>(y, jt, je, gr, gv);
      break;
    case 7:
      ChainPass::template pass<7, Ow>(y, jt, je, gr, gv);
      break;
    default:
      ChainPass::template pass<8, Ow>(y, jt, je, gr, gv);
      break;
  }
}

template <typename ChainPass, bool Overwrite = false, typename VT = float,
          typename AT = float>
inline void sparse_accum_rows_multi_schedule(
    const VT* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const VT* __restrict values,
    AT* __restrict out, Index batch, Index n) {
  for (Index b0 = 0; b0 < batch; b0 += kMultiLaneBlock) {
    const Index nb = batch - b0 < kMultiLaneBlock ? batch - b0
                                                  : kMultiLaneBlock;
    Index cur[kMultiLaneBlock];
    for (Index q = 0; q < nb; ++q) cur[q] = row_start[b0 + q];
    // Overwrite mode: a lane is "virgin" until its first contributing
    // merge round, whose passes start each chain from +0.0f instead of
    // loading y. Cleared only after the round's full j loop so every
    // tile of that round overwrites.
    bool virgin[kMultiLaneBlock];
    for (Index q = 0; q < nb; ++q) virgin[q] = true;
    for (;;) {
      const VT* grow[kMultiLaneBlock][kMultiGroup];
      VT gval[kMultiLaneBlock][kMultiGroup];
      int gcnt[kMultiLaneBlock] = {};
      Index ng = 0;
      while (ng < kMultiGroup) {
        Index mn = -1;
        for (Index q = 0; q < nb; ++q) {
          if (cur[q] >= row_start[b0 + q + 1]) continue;
          const Index p = positions[cur[q]];
          if (mn < 0 || p < mn) mn = p;
        }
        if (mn < 0) break;
        const VT* __restrict row = packed + mn * n;
        for (Index q = 0; q < nb; ++q) {
          if (cur[q] < row_start[b0 + q + 1] && positions[cur[q]] == mn) {
            grow[q][gcnt[q]] = row;
            gval[q][gcnt[q]] = values[cur[q]];
            ++gcnt[q];
            ++cur[q];
          }
        }
        ++ng;
      }
      if (ng == 0) break;
      for (Index jt = 0; jt < n; jt += kMultiJTile) {
        const Index je = jt + kMultiJTile < n ? jt + kMultiJTile : n;
        for (Index q = 0; q < nb; ++q) {
          if (gcnt[q] == 0) continue;
          AT* __restrict y = out + (b0 + q) * n;
          if constexpr (Overwrite) {
            if (virgin[q]) {
              multi_dispatch_pass<ChainPass, true>(gcnt[q], y, jt, je,
                                                   grow[q], gval[q]);
              continue;
            }
          }
          multi_dispatch_pass<ChainPass, false>(gcnt[q], y, jt, je, grow[q],
                                                gval[q]);
        }
      }
      if constexpr (Overwrite) {
        for (Index q = 0; q < nb; ++q) {
          if (gcnt[q] > 0) virgin[q] = false;
        }
      }
    }
    if constexpr (Overwrite) {
      // Lanes with no kept entries at all were never written; they owe
      // the caller the zero fill it skipped.
      for (Index q = 0; q < nb; ++q) {
        if (!virgin[q]) continue;
        AT* __restrict y = out + (b0 + q) * n;
        for (Index j = 0; j < n; ++j) y[j] = AT{};
      }
    }
  }
}

}  // namespace zss::num::simd
