// Portable fallback backend: the register-blocked loops of PR 1, which
// lean on autovectorization rather than explicit intrinsics. Blocking
// only interleaves independent accumulator chains — the additions that
// feed one output element always run in ascending position order
// through num::madd, which is the whole exactness contract
// (docs/exactness.md).
#include "num/kernels.h"
#include "num/simd/backend.h"
#include "num/simd/multi_schedule.h"

namespace zss::num::simd {

namespace {

void gemm_rows_scalar(const float* __restrict a, const float* __restrict b,
                      float* __restrict c, Index m, Index k, Index n) {
  // i-k-j loop order: the inner loop streams both B's row and C's row,
  // which vectorizes well and is cache-friendly for row-major storage.
  for (Index i = 0; i < m; ++i) {
    float* __restrict crow = c + i * n;
    const float* __restrict arow = a + i * k;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* __restrict brow = b + kk * n;
      for (Index j = 0; j < n; ++j) crow[j] = madd(av, brow[j], crow[j]);
    }
  }
}

// One row of A against a block-of-4 rows of B: four independent
// accumulator chains, each still summing in ascending k.
inline void abt_row_block4(const float* __restrict arow,
                           const float* __restrict b0,
                           const float* __restrict b1,
                           const float* __restrict b2,
                           const float* __restrict b3, Index k,
                           float* __restrict out) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  for (Index kk = 0; kk < k; ++kk) {
    const float av = arow[kk];
    s0 = madd(av, b0[kk], s0);
    s1 = madd(av, b1[kk], s1);
    s2 = madd(av, b2[kk], s2);
    s3 = madd(av, b3[kk], s3);
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

inline float abt_dot(const float* __restrict arow, const float* __restrict brow,
                     Index k) {
  float acc = 0.0f;
  for (Index kk = 0; kk < k; ++kk) acc = madd(arow[kk], brow[kk], acc);
  return acc;
}

void gemm_a_bt_rows_scalar(const float* __restrict a,
                           const float* __restrict b, float* __restrict c,
                           Index m, Index k, Index n) {
  // Register blocking 2 (rows of A) x 4 (rows of B): eight independent
  // FMA chains in flight and every loaded B element reused twice. The
  // per-output accumulation order stays ascending-k, so results match
  // the naive dot product chain for chain.
  Index i = 0;
  for (; i + 2 <= m; i += 2) {
    const float* __restrict a0 = a + i * k;
    const float* __restrict a1 = a0 + k;
    float* __restrict c0 = c + i * n;
    float* __restrict c1 = c0 + n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + j * k;
      const float* __restrict b1 = b0 + k;
      const float* __restrict b2 = b1 + k;
      const float* __restrict b3 = b2 + k;
      float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
      float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
      for (Index kk = 0; kk < k; ++kk) {
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float bv0 = b0[kk];
        const float bv1 = b1[kk];
        const float bv2 = b2[kk];
        const float bv3 = b3[kk];
        s00 = madd(av0, bv0, s00);
        s01 = madd(av0, bv1, s01);
        s02 = madd(av0, bv2, s02);
        s03 = madd(av0, bv3, s03);
        s10 = madd(av1, bv0, s10);
        s11 = madd(av1, bv1, s11);
        s12 = madd(av1, bv2, s12);
        s13 = madd(av1, bv3, s13);
      }
      c0[j] = s00;
      c0[j + 1] = s01;
      c0[j + 2] = s02;
      c0[j + 3] = s03;
      c1[j] = s10;
      c1[j + 1] = s11;
      c1[j + 2] = s12;
      c1[j + 3] = s13;
    }
    for (; j < n; ++j) {
      const float* __restrict brow = b + j * k;
      c0[j] = abt_dot(a0, brow, k);
      c1[j] = abt_dot(a1, brow, k);
    }
  }
  for (; i < m; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict crow = c + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      abt_row_block4(arow, b + j * k, b + (j + 1) * k, b + (j + 2) * k,
                     b + (j + 3) * k, k, crow + j);
    }
    for (; j < n; ++j) crow[j] = abt_dot(arow, b + j * k, k);
  }
}

void gemv_scalar(const float* __restrict w, const float* __restrict x,
                 float* __restrict y, Index m, Index n) {
  // Four output rows at a time: each x element is loaded once and feeds
  // four independent accumulator chains, hiding FMA latency without
  // changing any row's accumulation order.
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict r0 = w + i * n;
    const float* __restrict r1 = r0 + n;
    const float* __restrict r2 = r1 + n;
    const float* __restrict r3 = r2 + n;
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    for (Index j = 0; j < n; ++j) {
      const float xv = x[j];
      a0 = madd(r0[j], xv, a0);
      a1 = madd(r1[j], xv, a1);
      a2 = madd(r2[j], xv, a2);
      a3 = madd(r3[j], xv, a3);
    }
    y[i] = a0;
    y[i + 1] = a1;
    y[i + 2] = a2;
    y[i + 3] = a3;
  }
  for (; i < m; ++i) {
    const float* __restrict row = w + i * n;
    float acc = 0.0f;
    for (Index j = 0; j < n; ++j) acc = madd(row[j], x[j], acc);
    y[i] = acc;
  }
}

void sparse_accum_rows_scalar(const float* __restrict packed,
                              const Index* __restrict positions,
                              std::size_t n_positions,
                              const float* __restrict values,
                              float* __restrict out, Index batch, Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const float* __restrict row = packed + positions[e] * n;
    // All lanes of this kept position in one pass: the packed row is
    // streamed once into cache and reused by every lane.
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;  // lane kept for another lane's sake
      float* __restrict yrow = out + b * n;
      for (Index j = 0; j < n; ++j) yrow[j] = madd(v, row[j], yrow[j]);
    }
  }
}

// One pass over y[jt..je) chaining C kept rows through madd (C is
// compile-time so the chain unrolls). The per-element order is the
// order the caller filled gr/gv — ascending positions — so chaining
// only amortizes out-row traffic, never reorders a chain. Ow starts
// the chain from +0.0f instead of y[j] (the overwrite flavour — see
// multi_schedule.h). Plugged into the shared position-major merge
// schedule of num/simd/multi_schedule.h.
struct ScalarMultiChainPass {
  template <int C, bool Ow>
  static inline void pass(float* __restrict y, Index jt, Index je,
                          const float* const* __restrict gr,
                          const float* __restrict gv) {
    const float* __restrict r0 = gr[0];
    const float* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const float* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const float* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const float* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const float* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const float* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const float* __restrict r7 = C > 7 ? gr[7] : gr[0];
    for (Index j = jt; j < je; ++j) {
      float a = Ow ? 0.0f : y[j];
      a = madd(gv[0], r0[j], a);
      if (C > 1) a = madd(gv[1], r1[j], a);
      if (C > 2) a = madd(gv[2], r2[j], a);
      if (C > 3) a = madd(gv[3], r3[j], a);
      if (C > 4) a = madd(gv[4], r4[j], a);
      if (C > 5) a = madd(gv[5], r5[j], a);
      if (C > 6) a = madd(gv[6], r6[j], a);
      if (C > 7) a = madd(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_scalar(const float* __restrict packed,
                                    const Index* __restrict positions,
                                    const Index* __restrict row_start,
                                    const float* __restrict values,
                                    float* __restrict out, Index batch,
                                    Index n) {
  // Per-lane CSR accumulate through the shared position-major merge
  // schedule (num/simd/multi_schedule.h); this backend contributes only
  // the portable madd chain-pass primitive above.
  sparse_accum_rows_multi_schedule<ScalarMultiChainPass>(
      packed, positions, row_start, values, out, batch, n);
}

void sparse_accum_rows_multi_overwrite_scalar(
    const float* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const float* __restrict values,
    float* __restrict out, Index batch, Index n) {
  // Overwrite flavour: out = instead of out += (multi_schedule.h); the
  // caller skips its zero fill of out.
  sparse_accum_rows_multi_schedule<ScalarMultiChainPass, true>(
      packed, positions, row_start, values, out, batch, n);
}

void axpy_scalar(float alpha, const float* __restrict x, float* __restrict y,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = madd(alpha, x[i], y[i]);
}

// --- int8 kernels ----------------------------------------------------
// Every multiply-accumulate goes through num::madd_i8 (exact i32
// product, wraparound add), so these loops reproduce num::reference's
// int8 twins bit-for-bit — and since wrapping addition is associative,
// the 4-wide accumulator blocking below is still exact, not just
// chain-preserving (docs/exactness.md "int8").

inline std::int32_t abt_dot_i8(const std::int8_t* __restrict arow,
                               const std::int8_t* __restrict brow, Index k) {
  std::int32_t acc = 0;
  for (Index kk = 0; kk < k; ++kk) acc = madd_i8(arow[kk], brow[kk], acc);
  return acc;
}

void gemm_a_bt_i8_scalar(const std::int8_t* __restrict a,
                         const std::int8_t* __restrict b,
                         std::int32_t* __restrict c, Index m, Index k,
                         Index n) {
  // Block of 4 B rows per A row: each loaded A element feeds four
  // independent accumulators (same shape as the fp32 kernel).
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* __restrict arow = a + i * k;
    std::int32_t* __restrict crow = c + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* __restrict b0 = b + j * k;
      const std::int8_t* __restrict b1 = b0 + k;
      const std::int8_t* __restrict b2 = b1 + k;
      const std::int8_t* __restrict b3 = b2 + k;
      std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (Index kk = 0; kk < k; ++kk) {
        const std::int8_t av = arow[kk];
        s0 = madd_i8(av, b0[kk], s0);
        s1 = madd_i8(av, b1[kk], s1);
        s2 = madd_i8(av, b2[kk], s2);
        s3 = madd_i8(av, b3[kk], s3);
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < n; ++j) crow[j] = abt_dot_i8(arow, b + j * k, k);
  }
}

void sparse_accum_rows_i8_scalar(const std::int8_t* __restrict packed,
                                 const Index* __restrict positions,
                                 std::size_t n_positions,
                                 const std::int8_t* __restrict values,
                                 std::int32_t* __restrict out, Index batch,
                                 Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const std::int8_t* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const std::int8_t v = values[e * static_cast<std::size_t>(batch) +
                                   static_cast<std::size_t>(b)];
      if (v == 0) continue;  // exact identity in integers too
      std::int32_t* __restrict yrow = out + b * n;
      for (Index j = 0; j < n; ++j) yrow[j] = madd_i8(v, row[j], yrow[j]);
    }
  }
}

// Int8 chain pass for the shared merge schedule. Only the accumulate
// flavour is registered (no overwrite slot in the int8 table), but the
// template is flavour-complete for uniformity.
struct ScalarMultiChainPassI8 {
  template <int C, bool Ow>
  static inline void pass(std::int32_t* __restrict y, Index jt, Index je,
                          const std::int8_t* const* __restrict gr,
                          const std::int8_t* __restrict gv) {
    const std::int8_t* __restrict r0 = gr[0];
    const std::int8_t* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const std::int8_t* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const std::int8_t* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const std::int8_t* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const std::int8_t* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const std::int8_t* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const std::int8_t* __restrict r7 = C > 7 ? gr[7] : gr[0];
    for (Index j = jt; j < je; ++j) {
      std::int32_t a = Ow ? 0 : y[j];
      a = madd_i8(gv[0], r0[j], a);
      if (C > 1) a = madd_i8(gv[1], r1[j], a);
      if (C > 2) a = madd_i8(gv[2], r2[j], a);
      if (C > 3) a = madd_i8(gv[3], r3[j], a);
      if (C > 4) a = madd_i8(gv[4], r4[j], a);
      if (C > 5) a = madd_i8(gv[5], r5[j], a);
      if (C > 6) a = madd_i8(gv[6], r6[j], a);
      if (C > 7) a = madd_i8(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_i8_scalar(const std::int8_t* __restrict packed,
                                       const Index* __restrict positions,
                                       const Index* __restrict row_start,
                                       const std::int8_t* __restrict values,
                                       std::int32_t* __restrict out,
                                       Index batch, Index n) {
  sparse_accum_rows_multi_schedule<ScalarMultiChainPassI8, false, std::int8_t,
                                   std::int32_t>(packed, positions, row_start,
                                                 values, out, batch, n);
}

bool always_available() { return true; }

}  // namespace

const KernelBackend kScalarBackend = {
    "scalar",
    "portable register-blocked loops (PR-1 kernels); autovectorized only",
    always_available,
    gemm_rows_scalar,
    gemm_a_bt_rows_scalar,
    gemv_scalar,
    sparse_accum_rows_scalar,
    sparse_accum_rows_multi_scalar,
    sparse_accum_rows_multi_overwrite_scalar,
    axpy_scalar,
    gemm_a_bt_i8_scalar,
    sparse_accum_rows_i8_scalar,
    sparse_accum_rows_multi_i8_scalar,
};

}  // namespace zss::num::simd
