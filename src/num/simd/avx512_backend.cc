// AVX-512 backend — deliberately a stub for now.
//
// A 16-lane port of the AVX2 backend is mechanical (the 8x8 transpose
// becomes a 16x16 or two-stage shuffle), but on most client parts
// AVX-512 downclocking can erase the gain for the small, latency-bound
// shapes this repo serves (batch 1..32, dh <= 1000), so it needs its
// own measurements before it earns a kernel table. Keeping the registry
// entry visible documents the plan, reserves the name, and lets
// ZSS_KERNEL_BACKEND=avx512 fail loudly (warning + scalar fallback)
// instead of silently meaning something else.
#include "num/simd/backend.h"

namespace zss::num::simd {

namespace {
bool never_available() { return false; }
}  // namespace

const KernelBackend kAvx512Backend = {
    "avx512",
    "stub — planned 16-lane port of the avx2 backend, pending "
    "downclocking measurements on the target parts",
    never_available,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    // int8 table (gemm_a_bt_i8, sparse_accum_rows_i8,
    // sparse_accum_rows_multi_i8): also stubbed, listed explicitly so
    // the registry stays visibly uniform — the slots default to nullptr
    // anyway, and num/kernels.cc degrades to the scalar int8 table when
    // a backend leaves them empty (VNNI kernels belong here once the
    // backend graduates — ROADMAP).
    nullptr,
    nullptr,
    nullptr,
};

}  // namespace zss::num::simd
