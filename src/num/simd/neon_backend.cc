// NEON backend for aarch64, compile-guarded: on AArch64 Advanced SIMD
// and fused multiply-add are baseline, so there is no runtime cpuid
// question — only the build-flavour check that the base translation
// units contract madd to fmaf (they do under default aarch64 flags).
//
// The structure mirrors the AVX2 backend at 4 lanes: vectorization is
// across independent output elements only, each lane carrying its own
// serial ascending-k chain, with a 4x4 in-register transpose where the
// row-major layout runs along the wrong axis (see docs/exactness.md).
// vfmaq_f32 rounds each lane exactly like scalar fmaf.
#include "num/kernels.h"
#include "num/simd/backend.h"
#include "num/simd/multi_schedule.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstring>

namespace zss::num::simd {

namespace {

bool neon_available() { return madd_is_fused(); }

// In-register 4x4 transpose: r[q] holds row q's elements j..j+3 on
// entry; on exit r[p] holds element j+p of rows 0..3 (lane-major).
inline void transpose4(float32x4_t r[4]) {
  const float32x4x2_t t01 = vtrnq_f32(r[0], r[1]);
  const float32x4x2_t t23 = vtrnq_f32(r[2], r[3]);
  r[0] = vcombine_f32(vget_low_f32(t01.val[0]), vget_low_f32(t23.val[0]));
  r[1] = vcombine_f32(vget_low_f32(t01.val[1]), vget_low_f32(t23.val[1]));
  r[2] = vcombine_f32(vget_high_f32(t01.val[0]), vget_high_f32(t23.val[0]));
  r[3] = vcombine_f32(vget_high_f32(t01.val[1]), vget_high_f32(t23.val[1]));
}

// One pass over y[jt..je) chaining C kept rows (C is compile-time so
// the FMA sequence unrolls with every broadcast hoisted). The chain per
// output element runs in the order the caller filled gr/gv — ascending
// positions — so chaining only amortizes out-row traffic. Plugged into
// the shared position-major merge schedule of num/simd/multi_schedule.h.
struct NeonMultiChainPass {
  template <int C, bool Ow>
  __attribute__((always_inline)) static inline void pass(
      float* __restrict y, Index jt, Index je,
      const float* const* __restrict gr, const float* __restrict gv) {
    const float* __restrict r0 = gr[0];
    const float* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const float* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const float* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const float* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const float* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const float* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const float* __restrict r7 = C > 7 ? gr[7] : gr[0];
    const float32x4_t v0 = vdupq_n_f32(gv[0]);
    const float32x4_t v1 = vdupq_n_f32(C > 1 ? gv[1] : 0.0f);
    const float32x4_t v2 = vdupq_n_f32(C > 2 ? gv[2] : 0.0f);
    const float32x4_t v3 = vdupq_n_f32(C > 3 ? gv[3] : 0.0f);
    const float32x4_t v4 = vdupq_n_f32(C > 4 ? gv[4] : 0.0f);
    const float32x4_t v5 = vdupq_n_f32(C > 5 ? gv[5] : 0.0f);
    const float32x4_t v6 = vdupq_n_f32(C > 6 ? gv[6] : 0.0f);
    const float32x4_t v7 = vdupq_n_f32(C > 7 ? gv[7] : 0.0f);
    Index j = jt;
    for (; j + 4 <= je; j += 4) {
      float32x4_t a = Ow ? vdupq_n_f32(0.0f) : vld1q_f32(y + j);
      a = vfmaq_f32(a, v0, vld1q_f32(r0 + j));
      if (C > 1) a = vfmaq_f32(a, v1, vld1q_f32(r1 + j));
      if (C > 2) a = vfmaq_f32(a, v2, vld1q_f32(r2 + j));
      if (C > 3) a = vfmaq_f32(a, v3, vld1q_f32(r3 + j));
      if (C > 4) a = vfmaq_f32(a, v4, vld1q_f32(r4 + j));
      if (C > 5) a = vfmaq_f32(a, v5, vld1q_f32(r5 + j));
      if (C > 6) a = vfmaq_f32(a, v6, vld1q_f32(r6 + j));
      if (C > 7) a = vfmaq_f32(a, v7, vld1q_f32(r7 + j));
      vst1q_f32(y + j, a);
    }
    for (; j < je; ++j) {
      float a = Ow ? 0.0f : y[j];
      a = std::fmaf(gv[0], r0[j], a);
      if (C > 1) a = std::fmaf(gv[1], r1[j], a);
      if (C > 2) a = std::fmaf(gv[2], r2[j], a);
      if (C > 3) a = std::fmaf(gv[3], r3[j], a);
      if (C > 4) a = std::fmaf(gv[4], r4[j], a);
      if (C > 5) a = std::fmaf(gv[5], r5[j], a);
      if (C > 6) a = std::fmaf(gv[6], r6[j], a);
      if (C > 7) a = std::fmaf(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

// y[j] += v * row[j] over [0, n): shared by gemm and sparse_accum_rows.
inline void accum_row_neon(float v, const float* __restrict row,
                           float* __restrict y, Index n) {
  const float32x4_t vv = vdupq_n_f32(v);
  Index j = 0;
  for (; j + 8 <= n; j += 8) {
    float32x4_t y0 = vld1q_f32(y + j);
    float32x4_t y1 = vld1q_f32(y + j + 4);
    y0 = vfmaq_f32(y0, vv, vld1q_f32(row + j));
    y1 = vfmaq_f32(y1, vv, vld1q_f32(row + j + 4));
    vst1q_f32(y + j, y0);
    vst1q_f32(y + j + 4, y1);
  }
  for (; j + 4 <= n; j += 4) {
    float32x4_t y0 = vld1q_f32(y + j);
    y0 = vfmaq_f32(y0, vv, vld1q_f32(row + j));
    vst1q_f32(y + j, y0);
  }
  for (; j < n; ++j) y[j] = std::fmaf(v, row[j], y[j]);
}

void gemm_rows_neon(const float* __restrict a, const float* __restrict b,
                    float* __restrict c, Index m, Index k, Index n) {
  for (Index i = 0; i < m; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict crow = c + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // same skip semantics as scalar/reference
      accum_row_neon(av, b + kk * n, crow, n);
    }
  }
}

void sparse_accum_rows_neon(const float* __restrict packed,
                            const Index* __restrict positions,
                            std::size_t n_positions,
                            const float* __restrict values,
                            float* __restrict out, Index batch, Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const float* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;  // lane kept for another lane's sake
      accum_row_neon(v, row, out + b * n, n);
    }
  }
}

void sparse_accum_rows_multi_neon(const float* __restrict packed,
                                  const Index* __restrict positions,
                                  const Index* __restrict row_start,
                                  const float* __restrict values,
                                  float* __restrict out, Index batch,
                                  Index n) {
  // Per-lane CSR accumulate through the shared position-major merge
  // schedule (num/simd/multi_schedule.h); this backend contributes only
  // the 4-lane NEON chain-pass primitive above.
  sparse_accum_rows_multi_schedule<NeonMultiChainPass>(
      packed, positions, row_start, values, out, batch, n);
}

void sparse_accum_rows_multi_overwrite_neon(
    const float* __restrict packed, const Index* __restrict positions,
    const Index* __restrict row_start, const float* __restrict values,
    float* __restrict out, Index batch, Index n) {
  // Overwrite flavour: out = instead of out += (multi_schedule.h); the
  // caller skips its zero fill of out.
  sparse_accum_rows_multi_schedule<NeonMultiChainPass, true>(
      packed, positions, row_start, values, out, batch, n);
}

void gemv_neon(const float* __restrict w, const float* __restrict x,
               float* __restrict y, Index m, Index n) {
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      float32x4_t t[4];
      for (int q = 0; q < 4; ++q) t[q] = vld1q_f32(w + (i + q) * n + j);
      transpose4(t);
      for (int p = 0; p < 4; ++p) {
        acc = vfmaq_f32(acc, t[p], vdupq_n_f32(x[j + p]));
      }
    }
    if (j < n) {
      float lanes[4];
      vst1q_f32(lanes, acc);
      for (int q = 0; q < 4; ++q) {
        const float* __restrict row = w + (i + q) * n;
        float s = lanes[q];
        for (Index jt = j; jt < n; ++jt) s = std::fmaf(row[jt], x[jt], s);
        y[i + q] = s;
      }
    } else {
      vst1q_f32(y + i, acc);
    }
  }
  for (; i < m; ++i) {
    const float* __restrict row = w + i * n;
    float s = 0.0f;
    for (Index j = 0; j < n; ++j) s = std::fmaf(row[j], x[j], s);
    y[i] = s;
  }
}

void gemm_a_bt_rows_neon(const float* __restrict a, const float* __restrict b,
                         float* __restrict c, Index m, Index k, Index n) {
  Index j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    for (Index i0 = 0; i0 < m; i0 += 4) {
      const Index ib = m - i0 < 4 ? m - i0 : Index{4};
      float32x4_t acc[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                            vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
      Index kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        float32x4_t t[4];
        for (int q = 0; q < 4; ++q) t[q] = vld1q_f32(b + (j0 + q) * k + kk);
        transpose4(t);
        for (int p = 0; p < 4; ++p) {
          for (Index r = 0; r < ib; ++r) {
            acc[r] = vfmaq_f32(acc[r], t[p],
                               vdupq_n_f32(a[(i0 + r) * k + kk + p]));
          }
        }
      }
      for (Index r = 0; r < ib; ++r) {
        float lanes[4];
        vst1q_f32(lanes, acc[r]);
        if (kk < k) {
          const float* __restrict arow = a + (i0 + r) * k;
          for (int q = 0; q < 4; ++q) {
            const float* __restrict brow = b + (j0 + q) * k;
            float s = lanes[q];
            for (Index kt = kk; kt < k; ++kt) {
              s = std::fmaf(arow[kt], brow[kt], s);
            }
            lanes[q] = s;
          }
        }
        std::memcpy(c + (i0 + r) * n + j0, lanes, sizeof(lanes));
      }
    }
  }
  for (; j0 < n; ++j0) {  // column tail: plain ascending-k dots
    const float* __restrict brow = b + j0 * k;
    for (Index i = 0; i < m; ++i) {
      const float* __restrict arow = a + i * k;
      float s = 0.0f;
      for (Index kk = 0; kk < k; ++kk) s = std::fmaf(arow[kk], brow[kk], s);
      c[i * n + j0] = s;
    }
  }
}

void axpy_neon(float alpha, const float* __restrict x, float* __restrict y,
               std::size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t vy = vld1q_f32(y + i);
    vy = vfmaq_f32(vy, va, vld1q_f32(x + i));
    vst1q_f32(y + i, vy);
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

// --- int8 kernels ----------------------------------------------------
// Wraparound-i32 exactness (num::madd_i8) is associative, so unlike the
// fp32 kernels these reduce horizontally (vaddvq) and regroup freely.
// Every step is exact: vmull_s8 widens products to i16 (|a*b| <=
// 127^2), one vmlal_s8 on top stays <= 2 * 16129 = 32258 < 2^15, and
// vpadalq_s16 pair-adds into wrapping i32 accumulators. With the
// dot-product extension (__ARM_FEATURE_DOTPROD) the dense dot collapses
// to one sdot per 16 bytes — same wrap semantics, same bits.

inline std::int32_t dot_i8_neon(const std::int8_t* __restrict a,
                                const std::int8_t* __restrict b, Index k) {
  int32x4_t acc = vdupq_n_s32(0);
  Index kk = 0;
#if defined(__ARM_FEATURE_DOTPROD)
  for (; kk + 16 <= k; kk += 16) {
    acc = vdotq_s32(acc, vld1q_s8(a + kk), vld1q_s8(b + kk));
  }
#else
  for (; kk + 16 <= k; kk += 16) {
    const int8x16_t av = vld1q_s8(a + kk);
    const int8x16_t bv = vld1q_s8(b + kk);
    int16x8_t p = vmull_s8(vget_low_s8(av), vget_low_s8(bv));
    p = vmlal_s8(p, vget_high_s8(av), vget_high_s8(bv));
    acc = vpadalq_s16(acc, p);
  }
#endif
  std::int32_t s = vaddvq_s32(acc);
  for (; kk < k; ++kk) s = madd_i8(a[kk], b[kk], s);
  return s;
}

void gemm_a_bt_i8_neon(const std::int8_t* __restrict a,
                       const std::int8_t* __restrict b,
                       std::int32_t* __restrict c, Index m, Index k,
                       Index n) {
  // Four rows of B per A row: four independent vector accumulators per
  // widened A chunk (the same reuse shape as the fp32 kernels).
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* __restrict arow = a + i * k;
    std::int32_t* __restrict crow = c + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* __restrict b0 = b + j * k;
      const std::int8_t* __restrict b1 = b0 + k;
      const std::int8_t* __restrict b2 = b1 + k;
      const std::int8_t* __restrict b3 = b2 + k;
      int32x4_t s0 = vdupq_n_s32(0);
      int32x4_t s1 = vdupq_n_s32(0);
      int32x4_t s2 = vdupq_n_s32(0);
      int32x4_t s3 = vdupq_n_s32(0);
      Index kk = 0;
#if defined(__ARM_FEATURE_DOTPROD)
      for (; kk + 16 <= k; kk += 16) {
        const int8x16_t av = vld1q_s8(arow + kk);
        s0 = vdotq_s32(s0, av, vld1q_s8(b0 + kk));
        s1 = vdotq_s32(s1, av, vld1q_s8(b1 + kk));
        s2 = vdotq_s32(s2, av, vld1q_s8(b2 + kk));
        s3 = vdotq_s32(s3, av, vld1q_s8(b3 + kk));
      }
#else
      for (; kk + 16 <= k; kk += 16) {
        const int8x16_t av = vld1q_s8(arow + kk);
        const int8x8_t al = vget_low_s8(av);
        const int8x8_t ah = vget_high_s8(av);
        const int8x16_t bv0 = vld1q_s8(b0 + kk);
        int16x8_t p0 = vmull_s8(al, vget_low_s8(bv0));
        p0 = vmlal_s8(p0, ah, vget_high_s8(bv0));
        s0 = vpadalq_s16(s0, p0);
        const int8x16_t bv1 = vld1q_s8(b1 + kk);
        int16x8_t p1 = vmull_s8(al, vget_low_s8(bv1));
        p1 = vmlal_s8(p1, ah, vget_high_s8(bv1));
        s1 = vpadalq_s16(s1, p1);
        const int8x16_t bv2 = vld1q_s8(b2 + kk);
        int16x8_t p2 = vmull_s8(al, vget_low_s8(bv2));
        p2 = vmlal_s8(p2, ah, vget_high_s8(bv2));
        s2 = vpadalq_s16(s2, p2);
        const int8x16_t bv3 = vld1q_s8(b3 + kk);
        int16x8_t p3 = vmull_s8(al, vget_low_s8(bv3));
        p3 = vmlal_s8(p3, ah, vget_high_s8(bv3));
        s3 = vpadalq_s16(s3, p3);
      }
#endif
      std::int32_t r0 = vaddvq_s32(s0);
      std::int32_t r1 = vaddvq_s32(s1);
      std::int32_t r2 = vaddvq_s32(s2);
      std::int32_t r3 = vaddvq_s32(s3);
      for (; kk < k; ++kk) {
        const std::int8_t av = arow[kk];
        r0 = madd_i8(av, b0[kk], r0);
        r1 = madd_i8(av, b1[kk], r1);
        r2 = madd_i8(av, b2[kk], r2);
        r3 = madd_i8(av, b3[kk], r3);
      }
      crow[j] = r0;
      crow[j + 1] = r1;
      crow[j + 2] = r2;
      crow[j + 3] = r3;
    }
    for (; j < n; ++j) crow[j] = dot_i8_neon(arow, b + j * k, k);
  }
}

// y[j] += v * row[j] over 8 i32 outputs per step: widen the row chunk,
// vmlal against the broadcast i16 value (exact — |v * r| <= 127^2).
inline void accum_row_i8_neon(std::int8_t v, const std::int8_t* __restrict row,
                              std::int32_t* __restrict y, Index n) {
  const std::int16_t vs = v;
  Index j = 0;
  for (; j + 8 <= n; j += 8) {
    const int16x8_t r16 = vmovl_s8(vld1_s8(row + j));
    int32x4_t y0 = vld1q_s32(y + j);
    int32x4_t y1 = vld1q_s32(y + j + 4);
    y0 = vmlal_n_s16(y0, vget_low_s16(r16), vs);
    y1 = vmlal_n_s16(y1, vget_high_s16(r16), vs);
    vst1q_s32(y + j, y0);
    vst1q_s32(y + j + 4, y1);
  }
  for (; j < n; ++j) y[j] = madd_i8(v, row[j], y[j]);
}

void sparse_accum_rows_i8_neon(const std::int8_t* __restrict packed,
                               const Index* __restrict positions,
                               std::size_t n_positions,
                               const std::int8_t* __restrict values,
                               std::int32_t* __restrict out, Index batch,
                               Index n) {
  for (std::size_t e = 0; e < n_positions; ++e) {
    const std::int8_t* __restrict row = packed + positions[e] * n;
    for (Index b = 0; b < batch; ++b) {
      const std::int8_t v = values[e * static_cast<std::size_t>(batch) +
                                   static_cast<std::size_t>(b)];
      if (v == 0) continue;  // exact identity in integers too
      accum_row_i8_neon(v, row, out + b * n, n);
    }
  }
}

// One chained contribution of entry (r, v) to 8 i32 outputs at j.
inline void chain_step_i8(int32x4_t& a0, int32x4_t& a1,
                          const std::int8_t* __restrict r, Index j,
                          std::int16_t v) {
  const int16x8_t r16 = vmovl_s8(vld1_s8(r + j));
  a0 = vmlal_n_s16(a0, vget_low_s16(r16), v);
  a1 = vmlal_n_s16(a1, vget_high_s16(r16), v);
}

// Int8 chain pass for the shared merge schedule (multi_schedule.h).
struct NeonMultiChainPassI8 {
  template <int C, bool Ow>
  __attribute__((always_inline)) static inline void pass(
      std::int32_t* __restrict y, Index jt, Index je,
      const std::int8_t* const* __restrict gr,
      const std::int8_t* __restrict gv) {
    const std::int8_t* __restrict r0 = gr[0];
    const std::int8_t* __restrict r1 = C > 1 ? gr[1] : gr[0];
    const std::int8_t* __restrict r2 = C > 2 ? gr[2] : gr[0];
    const std::int8_t* __restrict r3 = C > 3 ? gr[3] : gr[0];
    const std::int8_t* __restrict r4 = C > 4 ? gr[4] : gr[0];
    const std::int8_t* __restrict r5 = C > 5 ? gr[5] : gr[0];
    const std::int8_t* __restrict r6 = C > 6 ? gr[6] : gr[0];
    const std::int8_t* __restrict r7 = C > 7 ? gr[7] : gr[0];
    const std::int16_t v0 = gv[0];
    const std::int16_t v1 = C > 1 ? gv[1] : std::int8_t{0};
    const std::int16_t v2 = C > 2 ? gv[2] : std::int8_t{0};
    const std::int16_t v3 = C > 3 ? gv[3] : std::int8_t{0};
    const std::int16_t v4 = C > 4 ? gv[4] : std::int8_t{0};
    const std::int16_t v5 = C > 5 ? gv[5] : std::int8_t{0};
    const std::int16_t v6 = C > 6 ? gv[6] : std::int8_t{0};
    const std::int16_t v7 = C > 7 ? gv[7] : std::int8_t{0};
    Index j = jt;
    for (; j + 8 <= je; j += 8) {
      int32x4_t a0 = Ow ? vdupq_n_s32(0) : vld1q_s32(y + j);
      int32x4_t a1 = Ow ? vdupq_n_s32(0) : vld1q_s32(y + j + 4);
      chain_step_i8(a0, a1, r0, j, v0);
      if (C > 1) chain_step_i8(a0, a1, r1, j, v1);
      if (C > 2) chain_step_i8(a0, a1, r2, j, v2);
      if (C > 3) chain_step_i8(a0, a1, r3, j, v3);
      if (C > 4) chain_step_i8(a0, a1, r4, j, v4);
      if (C > 5) chain_step_i8(a0, a1, r5, j, v5);
      if (C > 6) chain_step_i8(a0, a1, r6, j, v6);
      if (C > 7) chain_step_i8(a0, a1, r7, j, v7);
      vst1q_s32(y + j, a0);
      vst1q_s32(y + j + 4, a1);
    }
    for (; j < je; ++j) {
      std::int32_t a = Ow ? 0 : y[j];
      a = madd_i8(gv[0], r0[j], a);
      if (C > 1) a = madd_i8(gv[1], r1[j], a);
      if (C > 2) a = madd_i8(gv[2], r2[j], a);
      if (C > 3) a = madd_i8(gv[3], r3[j], a);
      if (C > 4) a = madd_i8(gv[4], r4[j], a);
      if (C > 5) a = madd_i8(gv[5], r5[j], a);
      if (C > 6) a = madd_i8(gv[6], r6[j], a);
      if (C > 7) a = madd_i8(gv[7], r7[j], a);
      y[j] = a;
    }
  }
};

void sparse_accum_rows_multi_i8_neon(const std::int8_t* __restrict packed,
                                     const Index* __restrict positions,
                                     const Index* __restrict row_start,
                                     const std::int8_t* __restrict values,
                                     std::int32_t* __restrict out, Index batch,
                                     Index n) {
  sparse_accum_rows_multi_schedule<NeonMultiChainPassI8, false, std::int8_t,
                                   std::int32_t>(packed, positions, row_start,
                                                 values, out, batch, n);
}

}  // namespace

const KernelBackend kNeonBackend = {
    "neon",
    "AArch64 Advanced SIMD (baseline ISA); needs an FMA-contracted base "
    "build",
    neon_available,
    gemm_rows_neon,
    gemm_a_bt_rows_neon,
    gemv_neon,
    sparse_accum_rows_neon,
    sparse_accum_rows_multi_neon,
    sparse_accum_rows_multi_overwrite_neon,
    axpy_neon,
    gemm_a_bt_i8_neon,
    sparse_accum_rows_i8_neon,
    sparse_accum_rows_multi_i8_neon,
};

}  // namespace zss::num::simd

#else  // not aarch64: keep the registry entry as a stub

namespace zss::num::simd {

namespace {
bool never_available() { return false; }
}  // namespace

const KernelBackend kNeonBackend = {
    "neon",
    "AArch64 Advanced SIMD; not compiled into this binary (aarch64 only)",
    never_available,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    nullptr,
    // int8 slots, stubbed with the rest of the table
    nullptr,
    nullptr,
    nullptr,
};

}  // namespace zss::num::simd

#endif
