// Runtime-dispatched SIMD kernel backends.
//
// A KernelBackend is a table of raw-pointer kernels for the hot loops of
// the library (the shape checks, output sizing and parallel_for row
// partitioning stay in num/kernels.cc — backends are pure number
// crunchers over pre-validated buffers). One backend is selected at
// first use: the highest-priority backend whose available() check
// passes, or the one named by the ZSS_KERNEL_BACKEND environment
// variable (scalar | avx2 | avx512 | neon). Unknown or unavailable
// names fall back to scalar with a warning on stderr.
//
// Every backend implements the same contract as num::reference (see
// docs/exactness.md): the additions feeding one output element run as a
// single serial chain in ascending position order, and every
// multiply-accumulate is fused exactly when num::madd is fused. SIMD
// implementations therefore vectorize across *independent* output
// elements (lane q carries output element q's own chain) and never
// horizontally reduce — which is what makes step() vs step_dense()
// bit-identical within any backend, and every backend 0-ULP-identical
// to every other one built with the same madd flavour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "num/types.h"

namespace zss::num::simd {

struct KernelBackend {
  /// Name used by ZSS_KERNEL_BACKEND and in bench/test output.
  const char* name;
  /// One-line description, including ISA/build requirements.
  const char* description;
  /// Runtime check (cpuid + build-flavour); cheap, callable at any time.
  bool (*available)();

  // --- kernel table (null in stub backends) ---------------------------
  /// C[0..m) rows of C = A * B; every row of C is pre-zeroed by the
  /// caller. Exact zeros in A are skipped (IEEE identity).
  void (*gemm_rows)(const float* a, const float* b, float* c, Index m,
                    Index k, Index n);
  /// C[0..m) rows of C = A * B^T (B is n x k); every element written.
  void (*gemm_a_bt_rows)(const float* a, const float* b, float* c, Index m,
                         Index k, Index n);
  /// y = W x for W (m x n) row-major.
  void (*gemv)(const float* w, const float* x, float* y, Index m, Index n);
  /// out.row(b) += values[e * batch + b] * packed.row(positions[e]) for
  /// every kept position e (ascending) and batch lane b. Positions are
  /// pre-validated by the caller; zero-valued lanes are skipped.
  void (*sparse_accum_rows)(const float* packed, const Index* positions,
                            std::size_t n_positions, const float* values,
                            float* out, Index batch, Index n);
  /// Per-lane (CSR) variant: for each lane b, out.row(b) +=
  /// values[e] * packed.row(positions[e]) over b's own kept entries
  /// e in [row_start[b], row_start[b+1]), ascending. Each output element
  /// (b, j) keeps one serial ascending-position chain; implementations
  /// may group several positions into one pass over the out row (the
  /// chain order is unchanged) but must not reorder within a lane.
  /// Values are the lane's non-zero elements by construction; a zero
  /// value, if passed, is accumulated (an IEEE identity), not skipped.
  void (*sparse_accum_rows_multi)(const float* packed, const Index* positions,
                                  const Index* row_start, const float* values,
                                  float* out, Index batch, Index n);
  /// Overwrite flavour of sparse_accum_rows_multi: out.row(b) *is* the
  /// lane's accumulation (out treated as uninitialized; every element
  /// written, lanes with no entries zero-filled). Bit-identical to
  /// zero-filling out and calling sparse_accum_rows_multi — each chain
  /// starts from madd(v0, row0[j], +0.0f) — which lets the engine skip
  /// its per-step staging zero fill (num/simd/multi_schedule.h).
  void (*sparse_accum_rows_multi_overwrite)(const float* packed,
                                            const Index* positions,
                                            const Index* row_start,
                                            const float* values, float* out,
                                            Index batch, Index n);
  /// y += alpha * x.
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);

  // --- int8 kernel table (i32 accumulation) ---------------------------
  // The int8 contract differs from fp32 (docs/exactness.md "int8"): every
  // product a*b is exact in i32 and accumulation wraps mod 2^32, which is
  // associative and commutative — so int8 kernels MAY reduce horizontally
  // and regroup freely; any summation order is bit-identical. The slots
  // default to nullptr so backends that predate them (or out-of-tree
  // tables) stay valid aggregates; num/kernels.cc falls back to the
  // scalar table per call when the active backend leaves a slot empty.
  /// C (m x n, i32) = A (m x k, i8) * B^T (B is n x k, i8); every
  /// element overwritten.
  void (*gemm_a_bt_i8)(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, Index m, Index k, Index n) = nullptr;
  /// Int8 twin of sparse_accum_rows: out.row(b) += values[e * batch + b]
  /// * packed.row(positions[e]) in i32; zero-valued lanes skipped (an
  /// exact identity in integer arithmetic too).
  void (*sparse_accum_rows_i8)(const std::int8_t* packed,
                               const Index* positions,
                               std::size_t n_positions,
                               const std::int8_t* values, std::int32_t* out,
                               Index batch, Index n) = nullptr;
  /// Int8 twin of sparse_accum_rows_multi (accumulate flavour only; the
  /// engine zero-fills its i32 staging — a memset, cheap next to the
  /// fp32 case where the overwrite flavour pays for itself).
  void (*sparse_accum_rows_multi_i8)(const std::int8_t* packed,
                                     const Index* positions,
                                     const Index* row_start,
                                     const std::int8_t* values,
                                     std::int32_t* out, Index batch,
                                     Index n) = nullptr;

  /// True when the kernel table is populated (false for stubs).
  bool implemented() const { return gemm_rows != nullptr; }
  /// True when the int8 kernel table is populated. Tracked separately so
  /// dispatch can fall back slot-by-slot instead of rejecting a backend
  /// that only grew the fp32 table.
  bool implemented_i8() const { return gemm_a_bt_i8 != nullptr; }
  /// True when this backend can actually run here.
  bool usable() const { return implemented() && available(); }
};

/// The four backends every binary carries. On foreign architectures a
/// backend degrades to a stub entry (implemented() == false) so the
/// registry listing is uniform everywhere.
extern const KernelBackend kScalarBackend;  // PR-1 blocked loops, portable
extern const KernelBackend kAvx2Backend;    // AVX2+FMA, x86 only
extern const KernelBackend kAvx512Backend;  // stub — see its description
extern const KernelBackend kNeonBackend;    // NEON, aarch64 only

/// All compiled-in backends in selection-priority order (stubs included;
/// check usable()).
std::span<const KernelBackend* const> registered_backends();

/// The backends that can run on this machine, priority order. Never
/// empty (scalar is always usable).
std::vector<const KernelBackend*> available_backends();

/// The backend the num:: kernels dispatch to. Resolved once on first
/// call from ZSS_KERNEL_BACKEND / cpuid; a fallback warning is printed
/// to stderr at resolution time.
const KernelBackend& active_backend();

/// Pure resolution logic (no caching, no printing): `requested` is the
/// value of ZSS_KERNEL_BACKEND (null/empty means auto-select). When the
/// request cannot be honoured, returns scalar and explains why in
/// *warning. Exposed so tests can cover the fallback paths directly.
const KernelBackend& resolve_backend(const char* requested,
                                     std::string* warning);

/// Test/bench hook: force `backend` (must be usable), or pass nullptr to
/// drop the cached choice so the next active_backend() re-resolves from
/// the environment. Not thread-safe against running kernels.
void set_backend_for_testing(const KernelBackend* backend);

}  // namespace zss::num::simd
