#include "num/stats.h"

#include <algorithm>
#include <cmath>

namespace zss::num {

double mean(std::span<const float> v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (float x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(std::span<const float> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (float x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

float quantile_abs(std::span<const float> v, double q) {
  std::vector<float> scratch;
  return quantile_abs(v, q, scratch);
}

float quantile_abs(std::span<const float> v, double q,
                   std::vector<float>& scratch) {
  ZSS_EXPECTS(q >= 0.0 && q <= 1.0);
  ZSS_EXPECTS(!v.empty());
  std::vector<float>& mags = scratch;
  mags.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) mags[i] = std::fabs(v[i]);
  // Rank such that `q` fraction of elements are strictly below the result
  // for distinct magnitudes; clamp to the last element at q == 1.
  const auto rank = static_cast<std::ptrdiff_t>(
      std::min<double>(q * static_cast<double>(mags.size()),
                       static_cast<double>(mags.size() - 1)));
  std::nth_element(mags.begin(), mags.begin() + rank, mags.end());
  return mags[static_cast<std::size_t>(rank)];
}

double zero_fraction(std::span<const float> v) {
  if (v.empty()) return 0.0;
  Index zeros = 0;
  for (float x : v) {
    if (x == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(v.size());
}

double below_threshold_fraction(std::span<const float> v, float threshold) {
  if (v.empty()) return 0.0;
  Index count = 0;
  for (float x : v) {
    if (std::fabs(x) < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(v.size());
}

std::vector<Index> magnitude_histogram(std::span<const float> v, Index bins) {
  ZSS_EXPECTS(bins > 0);
  std::vector<Index> hist(static_cast<std::size_t>(bins), 0);
  if (v.empty()) return hist;
  float mx = 0.0f;
  for (float x : v) mx = std::max(mx, std::fabs(x));
  if (mx == 0.0f) {
    hist[0] = static_cast<Index>(v.size());
    return hist;
  }
  for (float x : v) {
    auto b = static_cast<Index>(std::fabs(x) / mx * static_cast<float>(bins));
    b = std::min(b, bins - 1);
    ++hist[static_cast<std::size_t>(b)];
  }
  return hist;
}

}  // namespace zss::num
