// Dense float kernels shared by training, inference and reference checks.
//
// The library never links an external BLAS: the paper's workloads are
// small enough (d_h <= 1000) that simple cache-blocked loops reach the
// throughput a laptop-scale reproduction needs, and keeping the loops in
// repo makes the quantized / sparse variants directly comparable.
#pragma once

#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::num {

/// y = W * x. W is (m x n) row-major, x has n elements, y has m.
void gemv(const Matrix& w, std::span<const float> x, std::span<float> y);

/// y += W * x.
void gemv_accum(const Matrix& w, std::span<const float> x,
                std::span<float> y);

/// y += W[:, col] * scale — one column accumulation, the building block of
/// the input-stationary dataflow the accelerator uses (Fig. 5): each
/// non-zero input element broadcasts down one weight column.
void axpy_col(const Matrix& w, Index col, float scale, std::span<float> y);

/// C = A * B (row-major, blocked for L1 reuse). A is (m x k), B (k x n).
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T * B. A is (m x k), B is (m x n), C is (k x n). This is the
/// weight-gradient shape in BPTT (dW = x^T * dGates).
void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T. A is (m x k), B is (n x k), C is (m x n). This is the
/// input-gradient shape in BPTT (dx = dGates * W^T is expressed as
/// gemm_a_bt with W stored (4dh x dx)).
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// out = a (elementwise*) b.
void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/// out += a (elementwise*) b.
void hadamard_accum(std::span<const float> a, std::span<const float> b,
                    std::span<float> out);

/// y += b for every row of the (rows x cols) matrix view y.
void add_bias_rows(Matrix& y, std::span<const float> b);

/// Sum of squares of all elements.
float squared_norm(std::span<const float> x);

/// Scales x in place by alpha.
void scale(std::span<float> x, float alpha);

}  // namespace zss::num
