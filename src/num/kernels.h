// Dense float kernels shared by training, inference and reference checks.
//
// The library never links an external BLAS: the paper's workloads are
// small enough (d_h <= 1000) that in-repo loops reach the throughput a
// laptop-scale reproduction needs, and keeping the loops in repo makes
// the quantized / sparse variants directly comparable. See
// reference_kernels.h for the unblocked loops the tests and
// microbenchmarks compare against.
//
// The hot kernels (gemm, gemm_a_bt, gemv, sparse_accum_rows,
// sparse_accum_rows_multi, axpy) dispatch to a SIMD backend selected
// once at startup via cpuid —
// explicit AVX2 intrinsics on x86, NEON on aarch64, the portable
// blocked loops otherwise; override with ZSS_KERNEL_BACKEND. See
// num/simd/backend.h and docs/architecture.md.
//
// Determinism contract (docs/exactness.md): every multiply-accumulate
// goes through madd() below (or the backend's lane-exact equivalent),
// and neither blocking nor vectorization reorders the additions that
// feed one output element (they only interleave independent accumulator
// chains). The sparse skip path and the dense path therefore produce
// bit-identical results — skipped terms are exact IEEE identities,
// madd(0, w, acc) == acc — which is the contract sparse_inference.h
// documents.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::num {

/// The one multiply-accumulate used by every kernel (blocked and
/// reference). On targets with hardware FMA this is a single fused op;
/// routing all kernels through it keeps the rounding of the sparse and
/// dense paths identical regardless of how the compiler would otherwise
/// contract each loop.
inline float madd(float a, float b, float acc) {
#ifdef FP_FAST_FMAF
  return std::fmaf(a, b, acc);
#else
  return a * b + acc;
#endif
}

/// Whether madd() fuses in the base (non-SIMD) translation units of this
/// build. SIMD backends whose FMA flavour would differ refuse to
/// activate, because mixing fused and unfused chains breaks the 0-ULP
/// contract (the asymmetry bug PR 1 fixed — docs/exactness.md).
bool madd_is_fused();

/// The one int8 multiply-accumulate (docs/exactness.md "int8"): the
/// exact i32 product of a and b added to acc modulo 2^32 — i.e. plain
/// two's-complement wraparound, exactly what SIMD paddd/vaddq_s32 do.
/// The detour through uint32 keeps the wrap defined behaviour in C++
/// (a plain signed += would be UB on overflow, and the sanitize CI job
/// would rightly flag it). Because wrapping addition is associative and
/// commutative, any regrouping of these ops is bit-identical — the int8
/// kernels' whole exactness story.
inline std::int32_t madd_i8(std::int8_t a, std::int8_t b, std::int32_t acc) {
  const std::int32_t p =
      static_cast<std::int32_t>(a) * static_cast<std::int32_t>(b);
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(acc) +
                                   static_cast<std::uint32_t>(p));
}

/// i32 wraparound add (same defined-overflow story as madd_i8); used
/// wherever two i32 partial accumulations are combined.
inline std::int32_t add_i32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

/// y = W * x. W is (m x n) row-major, x has n elements, y has m.
void gemv(const Matrix& w, std::span<const float> x, std::span<float> y);

/// y += W * x.
void gemv_accum(const Matrix& w, std::span<const float> x,
                std::span<float> y);

/// y += W[:, col] * scale — one column accumulation, the building block of
/// the input-stationary dataflow the accelerator uses (Fig. 5): each
/// non-zero input element broadcasts down one weight column. Strided and
/// cache-hostile for row-major W; software inference uses
/// sparse_accum_rows over a packed (transposed) layout instead.
void axpy_col(const Matrix& w, Index col, float scale, std::span<float> y);

/// out.row(b) += values[e * B + b] * packed.row(positions[e]) for every
/// kept position e and batch lane b (B = out.rows()). `packed` is the
/// transposed weight layout of PackedLstmWeights: row j holds all gate
/// weights of state position j contiguously, so each kept position is one
/// streaming pass that is reused by every batch lane while it sits in
/// cache. Lanes whose value is exactly zero are skipped (IEEE identity).
void sparse_accum_rows(const Matrix& packed, std::span<const Index> positions,
                       std::span<const float> values, Matrix& out);

/// Per-lane (CSR) variant of sparse_accum_rows: for each batch lane b,
/// out.row(b) += values[e] * packed.row(positions[e]) over lane b's own
/// kept entries e in [row_start[b], row_start[b+1]), ascending. Unlike
/// the intersected form, every lane accumulates exactly its own kept
/// positions, so the skipped work scales with per-lane sparsity at any
/// batch size (this is the batched skip path of SparseLstmEngine).
/// `row_start` has out.rows() + 1 entries; positions within a lane must
/// be strictly ascending — the exactness contract defines a lane's
/// chain in position order, and backends schedule around it (checked).
void sparse_accum_rows_multi(const Matrix& packed,
                             std::span<const Index> positions,
                             std::span<const Index> row_start,
                             std::span<const float> values, Matrix& out);

/// Overwrite flavour of sparse_accum_rows_multi: out.row(b) *is* the
/// lane's accumulation — out is treated as uninitialized, every element
/// is written (lanes with no entries get zeros). Bit-identical to
/// zero-filling out and calling sparse_accum_rows_multi (each chain
/// starts from madd(v0, row0[j], +0.0f), the same first op the
/// accumulate flavour performs over a zero fill), so callers on the
/// per-step batched path can skip the staging matrix's zero fill
/// entirely (256 KB per step at batch 8, dh 1000 — core/
/// sparse_inference.cc).
void sparse_accum_rows_multi_overwrite(const Matrix& packed,
                                       std::span<const Index> positions,
                                       std::span<const Index> row_start,
                                       std::span<const float> values,
                                       Matrix& out);

/// C = A * B (row-major, i-k-j order, rows split by parallel_for).
/// Exact zeros in A are skipped — one-hot inputs and pruned states cost
/// only their non-zero rows of work, and the skip is an IEEE identity.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T * B. A is (m x k), B is (m x n), C is (k x n). This is the
/// weight-gradient shape in BPTT (dW = x^T * dGates).
void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T. A is (m x k), B is (n x k), C is (m x n). This is the
/// input-gradient shape in BPTT (dx = dGates * W^T is expressed as
/// gemm_a_bt with W stored (4dh x dx)) and the dense-baseline recurrent
/// matvec shape. Register-blocked 2x4 so eight independent FMA chains
/// hide latency; each output element still accumulates in ascending k.
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

// --- int8 kernels (i32 accumulation) ---------------------------------
// Quantized twins of the three hot inference kernels, dispatched
// through the same backend registry (slots added per-backend; a backend
// without them falls back to the scalar table per call). Contract:
// bit-identical to num::reference's int8 twins on every backend — see
// madd_i8 above for why any summation order qualifies.

/// C (i32) = A * B^T for int8 A (m x k) and B (n x k); C is resized to
/// (m x n) and every element overwritten.
void gemm_a_bt_i8(const MatrixI8& a, const MatrixI8& b, MatrixI32& c);

/// Int8 twin of sparse_accum_rows (position-major values, zero lanes
/// skipped — an exact identity in integer arithmetic too).
void sparse_accum_rows_i8(const MatrixI8& packed,
                          std::span<const Index> positions,
                          std::span<const std::int8_t> values, MatrixI32& out);

/// Int8 twin of sparse_accum_rows_multi (per-lane CSR; accumulate
/// flavour only — the engine zero-fills its i32 staging with a memset).
void sparse_accum_rows_multi_i8(const MatrixI8& packed,
                                std::span<const Index> positions,
                                std::span<const Index> row_start,
                                std::span<const std::int8_t> values,
                                MatrixI32& out);

/// out = in^T. in is (m x n), out becomes (n x m).
void transpose(const Matrix& in, Matrix& out);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// out = a (elementwise*) b.
void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/// out += a (elementwise*) b.
void hadamard_accum(std::span<const float> a, std::span<const float> b,
                    std::span<float> out);

/// y += b for every row of the (rows x cols) matrix view y.
void add_bias_rows(Matrix& y, std::span<const float> b);

/// Sum of squares of all elements.
float squared_norm(std::span<const float> x);

/// Scales x in place by alpha.
void scale(std::span<float> x, float alpha);

}  // namespace zss::num
