// Dense row-major matrix and vector containers.
//
// These are deliberately small: owning containers with bounds-checked
// element access in debug flavour (via ZSS_EXPECTS) plus raw row spans for
// kernels. All heavy math lives in kernels.h so that the accelerator
// model, the quantized path and the training path share one set of
// well-tested loops.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "num/types.h"

namespace zss::num {

/// Owning row-major matrix of trivially copyable scalars.
template <typename T>
class Mat {
 public:
  Mat() = default;

  Mat(Index rows, Index cols, T fill = T{}) { resize(rows, cols, fill); }

  void resize(Index rows, Index cols, T fill = T{}) {
    ZSS_EXPECTS(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), fill);
  }

  /// Reshapes without touching retained contents (elements appended when
  /// the store grows are zero). For scratch buffers whose every element
  /// the next kernel overwrites — skips resize()'s full fill pass.
  void reshape(Index rows, Index cols) {
    ZSS_EXPECTS(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows * cols));
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  /// Elements the backing store can hold without reallocating. resize()
  /// within capacity reuses the buffer, which is what lets Workspace
  /// guarantee allocation-free steady-state loops.
  Index capacity() const { return static_cast<Index>(data_.capacity()); }

  T& operator()(Index r, Index c) {
    ZSS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& operator()(Index r, Index c) const {
    ZSS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Mutable view of one row.
  std::span<T> row(Index r) {
    ZSS_EXPECTS(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const T> row(Index r) const {
    ZSS_EXPECTS(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Mat& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Mat& a, const Mat& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<T> data_;
};

using Matrix = Mat<float>;
using MatrixI8 = Mat<std::int8_t>;
using MatrixI32 = Mat<std::int32_t>;

/// Owning float vector with the same contract style as Mat.
template <typename T>
class Vec {
 public:
  Vec() = default;
  explicit Vec(Index n, T fill = T{}) { resize(n, fill); }

  void resize(Index n, T fill = T{}) {
    ZSS_EXPECTS(n >= 0);
    data_.assign(static_cast<std::size_t>(n), fill);
  }

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T& operator[](Index i) {
    ZSS_EXPECTS(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  const T& operator[](Index i) const {
    ZSS_EXPECTS(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  friend bool operator==(const Vec& a, const Vec& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<T> data_;
};

using Vector = Vec<float>;
using VectorI8 = Vec<std::int8_t>;
using VectorI32 = Vec<std::int32_t>;

}  // namespace zss::num
