#include "num/rng.h"

#include <cmath>

namespace zss::num {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += kSplitMix64Golden;
  return splitmix64_mix(x);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ZSS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  ZSS_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

Index Rng::below(Index n) {
  ZSS_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = max() - max() % un;
  std::uint64_t v = 0;
  do {
    v = (*this)();
  } while (v >= limit);
  return static_cast<Index>(v % un);
}

bool Rng::bernoulli(double p) {
  ZSS_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

Rng Rng::split() {
  Rng child;
  child.reseed((*this)());
  return child;
}

}  // namespace zss::num
