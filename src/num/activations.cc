#include "num/activations.h"

#include <algorithm>

namespace zss::num {

void softmax(std::span<float> logits) {
  ZSS_EXPECTS(!logits.empty());
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (float& v : logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  ZSS_ASSERT(sum > 0.0f);
  for (float& v : logits) v /= sum;
}

void log_softmax(std::span<const float> logits, std::span<float> out) {
  ZSS_EXPECTS(logits.size() == out.size());
  ZSS_EXPECTS(!logits.empty());
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) sum += std::exp(logits[i] - mx);
  const float lse = mx + std::log(sum);
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - lse;
}

Index argmax(std::span<const float> v) {
  ZSS_EXPECTS(!v.empty());
  return static_cast<Index>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace zss::num
