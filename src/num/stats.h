// Small statistics helpers used by the pruner (quantile-based thresholds),
// the sparsity reports and the test suite.
#pragma once

#include <span>
#include <vector>

#include "num/types.h"

namespace zss::num {

double mean(std::span<const float> v);

double variance(std::span<const float> v);

/// q-quantile (0 <= q <= 1) of |v| computed by partial sort of a copy.
/// quantile_abs(v, 0.9) returns the magnitude below which 90% of the
/// elements fall — exactly the threshold that prunes 90% of a vector.
float quantile_abs(std::span<const float> v, double q);

/// Same computation, but the magnitude copy lives in `scratch` so hot
/// loops (per-timestep pruning) allocate nothing once it is warm.
float quantile_abs(std::span<const float> v, double q,
                   std::vector<float>& scratch);

/// Fraction of elements that are exactly zero.
double zero_fraction(std::span<const float> v);

/// Fraction of elements with |x| < threshold.
double below_threshold_fraction(std::span<const float> v, float threshold);

/// Histogram of |v| with `bins` equal-width buckets over [0, max|v|].
std::vector<Index> magnitude_histogram(std::span<const float> v, Index bins);

}  // namespace zss::num
