#include "num/reference_kernels.h"

#include "num/kernels.h"

namespace zss::num::reference {

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  for (Index i = 0; i < m; ++i) {
    const float* row = w.data() + i * n;
    float acc = 0.0f;
    for (Index j = 0; j < n; ++j) {
      acc = madd(row[j], x[static_cast<std::size_t>(j)], acc);
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.rows());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  c.resize(m, n, 0.0f);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (Index kk = 0; kk < k; ++kk) {
        const float av = a(i, kk);
        if (av == 0.0f) continue;  // same skip semantics as the blocked gemm
        acc = madd(av, b(kk, j), acc);
      }
      c(i, j) = acc;
    }
  }
}

void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.rows() == b.rows());
  ZSS_EXPECTS(c.rows() == a.cols() && c.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  for (Index i = 0; i < m; ++i) {
    for (Index kk = 0; kk < k; ++kk) {
      const float av = a(i, kk);
      if (av == 0.0f) continue;
      for (Index j = 0; j < n; ++j) {
        c(kk, j) = madd(av, b(i, j), c(kk, j));
      }
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.resize(m, n, 0.0f);
  for (Index i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (Index j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (Index kk = 0; kk < k; ++kk) acc = madd(arow[kk], brow[kk], acc);
      c(i, j) = acc;
    }
  }
}

void sparse_accum_rows(const Matrix& packed, std::span<const Index> positions,
                       std::span<const float> values, Matrix& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(values.size() ==
              positions.size() * static_cast<std::size_t>(batch));
  for (std::size_t e = 0; e < positions.size(); ++e) {
    const Index pos = positions[e];
    ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;
      for (Index j = 0; j < n; ++j) {
        out(b, j) = madd(v, packed(pos, j), out(b, j));
      }
    }
  }
}

void sparse_accum_rows_multi(const Matrix& packed,
                             std::span<const Index> positions,
                             std::span<const Index> row_start,
                             std::span<const float> values, Matrix& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(row_start.size() == static_cast<std::size_t>(batch) + 1);
  ZSS_EXPECTS(values.size() == positions.size());
  for (Index b = 0; b < batch; ++b) {
    for (Index e = row_start[static_cast<std::size_t>(b)];
         e < row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const Index pos = positions[static_cast<std::size_t>(e)];
      ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
      const float v = values[static_cast<std::size_t>(e)];
      for (Index j = 0; j < n; ++j) {
        out(b, j) = madd(v, packed(pos, j), out(b, j));
      }
    }
  }
}

void sparse_accum_rows_multi_overwrite(const Matrix& packed,
                                       std::span<const Index> positions,
                                       std::span<const Index> row_start,
                                       std::span<const float> values,
                                       Matrix& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(row_start.size() == static_cast<std::size_t>(batch) + 1);
  ZSS_EXPECTS(values.size() == positions.size());
  // The defining semantics: every element starts from +0.0f (exactly
  // what a zero fill would store) and then accumulates its lane's
  // chain in ascending position order — so this is, by construction,
  // fill(0.0f) followed by sparse_accum_rows_multi.
  for (Index b = 0; b < batch; ++b) {
    for (Index j = 0; j < n; ++j) out(b, j) = 0.0f;
    for (Index e = row_start[static_cast<std::size_t>(b)];
         e < row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const Index pos = positions[static_cast<std::size_t>(e)];
      ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
      const float v = values[static_cast<std::size_t>(e)];
      for (Index j = 0; j < n; ++j) {
        out(b, j) = madd(v, packed(pos, j), out(b, j));
      }
    }
  }
}

void gemm_a_bt_i8(const MatrixI8& a, const MatrixI8& b, MatrixI32& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.resize(m, n, 0);
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* arow = a.data() + i * k;
    for (Index j = 0; j < n; ++j) {
      const std::int8_t* brow = b.data() + j * k;
      std::int32_t acc = 0;
      for (Index kk = 0; kk < k; ++kk) acc = madd_i8(arow[kk], brow[kk], acc);
      c(i, j) = acc;
    }
  }
}

void sparse_accum_rows_i8(const MatrixI8& packed,
                          std::span<const Index> positions,
                          std::span<const std::int8_t> values,
                          MatrixI32& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(values.size() ==
              positions.size() * static_cast<std::size_t>(batch));
  for (std::size_t e = 0; e < positions.size(); ++e) {
    const Index pos = positions[e];
    ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
    for (Index b = 0; b < batch; ++b) {
      const std::int8_t v = values[e * static_cast<std::size_t>(batch) +
                                   static_cast<std::size_t>(b)];
      if (v == 0) continue;
      for (Index j = 0; j < n; ++j) {
        out(b, j) = madd_i8(v, packed(pos, j), out(b, j));
      }
    }
  }
}

void sparse_accum_rows_multi_i8(const MatrixI8& packed,
                                std::span<const Index> positions,
                                std::span<const Index> row_start,
                                std::span<const std::int8_t> values,
                                MatrixI32& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(row_start.size() == static_cast<std::size_t>(batch) + 1);
  ZSS_EXPECTS(values.size() == positions.size());
  for (Index b = 0; b < batch; ++b) {
    for (Index e = row_start[static_cast<std::size_t>(b)];
         e < row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const Index pos = positions[static_cast<std::size_t>(e)];
      ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
      const std::int8_t v = values[static_cast<std::size_t>(e)];
      for (Index j = 0; j < n; ++j) {
        out(b, j) = madd_i8(v, packed(pos, j), out(b, j));
      }
    }
  }
}

}  // namespace zss::num::reference
