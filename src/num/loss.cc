#include "num/loss.h"

#include <algorithm>
#include <cmath>

#include "num/activations.h"

namespace zss::num {

double softmax_xent(const Matrix& logits, std::span<const Index> targets,
                    Matrix* dlogits) {
  ZSS_EXPECTS(logits.rows() == static_cast<Index>(targets.size()));
  ZSS_EXPECTS(logits.rows() > 0);
  const Index rows = logits.rows();
  const Index cols = logits.cols();
  if (dlogits != nullptr) dlogits->resize(rows, cols, 0.0f);

  double total_nll = 0.0;
  std::vector<float> lsm(static_cast<std::size_t>(cols));
  for (Index r = 0; r < rows; ++r) {
    const Index t = targets[static_cast<std::size_t>(r)];
    ZSS_EXPECTS(t >= 0 && t < cols);
    log_softmax(logits.row(r), lsm);
    total_nll -= lsm[static_cast<std::size_t>(t)];
    if (dlogits != nullptr) {
      auto drow = dlogits->row(r);
      const float inv_rows = 1.0f / static_cast<float>(rows);
      for (Index c = 0; c < cols; ++c) {
        drow[static_cast<std::size_t>(c)] =
            (std::exp(lsm[static_cast<std::size_t>(c)]) -
             (c == t ? 1.0f : 0.0f)) *
            inv_rows;
      }
    }
  }
  return total_nll / static_cast<double>(rows);
}

double ppw_from_nll(double nll_nats) {
  // Clamp to avoid inf for badly diverged models in tests.
  return std::exp(std::min(nll_nats, 30.0));
}

double error_rate_percent(const Matrix& logits,
                          std::span<const Index> targets) {
  ZSS_EXPECTS(logits.rows() == static_cast<Index>(targets.size()));
  ZSS_EXPECTS(logits.rows() > 0);
  Index wrong = 0;
  for (Index r = 0; r < logits.rows(); ++r) {
    if (argmax(logits.row(r)) != targets[static_cast<std::size_t>(r)]) ++wrong;
  }
  return 100.0 * static_cast<double>(wrong) /
         static_cast<double>(logits.rows());
}

}  // namespace zss::num
