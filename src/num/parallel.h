// Minimal fork-join range parallelism for the kernel layer.
//
// parallel_for partitions [begin, end) into at most num_threads()
// contiguous chunks and runs the body on each. Every output element is
// produced by exactly one chunk with the same serial code the
// single-threaded path runs, so results are bit-identical at any thread
// count. The default is one thread: callers opt in via set_num_threads,
// and the single-threaded path is a plain inline call with no heap
// traffic (the zero-allocation contract of the inference engine).
#pragma once

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "num/types.h"

namespace zss::num {

/// Worker count used by parallel_for. Always >= 1; defaults to 1.
int num_threads();

/// Sets the global worker count (>= 1). Not safe to call concurrently
/// with running kernels.
void set_num_threads(int n);

/// Iterations below which a chunk is not worth a thread spawn.
inline constexpr Index kParallelGrain = 4;

/// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end)
/// with an explicit grain: at most one chunk per `grain` iterations.
/// The row kernels use the default grain (kParallelGrain) — a handful
/// of rows is not worth a spawn — but callers whose items are whole
/// engine steps (the serving layer's per-layer pipeline) pass grain 1
/// so even a 2-item range can split. With num_threads() == 1 (the
/// default) this is a direct call either way.
template <typename F>
void parallel_for(Index begin, Index end, F&& fn, Index grain) {
  const Index n = end - begin;
  if (n <= 0) return;
  const auto max_chunks = (n + grain - 1) / grain;
  const Index chunks = std::min<Index>(num_threads(), max_chunks);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(chunks - 1));
  const Index per = n / chunks;
  const Index extra = n % chunks;
  Index lo = begin;
  for (Index c = 0; c < chunks; ++c) {
    const Index hi = lo + per + (c < extra ? 1 : 0);
    if (c + 1 == chunks) {
      fn(lo, hi);  // run the last chunk on the calling thread
    } else {
      workers.emplace_back([&fn, lo, hi] { fn(lo, hi); });
    }
    lo = hi;
  }
  for (auto& w : workers) w.join();
}

/// Default-grain partition (kParallelGrain) — the kernel-layer entry
/// point.
template <typename F>
void parallel_for(Index begin, Index end, F&& fn) {
  parallel_for(begin, end, std::forward<F>(fn), kParallelGrain);
}

}  // namespace zss::num
