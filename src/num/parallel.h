// Minimal fork-join range parallelism for the kernel layer.
//
// parallel_for partitions [begin, end) into at most num_threads()
// contiguous chunks and runs the body on each. Every output element is
// produced by exactly one chunk with the same serial code the
// single-threaded path runs, so results are bit-identical at any thread
// count. The default is one thread: callers opt in via set_num_threads,
// and the single-threaded path is a plain inline call with no heap
// traffic (the zero-allocation contract of the inference engine).
#pragma once

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "num/types.h"

namespace zss::num {

/// Worker count used by parallel_for. Always >= 1; defaults to 1.
int num_threads();

/// Sets the global worker count (>= 1). Not safe to call concurrently
/// with running kernels.
void set_num_threads(int n);

/// Iterations below which a chunk is not worth a thread spawn.
inline constexpr Index kParallelGrain = 4;

/// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end).
/// With num_threads() == 1 (the default) this is a direct call.
template <typename F>
void parallel_for(Index begin, Index end, F&& fn) {
  const Index n = end - begin;
  if (n <= 0) return;
  const auto max_chunks = (n + kParallelGrain - 1) / kParallelGrain;
  const Index chunks = std::min<Index>(num_threads(), max_chunks);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(chunks - 1));
  const Index per = n / chunks;
  const Index extra = n % chunks;
  Index lo = begin;
  for (Index c = 0; c < chunks; ++c) {
    const Index hi = lo + per + (c < extra ? 1 : 0);
    if (c + 1 == chunks) {
      fn(lo, hi);  // run the last chunk on the calling thread
    } else {
      workers.emplace_back([&fn, lo, hi] { fn(lo, hi); });
    }
    lo = hi;
  }
  for (auto& w : workers) w.join();
}

}  // namespace zss::num
