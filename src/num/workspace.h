// Reusable scratch-buffer arena for per-timestep temporaries.
//
// Hot loops (inference stepping, cell forward) need the same handful of
// intermediate matrices every iteration. A Workspace owns one Matrix per
// slot and re-shapes it on acquisition; because Matrix::resize reuses its
// vector's capacity, the steady state performs zero heap allocations. The
// arena counts the times a slot actually had to grow, which is how tests
// verify the zero-allocation contract.
#pragma once

#include <cstddef>
#include <deque>

#include "num/matrix.h"

namespace zss::num {

class Workspace {
 public:
  /// Returns slot `slot` shaped (rows x cols) with every element set to
  /// `fill`. Allocates only when the slot has never been this large.
  Matrix& mat(std::size_t slot, Index rows, Index cols, float fill = 0.0f);

  /// Like mat() but leaves the contents unspecified (whatever the slot
  /// last held). For buffers a kernel fully overwrites — avoids paying a
  /// fill pass per acquisition on the hot path.
  Matrix& uninit(std::size_t slot, Index rows, Index cols);

  /// Number of times an acquisition had to grow a buffer (or the slot
  /// table). Stable across calls once the workspace is warm.
  std::size_t allocation_count() const { return allocations_; }

  std::size_t slots() const { return slots_.size(); }

 private:
  // Deque, not vector: acquiring a new slot must not invalidate the
  // references handed out for slots already in use this timestep.
  std::deque<Matrix> slots_;
  std::size_t allocations_ = 0;
};

}  // namespace zss::num
