// Common scalar/index types and contract-check macros for the zss library.
//
// Follows the C++ Core Guidelines: interfaces state their expectations
// (I.5/I.6) via ZSS_EXPECTS / ZSS_ENSURES, which abort with a readable
// message instead of invoking undefined behaviour.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace zss {

/// Signed index type used for all sizes and subscripts (ES.100/ES.102:
/// prefer signed arithmetic; mixing is a classic source of bugs).
using Index = std::int64_t;

namespace num {
// Re-exported so call sites in sibling modules can say num::Index
// uniformly with the other num:: vocabulary types.
using zss::Index;
}  // namespace num

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "zss: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}
}  // namespace detail

#define ZSS_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::zss::detail::contract_failure("precondition", #cond,       \
                                            __FILE__, __LINE__))

#define ZSS_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::zss::detail::contract_failure("postcondition", #cond,      \
                                            __FILE__, __LINE__))

#define ZSS_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::zss::detail::contract_failure("invariant", #cond, __FILE__, \
                                            __LINE__))

}  // namespace zss
