#include "num/parallel.h"

namespace zss::num {
namespace {
int g_num_threads = 1;
}  // namespace

int num_threads() { return g_num_threads; }

void set_num_threads(int n) {
  ZSS_EXPECTS(n >= 1);
  g_num_threads = n;
}

}  // namespace zss::num
