// Deterministic pseudo-random number generation.
//
// All stochastic code in the library (initialization, dropout, synthetic
// datasets) draws from this generator so that every experiment is exactly
// reproducible from a seed. The engine is xoshiro256**, seeded through
// SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

#include "num/types.h"

namespace zss::num {

/// SplitMix64's golden-ratio increment.
inline constexpr std::uint64_t kSplitMix64Golden = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 finalizer: bijective avalanche mix of one 64-bit word.
/// Shared by the seeding stream below and by hash-style users (e.g.
/// session->shard pinning in serve/pool.cc) so the constants live in
/// one place.
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
///
/// Not thread-safe; create one per thread of work. Satisfies the
/// UniformRandomBitGenerator requirements so it can also feed <random>
/// distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  Index below(Index n);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Forks an independent stream (useful for per-worker determinism).
  Rng split();

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace zss::num
