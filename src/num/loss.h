// Cross-entropy loss and the task metrics the paper reports:
// bits-per-character (Fig. 2), perplexity-per-word (Fig. 3) and
// misclassification error rate (Fig. 4).
#pragma once

#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::num {

/// Mean negative log-likelihood (nats) of `targets` under row-wise
/// softmax of `logits`; also writes dL/dlogits (softmax - onehot) / rows
/// into `dlogits` when non-null.
double softmax_xent(const Matrix& logits, std::span<const Index> targets,
                    Matrix* dlogits);

/// Bits per character from mean NLL in nats.
inline double bpc_from_nll(double nll_nats) {
  return nll_nats / 0.6931471805599453;  // ln 2
}

/// Word perplexity from mean NLL in nats.
double ppw_from_nll(double nll_nats);

/// Misclassification error rate (%) given logits rows and target labels.
double error_rate_percent(const Matrix& logits, std::span<const Index> targets);

}  // namespace zss::num
