#include "num/workspace.h"

namespace zss::num {

Matrix& Workspace::mat(std::size_t slot, Index rows, Index cols, float fill) {
  ZSS_EXPECTS(rows >= 0 && cols >= 0);
  if (slot >= slots_.size()) {
    slots_.resize(slot + 1);
    ++allocations_;
  }
  Matrix& m = slots_[slot];
  if (rows * cols > m.capacity()) ++allocations_;
  m.resize(rows, cols, fill);
  return m;
}

Matrix& Workspace::uninit(std::size_t slot, Index rows, Index cols) {
  ZSS_EXPECTS(rows >= 0 && cols >= 0);
  if (slot >= slots_.size()) {
    slots_.resize(slot + 1);
    ++allocations_;
  }
  Matrix& m = slots_[slot];
  if (rows * cols > m.capacity()) ++allocations_;
  m.reshape(rows, cols);
  return m;
}

}  // namespace zss::num
