#include "num/kernels.h"

#include <cmath>

#include "num/parallel.h"
#include "num/simd/backend.h"

namespace zss::num {

bool madd_is_fused() {
#ifdef FP_FAST_FMAF
  return true;
#else
  return false;
#endif
}

// The hot kernels below validate shapes, size outputs and partition row
// ranges here, then hand the raw buffers to the runtime-selected SIMD
// backend (num/simd/backend.h). Every backend honours the same
// serial-chain contract, so which one runs never changes the bits.

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  simd::active_backend().gemv(w.data(), x.data(), y.data(), w.rows(),
                              w.cols());
}

void gemv_accum(const Matrix& w, std::span<const float> x,
                std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* __restrict wp = w.data();
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict r0 = wp + i * n;
    const float* __restrict r1 = r0 + n;
    const float* __restrict r2 = r1 + n;
    const float* __restrict r3 = r2 + n;
    float a0 = yp[i], a1 = yp[i + 1], a2 = yp[i + 2], a3 = yp[i + 3];
    for (Index j = 0; j < n; ++j) {
      const float xv = xp[j];
      a0 = madd(r0[j], xv, a0);
      a1 = madd(r1[j], xv, a1);
      a2 = madd(r2[j], xv, a2);
      a3 = madd(r3[j], xv, a3);
    }
    yp[i] = a0;
    yp[i + 1] = a1;
    yp[i + 2] = a2;
    yp[i + 3] = a3;
  }
  for (; i < m; ++i) {
    const float* __restrict row = wp + i * n;
    float acc = yp[i];
    for (Index j = 0; j < n; ++j) acc = madd(row[j], xp[j], acc);
    yp[i] = acc;
  }
}

void axpy_col(const Matrix& w, Index col, float scale, std::span<float> y) {
  ZSS_EXPECTS(col >= 0 && col < w.cols());
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* __restrict wp = w.data() + col;
  float* __restrict yp = y.data();
  for (Index i = 0; i < m; ++i) {
    yp[i] = madd(wp[i * n], scale, yp[i]);
  }
}

void sparse_accum_rows(const Matrix& packed, std::span<const Index> positions,
                       std::span<const float> values, Matrix& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(values.size() == positions.size() * static_cast<std::size_t>(batch));
  for (const Index pos : positions) {
    ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
  }
  simd::active_backend().sparse_accum_rows(packed.data(), positions.data(),
                                           positions.size(), values.data(),
                                           out.data(), batch, n);
}

namespace {

void validate_multi_args(const Matrix& packed, std::span<const Index> positions,
                         std::span<const Index> row_start,
                         std::span<const float> values, const Matrix& out) {
  const Index batch = out.rows();
  ZSS_EXPECTS(packed.cols() == out.cols());
  ZSS_EXPECTS(row_start.size() == static_cast<std::size_t>(batch) + 1);
  ZSS_EXPECTS(row_start[0] == 0);
  ZSS_EXPECTS(row_start[static_cast<std::size_t>(batch)] ==
              static_cast<Index>(positions.size()));
  ZSS_EXPECTS(values.size() == positions.size());
  for (Index b = 0; b < batch; ++b) {
    ZSS_EXPECTS(row_start[static_cast<std::size_t>(b)] <=
                row_start[static_cast<std::size_t>(b + 1)]);
    // Strictly ascending within each lane: the exactness contract
    // defines a lane's chain in position order, and backends are free
    // to schedule around that assumption (the merge-based AVX2 kernel
    // relies on it).
    for (Index e = row_start[static_cast<std::size_t>(b)];
         e < row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const Index pos = positions[static_cast<std::size_t>(e)];
      ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
      ZSS_EXPECTS(e == row_start[static_cast<std::size_t>(b)] ||
                  positions[static_cast<std::size_t>(e - 1)] < pos);
    }
  }
}

}  // namespace

void sparse_accum_rows_multi(const Matrix& packed,
                             std::span<const Index> positions,
                             std::span<const Index> row_start,
                             std::span<const float> values, Matrix& out) {
  validate_multi_args(packed, positions, row_start, values, out);
  simd::active_backend().sparse_accum_rows_multi(
      packed.data(), positions.data(), row_start.data(), values.data(),
      out.data(), out.rows(), out.cols());
}

void sparse_accum_rows_multi_overwrite(const Matrix& packed,
                                       std::span<const Index> positions,
                                       std::span<const Index> row_start,
                                       std::span<const float> values,
                                       Matrix& out) {
  validate_multi_args(packed, positions, row_start, values, out);
  simd::active_backend().sparse_accum_rows_multi_overwrite(
      packed.data(), positions.data(), row_start.data(), values.data(),
      out.data(), out.rows(), out.cols());
}

namespace {

// The backend whose int8 slots serve this call. Backends that predate
// the int8 table (or out-of-tree tables that only grew the fp32 slots)
// leave the slots nullptr; rather than crash through a null pointer —
// or reject the whole backend, penalizing its fp32 kernels — dispatch
// degrades per call to the scalar table, whose int8 kernels are always
// present. Same spirit as the env-override fallback in simd/dispatch.cc
// but slot-granular. Covered by backend_dispatch_test.cc.
const simd::KernelBackend& i8_backend() {
  const simd::KernelBackend& active = simd::active_backend();
  return active.implemented_i8() ? active : simd::kScalarBackend;
}

}  // namespace

void gemm_a_bt_i8(const MatrixI8& a, const MatrixI8& b, MatrixI32& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.reshape(m, n);  // every output element is stored below; no fill pass
  const auto* backend = &i8_backend();
  const std::int8_t* ap = a.data();
  const std::int8_t* bp = b.data();
  std::int32_t* cp = c.data();
  parallel_for(Index{0}, m, [=](Index i0, Index i1) {
    backend->gemm_a_bt_i8(ap + i0 * k, bp, cp + i0 * n, i1 - i0, k, n);
  });
}

void sparse_accum_rows_i8(const MatrixI8& packed,
                          std::span<const Index> positions,
                          std::span<const std::int8_t> values,
                          MatrixI32& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(values.size() ==
              positions.size() * static_cast<std::size_t>(batch));
  for (const Index pos : positions) {
    ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
  }
  i8_backend().sparse_accum_rows_i8(packed.data(), positions.data(),
                                    positions.size(), values.data(),
                                    out.data(), batch, n);
}

void sparse_accum_rows_multi_i8(const MatrixI8& packed,
                                std::span<const Index> positions,
                                std::span<const Index> row_start,
                                std::span<const std::int8_t> values,
                                MatrixI32& out) {
  // Same CSR validation as the fp32 twin (strict ascent per lane; the
  // shared merge schedule relies on it).
  const Index batch = out.rows();
  ZSS_EXPECTS(packed.cols() == out.cols());
  ZSS_EXPECTS(row_start.size() == static_cast<std::size_t>(batch) + 1);
  ZSS_EXPECTS(row_start[0] == 0);
  ZSS_EXPECTS(row_start[static_cast<std::size_t>(batch)] ==
              static_cast<Index>(positions.size()));
  ZSS_EXPECTS(values.size() == positions.size());
  for (Index b = 0; b < batch; ++b) {
    ZSS_EXPECTS(row_start[static_cast<std::size_t>(b)] <=
                row_start[static_cast<std::size_t>(b + 1)]);
    for (Index e = row_start[static_cast<std::size_t>(b)];
         e < row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const Index pos = positions[static_cast<std::size_t>(e)];
      ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
      ZSS_EXPECTS(e == row_start[static_cast<std::size_t>(b)] ||
                  positions[static_cast<std::size_t>(e - 1)] < pos);
    }
  }
  i8_backend().sparse_accum_rows_multi_i8(
      packed.data(), positions.data(), row_start.data(), values.data(),
      out.data(), out.rows(), out.cols());
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.rows());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  c.resize(m, n, 0.0f);
  const auto* backend = &simd::active_backend();
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // Rows of C are independent, so the row range is partitioned.
  parallel_for(Index{0}, m, [=](Index i0, Index i1) {
    backend->gemm_rows(ap + i0 * k, bp, cp + i0 * n, i1 - i0, k, n);
  });
}

void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.rows() == b.rows());
  ZSS_EXPECTS(c.rows() == a.cols() && c.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  float* __restrict cp = c.data();
  for (Index i = 0; i < m; ++i) {
    const float* __restrict arow = ap + i * k;
    const float* __restrict brow = bp + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* __restrict crow = cp + kk * n;
      for (Index j = 0; j < n; ++j) crow[j] = madd(av, brow[j], crow[j]);
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.reshape(m, n);  // every output element is stored below; no fill pass
  const auto* backend = &simd::active_backend();
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  parallel_for(Index{0}, m, [=](Index i0, Index i1) {
    backend->gemm_a_bt_rows(ap + i0 * k, bp, cp + i0 * n, i1 - i0, k, n);
  });
}

void transpose(const Matrix& in, Matrix& out) {
  const Index m = in.rows();
  const Index n = in.cols();
  out.reshape(n, m);  // fully overwritten below
  const float* __restrict ip = in.data();
  float* __restrict op = out.data();
  // Tiled so both the read and write side touch whole cache lines.
  constexpr Index kTile = 16;
  for (Index i0 = 0; i0 < m; i0 += kTile) {
    const Index i1 = std::min(i0 + kTile, m);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(j0 + kTile, n);
      for (Index i = i0; i < i1; ++i) {
        for (Index j = j0; j < j1; ++j) op[j * m + i] = ip[i * n + j];
      }
    }
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  ZSS_EXPECTS(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc = madd(a[i], b[i], acc);
  return acc;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(x.size() == y.size());
  simd::active_backend().axpy(alpha, x.data(), y.data(), x.size());
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void hadamard_accum(std::span<const float> a, std::span<const float> b,
                    std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = madd(a[i], b[i], out[i]);
}

void add_bias_rows(Matrix& y, std::span<const float> b) {
  ZSS_EXPECTS(y.cols() == static_cast<Index>(b.size()));
  const float* __restrict bpv = b.data();
  for (Index i = 0; i < y.rows(); ++i) {
    float* __restrict row = y.data() + i * y.cols();
    for (Index j = 0; j < y.cols(); ++j) row[j] += bpv[j];
  }
}

float squared_norm(std::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) acc = madd(v, v, acc);
  return acc;
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

}  // namespace zss::num
