#include "num/kernels.h"

#include <cmath>

namespace zss::num {

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* wp = w.data();
  for (Index i = 0; i < m; ++i) {
    float acc = 0.0f;
    const float* row = wp + i * n;
    for (Index j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void gemv_accum(const Matrix& w, std::span<const float> x,
                std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* wp = w.data();
  for (Index i = 0; i < m; ++i) {
    float acc = y[static_cast<std::size_t>(i)];
    const float* row = wp + i * n;
    for (Index j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void axpy_col(const Matrix& w, Index col, float scale, std::span<float> y) {
  ZSS_EXPECTS(col >= 0 && col < w.cols());
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* wp = w.data() + col;
  for (Index i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(i)] += wp[i * n] * scale;
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.rows());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  c.resize(m, n, 0.0f);
  // i-k-j loop order: the inner loop streams both B's row and C's row,
  // which vectorizes well and is cache-friendly for row-major storage.
  for (Index i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.rows() == b.rows());
  ZSS_EXPECTS(c.rows() == a.cols() && c.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  for (Index i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    const float* brow = b.data() + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c.data() + kk * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.resize(m, n, 0.0f);
  for (Index i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (Index j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (Index kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  ZSS_EXPECTS(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void hadamard_accum(std::span<const float> a, std::span<const float> b,
                    std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] += a[i] * b[i];
}

void add_bias_rows(Matrix& y, std::span<const float> b) {
  ZSS_EXPECTS(y.cols() == static_cast<Index>(b.size()));
  for (Index i = 0; i < y.rows(); ++i) {
    float* row = y.data() + i * y.cols();
    for (Index j = 0; j < y.cols(); ++j) row[j] += b[static_cast<std::size_t>(j)];
  }
}

float squared_norm(std::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) acc += v * v;
  return acc;
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

}  // namespace zss::num
