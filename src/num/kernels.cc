#include "num/kernels.h"

#include <cmath>

#include "num/parallel.h"

namespace zss::num {

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* __restrict wp = w.data();
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  // Four output rows at a time: each x element is loaded once and feeds
  // four independent accumulator chains, hiding FMA latency without
  // changing any row's accumulation order.
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict r0 = wp + i * n;
    const float* __restrict r1 = r0 + n;
    const float* __restrict r2 = r1 + n;
    const float* __restrict r3 = r2 + n;
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    for (Index j = 0; j < n; ++j) {
      const float xv = xp[j];
      a0 = madd(r0[j], xv, a0);
      a1 = madd(r1[j], xv, a1);
      a2 = madd(r2[j], xv, a2);
      a3 = madd(r3[j], xv, a3);
    }
    yp[i] = a0;
    yp[i + 1] = a1;
    yp[i + 2] = a2;
    yp[i + 3] = a3;
  }
  for (; i < m; ++i) {
    const float* __restrict row = wp + i * n;
    float acc = 0.0f;
    for (Index j = 0; j < n; ++j) acc = madd(row[j], xp[j], acc);
    yp[i] = acc;
  }
}

void gemv_accum(const Matrix& w, std::span<const float> x,
                std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* __restrict wp = w.data();
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict r0 = wp + i * n;
    const float* __restrict r1 = r0 + n;
    const float* __restrict r2 = r1 + n;
    const float* __restrict r3 = r2 + n;
    float a0 = yp[i], a1 = yp[i + 1], a2 = yp[i + 2], a3 = yp[i + 3];
    for (Index j = 0; j < n; ++j) {
      const float xv = xp[j];
      a0 = madd(r0[j], xv, a0);
      a1 = madd(r1[j], xv, a1);
      a2 = madd(r2[j], xv, a2);
      a3 = madd(r3[j], xv, a3);
    }
    yp[i] = a0;
    yp[i + 1] = a1;
    yp[i + 2] = a2;
    yp[i + 3] = a3;
  }
  for (; i < m; ++i) {
    const float* __restrict row = wp + i * n;
    float acc = yp[i];
    for (Index j = 0; j < n; ++j) acc = madd(row[j], xp[j], acc);
    yp[i] = acc;
  }
}

void axpy_col(const Matrix& w, Index col, float scale, std::span<float> y) {
  ZSS_EXPECTS(col >= 0 && col < w.cols());
  ZSS_EXPECTS(w.rows() == static_cast<Index>(y.size()));
  const Index m = w.rows();
  const Index n = w.cols();
  const float* __restrict wp = w.data() + col;
  float* __restrict yp = y.data();
  for (Index i = 0; i < m; ++i) {
    yp[i] = madd(wp[i * n], scale, yp[i]);
  }
}

void sparse_accum_rows(const Matrix& packed, std::span<const Index> positions,
                       std::span<const float> values, Matrix& out) {
  const Index batch = out.rows();
  const Index n = out.cols();
  ZSS_EXPECTS(packed.cols() == n);
  ZSS_EXPECTS(values.size() == positions.size() * static_cast<std::size_t>(batch));
  const float* __restrict pp = packed.data();
  float* __restrict op = out.data();
  for (std::size_t e = 0; e < positions.size(); ++e) {
    const Index pos = positions[e];
    ZSS_EXPECTS(pos >= 0 && pos < packed.rows());
    const float* __restrict row = pp + pos * n;
    // All lanes of this kept position in one pass: the packed row is
    // streamed once into cache and reused by every lane.
    for (Index b = 0; b < batch; ++b) {
      const float v = values[e * static_cast<std::size_t>(batch) +
                             static_cast<std::size_t>(b)];
      if (v == 0.0f) continue;  // lane kept for another lane's sake
      float* __restrict yrow = op + b * n;
      for (Index j = 0; j < n; ++j) yrow[j] = madd(v, row[j], yrow[j]);
    }
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.rows());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  c.resize(m, n, 0.0f);
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  float* __restrict cp = c.data();
  // i-k-j loop order: the inner loop streams both B's row and C's row,
  // which vectorizes well and is cache-friendly for row-major storage.
  // Rows of C are independent, so the row range is partitioned.
  parallel_for(Index{0}, m, [=](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      float* __restrict crow = cp + i * n;
      const float* __restrict arow = ap + i * k;
      for (Index kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* __restrict brow = bp + kk * n;
        for (Index j = 0; j < n; ++j) crow[j] = madd(av, brow[j], crow[j]);
      }
    }
  });
}

void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.rows() == b.rows());
  ZSS_EXPECTS(c.rows() == a.cols() && c.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  float* __restrict cp = c.data();
  for (Index i = 0; i < m; ++i) {
    const float* __restrict arow = ap + i * k;
    const float* __restrict brow = bp + i * n;
    for (Index kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* __restrict crow = cp + kk * n;
      for (Index j = 0; j < n; ++j) crow[j] = madd(av, brow[j], crow[j]);
    }
  }
}

namespace {

// One row of A against a block-of-4 rows of B: four independent
// accumulator chains, each still summing in ascending k.
inline void abt_row_block4(const float* __restrict arow,
                           const float* __restrict b0,
                           const float* __restrict b1,
                           const float* __restrict b2,
                           const float* __restrict b3, Index k,
                           float* __restrict out) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  for (Index kk = 0; kk < k; ++kk) {
    const float av = arow[kk];
    s0 = madd(av, b0[kk], s0);
    s1 = madd(av, b1[kk], s1);
    s2 = madd(av, b2[kk], s2);
    s3 = madd(av, b3[kk], s3);
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

inline float abt_dot(const float* __restrict arow, const float* __restrict brow,
                     Index k) {
  float acc = 0.0f;
  for (Index kk = 0; kk < k; ++kk) acc = madd(arow[kk], brow[kk], acc);
  return acc;
}

}  // namespace

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  ZSS_EXPECTS(a.cols() == b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.rows();
  c.reshape(m, n);  // every output element is stored below; no fill pass
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  float* __restrict cp = c.data();
  // Register blocking 2 (rows of A) x 4 (rows of B): eight independent
  // FMA chains in flight and every loaded B element reused twice. The
  // per-output accumulation order stays ascending-k, so results match
  // the naive dot product chain for chain.
  parallel_for(Index{0}, m, [=](Index i0, Index i1) {
    Index i = i0;
    for (; i + 2 <= i1; i += 2) {
      const float* __restrict a0 = ap + i * k;
      const float* __restrict a1 = a0 + k;
      float* __restrict c0 = cp + i * n;
      float* __restrict c1 = c0 + n;
      Index j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* __restrict b0 = bp + j * k;
        const float* __restrict b1 = b0 + k;
        const float* __restrict b2 = b1 + k;
        const float* __restrict b3 = b2 + k;
        float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
        float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
        for (Index kk = 0; kk < k; ++kk) {
          const float av0 = a0[kk];
          const float av1 = a1[kk];
          const float bv0 = b0[kk];
          const float bv1 = b1[kk];
          const float bv2 = b2[kk];
          const float bv3 = b3[kk];
          s00 = madd(av0, bv0, s00);
          s01 = madd(av0, bv1, s01);
          s02 = madd(av0, bv2, s02);
          s03 = madd(av0, bv3, s03);
          s10 = madd(av1, bv0, s10);
          s11 = madd(av1, bv1, s11);
          s12 = madd(av1, bv2, s12);
          s13 = madd(av1, bv3, s13);
        }
        c0[j] = s00;
        c0[j + 1] = s01;
        c0[j + 2] = s02;
        c0[j + 3] = s03;
        c1[j] = s10;
        c1[j + 1] = s11;
        c1[j + 2] = s12;
        c1[j + 3] = s13;
      }
      for (; j < n; ++j) {
        const float* __restrict brow = bp + j * k;
        c0[j] = abt_dot(a0, brow, k);
        c1[j] = abt_dot(a1, brow, k);
      }
    }
    for (; i < i1; ++i) {
      const float* __restrict arow = ap + i * k;
      float* __restrict crow = cp + i * n;
      Index j = 0;
      for (; j + 4 <= n; j += 4) {
        abt_row_block4(arow, bp + j * k, bp + (j + 1) * k, bp + (j + 2) * k,
                       bp + (j + 3) * k, k, crow + j);
      }
      for (; j < n; ++j) crow[j] = abt_dot(arow, bp + j * k, k);
    }
  });
}

void transpose(const Matrix& in, Matrix& out) {
  const Index m = in.rows();
  const Index n = in.cols();
  out.reshape(n, m);  // fully overwritten below
  const float* __restrict ip = in.data();
  float* __restrict op = out.data();
  // Tiled so both the read and write side touch whole cache lines.
  constexpr Index kTile = 16;
  for (Index i0 = 0; i0 < m; i0 += kTile) {
    const Index i1 = std::min(i0 + kTile, m);
    for (Index j0 = 0; j0 < n; j0 += kTile) {
      const Index j1 = std::min(j0 + kTile, n);
      for (Index i = i0; i < i1; ++i) {
        for (Index j = j0; j < j1; ++j) op[j * m + i] = ip[i * n + j];
      }
    }
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  ZSS_EXPECTS(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc = madd(a[i], b[i], acc);
  return acc;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ZSS_EXPECTS(x.size() == y.size());
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] = madd(alpha, xp[i], yp[i]);
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void hadamard_accum(std::span<const float> a, std::span<const float> b,
                    std::span<float> out) {
  ZSS_EXPECTS(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = madd(a[i], b[i], out[i]);
}

void add_bias_rows(Matrix& y, std::span<const float> b) {
  ZSS_EXPECTS(y.cols() == static_cast<Index>(b.size()));
  const float* __restrict bpv = b.data();
  for (Index i = 0; i < y.rows(); ++i) {
    float* __restrict row = y.data() + i * y.cols();
    for (Index j = 0; j < y.cols(); ++j) row[j] += bpv[j];
  }
}

float squared_norm(std::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) acc = madd(v, v, acc);
  return acc;
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

}  // namespace zss::num
