// Unblocked reference kernels — the seed's scalar loops, kept verbatim
// in structure so tests can assert the blocked kernels in kernels.h are
// numerically equivalent and microbenchmarks can report the speedup of
// the blocked versions against the same machine's scalar baseline.
//
// They share madd() with the production kernels: the reference for an
// output element performs the identical sequence of multiply-accumulates,
// so the sparse path matches within 0 ULP and the GEMMs chain-for-chain.
#pragma once

#include <cstdint>
#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::num::reference {

/// y = W * x, one row dot at a time (single accumulator chain).
void gemv(const Matrix& w, std::span<const float> x, std::span<float> y);

/// C = A * B, textbook i-j-k triple loop.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T * B, the seed's i-k-j accumulation.
void gemm_at_b_accum(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T, one dot product per output element (the seed scalar
/// kernel the acceptance benchmark compares against).
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

/// The packed sparse accumulation computed entry-by-entry, lane-by-lane,
/// element-by-element — the semantics sparse_accum_rows must reproduce
/// bit-for-bit.
void sparse_accum_rows(const Matrix& packed, std::span<const Index> positions,
                       std::span<const float> values, Matrix& out);

/// Per-lane (CSR) packed accumulation, lane-by-lane, entry-by-entry,
/// element-by-element — the semantics sparse_accum_rows_multi must
/// reproduce bit-for-bit. Lane b's entries are
/// positions/values[row_start[b] .. row_start[b+1]).
void sparse_accum_rows_multi(const Matrix& packed,
                             std::span<const Index> positions,
                             std::span<const Index> row_start,
                             std::span<const float> values, Matrix& out);

/// Overwrite flavour: out.row(b) = the lane's accumulation, defined as
/// a +0.0f fill followed by the sparse_accum_rows_multi chains — the
/// semantics num::sparse_accum_rows_multi_overwrite must reproduce
/// bit-for-bit (every element written, entry-less lanes all zeros).
void sparse_accum_rows_multi_overwrite(const Matrix& packed,
                                       std::span<const Index> positions,
                                       std::span<const Index> row_start,
                                       std::span<const float> values,
                                       Matrix& out);

// --- int8 twins -------------------------------------------------------
// The int8 contract (docs/exactness.md "int8"): every product is exact
// in i32 and accumulation is madd_i8's wraparound add, so the loops
// below define the unique answer every backend must reproduce bit-for-
// bit — in ANY summation order, since wrapping addition is associative.

/// C (i32) = A * B^T for int8 A (m x k) and B (n x k), one dot product
/// per output element.
void gemm_a_bt_i8(const MatrixI8& a, const MatrixI8& b, MatrixI32& c);

/// Int8 twin of sparse_accum_rows: position-major values, i32
/// accumulation, zero values skipped (an exact identity in integers).
void sparse_accum_rows_i8(const MatrixI8& packed,
                          std::span<const Index> positions,
                          std::span<const std::int8_t> values, MatrixI32& out);

/// Int8 twin of the per-lane (CSR) accumulation.
void sparse_accum_rows_multi_i8(const MatrixI8& packed,
                                std::span<const Index> positions,
                                std::span<const Index> row_start,
                                std::span<const std::int8_t> values,
                                MatrixI32& out);

}  // namespace zss::num::reference
