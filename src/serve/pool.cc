#include "serve/pool.h"

#include <thread>
#include <vector>

#include "num/rng.h"

namespace zss::serve {

namespace {

// SplitMix64 — the session ids in a trace are often small consecutive
// integers, so a plain modulo would pile them onto the first shards;
// the mix spreads any id distribution.
std::uint64_t mix64(std::uint64_t x) {
  return num::splitmix64_mix(x + num::kSplitMix64Golden);
}

}  // namespace

EnginePool::EnginePool(const ServeModel& model, const PoolConfig& config) {
  build_shards(model, config);
}

EnginePool::EnginePool(const nn::LstmCell& cell,
                       const core::StatePruner& pruner,
                       const PoolConfig& config)
    : legacy_cells_{&cell}, legacy_pruners_{&pruner} {
  ServeModel model;
  model.cells = legacy_cells_;
  model.pruners = legacy_pruners_;
  build_shards(model, config);
}

void EnginePool::build_shards(const ServeModel& model,
                              const PoolConfig& config) {
  ZSS_EXPECTS(config.shards >= 1);
  for (num::Index i = 0; i < config.shards; ++i) {
    shards_.emplace_back(model, config.policy, config.encoder,
                         config.session_ttl, config.quant, config.pipeline);
  }
  const EngineShard& first = shards_.front();
  model_info_.name = model.name;
  model_info_.layers = first.engine().layers();
  model_info_.dh = first.engine().hidden_dim();
  model_info_.vocab =
      model.vocab > 0
          ? model.vocab
          : (model.embedding != nullptr ? model.embedding->vocab()
                                        : first.engine().input_dim());
  model_info_.quant = first.engine().quantized();
  if (!config.spill.dir.empty()) {
    store::Env* env = config.spill.env;
    if (env == nullptr) {
      owned_env_ = std::make_unique<store::PosixEnv>();
      env = owned_env_.get();
    }
    // One segment file per shard: the disk tier inherits the pool's
    // shared-nothing partitioning, so no cross-shard synchronization
    // and no interleaved appends. Records are state_width() wide — the
    // L per-layer rows packed side by side (serve/session.h).
    spills_.reserve(static_cast<std::size_t>(config.shards));
    for (num::Index i = 0; i < config.shards; ++i) {
      store::StoreConfig sc;
      sc.path = config.spill.dir + "/shard_" + std::to_string(i) + ".seg";
      sc.encoded = config.spill.encoded;
      spills_.push_back(std::make_unique<store::SegmentStore>(
          *env, sc, shards_[static_cast<std::size_t>(i)]
                        .sessions()
                        .state_width()));
      shards_[static_cast<std::size_t>(i)].sessions().set_spill(
          spills_.back().get());
    }
  }
}

num::Index EnginePool::shard_of(SessionId id) const {
  return static_cast<num::Index>(mix64(id) %
                                 static_cast<std::uint64_t>(shards_.size()));
}

void EnginePool::enqueue(const Request& r) {
  shards_[static_cast<std::size_t>(shard_of(r.session))].enqueue(r);
}

num::Index EnginePool::process_ready(std::int64_t now_us,
                                     const ResponseSink& sink) {
  num::Index served = 0;
  for (EngineShard& s : shards_) served += s.process_ready(now_us, sink);
  return served;
}

num::Index EnginePool::flush(std::int64_t now_us, const ResponseSink& sink) {
  num::Index served = 0;
  for (EngineShard& s : shards_) served += s.flush(now_us, sink);
  return served;
}

num::Index EnginePool::drain_parallel(std::int64_t now_us,
                                      std::span<const ResponseSink> shard_sinks) {
  ZSS_EXPECTS(shard_sinks.size() == shards_.size());
  const std::size_t n = shards_.size();
  std::vector<num::Index> served(n, 0);
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  // Same shape as num::parallel_for: spawn n-1 workers, run the last
  // shard on the calling thread. Shards are shared-nothing, so this is
  // bit-identical to the sequential flush at any thread count.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers.emplace_back([this, i, now_us, &shard_sinks, &served] {
      served[i] = shards_[i].flush(now_us, shard_sinks[i]);
    });
  }
  served[n - 1] = shards_[n - 1].flush(now_us, shard_sinks[n - 1]);
  for (auto& w : workers) w.join();

  num::Index total = 0;
  for (num::Index s : served) total += s;
  return total;
}

num::Index EnginePool::pending() const {
  num::Index n = 0;
  for (const EngineShard& s : shards_) n += s.pending();
  return n;
}

void EnginePool::reset_stats() {
  for (EngineShard& s : shards_) s.reset_stats();
}

}  // namespace zss::serve
