#include "serve/pool.h"

#include <thread>
#include <vector>

#include "num/rng.h"

namespace zss::serve {

namespace {

// SplitMix64 — the session ids in a trace are often small consecutive
// integers, so a plain modulo would pile them onto the first shards;
// the mix spreads any id distribution.
std::uint64_t mix64(std::uint64_t x) {
  return num::splitmix64_mix(x + num::kSplitMix64Golden);
}

}  // namespace

EnginePool::EnginePool(const ServeModel& model, const PoolConfig& config)
    : cells_(model.cells.begin(), model.cells.end()),
      pruners_(model.pruners.begin(), model.pruners.end()),
      embedding_(model.embedding),
      model_name_(model.name),
      model_vocab_(model.vocab),
      config_(config) {
  build_shards(config);
}

EnginePool::EnginePool(const nn::LstmCell& cell,
                       const core::StatePruner& pruner,
                       const PoolConfig& config)
    : cells_{&cell}, pruners_{&pruner}, config_(config) {
  build_shards(config);
}

std::unique_ptr<EngineShard> EnginePool::make_shard() const {
  // ServeModel is a span view; the pool re-owns the backing lists
  // precisely so this can run again long after the caller's temporary
  // ServeModel is gone (rebuild_shard).
  ServeModel model;
  model.cells = cells_;
  model.pruners = pruners_;
  model.embedding = embedding_;
  model.name = model_name_;
  model.vocab = model_vocab_;
  return std::make_unique<EngineShard>(model, config_.policy, config_.encoder,
                                       config_.session_ttl, config_.quant,
                                       config_.pipeline);
}

void EnginePool::build_shards(const PoolConfig& config) {
  ZSS_EXPECTS(config.shards >= 1);
  // The journal is a layer on the spill dir (same directory, same
  // shared-nothing file-per-shard layout); journal without a dir is a
  // configuration error, not a silent no-op.
  ZSS_EXPECTS(!config.spill.journal || !config.spill.dir.empty());
  shards_.reserve(static_cast<std::size_t>(config.shards));
  for (num::Index i = 0; i < config.shards; ++i) {
    shards_.push_back(make_shard());
  }
  const EngineShard& first = *shards_.front();
  model_info_.name = model_name_;
  model_info_.layers = first.engine().layers();
  model_info_.dh = first.engine().hidden_dim();
  model_info_.vocab =
      model_vocab_ > 0
          ? model_vocab_
          : (embedding_ != nullptr ? embedding_->vocab()
                                   : first.engine().input_dim());
  model_info_.quant = first.engine().quantized();
  if (!config.spill.dir.empty()) {
    env_ = config.spill.env;
    if (env_ == nullptr) {
      owned_env_ = std::make_unique<store::PosixEnv>();
      env_ = owned_env_.get();
    }
    // One segment file (and journal) per shard: the disk tier inherits
    // the pool's shared-nothing partitioning, so no cross-shard
    // synchronization and no interleaved appends. Records are
    // state_width() wide — the L per-layer rows packed side by side
    // (serve/session.h).
    spills_.resize(static_cast<std::size_t>(config.shards));
    if (config.spill.journal) {
      journals_.resize(static_cast<std::size_t>(config.shards));
    }
    for (num::Index i = 0; i < config.shards; ++i) attach_stores(i);
  }
}

void EnginePool::attach_stores(num::Index i) {
  if (env_ == nullptr) return;
  const auto idx = static_cast<std::size_t>(i);
  EngineShard& shard = *shards_[idx];
  store::StoreConfig sc;
  sc.path = config_.spill.dir + "/shard_" + std::to_string(i) + ".seg";
  sc.encoded = config_.spill.encoded;
  spills_[idx] = std::make_unique<store::SegmentStore>(
      *env_, sc, shard.sessions().state_width());
  shard.sessions().set_spill(spills_[idx].get());
  if (!journals_.empty()) {
    store::JournalConfig jc;
    jc.path = config_.spill.dir + "/shard_" + std::to_string(i) + ".jnl";
    jc.sync = config_.spill.journal_sync;
    jc.checkpoint_bytes = config_.spill.journal_checkpoint_bytes;
    journals_[idx] = std::make_unique<store::Journal>(
        *env_, jc, shard.sessions().state_width());
    shard.sessions().set_journal(journals_[idx].get());
    // Cold recovery: replay this shard's committed history into the
    // fresh store (recover_from also reconciles the spill tier). The
    // spill must already be attached — restored-then-updated sessions
    // erase their stale spill records during the reconcile pass.
    shard.sessions().recover_from(*journals_[idx]);
    recovered_sessions_ += static_cast<std::uint64_t>(shard.sessions().size());
    if (journals_[idx]->recovered_max_arrival_us() >
        recovered_max_arrival_us_) {
      recovered_max_arrival_us_ = journals_[idx]->recovered_max_arrival_us();
    }
  }
}

num::Index EnginePool::shard_of(SessionId id) const {
  return static_cast<num::Index>(mix64(id) %
                                 static_cast<std::uint64_t>(shards_.size()));
}

void EnginePool::enqueue(const Request& r) {
  shards_[static_cast<std::size_t>(shard_of(r.session))]->enqueue(r);
}

num::Index EnginePool::process_ready(std::int64_t now_us,
                                     const ResponseSink& sink) {
  num::Index served = 0;
  for (auto& s : shards_) served += s->process_ready(now_us, sink);
  return served;
}

num::Index EnginePool::flush(std::int64_t now_us, const ResponseSink& sink) {
  num::Index served = 0;
  for (auto& s : shards_) served += s->flush(now_us, sink);
  return served;
}

num::Index EnginePool::drain_parallel(std::int64_t now_us,
                                      std::span<const ResponseSink> shard_sinks) {
  ZSS_EXPECTS(shard_sinks.size() == shards_.size());
  const std::size_t n = shards_.size();
  std::vector<num::Index> served(n, 0);
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  // Same shape as num::parallel_for: spawn n-1 workers, run the last
  // shard on the calling thread. Shards are shared-nothing, so this is
  // bit-identical to the sequential flush at any thread count.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers.emplace_back([this, i, now_us, &shard_sinks, &served] {
      served[i] = shards_[i]->flush(now_us, shard_sinks[i]);
    });
  }
  served[n - 1] = shards_[n - 1]->flush(now_us, shard_sinks[n - 1]);
  for (auto& w : workers) w.join();

  num::Index total = 0;
  for (num::Index s : served) total += s;
  return total;
}

num::Index EnginePool::pending() const {
  num::Index n = 0;
  for (const auto& s : shards_) n += s->pending();
  return n;
}

void EnginePool::reset_stats() {
  for (auto& s : shards_) s->reset_stats();
}

void EnginePool::rebuild_shard(num::Index i) {
  ZSS_EXPECTS(i >= 0 && i < num_shards());
  const auto idx = static_cast<std::size_t>(i);
  // Retire, never destroy: an abandoned worker thread may still be
  // wedged inside the old shard's step, and it must keep seeing valid
  // memory until the pool itself dies. The abandon contract
  // (serve/worker.h) is only *checked* at batch boundaries, though — a
  // worker wedged INSIDE the engine that resumes after the abandon
  // grace finishes its batch, and its commit path would append and
  // fsync through the old journal handle into the very file the
  // rebuilt shard reopens below (two handles, divergent tails — WAL
  // corruption and silent loss of acknowledged records on the next
  // recovery). Poison the retired stores first: after poison() returns
  // no stale handle can write, so the replacement journal/segment is
  // the file's sole writer. The worker's response fence (its deliveries
  // re-check abandonment per response) covers the sink side the same
  // way.
  shard_graveyard_.push_back(std::move(shards_[idx]));
  if (!spills_.empty()) {
    if (spills_[idx] != nullptr) spills_[idx]->poison();
    spill_graveyard_.push_back(std::move(spills_[idx]));
  }
  if (!journals_.empty()) {
    if (journals_[idx] != nullptr) journals_[idx]->poison();
    journal_graveyard_.push_back(std::move(journals_[idx]));
  }
  shards_[idx] = make_shard();
  // Reopens the segment + journal files and replays the journal: the
  // rebuilt shard resumes from exactly the state the dead one last
  // group-committed, same as a whole-process restart but scoped to one
  // shard.
  attach_stores(i);
}

DigestTable EnginePool::merged_digests() const {
  DigestTable out;
  for (const auto& s : shards_) {
    DigestTable t = s->sessions().digests_copy();
    // Hash-pinned sessions: per-shard tables are disjoint, so insert
    // never collides and the union is exact.
    out.insert(t.begin(), t.end());
  }
  return out;
}

std::uint64_t EnginePool::orphans_removed() const {
  std::uint64_t n = 0;
  for (const auto& j : journals_) {
    if (j != nullptr) n += j->orphans_removed();
  }
  return n;
}

}  // namespace zss::serve
