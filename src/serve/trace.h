// Request traces — the deterministic drive format of the serving layer.
//
// A trace is a list of (arrival_us, session, token) events sorted by
// arrival time. Replay runs a virtual clock over the events: max-wait
// deadlines falling between arrivals fire at their own instants (what
// a live poller would do), each arrival is enqueued and its instant
// settled, and after the last event every straggler batch is served at
// its own deadline. Replay is a pure function of (trace, pool
// configuration) — no real clock is read — which is what makes the
// shard-determinism guarantee testable and the CI smoke run
// reproducible.
//
// Text format, one event per line, '#' comments and blank lines skipped:
//     arrival_us  session_id  token
// e.g.     1200         7         42
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "num/rng.h"
#include "serve/pool.h"

namespace zss::serve {

struct TraceEvent {
  std::int64_t arrival_us = 0;
  SessionId session = 0;
  num::Index token = 0;
};

/// Parses the text format. Returns false (and reports the line) on
/// malformed input; events must be sorted by arrival_us.
bool parse_trace(std::istream& in, std::vector<TraceEvent>& out,
                 std::string* error);

/// Convenience file loader on top of parse_trace.
bool load_trace_file(const std::string& path, std::vector<TraceEvent>& out,
                     std::string* error);

void write_trace(std::ostream& out, const std::vector<TraceEvent>& events);

/// Deterministic synthetic trace: `requests` events over `sessions`
/// round-robin-ish clients (rng-permuted so shards see interleaved
/// sessions), arrival gaps uniform in [0, 2*mean_gap_us].
std::vector<TraceEvent> synthetic_trace(num::Index requests,
                                        num::Index sessions,
                                        num::Index vocab,
                                        std::int64_t mean_gap_us,
                                        num::Rng& rng);

struct ReplayResult {
  num::Index requests = 0;
  num::Index responses = 0;
  std::int64_t end_us = 0;  // virtual time of the final flush
};

/// Replays the trace through the pool under the virtual clock. The sink
/// sees every response; shards run sequentially (replay is about
/// values and batch boundaries, not wall time — use
/// EnginePool::drain_parallel for throughput measurement).
ReplayResult replay(EnginePool& pool, const std::vector<TraceEvent>& events,
                    const ResponseSink& sink);

}  // namespace zss::serve
