#include "serve/trace.h"

#include "serve/protocol.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace zss::serve {

bool parse_trace(std::istream& in, std::vector<TraceEvent>& out,
                 std::string* error) {
  out.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    TraceEvent e;
    std::string arrival_field, session_field, token_field;
    std::string excess;
    std::uint64_t arrival_v = 0, token_v = 0;
    // Exactly three fields per line: trailing tokens mean a corrupted
    // trace (e.g. a lost newline merging two events), and silently
    // dropping the tail would surface later as a digest mismatch
    // misattributed to the determinism guarantee. Every numeric field
    // goes through the strict digits-only parse (protocol.h) — stream
    // extraction would wrap a negative session id modulo 2^64 and
    // quietly accept '+'-prefixed numbers the protocol parser rejects.
    if (!(fields >> arrival_field >> session_field >> token_field) ||
        !parse_session_id(arrival_field, arrival_v) ||
        arrival_v > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()) ||
        !parse_session_id(session_field, e.session) ||
        !parse_session_id(token_field, token_v) ||
        token_v > static_cast<std::uint64_t>(
                      std::numeric_limits<num::Index>::max()) ||
        (fields >> excess)) {
      if (error) *error = "malformed trace line " + std::to_string(lineno) +
                          ": " + line;
      return false;
    }
    e.arrival_us = static_cast<std::int64_t>(arrival_v);
    e.token = static_cast<num::Index>(token_v);
    if (!out.empty() && e.arrival_us < out.back().arrival_us) {
      if (error) *error = "trace not sorted by arrival_us at line " +
                          std::to_string(lineno);
      return false;
    }
    out.push_back(e);
  }
  return true;
}

bool load_trace_file(const std::string& path, std::vector<TraceEvent>& out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open trace file: " + path;
    return false;
  }
  return parse_trace(in, out, error);
}

void write_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  out << "# zss serving trace: arrival_us session_id token\n";
  for (const TraceEvent& e : events) {
    out << e.arrival_us << ' ' << e.session << ' ' << e.token << '\n';
  }
}

std::vector<TraceEvent> synthetic_trace(num::Index requests,
                                        num::Index sessions,
                                        num::Index vocab,
                                        std::int64_t mean_gap_us,
                                        num::Rng& rng) {
  ZSS_EXPECTS(requests >= 0 && sessions >= 1 && vocab >= 1);
  ZSS_EXPECTS(mean_gap_us >= 0);
  std::vector<TraceEvent> events;
  events.reserve(static_cast<std::size_t>(requests));
  std::int64_t now = 0;
  for (num::Index i = 0; i < requests; ++i) {
    TraceEvent e;
    e.arrival_us = now;
    e.session = static_cast<SessionId>(rng.below(sessions)) + 1;
    e.token = rng.below(vocab);
    events.push_back(e);
    now += static_cast<std::int64_t>(rng.below(2 * mean_gap_us + 1));
  }
  return events;
}

ReplayResult replay(EnginePool& pool, const std::vector<TraceEvent>& events,
                    const ResponseSink& sink) {
  ReplayResult result;
  num::Index responses = 0;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  const ResponseSink counting = [&](const Response& r) {
    ++responses;
    sink(r);
  };
  // Earliest instant at which some shard's oldest pending request
  // exhausts its max-wait budget; max() when nothing is pending.
  const auto next_deadline = [&pool] {
    auto due = std::numeric_limits<std::int64_t>::max();
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      const EngineShard& shard = pool.shard(s);
      if (shard.pending() == 0) continue;
      due = std::min(due, shard.batcher().oldest_arrival_us() +
                              shard.batcher().policy().max_wait_us);
    }
    return due;
  };
  // Settle one instant: serving a batch may make the next one due (a
  // same-session conflict that just unblocked, say).
  const auto settle = [&](std::int64_t t) {
    while (pool.process_ready(t, counting) > 0) {
    }
  };
  for (const TraceEvent& e : events) {
    // A live poller fires max-wait deadlines as they expire. Replay the
    // ones falling strictly before this arrival at their own instants,
    // so an overdue batch is served on time instead of being held for
    // (and batched with) a much later arrival.
    for (auto due = next_deadline(); due < e.arrival_us;
         due = next_deadline()) {
      now = due;
      settle(due);
    }
    now = e.arrival_us;
    Request r;
    r.session = e.session;
    r.token = e.token;
    r.arrival_us = e.arrival_us;
    r.seq = seq++;
    pool.enqueue(r);
    settle(now);
    ++result.requests;
  }
  // Trace over: serve each straggler batch at its own deadline.
  while (pool.pending() > 0) {
    now = next_deadline();
    settle(now);
  }
  result.responses = responses;
  result.end_us = now;
  return result;
}

}  // namespace zss::serve
