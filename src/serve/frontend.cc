#include "serve/frontend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

namespace zss::serve {

namespace {

// epoll_event.data.u64 tags. Connection ids start at 1 and are offset
// by kConnTagBase so they can never collide with the fixed tags.
constexpr std::uint64_t kTagWake = 0;
constexpr std::uint64_t kTagUnix = 1;
constexpr std::uint64_t kTagTcp = 2;
constexpr std::uint64_t kConnTagBase = 8;

std::int64_t mono_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why + ": " + std::strerror(errno);
  return false;
}

}  // namespace

/// One multiplexed connection. Owned exclusively by the event-loop
/// thread; sinks reach it only through the outbox indirection.
struct Frontend::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string rbuf;              // unterminated tail of the input stream
  std::deque<std::string> wq;    // queued output lines, '\n' included
  std::size_t wq_bytes = 0;
  std::size_t whead = 0;         // send offset into wq.front()
  num::Index inflight = 0;       // submitted minus responded
  bool read_eof = false;         // half-closed or protocol-errored
  bool paused = false;           // EPOLLIN off: write-buffer backpressure
  bool want_write = false;       // EPOLLOUT armed
};

Frontend::Frontend(EnginePool& pool, FrontendConfig config, LiveConfig live)
    : pool_(&pool), config_(std::move(config)) {
  // The sink runs on shard worker threads. Digest folding already
  // happened on the shard (SessionStore::commit_step — the
  // authoritative table, durable under the journal); the response
  // carries the row digest, so the sink only formats and hands the
  // line to the event loop. client == 0 marks an in-process submission
  // with no connection to route to.
  const ResponseSink sink = [this](const Response& r) {
    if (r.client == 0) return;
    std::string line = r.timed_out ? format_error("timeout")
                                   : format_response(r, r.row_digest);
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      outbox_.emplace_back(r.client, std::move(line));
    }
    wake();
  };
  server_ = std::make_unique<LiveServer>(pool, sink, std::move(live));
}

Frontend::~Frontend() {
  stop();
  join();
  // start() failure paths and never-started fronts still hold fds.
  close_listeners();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void Frontend::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Frontend::close_listeners() {
  if (unix_listener_ >= 0) {
    ::close(unix_listener_);
    unix_listener_ = -1;
    // The multi-accept listener owns the path for the server lifetime;
    // remove it on the way down so the next start finds no stale file.
    ::unlink(config_.unix_path.c_str());
  }
  if (tcp_listener_ >= 0) {
    ::close(tcp_listener_);
    tcp_listener_ = -1;
  }
}

bool Frontend::start(std::string* error) {
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    if (error != nullptr) *error = "no listener configured (need a UNIX path "
                                   "and/or a TCP port)";
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return set_error(error, "epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return set_error(error, "eventfd");

  if (!config_.unix_path.empty()) {
    const std::string& path = config_.unix_path;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "socket path too long: " + path;
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // Reclaim a stale socket from a crashed previous run, but refuse to
    // delete anything else at the path (a pasted-wrong --socket= must
    // not destroy a regular file).
    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        if (error != nullptr) {
          *error = "refusing to replace non-socket file: " + path;
        }
        return false;
      }
      ::unlink(path.c_str());
    }
    unix_listener_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unix_listener_ < 0) return set_error(error, "socket(AF_UNIX)");
    if (::bind(unix_listener_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(unix_listener_, SOMAXCONN) < 0) {
      return set_error(error, "bind/listen " + path);
    }
  }

  if (config_.tcp_port >= 0) {
    tcp_listener_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcp_listener_ < 0) return set_error(error, "socket(AF_INET)");
    const int yes = 1;
    ::setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad TCP host: " + config_.tcp_host;
      return false;
    }
    if (::bind(tcp_listener_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(tcp_listener_, SOMAXCONN) < 0) {
      return set_error(error, "bind/listen tcp " + config_.tcp_host + ":" +
                                  std::to_string(config_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_listener_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      resolved_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  auto add = [this](int fd, std::uint64_t tag) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  };
  if (!add(wake_fd_, kTagWake) ||
      (unix_listener_ >= 0 && !add(unix_listener_, kTagUnix)) ||
      (tcp_listener_ >= 0 && !add(tcp_listener_, kTagTcp))) {
    return set_error(error, "epoll_ctl");
  }

  thread_ = std::thread([this] { run(); });
  return true;
}

void Frontend::stop() {
  // Async-signal-safe by design: an atomic store plus an eventfd write
  // (both signal-safe), no locks — zss_serve's SIGINT handler calls it.
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void Frontend::join() {
  if (thread_.joinable()) thread_.join();
}

DigestTable Frontend::digests() const {
  // The pool's per-shard authoritative tables, merged (disjoint by
  // shard-pinning). Safe while serving — each copy takes the store's
  // digest mutex — but only quiescent after join().
  return pool_->merged_digests();
}

void Frontend::update_events(Conn& conn) {
  epoll_event ev{};
  ev.events = ((conn.read_eof || conn.paused) ? 0u : unsigned{EPOLLIN}) |
              (conn.want_write ? unsigned{EPOLLOUT} : 0u);
  ev.data.u64 = kConnTagBase + conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Frontend::accept_all(int listener, bool tcp) {
  for (;;) {
    const int fd = ::accept4(listener, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a racing client that went away
    if (quit_started_) {
      ::close(fd);
      continue;
    }
    if (tcp) {
      // A 12-byte "step" line per round trip is the worst case for
      // Nagle; this is a latency-serving protocol, disable it.
      const int yes = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    }
    const std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kConnTagBase + id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    ++stats_.accepted;
    push_line(conn, format_greeting(id));
    flush_conn(conn);
  }
}

void Frontend::handle_line(Conn& conn, std::string_view line) {
  CommandLine cmd;
  std::string error;
  const ParseStatus st = parse_command(line, cmd, &error);
  if (st == ParseStatus::kBlank) return;
  if (st == ParseStatus::kError) {
    push_line(conn, format_error(error));
    return;
  }
  switch (cmd.op) {
    case CommandLine::Op::kStep: {
      // Fair per-client shedding: this connection at its cap sheds
      // alone; nobody else's requests are touched.
      if (config_.max_queue > 0 && conn.inflight >= config_.max_queue) {
        ++stats_.shed;
        push_line(conn, format_error("overloaded, request shed"));
        return;
      }
      SubmitStatus status = SubmitStatus::kOk;
      if (server_->submit(cmd.session, cmd.token, conn.id, &status)
              .has_value()) {
        ++conn.inflight;
      } else if (status == SubmitStatus::kUnavailable) {
        // The session's shard is quarantined mid-restart; distinct
        // from shedding so a resuming client knows to back off and
        // `sync` rather than hammer.
        push_line(conn, format_error("unavailable, shard restarting"));
      } else {
        push_line(conn, format_error("overloaded, request shed"));
      }
      return;
    }
    case CommandLine::Op::kFlush:
      server_->flush_all();
      return;
    case CommandLine::Op::kStats:
      push_line(conn, format_stats(snapshot_stats(*server_, *pool_)));
      return;
    case CommandLine::Op::kSync: {
      // The session's committed position, read from its shard's
      // authoritative digest table (mutex-protected — safe from this
      // thread). Topology held stable so the shard lookup cannot race
      // a supervisor rebuild.
      SessionDigest d;
      server_->with_stable_topology([&] {
        d = pool_->shard(pool_->shard_of(cmd.session))
                .sessions()
                .digest_of(cmd.session);
      });
      push_line(conn, format_pos(cmd.session, d));
      return;
    }
    case CommandLine::Op::kQuit:
      // Deferred: begin_quit tears down every connection, so finish
      // this read pass first (run() checks the flag each iteration).
      stop_requested_.store(true, std::memory_order_release);
      conn.read_eof = true;
      return;
  }
}

void Frontend::handle_read(Conn& conn) {
  char buf[65536];
  while (!conn.read_eof) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.rbuf.append(buf, static_cast<std::size_t>(n));
      // Split complete lines off the front; keep the unterminated tail.
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = conn.rbuf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string_view line(conn.rbuf.data() + start, nl - start);
        while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        handle_line(conn, line);
        start = nl + 1;
        if (conn.read_eof) break;  // quit or protocol violation mid-buffer
      }
      conn.rbuf.erase(0, start);
      if (!conn.read_eof && conn.rbuf.size() > config_.max_line) {
        // A stream with no newline in max_line bytes is not speaking
        // the protocol; stop reading it (pending responses still
        // drain, then the connection closes).
        ++stats_.oversize_lines;
        conn.rbuf.clear();
        push_line(conn, format_error("line exceeds protocol maximum"));
        conn.read_eof = true;
      }
      if (conn.paused) break;  // backpressure engaged mid-read
    } else if (n == 0) {
      // Orderly half-close: the client is done sending but may still
      // be reading — deliver what it is owed, then close (the
      // half-open drain path the churn fuzz exercises).
      conn.read_eof = true;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      drop_conn(conn);  // ECONNRESET and friends: abrupt death
      return;
    }
  }
  if (conn.read_eof && !conn.rbuf.empty()) {
    ++stats_.discarded_partial;
    conn.rbuf.clear();
  }
  if (conn.read_eof || conn.paused) update_events(conn);
  if (!flush_conn(conn)) return;
  maybe_close(conn);
}

void Frontend::push_line(Conn& conn, std::string line) {
  line.push_back('\n');
  conn.wq_bytes += line.size();
  conn.wq.push_back(std::move(line));
  if (!conn.paused && !conn.read_eof &&
      conn.wq_bytes > config_.max_write_buffer) {
    conn.paused = true;
    ++stats_.read_pauses;
    update_events(conn);
  }
}

bool Frontend::flush_conn(Conn& conn) {
  while (!conn.wq.empty()) {
    const std::string& front = conn.wq.front();
    const ssize_t n = ::send(conn.fd, front.data() + conn.whead,
                             front.size() - conn.whead, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.whead += static_cast<std::size_t>(n);
      conn.wq_bytes -= static_cast<std::size_t>(n);
      if (conn.whead == front.size()) {
        conn.wq.pop_front();
        conn.whead = 0;
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        update_events(conn);
      }
      return true;
    }
    if (errno == EINTR) continue;
    // EPIPE/ECONNRESET: the reader is gone. MSG_NOSIGNAL keeps SIGPIPE
    // away no matter what the process-wide disposition is.
    drop_conn(conn);
    return false;
  }
  if (conn.want_write) {
    conn.want_write = false;
    update_events(conn);
  }
  if (conn.paused && conn.wq_bytes < config_.max_write_buffer / 2) {
    conn.paused = false;
    update_events(conn);
  }
  return true;
}

void Frontend::drain_outbox() {
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    std::swap(outbox_, out_taking_);
  }
  // Group flushes per connection: consecutive responses to one client
  // coalesce into one send() most of the time.
  Conn* last = nullptr;
  for (auto& [client, line] : out_taking_) {
    const auto it = conns_.find(client);
    if (it == conns_.end()) {
      ++stats_.dropped_responses;  // issued, served, but the client died
      continue;
    }
    Conn& conn = it->second;
    if (last != nullptr && last != &conn) {
      if (flush_conn(*last)) maybe_close(*last);
    }
    --conn.inflight;
    push_line(conn, std::move(line));
    last = conns_.count(client) ? &conns_.at(client) : nullptr;
  }
  if (last != nullptr) {
    if (flush_conn(*last)) maybe_close(*last);
  }
  out_taking_.clear();
}

void Frontend::maybe_close(Conn& conn) {
  // Graceful end of a connection: nothing more will be read, nothing
  // is owed (in-flight responses included), nothing left to write.
  // Once a quit is pending (stop_requested_ covers the window between
  // a `quit` line and begin_quit at the end of this loop pass), leave
  // connections open — every client is owed a `bye` first.
  if (conn.read_eof && conn.inflight == 0 && conn.wq.empty() &&
      !quit_started_ &&
      !stop_requested_.load(std::memory_order_acquire)) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    ++stats_.disconnected;
    conns_.erase(conn.id);
  }
}

void Frontend::drop_conn(Conn& conn) {
  if (!conn.rbuf.empty()) ++stats_.discarded_partial;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  ++stats_.disconnected;
  conns_.erase(conn.id);
}

void Frontend::begin_quit() {
  if (quit_started_) return;
  quit_started_ = true;
  close_listeners();
  // Blocks until every accepted request is served; the sinks keep
  // appending to the outbox meanwhile (they never touch the loop).
  server_->shutdown();
  drain_outbox();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, c] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.read_eof = true;
    push_line(conn, format_bye(server_->submitted(), server_->responded()));
    update_events(conn);
    flush_conn(conn);
  }
  linger_deadline_us_ = mono_us() + config_.linger_us;
}

void Frontend::run() {
  epoll_event evs[64];
  for (;;) {
    int timeout_ms = -1;
    if (quit_started_) {
      bool all_flushed = true;
      for (const auto& [id, c] : conns_) {
        if (!c.wq.empty()) all_flushed = false;
      }
      const std::int64_t left = linger_deadline_us_ - mono_us();
      if (all_flushed || left <= 0) break;
      timeout_ms = static_cast<int>(left / 1000) + 1;
    }
    const int n = ::epoll_wait(epoll_fd_, evs, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = evs[i].data.u64;
      if (tag == kTagWake) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
      } else if (tag == kTagUnix) {
        accept_all(unix_listener_, /*tcp=*/false);
      } else if (tag == kTagTcp) {
        accept_all(tcp_listener_, /*tcp=*/true);
      } else {
        const auto it = conns_.find(tag - kConnTagBase);
        if (it == conns_.end()) continue;  // closed earlier this pass
        Conn& conn = it->second;
        if (evs[i].events & EPOLLERR) {
          drop_conn(conn);
          continue;
        }
        if (evs[i].events & EPOLLOUT) {
          if (!flush_conn(conn)) continue;
        }
        if (evs[i].events & (EPOLLIN | EPOLLHUP)) {
          // EPOLLHUP without data still lands here: recv returns 0 or
          // an error and the connection takes the EOF/drop path.
          handle_read(conn);
        } else {
          maybe_close(conn);
        }
      }
    }
    drain_outbox();
    if (stop_requested_.load(std::memory_order_acquire)) begin_quit();
  }
  // Loop exit: either every queue flushed or the linger budget is
  // spent. Close whatever is left (slow readers lose the tail — they
  // had linger_us to take it).
  for (auto& [id, conn] : conns_) {
    ::close(conn.fd);
    ++stats_.disconnected;
  }
  conns_.clear();
  if (!quit_started_) {
    // epoll_wait failed hard before any quit: still drain the server
    // so join()ed callers get a consistent digest table.
    close_listeners();
    server_->shutdown();
  }
}

StatsSnapshot snapshot_stats(const LiveServer& server,
                             const EnginePool& pool) {
  // Every counter here is either the server's own atomic or a
  // relaxed-atomic session-store counter written by its owning shard
  // thread (serve/session.h) — safe to snapshot while workers serve.
  StatsSnapshot snap;
  snap.submitted = server.submitted();
  snap.responses = server.responded();
  snap.shed = server.shed();
  snap.now_us = server.now_us();
  snap.shards = pool.num_shards();
  snap.restarts = server.restarts();
  snap.quarantined = server.quarantined();
  // The shard walk runs with the topology frozen so a concurrent
  // supervisor rebuild can never swap a slot mid-read.
  server.with_stable_topology([&] {
    for (num::Index s = 0; s < pool.num_shards(); ++s) {
      const EngineShard& shard = pool.shard(s);
      const SessionStore& ss = shard.sessions();
      snap.created += ss.created();
      snap.ttl_resets += ss.ttl_resets();
      snap.evicted += ss.evicted();
      snap.spilled += ss.spilled();
      snap.restored += ss.restored();
      snap.restore_corrupt += ss.restore_corrupt();
      snap.timeouts += shard.timeouts();
      if (ss.spill_active()) ++snap.spill_active;
      if (ss.journal_active()) ++snap.journal_active;
    }
    if (pool.journal(0) != nullptr) {
      snap.durability = "journal";
    } else if (pool.spill_store(0) != nullptr) {
      snap.durability = "spill";
    } else {
      snap.durability = "off";
    }
  });
  const ModelInfo& mi = pool.model_info();
  snap.model = mi.name;
  snap.layers = mi.layers;
  snap.dh = mi.dh;
  snap.vocab = mi.vocab;
  snap.quant = mi.quant;
  return snap;
}

}  // namespace zss::serve
