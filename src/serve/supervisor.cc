#include "serve/supervisor.h"

#include <chrono>

namespace zss::serve {

Supervisor::Supervisor(LiveServer& server, SupervisorConfig config)
    : server_(&server), cfg_(config) {
  ZSS_EXPECTS(config.poll_ms > 0);
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  if (cfg_.stall_ms <= 0) return;  // watchdog disabled
  ZSS_EXPECTS(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void Supervisor::run() {
  const std::int64_t stall_us = cfg_.stall_ms * 1000;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(cfg_.poll_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    for (num::Index i = 0; i < server_->num_workers(); ++i) {
      // Single-writer discipline: only this thread calls
      // restart_shard, so worker(i) is stable between our own
      // restarts and the reference cannot dangle mid-check.
      const ShardWorker& w = server_->worker(i);
      if (w.inflight() <= 0) continue;  // idle sleep is not a stall
      const std::int64_t age = mono_now_us() - w.heartbeat_us();
      if (age <= stall_us) continue;
      server_->restart_shard(i);
      restarts_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

}  // namespace zss::serve
