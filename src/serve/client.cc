#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

namespace zss::serve {

namespace {

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why + ": " + std::strerror(errno);
  return false;
}

}  // namespace

ClientConn::ClientConn(ClientConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      eof_(std::exchange(other.eof_, false)),
      rbuf_(std::move(other.rbuf_)) {}

ClientConn& ClientConn::operator=(ClientConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    eof_ = std::exchange(other.eof_, false);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

bool ClientConn::connect_unix(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return set_error(error, "socket(AF_UNIX)");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close();
    return set_error(error, "connect " + path);
  }
  return true;
}

bool ClientConn::connect_tcp(const std::string& host, int port,
                             std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host: " + host;
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return set_error(error, "socket(AF_INET)");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close();
    return set_error(error, "connect " + host + ":" + std::to_string(port));
  }
  const int yes = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
  return true;
}

bool ClientConn::send_line(std::string_view line) {
  if (fd_ < 0) return false;
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ClientConn::read_line(std::string* out, int timeout_ms) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      std::size_t end = nl;
      while (end > 0 && rbuf_[end - 1] == '\r') --end;
      out->assign(rbuf_, 0, end);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    if (fd_ < 0) return false;
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) return false;  // timeout, buffered tail kept
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
      return false;
    } else if (errno != EINTR) {
      return false;
    }
  }
}

void ClientConn::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void ClientConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  eof_ = false;
  rbuf_.clear();
}

int Backoff::next_ms() {
  if (attempt_ >= policy_.max_attempts) return -1;
  if (attempt_ == 0) {
    ++attempt_;
    return 0;
  }
  // base << (attempt-1), saturating at max_ms (shift capped so a large
  // attempt count cannot overflow into UB before the min()).
  const int shift = attempt_ - 1 > 20 ? 20 : attempt_ - 1;
  ++attempt_;
  const long delay = static_cast<long>(policy_.base_ms) << shift;
  return delay > policy_.max_ms ? policy_.max_ms
                                : static_cast<int>(delay);
}

bool ResumingClient::connect(std::string* error) {
  Backoff backoff(backoff_);
  std::string last_error = "no attempts made";
  for (;;) {
    const int delay_ms = backoff.next_ms();
    if (delay_ms < 0) break;
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    const bool ok = endpoint_.tcp_port >= 0
                        ? conn_.connect_tcp(endpoint_.tcp_host,
                                            endpoint_.tcp_port, &last_error)
                        : conn_.connect_unix(endpoint_.unix_path, &last_error);
    if (!ok) continue;
    // A connection is only usable once the server greets it: a listener
    // backlog accepts TCP connects before the process is ready (or
    // while it is mid-recovery), and a half-started server must look
    // like a down server to the backoff loop.
    std::string line;
    if (conn_.read_line(&line, 10000) && line.rfind("hi ", 0) == 0) {
      if (ever_connected_) ++reconnects_;
      ever_connected_ = true;
      return true;
    }
    last_error = "no greeting from server";
    conn_.close();
  }
  if (error != nullptr) {
    *error = "connect failed after " + std::to_string(backoff.attempts()) +
             " attempts: " + last_error;
  }
  return false;
}

bool ResumingClient::sync(std::uint64_t session, SyncedPos* out,
                          int timeout_ms, std::string* error) {
  if (!conn_.send_line("sync " + std::to_string(session))) {
    if (error != nullptr) *error = "send sync failed";
    return false;
  }
  std::string line;
  while (conn_.read_line(&line, timeout_ms)) {
    if (line.rfind("pos ", 0) != 0) continue;  // stale ok/err in flight
    std::uint64_t sid = 0, steps = 0, digest = 0;
    if (std::sscanf(line.c_str(), "pos %" SCNu64 " %" SCNu64 " %" SCNx64,
                    &sid, &steps, &digest) != 3) {
      if (error != nullptr) *error = "malformed pos line: " + line;
      return false;
    }
    if (sid != session) continue;  // reply to an earlier timed-out sync
    out->steps = steps;
    out->digest = digest;
    return true;
  }
  if (error != nullptr) {
    *error = conn_.eof() ? "server closed during sync" : "sync timed out";
  }
  return false;
}

}  // namespace zss::serve
