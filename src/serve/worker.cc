#include "serve/worker.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace zss::serve {

namespace {

std::function<std::int64_t()> steady_clock_since_now() {
  const auto t0 = std::chrono::steady_clock::now();
  return [t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
}

}  // namespace

std::int64_t mono_now_us() {
  // One process-wide epoch: all heartbeats compare on the same axis.
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ShardWorker::ShardWorker(EngineShard& shard, ResponseSink sink,
                         std::function<std::int64_t()> now_us,
                         num::Index max_queue)
    : shard_(&shard),
      sink_(std::move(sink)),
      now_(std::move(now_us)),
      max_queue_(max_queue) {
  ZSS_EXPECTS(max_queue >= 0);
  // Submissions burst-append between wakeups; both buffers keep their
  // capacity across swaps, so the steady state allocates nothing.
  inbox_.reserve(64);
  taking_.reserve(64);
  heartbeat_us_.store(mono_now_us(), std::memory_order_relaxed);
}

ShardWorker::~ShardWorker() {
  request_stop();
  if (!thread_.joinable()) return;
  if (abandoned_.load(std::memory_order_acquire) &&
      !exited_.load(std::memory_order_acquire)) {
    // Abandoned and still not out: the thread is wedged inside the
    // shard (which lives in the pool's graveyard, outliving us).
    // Joining would hang shutdown forever; by the abandonment
    // contract the thread serves nothing if it ever resumes.
    thread_.detach();
  } else {
    thread_.join();
  }
}

void ShardWorker::start() {
  ZSS_EXPECTS(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

bool ShardWorker::submit(const Request& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || abandoned_.load(std::memory_order_relaxed)) return false;
    if (max_queue_ > 0 && inflight_.load(std::memory_order_relaxed) >=
                              max_queue_) {
      return false;
    }
    inbox_.push_back(r);
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return true;
}

void ShardWorker::request_flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    flush_ = true;
  }
  cv_.notify_one();
}

void ShardWorker::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
}

void ShardWorker::join() {
  if (thread_.joinable()) thread_.join();
}

bool ShardWorker::abandon() {
  abandoned_.store(true, std::memory_order_release);
  cv_.notify_one();
  // Grace period: a healthy-but-idle or merely slow worker exits at
  // its next checkpoint within microseconds; a wedged one never will.
  const std::int64_t t0 = mono_now_us();
  while (!exited_.load(std::memory_order_acquire)) {
    if (mono_now_us() - t0 > 200'000) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void ShardWorker::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    heartbeat_us_.store(mono_now_us(), std::memory_order_relaxed);
    const bool stopping = stop_;
    const bool flushing = flush_;
    flush_ = false;
    if (!inbox_.empty()) std::swap(inbox_, taking_);
    lock.unlock();

    // Pre-serve checkpoint: the wedge hook parks here (heartbeat
    // frozen — exactly what the watchdog sees in a real hang), and
    // abandonment is honored BEFORE any shard touch, so an abandoned
    // worker can never emit a response the rebuilt shard will re-emit.
    while (wedged_.load(std::memory_order_acquire) &&
           !abandoned_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (abandoned_.load(std::memory_order_acquire)) {
      exited_.store(true, std::memory_order_release);
      return;
    }

    // Everything below runs unlocked: this thread is the shard's sole
    // toucher, and producers only ever see the inbox.
    for (const Request& r : taking_) shard_->enqueue(r);
    taking_.clear();

    const std::int64_t now = now_();
    num::Index n = 0;
    if (stopping || flushing) {
      n = shard_->flush(now, sink_);
    } else {
      // Serving a batch can make the next one due (an unblocked
      // same-session conflict), so settle the instant.
      while (const num::Index b = shard_->process_ready(now, sink_)) n += b;
    }

    lock.lock();
    inflight_.fetch_sub(n, std::memory_order_relaxed);
    if (stopping) {
      // A submit that won the race against request_stop() may have
      // landed after the swap; take one more round for it.
      if (inbox_.empty()) break;
      continue;
    }
    if (stop_ || flush_ || !inbox_.empty() ||
        abandoned_.load(std::memory_order_relaxed)) {
      continue;
    }
    if (shard_->pending() > 0) {
      // Sleep toward the oldest request's max-wait deadline; a new
      // submission wakes us earlier. Waking late moves batch
      // boundaries only — never values (the determinism guarantee).
      const std::int64_t deadline = shard_->batcher().oldest_arrival_us() +
                                    shard_->batcher().policy().max_wait_us;
      const std::int64_t wait = deadline - now_();
      if (wait > 0) {
        cv_.wait_for(lock, std::chrono::microseconds(wait));
      }
    } else {
      cv_.wait(lock, [this] {
        return stop_ || flush_ || !inbox_.empty() ||
               abandoned_.load(std::memory_order_relaxed);
      });
    }
  }
  lock.unlock();
  exited_.store(true, std::memory_order_release);
}

LiveServer::LiveServer(EnginePool& pool, ResponseSink sink, LiveConfig config)
    : pool_(&pool),
      now_(config.now_us ? std::move(config.now_us)
                         : steady_clock_since_now()),
      max_queue_(config.max_queue),
      deadline_us_(config.deadline_us),
      record_(config.record) {
  ZSS_EXPECTS(config.deadline_us >= 0);
  // A recovered pool's sessions carry arrival stamps from the previous
  // incarnation; stamping below them would break the monotone-arrival
  // premise every eviction argument rests on (serve/session.h), so the
  // recovered maximum becomes this clock's floor.
  last_stamp_ = pool.recovered_max_arrival_us();
  counted_sink_ = [this, user_sink = std::move(sink)](const Response& r) {
    if (r.timed_out) {
      std::lock_guard<std::mutex> lock(timeout_mu_);
      timeout_seqs_.push_back(r.seq);
    }
    // Count after delivery: a caller synchronizing on responded() must
    // never observe a response whose sink call has not finished.
    user_sink(r);
    responded_.fetch_add(1, std::memory_order_relaxed);
  };
  quarantined_.assign(static_cast<std::size_t>(pool.num_shards()), 0);
  workers_.reserve(static_cast<std::size_t>(pool.num_shards()));
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    workers_.push_back(std::make_unique<ShardWorker>(
        pool.shard(s), counted_sink_, now_, max_queue_));
  }
  for (auto& w : workers_) w->start();
}

LiveServer::~LiveServer() { shutdown(); }

std::optional<std::uint64_t> LiveServer::submit(SessionId session,
                                                num::Index token,
                                                std::uint64_t client,
                                                SubmitStatus* status) {
  ZSS_EXPECTS(token >= 0);
  std::lock_guard<std::mutex> lock(stamp_mu_);
  if (stopped_) {
    if (status != nullptr) *status = SubmitStatus::kStopped;
    return std::nullopt;
  }
  const num::Index shard = pool_->shard_of(session);
  if (quarantined_[static_cast<std::size_t>(shard)] != 0) {
    if (status != nullptr) *status = SubmitStatus::kUnavailable;
    return std::nullopt;
  }
  // Monotone stamping under the one lock: queue order, record order and
  // stamp order are the same total order (see worker.h).
  std::int64_t now = now_();
  if (now < last_stamp_) now = last_stamp_;
  last_stamp_ = now;

  Request r;
  r.session = session;
  r.token = token;
  r.arrival_us = now;
  r.seq = next_seq_;
  r.client = client;
  if (deadline_us_ > 0) r.deadline_us = now + deadline_us_;
  if (!workers_[static_cast<std::size_t>(shard)]->submit(r)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (status != nullptr) *status = SubmitStatus::kShed;
    return std::nullopt;
  }
  ++next_seq_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (record_) {
    TraceEvent e;
    e.arrival_us = now;
    e.session = session;
    e.token = token;
    recorded_.push_back(e);
  }
  if (status != nullptr) *status = SubmitStatus::kOk;
  return r.seq;
}

void LiveServer::flush_all() {
  std::lock_guard<std::mutex> lock(stamp_mu_);
  for (auto& w : workers_) w->request_flush();
}

void LiveServer::restart_shard(num::Index i) {
  ZSS_EXPECTS(i >= 0 && i < num_workers());
  const auto idx = static_cast<std::size_t>(i);
  // Serializes against shutdown() and concurrent restarts of other
  // shards (a restart is already an exceptional event; coarse is fine).
  std::lock_guard<std::mutex> restart_lock(restart_mu_);
  {
    std::lock_guard<std::mutex> lock(stamp_mu_);
    if (stopped_ || quarantined_[idx] != 0) return;
    quarantined_[idx] = 1;
    quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // From here no producer can reach the old worker (quarantine is
  // checked under stamp_mu_), so its inflight count only falls.
  ShardWorker* old = workers_[idx].get();
  old->abandon();
  // Whatever the dead worker never served is lost to this restart; the
  // resume protocol lets clients re-drive it (docs/serving.md).
  abandoned_.fetch_add(static_cast<std::uint64_t>(old->inflight()),
                       std::memory_order_relaxed);
  {
    // stamp_mu_ held across the rebuild: stats walkers that snapshot
    // shard state through with_stable_topology never observe the slot
    // mid-swap. Submits to other shards stall for the rebuild — a
    // restart is already a disruption, and correctness beats latency
    // here.
    std::lock_guard<std::mutex> lock(stamp_mu_);
    pool_->rebuild_shard(i);
    auto fresh = std::make_unique<ShardWorker>(pool_->shard(i), counted_sink_,
                                               now_, max_queue_);
    fresh->start();
    worker_graveyard_.push_back(std::move(workers_[idx]));
    workers_[idx] = std::move(fresh);
    quarantined_[idx] = 0;
    quarantined_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  restarts_.fetch_add(1, std::memory_order_relaxed);
}

void LiveServer::with_stable_topology(
    const std::function<void()>& fn) const {
  std::lock_guard<std::mutex> lock(stamp_mu_);
  fn();
}

void LiveServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(stamp_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Excludes an in-flight restart_shard (it re-checks stopped_ under
  // stamp_mu_ before mutating anything, and never starts once we hold
  // this).
  std::lock_guard<std::mutex> restart_lock(restart_mu_);
  for (auto& w : workers_) w->request_stop();
  for (auto& w : workers_) w->join();
  // Graveyard workers either already exited (joined here) or are
  // wedged for good (detached by their destructor at LiveServer
  // destruction).
  for (auto& w : worker_graveyard_) {
    if (w->exited()) w->join();
  }
  // Timed-out requests produced no state: drop them from the trace so
  // replaying it reproduces exactly the committed digests. seq ==
  // recorded_ index (both count accepted submissions in order).
  std::vector<std::uint64_t> drop;
  {
    std::lock_guard<std::mutex> lock(timeout_mu_);
    drop.swap(timeout_seqs_);
  }
  if (record_ && !drop.empty()) {
    std::sort(drop.begin(), drop.end());
    std::vector<TraceEvent> kept;
    kept.reserve(recorded_.size() - drop.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < recorded_.size(); ++i) {
      if (d < drop.size() && drop[d] == i) {
        ++d;
        continue;
      }
      kept.push_back(recorded_[i]);
    }
    recorded_.swap(kept);
  }
}

}  // namespace zss::serve
