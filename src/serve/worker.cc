#include "serve/worker.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace zss::serve {

namespace {

std::function<std::int64_t()> steady_clock_since_now() {
  const auto t0 = std::chrono::steady_clock::now();
  return [t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
}

}  // namespace

std::int64_t mono_now_us() {
  // One process-wide epoch: all heartbeats compare on the same axis.
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ShardWorker::ShardWorker(EngineShard& shard, ResponseSink sink,
                         std::function<std::int64_t()> now_us,
                         num::Index max_queue)
    : ctl_(std::make_shared<Control>()) {
  ZSS_EXPECTS(max_queue >= 0);
  ctl_->shard = &shard;
  ctl_->sink = std::move(sink);
  ctl_->now = std::move(now_us);
  ctl_->max_queue = max_queue;
  // Submissions burst-append between wakeups; both buffers keep their
  // capacity across swaps, so the steady state allocates nothing.
  ctl_->inbox.reserve(64);
  ctl_->taking.reserve(64);
  ctl_->heartbeat_us.store(mono_now_us(), std::memory_order_relaxed);
}

ShardWorker::~ShardWorker() {
  request_stop();
  if (!thread_.joinable()) return;
  if (ctl_->abandoned.load(std::memory_order_acquire) &&
      !ctl_->exited.load(std::memory_order_acquire)) {
    // Abandoned and still not out: the thread is wedged inside the
    // shard (which lives in the pool's graveyard, outliving us) or the
    // sink. Joining would hang shutdown forever. Detaching is safe:
    // the thread co-owns the Control block, and the abandonment fence
    // means it delivers nothing if it ever resumes.
    thread_.detach();
  } else {
    thread_.join();
  }
}

void ShardWorker::start() {
  ZSS_EXPECTS(!thread_.joinable());
  // The thread keeps the Control alive on its own — a detached thread
  // outliving this object (and the graveyard) still sees valid memory.
  thread_ = std::thread([c = ctl_] { run(*c); });
}

bool ShardWorker::submit(const Request& r) {
  Control& c = *ctl_;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.stop || c.abandoned.load(std::memory_order_relaxed)) return false;
    if (c.max_queue > 0 &&
        c.inflight.load(std::memory_order_relaxed) >= c.max_queue) {
      return false;
    }
    c.inbox.push_back(r);
    c.inflight.fetch_add(1, std::memory_order_relaxed);
  }
  c.cv.notify_one();
  return true;
}

void ShardWorker::request_flush() {
  {
    std::lock_guard<std::mutex> lock(ctl_->mu);
    ctl_->flush = true;
  }
  ctl_->cv.notify_one();
}

void ShardWorker::request_stop() {
  {
    std::lock_guard<std::mutex> lock(ctl_->mu);
    ctl_->stop = true;
  }
  ctl_->cv.notify_one();
}

void ShardWorker::join() {
  if (thread_.joinable()) thread_.join();
}

bool ShardWorker::abandon() {
  ctl_->abandoned.store(true, std::memory_order_release);
  ctl_->cv.notify_one();
  // Grace period: a healthy-but-idle or merely slow worker exits at
  // its next checkpoint within microseconds; a wedged one never will.
  const std::int64_t t0 = mono_now_us();
  while (!ctl_->exited.load(std::memory_order_acquire)) {
    if (mono_now_us() - t0 > 200'000) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void ShardWorker::run(Control& c) {
  // The response fence, and the ledger's unit of account. Every
  // delivery re-checks abandonment — so a thread judged dead mid-batch
  // that resumes after the grace period hands out nothing the rebuilt
  // shard will answer again (the journal/spill side of that race is
  // fenced by store poisoning, EnginePool::rebuild_shard) — then stamps
  // the heartbeat (a worker grinding a deep flush reads as alive per
  // response, not per loop) and decrements inflight, making inflight
  // exactly "accepted but never answered". A suppressed response
  // deliberately skips the decrement: its request stays in inflight and
  // is what restart_shard later counts as abandoned.
  const ResponseSink fenced = [&c](const Response& r) {
    if (c.abandoned.load(std::memory_order_acquire)) return;
    c.sink(r);
    c.heartbeat_us.store(mono_now_us(), std::memory_order_relaxed);
    c.inflight.fetch_sub(1, std::memory_order_relaxed);
  };

  std::unique_lock<std::mutex> lock(c.mu);
  for (;;) {
    c.heartbeat_us.store(mono_now_us(), std::memory_order_relaxed);
    const bool stopping = c.stop;
    const bool flushing = c.flush;
    c.flush = false;
    if (!c.inbox.empty()) std::swap(c.inbox, c.taking);
    lock.unlock();

    // Pre-serve checkpoint: the wedge hook parks here (heartbeat
    // frozen — exactly what the watchdog sees in a real hang), and
    // abandonment is honored BEFORE any shard touch, so an abandoned
    // worker can never emit a response the rebuilt shard will re-emit.
    while (c.wedged.load(std::memory_order_acquire) &&
           !c.abandoned.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (c.abandoned.load(std::memory_order_acquire)) {
      c.exited.store(true, std::memory_order_release);
      return;
    }

    // Everything below runs unlocked: this thread is the shard's sole
    // toucher, and producers only ever see the inbox.
    for (const Request& r : c.taking) c.shard->enqueue(r);
    c.taking.clear();

    const std::int64_t now = c.now();
    if (stopping || flushing) {
      c.shard->flush(now, fenced);
    } else {
      // Serving a batch can make the next one due (an unblocked
      // same-session conflict), so settle the instant — but the chain
      // is unbounded, so re-check abandonment and re-stamp the
      // heartbeat between batches: a worker judged dead mid-settle
      // must stop touching the shard, and a healthy one deep in
      // backlog must not read as wedged.
      while (!c.abandoned.load(std::memory_order_acquire) &&
             c.shard->process_ready(now, fenced) > 0) {
        c.heartbeat_us.store(mono_now_us(), std::memory_order_relaxed);
      }
    }

    lock.lock();
    if (stopping) {
      // A submit that won the race against request_stop() may have
      // landed after the swap; take one more round for it.
      if (c.inbox.empty()) break;
      continue;
    }
    if (c.stop || c.flush || !c.inbox.empty() ||
        c.abandoned.load(std::memory_order_relaxed)) {
      continue;
    }
    if (c.shard->pending() > 0) {
      // Sleep toward the oldest request's max-wait deadline; a new
      // submission wakes us earlier. Waking late moves batch
      // boundaries only — never values (the determinism guarantee).
      const std::int64_t deadline = c.shard->batcher().oldest_arrival_us() +
                                    c.shard->batcher().policy().max_wait_us;
      const std::int64_t wait = deadline - c.now();
      if (wait > 0) {
        c.cv.wait_for(lock, std::chrono::microseconds(wait));
      }
    } else {
      c.cv.wait(lock, [&c] {
        return c.stop || c.flush || !c.inbox.empty() ||
               c.abandoned.load(std::memory_order_relaxed);
      });
    }
  }
  lock.unlock();
  c.exited.store(true, std::memory_order_release);
}

LiveServer::LiveServer(EnginePool& pool, ResponseSink sink, LiveConfig config)
    : pool_(&pool),
      now_(config.now_us ? std::move(config.now_us)
                         : steady_clock_since_now()),
      max_queue_(config.max_queue),
      deadline_us_(config.deadline_us),
      record_(config.record) {
  ZSS_EXPECTS(config.deadline_us >= 0);
  // A recovered pool's sessions carry arrival stamps from the previous
  // incarnation; stamping below them would break the monotone-arrival
  // premise every eviction argument rests on (serve/session.h), so the
  // recovered maximum becomes this clock's floor.
  last_stamp_ = pool.recovered_max_arrival_us();
  counted_sink_ = [this, user_sink = std::move(sink)](const Response& r) {
    if (r.timed_out) {
      std::lock_guard<std::mutex> lock(timeout_mu_);
      timeout_seqs_.push_back(r.seq);
    }
    // Count after delivery: a caller synchronizing on responded() must
    // never observe a response whose sink call has not finished.
    user_sink(r);
    responded_.fetch_add(1, std::memory_order_relaxed);
  };
  quarantined_.assign(static_cast<std::size_t>(pool.num_shards()), 0);
  workers_.reserve(static_cast<std::size_t>(pool.num_shards()));
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    workers_.push_back(std::make_unique<ShardWorker>(
        pool.shard(s), counted_sink_, now_, max_queue_));
  }
  for (auto& w : workers_) w->start();
}

LiveServer::~LiveServer() { shutdown(); }

std::optional<std::uint64_t> LiveServer::submit(SessionId session,
                                                num::Index token,
                                                std::uint64_t client,
                                                SubmitStatus* status) {
  ZSS_EXPECTS(token >= 0);
  std::lock_guard<std::mutex> lock(stamp_mu_);
  if (stopped_) {
    if (status != nullptr) *status = SubmitStatus::kStopped;
    return std::nullopt;
  }
  const num::Index shard = pool_->shard_of(session);
  if (quarantined_[static_cast<std::size_t>(shard)] != 0) {
    if (status != nullptr) *status = SubmitStatus::kUnavailable;
    return std::nullopt;
  }
  // Monotone stamping under the one lock: queue order, record order and
  // stamp order are the same total order (see worker.h).
  std::int64_t now = now_();
  if (now < last_stamp_) now = last_stamp_;
  last_stamp_ = now;

  Request r;
  r.session = session;
  r.token = token;
  r.arrival_us = now;
  r.seq = next_seq_;
  r.client = client;
  if (deadline_us_ > 0) r.deadline_us = now + deadline_us_;
  if (!workers_[static_cast<std::size_t>(shard)]->submit(r)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (status != nullptr) *status = SubmitStatus::kShed;
    return std::nullopt;
  }
  ++next_seq_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (record_) {
    TraceEvent e;
    e.arrival_us = now;
    e.session = session;
    e.token = token;
    recorded_.push_back(e);
  }
  if (status != nullptr) *status = SubmitStatus::kOk;
  return r.seq;
}

void LiveServer::flush_all() {
  std::lock_guard<std::mutex> lock(stamp_mu_);
  for (auto& w : workers_) w->request_flush();
}

void LiveServer::restart_shard(num::Index i) {
  ZSS_EXPECTS(i >= 0 && i < num_workers());
  const auto idx = static_cast<std::size_t>(i);
  // Serializes against shutdown() and concurrent restarts of other
  // shards (a restart is already an exceptional event; coarse is fine).
  std::lock_guard<std::mutex> restart_lock(restart_mu_);
  {
    std::lock_guard<std::mutex> lock(stamp_mu_);
    if (stopped_ || quarantined_[idx] != 0) return;
    quarantined_[idx] = 1;
    quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // From here no producer can reach the old worker (quarantine is
  // checked under stamp_mu_), so its inflight count only falls.
  ShardWorker* old = workers_[idx].get();
  const bool acked = old->abandon();
  // Whatever the dead worker never answered is lost to this restart;
  // the resume protocol lets clients re-drive it (docs/serving.md). If
  // the thread acknowledged, its inflight is final and folds into the
  // ledger now. If it is still wedged, a response may be in flight
  // past the fence (inside the user sink) and could yet land — folding
  // now would count it both responded and abandoned — so defer until
  // the thread exits (checked at later restarts and at shutdown).
  if (acked) {
    abandoned_.fetch_add(static_cast<std::uint64_t>(old->inflight()),
                         std::memory_order_relaxed);
  } else {
    abandoned_pending_.push_back(old);
  }
  fold_pending_abandoned(/*final_fold=*/false);
  {
    // stamp_mu_ held across the rebuild: stats walkers that snapshot
    // shard state through with_stable_topology never observe the slot
    // mid-swap. Submits to other shards stall for the rebuild — a
    // restart is already a disruption, and correctness beats latency
    // here.
    std::lock_guard<std::mutex> lock(stamp_mu_);
    pool_->rebuild_shard(i);
    auto fresh = std::make_unique<ShardWorker>(pool_->shard(i), counted_sink_,
                                               now_, max_queue_);
    fresh->start();
    worker_graveyard_.push_back(std::move(workers_[idx]));
    workers_[idx] = std::move(fresh);
    quarantined_[idx] = 0;
    quarantined_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  restarts_.fetch_add(1, std::memory_order_relaxed);
}

void LiveServer::fold_pending_abandoned(bool final_fold) {
  // Caller holds restart_mu_. A worker whose thread has exited has a
  // final inflight (the fence suppressed everything after abandonment,
  // and suppressed responses never decrement); fold it exactly. At the
  // final fold, a thread wedged forever is folded anyway — the one
  // response it may hold past the fence is counted abandoned, and if
  // its sink call ever unblocks the client just sees an answer it
  // already re-drove (worker.h, the ledger caveat).
  auto it = abandoned_pending_.begin();
  while (it != abandoned_pending_.end()) {
    ShardWorker* w = *it;
    if (final_fold || w->exited()) {
      abandoned_.fetch_add(static_cast<std::uint64_t>(w->inflight()),
                           std::memory_order_relaxed);
      it = abandoned_pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void LiveServer::with_stable_topology(
    const std::function<void()>& fn) const {
  std::lock_guard<std::mutex> lock(stamp_mu_);
  fn();
}

void LiveServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(stamp_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Excludes an in-flight restart_shard (it re-checks stopped_ under
  // stamp_mu_ before mutating anything, and never starts once we hold
  // this).
  std::lock_guard<std::mutex> restart_lock(restart_mu_);
  for (auto& w : workers_) w->request_stop();
  for (auto& w : workers_) w->join();
  // Graveyard workers either already exited (joined here) or are
  // wedged for good (detached by their destructor at LiveServer
  // destruction).
  for (auto& w : worker_graveyard_) {
    if (w->exited()) w->join();
  }
  // Settle the ledger: every abandoned worker whose fold was deferred
  // (it had not acknowledged within the grace period) is counted now,
  // exited or not. After this, submitted == responded + abandoned.
  fold_pending_abandoned(/*final_fold=*/true);
  // Timed-out requests produced no state: drop them from the trace so
  // replaying it reproduces exactly the committed digests. seq ==
  // recorded_ index (both count accepted submissions in order).
  std::vector<std::uint64_t> drop;
  {
    std::lock_guard<std::mutex> lock(timeout_mu_);
    drop.swap(timeout_seqs_);
  }
  if (record_ && !drop.empty()) {
    std::sort(drop.begin(), drop.end());
    std::vector<TraceEvent> kept;
    kept.reserve(recorded_.size() - drop.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < recorded_.size(); ++i) {
      if (d < drop.size() && drop[d] == i) {
        ++d;
        continue;
      }
      kept.push_back(recorded_[i]);
    }
    recorded_.swap(kept);
  }
}

}  // namespace zss::serve
