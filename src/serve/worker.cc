#include "serve/worker.h"

#include <chrono>
#include <utility>

namespace zss::serve {

namespace {

std::function<std::int64_t()> steady_clock_since_now() {
  const auto t0 = std::chrono::steady_clock::now();
  return [t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
}

}  // namespace

ShardWorker::ShardWorker(EngineShard& shard, ResponseSink sink,
                         std::function<std::int64_t()> now_us,
                         num::Index max_queue)
    : shard_(&shard),
      sink_(std::move(sink)),
      now_(std::move(now_us)),
      max_queue_(max_queue) {
  ZSS_EXPECTS(max_queue >= 0);
  // Submissions burst-append between wakeups; both buffers keep their
  // capacity across swaps, so the steady state allocates nothing.
  inbox_.reserve(64);
  taking_.reserve(64);
}

ShardWorker::~ShardWorker() {
  request_stop();
  join();
}

void ShardWorker::start() {
  ZSS_EXPECTS(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

bool ShardWorker::submit(const Request& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    if (max_queue_ > 0 && inflight_ >= max_queue_) return false;
    inbox_.push_back(r);
    ++inflight_;
  }
  cv_.notify_one();
  return true;
}

void ShardWorker::request_flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    flush_ = true;
  }
  cv_.notify_one();
}

void ShardWorker::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
}

void ShardWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = stop_;
    const bool flushing = flush_;
    flush_ = false;
    if (!inbox_.empty()) std::swap(inbox_, taking_);
    lock.unlock();

    // Everything below runs unlocked: this thread is the shard's sole
    // toucher, and producers only ever see the inbox.
    for (const Request& r : taking_) shard_->enqueue(r);
    taking_.clear();

    const std::int64_t now = now_();
    num::Index n = 0;
    if (stopping || flushing) {
      n = shard_->flush(now, sink_);
    } else {
      // Serving a batch can make the next one due (an unblocked
      // same-session conflict), so settle the instant.
      while (const num::Index b = shard_->process_ready(now, sink_)) n += b;
    }

    lock.lock();
    inflight_ -= n;
    if (stopping) {
      // A submit that won the race against request_stop() may have
      // landed after the swap; take one more round for it.
      if (inbox_.empty()) break;
      continue;
    }
    if (stop_ || flush_ || !inbox_.empty()) continue;
    if (shard_->pending() > 0) {
      // Sleep toward the oldest request's max-wait deadline; a new
      // submission wakes us earlier. Waking late moves batch
      // boundaries only — never values (the determinism guarantee).
      const std::int64_t deadline = shard_->batcher().oldest_arrival_us() +
                                    shard_->batcher().policy().max_wait_us;
      const std::int64_t wait = deadline - now_();
      if (wait > 0) {
        cv_.wait_for(lock, std::chrono::microseconds(wait));
      }
    } else {
      cv_.wait(lock, [this] { return stop_ || flush_ || !inbox_.empty(); });
    }
  }
}

LiveServer::LiveServer(EnginePool& pool, ResponseSink sink, LiveConfig config)
    : pool_(&pool),
      now_(config.now_us ? std::move(config.now_us)
                         : steady_clock_since_now()),
      record_(config.record) {
  const ResponseSink counted = [this, user_sink = std::move(sink)](
                                   const Response& r) {
    // Count after delivery: a caller synchronizing on responded() must
    // never observe a response whose sink call has not finished.
    user_sink(r);
    responded_.fetch_add(1, std::memory_order_relaxed);
  };
  for (num::Index s = 0; s < pool.num_shards(); ++s) {
    workers_.emplace_back(pool.shard(s), counted, now_, config.max_queue);
  }
  for (ShardWorker& w : workers_) w.start();
}

LiveServer::~LiveServer() { shutdown(); }

std::optional<std::uint64_t> LiveServer::submit(SessionId session,
                                                num::Index token,
                                                std::uint64_t client) {
  ZSS_EXPECTS(token >= 0);
  std::lock_guard<std::mutex> lock(stamp_mu_);
  if (stopped_) return std::nullopt;
  // Monotone stamping under the one lock: queue order, record order and
  // stamp order are the same total order (see worker.h).
  std::int64_t now = now_();
  if (now < last_stamp_) now = last_stamp_;
  last_stamp_ = now;

  Request r;
  r.session = session;
  r.token = token;
  r.arrival_us = now;
  r.seq = next_seq_;
  r.client = client;
  ShardWorker& w =
      workers_[static_cast<std::size_t>(pool_->shard_of(session))];
  if (!w.submit(r)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  ++next_seq_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (record_) {
    TraceEvent e;
    e.arrival_us = now;
    e.session = session;
    e.token = token;
    recorded_.push_back(e);
  }
  return r.seq;
}

void LiveServer::flush_all() {
  for (ShardWorker& w : workers_) w.request_flush();
}

void LiveServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(stamp_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  for (ShardWorker& w : workers_) w.request_stop();
  for (ShardWorker& w : workers_) w.join();
}

}  // namespace zss::serve
