// The model a pool serves: borrowed per-layer cells and pruners, an
// optional embedding, and the identity the stats line reports.
//
// ServeModel is a plain view — the caller (tools/zss_serve.cc, tests,
// benches) owns the modules, typically either a core::LoadedModel
// materialized from a v2 checkpoint plus pruners built from its
// per-layer thresholds, or ad-hoc random modules for synthetic load.
// Shards copy the pointer lists at construction, so the ServeModel
// struct itself may be a temporary.
#pragma once

#include <span>
#include <string>

#include "core/state_pruner.h"
#include "nn/embedding.h"
#include "nn/lstm_cell.h"
#include "num/types.h"

namespace zss::serve {

struct ServeModel {
  /// One cell per layer; layer 0's input dim is the model input dim,
  /// deeper layers consume hidden_dim (core::StackedEngine enforces).
  std::span<const nn::LstmCell* const> cells;
  /// One pruner per layer (a trained checkpoint records one effective
  /// threshold per layer). Batch-composition-dependent modes are
  /// rejected by the shard, as before.
  std::span<const core::StatePruner* const> pruners;
  /// Input mapping: null = tokens become one-hot rows of width
  /// cells[0]->input_dim(); non-null = tokens index embedding rows
  /// (its dim must equal cells[0]->input_dim()).
  const nn::Embedding* embedding = nullptr;
  /// Identity for the stats line ("random" = no checkpoint loaded).
  std::string name = "random";
  /// Token space for the stats line and the embedding path's modulus;
  /// 0 = derive from the input (one-hot width or embedding vocab).
  num::Index vocab = 0;
};

/// What a pool reports about its model (protocol stat line; immutable
/// after construction, so the stats thread reads it lock-free).
struct ModelInfo {
  std::string name = "random";
  num::Index layers = 1;
  num::Index dh = 0;
  num::Index vocab = 0;
  bool quant = false;
};

}  // namespace zss::serve
