// Request/response vocabulary of the serving layer.
//
// A request is one token for one session; a response is the session's
// new hidden row. Both are heap-free value types: the request carries a
// token id (turned into a one-hot input row by the shard), the response
// exposes the hidden state as a span into the session's own matrix, so
// a sink that only digests or measures never copies dh floats.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "num/types.h"
#include "serve/session.h"

namespace zss::serve {

struct Request {
  SessionId session = 0;
  num::Index token = 0;          // one-hot input index (shard takes mod dx)
  std::int64_t arrival_us = 0;   // virtual arrival time (trace clock)
  std::uint64_t seq = 0;         // global arrival order stamp
  /// Issuing connection, echoed on the response so the multiplexed
  /// front end (serve/frontend.h) can route "ok" lines back to exactly
  /// the client that sent the request. 0 = no connection (replay,
  /// stdin mode, in-process producers). Never enters the computation:
  /// values, batching and eviction are all client-blind, which is why
  /// traces don't record it and replay still reproduces digests.
  std::uint64_t client = 0;
  /// Absolute arrival-clock deadline (arrival_us + --deadline-us). A
  /// request still queued when a batch closes past this stamp is
  /// answered `err timeout` instead of served. 0 = no deadline. Live
  /// mode only: replay never sets it (a timed-out request is dropped
  /// from the recorded trace, so replay re-serves exactly the requests
  /// that produced state).
  std::int64_t deadline_us = 0;
};

struct Response {
  SessionId session = 0;
  std::uint64_t seq = 0;
  std::uint64_t client = 0;      // the request's issuing connection, echoed
  std::int64_t arrival_us = 0;   // the request's arrival stamp, echoed
  std::int64_t done_us = 0;      // virtual time the serving batch closed
  double service_us = 0.0;       // wall-clock of the step that served it
  num::Index batch = 0;          // size of that batch
  /// The session's new hidden row (top layer, stored pruned) — a view
  /// into the session's state, valid until the session's next step.
  /// Copy it to keep it. This is what the response digest folds, so
  /// digests stay comparable across single- and multi-layer models.
  std::span<const float> h;
  /// The top layer's dense (unpruned) hidden row — what the trained
  /// classifier consumes (core/stacked_lstm.cc feeds the classifier
  /// the dense h). A view into the serving batch's staging buffer,
  /// valid only inside the sink call; empty when the serving path
  /// did not compute one. Deliberately NOT folded into digests.
  std::span<const float> dense_h;
  /// FNV-1a of `h`, computed once on the shard thread when it folded
  /// the authoritative digest table (SessionStore::commit_step). Sinks
  /// use it instead of re-hashing; 0 on timed-out responses.
  std::uint64_t row_digest = 0;
  /// True when the request waited past its deadline and was answered
  /// without being served: no state was touched, `h`/`dense_h` are
  /// empty, and nothing was folded into any digest. The front end turns
  /// this into an "err timeout" line.
  bool timed_out = false;
};

/// Called once per served request, in FIFO order within a session.
/// Invoking a std::function does not allocate; constructing one might,
/// so build sinks before entering the hot loop.
using ResponseSink = std::function<void(const Response&)>;

}  // namespace zss::serve
