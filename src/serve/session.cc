#include "serve/session.h"

#include <algorithm>

namespace zss::serve {

SessionStore::SessionStore(num::Index hidden_dim, SessionTtl ttl,
                           num::Index layers)
    : dh_(hidden_dim), layers_(layers), ttl_(ttl) {
  ZSS_EXPECTS(hidden_dim >= 1);
  ZSS_EXPECTS(layers >= 1);
  ZSS_EXPECTS(ttl.max_sessions >= 0);
}

void SessionStore::lru_unlink(Session& s) {
  if (s.lru_prev_ != nullptr) {
    s.lru_prev_->lru_next_ = s.lru_next_;
  } else {
    lru_head_ = s.lru_next_;
  }
  if (s.lru_next_ != nullptr) {
    s.lru_next_->lru_prev_ = s.lru_prev_;
  } else {
    lru_tail_ = s.lru_prev_;
  }
  s.lru_prev_ = s.lru_next_ = nullptr;
}

void SessionStore::lru_push_front(Session& s) {
  s.lru_prev_ = nullptr;
  s.lru_next_ = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev_ = &s;
  lru_head_ = &s;
  if (lru_tail_ == nullptr) lru_tail_ = &s;
}

void SessionStore::pack_state(const Session& s) {
  spill_h_.reshape(1, state_width());
  spill_c_.reshape(1, state_width());
  for (num::Index l = 0; l < layers_; ++l) {
    const auto hl = s.h[static_cast<std::size_t>(l)].row(0);
    const auto cl = s.c[static_cast<std::size_t>(l)].row(0);
    std::copy(hl.begin(), hl.end(),
              spill_h_.row(0).begin() + static_cast<std::size_t>(l * dh_));
    std::copy(cl.begin(), cl.end(),
              spill_c_.row(0).begin() + static_cast<std::size_t>(l * dh_));
  }
}

void SessionStore::unpack_state(Session& s, const float* h, const float* c) {
  for (num::Index l = 0; l < layers_; ++l) {
    const auto off = static_cast<std::size_t>(l * dh_);
    const auto n = static_cast<std::size_t>(dh_);
    std::copy(h + off, h + off + n,
              s.h[static_cast<std::size_t>(l)].row(0).begin());
    std::copy(c + off, c + off + n,
              s.c[static_cast<std::size_t>(l)].row(0).begin());
  }
}

void SessionStore::journal_note(store::JournalRecordKind kind,
                                const Session& s) {
  if (journal_ == nullptr || !journal_->enabled()) return;
  journal_->append(kind, s.id, s.generation, s.steps, s.last_arrival_us,
                   /*digest_steps=*/0, /*digest=*/0);
  journal_active_.store(journal_->enabled(), std::memory_order_relaxed);
}

void SessionStore::evict(Session& s, bool spill_state) {
  ZSS_ASSERT(s.pinned == 0);
  lru_unlink(s);
  bump(evicted_);
  bool tiered = false;
  if (spill_state && spill_ != nullptr && spill_->spilling_enabled()) {
    // Tiering: the victim's exact bits move to the disk tier, the L
    // per-layer rows packed side by side into one state_width() record.
    // A failed spill (the store just disabled itself) degrades to the
    // pre-spill forget semantics for this and every later eviction.
    pack_state(s);
    if (spill_->spill(s.id, {s.generation, s.steps, s.last_arrival_us},
                      spill_h_, spill_c_)) {
      bump(spilled_);
      tiered = true;
    }
    spill_active_.store(spill_->spilling_enabled(),
                        std::memory_order_relaxed);
  }
  // kEvict promises recovery a spill record to fall back on; a forgotten
  // (or failed-spill) victim is an erase — its state is simply gone.
  journal_note(tiered ? store::JournalRecordKind::kEvict
                      : store::JournalRecordKind::kErase,
               s);
  sessions_.erase(s.id);  // invalidates &s
}

Session& SessionStore::get_or_create(SessionId id, std::int64_t arrival_us) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    Session& s = it->second;
    // Lazy TTL: compared against the session's *own* previous arrival,
    // so the decision is independent of batching, sharding and wake
    // timing — the property the live/replay bit-identity rests on.
    if (ttl_.ttl_us >= 0 && arrival_us - s.last_arrival_us > ttl_.ttl_us) {
      for (auto& m : s.h) m.fill(0.0f);
      for (auto& m : s.c) m.fill(0.0f);
      s.steps = 0;
      ++s.generation;
      bump(ttl_resets_);
      s.last_arrival_us = arrival_us;
      journal_note(store::JournalRecordKind::kTtlReset, s);
    }
    s.last_arrival_us = arrival_us;
    lru_unlink(s);
    lru_push_front(s);
    return s;
  }

  if (ttl_.max_sessions > 0) {
    // Cap decisions are computed over the *stamp-defined alive set* —
    // sessions within the TTL of this arrival — never over physical
    // size(). The map can still hold expired sessions the sweep has
    // not reclaimed yet, and sweep timing follows batch boundaries,
    // which live serving and virtual-clock replay legitimately
    // disagree on: deciding from stamps alone makes the eviction's
    // grouping-independence direct, instead of resting on the subtler
    // invariant that a raw size() check only ever evicts zombies first
    // (fuzz-enforced either way). Expired sessions form a tail suffix
    // (LRU order == last-arrival order), so one walk both counts the
    // alive set and lands on its oldest member.
    num::Index alive = size();
    Session* victim = lru_tail_;
    if (ttl_.ttl_us >= 0) {
      while (victim != nullptr &&
             arrival_us - victim->last_arrival_us > ttl_.ttl_us) {
        victim = victim->lru_prev_;
        --alive;
      }
    }
    if (alive >= ttl_.max_sessions) {
      // Victim: least-recently-arrived alive unpinned session. Pinned
      // sessions carry the newest arrivals (per-shard arrivals are
      // monotone), so with max_sessions > max_batch the oldest alive
      // session is never pinned; the walk is belt-and-braces, not a
      // policy.
      while (victim != nullptr && victim->pinned > 0) {
        victim = victim->lru_prev_;
      }
      if (victim != nullptr) evict(*victim, /*spill_state=*/true);
    }
  }

  Session& s = sessions_.try_emplace(id).first->second;
  s.id = id;
  s.h.resize(static_cast<std::size_t>(layers_));
  s.c.resize(static_cast<std::size_t>(layers_));
  for (num::Index l = 0; l < layers_; ++l) {
    s.h[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
    s.c[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
  }
  s.last_arrival_us = arrival_us;
  lru_push_front(s);

  // Tiering: a miss in RAM may be a hit in the spill tier. Every
  // branch below is a pure function of this session's own record and
  // arrival stamps, so the decision — like the lazy TTL rule — cannot
  // depend on batching or shard count.
  if (spill_ != nullptr) {
    if (const store::RecordMeta* m = spill_->find(id)) {
      if (ttl_.ttl_us >= 0 && arrival_us - m->arrival_us > ttl_.ttl_us) {
        // Expired on disk: the record could only restore into a TTL
        // reset, so drop it unread. Same transition (and counter) as
        // the lazy reset of a resident session — the oracle equality.
        s.generation = m->generation + 1;
        spill_->erase(id);
        bump(ttl_resets_);
        journal_note(store::JournalRecordKind::kCreate, s);
        return s;
      }
      store::RecordMeta meta;
      const auto r = spill_->restore_into(id, &meta, spill_h_, spill_c_);
      if (r == store::RestoreResult::kOk) {
        // Unpack the state_width() record back into per-layer rows.
        // No journal record: the spill tier's on-disk record survives a
        // restore (only its index entry is consumed), so a crash before
        // this session's next kUpdate recovers it from the spill tier
        // with exactly these bits; recover_from()'s reconcile pass
        // erases the stale record once a kUpdate supersedes it.
        unpack_state(s, spill_h_.data(), spill_c_.data());
        s.steps = meta.steps;
        s.generation = meta.generation;
        bump(restored_);
        return s;
      }
      // kCorrupt: degrade to the pre-spill behavior — a fresh
      // generation-zero session (h/c are untouched by a failed
      // restore, so they still hold the zero fill from above).
      bump(restore_corrupt_);
    }
  }
  bump(created_);
  journal_note(store::JournalRecordKind::kCreate, s);
  return s;
}

num::Index SessionStore::sweep_expired(std::int64_t newest_arrival_us) {
  if (ttl_.ttl_us < 0) return 0;
  num::Index freed = 0;
  // The LRU order equals last-arrival order (arrivals are monotone per
  // shard), so expired sessions form a suffix from the tail.
  Session* s = lru_tail_;
  while (s != nullptr &&
         newest_arrival_us - s->last_arrival_us > ttl_.ttl_us) {
    Session* prev = s->lru_prev_;
    if (s->pinned == 0) {
      // No spill: any future request of an expired session arrives
      // past its TTL, so a record here could never be restored.
      evict(*s, /*spill_state=*/false);
      ++freed;
    }
    s = prev;
  }
  return freed;
}

void SessionStore::commit_step(Session& s, std::uint64_t row_digest) {
  SessionDigest after;
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    SessionDigest& d = digests_[s.id];
    fold_row_digest(d, row_digest);
    after = d;
  }
  if (journal_ == nullptr || !journal_->enabled()) return;
  // The kUpdate record is absolute: packed post-step state plus the
  // post-fold digest, so replay needs no arithmetic — and so the last
  // committed record alone fully determines the session.
  pack_state(s);
  journal_->append(store::JournalRecordKind::kUpdate, s.id, s.generation,
                   s.steps, s.last_arrival_us, after.steps, after.digest,
                   spill_h_.data(), spill_c_.data());
  journal_active_.store(journal_->enabled(), std::memory_order_relaxed);
}

void SessionStore::commit_batch() {
  if (journal_ == nullptr || !journal_->enabled()) return;
  journal_->commit();
  journal_active_.store(journal_->enabled(), std::memory_order_relaxed);
}

bool SessionStore::maybe_checkpoint() {
  if (journal_ == nullptr || !journal_->wants_checkpoint()) return false;
  std::vector<store::CheckpointSession> sessions;
  sessions.reserve(sessions_.size());
  // Least-recently-used first, so recovery's push-front replay rebuilds
  // the exact LRU order.
  for (Session* s = lru_tail_; s != nullptr; s = s->lru_prev_) {
    store::CheckpointSession cs;
    cs.id = s->id;
    cs.generation = s->generation;
    cs.steps = s->steps;
    cs.arrival_us = s->last_arrival_us;
    pack_state(*s);
    const auto w = static_cast<std::size_t>(state_width());
    cs.h.assign(spill_h_.data(), spill_h_.data() + w);
    cs.c.assign(spill_c_.data(), spill_c_.data() + w);
    sessions.push_back(std::move(cs));
  }
  std::vector<store::CheckpointDigest> digests;
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    digests.reserve(digests_.size());
    for (const auto& [id, d] : digests_) {
      digests.push_back({id, d.steps, d.digest});
    }
  }
  const bool written = journal_->checkpoint(sessions, digests);
  journal_active_.store(journal_->enabled(), std::memory_order_relaxed);
  return written;
}

void SessionStore::recover_from(store::Journal& journal) {
  ZSS_EXPECTS(sessions_.empty());
  const auto ensure = [this](SessionId id) -> Session& {
    auto [it, inserted] = sessions_.try_emplace(id);
    Session& s = it->second;
    if (inserted) {
      s.id = id;
      s.h.resize(static_cast<std::size_t>(layers_));
      s.c.resize(static_cast<std::size_t>(layers_));
      for (num::Index l = 0; l < layers_; ++l) {
        s.h[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
        s.c[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
      }
    } else {
      lru_unlink(s);
    }
    lru_push_front(s);
    return s;
  };
  const auto drop = [this](SessionId id) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    lru_unlink(it->second);
    sessions_.erase(it);
  };

  // 1. The checkpoint population, least-recently-used first.
  for (const store::CheckpointSession& cs : journal.checkpoint_sessions()) {
    Session& s = ensure(cs.id);
    s.generation = cs.generation;
    s.steps = cs.steps;
    s.last_arrival_us = cs.arrival_us;
    unpack_state(s, cs.h.data(), cs.c.data());
  }
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    for (const store::CheckpointDigest& cd : journal.checkpoint_digests()) {
      digests_[cd.id] = SessionDigest{cd.steps, cd.digest};
    }
  }

  // 2. The journal suffix, in LSN order. Every record is applied
  // mechanically — absolute state, no recomputation — so recovery is a
  // pure function of the committed log.
  journal.replay([this, &ensure, &drop](const store::JournalRecord& r) {
    switch (r.kind) {
      case store::JournalRecordKind::kCreate:
      case store::JournalRecordKind::kTtlReset: {
        Session& s = ensure(r.id);
        for (auto& m : s.h) m.fill(0.0f);
        for (auto& m : s.c) m.fill(0.0f);
        s.generation = r.generation;
        s.steps = 0;
        s.last_arrival_us = r.arrival_us;
        break;
      }
      case store::JournalRecordKind::kUpdate: {
        // May re-materialize a session the checkpoint knew as evicted:
        // a spill restore logs nothing, so the first kUpdate after it
        // is the create.
        Session& s = ensure(r.id);
        s.generation = r.generation;
        s.steps = r.steps;
        s.last_arrival_us = r.arrival_us;
        unpack_state(s, r.h, r.c);
        std::lock_guard<std::mutex> lock(digest_mu_);
        digests_[r.id] = SessionDigest{r.digest_steps, r.digest};
        break;
      }
      case store::JournalRecordKind::kEvict:
      case store::JournalRecordKind::kErase:
        drop(r.id);
        break;
    }
  });
  journal.clear_recovered();

  // 3. Reconcile the spill tier: a journal-resident session supersedes
  // any spill record left behind by an eviction the journal later saw
  // returning (restores consume only the RAM index — the reopened file
  // resurrects the entry). Without this, a future eviction-and-return
  // could restore pre-crash state.
  if (spill_ != nullptr) {
    for (const auto& [id, s] : sessions_) spill_->erase(id);
  }

  journal_active_.store(journal.enabled(), std::memory_order_relaxed);
}

SessionDigest SessionStore::digest_of(SessionId id) const {
  std::lock_guard<std::mutex> lock(digest_mu_);
  const auto it = digests_.find(id);
  return it == digests_.end() ? SessionDigest{} : it->second;
}

DigestTable SessionStore::digests_copy() const {
  std::lock_guard<std::mutex> lock(digest_mu_);
  return digests_;
}

Session* SessionStore::find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Session* SessionStore::find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace zss::serve
