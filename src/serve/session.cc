#include "serve/session.h"

#include <algorithm>

namespace zss::serve {

SessionStore::SessionStore(num::Index hidden_dim, SessionTtl ttl,
                           num::Index layers)
    : dh_(hidden_dim), layers_(layers), ttl_(ttl) {
  ZSS_EXPECTS(hidden_dim >= 1);
  ZSS_EXPECTS(layers >= 1);
  ZSS_EXPECTS(ttl.max_sessions >= 0);
}

void SessionStore::lru_unlink(Session& s) {
  if (s.lru_prev_ != nullptr) {
    s.lru_prev_->lru_next_ = s.lru_next_;
  } else {
    lru_head_ = s.lru_next_;
  }
  if (s.lru_next_ != nullptr) {
    s.lru_next_->lru_prev_ = s.lru_prev_;
  } else {
    lru_tail_ = s.lru_prev_;
  }
  s.lru_prev_ = s.lru_next_ = nullptr;
}

void SessionStore::lru_push_front(Session& s) {
  s.lru_prev_ = nullptr;
  s.lru_next_ = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev_ = &s;
  lru_head_ = &s;
  if (lru_tail_ == nullptr) lru_tail_ = &s;
}

void SessionStore::evict(Session& s, bool spill_state) {
  ZSS_ASSERT(s.pinned == 0);
  lru_unlink(s);
  bump(evicted_);
  if (spill_state && spill_ != nullptr && spill_->spilling_enabled()) {
    // Tiering: the victim's exact bits move to the disk tier, the L
    // per-layer rows packed side by side into one state_width() record.
    // A failed spill (the store just disabled itself) degrades to the
    // pre-spill forget semantics for this and every later eviction.
    spill_h_.reshape(1, state_width());
    spill_c_.reshape(1, state_width());
    for (num::Index l = 0; l < layers_; ++l) {
      const auto hl = s.h[static_cast<std::size_t>(l)].row(0);
      const auto cl = s.c[static_cast<std::size_t>(l)].row(0);
      std::copy(hl.begin(), hl.end(),
                spill_h_.row(0).begin() + static_cast<std::size_t>(l * dh_));
      std::copy(cl.begin(), cl.end(),
                spill_c_.row(0).begin() + static_cast<std::size_t>(l * dh_));
    }
    if (spill_->spill(s.id, {s.generation, s.steps, s.last_arrival_us},
                      spill_h_, spill_c_)) {
      bump(spilled_);
    }
    spill_active_.store(spill_->spilling_enabled(),
                        std::memory_order_relaxed);
  }
  sessions_.erase(s.id);  // invalidates &s
}

Session& SessionStore::get_or_create(SessionId id, std::int64_t arrival_us) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    Session& s = it->second;
    // Lazy TTL: compared against the session's *own* previous arrival,
    // so the decision is independent of batching, sharding and wake
    // timing — the property the live/replay bit-identity rests on.
    if (ttl_.ttl_us >= 0 && arrival_us - s.last_arrival_us > ttl_.ttl_us) {
      for (auto& m : s.h) m.fill(0.0f);
      for (auto& m : s.c) m.fill(0.0f);
      s.steps = 0;
      ++s.generation;
      bump(ttl_resets_);
    }
    s.last_arrival_us = arrival_us;
    lru_unlink(s);
    lru_push_front(s);
    return s;
  }

  if (ttl_.max_sessions > 0) {
    // Cap decisions are computed over the *stamp-defined alive set* —
    // sessions within the TTL of this arrival — never over physical
    // size(). The map can still hold expired sessions the sweep has
    // not reclaimed yet, and sweep timing follows batch boundaries,
    // which live serving and virtual-clock replay legitimately
    // disagree on: deciding from stamps alone makes the eviction's
    // grouping-independence direct, instead of resting on the subtler
    // invariant that a raw size() check only ever evicts zombies first
    // (fuzz-enforced either way). Expired sessions form a tail suffix
    // (LRU order == last-arrival order), so one walk both counts the
    // alive set and lands on its oldest member.
    num::Index alive = size();
    Session* victim = lru_tail_;
    if (ttl_.ttl_us >= 0) {
      while (victim != nullptr &&
             arrival_us - victim->last_arrival_us > ttl_.ttl_us) {
        victim = victim->lru_prev_;
        --alive;
      }
    }
    if (alive >= ttl_.max_sessions) {
      // Victim: least-recently-arrived alive unpinned session. Pinned
      // sessions carry the newest arrivals (per-shard arrivals are
      // monotone), so with max_sessions > max_batch the oldest alive
      // session is never pinned; the walk is belt-and-braces, not a
      // policy.
      while (victim != nullptr && victim->pinned > 0) {
        victim = victim->lru_prev_;
      }
      if (victim != nullptr) evict(*victim, /*spill_state=*/true);
    }
  }

  Session& s = sessions_.try_emplace(id).first->second;
  s.id = id;
  s.h.resize(static_cast<std::size_t>(layers_));
  s.c.resize(static_cast<std::size_t>(layers_));
  for (num::Index l = 0; l < layers_; ++l) {
    s.h[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
    s.c[static_cast<std::size_t>(l)].resize(1, dh_, 0.0f);
  }
  s.last_arrival_us = arrival_us;
  lru_push_front(s);

  // Tiering: a miss in RAM may be a hit in the spill tier. Every
  // branch below is a pure function of this session's own record and
  // arrival stamps, so the decision — like the lazy TTL rule — cannot
  // depend on batching or shard count.
  if (spill_ != nullptr) {
    if (const store::RecordMeta* m = spill_->find(id)) {
      if (ttl_.ttl_us >= 0 && arrival_us - m->arrival_us > ttl_.ttl_us) {
        // Expired on disk: the record could only restore into a TTL
        // reset, so drop it unread. Same transition (and counter) as
        // the lazy reset of a resident session — the oracle equality.
        s.generation = m->generation + 1;
        spill_->erase(id);
        bump(ttl_resets_);
        return s;
      }
      store::RecordMeta meta;
      const auto r = spill_->restore_into(id, &meta, spill_h_, spill_c_);
      if (r == store::RestoreResult::kOk) {
        // Unpack the state_width() record back into per-layer rows.
        for (num::Index l = 0; l < layers_; ++l) {
          const auto src_h = spill_h_.row(0);
          const auto src_c = spill_c_.row(0);
          std::copy(src_h.begin() + static_cast<std::size_t>(l * dh_),
                    src_h.begin() + static_cast<std::size_t>((l + 1) * dh_),
                    s.h[static_cast<std::size_t>(l)].row(0).begin());
          std::copy(src_c.begin() + static_cast<std::size_t>(l * dh_),
                    src_c.begin() + static_cast<std::size_t>((l + 1) * dh_),
                    s.c[static_cast<std::size_t>(l)].row(0).begin());
        }
        s.steps = meta.steps;
        s.generation = meta.generation;
        bump(restored_);
        return s;
      }
      // kCorrupt: degrade to the pre-spill behavior — a fresh
      // generation-zero session (h/c are untouched by a failed
      // restore, so they still hold the zero fill from above).
      bump(restore_corrupt_);
    }
  }
  bump(created_);
  return s;
}

num::Index SessionStore::sweep_expired(std::int64_t newest_arrival_us) {
  if (ttl_.ttl_us < 0) return 0;
  num::Index freed = 0;
  // The LRU order equals last-arrival order (arrivals are monotone per
  // shard), so expired sessions form a suffix from the tail.
  Session* s = lru_tail_;
  while (s != nullptr &&
         newest_arrival_us - s->last_arrival_us > ttl_.ttl_us) {
    Session* prev = s->lru_prev_;
    if (s->pinned == 0) {
      // No spill: any future request of an expired session arrives
      // past its TTL, so a record here could never be restored.
      evict(*s, /*spill_state=*/false);
      ++freed;
    }
    s = prev;
  }
  return freed;
}

Session* SessionStore::find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Session* SessionStore::find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace zss::serve
