#include "serve/session.h"

namespace zss::serve {

SessionStore::SessionStore(num::Index hidden_dim) : dh_(hidden_dim) {
  ZSS_EXPECTS(hidden_dim >= 1);
}

Session& SessionStore::get_or_create(SessionId id) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) return it->second;
  Session& s = sessions_[id];
  s.id = id;
  s.h.resize(1, dh_, 0.0f);
  s.c.resize(1, dh_, 0.0f);
  return s;
}

Session* SessionStore::find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Session* SessionStore::find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace zss::serve
